// Unit tests of the shared-memory SPSC frame ring and futex doorbell that
// carry the local-shard data plane.  The contracts under test are the ones
// the router/worker pair depends on: frames wrap byte-exactly at every
// offset, publication is whole-or-nothing (a producer SIGKILLed mid-frame
// reads as silence, then typed DeadPeer), a full ring parks the producer
// instead of spinning or corrupting, and wake storms between mismatched
// producer/consumer speeds never lose or duplicate a frame.

#include "malsched/net/shm.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <thread>

namespace mnet = malsched::net;

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point soon(int ms = 5000) {
  return Clock::now() + std::chrono::milliseconds(ms);
}

// A ring over a fresh shared region, torn down with the test.
struct RingFixture {
  std::unique_ptr<mnet::ShmRegion> region;
  mnet::ShmRing ring;
  explicit RingFixture(std::size_t capacity) {
    region = mnet::ShmRegion::create(mnet::ShmRing::footprint(capacity));
    EXPECT_NE(region, nullptr);
    ring = mnet::ShmRing(region->data(), capacity, /*initialize=*/true);
  }
};

}  // namespace

TEST(NetShm, RegionCreateHonorsTheDisableKnob) {
  ::setenv(mnet::kShmDisableEnv, "1", 1);
  EXPECT_EQ(mnet::ShmRegion::create(4096), nullptr);
  // "0" and empty mean enabled — the knob is "set to something truthy".
  ::setenv(mnet::kShmDisableEnv, "0", 1);
  EXPECT_NE(mnet::ShmRegion::create(4096), nullptr);
  ::setenv(mnet::kShmDisableEnv, "", 1);
  EXPECT_NE(mnet::ShmRegion::create(4096), nullptr);
  ::unsetenv(mnet::kShmDisableEnv);
  EXPECT_NE(mnet::ShmRegion::create(4096), nullptr);
}

TEST(NetShm, FramesRoundTripInOrder) {
  RingFixture fx(4096);
  for (int i = 0; i < 100; ++i) {
    const std::string sent = "frame-" + std::to_string(i);
    ASSERT_EQ(fx.ring.push(sent, soon()), mnet::RingStatus::Ok);
    std::string got;
    ASSERT_EQ(fx.ring.pop(&got, soon()), mnet::RingStatus::Ok);
    EXPECT_EQ(got, sent);
  }
  EXPECT_EQ(fx.ring.counters().frames.load(), 100u);
}

TEST(NetShm, WraparoundIsByteExactAtEveryOffset) {
  // March a frame across every byte offset of a small ring: each push
  // advances the free-running counters by frame-size, so after capacity
  // pushes every alignment of prefix and payload against the ring edge —
  // including a prefix itself split across the wrap — has been exercised.
  constexpr std::size_t kCapacity = 64;
  RingFixture fx(kCapacity);
  const std::string payload = "wrap-payload-0123456789";  // 23 + 4 = 27
  for (std::size_t i = 0; i < kCapacity; ++i) {
    ASSERT_EQ(fx.ring.push(payload, soon()), mnet::RingStatus::Ok) << i;
    std::string got;
    ASSERT_EQ(fx.ring.pop(&got, soon()), mnet::RingStatus::Ok) << i;
    ASSERT_EQ(got, payload) << "offset " << i;
  }
}

TEST(NetShm, PayloadOfExactlyRingSizeFailsTypedWithoutAPartialWrite) {
  constexpr std::size_t kCapacity = 4096;
  RingFixture fx(kCapacity);
  // The 4-byte prefix makes a payload of exactly ring size unfittable —
  // ever — so it must fail TooBig immediately, not Timeout.
  const std::string too_big(kCapacity, 'x');
  EXPECT_EQ(fx.ring.push(too_big, soon()), mnet::RingStatus::TooBig);
  EXPECT_EQ(fx.ring.depth_bytes(), 0u);  // whole-or-nothing: nothing landed
  EXPECT_EQ(fx.ring.counters().frames.load(), 0u);
  // The largest payload that does fit still round-trips.
  const std::string max_fit(kCapacity - 4, 'y');
  ASSERT_EQ(fx.ring.push(max_fit, soon()), mnet::RingStatus::Ok);
  std::string got;
  ASSERT_EQ(fx.ring.pop(&got, soon()), mnet::RingStatus::Ok);
  EXPECT_EQ(got, max_fit);
}

TEST(NetShm, FullRingParksTheProducerUntilTheConsumerFreesSpace) {
  constexpr std::size_t kCapacity = 4096;
  RingFixture fx(kCapacity);
  const std::string chunk(1020, 'z');  // 1024 with prefix: 4 fill the ring
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(fx.ring.push(chunk, soon()), mnet::RingStatus::Ok);
  }
  // Ring is exactly full; a bounded push must park and then time out.
  const auto start = Clock::now();
  EXPECT_EQ(fx.ring.push(chunk, Clock::now() + std::chrono::milliseconds(80)),
            mnet::RingStatus::Timeout);
  EXPECT_GE(Clock::now() - start, std::chrono::milliseconds(70));
  EXPECT_GE(fx.ring.counters().producer_sleeps.load(), 1u);
  // A consumer freeing space unparks the producer well before its budget.
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::string got;
    EXPECT_EQ(fx.ring.pop(&got, soon()), mnet::RingStatus::Ok);
  });
  EXPECT_EQ(fx.ring.push(chunk, soon()), mnet::RingStatus::Ok);
  consumer.join();
}

TEST(NetShm, TryPopOnAnEmptyRingIsTimeoutWithoutSleeping) {
  // A deadline already in the past — including the time_point::min()
  // sentinel, which must not underflow into a huge positive wait — makes
  // pop a try_pop: immediate Timeout.
  RingFixture fx(4096);
  std::string got;
  const auto start = Clock::now();
  EXPECT_EQ(fx.ring.pop(&got, Clock::time_point::min()),
            mnet::RingStatus::Timeout);
  EXPECT_EQ(fx.ring.pop(&got, Clock::now() - std::chrono::seconds(1)),
            mnet::RingStatus::Timeout);
  EXPECT_LT(Clock::now() - start, std::chrono::milliseconds(500));
}

TEST(NetShm, CloseDrainsPublishedFramesBeforeReportingClosed) {
  RingFixture fx(4096);
  ASSERT_EQ(fx.ring.push("last-words", soon()), mnet::RingStatus::Ok);
  fx.ring.close();
  std::string got;
  EXPECT_EQ(fx.ring.pop(&got, soon()), mnet::RingStatus::Ok);
  EXPECT_EQ(got, "last-words");
  EXPECT_EQ(fx.ring.pop(&got, soon()), mnet::RingStatus::Closed);
  EXPECT_EQ(fx.ring.push("after-close", soon()), mnet::RingStatus::Closed);
}

TEST(NetShm, ProducerKilledMidFrameReadsAsSilenceThenDeadPeer) {
  // The torn-write contract end to end: a child process SIGKILLed between
  // the data memcpy and the tail publish must leave the consumer exactly
  // nothing — no partial frame, no garbage length — and the liveness probe
  // turns that silence into a typed DeadPeer.
  constexpr std::size_t kCapacity = 1 << 16;
  auto region = mnet::ShmRegion::create(mnet::ShmRing::footprint(kCapacity));
  ASSERT_NE(region, nullptr);
  mnet::ShmRing ring(region->data(), kCapacity, /*initialize=*/true);
  // The child publishes one good frame, then parks forever on a full-ring
  // push it can never finish... except we never fill the ring — instead it
  // raises SIGSTOP on itself mid-"frame" by writing bytes *without*
  // publishing: the closest deterministic stand-in is simply copying data
  // via push up to the publish and stopping first, which the public API
  // does not expose.  SIGKILL between two pushes is the observable
  // equivalent: whatever the kill interleaves with, the consumer sees only
  // whole frames, then silence.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    (void)ring.push("one", soon());
    for (;;) {
      (void)ring.push(std::string(512, 'k'), soon(60000));
    }
  }
  std::string got;
  ASSERT_EQ(ring.pop(&got, soon()), mnet::RingStatus::Ok);
  EXPECT_EQ(got, "one");
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);
  std::atomic<bool> child_alive{true};
  child_alive.store(false);
  // Drain whatever whole frames the child published before dying; every
  // one must be intact.  Then the probe reports the death, typed.
  for (;;) {
    const auto result =
        ring.pop(&got, soon(), [&] { return child_alive.load(); });
    if (result != mnet::RingStatus::Ok) {
      EXPECT_EQ(result, mnet::RingStatus::DeadPeer);
      break;
    }
    EXPECT_EQ(got, std::string(512, 'k'));
  }
}

TEST(NetShm, MismatchedSpeedsStressNeverLosesOrDuplicatesAFrame) {
  // Wake-storm stress: a fast producer against a deliberately slowed
  // consumer (and vice versa in the second half) forces both sides through
  // their park/wake paths repeatedly.  Every frame must arrive exactly
  // once, in order.  Run under TSan this also proves the ring's memory
  // ordering — data races between copy_in/copy_out and head/tail.
  constexpr std::size_t kCapacity = 4096;  // small: constant backpressure
  constexpr int kFrames = 2000;
  RingFixture fx(kCapacity);
  std::thread producer([&] {
    for (int i = 0; i < kFrames; ++i) {
      const std::string frame =
          "seq-" + std::to_string(i) + "-" + std::string(i % 700, 'p');
      ASSERT_EQ(fx.ring.push(frame, soon(30000)), mnet::RingStatus::Ok);
      if (i % 128 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    fx.ring.close();
  });
  int received = 0;
  std::string got;
  for (;;) {
    const auto status = fx.ring.pop(&got, soon(30000));
    if (status == mnet::RingStatus::Closed) {
      break;
    }
    ASSERT_EQ(status, mnet::RingStatus::Ok);
    const std::string prefix = "seq-" + std::to_string(received) + "-";
    ASSERT_EQ(got.compare(0, prefix.size(), prefix), 0) << got.substr(0, 32);
    ++received;
    if (received % 97 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  producer.join();
  EXPECT_EQ(received, kFrames);
  // The mismatched cadence must have exercised the sleep/wake machinery,
  // not just the lock-free fast path.
  EXPECT_GE(fx.ring.counters().producer_sleeps.load() +
                fx.ring.counters().consumer_sleeps.load(),
            1u);
}

TEST(NetShm, DoorbellWakesTheMultiplexedWaiterOnPush) {
  // The router's multiplexed wait: one doorbell over N response rings.
  // A push on any ring must end a doorbell_wait promptly — much sooner
  // than the wait's timeout.
  auto bell_region = mnet::ShmRegion::create(sizeof(mnet::Doorbell));
  ASSERT_NE(bell_region, nullptr);
  auto* bell = new (bell_region->data()) mnet::Doorbell();
  RingFixture fx(4096);
  fx.ring.set_doorbell(bell);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_EQ(fx.ring.push("ding", soon()), mnet::RingStatus::Ok);
  });
  const auto start = Clock::now();
  bool saw_frame = false;
  // begin_wait / re-check / wait / end_wait, exactly as the router does.
  while (Clock::now() - start < std::chrono::seconds(5)) {
    const std::uint32_t seen = mnet::doorbell_begin_wait(*bell);
    if (fx.ring.depth_bytes() > 0) {
      mnet::doorbell_end_wait(*bell);
      saw_frame = true;
      break;
    }
    mnet::doorbell_wait(*bell, seen, std::chrono::milliseconds(1000));
    mnet::doorbell_end_wait(*bell);
  }
  EXPECT_TRUE(saw_frame);
  // The wake came from the push, not from bleeding through the 1s slices.
  EXPECT_LT(Clock::now() - start, std::chrono::milliseconds(900));
  producer.join();
  std::string got;
  EXPECT_EQ(fx.ring.pop(&got, soon()), mnet::RingStatus::Ok);
}

TEST(NetShm, DoorbellRingBeforeBeginWaitIsNotLost) {
  // The race the protocol exists for: a push that lands between the
  // consumer's last check and its begin_wait must make the following
  // doorbell_wait return immediately (seq already moved).
  auto bell_region = mnet::ShmRegion::create(sizeof(mnet::Doorbell));
  ASSERT_NE(bell_region, nullptr);
  auto* bell = new (bell_region->data()) mnet::Doorbell();
  const std::uint32_t seen = mnet::doorbell_begin_wait(*bell);
  mnet::doorbell_ring(*bell);
  const auto start = Clock::now();
  mnet::doorbell_wait(*bell, seen, std::chrono::seconds(10));
  mnet::doorbell_end_wait(*bell);
  EXPECT_LT(Clock::now() - start, std::chrono::seconds(5));
}
