// TCP plumbing tests: endpoint grammar, ephemeral-port listeners, and the
// bounded-time guarantees of accept/connect — a router must never hang on
// a black-holed or absent worker.

#include "malsched/net/socket.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "malsched/net/frame.hpp"

namespace mnet = malsched::net;

TEST(NetSocket, ParseEndpointAcceptsHostColonPort) {
  const auto endpoint = mnet::parse_endpoint("127.0.0.1:9000");
  ASSERT_TRUE(endpoint.has_value());
  EXPECT_EQ(endpoint->host, "127.0.0.1");
  EXPECT_EQ(endpoint->port, 9000);
  EXPECT_EQ(endpoint->to_string(), "127.0.0.1:9000");

  const auto named = mnet::parse_endpoint("worker-3.fleet.internal:65535");
  ASSERT_TRUE(named.has_value());
  EXPECT_EQ(named->host, "worker-3.fleet.internal");
  EXPECT_EQ(named->port, 65535);

  // Port 0 is legal: it asks the kernel for an ephemeral listener port.
  const auto ephemeral = mnet::parse_endpoint("localhost:0");
  ASSERT_TRUE(ephemeral.has_value());
  EXPECT_EQ(ephemeral->port, 0);
}

TEST(NetSocket, ParseEndpointRejectsMalformedInput) {
  EXPECT_FALSE(mnet::parse_endpoint("").has_value());
  EXPECT_FALSE(mnet::parse_endpoint("no-port").has_value());
  EXPECT_FALSE(mnet::parse_endpoint(":9000").has_value());   // empty host
  EXPECT_FALSE(mnet::parse_endpoint("host:").has_value());   // empty port
  EXPECT_FALSE(mnet::parse_endpoint("host:abc").has_value());
  EXPECT_FALSE(mnet::parse_endpoint("host:65536").has_value());  // range
  EXPECT_FALSE(mnet::parse_endpoint("host:-1").has_value());
}

TEST(NetSocket, ParseEndpointListSplitsOnCommasAndFailsClosed) {
  const auto list = mnet::parse_endpoint_list("a:1,b:2,c:3");
  ASSERT_TRUE(list.has_value());
  ASSERT_EQ(list->size(), 3u);
  EXPECT_EQ((*list)[0].to_string(), "a:1");
  EXPECT_EQ((*list)[2].to_string(), "c:3");

  const auto single = mnet::parse_endpoint_list("10.0.0.7:9000");
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->size(), 1u);

  // One bad element poisons the whole list — a fleet with a typo'd worker
  // address must fail loudly at parse time, not quietly run degraded.
  EXPECT_FALSE(mnet::parse_endpoint_list("a:1,bogus,c:3").has_value());
  EXPECT_FALSE(mnet::parse_endpoint_list("a:1,,c:3").has_value());
  EXPECT_FALSE(mnet::parse_endpoint_list("a:1,b:2,").has_value());
  EXPECT_FALSE(mnet::parse_endpoint_list("").has_value());
}

TEST(NetSocket, ListenConnectAcceptCarriesFramesBothWays) {
  std::string error;
  std::uint16_t port = 0;
  const int listen_fd = mnet::tcp_listen({"127.0.0.1", 0}, &error, &port);
  ASSERT_GE(listen_fd, 0) << error;
  EXPECT_GT(port, 0) << "ephemeral port must be reported back";

  const int client = mnet::tcp_connect({"127.0.0.1", port},
                                       std::chrono::seconds(5), &error);
  ASSERT_GE(client, 0) << error;
  const int server =
      mnet::tcp_accept(listen_fd, std::chrono::seconds(5), &error);
  ASSERT_GE(server, 0) << error;

  ASSERT_TRUE(mnet::write_frame(client, "ping 1"));
  std::string payload;
  ASSERT_TRUE(mnet::read_frame(server, &payload));
  EXPECT_EQ(payload, "ping 1");
  ASSERT_TRUE(mnet::write_frame(server, "pong 1"));
  ASSERT_TRUE(mnet::read_frame(client, &payload));
  EXPECT_EQ(payload, "pong 1");

  ::close(client);
  ::close(server);
  ::close(listen_fd);
}

TEST(NetSocket, AcceptTimesOutWhenNobodyDials) {
  std::string error;
  std::uint16_t port = 0;
  const int listen_fd = mnet::tcp_listen({"127.0.0.1", 0}, &error, &port);
  ASSERT_GE(listen_fd, 0) << error;

  const auto start = std::chrono::steady_clock::now();
  const int fd =
      mnet::tcp_accept(listen_fd, std::chrono::milliseconds(100), &error);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(fd, 0);
  EXPECT_FALSE(error.empty());
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 5.0);
  ::close(listen_fd);
}

TEST(NetSocket, ConnectToAVacantPortFailsWithinTheBudget) {
  // Bind-then-close guarantees the port is vacant; connection-refused is
  // retried within the budget (the worker-still-starting race), so the call
  // costs about the timeout and then fails typed — never hangs.
  std::string error;
  std::uint16_t port = 0;
  const int listen_fd = mnet::tcp_listen({"127.0.0.1", 0}, &error, &port);
  ASSERT_GE(listen_fd, 0) << error;
  ::close(listen_fd);

  const auto start = std::chrono::steady_clock::now();
  const int fd = mnet::tcp_connect({"127.0.0.1", port},
                                   std::chrono::milliseconds(300), &error);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(fd, 0);
  EXPECT_FALSE(error.empty());
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 10.0);
}

TEST(NetSocket, ConnectSucceedsWhileTheListenerIsStillWarmingUp) {
  // The CI startup race in miniature: the connect begins before anyone
  // listens, and a listener appears within the budget.
  std::string error;
  std::uint16_t port = 0;
  {
    const int probe = mnet::tcp_listen({"127.0.0.1", 0}, &error, &port);
    ASSERT_GE(probe, 0) << error;
    ::close(probe);  // port now vacant but known
  }
  std::thread late_listener([port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    std::string listen_error;
    const int listen_fd =
        mnet::tcp_listen({"127.0.0.1", port}, &listen_error);
    EXPECT_GE(listen_fd, 0) << listen_error;
    if (listen_fd >= 0) {
      std::string accept_error;
      const int fd =
          mnet::tcp_accept(listen_fd, std::chrono::seconds(10), &accept_error);
      if (fd >= 0) {
        ::close(fd);
      }
      ::close(listen_fd);
    }
  });
  const int fd = mnet::tcp_connect({"127.0.0.1", port},
                                   std::chrono::seconds(10), &error);
  EXPECT_GE(fd, 0) << error;
  if (fd >= 0) {
    ::close(fd);
  }
  late_listener.join();
}
