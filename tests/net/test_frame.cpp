// Transport-robustness tests of the frame layer: a reader facing a torn,
// truncated, hostile or silent peer must fail *typed* (FrameError), never
// over-read past a frame boundary, and never hang — the router dials
// arbitrary TCP endpoints, so read_frame's peer may be anything.

#include "malsched/net/frame.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "malsched/net/socket.hpp"

namespace mnet = malsched::net;

namespace {

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    for (const int fd : fds) {
      if (fd >= 0) {
        ::close(fd);
      }
    }
  }
  void close_end(int index) {
    ::close(fds[index]);
    fds[index] = -1;
  }
};

// Raw bytes of a frame as write_frame would emit them, for byte-level
// fault injection (partial prefixes, dribbles, hostile lengths).
std::string raw_frame(const std::string& payload) {
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::string bytes;
  bytes.push_back(static_cast<char>(length & 0xFF));
  bytes.push_back(static_cast<char>((length >> 8) & 0xFF));
  bytes.push_back(static_cast<char>((length >> 16) & 0xFF));
  bytes.push_back(static_cast<char>((length >> 24) & 0xFF));
  bytes += payload;
  return bytes;
}

void send_raw(int fd, const std::string& bytes) {
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
}

}  // namespace

TEST(NetFrame, TornFrameDribbledByteAtATimeReassembles) {
  // A TCP peer may deliver a frame in arbitrarily small segments; the
  // reader must reassemble exactly 4 + length bytes, no more, no less.
  SocketPair channel;
  const std::string payload = "solve 7 3 0x1p+0 - wdeq small";
  const std::string bytes = raw_frame(payload) + raw_frame("");
  std::thread dribbler([&] {
    for (const char byte : bytes) {
      ASSERT_EQ(::send(channel.fds[0], &byte, 1, MSG_NOSIGNAL), 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::string received;
  mnet::FrameError error = mnet::FrameError::Timeout;
  EXPECT_TRUE(mnet::read_frame(channel.fds[1], &received, &error));
  EXPECT_EQ(received, payload);
  EXPECT_EQ(error, mnet::FrameError::None);
  // The empty frame dribbled behind it is intact: no over-read occurred.
  EXPECT_TRUE(mnet::read_frame(channel.fds[1], &received, &error));
  EXPECT_EQ(received, "");
  dribbler.join();
}

TEST(NetFrame, DeadlineReaderReassemblesADribbleWithinBudget) {
  SocketPair channel;
  const std::string payload(200, 'x');
  std::thread dribbler([&] {
    const std::string bytes = raw_frame(payload);
    for (std::size_t i = 0; i < bytes.size(); i += 7) {
      const std::size_t chunk = std::min<std::size_t>(7, bytes.size() - i);
      ASSERT_EQ(::send(channel.fds[0], bytes.data() + i, chunk, MSG_NOSIGNAL),
                static_cast<ssize_t>(chunk));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::string received;
  EXPECT_TRUE(mnet::read_frame_deadline(
      channel.fds[1], &received,
      std::chrono::steady_clock::now() + std::chrono::seconds(10)));
  EXPECT_EQ(received, payload);
  dribbler.join();
}

TEST(NetFrame, ZeroLengthPrefixIsAnEmptyFrameNotAnOverRead) {
  // Hostile-prefix fuzz case "0": a zero length is a legal empty frame and
  // must not consume any byte of the frame behind it.
  SocketPair channel;
  send_raw(channel.fds[0], raw_frame("") + raw_frame("next"));
  std::string received = "sentinel";
  EXPECT_TRUE(mnet::read_frame(channel.fds[1], &received));
  EXPECT_EQ(received, "");
  EXPECT_TRUE(mnet::read_frame(channel.fds[1], &received));
  EXPECT_EQ(received, "next");
}

TEST(NetFrame, MaxU32LengthPrefixFailsOversizeWithoutAllocating) {
  // Hostile-prefix fuzz case "max": 0xFFFFFFFF must be rejected on the
  // prefix alone — typed Oversize, no 4 GiB allocation, no waiting for
  // payload bytes that will never come.
  for (const bool use_deadline : {false, true}) {
    SocketPair channel;
    send_raw(channel.fds[0], std::string(4, '\xFF'));
    std::string received;
    mnet::FrameError error = mnet::FrameError::None;
    if (use_deadline) {
      EXPECT_FALSE(mnet::read_frame_deadline(
          channel.fds[1], &received,
          std::chrono::steady_clock::now() + std::chrono::seconds(5),
          &error));
    } else {
      EXPECT_FALSE(mnet::read_frame(channel.fds[1], &received, &error));
    }
    EXPECT_EQ(error, mnet::FrameError::Oversize);
  }
}

TEST(NetFrame, TruncatedPrefixClassifiesTruncatedNotEof) {
  // Hostile-prefix fuzz case "truncated": the stream ends two bytes into
  // the length prefix.  That is a torn frame (Truncated), distinct from a
  // clean close on a frame boundary (Eof).
  SocketPair channel;
  send_raw(channel.fds[0], std::string("\x05\x00", 2));
  channel.close_end(0);
  std::string received;
  mnet::FrameError error = mnet::FrameError::None;
  EXPECT_FALSE(mnet::read_frame(channel.fds[1], &received, &error));
  EXPECT_EQ(error, mnet::FrameError::Truncated);
}

TEST(NetFrame, TruncatedPayloadClassifiesTruncated) {
  // The prefix promises 10 bytes; only 3 arrive before EOF.
  SocketPair channel;
  send_raw(channel.fds[0],
           std::string("\x0a\x00\x00\x00", 4) + std::string("abc"));
  channel.close_end(0);
  std::string received;
  mnet::FrameError error = mnet::FrameError::None;
  EXPECT_FALSE(mnet::read_frame(channel.fds[1], &received, &error));
  EXPECT_EQ(error, mnet::FrameError::Truncated);
}

TEST(NetFrame, CleanCloseOnAFrameBoundaryClassifiesEof) {
  SocketPair channel;
  channel.close_end(0);
  std::string received;
  mnet::FrameError error = mnet::FrameError::None;
  EXPECT_FALSE(mnet::read_frame(channel.fds[1], &received, &error));
  EXPECT_EQ(error, mnet::FrameError::Eof);
}

TEST(NetFrame, WriteToAClosedPeerClassifiesDeadPeerNotSigpipe) {
  SocketPair channel;
  channel.close_end(1);
  mnet::FrameError error = mnet::FrameError::None;
  // Large enough to defeat any kernel buffering of the first write.
  EXPECT_FALSE(
      mnet::write_frame(channel.fds[0], std::string(1 << 20, 'x'), &error));
  EXPECT_EQ(error, mnet::FrameError::DeadPeer);
}

TEST(NetFrame, TcpConnectionResetClassifiesDeadPeer) {
  // The multi-host death mode the socketpair path never sees: the peer
  // vanishes as an RST (SO_LINGER zero + close), which recv reports as
  // ECONNRESET — and the classifier folds into the same DeadPeer branch.
  std::string net_error;
  std::uint16_t port = 0;
  const int listen_fd =
      mnet::tcp_listen({"127.0.0.1", 0}, &net_error, &port);
  ASSERT_GE(listen_fd, 0) << net_error;
  const int client = mnet::tcp_connect({"127.0.0.1", port},
                                       std::chrono::seconds(5), &net_error);
  ASSERT_GE(client, 0) << net_error;
  const int server =
      mnet::tcp_accept(listen_fd, std::chrono::seconds(5), &net_error);
  ASSERT_GE(server, 0) << net_error;

  struct linger abort_on_close = {1, 0};
  ASSERT_EQ(::setsockopt(client, SOL_SOCKET, SO_LINGER, &abort_on_close,
                         sizeof abort_on_close),
            0);
  ::close(client);  // sends RST instead of FIN

  std::string received;
  mnet::FrameError error = mnet::FrameError::None;
  EXPECT_FALSE(mnet::read_frame(server, &received, &error));
  EXPECT_EQ(error, mnet::FrameError::DeadPeer);
  ::close(server);
  ::close(listen_fd);
}

TEST(NetFrame, SilentPeerTimesOutInsteadOfHangingTheReader) {
  SocketPair channel;
  const auto start = std::chrono::steady_clock::now();
  std::string received;
  mnet::FrameError error = mnet::FrameError::None;
  EXPECT_FALSE(mnet::read_frame_deadline(
      channel.fds[1], &received,
      start + std::chrono::milliseconds(150), &error));
  EXPECT_EQ(error, mnet::FrameError::Timeout);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 5.0)
      << "a silent peer must cost the deadline, not forever";
}

TEST(NetFrame, FrameStalledMidPayloadTimesOutTyped) {
  // A hostile greeting can promise bytes that never arrive; the deadline
  // reader must give up mid-frame, not block on the missing tail.
  SocketPair channel;
  send_raw(channel.fds[0],
           std::string("\x40\x00\x00\x00", 4) + std::string("partial"));
  std::string received;
  mnet::FrameError error = mnet::FrameError::None;
  EXPECT_FALSE(mnet::read_frame_deadline(
      channel.fds[1], &received,
      std::chrono::steady_clock::now() + std::chrono::milliseconds(150),
      &error));
  EXPECT_EQ(error, mnet::FrameError::Timeout);
}

TEST(NetFrame, DribblingPeerExhaustsTheAbsoluteDeadlineAcrossChunks) {
  // Each individual byte arrives well inside any per-chunk window, so a
  // reader that re-armed its budget per partial read would never give up.
  // The deadline is absolute across the whole frame: a peer dribbling a
  // large frame slower than the total budget must classify Timeout.
  SocketPair channel;
  std::atomic<bool> stop{false};
  std::thread dribbler([&] {
    // Promise 64 bytes, deliver one every 30ms: ~2s to finish a frame the
    // reader only budgets 250ms for.
    const std::string bytes = raw_frame(std::string(64, 'd'));
    for (char byte : bytes) {
      if (stop.load()) {
        return;
      }
      if (::send(channel.fds[0], &byte, 1, MSG_NOSIGNAL) != 1) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  });
  const auto start = std::chrono::steady_clock::now();
  std::string received;
  mnet::FrameError error = mnet::FrameError::None;
  EXPECT_FALSE(mnet::read_frame_deadline(
      channel.fds[1], &received,
      start + std::chrono::milliseconds(250), &error));
  EXPECT_EQ(error, mnet::FrameError::Timeout);
  // The reader came back near the absolute deadline, not after the frame.
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(1500));
  stop.store(true);
  dribbler.join();
}

TEST(NetFrame, DeadPeerClassifierCoversTcpAndPipeErrnos) {
  EXPECT_TRUE(mnet::is_dead_peer_errno(ECONNRESET));
  EXPECT_TRUE(mnet::is_dead_peer_errno(EPIPE));
  EXPECT_TRUE(mnet::is_dead_peer_errno(ECONNABORTED));
  EXPECT_TRUE(mnet::is_dead_peer_errno(ETIMEDOUT));
  EXPECT_TRUE(mnet::is_dead_peer_errno(ENOTCONN));
  EXPECT_FALSE(mnet::is_dead_peer_errno(0));
  EXPECT_FALSE(mnet::is_dead_peer_errno(EAGAIN));
  EXPECT_FALSE(mnet::is_dead_peer_errno(EINVAL));
  EXPECT_FALSE(mnet::is_dead_peer_errno(ENOMEM));
}

TEST(NetFrame, ErrorNamesAreDistinctAndHumanReadable) {
  const std::vector<mnet::FrameError> all = {
      mnet::FrameError::None,      mnet::FrameError::Eof,
      mnet::FrameError::DeadPeer,  mnet::FrameError::Oversize,
      mnet::FrameError::Truncated, mnet::FrameError::Timeout};
  std::set<std::string> names;
  for (const auto error : all) {
    const std::string name = mnet::frame_error_name(error);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_STREQ(mnet::frame_error_name(mnet::FrameError::DeadPeer),
               "dead-peer");
}
