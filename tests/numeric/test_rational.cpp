#include "malsched/numeric/rational.hpp"

#include <gtest/gtest.h>

#include "malsched/support/rng.hpp"

namespace mn = malsched::numeric;
using mn::Rational;

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.to_string(), "0");
  EXPECT_EQ(r.den().to_int64(), 1);
}

TEST(Rational, NormalizesSignAndGcd) {
  Rational r(6, -8);
  EXPECT_EQ(r.num().to_int64(), -3);
  EXPECT_EQ(r.den().to_int64(), 4);
  EXPECT_EQ(r.to_string(), "-3/4");
}

TEST(Rational, ArithmeticExact) {
  Rational third(1, 3);
  Rational sixth(1, 6);
  EXPECT_EQ(third + sixth, Rational(1, 2));
  EXPECT_EQ(third - sixth, sixth);
  EXPECT_EQ(third * sixth, Rational(1, 18));
  EXPECT_EQ(third / sixth, Rational(2));
  EXPECT_EQ(-third, Rational(-1, 3));
}

TEST(Rational, OneThirdTimesThreeIsExactlyOne) {
  Rational third(1, 3);
  EXPECT_EQ(third * Rational(3), Rational(1));
  // The double analogue would not be exact; that is why this type exists.
  Rational sum;
  for (int i = 0; i < 3; ++i) {
    sum += third;
  }
  EXPECT_EQ(sum, Rational(1));
}

TEST(Rational, ComparisonCrossMultiplies) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GE(Rational(5, 10), Rational(1, 2));
  EXPECT_EQ(Rational::compare(Rational(7, 3), Rational(7, 3)), 0);
}

TEST(Rational, FromDoubleIsExact) {
  EXPECT_EQ(Rational::from_double(0.5), Rational(1, 2));
  EXPECT_EQ(Rational::from_double(0.25), Rational(1, 4));
  EXPECT_EQ(Rational::from_double(-1.75), Rational(-7, 4));
  EXPECT_EQ(Rational::from_double(3.0), Rational(3));
  EXPECT_TRUE(Rational::from_double(0.0).is_zero());
  // 0.1 is NOT one tenth in binary; conversion must reflect the true value.
  EXPECT_NE(Rational::from_double(0.1), Rational(1, 10));
  EXPECT_NEAR(Rational::from_double(0.1).to_double(), 0.1, 0.0);
}

TEST(Rational, FromDoubleRoundTripsRandomDoubles) {
  malsched::support::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(-1e6, 1e6);
    EXPECT_DOUBLE_EQ(Rational::from_double(v).to_double(), v);
  }
}

TEST(Rational, ParseForms) {
  EXPECT_EQ(Rational::parse("3/4"), Rational(3, 4));
  EXPECT_EQ(Rational::parse("-3/4"), Rational(-3, 4));
  EXPECT_EQ(Rational::parse("7"), Rational(7));
  EXPECT_EQ(Rational::parse("0.125"), Rational(1, 8));
  EXPECT_EQ(Rational::parse("-2.5"), Rational(-5, 2));
}

TEST(Rational, ReciprocalAndAbs) {
  EXPECT_EQ(Rational(-3, 4).reciprocal(), Rational(-4, 3));
  EXPECT_EQ(Rational(-3, 4).abs(), Rational(3, 4));
  EXPECT_EQ(Rational(5).reciprocal(), Rational(1, 5));
}

TEST(Rational, CompoundAssignment) {
  Rational r(1, 2);
  r += Rational(1, 3);
  r -= Rational(1, 6);
  r *= Rational(3);
  r /= Rational(2);
  EXPECT_EQ(r, Rational(1));
}

TEST(Rational, LargeChainStaysReduced) {
  // Telescoping product (1/2)(2/3)...(99/100) = 1/100; intermediate values
  // must keep getting reduced or the numbers explode.
  Rational prod(1);
  for (int k = 2; k <= 100; ++k) {
    prod *= Rational(k - 1, k);
  }
  EXPECT_EQ(prod, Rational(1, 100));
}

TEST(Rational, SignumAndZeroHandling) {
  EXPECT_EQ(Rational(-2, 7).signum(), -1);
  EXPECT_EQ(Rational(0, 7).signum(), 0);
  EXPECT_EQ(Rational(2, 7).signum(), 1);
  EXPECT_EQ(Rational(0, 7).den().to_int64(), 1);  // canonical zero
}
