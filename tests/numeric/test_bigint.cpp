#include "malsched/numeric/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "malsched/support/rng.hpp"

namespace mn = malsched::numeric;
using mn::BigInt;

TEST(BigInt, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.signum(), 0);
  EXPECT_EQ(z.to_decimal(), "0");
}

TEST(BigInt, SmallRoundTrips) {
  for (long long v : {0LL, 1LL, -1LL, 42LL, -42LL, 1000000007LL,
                      std::numeric_limits<long long>::max(),
                      std::numeric_limits<long long>::min()}) {
    BigInt b(v);
    EXPECT_TRUE(b.fits_int64()) << v;
    EXPECT_EQ(b.to_int64(), v);
    EXPECT_EQ(BigInt::from_decimal(b.to_decimal()), b);
  }
}

TEST(BigInt, DecimalParseAndPrint) {
  const std::string digits = "123456789012345678901234567890";
  BigInt b = BigInt::from_decimal(digits);
  EXPECT_EQ(b.to_decimal(), digits);
  BigInt neg = BigInt::from_decimal("-" + digits);
  EXPECT_EQ(neg.to_decimal(), "-" + digits);
  EXPECT_EQ(neg.abs(), b);
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt::from_u64(0xffffffffffffffffULL);
  BigInt one(1);
  EXPECT_EQ((a + one).to_decimal(), "18446744073709551616");  // 2^64
}

TEST(BigInt, SubtractionSignHandling) {
  BigInt a(100);
  BigInt b(250);
  EXPECT_EQ((a - b).to_int64(), -150);
  EXPECT_EQ((b - a).to_int64(), 150);
  EXPECT_TRUE((a - a).is_zero());
}

TEST(BigInt, MultiplicationMatchesKnownProduct) {
  BigInt a = BigInt::from_decimal("123456789123456789");
  BigInt b = BigInt::from_decimal("987654321987654321");
  EXPECT_EQ((a * b).to_decimal(), "121932631356500531347203169112635269");
}

TEST(BigInt, MultiplicationSigns) {
  BigInt a(-7);
  BigInt b(6);
  EXPECT_EQ((a * b).to_int64(), -42);
  EXPECT_EQ((a * a).to_int64(), 49);
  EXPECT_TRUE((a * BigInt(0)).is_zero());
}

TEST(BigInt, DivModTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).to_int64(), 3);
  EXPECT_EQ((BigInt(-7) / BigInt(2)).to_int64(), -3);
  EXPECT_EQ((BigInt(7) % BigInt(2)).to_int64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(2)).to_int64(), -1);
  EXPECT_EQ((BigInt(7) % BigInt(-2)).to_int64(), 1);
}

TEST(BigInt, DivisionLargeByLarge) {
  BigInt n = BigInt::from_decimal("340282366920938463463374607431768211456");  // 2^128
  BigInt d = BigInt::from_decimal("18446744073709551616");                    // 2^64
  EXPECT_EQ((n / d).to_decimal(), "18446744073709551616");
  EXPECT_TRUE((n % d).is_zero());
}

TEST(BigInt, DivisionIdentityRandomized) {
  malsched::support::Rng rng(12345);
  for (int trial = 0; trial < 500; ++trial) {
    // Build operands of random limb sizes, exercising the Knuth-D paths
    // (including the rare "add back" branch statistically).
    auto random_big = [&](int limbs) {
      BigInt out;
      for (int i = 0; i < limbs; ++i) {
        out = out * BigInt::from_u64(0x100000000ULL) +
              BigInt::from_u64(rng.next_u64() & 0xffffffffULL);
      }
      return out;
    };
    BigInt u = random_big(1 + static_cast<int>(rng.uniform_int(0, 5)));
    BigInt v = random_big(1 + static_cast<int>(rng.uniform_int(0, 3)));
    if (v.is_zero()) {
      continue;
    }
    if (rng.bernoulli(0.5)) {
      u = u.negated();
    }
    if (rng.bernoulli(0.5)) {
      v = v.negated();
    }
    const auto dm = u.divmod(v);
    EXPECT_EQ(dm.quotient * v + dm.remainder, u);
    EXPECT_LT(dm.remainder.abs(), v.abs());
    if (!dm.remainder.is_zero()) {
      EXPECT_EQ(dm.remainder.signum(), u.signum());
    }
  }
}

TEST(BigInt, CompareTotalOrder) {
  BigInt a(-5);
  BigInt b(0);
  BigInt c(5);
  BigInt d = BigInt::from_decimal("99999999999999999999");
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  EXPECT_GT(d, a);
  EXPECT_LE(a, a);
  EXPECT_GE(d, d);
}

TEST(BigInt, GcdBasics) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(7)).to_int64(), 7);
  EXPECT_EQ(BigInt::gcd(BigInt(13), BigInt(7)).to_int64(), 1);
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt(0).bit_length(), 0u);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ(BigInt(256).bit_length(), 9u);
  EXPECT_EQ(BigInt::from_decimal("18446744073709551616").bit_length(), 65u);
}

TEST(BigInt, ToDoubleApproximation) {
  EXPECT_DOUBLE_EQ(BigInt(1234567).to_double(), 1234567.0);
  EXPECT_DOUBLE_EQ(BigInt(-42).to_double(), -42.0);
  const double big = BigInt::from_decimal("1000000000000000000000").to_double();
  EXPECT_NEAR(big, 1e21, 1e6);
}

TEST(BigInt, FitsInt64Boundary) {
  BigInt max_ll(std::numeric_limits<long long>::max());
  BigInt min_ll(std::numeric_limits<long long>::min());
  EXPECT_TRUE(max_ll.fits_int64());
  EXPECT_TRUE(min_ll.fits_int64());
  EXPECT_FALSE((max_ll + BigInt(1)).fits_int64());
  EXPECT_FALSE((min_ll - BigInt(1)).fits_int64());
  EXPECT_EQ(min_ll.to_int64(), std::numeric_limits<long long>::min());
}
