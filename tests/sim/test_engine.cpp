#include "malsched/sim/engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>

#include "malsched/core/generators.hpp"
#include "malsched/core/wdeq.hpp"
#include "malsched/sim/policy.hpp"

namespace mc = malsched::core;
namespace msim = malsched::sim;
namespace ms = malsched::support;

TEST(Engine, WdeqPolicyMatchesCoreWdeq) {
  // The generic engine running the WDEQ policy must reproduce core's
  // dedicated WDEQ simulation exactly.
  ms::Rng rng(211);
  for (int rep = 0; rep < 20; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 6;
    config.processors = 3.0;
    const auto inst = mc::generate(config, rng);
    const auto engine = msim::run_policy(inst, *msim::make_wdeq_policy());
    const auto direct = mc::run_wdeq(inst);
    const auto direct_completions = direct.schedule.completions();
    for (std::size_t i = 0; i < inst.size(); ++i) {
      EXPECT_NEAR(engine.completions[i], direct_completions[i], 1e-9)
          << "rep " << rep << " task " << i;
    }
  }
}

TEST(Engine, SchedulesAreValidForAllPolicies) {
  ms::Rng rng(223);
  for (const auto& policy : msim::all_policies()) {
    for (int rep = 0; rep < 10; ++rep) {
      mc::GeneratorConfig config;
      config.family = mc::Family::Uniform;
      config.num_tasks = 6;
      config.processors = 2.0;
      const auto inst = mc::generate(config, rng);
      const auto result = msim::run_policy(inst, *policy);
      const auto check = result.schedule.validate(inst);
      EXPECT_TRUE(check.valid)
          << policy->name() << " rep " << rep << ": " << check.message;
      EXPECT_LE(result.events, inst.size() + 1) << policy->name();
    }
  }
}

TEST(Engine, WeightedCompletionConsistent) {
  ms::Rng rng(227);
  mc::GeneratorConfig config;
  config.family = mc::Family::Uniform;
  config.num_tasks = 5;
  config.processors = 2.0;
  const auto inst = mc::generate(config, rng);
  for (const auto& policy : msim::all_policies()) {
    const auto result = msim::run_policy(inst, *policy);
    EXPECT_NEAR(result.weighted_completion,
                result.schedule.weighted_completion(inst), 1e-7)
        << policy->name();
  }
}

TEST(Engine, SmithGreedyBeatsFifoOnSkewedWeights) {
  // A clairvoyant priority policy should dominate rigid FCFS on instances
  // with a heavy short task stuck behind a long one.
  const mc::Instance inst(2.0, {{4.0, 2.0, 0.1},    // long, unimportant
                                {0.2, 2.0, 10.0}});  // short, critical
  const auto smith = msim::run_policy(inst, *msim::make_smith_greedy_policy());
  const auto fifo = msim::run_policy(inst, *msim::make_fifo_rigid_policy());
  EXPECT_LT(smith.weighted_completion, fifo.weighted_completion);
}

TEST(Engine, FifoRigidIsSequentialForFullWidthTasks) {
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}, {2.0, 2.0, 1.0}});
  const auto result = msim::run_policy(inst, *msim::make_fifo_rigid_policy());
  EXPECT_NEAR(result.completions[0], 1.0, 1e-9);
  EXPECT_NEAR(result.completions[1], 2.0, 1e-9);
}

TEST(Engine, WrrWastesSurplusUnlikeWdeq) {
  // One narrow task and one wide: WDEQ redistributes the narrow task's
  // surplus, WRR does not, so WDEQ finishes the wide task earlier.
  const mc::Instance inst(4.0, {{1.0, 1.0, 1.0}, {4.0, 4.0, 1.0}});
  const auto wdeq = msim::run_policy(inst, *msim::make_wdeq_policy());
  const auto wrr = msim::run_policy(inst, *msim::make_wrr_policy());
  EXPECT_LT(wdeq.completions[1], wrr.completions[1] - 1e-9);
}

TEST(Engine, RigidDeadlockGuard) {
  // First task wider than P can never fit "rigidly": the guard lets it run
  // malleably instead of hanging.
  const mc::Instance inst(2.0, {{4.0, 3.0, 1.0}});
  const auto result = msim::run_policy(inst, *msim::make_fifo_rigid_policy());
  EXPECT_NEAR(result.completions[0], 2.0, 1e-9);
}

TEST(Engine, EmptyInstanceProducesEmptyResult) {
  // The service layer forwards arbitrary client instances; zero tasks must
  // be a no-op for every policy, not a crash.
  const mc::Instance empty(2.0, {});
  for (const auto& policy : msim::all_policies()) {
    const auto result = msim::run_policy(empty, *policy);
    EXPECT_EQ(result.events, 0u) << policy->name();
    EXPECT_EQ(result.weighted_completion, 0.0) << policy->name();
    EXPECT_TRUE(result.completions.empty()) << policy->name();
    EXPECT_TRUE(result.schedule.steps().empty()) << policy->name();
  }
}

TEST(Engine, EmptyInstanceOnlineVariant) {
  const mc::Instance empty(2.0, {});
  const auto result = msim::run_policy_online(empty, {},
                                              *msim::make_wdeq_policy());
  EXPECT_EQ(result.events, 0u);
  EXPECT_TRUE(result.completions.empty());
}

TEST(Engine, EventCountStaysWithinDefaultMaxEvents) {
  // EngineOptions documents the default budget max_events = 4n + 16; verify
  // every built-in policy fits it with margin across families and the
  // online arrival path (arrivals add events beyond the offline n + 1).
  ms::Rng rng(229);
  for (const auto& policy : msim::all_policies()) {
    for (const auto family :
         {mc::Family::Uniform, mc::Family::BandwidthLike,
          mc::Family::HeavyTailVolumes}) {
      for (int rep = 0; rep < 5; ++rep) {
        mc::GeneratorConfig config;
        config.family = family;
        config.num_tasks = 8;
        config.processors = 4.0;
        const auto inst = mc::generate(config, rng);

        const auto offline = msim::run_policy(inst, *policy);
        EXPECT_LE(offline.events, 4 * inst.size() + 16) << policy->name();

        std::vector<double> release(inst.size());
        for (std::size_t i = 0; i < release.size(); ++i) {
          release[i] = rng.uniform(0.0, 2.0);
        }
        const auto online =
            msim::run_policy_online(inst, release, *policy);
        EXPECT_LE(online.events, 4 * inst.size() + 16) << policy->name();
      }
    }
  }
}

TEST(EngineDeathTest, StarvingPolicyTripsTheSafetyValve) {
  // A policy that never allocates anything makes no progress; the engine
  // must abort with a diagnostic instead of spinning forever.
  class StarvingPolicy final : public msim::AllocationPolicy {
   public:
    [[nodiscard]] std::string name() const override { return "starve"; }
    [[nodiscard]] std::vector<double> allocate(
        const msim::PolicyContext& context) const override {
      return std::vector<double>(context.weights.size(), 0.0);
    }
  };
  const mc::Instance inst(2.0, {{1.0, 1.0, 1.0}});
  EXPECT_DEATH((void)msim::run_policy(inst, StarvingPolicy()), "starves");
}

TEST(EngineDeathTest, ExplicitMaxEventsIsAHardCap) {
  // max_events is documented as the exact abort threshold: a 2-task run
  // needs 2 events, so a budget of 1 must trip the valve.
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}, {1.0, 1.0, 1.0}});
  msim::EngineOptions options;
  options.max_events = 1;
  EXPECT_DEATH(
      (void)msim::run_policy(inst, *msim::make_wdeq_policy(), options),
      "stopped making progress");
}

TEST(Engine, ExplicitMaxEventsOverrideIsAccepted) {
  // A generous explicit budget must not change results.
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}, {1.0, 1.0, 1.0}});
  msim::EngineOptions options;
  options.max_events = 1000;
  const auto result =
      msim::run_policy(inst, *msim::make_wdeq_policy(), options);
  const auto default_result = msim::run_policy(inst, *msim::make_wdeq_policy());
  EXPECT_EQ(result.weighted_completion, default_result.weighted_completion);
  EXPECT_EQ(result.events, default_result.events);
}

TEST(Engine, PreCancelledTokenAbortsBeforeTheFirstEvent) {
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}, {1.0, 1.0, 1.0}});
  mc::CancelSource source;
  source.request_cancel();
  msim::EngineOptions options;
  options.cancel = source.token();
  const auto result =
      msim::run_policy(inst, *msim::make_wdeq_policy(), options);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.events, 0u);
  for (const double completion : result.completions) {
    EXPECT_EQ(completion, 0.0);  // partial trace: nothing finished
  }
}

TEST(Engine, UnfiredTokenChangesNothing) {
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}, {1.0, 1.0, 1.0}});
  mc::CancelSource source;
  msim::EngineOptions options;
  options.cancel = source.token();
  const auto with_token =
      msim::run_policy(inst, *msim::make_wdeq_policy(), options);
  const auto without = msim::run_policy(inst, *msim::make_wdeq_policy());
  EXPECT_FALSE(with_token.cancelled);
  EXPECT_EQ(with_token.weighted_completion, without.weighted_completion);
  EXPECT_EQ(with_token.events, without.events);
}

TEST(Engine, ExpiredDeadlineTokenAbortsTheRun) {
  const mc::Instance inst(4.0, {{2.0, 2.0, 1.0}, {1.0, 1.0, 1.0}});
  msim::EngineOptions options;
  options.cancel = mc::CancelToken::with_deadline(
      std::chrono::steady_clock::now() - std::chrono::seconds(1));
  const auto result =
      msim::run_policy(inst, *msim::make_wdeq_policy(), options);
  EXPECT_TRUE(result.cancelled);
}

TEST(Engine, PolicyNamesAreDistinct) {
  std::set<std::string> names;
  for (const auto& policy : msim::all_policies()) {
    names.insert(policy->name());
  }
  EXPECT_EQ(names.size(), 5u);
}
