#include "malsched/sim/metrics.hpp"

#include <gtest/gtest.h>

#include "malsched/core/generators.hpp"
#include "malsched/sim/engine.hpp"
#include "malsched/sim/policy.hpp"

namespace mc = malsched::core;
namespace msim = malsched::sim;
namespace ms = malsched::support;

TEST(Metrics, SingleTaskAtFullWidthHasStretchOne) {
  const mc::Instance inst(2.0, {{2.0, 2.0, 3.0}});
  std::vector<mc::Step> steps{{0.0, 1.0, {2.0}}};
  const mc::StepSchedule sched(1, std::move(steps));
  const auto m = msim::compute_metrics(inst, sched);
  EXPECT_DOUBLE_EQ(m.weighted_completion, 3.0);
  EXPECT_DOUBLE_EQ(m.makespan, 1.0);
  EXPECT_DOUBLE_EQ(m.mean_stretch, 1.0);
  EXPECT_DOUBLE_EQ(m.max_stretch, 1.0);
  EXPECT_DOUBLE_EQ(m.jain_fairness, 1.0);
  EXPECT_DOUBLE_EQ(m.utilization, 1.0);
}

TEST(Metrics, HalfRateDoublesStretch) {
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}});
  std::vector<mc::Step> steps{{0.0, 2.0, {1.0}}};
  const mc::StepSchedule sched(1, std::move(steps));
  const auto m = msim::compute_metrics(inst, sched);
  EXPECT_DOUBLE_EQ(m.mean_stretch, 2.0);
  EXPECT_DOUBLE_EQ(m.utilization, 0.5);
}

TEST(Metrics, JainIndexDetectsUnfairness) {
  // Two identical tasks, one finishing at 1 (stretch 1) and one at 3
  // (stretch 3): Jain = (4)^2 / (2 * 10) = 0.8.
  const mc::Instance inst(1.0, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  std::vector<mc::Step> steps;
  steps.push_back({0.0, 1.0, {1.0, 0.0}});
  steps.push_back({1.0, 2.0, {0.0, 0.5}});
  steps.push_back({2.0, 3.0, {0.0, 0.5}});
  const mc::StepSchedule sched(2, std::move(steps));
  const auto m = msim::compute_metrics(inst, sched);
  EXPECT_NEAR(m.jain_fairness, 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(m.max_stretch, 3.0);
}

TEST(Metrics, ZeroVolumeTasksSkipped) {
  const mc::Instance inst(1.0, {{0.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  std::vector<mc::Step> steps{{0.0, 1.0, {0.0, 1.0}}};
  const mc::StepSchedule sched(2, std::move(steps));
  const auto m = msim::compute_metrics(inst, sched);
  EXPECT_DOUBLE_EQ(m.mean_stretch, 1.0);
}

TEST(Metrics, PropertiesOnRandomPolicyRuns) {
  ms::Rng rng(509);
  for (const auto& policy : msim::all_policies()) {
    for (int rep = 0; rep < 5; ++rep) {
      mc::GeneratorConfig gen;
      gen.family = mc::Family::Uniform;
      gen.num_tasks = 8;
      gen.processors = 3.0;
      const auto inst = mc::generate(gen, rng);
      const auto run = msim::run_policy(inst, *policy);
      const auto m = msim::compute_metrics(inst, run.schedule);
      EXPECT_GE(m.mean_stretch, 1.0 - 1e-9) << policy->name();
      EXPECT_GE(m.max_stretch, m.mean_stretch - 1e-12);
      EXPECT_GT(m.jain_fairness, 0.0);
      EXPECT_LE(m.jain_fairness, 1.0 + 1e-12);
      EXPECT_GT(m.utilization, 0.0);
      EXPECT_LE(m.utilization, 1.0 + 1e-9);
      EXPECT_NEAR(m.weighted_completion, run.weighted_completion, 1e-7);
    }
  }
}

TEST(Metrics, FairPolicyBeatsUnfairOnJain) {
  // DEQ equalizes progress; rigid FCFS starves late tasks — Jain must rank
  // them accordingly on a symmetric instance.
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0},
                                {2.0, 2.0, 1.0},
                                {2.0, 2.0, 1.0},
                                {2.0, 2.0, 1.0}});
  const auto deq = msim::run_policy(inst, *msim::make_deq_policy());
  const auto fifo = msim::run_policy(inst, *msim::make_fifo_rigid_policy());
  const auto m_deq = msim::compute_metrics(inst, deq.schedule);
  const auto m_fifo = msim::compute_metrics(inst, fifo.schedule);
  EXPECT_GT(m_deq.jain_fairness, m_fifo.jain_fairness);
}
