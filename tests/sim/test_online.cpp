#include <gtest/gtest.h>

#include "malsched/core/generators.hpp"
#include "malsched/core/release_dates.hpp"
#include "malsched/sim/engine.hpp"
#include "malsched/sim/policy.hpp"

namespace mc = malsched::core;
namespace msim = malsched::sim;
namespace ms = malsched::support;

namespace {

std::vector<double> zeros(std::size_t n) { return std::vector<double>(n, 0.0); }

}  // namespace

TEST(OnlineEngine, ZeroReleasesMatchOffline) {
  ms::Rng rng(601);
  for (int rep = 0; rep < 20; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 6;
    gen.processors = 3.0;
    const auto inst = mc::generate(gen, rng);
    const auto offline = msim::run_policy(inst, *msim::make_wdeq_policy());
    const auto online = msim::run_policy_online(
        inst, zeros(inst.size()), *msim::make_wdeq_policy());
    for (std::size_t i = 0; i < inst.size(); ++i) {
      EXPECT_NEAR(offline.completions[i], online.completions[i], 1e-9)
          << "rep " << rep;
    }
  }
}

TEST(OnlineEngine, NoWorkBeforeRelease) {
  ms::Rng rng(607);
  for (int rep = 0; rep < 20; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 6;
    gen.processors = 2.0;
    const auto inst = mc::generate(gen, rng);
    std::vector<double> release(inst.size());
    for (auto& r : release) {
      r = rng.uniform(0.0, 1.5);
    }
    const auto run =
        msim::run_policy_online(inst, release, *msim::make_wdeq_policy());
    const auto check = run.schedule.validate(inst);
    EXPECT_TRUE(check.valid) << "rep " << rep << ": " << check.message;
    for (const auto& step : run.schedule.steps()) {
      for (std::size_t i = 0; i < inst.size(); ++i) {
        if (step.rates[i] > 1e-9) {
          EXPECT_GE(step.begin, release[i] - 1e-9)
              << "rep " << rep << " task " << i;
        }
      }
    }
  }
}

TEST(OnlineEngine, IdleGapUntilFirstArrival) {
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}});
  const std::vector<double> release{1.5};
  const auto run =
      msim::run_policy_online(inst, release, *msim::make_wdeq_policy());
  EXPECT_NEAR(run.completions[0], 2.5, 1e-9);  // 1.5 + 2/2
  // The schedule starts with an explicit idle step.
  ASSERT_FALSE(run.schedule.steps().empty());
  EXPECT_DOUBLE_EQ(run.schedule.steps().front().begin, 0.0);
  EXPECT_DOUBLE_EQ(run.schedule.steps().front().rates[0], 0.0);
}

TEST(OnlineEngine, ArrivalTriggersReshare) {
  // Task 0 runs alone at width 2 until task 1 arrives at t=1; WDEQ then
  // splits 1:1 (equal weights, wide tasks).
  const mc::Instance inst(2.0, {{3.0, 2.0, 1.0}, {1.0, 2.0, 1.0}});
  const std::vector<double> release{0.0, 1.0};
  const auto run =
      msim::run_policy_online(inst, release, *msim::make_wdeq_policy());
  // t in [0,1]: T0 rate 2 -> 2 volume done, 1 left.
  // t >= 1: each rate 1; T1 (V=1) done at t=2, T0's last unit at rate 2
  // after T1 finishes: T0 has 1 - 1 = 0 left at t=2 as well.
  EXPECT_NEAR(run.completions[0], 2.0, 1e-9);
  EXPECT_NEAR(run.completions[1], 2.0, 1e-9);
}

TEST(OnlineEngine, CompletionsNeverBeatTheClairvoyantWindowOptimum) {
  // The online engine's makespan is at least the flow-certified optimum
  // with the same release dates.
  ms::Rng rng(613);
  for (int rep = 0; rep < 15; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 5;
    gen.processors = 2.0;
    const auto inst = mc::generate(gen, rng);
    std::vector<double> release(inst.size());
    for (auto& r : release) {
      r = rng.uniform(0.0, 1.0);
    }
    const auto run =
        msim::run_policy_online(inst, release, *msim::make_wdeq_policy());
    double makespan = 0.0;
    for (double c : run.completions) {
      makespan = std::max(makespan, c);
    }
    const auto optimal = mc::released_optimal_makespan(inst, release);
    EXPECT_GE(makespan, optimal.makespan - 1e-6) << "rep " << rep;
  }
}

TEST(OnlineEngine, AllPoliciesSurviveArrivals) {
  ms::Rng rng(617);
  mc::GeneratorConfig gen;
  gen.family = mc::Family::Uniform;
  gen.num_tasks = 8;
  gen.processors = 3.0;
  const auto inst = mc::generate(gen, rng);
  std::vector<double> release(inst.size());
  for (auto& r : release) {
    r = rng.uniform(0.0, 2.0);
  }
  for (const auto& policy : msim::all_policies()) {
    const auto run = msim::run_policy_online(inst, release, *policy);
    EXPECT_TRUE(run.schedule.validate(inst).valid) << policy->name();
  }
}
