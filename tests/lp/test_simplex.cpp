#include <gtest/gtest.h>

#include <cmath>

#include "malsched/lp/model.hpp"
#include "malsched/lp/solver.hpp"
#include "malsched/support/rng.hpp"

namespace lp = malsched::lp;

namespace {

// max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18   (classic Dantzig
// example; optimum x=2, y=6, objective 36).  We minimize the negation.
lp::Model dantzig_example() {
  lp::Model m;
  const auto x = m.add_variable("x");
  const auto y = m.add_variable("y");
  m.set_objective(x, -3.0);
  m.set_objective(y, -5.0);
  m.add_constraint({{x, 1.0}}, lp::Sense::LessEqual, 4.0);
  m.add_constraint({{y, 2.0}}, lp::Sense::LessEqual, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, lp::Sense::LessEqual, 18.0);
  return m;
}

}  // namespace

TEST(Simplex, DantzigExample) {
  const auto sol = lp::solve(dantzig_example());
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -36.0, 1e-9);
  EXPECT_NEAR(sol.values[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.values[1], 6.0, 1e-9);
}

TEST(Simplex, EqualityConstraintsNeedPhase1) {
  // min x + y  s.t. x + y = 2, x - y = 0  ->  x = y = 1.
  lp::Model m;
  const auto x = m.add_variable();
  const auto y = m.add_variable();
  m.set_objective(x, 1.0);
  m.set_objective(y, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, lp::Sense::Equal, 2.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, lp::Sense::Equal, 0.0);
  const auto sol = lp::solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
  EXPECT_NEAR(sol.values[0], 1.0, 1e-9);
  EXPECT_NEAR(sol.values[1], 1.0, 1e-9);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min 2x + 3y  s.t. x + y >= 10, x >= 3  ->  x = 10, y = 0? No:
  // cost favors x (2 < 3), so x = 10, y = 0, objective 20.
  lp::Model m;
  const auto x = m.add_variable();
  const auto y = m.add_variable();
  m.set_objective(x, 2.0);
  m.set_objective(y, 3.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, lp::Sense::GreaterEqual, 10.0);
  m.add_constraint({{x, 1.0}}, lp::Sense::GreaterEqual, 3.0);
  const auto sol = lp::solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 20.0, 1e-9);
  EXPECT_NEAR(sol.values[0], 10.0, 1e-9);
  EXPECT_NEAR(sol.values[1], 0.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  // x <= 1 and x >= 2 cannot hold together.
  lp::Model m;
  const auto x = m.add_variable();
  m.set_objective(x, 1.0);
  m.add_constraint({{x, 1.0}}, lp::Sense::LessEqual, 1.0);
  m.add_constraint({{x, 1.0}}, lp::Sense::GreaterEqual, 2.0);
  const auto sol = lp::solve(m);
  EXPECT_EQ(sol.status, lp::SolveStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x with only x >= 0: objective goes to -inf.
  lp::Model m;
  const auto x = m.add_variable();
  m.set_objective(x, -1.0);
  m.add_constraint({{x, 1.0}}, lp::Sense::GreaterEqual, 0.0);
  const auto sol = lp::solve(m);
  EXPECT_EQ(sol.status, lp::SolveStatus::Unbounded);
}

TEST(Simplex, NegativeRhsIsNormalized) {
  // x - y <= -2 with min x + y  ->  y >= x + 2, best x=0, y=2.
  lp::Model m;
  const auto x = m.add_variable();
  const auto y = m.add_variable();
  m.set_objective(x, 1.0);
  m.set_objective(y, 1.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, lp::Sense::LessEqual, -2.0);
  const auto sol = lp::solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
  EXPECT_NEAR(sol.values[1], 2.0, 1e-9);
}

TEST(Simplex, DegenerateLpTerminates) {
  // Highly degenerate: many redundant constraints through the optimum.
  lp::Model m;
  const auto x = m.add_variable();
  const auto y = m.add_variable();
  m.set_objective(x, -1.0);
  m.set_objective(y, -1.0);
  for (int k = 1; k <= 8; ++k) {
    m.add_constraint({{x, static_cast<double>(k)}, {y, static_cast<double>(k)}},
                     lp::Sense::LessEqual, 2.0 * k);
  }
  const auto sol = lp::solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -2.0, 1e-9);
}

TEST(Simplex, DuplicateTermsAreMerged) {
  lp::Model m;
  const auto x = m.add_variable();
  m.set_objective(x, -1.0);
  // (0.5 + 0.5) x <= 3
  m.add_constraint({{x, 0.5}, {x, 0.5}}, lp::Sense::LessEqual, 3.0);
  const auto sol = lp::solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.values[0], 3.0, 1e-9);
}

TEST(Simplex, BlandModeSolvesToo) {
  lp::SimplexOptions opts;
  opts.bland = true;
  const auto sol = lp::solve(dantzig_example(), opts);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -36.0, 1e-9);
}

TEST(Simplex, ZeroObjectiveIsFeasibilityCheck) {
  lp::Model m;
  const auto x = m.add_variable();
  m.add_constraint({{x, 1.0}}, lp::Sense::Equal, 5.0);
  const auto sol = lp::solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.values[0], 5.0, 1e-9);
  EXPECT_NEAR(sol.objective, 0.0, 1e-12);
}

TEST(Simplex, RandomFeasibleLpsStayConsistent) {
  // Property: for random bounded LPs, the reported solution satisfies all
  // constraints and bounds within tolerance.
  malsched::support::Rng rng(2024);
  for (int trial = 0; trial < 100; ++trial) {
    lp::Model m;
    const int nvars = 2 + static_cast<int>(rng.uniform_int(0, 3));
    std::vector<std::size_t> vars;
    for (int v = 0; v < nvars; ++v) {
      vars.push_back(m.add_variable());
      m.set_objective(vars.back(), rng.uniform(-1.0, 1.0));
    }
    // Box constraints keep it bounded; random extra couplings.
    for (auto v : vars) {
      m.add_constraint({{v, 1.0}}, lp::Sense::LessEqual, rng.uniform(1.0, 5.0));
    }
    const int extra = static_cast<int>(rng.uniform_int(0, 3));
    for (int k = 0; k < extra; ++k) {
      std::vector<lp::Term> terms;
      for (auto v : vars) {
        terms.push_back({v, rng.uniform(0.0, 1.0)});
      }
      m.add_constraint(std::move(terms), lp::Sense::LessEqual,
                       rng.uniform(2.0, 10.0));
    }
    const auto sol = lp::solve(m);
    ASSERT_TRUE(sol.optimal()) << "trial " << trial;
    for (const auto& row : m.rows()) {
      double lhs = 0.0;
      for (const auto& t : row.terms) {
        lhs += t.coeff * sol.values[t.var];
      }
      EXPECT_LE(lhs, row.rhs + 1e-6) << "trial " << trial;
    }
    for (double v : sol.values) {
      EXPECT_GE(v, -1e-9);
    }
  }
}
