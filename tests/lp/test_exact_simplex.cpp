#include <gtest/gtest.h>

#include "malsched/lp/model.hpp"
#include "malsched/lp/solver.hpp"
#include "malsched/numeric/rational.hpp"
#include "malsched/support/rng.hpp"

namespace lp = malsched::lp;
using malsched::numeric::Rational;

TEST(ExactSimplex, DantzigExampleExact) {
  lp::Model m;
  const auto x = m.add_variable("x");
  const auto y = m.add_variable("y");
  m.set_objective(x, -3.0);
  m.set_objective(y, -5.0);
  m.add_constraint({{x, 1.0}}, lp::Sense::LessEqual, 4.0);
  m.add_constraint({{y, 2.0}}, lp::Sense::LessEqual, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, lp::Sense::LessEqual, 18.0);
  const auto sol = lp::solve_exact(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_EQ(sol.objective, Rational(-36));
  EXPECT_EQ(sol.values[0], Rational(2));
  EXPECT_EQ(sol.values[1], Rational(6));
}

TEST(ExactSimplex, FractionalOptimumIsExact) {
  // min -(x + y) s.t. 2x + y <= 1, x + 2y <= 1  -> x = y = 1/3.
  lp::Model m;
  const auto x = m.add_variable();
  const auto y = m.add_variable();
  m.set_objective(x, -1.0);
  m.set_objective(y, -1.0);
  m.add_constraint({{x, 2.0}, {y, 1.0}}, lp::Sense::LessEqual, 1.0);
  m.add_constraint({{x, 1.0}, {y, 2.0}}, lp::Sense::LessEqual, 1.0);
  const auto sol = lp::solve_exact(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_EQ(sol.values[0], Rational(1, 3));
  EXPECT_EQ(sol.values[1], Rational(1, 3));
  EXPECT_EQ(sol.objective, Rational(-2, 3));
}

TEST(ExactSimplex, InfeasibleDetectedExactly) {
  lp::Model m;
  const auto x = m.add_variable();
  m.add_constraint({{x, 1.0}}, lp::Sense::LessEqual, 1.0);
  m.add_constraint({{x, 1.0}}, lp::Sense::GreaterEqual, 1.0 + 1e-7);
  // Gap far below double-simplex tolerance would be risky there; the exact
  // solver must flag it regardless.
  const auto sol = lp::solve_exact(m);
  EXPECT_EQ(sol.status, lp::SolveStatus::Infeasible);
}

TEST(ExactSimplex, AgreesWithDoubleSolverOnRandomLps) {
  malsched::support::Rng rng(777);
  for (int trial = 0; trial < 30; ++trial) {
    lp::Model m;
    const int nvars = 2 + static_cast<int>(rng.uniform_int(0, 2));
    std::vector<std::size_t> vars;
    for (int v = 0; v < nvars; ++v) {
      vars.push_back(m.add_variable());
      // Small integer-ish data keeps the exact arithmetic readable.
      m.set_objective(vars.back(), rng.uniform_int(-5, 5) / 2.0);
    }
    for (auto v : vars) {
      m.add_constraint({{v, 1.0}}, lp::Sense::LessEqual,
                       static_cast<double>(rng.uniform_int(1, 6)));
    }
    std::vector<lp::Term> terms;
    for (auto v : vars) {
      terms.push_back({v, static_cast<double>(rng.uniform_int(0, 3))});
    }
    m.add_constraint(std::move(terms), lp::Sense::GreaterEqual, 1.0);

    const auto exact = lp::solve_exact(m);
    const auto approx = lp::solve(m);
    ASSERT_EQ(exact.status, approx.status) << "trial " << trial;
    if (exact.optimal()) {
      EXPECT_NEAR(exact.objective.to_double(), approx.objective, 1e-6)
          << "trial " << trial;
    }
  }
}

TEST(ExactSimplex, EqualityWithThirds) {
  // min z s.t. 3z = 1: solution is exactly 1/3 (not 0.3333...).
  lp::Model m;
  const auto z = m.add_variable();
  m.set_objective(z, 1.0);
  m.add_constraint({{z, 3.0}}, lp::Sense::Equal, 1.0);
  const auto sol = lp::solve_exact(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_EQ(sol.values[0], Rational(1, 3));
}
