// Robustness tests for the simplex: degenerate/cycling-prone inputs,
// iteration-limit behaviour, and larger random LPs cross-checked against
// the exact rational solver.

#include <gtest/gtest.h>

#include "malsched/lp/model.hpp"
#include "malsched/lp/solver.hpp"
#include "malsched/support/rng.hpp"

namespace lp = malsched::lp;
namespace ms = malsched::support;

TEST(SimplexStress, BealeCyclingExample) {
  // Beale's classic cycling LP (degenerate under naive Dantzig pivoting):
  //   min -0.75 x4 + 150 x5 - 0.02 x6 + 6 x7
  //   s.t. 0.25 x4 - 60 x5 - 0.04 x6 + 9 x7 <= 0
  //        0.5  x4 - 90 x5 - 0.02 x6 + 3 x7 <= 0
  //        x6 <= 1
  // Optimum: -0.05 at x6 = 1 (x4 = 0.04? several optimal bases).
  lp::Model m;
  const auto x4 = m.add_variable("x4");
  const auto x5 = m.add_variable("x5");
  const auto x6 = m.add_variable("x6");
  const auto x7 = m.add_variable("x7");
  m.set_objective(x4, -0.75);
  m.set_objective(x5, 150.0);
  m.set_objective(x6, -0.02);
  m.set_objective(x7, 6.0);
  m.add_constraint({{x4, 0.25}, {x5, -60.0}, {x6, -0.04}, {x7, 9.0}},
                   lp::Sense::LessEqual, 0.0);
  m.add_constraint({{x4, 0.5}, {x5, -90.0}, {x6, -0.02}, {x7, 3.0}},
                   lp::Sense::LessEqual, 0.0);
  m.add_constraint({{x6, 1.0}}, lp::Sense::LessEqual, 1.0);
  const auto sol = lp::solve(m);
  ASSERT_TRUE(sol.optimal()) << lp::to_string(sol.status);
  EXPECT_NEAR(sol.objective, -0.05, 1e-9);
  // The exact solver must agree.
  const auto exact = lp::solve_exact(m);
  ASSERT_TRUE(exact.optimal());
  EXPECT_NEAR(exact.objective.to_double(), -0.05, 1e-15);
}

TEST(SimplexStress, IterationLimitIsReported) {
  lp::Model m;
  const auto x = m.add_variable();
  const auto y = m.add_variable();
  m.set_objective(x, -1.0);
  m.set_objective(y, -1.0);
  for (int k = 1; k <= 6; ++k) {
    m.add_constraint({{x, 1.0 * k}, {y, 1.0}}, lp::Sense::LessEqual,
                     10.0 * k);
  }
  lp::SimplexOptions opts;
  opts.max_iterations = 1;  // absurdly small: must hit the limit
  const auto sol = lp::solve(m, opts);
  EXPECT_EQ(sol.status, lp::SolveStatus::IterationLimit);
}

TEST(SimplexStress, LargerRandomLpsAgreeWithExact) {
  ms::Rng rng(881);
  for (int trial = 0; trial < 8; ++trial) {
    lp::Model m;
    const int nvars = 6;
    std::vector<std::size_t> vars;
    for (int v = 0; v < nvars; ++v) {
      vars.push_back(m.add_variable());
      m.set_objective(vars.back(),
                      static_cast<double>(rng.uniform_int(-4, 4)) / 4.0);
    }
    for (auto v : vars) {
      m.add_constraint({{v, 1.0}}, lp::Sense::LessEqual,
                       static_cast<double>(rng.uniform_int(1, 8)) / 2.0);
    }
    for (int k = 0; k < 4; ++k) {
      std::vector<lp::Term> terms;
      for (auto v : vars) {
        terms.push_back({v, static_cast<double>(rng.uniform_int(0, 4)) / 4.0});
      }
      m.add_constraint(std::move(terms),
                       k % 2 == 0 ? lp::Sense::LessEqual
                                  : lp::Sense::GreaterEqual,
                       k % 2 == 0 ? 6.0 : 0.5);
    }
    const auto approx = lp::solve(m);
    const auto exact = lp::solve_exact(m);
    ASSERT_EQ(approx.status, exact.status) << "trial " << trial;
    if (approx.optimal()) {
      EXPECT_NEAR(approx.objective, exact.objective.to_double(), 1e-7)
          << "trial " << trial;
    }
  }
}

TEST(SimplexStress, RedundantEqualitiesAreHandled) {
  // Duplicate equality rows create degenerate artificial bases; the
  // post-phase-1 cleanup must cope.
  lp::Model m;
  const auto x = m.add_variable();
  const auto y = m.add_variable();
  m.set_objective(x, 1.0);
  m.set_objective(y, 2.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, lp::Sense::Equal, 4.0);
  m.add_constraint({{x, 2.0}, {y, 2.0}}, lp::Sense::Equal, 8.0);  // redundant
  m.add_constraint({{x, 1.0}}, lp::Sense::LessEqual, 3.0);
  const auto sol = lp::solve(m);
  ASSERT_TRUE(sol.optimal());
  // Cheapest way to reach x + y = 4 with x <= 3: x = 3, y = 1 -> 5.
  EXPECT_NEAR(sol.objective, 5.0, 1e-9);
}

TEST(SimplexStress, ContradictoryEqualitiesInfeasible) {
  lp::Model m;
  const auto x = m.add_variable();
  m.add_constraint({{x, 1.0}}, lp::Sense::Equal, 1.0);
  m.add_constraint({{x, 1.0}}, lp::Sense::Equal, 2.0);
  EXPECT_EQ(lp::solve(m).status, lp::SolveStatus::Infeasible);
  EXPECT_EQ(lp::solve_exact(m).status, lp::SolveStatus::Infeasible);
}
