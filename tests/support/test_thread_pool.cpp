#include "malsched/support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace ms = malsched::support;

TEST(ThreadPool, ParallelForCoversRange) {
  ms::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ms::ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ChunkedCoversRangeExactlyOnce) {
  ms::ThreadPool pool(3);
  std::atomic<long long> sum{0};
  pool.parallel_for_chunked(0, 1000, 37, [&](std::size_t lo, std::size_t hi) {
    long long local = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      local += static_cast<long long>(i);
    }
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ms::ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for_chunked(0, 10, 3, [&](std::size_t lo, std::size_t hi) {
    order.push_back(static_cast<int>(lo));
    (void)hi;
  });
  // Inline execution preserves chunk order.
  EXPECT_EQ(order, (std::vector<int>{0, 3, 6, 9}));
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> count{0};
  ms::ThreadPool::global().parallel_for(0, 100, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ms::ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 50, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 50);
  }
}
