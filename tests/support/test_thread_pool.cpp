#include "malsched/support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace ms = malsched::support;

TEST(ThreadPool, ParallelForCoversRange) {
  ms::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ms::ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ChunkedCoversRangeExactlyOnce) {
  ms::ThreadPool pool(3);
  std::atomic<long long> sum{0};
  pool.parallel_for_chunked(0, 1000, 37, [&](std::size_t lo, std::size_t hi) {
    long long local = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      local += static_cast<long long>(i);
    }
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ms::ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for_chunked(0, 10, 3, [&](std::size_t lo, std::size_t hi) {
    order.push_back(static_cast<int>(lo));
    (void)hi;
  });
  // Inline execution preserves chunk order.
  EXPECT_EQ(order, (std::vector<int>{0, 3, 6, 9}));
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> count{0};
  ms::ThreadPool::global().parallel_for(0, 100, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitReturnsFutureValue) {
  ms::ThreadPool pool(2);
  auto doubled = pool.submit([] { return 21 * 2; });
  auto text = pool.submit([] { return std::string("done"); });
  EXPECT_EQ(doubled.get(), 42);
  EXPECT_EQ(text.get(), "done");
}

TEST(ThreadPool, SubmitVoidCallable) {
  ms::ThreadPool pool(2);
  std::atomic<int> hits{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&hits] {
      hits.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(hits.load(), 16);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ms::ThreadPool pool(2);
  auto failing = pool.submit([]() -> int {
    throw std::runtime_error("submit failure");
  });
  EXPECT_THROW(
      {
        try {
          (void)failing.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "submit failure");
          throw;
        }
      },
      std::runtime_error);
  // The worker survives the exception and keeps serving tasks.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
  ms::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000,
                        [](std::size_t i) {
                          if (i == 137) {
                            throw std::runtime_error("body failure");
                          }
                        }),
      std::runtime_error);
  // The pool remains usable after a failed parallel_for.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForChunkedRethrowsOnSingleWorkerToo) {
  // The single-worker inline path must propagate just like the queued path.
  ms::ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for_chunked(
                   0, 10, 3,
                   [](std::size_t lo, std::size_t) {
                     if (lo >= 6) {
                       throw std::logic_error("chunk failure");
                     }
                   }),
               std::logic_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ms::ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 50, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 50);
  }
}
