#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "malsched/support/csv.hpp"
#include "malsched/support/log.hpp"

namespace ms = malsched::support;

namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

}  // namespace

TEST(Csv, WritesHeaderAndRows) {
  TempFile file("malsched_csv_basic.csv");
  {
    ms::CsvWriter csv(file.path, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.write_row(std::vector<std::string>{"1", "2"});
    csv.write_row(std::vector<double>{3.5, 4.25});
  }
  const auto text = read_all(file.path);
  EXPECT_NE(text.find("a,b\n"), std::string::npos);
  EXPECT_NE(text.find("1,2\n"), std::string::npos);
  EXPECT_NE(text.find("3.5,4.25\n"), std::string::npos);
}

TEST(Csv, EscapesSpecialCharacters) {
  TempFile file("malsched_csv_escape.csv");
  {
    ms::CsvWriter csv(file.path, {"field"});
    ASSERT_TRUE(csv.ok());
    csv.write_row(std::vector<std::string>{"has,comma"});
    csv.write_row(std::vector<std::string>{"has\"quote"});
  }
  const auto text = read_all(file.path);
  EXPECT_NE(text.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(text.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Csv, UnwritablePathReportsNotOk) {
  ms::CsvWriter csv("/nonexistent-dir/x.csv", {"a"});
  EXPECT_FALSE(csv.ok());
}

TEST(Log, LevelFiltering) {
  const auto saved = ms::log_level();
  ms::set_log_level(ms::LogLevel::Error);
  EXPECT_EQ(ms::log_level(), ms::LogLevel::Error);
  // Below-threshold messages are dropped without side effects (smoke: just
  // exercise the variadic formatting path).
  ms::log(ms::LogLevel::Debug, "dropped ", 42);
  ms::log(ms::LogLevel::Error, "kept ", 1.5, " units");
  ms::set_log_level(saved);
}

TEST(Log, OffSilencesEverything) {
  const auto saved = ms::log_level();
  ms::set_log_level(ms::LogLevel::Off);
  ms::log(ms::LogLevel::Error, "should not print");
  ms::set_log_level(saved);
}
