#include "malsched/support/matrix.hpp"

#include <gtest/gtest.h>

namespace ms = malsched::support;

TEST(Matrix, DefaultIsEmpty) {
  ms::Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, ConstructWithFill) {
  ms::Matrix m(3, 4, 2.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(m(r, c), 2.5);
    }
  }
}

TEST(Matrix, ElementAccessIsRowMajor) {
  ms::Matrix m(2, 3, 0.0);
  m(0, 0) = 1.0;
  m(0, 2) = 2.0;
  m(1, 1) = 3.0;
  EXPECT_DOUBLE_EQ(m.row(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(m.row(0)[2], 2.0);
  EXPECT_DOUBLE_EQ(m.row(1)[1], 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.0);
}

TEST(Matrix, FillOverwrites) {
  ms::Matrix m(2, 2, 1.0);
  m.fill(7.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 7.0);
}

TEST(Matrix, ConstAccess) {
  const ms::Matrix m(1, 1, 9.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(m.row(0)[0], 9.0);
}
