#include "malsched/support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ms = malsched::support;

TEST(Rng, DeterministicForSameSeed) {
  ms::Rng a(42);
  ms::Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  ms::Rng a(1);
  ms::Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, Uniform01InRange) {
  ms::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformPosNeverZero) {
  ms::Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform_pos(1.0);
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  ms::Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  ms::Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
  }
}

TEST(Rng, PermutationIsPermutation) {
  ms::Rng rng(19);
  const auto perm = rng.permutation(20);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 19u);
}

TEST(Rng, ForkStreamsAreIndependentAndDeterministic) {
  ms::Rng base(23);
  ms::Rng fork1 = base.fork(1);
  ms::Rng fork1_again = ms::Rng(23).fork(1);
  ms::Rng fork2 = base.fork(2);
  EXPECT_EQ(fork1.next_u64(), fork1_again.next_u64());
  EXPECT_NE(fork1.next_u64(), fork2.next_u64());
}

TEST(Rng, UniformMeanIsCentered) {
  ms::Rng rng(29);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform(2.0, 4.0);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  ms::Rng rng(31);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(2.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ShuffleKeepsMultiset) {
  ms::Rng rng(37);
  std::vector<int> values{1, 2, 3, 4, 5, 6};
  auto copy = values;
  rng.shuffle(std::span<int>(copy));
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(copy.begin(), copy.end());
  EXPECT_EQ(a, b);
}
