#include "malsched/support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ms = malsched::support;

TEST(Accumulator, EmptyIsSafe) {
  ms::Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, MeanAndVariance) {
  ms::Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    acc.add(v);
  }
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  ms::Accumulator whole;
  ms::Accumulator left;
  ms::Accumulator right;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10.0;
    whole.add(v);
    (i < 37 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  ms::Accumulator a;
  a.add(1.0);
  a.add(3.0);
  ms::Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Sample, QuantilesInterpolate) {
  ms::Sample sample;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    sample.add(v);
  }
  EXPECT_DOUBLE_EQ(sample.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sample.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(sample.median(), 2.5);
  EXPECT_DOUBLE_EQ(sample.quantile(1.0 / 3.0), 2.0);
}

TEST(Sample, QuantileAfterLateInsert) {
  ms::Sample sample;
  sample.add(10.0);
  sample.add(0.0);
  EXPECT_DOUBLE_EQ(sample.median(), 5.0);
  sample.add(20.0);  // invalidates the cached sort
  EXPECT_DOUBLE_EQ(sample.median(), 10.0);
}

TEST(Sample, SummaryMentionsCount) {
  ms::Sample sample;
  sample.add(1.0);
  const auto text = sample.summary();
  EXPECT_NE(text.find("n=1"), std::string::npos);
}

TEST(Sample, SingleElement) {
  ms::Sample sample;
  sample.add(42.0);
  EXPECT_DOUBLE_EQ(sample.quantile(0.3), 42.0);
  EXPECT_DOUBLE_EQ(sample.min(), 42.0);
  EXPECT_DOUBLE_EQ(sample.max(), 42.0);
}
