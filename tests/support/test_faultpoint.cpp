// Tests of the deterministic fault-injection harness (faultpoint.hpp): the
// spec grammar, nth-crossing triggering, the process-killing actions (via
// fork — the whole point is that they are not survivable in-process), and
// the disarmed fast path.
//
// Ordering caveat: the MALSCHED_FAULT environment variable is parsed
// lazily on the *first* crossing of the process and never again, so the
// env test must run before anything else arms a spec.  GoogleTest runs
// tests in definition order; keep EnvSpec first in this file.

#include "malsched/support/faultpoint.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>

namespace msup = malsched::support;

namespace {

/// Runs `child` in a forked process and returns its wait status.  The
/// kill/exit actions terminate the process at the crossing; this is the
/// only way to observe them.
template <typename Fn>
int run_forked(Fn child) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    child();
    ::_exit(0);  // reached only when the faultpoint did NOT fire
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

}  // namespace

TEST(Faultpoint, EnvSpecParsedLazilyOnFirstCrossing) {
  ::setenv(msup::kFaultEnv, "env.point=stall:1", 1);
  EXPECT_EQ(msup::faultpoint("env.point"), msup::FaultAction::Stall);
  EXPECT_EQ(msup::faultpoint("other.point"), msup::FaultAction::None);
  msup::fault_disarm();
  ::unsetenv(msup::kFaultEnv);
}

TEST(Faultpoint, DisarmedFastPathReturnsNone) {
  msup::fault_disarm();
  EXPECT_EQ(msup::faultpoint("any.point"), msup::FaultAction::None);
  EXPECT_EQ(msup::faultpoint_hits("any.point"), 0u);
}

TEST(Faultpoint, NthCrossingTriggersExactlyOnce) {
  ASSERT_TRUE(msup::fault_arm("router.test=dup@3"));
  EXPECT_EQ(msup::faultpoint("router.test"), msup::FaultAction::None);
  EXPECT_EQ(msup::faultpoint("router.test"), msup::FaultAction::None);
  EXPECT_EQ(msup::faultpoint("router.test"), msup::FaultAction::Dup)
      << "the third crossing is the armed one";
  EXPECT_EQ(msup::faultpoint("router.test"), msup::FaultAction::None)
      << "a fault fires once, not from the nth crossing onward";
  EXPECT_EQ(msup::faultpoint_hits("router.test"), 4u);
  // Unarmed points cross for free even while others are armed.
  EXPECT_EQ(msup::faultpoint("router.other"), msup::FaultAction::None);
  msup::fault_disarm();
}

TEST(Faultpoint, RearmResetsTheCrossingCounter) {
  ASSERT_TRUE(msup::fault_arm("p=dup@2"));
  EXPECT_EQ(msup::faultpoint("p"), msup::FaultAction::None);
  ASSERT_TRUE(msup::fault_arm("p=dup@2"));  // re-arm: hits back to zero
  EXPECT_EQ(msup::faultpoint("p"), msup::FaultAction::None);
  EXPECT_EQ(msup::faultpoint("p"), msup::FaultAction::Dup);
  msup::fault_disarm();
}

TEST(Faultpoint, StallSleepsInlineThenContinues) {
  ASSERT_TRUE(msup::fault_arm("p=stall:50"));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(msup::faultpoint("p"), msup::FaultAction::Stall);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            50);
  msup::fault_disarm();
}

TEST(Faultpoint, KillDeliversSigkillAtTheCrossing) {
  const int status = run_forked([] {
    msup::fault_arm("p=kill@2");
    msup::faultpoint("p");  // crossing 1: survives
    msup::faultpoint("p");  // crossing 2: SIGKILL, no cleanup, no flush
  });
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
}

TEST(Faultpoint, ExitTerminatesWithTheSpecifiedCode) {
  const int status = run_forked([] {
    msup::fault_arm("p=exit:7");
    msup::faultpoint("p");
  });
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 7);
}

TEST(Faultpoint, ArmedSpecsSurviveFork) {
  // The inheritance the shard tests rely on: arm in the parent, fork, and
  // the child's crossing fires.
  const int status = run_forked([] { msup::faultpoint("inherited"); });
  ASSERT_TRUE(WIFEXITED(status)) << "nothing armed: child exits cleanly";

  msup::fault_arm("inherited=exit:9");
  const int armed_status = run_forked([] { msup::faultpoint("inherited"); });
  msup::fault_disarm();
  ASSERT_TRUE(WIFEXITED(armed_status));
  EXPECT_EQ(WEXITSTATUS(armed_status), 9);
}

TEST(Faultpoint, SpecGrammarRejectsGarbageTyped) {
  EXPECT_FALSE(msup::fault_arm("garbage"));
  EXPECT_FALSE(msup::fault_arm("=kill"));
  EXPECT_FALSE(msup::fault_arm("p=unknown-action"));
  EXPECT_FALSE(msup::fault_arm("p=kill:arg")) << "kill takes no argument";
  EXPECT_FALSE(msup::fault_arm("p=dup:arg")) << "dup takes no argument";
  EXPECT_FALSE(msup::fault_arm("p=exit:300")) << "exit codes are 0..255";
  EXPECT_FALSE(msup::fault_arm("p=exit:-1"));
  EXPECT_FALSE(msup::fault_arm("p=stall:xyz"));
  EXPECT_FALSE(msup::fault_arm("p=kill@0")) << "crossings are 1-based";
  EXPECT_FALSE(msup::fault_arm("p=kill@abc"));
  msup::fault_disarm();
}

TEST(Faultpoint, CommaListArmsMultiplePoints) {
  ASSERT_TRUE(msup::fault_arm("a=dup,b=stall:1,c=dup@2"));
  EXPECT_EQ(msup::faultpoint("a"), msup::FaultAction::Dup);
  EXPECT_EQ(msup::faultpoint("b"), msup::FaultAction::Stall);
  EXPECT_EQ(msup::faultpoint("c"), msup::FaultAction::None);
  EXPECT_EQ(msup::faultpoint("c"), msup::FaultAction::Dup);
  msup::fault_disarm();
}

TEST(Faultpoint, MalformedEnvSpecIsIgnoredNotFatal) {
  // A typo'd MALSCHED_FAULT must not change behavior (and must certainly
  // not kill anything).  Exercised in a fork so the child's one-shot env
  // parse is fresh.
  const int status = run_forked([] {
    msup::fault_disarm();  // parent state: nothing armed
    ::setenv(msup::kFaultEnv, "p=kill@@", 1);
    // Re-open the env window the way a fresh process would see it: arming
    // then disarming leaves env_checked true, so instead exercise the
    // parse directly — a malformed spec must not arm.
    if (msup::fault_arm("p=kill@@")) {
      ::_exit(3);  // grammar accepted garbage
    }
    if (msup::faultpoint("p") != msup::FaultAction::None) {
      ::_exit(4);  // something fired anyway
    }
  });
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}
