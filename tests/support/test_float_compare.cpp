#include "malsched/support/float_compare.hpp"

#include <gtest/gtest.h>

namespace ms = malsched::support;

TEST(FloatCompare, ApproxEqWithinAbsoluteTolerance) {
  EXPECT_TRUE(ms::approx_eq(1.0, 1.0 + 5e-10));
  EXPECT_TRUE(ms::approx_eq(0.0, 1e-10));
  EXPECT_FALSE(ms::approx_eq(0.0, 1e-6));
}

TEST(FloatCompare, ApproxEqScalesWithMagnitude) {
  // Relative part: 1e9 vs 1e9 + 0.1 differ by 1e-10 relatively.
  EXPECT_TRUE(ms::approx_eq(1e9, 1e9 + 0.1));
  EXPECT_FALSE(ms::approx_eq(1e9, 1e9 + 100.0, {1e-9, 1e-12}));
}

TEST(FloatCompare, ApproxLeAcceptsSlightOvershoot) {
  EXPECT_TRUE(ms::approx_le(1.0 + 1e-10, 1.0));
  EXPECT_FALSE(ms::approx_le(1.0 + 1e-6, 1.0));
  EXPECT_TRUE(ms::approx_le(0.5, 1.0));
}

TEST(FloatCompare, ApproxGeMirrorsLe) {
  EXPECT_TRUE(ms::approx_ge(1.0, 1.0 + 1e-10));
  EXPECT_FALSE(ms::approx_ge(1.0, 1.0 + 1e-6));
}

TEST(FloatCompare, DefinitelyLessRequiresMargin) {
  EXPECT_TRUE(ms::definitely_less(1.0, 2.0));
  EXPECT_FALSE(ms::definitely_less(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(ms::definitely_less(2.0, 1.0));
}

TEST(FloatCompare, SnapNonnegClampsNoiseOnly) {
  EXPECT_EQ(ms::snap_nonneg(-1e-12), 0.0);
  EXPECT_EQ(ms::snap_nonneg(0.25), 0.25);
  EXPECT_LT(ms::snap_nonneg(-0.5), 0.0);  // genuine negative passes through
}

TEST(FloatCompare, ToleranceSlackCombinesAbsAndRel) {
  const ms::Tolerance tol{1e-6, 1e-3};
  EXPECT_DOUBLE_EQ(tol.slack(0.0), 1e-6);
  EXPECT_NEAR(tol.slack(10.0), 1e-6 + 1e-2, 1e-12);
}
