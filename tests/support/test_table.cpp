#include "malsched/support/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace ms = malsched::support;

TEST(TextTable, RendersHeaderAndRows) {
  ms::TextTable table({{"name", ms::Align::Left}, {"value", ms::Align::Right}});
  table.add_row({"alpha", "1.00"});
  table.add_row({"beta", "22.50"});
  const auto text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22.50"), std::string::npos);
  // Header rule + top/bottom rules -> at least three '+--' lines.
  int rules = 0;
  for (std::size_t pos = 0; (pos = text.find("+-", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_GE(rules, 3);
}

TEST(TextTable, ColumnsWidenToFitContent) {
  ms::TextTable table({{"c", ms::Align::Right}});
  table.add_row({"a-very-long-cell"});
  const auto text = table.to_string();
  EXPECT_NE(text.find("a-very-long-cell"), std::string::npos);
}

TEST(TextTable, RowCountTracksRows) {
  ms::TextTable table({{"a", ms::Align::Left}});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  table.add_rule();
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(FmtHelpers, Doubles) {
  EXPECT_EQ(ms::fmt_double(1.5, 2), "1.50");
  EXPECT_EQ(ms::fmt_double(std::nan(""), 2), "-");
  EXPECT_EQ(ms::fmt_int(42), "42");
  EXPECT_EQ(ms::fmt_ratio(std::numeric_limits<double>::infinity()), "inf");
}
