// Property tests of the router-replication journal codec (journal.hpp):
// arbitrary record interleavings must round-trip encode/decode exactly and
// replay to the same standby state, and truncated/garbage payloads must
// reject typed — nullopt plus a reason — and never crash.  The takeover
// correctness argument rests on replay being a pure fold of the stream,
// so the fuzz here is deliberately heavy on hostile inputs.

#include "malsched/shard/journal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "malsched/service/solver_registry.hpp"
#include "malsched/shard/wire.hpp"

namespace msvc = malsched::service;
namespace mshard = malsched::shard;

namespace {

/// Bit-exact result comparison via the wire's own canonical encoding —
/// SolveResult has no operator== and the hexfloat form IS the equality the
/// replication contract promises.
std::string fingerprint(const msvc::SolveResult& result) {
  return mshard::wire::encode_result(0, 0, result);
}

msvc::SolveResult sample_success(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> value(0.0, 1e6);
  msvc::SolveOutput output;
  output.objective = value(rng) * 0.1;  // awkward decimals: hexfloat food
  output.makespan = value(rng) * 1e-7;
  const std::size_t n = 1 + rng() % 5;
  for (std::size_t i = 0; i < n; ++i) {
    output.completions.push_back(value(rng) / 3.0);
  }
  return msvc::SolveResult::success("wdeq", std::move(output));
}

msvc::SolveResult sample_failure(std::mt19937_64& rng) {
  static const msvc::ErrorCode codes[] = {
      msvc::ErrorCode::ParseError, msvc::ErrorCode::SolverFailure,
      msvc::ErrorCode::DeadlineExceeded, msvc::ErrorCode::ProtocolMismatch};
  return msvc::SolveResult::failure(
      "optimal", codes[rng() % 4],
      "detail with spaces, \"quotes\" and a\nnewline #" +
          std::to_string(rng() % 1000));
}

mshard::JournalRecord sample_record(std::mt19937_64& rng) {
  switch (rng() % 6) {
    case 0:
      return mshard::JournalRecord::member(
          static_cast<std::uint32_t>(rng() % 8), rng() % 2 == 0);
    case 1: {
      std::vector<std::uint32_t> owners;
      const std::size_t n = 1 + rng() % 3;
      for (std::size_t i = 0; i < n; ++i) {
        owners.push_back(static_cast<std::uint32_t>(rng() % 8));
      }
      return mshard::JournalRecord::prime(
          "inst-" + std::to_string(rng() % 16), std::move(owners));
    }
    case 2:
      return mshard::JournalRecord::flight(1 + rng() % 64, rng() % 32);
    case 3:
      return mshard::JournalRecord::resolved(
          rng() % 32, 1 + rng() % 64,
          rng() % 2 == 0 ? sample_success(rng) : sample_failure(rng));
    case 4:
      return mshard::JournalRecord::heartbeat(rng());
    default:
      return mshard::JournalRecord::done();
  }
}

void expect_equal(const mshard::JournalRecord& a,
                  const mshard::JournalRecord& b) {
  ASSERT_EQ(a.type, b.type);
  EXPECT_EQ(a.worker, b.worker);
  EXPECT_EQ(a.alive, b.alive);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.owners, b.owners);
  EXPECT_EQ(a.token, b.token);
  EXPECT_EQ(a.request_index, b.request_index);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(fingerprint(a.result), fingerprint(b.result));
}

void expect_equal_state(const mshard::StandbyState& a,
                        const mshard::StandbyState& b) {
  EXPECT_EQ(a.members, b.members);
  EXPECT_EQ(a.primed, b.primed);
  EXPECT_EQ(a.in_flight, b.in_flight);
  ASSERT_EQ(a.resolved.size(), b.resolved.size());
  for (const auto& [index, result] : a.resolved) {
    const auto it = b.resolved.find(index);
    ASSERT_NE(it, b.resolved.end()) << "request " << index;
    EXPECT_EQ(fingerprint(result), fingerprint(it->second));
  }
  EXPECT_EQ(a.heartbeats, b.heartbeats);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.max_token, b.max_token);
  EXPECT_EQ(a.done, b.done);
}

}  // namespace

TEST(Journal, EveryRecordTypeRoundTripsExactly) {
  std::vector<mshard::JournalRecord> records = {
      mshard::JournalRecord::member(0, true),
      mshard::JournalRecord::member(4294967295u, false),
      mshard::JournalRecord::prime("small", {0}),
      mshard::JournalRecord::prime("heavy-tail", {3, 1, 2}),
      mshard::JournalRecord::flight(1, 0),
      mshard::JournalRecord::flight(18446744073709551615ull, 99),
      mshard::JournalRecord::resolved(
          7, 12,
          msvc::SolveResult::success("wdeq",
                                     msvc::SolveOutput{3.25, 1.125, {1.0, 0.5}})),
      mshard::JournalRecord::resolved(
          8, 13,
          msvc::SolveResult::failure("optimal", msvc::ErrorCode::SolverFailure,
                                     "worker died mid-solve")),
      mshard::JournalRecord::heartbeat(0),
      mshard::JournalRecord::heartbeat(987654321),
      mshard::JournalRecord::done(),
  };
  for (const auto& record : records) {
    const std::string payload = mshard::encode_journal(record);
    std::string error;
    const auto decoded = mshard::decode_journal(payload, &error);
    ASSERT_TRUE(decoded.has_value()) << payload << ": " << error;
    expect_equal(record, *decoded);
  }
}

TEST(Journal, RandomInterleavingsRoundTripAndReplayToTheSameState) {
  // The fuzz property: for any record sequence, decode(encode(r)) == r per
  // record, and folding the decoded stream yields exactly the state the
  // original stream yields.  Several seeds, long streams.
  for (const std::uint64_t seed : {1ull, 42ull, 20260808ull}) {
    std::mt19937_64 rng(seed);
    mshard::StandbyState original_state;
    mshard::StandbyState decoded_state;
    for (int i = 0; i < 500; ++i) {
      const auto record = sample_record(rng);
      std::string error;
      const auto decoded =
          mshard::decode_journal(mshard::encode_journal(record), &error);
      ASSERT_TRUE(decoded.has_value()) << "seed " << seed << ": " << error;
      expect_equal(record, *decoded);
      original_state.apply(record);
      decoded_state.apply(*decoded);
    }
    expect_equal_state(original_state, decoded_state);
  }
}

TEST(Journal, ResolvedRetiresItsTokenFromTheInFlightTable) {
  mshard::StandbyState state;
  state.apply(mshard::JournalRecord::flight(5, 2));
  state.apply(mshard::JournalRecord::flight(6, 3));
  ASSERT_EQ(state.in_flight.size(), 2u);
  EXPECT_EQ(state.max_token, 6u);

  state.apply(mshard::JournalRecord::resolved(
      2, 5, msvc::SolveResult::failure("wdeq", msvc::ErrorCode::ParseError,
                                       "x")));
  EXPECT_EQ(state.in_flight.count(5), 0u)
      << "a resolved request must never be replayed";
  EXPECT_EQ(state.in_flight.count(6), 1u);
  EXPECT_EQ(state.resolved.count(2), 1u);
}

TEST(Journal, AnyPrefixOfAStreamIsAConsistentState) {
  // Takeover can happen after any record; the folded prefix must satisfy
  // the invariant that resolved requests hold no in-flight token.
  std::mt19937_64 rng(7);
  std::vector<mshard::JournalRecord> stream;
  for (int i = 0; i < 200; ++i) {
    stream.push_back(sample_record(rng));
  }
  mshard::StandbyState state;
  for (const auto& record : stream) {
    state.apply(record);
    for (const auto& [token, index] : state.in_flight) {
      EXPECT_LE(token, state.max_token);
    }
    if (record.type == mshard::JournalRecord::Type::Resolved) {
      EXPECT_EQ(state.in_flight.count(record.token), 0u);
    }
  }
  EXPECT_EQ(state.records, stream.size());
}

TEST(Journal, TruncationsNeverCrashAndRejectTyped) {
  std::mt19937_64 rng(99);
  for (int i = 0; i < 50; ++i) {
    const std::string payload = mshard::encode_journal(sample_record(rng));
    // Every proper prefix: decode must return a value or a typed reason —
    // some truncations of numeric tails still parse as valid shorter
    // records (e.g. "jheartbeat 12" -> "jheartbeat 1"), which is fine;
    // crashing or rejecting reasonless is not.
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      std::string error;
      const auto decoded =
          mshard::decode_journal(payload.substr(0, cut), &error);
      if (!decoded) {
        EXPECT_FALSE(error.empty()) << "rejects must carry a reason";
      }
    }
  }
}

TEST(Journal, GarbageRejectsTypedNeverCrashes) {
  const char* hostile[] = {
      "",
      "jmember",
      "jmember 1",
      "jmember 1 2",           // alive must be 0/1
      "jmember -1 1",          // no signs
      "jmember 4294967296 1",  // worker slot overflows u32
      "jmember 1 1 extra",
      "jmember 1 1\n",         // trailing newline is not grammar
      "jprime",
      "jprime lonely",                    // owners required
      "jprime name 1 notanumber",
      "jprime name 99999999999999999999", // owner overflows
      "jflight",
      "jflight 0 5",                      // token 0 opts out of idempotency
      "jflight 1",
      "jflight 1 2 3",
      "jflight 99999999999999999999 1",   // u64 overflow
      "jresolved",
      "jresolved 3",                      // no embedded result
      "jresolved 3\n",
      "jresolved 3\nnot a result frame",
      "jresolved 3\nresult id=0",         // embedded result unparseable
      "jresolved notanumber\nresult",
      "jheartbeat",
      "jheartbeat x",
      "jheartbeat 1 2",
      "jdone extra",
      "jdone\ntrailer",
      "unknown-tag 1 2",
      "result id=0 token=0",              // a wire result is not a journal
      "\n\n\n",
      "jmember \xff\xfe 1",
  };
  for (const char* payload : hostile) {
    std::string error;
    const auto decoded = mshard::decode_journal(payload, &error);
    EXPECT_FALSE(decoded.has_value()) << "accepted: '" << payload << "'";
    EXPECT_FALSE(error.empty());
  }
}

TEST(Journal, RandomByteGarbageNeverCrashes) {
  std::mt19937_64 rng(123);
  for (int i = 0; i < 2000; ++i) {
    std::string payload;
    const std::size_t n = rng() % 64;
    for (std::size_t j = 0; j < n; ++j) {
      payload.push_back(static_cast<char>(rng() % 256));
    }
    std::string error;
    const auto decoded = mshard::decode_journal(payload, &error);
    if (!decoded) {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(Journal, ResolvedResultSurvivesReplicationBitExactly) {
  // The hexfloat contract end to end: encode a result with awkward doubles
  // through the journal and back; the wire fingerprint must not move.
  msvc::SolveOutput output;
  output.objective = 0.1 + 0.2;  // 0.30000000000000004: decimal would lie
  output.makespan = 1e-300;
  output.completions = {3.141592653589793, 2.220446049250313e-16};
  const auto original =
      msvc::SolveResult::success("water-fill-smith", std::move(output));
  const auto decoded = mshard::decode_journal(
      mshard::encode_journal(mshard::JournalRecord::resolved(0, 1, original)));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(fingerprint(original), fingerprint(decoded->result));
  EXPECT_DOUBLE_EQ(decoded->result.objective(), 0.1 + 0.2);
}
