#include "malsched/shard/hash_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "malsched/support/rng.hpp"

namespace mshard = malsched::shard;
namespace ms = malsched::support;

namespace {

std::vector<std::uint64_t> random_keys(std::size_t count,
                                       std::uint64_t seed) {
  ms::Rng rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    keys.push_back(rng.next_u64());
  }
  return keys;
}

std::map<std::uint32_t, std::size_t> load_per_node(
    const mshard::HashRing& ring, const std::vector<std::uint64_t>& keys) {
  std::map<std::uint32_t, std::size_t> load;
  for (const std::uint64_t key : keys) {
    ++load[ring.owner(key)];
  }
  return load;
}

}  // namespace

TEST(HashRing, MembershipBookkeeping) {
  mshard::HashRing ring(32);
  EXPECT_EQ(ring.node_count(), 0u);
  EXPECT_EQ(ring.point_count(), 0u);

  ring.add_node(3);
  ring.add_node(7);
  EXPECT_TRUE(ring.contains(3));
  EXPECT_TRUE(ring.contains(7));
  EXPECT_FALSE(ring.contains(5));
  EXPECT_EQ(ring.node_count(), 2u);
  EXPECT_EQ(ring.point_count(), 64u);
  EXPECT_EQ(ring.nodes(), (std::vector<std::uint32_t>{3, 7}));

  ring.add_node(3);  // re-add is a no-op
  EXPECT_EQ(ring.point_count(), 64u);

  EXPECT_TRUE(ring.remove_node(3));
  EXPECT_FALSE(ring.remove_node(3));
  EXPECT_EQ(ring.node_count(), 1u);
  EXPECT_EQ(ring.point_count(), 32u);
}

TEST(HashRing, SingleNodeOwnsEverything) {
  mshard::HashRing ring(8);
  ring.add_node(42);
  for (const std::uint64_t key : random_keys(100, 1)) {
    EXPECT_EQ(ring.owner(key), 42u);
  }
}

TEST(HashRing, DistributionIsUniformAcrossVirtualNodes) {
  // 8 nodes x 128 vnodes over 100k keys: with v points per node the load
  // imbalance concentrates near 1 + O(sqrt(log n / v)); the bounds below
  // leave generous slack but catch any systematic skew (e.g. a broken
  // mixer, which would put several nodes at ~0).
  mshard::HashRing ring(128);
  const std::size_t nodes = 8;
  for (std::uint32_t node = 0; node < nodes; ++node) {
    ring.add_node(node);
  }
  const auto keys = random_keys(100000, 20120521);
  const auto load = load_per_node(ring, keys);
  ASSERT_EQ(load.size(), nodes);
  const double mean = static_cast<double>(keys.size()) / nodes;
  for (const auto& [node, count] : load) {
    EXPECT_GT(static_cast<double>(count), 0.60 * mean)
        << "node " << node << " is starved";
    EXPECT_LT(static_cast<double>(count), 1.40 * mean)
        << "node " << node << " is overloaded";
  }
}

TEST(HashRing, MoreVnodesTightenTheSpread) {
  // The imbalance knob the operator's manual documents: max/mean load with
  // 128 vnodes must beat the spread with 4 vnodes on the same key set.
  const auto keys = random_keys(50000, 7);
  const auto spread = [&](std::size_t vnodes) {
    mshard::HashRing ring(vnodes);
    for (std::uint32_t node = 0; node < 8; ++node) {
      ring.add_node(node);
    }
    const auto load = load_per_node(ring, keys);
    std::size_t max_load = 0;
    for (const auto& [node, count] : load) {
      max_load = std::max(max_load, count);
    }
    return static_cast<double>(max_load) /
           (static_cast<double>(keys.size()) / 8.0);
  };
  EXPECT_LT(spread(128), spread(4));
}

TEST(HashRing, AddingANodeMovesOnlyItsShareOfKeys) {
  mshard::HashRing ring(64);
  const std::size_t nodes = 8;
  for (std::uint32_t node = 0; node < nodes; ++node) {
    ring.add_node(node);
  }
  const auto keys = random_keys(20000, 99);
  std::vector<std::uint32_t> before;
  before.reserve(keys.size());
  for (const std::uint64_t key : keys) {
    before.push_back(ring.owner(key));
  }

  ring.add_node(static_cast<std::uint32_t>(nodes));
  std::size_t moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint32_t after = ring.owner(keys[i]);
    if (after != before[i]) {
      ++moved;
      // Minimal movement: a key that changed owner moved *to the new
      // node*, never between old nodes.
      EXPECT_EQ(after, nodes) << "key migrated between pre-existing nodes";
    }
  }
  // Expected share is 1/(n+1) ~ 11%; allow a wide band around it.
  const double fraction =
      static_cast<double>(moved) / static_cast<double>(keys.size());
  EXPECT_GT(fraction, 0.4 / (nodes + 1));
  EXPECT_LT(fraction, 2.0 / (nodes + 1));
}

TEST(HashRing, RemovingANodeMovesOnlyItsKeys) {
  mshard::HashRing ring(64);
  for (std::uint32_t node = 0; node < 8; ++node) {
    ring.add_node(node);
  }
  const auto keys = random_keys(20000, 31);
  std::vector<std::uint32_t> before;
  before.reserve(keys.size());
  for (const std::uint64_t key : keys) {
    before.push_back(ring.owner(key));
  }

  const std::uint32_t removed = 5;
  ASSERT_TRUE(ring.remove_node(removed));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint32_t after = ring.owner(keys[i]);
    if (before[i] == removed) {
      EXPECT_NE(after, removed);
    } else {
      // Every key the removed node did not own keeps its owner — a worker
      // restart invalidates one cache shard, not the fleet's.
      EXPECT_EQ(after, before[i]);
    }
  }
}

TEST(HashRing, RemoveThenReAddRestoresTheExactOwnership) {
  // Point positions are a pure function of (node, replica), so a restarted
  // worker replants the identical arcs and the routing function converges
  // back to the pre-failure map.
  mshard::HashRing ring(64);
  for (std::uint32_t node = 0; node < 5; ++node) {
    ring.add_node(node);
  }
  const auto keys = random_keys(5000, 63);
  std::vector<std::uint32_t> before;
  before.reserve(keys.size());
  for (const std::uint64_t key : keys) {
    before.push_back(ring.owner(key));
  }
  ASSERT_TRUE(ring.remove_node(2));
  ring.add_node(2);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(ring.owner(keys[i]), before[i]);
  }
}

TEST(HashRing, OwnersAreDistinctAndStartAtThePrimary) {
  mshard::HashRing ring(32);
  for (std::uint32_t node = 0; node < 6; ++node) {
    ring.add_node(node);
  }
  for (const std::uint64_t key : random_keys(500, 11)) {
    const auto replicas = ring.owners(key, 3);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_EQ(replicas[0], ring.owner(key));
    std::vector<std::uint32_t> sorted = replicas;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  }
  // Asking for more replicas than nodes returns every node exactly once.
  const auto all = ring.owners(1234, 99);
  EXPECT_EQ(all.size(), 6u);
}

TEST(HashRing, OwnershipIsIndependentOfInsertionOrder) {
  const auto keys = random_keys(2000, 5);
  mshard::HashRing forward(64);
  mshard::HashRing backward(64);
  for (std::uint32_t node = 0; node < 7; ++node) {
    forward.add_node(node);
    backward.add_node(6 - node);
  }
  for (const std::uint64_t key : keys) {
    EXPECT_EQ(forward.owner(key), backward.owner(key));
  }
}
