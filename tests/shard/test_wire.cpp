#include "malsched/shard/wire.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace msvc = malsched::service;
namespace wire = malsched::shard::wire;
using malsched::core::Instance;
using malsched::core::Task;

namespace {

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    for (const int fd : fds) {
      if (fd >= 0) {
        ::close(fd);
      }
    }
  }
};

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

double from_bits(std::uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

/// The doubles that break everything except raw-bit transport: NaNs with
/// distinct payloads (quiet and signaling patterns), both infinities,
/// negative zero, and subnormals down to the very smallest.
const std::vector<double> hostile_doubles() {
  return {
      from_bits(0x7FF8DEADBEEFCAFEull),  // quiet NaN, distinctive payload
      from_bits(0xFFF8000000000001ull),  // negative quiet NaN
      from_bits(0x7FF0000000000001ull),  // signaling-NaN bit pattern
      from_bits(0x7FF0000000000000ull),  // +inf
      from_bits(0xFFF0000000000000ull),  // -inf
      from_bits(0x8000000000000000ull),  // -0.0
      from_bits(0x0000000000000001ull),  // smallest subnormal
      from_bits(0x000FFFFFFFFFFFFFull),  // largest subnormal
      2.2250738585072009e-308,           // subnormal/normal boundary
  };
}

}  // namespace

TEST(Wire, FrameRoundTripIncludingEmptyAndBinary) {
  SocketPair channel;
  const std::vector<std::string> payloads = {
      "", "x", "solve 1 0x1p+0 - wdeq small",
      std::string("\x00\x01\xff binary\n\n", 10), std::string(70000, 'a')};
  for (const auto& sent : payloads) {
    ASSERT_TRUE(wire::write_frame(channel.fds[0], sent));
  }
  for (const auto& sent : payloads) {
    std::string received;
    ASSERT_TRUE(wire::read_frame(channel.fds[1], &received));
    EXPECT_EQ(received, sent);
  }
}

TEST(Wire, ReadFrameFailsOnEofAndOnCorruptLengthPrefix) {
  {
    SocketPair channel;
    ::close(channel.fds[0]);
    channel.fds[0] = -1;
    std::string payload;
    EXPECT_FALSE(wire::read_frame(channel.fds[1], &payload));
  }
  {
    // A corrupted length prefix (4 GiB) must fail the read, not allocate.
    SocketPair channel;
    const unsigned char huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    ASSERT_EQ(::send(channel.fds[0], huge, 4, 0), 4);
    std::string payload;
    EXPECT_FALSE(wire::read_frame(channel.fds[1], &payload));
  }
}

TEST(Wire, WriteFrameReportsDeadPeerInsteadOfSigpipe) {
  SocketPair channel;
  ::close(channel.fds[1]);
  channel.fds[1] = -1;
  // Without MSG_NOSIGNAL this would raise SIGPIPE and kill the test.
  EXPECT_FALSE(wire::write_frame(channel.fds[0], std::string(1 << 16, 'x')));
}

TEST(Wire, InstanceRoundTripIsBitExact) {
  // Values chosen to break any decimal intermediary: non-terminating binary
  // fractions, denormal-adjacent magnitudes, and ulp-separated neighbours.
  const std::vector<Task> tasks = {
      {1.0 / 3.0, 2.0, 0.1},
      {1e-300, 0.7, 3.0000000000000004},
      {123456789.123456789, 3.141592653589793, 2.2250738585072014e-308},
      {0.0, 1e308, 0.0}};
  const Instance instance(6.02214076e23, tasks);
  const auto message =
      wire::decode_instance(wire::encode_instance("tricky", instance));
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->name, "tricky");
  ASSERT_TRUE(message->instance.has_value());
  const Instance& decoded = *message->instance;
  ASSERT_EQ(decoded.size(), tasks.size());
  EXPECT_TRUE(bits_equal(decoded.processors(), instance.processors()));
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_TRUE(bits_equal(decoded.task(i).volume, tasks[i].volume));
    EXPECT_TRUE(bits_equal(decoded.task(i).width, tasks[i].width));
    EXPECT_TRUE(bits_equal(decoded.task(i).weight, tasks[i].weight));
  }
}

TEST(Wire, InstanceDecodeRejectsGarbage) {
  EXPECT_FALSE(wire::decode_instance("solve 1 0x1p+0 - wdeq x").has_value());
  EXPECT_FALSE(wire::decode_instance("instance x\n0x1p+2 2\n0x1p+0 0x1p+0")
                   .has_value());  // truncated task list
  EXPECT_FALSE(
      wire::decode_instance("instance x\n-0x1p+2 0").has_value());  // P <= 0
}

TEST(Wire, SolveRoundTripWithAndWithoutDeadline) {
  wire::SolveMessage message;
  message.id = 0xFFFFFFFFFFFFFFFFull;
  message.token = 0xDEADBEEFCAFEF00Dull;
  message.priority_weight = 1.0 / 7.0;
  message.deadline_seconds = 0.25;
  message.solver = "order-lp-smith";
  message.instance_name = "big-42";
  const auto decoded = wire::decode_solve(wire::encode_solve(message));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, message.id);
  EXPECT_EQ(decoded->token, message.token);
  EXPECT_TRUE(bits_equal(decoded->priority_weight, message.priority_weight));
  ASSERT_TRUE(decoded->deadline_seconds.has_value());
  EXPECT_TRUE(bits_equal(*decoded->deadline_seconds, 0.25));
  EXPECT_EQ(decoded->solver, message.solver);
  EXPECT_EQ(decoded->instance_name, message.instance_name);

  message.deadline_seconds.reset();
  const auto no_deadline = wire::decode_solve(wire::encode_solve(message));
  ASSERT_TRUE(no_deadline.has_value());
  EXPECT_FALSE(no_deadline->deadline_seconds.has_value());
}

TEST(Wire, OkResultRoundTripIsBitExact) {
  msvc::SolveOutput output;
  output.objective = 1.0 / 3.0;
  output.makespan = 2.0000000000000004;
  output.completions = {0.1, 0.2, 1e-17, 123.456};
  msvc::SolveResult result = msvc::SolveResult::success("wdeq", output);
  result.cache_hit = true;
  result.latency_seconds = 3.25e-4;

  const auto decoded =
      wire::decode_result(wire::encode_result(77, 4242, result));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, 77u);
  EXPECT_EQ(decoded->token, 4242u);
  ASSERT_TRUE(decoded->result.ok());
  EXPECT_EQ(decoded->result.solver, "wdeq");
  EXPECT_TRUE(decoded->result.cache_hit);
  EXPECT_TRUE(bits_equal(decoded->result.latency_seconds, 3.25e-4));
  EXPECT_TRUE(bits_equal(decoded->result.objective(), output.objective));
  EXPECT_TRUE(bits_equal(decoded->result.makespan(), output.makespan));
  ASSERT_EQ(decoded->result.completions().size(), output.completions.size());
  for (std::size_t i = 0; i < output.completions.size(); ++i) {
    EXPECT_TRUE(bits_equal(decoded->result.completions()[i],
                           output.completions[i]));
  }
}

TEST(Wire, EveryErrorCodeRoundTripsWithHostileMessages) {
  // The cross-process contract of the typed error model: Cancelled,
  // DeadlineExceeded and friends must mean the same thing on both sides of
  // the pipe, message text included.
  const std::vector<std::string> messages = {
      "plain detail",
      "quotes \"inside\" and trailing backslash \\",
      "newline\nand\rcarriage",
      "",
      "spaces   and = signs a=b"};
  std::size_t message_index = 0;
  for (const msvc::ErrorCode code : msvc::kAllErrorCodes) {
    const std::string& detail = messages[message_index++ % messages.size()];
    const msvc::SolveResult sent =
        msvc::SolveResult::failure("optimal", code, detail);
    const auto decoded =
        wire::decode_result(wire::encode_result(9, 1, sent));
    ASSERT_TRUE(decoded.has_value())
        << "code " << msvc::error_code_name(code);
    ASSERT_FALSE(decoded->result.ok());
    EXPECT_EQ(decoded->result.error().code, code);
    EXPECT_EQ(decoded->result.error().detail, detail)
        << "code " << msvc::error_code_name(code);
    EXPECT_EQ(decoded->result.solver, "optimal");
  }
}

TEST(Wire, QuotesInSolverNamesDoNotDesynchronizeTheHeader) {
  // Regression: solver names are arbitrary whitespace-free tokens, quotes
  // included (`solve a"b x` is a legal batch line).  The solver field is
  // quoted on the wire so such a name cannot swallow the fields after it.
  const msvc::SolveResult sent = msvc::SolveResult::failure(
      "a\"b", msvc::ErrorCode::UnknownSolver, "unknown solver 'a\"b'");
  const auto decoded = wire::decode_result(wire::encode_result(4, 1, sent));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_FALSE(decoded->result.ok());
  EXPECT_EQ(decoded->result.solver, "a\"b");
  EXPECT_EQ(decoded->result.error().code, msvc::ErrorCode::UnknownSolver);
  EXPECT_EQ(decoded->result.error().detail, "unknown solver 'a\"b'");
}

TEST(Wire, FieldLookupIsNotShadowedByKeysInsideQuotedMessages) {
  // Regression: solver exception text becomes the error detail verbatim; a
  // detail containing " latency=" (or any other field key) must not hijack
  // the scan for the real field that follows the quoted message.
  const msvc::SolveResult sent = msvc::SolveResult::failure(
      "custom", msvc::ErrorCode::SolverFailure,
      "bad latency=0.5 in config, also status=ok and code=cancelled");
  const auto decoded = wire::decode_result(wire::encode_result(3, 1, sent));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_FALSE(decoded->result.ok());
  EXPECT_EQ(decoded->result.error().code, msvc::ErrorCode::SolverFailure);
  EXPECT_EQ(decoded->result.error().detail,
            "bad latency=0.5 in config, also status=ok and code=cancelled");
  EXPECT_TRUE(bits_equal(decoded->result.latency_seconds, 0.0));
}

TEST(Wire, InstanceDecodeRejectsHugeTaskCountHeader) {
  // Regression: a corrupted count field must be rejected before reserve()
  // turns it into a multi-terabyte allocation attempt.
  EXPECT_FALSE(
      wire::decode_instance("instance x\n0x1p+2 999999999999\n").has_value());
}

TEST(Wire, ResultDecodeRejectsUnknownStatusAndCode) {
  EXPECT_FALSE(wire::decode_result("result 1 solver=x status=weird "
                                   "latency=0x0p+0")
                   .has_value());
  EXPECT_FALSE(wire::decode_result("result 1 solver=x status=error "
                                   "code=not-a-code message=\"m\" "
                                   "latency=0x0p+0")
                   .has_value());
}

TEST(Wire, StatsRoundTrip) {
  msvc::CacheStats stats;
  stats.hits = 123456789012ull;
  stats.misses = 42;
  stats.evictions = 7;
  stats.expired = 3;
  stats.admitted = 555;
  stats.rejected = 66;
  stats.entries = 1000;
  stats.weight = 65536;
  stats.capacity = 1 << 20;
  const auto decoded = wire::decode_stats(wire::encode_stats(stats));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->hits, stats.hits);
  EXPECT_EQ(decoded->misses, stats.misses);
  EXPECT_EQ(decoded->evictions, stats.evictions);
  EXPECT_EQ(decoded->expired, stats.expired);
  EXPECT_EQ(decoded->admitted, stats.admitted);
  EXPECT_EQ(decoded->rejected, stats.rejected);
  EXPECT_EQ(decoded->entries, stats.entries);
  EXPECT_EQ(decoded->weight, stats.weight);
  EXPECT_EQ(decoded->capacity, stats.capacity);
}

TEST(Wire, MessageTypeExtraction) {
  EXPECT_EQ(wire::message_type("solve 1 0x1p+0 - wdeq x"), "solve");
  EXPECT_EQ(wire::message_type("instance foo\n..."), "instance");
  EXPECT_EQ(wire::message_type("drain"), "drain");
  EXPECT_EQ(wire::message_type("hello malsched-wire 2 router"), "hello");
  EXPECT_EQ(wire::message_type(""), "");
}

TEST(Wire, HelloRoundTripCarriesVersionAndRole) {
  wire::HelloMessage hello;
  hello.role = "router";
  const auto decoded = wire::decode_hello(wire::encode_hello(hello));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->version, wire::kWireProtocolVersion);
  EXPECT_EQ(decoded->role, "router");

  wire::HelloMessage peer;
  EXPECT_FALSE(
      wire::validate_hello(wire::encode_hello(hello), &peer).has_value());
  EXPECT_EQ(peer.role, "router");
  EXPECT_EQ(peer.version, wire::kWireProtocolVersion);
}

TEST(Wire, ValidateHelloNamesBothVersionsOnAMismatch) {
  wire::HelloMessage old_binary;
  old_binary.version = 1;  // the PR-5 dialect, before hello itself existed
  old_binary.role = "worker";
  const auto reason = wire::validate_hello(wire::encode_hello(old_binary));
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("version 1"), std::string::npos) << *reason;
  EXPECT_NE(reason->find(std::to_string(wire::kWireProtocolVersion)),
            std::string::npos)
      << *reason;
}

TEST(Wire, ValidateHelloQuotesASanitizedPreviewOfGarbage) {
  // The greeting is attacker-controlled: whatever dialed the port.  The
  // rejection must carry a bounded, printable excerpt — never raw bytes,
  // never more than the preview window.
  const auto http = wire::validate_hello("HTTP/1.1 400 Bad Request");
  ASSERT_TRUE(http.has_value());
  EXPECT_NE(http->find("HTTP/1.1 400"), std::string::npos) << *http;

  const std::string hostile =
      std::string("\1\2", 2) + "evil\r\n\x7f" + std::string(500, 'A');
  const auto reason = wire::validate_hello(hostile);
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("..evil"), std::string::npos)
      << "control bytes must be masked: " << *reason;
  EXPECT_LT(reason->size(), 200u) << "preview must be bounded";

  // Structurally plausible but wrong-magic greetings also fail closed.
  EXPECT_FALSE(wire::decode_hello("hello other-protocol 2 router"));
  EXPECT_FALSE(wire::decode_hello("hello malsched-wire nan router"));
  EXPECT_FALSE(wire::decode_hello("hello malsched-wire 99999999999 x"));
  EXPECT_FALSE(wire::decode_hello(""));
}

TEST(Wire, HandshakeSucceedsBetweenTwoHonestPeers) {
  SocketPair channel;
  bool worker_ok = false;
  std::thread worker_side([&] {
    worker_ok =
        wire::handshake(channel.fds[1], "worker", std::chrono::seconds(10));
  });
  std::string reason;
  EXPECT_TRUE(wire::handshake(channel.fds[0], "router",
                              std::chrono::seconds(10), &reason))
      << reason;
  worker_side.join();
  EXPECT_TRUE(worker_ok);
}

TEST(Wire, HandshakeRejectsAHostileGreetingWithAReason) {
  // The peer "greets" with an HTTP response — the port-scanner scenario.
  // Single-threaded on purpose: the garbage frame is buffered before the
  // handshake runs, proving the exchange cannot deadlock on write order.
  SocketPair channel;
  ASSERT_TRUE(wire::write_frame(channel.fds[1], "HTTP/1.1 200 OK"));
  std::string reason;
  EXPECT_FALSE(wire::handshake(channel.fds[0], "router",
                               std::chrono::seconds(5), &reason));
  EXPECT_NE(reason.find("HTTP/1.1 200 OK"), std::string::npos) << reason;
}

TEST(Wire, HandshakeTimesOutTypedOnASilentPeer) {
  SocketPair channel;
  const auto start = std::chrono::steady_clock::now();
  std::string reason;
  EXPECT_FALSE(wire::handshake(channel.fds[0], "router",
                               std::chrono::milliseconds(200), &reason));
  EXPECT_NE(reason.find("timeout"), std::string::npos) << reason;
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 5.0);
}

// --- binary dialect: the shm data plane's encoding ---
//
// The contract under test: Dialect::Binary carries doubles as their raw
// IEEE-754 bits, so payload-carrying NaNs, infinities, negative zero and
// subnormals all round-trip bit-identically — and both dialects decode to
// the same in-memory message, so flipping a shard between shm and
// socketpair cannot change a single output byte.

TEST(WireBinary, InstanceRoundTripPreservesEveryHostileBitPattern) {
  // Instance preconditions (volume >= 0, width > 0, weight >= 0) exclude
  // NaN, so this exercises every hostile double an instance can legally
  // hold: negative zero, infinities where signs allow, and subnormals at
  // both ends.  NaN transport is covered by the solve/result tests, whose
  // fields are not range-checked.
  const double neg_zero = from_bits(0x8000000000000000ull);
  const double pos_inf = from_bits(0x7FF0000000000000ull);
  const double min_sub = from_bits(0x0000000000000001ull);
  const double max_sub = from_bits(0x000FFFFFFFFFFFFFull);
  const std::vector<Task> tasks = {
      {neg_zero, min_sub, neg_zero},
      {min_sub, pos_inf, max_sub},
      {pos_inf, max_sub, pos_inf},
      {max_sub, 2.2250738585072009e-308, min_sub}};
  const Instance instance(min_sub, tasks);
  const auto message = wire::decode_instance(
      wire::encode_instance("hostile", instance, wire::Dialect::Binary));
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->name, "hostile");
  ASSERT_TRUE(message->instance.has_value());
  ASSERT_EQ(message->instance->size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_TRUE(bits_equal(message->instance->task(i).volume, tasks[i].volume))
        << "task " << i;
    EXPECT_TRUE(bits_equal(message->instance->task(i).width, tasks[i].width))
        << "task " << i;
    EXPECT_TRUE(bits_equal(message->instance->task(i).weight, tasks[i].weight))
        << "task " << i;
  }
}

TEST(WireBinary, SolveRoundTripPreservesHostileDoubles) {
  wire::SolveMessage message;
  message.id = 0xFFFFFFFFFFFFFFFFull;
  message.token = 1;
  message.priority_weight = from_bits(0x8000000000000000ull);  // -0.0
  message.deadline_seconds = from_bits(0x0000000000000001ull);  // min subnormal
  message.solver = "wdeq";
  message.instance_name = "n";
  auto decoded = wire::decode_solve(
      wire::encode_solve(message, wire::Dialect::Binary));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, message.id);
  EXPECT_TRUE(bits_equal(decoded->priority_weight, message.priority_weight));
  ASSERT_TRUE(decoded->deadline_seconds.has_value());
  EXPECT_TRUE(bits_equal(*decoded->deadline_seconds,
                         *message.deadline_seconds));

  // A NaN deadline is not `< 0.0`, so both dialects pass it through —
  // parity matters more than plausibility here.
  message.deadline_seconds = from_bits(0x7FF8000000000099ull);
  decoded = wire::decode_solve(
      wire::encode_solve(message, wire::Dialect::Binary));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(bits_equal(*decoded->deadline_seconds,
                         *message.deadline_seconds));

  message.deadline_seconds.reset();
  decoded = wire::decode_solve(
      wire::encode_solve(message, wire::Dialect::Binary));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->deadline_seconds.has_value());
}

TEST(WireBinary, OkResultRoundTripPreservesHostileCompletions) {
  msvc::SolveOutput output;
  output.objective = from_bits(0x8000000000000000ull);  // -0.0
  output.makespan = from_bits(0x7FF0000000000000ull);   // +inf
  output.completions = hostile_doubles();
  msvc::SolveResult result = msvc::SolveResult::success("wdeq", output);
  result.latency_seconds = from_bits(0x000FFFFFFFFFFFFFull);

  const auto decoded = wire::decode_result(
      wire::encode_result(7, 9, result, wire::Dialect::Binary));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->result.ok());
  EXPECT_TRUE(bits_equal(decoded->result.objective(), output.objective));
  EXPECT_TRUE(bits_equal(decoded->result.makespan(), output.makespan));
  EXPECT_TRUE(
      bits_equal(decoded->result.latency_seconds, result.latency_seconds));
  ASSERT_EQ(decoded->result.completions().size(), output.completions.size());
  for (std::size_t i = 0; i < output.completions.size(); ++i) {
    EXPECT_TRUE(
        bits_equal(decoded->result.completions()[i], output.completions[i]))
        << "completion " << i;
  }
}

TEST(WireBinary, EveryErrorCodeRoundTripsWithBinaryHostileDetails) {
  // Length-prefixed strings need no escaping, so the binary dialect must
  // carry details the text dialect could never hold verbatim — embedded
  // NULs included.
  const std::vector<std::string> details = {
      std::string("nul \0 inside", 13),
      "quotes \"and\" backslash \\",
      "line\nbreaks\rinside",
      std::string(4096, '\xff'),
      ""};
  std::size_t detail_index = 0;
  for (const msvc::ErrorCode code : msvc::kAllErrorCodes) {
    const std::string& detail = details[detail_index++ % details.size()];
    const msvc::SolveResult sent =
        msvc::SolveResult::failure("optimal", code, detail);
    const auto decoded = wire::decode_result(
        wire::encode_result(9, 1, sent, wire::Dialect::Binary));
    ASSERT_TRUE(decoded.has_value()) << msvc::error_code_name(code);
    ASSERT_FALSE(decoded->result.ok());
    EXPECT_EQ(decoded->result.error().code, code)
        << msvc::error_code_name(code);
    EXPECT_EQ(decoded->result.error().detail, detail)
        << msvc::error_code_name(code);
  }
}

TEST(WireBinary, BothDialectsDecodeToIdenticalMessages) {
  // The golden cross-check behind the byte-identical-output CI gate: the
  // same message encoded in either dialect decodes to the same bits, so
  // the data plane choice cannot leak into results.
  const std::vector<Task> tasks = {{1.0 / 3.0, 2.0, 0.1},
                                   {1e-300, 0.7, 3.0000000000000004},
                                   {2.2250738585072014e-308, 1e308, 42.0}};
  const Instance instance(6.02214076e23, tasks);
  const auto text_inst =
      wire::decode_instance(wire::encode_instance("golden", instance));
  const auto bin_inst = wire::decode_instance(
      wire::encode_instance("golden", instance, wire::Dialect::Binary));
  ASSERT_TRUE(text_inst.has_value() && bin_inst.has_value());
  EXPECT_EQ(text_inst->name, bin_inst->name);
  ASSERT_EQ(text_inst->instance->size(), bin_inst->instance->size());
  EXPECT_TRUE(bits_equal(text_inst->instance->processors(),
                         bin_inst->instance->processors()));
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_TRUE(bits_equal(text_inst->instance->task(i).volume,
                           bin_inst->instance->task(i).volume));
    EXPECT_TRUE(bits_equal(text_inst->instance->task(i).width,
                           bin_inst->instance->task(i).width));
    EXPECT_TRUE(bits_equal(text_inst->instance->task(i).weight,
                           bin_inst->instance->task(i).weight));
  }

  wire::SolveMessage solve;
  solve.id = 0x123456789ABCDEFull;
  solve.token = 0xFEDCBA987654321ull;
  solve.priority_weight = 1.0 / 7.0;
  solve.deadline_seconds = 0.125;
  solve.solver = "order-lp-smith";
  solve.instance_name = "golden";
  const auto text_solve = wire::decode_solve(wire::encode_solve(solve));
  const auto bin_solve = wire::decode_solve(
      wire::encode_solve(solve, wire::Dialect::Binary));
  ASSERT_TRUE(text_solve.has_value() && bin_solve.has_value());
  EXPECT_EQ(text_solve->id, bin_solve->id);
  EXPECT_EQ(text_solve->token, bin_solve->token);
  EXPECT_TRUE(
      bits_equal(text_solve->priority_weight, bin_solve->priority_weight));
  EXPECT_TRUE(bits_equal(*text_solve->deadline_seconds,
                         *bin_solve->deadline_seconds));
  EXPECT_EQ(text_solve->solver, bin_solve->solver);
  EXPECT_EQ(text_solve->instance_name, bin_solve->instance_name);

  msvc::SolveOutput output;
  output.objective = 1.0 / 3.0;
  output.makespan = 2.0000000000000004;
  output.completions = {0.1, 0.2, 1e-17, 123.456};
  msvc::SolveResult result = msvc::SolveResult::success("wdeq", output);
  result.cache_hit = true;
  result.latency_seconds = 3.25e-4;
  const auto text_res = wire::decode_result(wire::encode_result(7, 9, result));
  const auto bin_res = wire::decode_result(
      wire::encode_result(7, 9, result, wire::Dialect::Binary));
  ASSERT_TRUE(text_res.has_value() && bin_res.has_value());
  EXPECT_EQ(text_res->id, bin_res->id);
  EXPECT_EQ(text_res->token, bin_res->token);
  EXPECT_EQ(text_res->result.solver, bin_res->result.solver);
  EXPECT_EQ(text_res->result.cache_hit, bin_res->result.cache_hit);
  EXPECT_TRUE(bits_equal(text_res->result.latency_seconds,
                         bin_res->result.latency_seconds));
  EXPECT_TRUE(
      bits_equal(text_res->result.objective(), bin_res->result.objective()));
  EXPECT_TRUE(
      bits_equal(text_res->result.makespan(), bin_res->result.makespan()));
  ASSERT_EQ(text_res->result.completions().size(),
            bin_res->result.completions().size());
  for (std::size_t i = 0; i < output.completions.size(); ++i) {
    EXPECT_TRUE(bits_equal(text_res->result.completions()[i],
                           bin_res->result.completions()[i]));
  }
}

TEST(WireBinary, MessageTypeNamesBinaryTagsLikeText) {
  const Instance instance(2.0, {{1.0, 1.0, 1.0}});
  EXPECT_EQ(wire::message_type(
                wire::encode_instance("x", instance, wire::Dialect::Binary)),
            "instance");
  wire::SolveMessage solve;
  solve.solver = "wdeq";
  solve.instance_name = "x";
  EXPECT_EQ(
      wire::message_type(wire::encode_solve(solve, wire::Dialect::Binary)),
      "solve");
  const msvc::SolveResult result = msvc::SolveResult::failure(
      "wdeq", msvc::ErrorCode::Cancelled, "shutting down");
  EXPECT_EQ(wire::message_type(
                wire::encode_result(1, 1, result, wire::Dialect::Binary)),
            "result");
}

TEST(WireBinary, DecodeRejectsTruncationAtEveryPrefixAndTrailingGarbage) {
  // Every strict prefix of a valid binary message is corruption (all
  // fields are mandatory and length-prefixed), and so is every suffix
  // beyond the last field — the reader must consume the payload exactly.
  const Instance instance(4.0, {{1.0 / 3.0, 1.0, 2.0}, {2.0, 0.5, 1.0}});
  const std::string inst_payload =
      wire::encode_instance("t", instance, wire::Dialect::Binary);
  wire::SolveMessage solve;
  solve.id = 3;
  solve.token = 4;
  solve.deadline_seconds = 0.5;
  solve.solver = "wdeq";
  solve.instance_name = "t";
  const std::string solve_payload =
      wire::encode_solve(solve, wire::Dialect::Binary);
  msvc::SolveOutput output;
  output.completions = {0.25, 0.5};
  const std::string result_payload = wire::encode_result(
      5, 6, msvc::SolveResult::success("wdeq", output), wire::Dialect::Binary);

  for (std::size_t cut = 1; cut < inst_payload.size(); ++cut) {
    EXPECT_FALSE(wire::decode_instance(inst_payload.substr(0, cut)))
        << "instance prefix " << cut;
  }
  for (std::size_t cut = 1; cut < solve_payload.size(); ++cut) {
    EXPECT_FALSE(wire::decode_solve(solve_payload.substr(0, cut)))
        << "solve prefix " << cut;
  }
  for (std::size_t cut = 1; cut < result_payload.size(); ++cut) {
    EXPECT_FALSE(wire::decode_result(result_payload.substr(0, cut)))
        << "result prefix " << cut;
  }
  EXPECT_FALSE(wire::decode_instance(inst_payload + std::string(1, '\0')));
  EXPECT_FALSE(wire::decode_solve(solve_payload + "junk"));
  EXPECT_FALSE(wire::decode_result(result_payload + std::string(1, '\x83')));
  // A tag byte with nothing behind it is truncation, not an empty message.
  EXPECT_FALSE(wire::decode_instance(std::string(1, '\x81')));
  EXPECT_FALSE(wire::decode_solve(std::string(1, '\x82')));
  EXPECT_FALSE(wire::decode_result(std::string(1, '\x83')));
}
