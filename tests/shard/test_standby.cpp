// End-to-end tests of router hot standby (standby.hpp): a real primary
// process replicating over a real socket to a standby in this process,
// with real TCP workers — SIGKILLed at exact protocol boundaries by the
// fault-injection harness (faultpoint.hpp), after which the standby must
// take over the fleet and produce client output byte-identical to a
// single-process run.
//
// Process discipline: every worker and every primary is forked while this
// process has no live threads (the documented fork contract).  The standby
// itself runs in the test's main thread — its takeover router only dials
// TCP, never forks.  Tests that use std::thread join it before returning,
// so later tests fork safely.

#include "malsched/shard/standby.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "malsched/core/instance.hpp"
#include "malsched/net/socket.hpp"
#include "malsched/service/service.hpp"
#include "malsched/shard/router.hpp"
#include "malsched/shard/wire.hpp"
#include "malsched/shard/worker.hpp"
#include "malsched/support/faultpoint.hpp"

namespace mc = malsched::core;
namespace mnet = malsched::net;
namespace msvc = malsched::service;
namespace mshard = malsched::shard;
namespace msup = malsched::support;

namespace {

const msvc::SolverRegistry& registry() {
  static const auto instance = msvc::SolverRegistry::with_default_solvers();
  return instance;
}

msvc::BatchSpec parse(const std::string& text) {
  std::string error;
  const auto batch = msvc::parse_batch(text, &error);
  EXPECT_TRUE(batch.has_value()) << error;
  return *batch;
}

// Mixed solvers, a cache-sharing scaled duplicate, and the typed error
// paths (unknown solver, unknown instance) that must survive a takeover
// byte-identically.  Enough requests that @nth fault points in the middle
// of the stream leave real work on every side of the cut.
const char* kStandbyBatch = R"(
instance small
processors 4
task 2.0 2 1.0
task 1.5 1 0.5
task 0.75 3 2.0
end
instance tiny
processors 2
task 1.0 1 1.0
task 0.5 2 3.0
end
generate mid uniform 24 8 42
solve wdeq small
solve deq small
solve wrr mid
solve smith-greedy mid
solve optimal tiny
solve water-fill-smith mid
weight 3
solve wdeq mid
weight 1
solve no-such-solver small
solve wdeq ghost
solve greedy-heuristic small
)";

struct WorkerProc {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

/// Forks a `malsched_worker --listen`-alike: binds an ephemeral loopback
/// port (reported back over a pipe), then serves one router session at a
/// time in a loop — exactly the exclusivity the split-brain guard leans
/// on, and the re-accept the takeover leans on.
WorkerProc spawn_worker(const msvc::SolverRegistry& reg) {
  int pipe_fds[2];
  EXPECT_EQ(::pipe(pipe_fds), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::close(pipe_fds[0]);
    std::string error;
    std::uint16_t port = 0;
    const int listen_fd = mnet::tcp_listen({"127.0.0.1", 0}, &error, &port);
    if (listen_fd < 0) {
      ::_exit(10);
    }
    (void)!::write(pipe_fds[1], &port, sizeof(port));
    ::close(pipe_fds[1]);
    for (;;) {
      std::string accept_error;
      const int fd = mnet::tcp_accept(listen_fd, std::chrono::seconds(120),
                                      &accept_error);
      if (fd < 0) {
        ::_exit(0);  // idle timeout: the test is over
      }
      mshard::WorkerOptions options;
      options.threads = 2;
      (void)mshard::run_worker(fd, reg, options);
      ::close(fd);
    }
  }
  ::close(pipe_fds[1]);
  WorkerProc worker;
  worker.pid = pid;
  EXPECT_EQ(::read(pipe_fds[0], &worker.port, sizeof(worker.port)),
            static_cast<ssize_t>(sizeof(worker.port)));
  ::close(pipe_fds[0]);
  return worker;
}

void reap_worker(const WorkerProc& worker) {
  ::kill(worker.pid, SIGKILL);
  int status = 0;
  ::waitpid(worker.pid, &status, 0);
}

/// Forks a primary router serving `batch` over the TCP fleet, replicating
/// to `replication_fd`, with `fault` armed (MALSCHED_FAULT grammar; empty
/// = none).  The parent's copy of the fd is closed so the child's death is
/// the only thing that can EOF the stream.
pid_t spawn_primary(int replication_fd, const msvc::SolverRegistry& reg,
                    const msvc::BatchSpec& batch,
                    const std::vector<mnet::Endpoint>& workers,
                    const std::string& fault, std::size_t repeat) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (!fault.empty() && !msup::fault_arm(fault)) {
      ::_exit(11);
    }
    mshard::RouterOptions options;
    options.tcp_workers = workers;
    options.replication = 2;
    options.standby_fd = replication_fd;
    options.heartbeat_interval = std::chrono::milliseconds(25);
    mshard::ShardRouter router(reg, options);
    mshard::RouterRunOptions run_options;
    run_options.repeat = repeat;
    (void)router.run(batch, run_options);
    ::_exit(0);
  }
  ::close(replication_fd);
  return pid;
}

}  // namespace

TEST(Standby, HeartbeatDeadlineSaturatesAtClockEndpoints) {
  using Clock = std::chrono::steady_clock;
  const auto timeout = std::chrono::milliseconds(2000);
  // The sentinel endpoints must pin: max() means "never", not a negative
  // wraparound into the past; min() means "long expired", not the future.
  EXPECT_EQ(mshard::heartbeat_deadline(Clock::time_point::max(), timeout),
            Clock::time_point::max());
  EXPECT_EQ(mshard::heartbeat_deadline(
                Clock::time_point::max() - std::chrono::milliseconds(1),
                timeout),
            Clock::time_point::max());
  const auto from_min =
      mshard::heartbeat_deadline(Clock::time_point::min(), timeout);
  EXPECT_EQ(from_min,
            Clock::time_point::min() +
                std::chrono::duration_cast<Clock::duration>(timeout));
  EXPECT_LT(from_min, Clock::now())
      << "a min() last-seen is long expired, never future";
  const auto now = Clock::now();
  EXPECT_EQ(mshard::heartbeat_deadline(now, timeout), now + timeout);
}

TEST(Standby, TakeoverRequiresATcpFleet) {
  // Forked workers die with their router; a standby configured without
  // TCP endpoints has nothing to adopt and must say so before touching
  // the stream.
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  const auto batch = parse("instance a\nprocessors 2\ntask 1.0 1 1.0\nend\n"
                           "solve wdeq a\n");
  const auto outcome = mshard::run_standby(sp[1], registry(), batch, {});
  ::close(sp[0]);
  ::close(sp[1]);
  EXPECT_EQ(outcome.status, mshard::StandbyOutcome::Status::ProtocolError);
  EXPECT_NE(outcome.error.find("tcp_workers"), std::string::npos);
}

TEST(Standby, GarbageJournalRecordRejectsTypedNeverTakesOver) {
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  std::thread primary_side([fd = sp[0]] {
    if (mshard::wire::handshake(fd, "router", std::chrono::seconds(10))) {
      (void)mshard::wire::write_frame(fd, "jmember 1 2");  // alive ∉ {0,1}
    }
    ::close(fd);
  });
  const auto batch = parse("instance a\nprocessors 2\ntask 1.0 1 1.0\nend\n"
                           "solve wdeq a\n");
  mshard::StandbyOptions options;
  options.router.tcp_workers = {{"127.0.0.1", 1}};  // never dialed
  const auto outcome = mshard::run_standby(sp[1], registry(), batch, options);
  primary_side.join();
  ::close(sp[1]);
  EXPECT_EQ(outcome.status, mshard::StandbyOutcome::Status::ProtocolError);
  EXPECT_NE(outcome.error.find("garbage journal record"), std::string::npos);
}

TEST(Standby, TruncatedReplicationFrameRejectsTypedNeverCrashes) {
  // A length prefix promising bytes that never arrive: the frame layer
  // classifies it Truncated, and the standby must fail typed — corrupt
  // replication is not death evidence.
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  std::thread primary_side([fd = sp[0]] {
    if (mshard::wire::handshake(fd, "router", std::chrono::seconds(10))) {
      const unsigned char torn[] = {0x40, 0x00, 0x00, 0x00, 'j', 'd'};
      (void)!::send(fd, torn, sizeof(torn), MSG_NOSIGNAL);
    }
    ::close(fd);  // stream ends mid-frame
  });
  const auto batch = parse("instance a\nprocessors 2\ntask 1.0 1 1.0\nend\n"
                           "solve wdeq a\n");
  mshard::StandbyOptions options;
  options.router.tcp_workers = {{"127.0.0.1", 1}};
  const auto outcome = mshard::run_standby(sp[1], registry(), batch, options);
  primary_side.join();
  ::close(sp[1]);
  EXPECT_EQ(outcome.status, mshard::StandbyOutcome::Status::ProtocolError);
  EXPECT_NE(outcome.error.find("replication stream failed"),
            std::string::npos);
}

TEST(Standby, PrimaryCompletionStandsTheStandbyDown) {
  const auto batch = parse(kStandbyBatch);
  const auto w0 = spawn_worker(registry());
  const auto w1 = spawn_worker(registry());
  const std::vector<mnet::Endpoint> endpoints = {{"127.0.0.1", w0.port},
                                                 {"127.0.0.1", w1.port}};
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  const pid_t primary =
      spawn_primary(sp[0], registry(), batch, endpoints, "", 1);
  mshard::StandbyOptions options;
  options.router.tcp_workers = endpoints;
  options.router.replication = 2;
  options.heartbeat_timeout = std::chrono::milliseconds(5000);
  const auto outcome = mshard::run_standby(sp[1], registry(), batch, options);
  ::close(sp[1]);
  int status = 0;
  ::waitpid(primary, &status, 0);
  reap_worker(w0);
  reap_worker(w1);

  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  ASSERT_EQ(outcome.status, mshard::StandbyOutcome::Status::PrimaryCompleted)
      << outcome.error;
  EXPECT_TRUE(outcome.state.done);
  // Every routed request's final result was journaled (the ghost-instance
  // request resolves router-side without a journal crossing).
  EXPECT_EQ(outcome.state.resolved.size(), batch.requests.size() - 1);
  EXPECT_EQ(outcome.state.in_flight.size(), 0u)
      << "a completed run leaves nothing in flight";
  EXPECT_EQ(outcome.state.alive_members(), 2u);
}

TEST(Standby, TakeoverAtEveryFaultPointKeepsClientOutputByteIdentical) {
  // THE acceptance test: SIGKILL the primary at each protocol boundary —
  // before any placement, mid-forward, before and after journaling results
  // (several depths, including during a warm-cache repeat round) — and
  // diff the standby's client output against single-process serving.
  const auto batch = parse(kStandbyBatch);
  const auto w0 = spawn_worker(registry());
  const auto w1 = spawn_worker(registry());
  const std::vector<mnet::Endpoint> endpoints = {{"127.0.0.1", w0.port},
                                                 {"127.0.0.1", w1.port}};

  // Reference output (threads created here are joined inside run_service,
  // after the worker forks above).
  msvc::ServiceOptions service_options;
  service_options.threads = 2;
  const auto single = msvc::format_results(
      msvc::run_service(batch, registry(), service_options));

  struct Case {
    const char* fault;
    std::size_t repeat;
    int journaled;  ///< exact results_from_journal, -1 = don't pin
  };
  const Case cases[] = {
      {"router.before_place=kill", 1, 0},
      {"router.before_forward=kill", 1, 0},
      {"router.before_forward=kill@3", 1, -1},
      {"router.after_forward=kill@2", 1, -1},
      {"router.before_journal=kill", 1, 0},
      {"router.after_journal=kill@3", 1, 3},
      {"router.before_journal=kill@4", 1, 3},
      // Warm-cache repeat: round 1 completes (worker caches warm), the
      // kill lands while round 2 — the client-visible one — journals.
      {"router.after_journal=kill@2", 2, 2},
  };
  for (const Case& test_case : cases) {
    SCOPED_TRACE(test_case.fault);
    int sp[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
    const pid_t primary = spawn_primary(sp[0], registry(), batch, endpoints,
                                        test_case.fault, test_case.repeat);
    mshard::StandbyOptions options;
    options.router.tcp_workers = endpoints;
    options.router.replication = 2;
    options.heartbeat_timeout = std::chrono::milliseconds(5000);
    const auto outcome =
        mshard::run_standby(sp[1], registry(), batch, options);
    ::close(sp[1]);
    int status = 0;
    ::waitpid(primary, &status, 0);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL)
        << "the fault point must have killed the primary";

    ASSERT_EQ(outcome.status, mshard::StandbyOutcome::Status::TookOver)
        << outcome.error;
    EXPECT_EQ(msvc::format_results(outcome.report), single)
        << "takeover output must be byte-identical to single-process";
    if (test_case.journaled >= 0) {
      EXPECT_EQ(outcome.results_from_journal,
                static_cast<std::uint64_t>(test_case.journaled))
          << "journaled results are emitted verbatim, never re-solved";
    }
    EXPECT_EQ(outcome.transport.handshakes, 2u)
        << "the takeover re-adopted both workers";
  }
  reap_worker(w0);
  reap_worker(w1);
}

TEST(Standby, SlowPrimaryIsNotADeadPrimary) {
  // Satellite edge: a primary pinned by a solve far longer than the
  // heartbeat timeout is STALLED-BUT-ALIVE — its run loop keeps pulsing
  // through the solve, so the standby must stand down, not take over.
  auto sleepy = msvc::SolverRegistry::with_default_solvers();
  sleepy.register_solver(
      "sleepy",
      [](const mc::Instance& inst) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1200));
        return msvc::SolveResult::success(
            "sleepy",
            msvc::SolveOutput{1.0, 1.0, std::vector<double>(inst.size(), 1.0)});
      },
      /*order_invariant=*/false, "slow success", /*cacheable=*/false);

  const auto batch = parse("instance a\nprocessors 2\ntask 1.0 1 1.0\nend\n"
                           "solve sleepy a\n");
  const auto worker = spawn_worker(sleepy);
  const std::vector<mnet::Endpoint> endpoints = {{"127.0.0.1", worker.port}};
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  const pid_t primary = spawn_primary(sp[0], sleepy, batch, endpoints, "", 1);
  mshard::StandbyOptions options;
  options.router.tcp_workers = endpoints;
  options.heartbeat_timeout = std::chrono::milliseconds(400);  // << the solve
  const auto outcome = mshard::run_standby(sp[1], sleepy, batch, options);
  ::close(sp[1]);
  int status = 0;
  ::waitpid(primary, &status, 0);
  reap_worker(worker);

  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(outcome.status, mshard::StandbyOutcome::Status::PrimaryCompleted)
      << "a slow solve must never trip the heartbeat deadline: "
      << outcome.error;
  EXPECT_GT(outcome.state.heartbeats, 3u)
      << "the primary's run loop pulses while the worker solves";
}

TEST(Standby, StalledPrimaryHoldingItsWorkersYieldsSplitBrainNotASecondStream) {
  // The split-brain guard.  The primary is wedged (an inline stall starves
  // its heartbeats) but NOT dead — it still owns the worker sessions.  The
  // standby presumes death, takes over, and must adopt zero workers
  // (one-session-at-a-time exclusivity is the fence): SplitBrain, no
  // second client stream.  The primary then resumes and completes.
  const auto batch = parse("instance a\nprocessors 2\ntask 1.0 1 1.0\nend\n"
                           "solve wdeq a\n");
  const auto worker = spawn_worker(registry());
  const std::vector<mnet::Endpoint> endpoints = {{"127.0.0.1", worker.port}};
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  const pid_t primary = spawn_primary(sp[0], registry(), batch, endpoints,
                                      "router.before_journal=stall:3000", 1);
  mshard::StandbyOptions options;
  options.router.tcp_workers = endpoints;
  options.heartbeat_timeout = std::chrono::milliseconds(300);
  options.router.connect_timeout = std::chrono::milliseconds(500);
  options.router.handshake_timeout = std::chrono::milliseconds(500);
  const auto outcome = mshard::run_standby(sp[1], registry(), batch, options);
  ::close(sp[1]);
  int status = 0;
  ::waitpid(primary, &status, 0);
  reap_worker(worker);

  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "the stalled primary finishes its run";
  EXPECT_EQ(outcome.status, mshard::StandbyOutcome::Status::SplitBrain)
      << "a live primary's workers must be unadoptable";
  EXPECT_NE(outcome.error.find("split-brain"), std::string::npos);
}
