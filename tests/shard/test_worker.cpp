// Worker-side contracts of the fleet protocol, driven over a socketpair
// with run_worker on an in-process thread (no fork, so these tests can use
// custom instrumented solvers): the versioned handshake gate and the
// at-most-once idempotency-token guarantee that makes router retries safe.

#include "malsched/shard/worker.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "malsched/core/instance.hpp"
#include "malsched/shard/wire.hpp"

namespace mc = malsched::core;
namespace msvc = malsched::service;
namespace mshard = malsched::shard;
namespace wire = malsched::shard::wire;

namespace {

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    for (const int fd : fds) {
      if (fd >= 0) {
        ::close(fd);
      }
    }
  }
  void close_end(int index) {
    ::close(fds[index]);
    fds[index] = -1;
  }
};

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

mc::Instance small_instance() {
  return mc::Instance(2.0, {{1.0, 1.0, 1.0}, {2.0, 2.0, 0.5}});
}

// Sends a solve frame and returns true on success.
bool send_solve(int fd, std::uint64_t id, std::uint64_t token,
                const std::string& solver, const std::string& name) {
  wire::SolveMessage message;
  message.id = id;
  message.token = token;
  message.solver = solver;
  message.instance_name = name;
  return wire::write_frame(fd, wire::encode_solve(message));
}

// Reads and decodes one result frame.
wire::ResultMessage read_result(int fd) {
  std::string payload;
  EXPECT_TRUE(wire::read_frame(fd, &payload));
  const auto message = wire::decode_result(payload);
  EXPECT_TRUE(message.has_value()) << payload;
  return message.value_or(wire::ResultMessage{});
}

}  // namespace

TEST(Worker, GarbageGreetingIsRejectedWithExitCode2) {
  // A port scanner (or an HTTP client) that reaches a worker's fd must be
  // turned away by the handshake before a Scheduler is even constructed.
  SocketPair channel;
  int rc = -1;
  std::thread worker([&] {
    const auto registry = msvc::SolverRegistry::with_default_solvers();
    mshard::WorkerOptions options;
    options.threads = 1;
    rc = mshard::run_worker(channel.fds[1], registry, options);
  });
  ASSERT_TRUE(wire::write_frame(channel.fds[0], "GET / HTTP/1.1"));
  // Drain the worker's own hello so its write cannot block, then close.
  std::string ignored;
  ASSERT_TRUE(wire::read_frame(channel.fds[0], &ignored));
  worker.join();
  EXPECT_EQ(rc, 2);
}

TEST(Worker, CompletedTokenIsReplayedVerbatimNotReSolved) {
  // The router's retry-on-replica failover is only safe because a worker
  // solves each idempotency token at most once.  An instrumented
  // non-cacheable solver counts executions; the duplicate's result must be
  // bit-identical — latency included, which pins replay-from-memo (a
  // re-solve could not reproduce the wall-clock latency bit for bit).
  std::atomic<int> solves{0};
  auto registry = msvc::SolverRegistry::with_default_solvers();
  registry.register_solver(
      "counting",
      [&solves](const mc::Instance& inst) {
        solves.fetch_add(1, std::memory_order_relaxed);
        return msvc::SolveResult::success(
            "counting",
            msvc::SolveOutput{1.5, 2.0,
                              std::vector<double>(inst.size(), 1.0)});
      },
      /*order_invariant=*/false, "execution counter", /*cacheable=*/false);

  SocketPair channel;
  int rc = -1;
  std::thread worker([&] {
    mshard::WorkerOptions options;
    options.threads = 1;
    rc = mshard::run_worker(channel.fds[1], registry, options);
  });

  const int fd = channel.fds[0];
  ASSERT_TRUE(wire::handshake(fd, "router", std::chrono::seconds(10)));
  ASSERT_TRUE(
      wire::write_frame(fd, wire::encode_instance("a", small_instance())));

  ASSERT_TRUE(send_solve(fd, /*id=*/1, /*token=*/7, "counting", "a"));
  const auto original = read_result(fd);
  EXPECT_EQ(original.id, 1u);
  EXPECT_EQ(original.token, 7u);
  ASSERT_TRUE(original.result.ok());

  // Same token, new wire id — exactly what a router retry looks like.
  ASSERT_TRUE(send_solve(fd, /*id=*/2, /*token=*/7, "counting", "a"));
  const auto replay = read_result(fd);
  EXPECT_EQ(replay.id, 2u);
  EXPECT_EQ(replay.token, 7u);
  ASSERT_TRUE(replay.result.ok());
  EXPECT_EQ(solves.load(), 1) << "duplicate token must not re-solve";
  EXPECT_TRUE(bits_equal(replay.result.latency_seconds,
                         original.result.latency_seconds))
      << "a replay is observably the original solve, latency included";
  EXPECT_TRUE(
      bits_equal(replay.result.objective(), original.result.objective()));
  EXPECT_EQ(replay.result.cache_hit, original.result.cache_hit);

  // Token 0 opts out of idempotency: the same request solved twice.
  ASSERT_TRUE(send_solve(fd, /*id=*/3, /*token=*/0, "counting", "a"));
  (void)read_result(fd);
  ASSERT_TRUE(send_solve(fd, /*id=*/4, /*token=*/0, "counting", "a"));
  (void)read_result(fd);
  EXPECT_EQ(solves.load(), 3);

  channel.close_end(0);
  worker.join();
  EXPECT_EQ(rc, 0);
}

TEST(Worker, InFlightTokenParksTheDuplicateAndRepliesToBothIds) {
  // The race the memo cannot cover: the duplicate arrives while the
  // original is still solving.  It must park (not re-solve) and receive
  // the original's result under its own wire id once that finishes.
  std::atomic<bool> released{false};
  std::atomic<int> solves{0};
  auto registry = msvc::SolverRegistry::with_default_solvers();
  registry.register_solver(
      "latch",
      [&](const mc::Instance& inst) {
        solves.fetch_add(1, std::memory_order_relaxed);
        while (!released.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return msvc::SolveResult::success(
            "latch", msvc::SolveOutput{1.0, 1.0,
                                       std::vector<double>(inst.size(), 1.0)});
      },
      /*order_invariant=*/false, "latch solver", /*cacheable=*/false);

  SocketPair channel;
  int rc = -1;
  std::thread worker([&] {
    mshard::WorkerOptions options;
    options.threads = 1;
    rc = mshard::run_worker(channel.fds[1], registry, options);
  });

  const int fd = channel.fds[0];
  ASSERT_TRUE(wire::handshake(fd, "router", std::chrono::seconds(10)));
  ASSERT_TRUE(
      wire::write_frame(fd, wire::encode_instance("a", small_instance())));

  ASSERT_TRUE(send_solve(fd, /*id=*/10, /*token=*/5, "latch", "a"));
  while (solves.load(std::memory_order_relaxed) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The original is provably mid-solve; this duplicate must park.
  ASSERT_TRUE(send_solve(fd, /*id=*/11, /*token=*/5, "latch", "a"));
  released.store(true, std::memory_order_release);

  const auto first = read_result(fd);
  const auto second = read_result(fd);
  EXPECT_EQ(first.id, 10u) << "original resolves first";
  EXPECT_EQ(second.id, 11u) << "parked duplicate replays right behind it";
  EXPECT_EQ(first.token, 5u);
  EXPECT_EQ(second.token, 5u);
  ASSERT_TRUE(first.result.ok());
  ASSERT_TRUE(second.result.ok());
  EXPECT_EQ(solves.load(), 1);
  EXPECT_TRUE(bits_equal(second.result.latency_seconds,
                         first.result.latency_seconds));

  channel.close_end(0);
  worker.join();
  EXPECT_EQ(rc, 0);
}

TEST(Worker, DrainCountsSolvesOnceDespiteReplays) {
  // A memo replay answers from the reader thread without touching the
  // delivery pipeline, so drain's acknowledgement still counts each
  // request solved effectively once.
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  SocketPair channel;
  int rc = -1;
  std::thread worker([&] {
    mshard::WorkerOptions options;
    options.threads = 1;
    rc = mshard::run_worker(channel.fds[1], registry, options);
  });

  const int fd = channel.fds[0];
  ASSERT_TRUE(wire::handshake(fd, "router", std::chrono::seconds(10)));
  ASSERT_TRUE(
      wire::write_frame(fd, wire::encode_instance("a", small_instance())));
  ASSERT_TRUE(send_solve(fd, /*id=*/1, /*token=*/3, "wdeq", "a"));
  ASSERT_TRUE(read_result(fd).result.ok());
  ASSERT_TRUE(send_solve(fd, /*id=*/2, /*token=*/3, "wdeq", "a"));
  ASSERT_TRUE(read_result(fd).result.ok());

  ASSERT_TRUE(wire::write_frame(fd, "drain"));
  std::string payload;
  ASSERT_TRUE(wire::read_frame(fd, &payload));
  EXPECT_EQ(payload, "drained 1") << "the replay is not a second delivery";

  channel.close_end(0);
  worker.join();
  EXPECT_EQ(rc, 0);
}
