// End-to-end tests of multi-process sharded serving: a ShardRouter forks
// real worker processes and must (a) produce bit-identical results to the
// single-process service, (b) survive worker death without hanging, and
// (c) rebalance/restart around the consistent-hash ring.
//
// These tests fork.  GoogleTest's main thread is the only thread alive when
// a router is constructed (the routers spawn before any in-process
// Scheduler), which is the documented spawning contract.

#include "malsched/shard/router.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "malsched/core/instance.hpp"
#include "malsched/net/socket.hpp"
#include "malsched/service/scheduler.hpp"
#include "malsched/service/service.hpp"
#include "malsched/shard/hash_ring.hpp"
#include "malsched/shard/worker.hpp"
#include "malsched/support/faultpoint.hpp"

namespace mc = malsched::core;
namespace mnet = malsched::net;
namespace msvc = malsched::service;
namespace mshard = malsched::shard;
namespace msup = malsched::support;

namespace {

const msvc::SolverRegistry& registry() {
  static const auto instance = msvc::SolverRegistry::with_default_solvers();
  return instance;
}

msvc::BatchSpec parse(const std::string& text) {
  std::string error;
  const auto batch = msvc::parse_batch(text, &error);
  EXPECT_TRUE(batch.has_value()) << error;
  return *batch;
}

// A mixed batch covering the solver zoo, scaled duplicates (cache traffic),
// and the typed error paths that must round-trip the wire byte-identically:
// unknown solver, SizeGuard, solver rejection, unknown instance.
const char* kParityBatch = R"(
instance small
processors 4
task 2.0 2 1.0
task 1.5 1 0.5
task 0.75 3 2.0
end
instance small-scaled          # power-of-two scaling: same canonical key
processors 4
task 4.0 2 4.0
task 3.0 1 2.0
task 1.5 3 8.0
end
instance tiny
processors 2
task 1.0 1 1.0
task 0.5 2 3.0
end
generate mid uniform 24 8 42
generate heavy heavy-tail-volumes 40 16 7
generate toolarge uniform 19 4 3
instance badweights
processors 2
task 1.0 1 0.0
end
solve wdeq small
solve deq small
solve wrr mid
solve smith-greedy mid
solve greedy-heuristic heavy
solve water-fill-smith mid
solve order-lp-smith heavy
solve optimal tiny
weight 3
solve wdeq small-scaled
solve wdeq heavy
weight 1
solve no-such-solver small
solve no"such small
solve optimal toolarge
solve wdeq badweights
solve wdeq ghost
solve wdeq mid
)";

}  // namespace

TEST(Router, ShardedResultsAreBitIdenticalToSingleProcess) {
  const auto batch = parse(kParityBatch);

  mshard::RouterOptions router_options;
  router_options.shards = 2;
  router_options.worker.threads = 2;
  std::string sharded;
  msvc::CacheStats sharded_cache;
  {
    mshard::ShardRouter router(registry(), router_options);
    ASSERT_EQ(router.alive_count(), 2u);
    mshard::RouterRunOptions run_options;
    run_options.repeat = 2;  // round 2 exercises the warm worker caches
    const auto report = router.run(batch, run_options);
    sharded = msvc::format_results(report);
    sharded_cache = report.cache;
    // The ghost-instance request resolves at routing time and is excluded
    // from the solve count, exactly as run_service excludes it.
    EXPECT_EQ(report.total_solves, 2 * (batch.requests.size() - 1));
  }

  msvc::ServiceOptions service_options;
  service_options.threads = 2;
  service_options.repeat = 2;
  const auto single = msvc::format_results(
      msvc::run_service(batch, registry(), service_options));

  EXPECT_EQ(sharded, single)
      << "sharded serving must be indistinguishable from single-process "
         "serving, byte for byte";

  // Round 2 re-solved nothing: every repeat hit a worker cache, and the
  // scaled duplicate shares its base instance's canonical entry.
  EXPECT_GE(sharded_cache.hits, batch.requests.size() - 4)
      << "repeat round should be served from the worker caches";
  // Two workers, each its own cache: aggregate capacity is the sum.
  EXPECT_EQ(sharded_cache.capacity, 2 * (std::size_t{1} << 20));
}

TEST(Router, EquivalentInstancesRouteToTheSameWorker) {
  // small and small-scaled differ by power-of-two volume/weight scaling,
  // so they share a canonical key and therefore a worker (and its cache).
  const auto batch = parse(kParityBatch);
  const auto key_of = [&](const std::string& name) {
    return msvc::intern(batch.instances.at(name)).key();
  };
  ASSERT_EQ(key_of("small"), key_of("small-scaled"));

  mshard::RouterOptions options;
  options.shards = 4;
  mshard::ShardRouter router(registry(), options);
  EXPECT_EQ(router.owner_of(key_of("small")),
            router.owner_of(key_of("small-scaled")));
}

TEST(Router, WorkerKilledMidSolveResolvesSolverFailureNotAHang) {
  // One request whose exact solve runs ~a minute; the owning worker is
  // SIGKILLed out-of-band ~150 ms in.  The router must detect the death,
  // resolve the request with a typed SolverFailure, and return promptly.
  const auto batch = parse(
      "generate hard equal-weights 12 4 1\n"
      "solve optimal hard\n");
  const std::uint64_t key = msvc::intern(batch.instances.at("hard")).key();

  mshard::RouterOptions options;
  options.shards = 2;
  mshard::ShardRouter router(registry(), options);
  const std::uint32_t owner = router.owner_of(key);
  const pid_t victim = router.pid_of(owner);
  ASSERT_GT(victim, 0);

  std::thread killer([victim] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    ::kill(victim, SIGKILL);
  });
  const auto start = std::chrono::steady_clock::now();
  const auto report = router.run(batch);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  killer.join();

  ASSERT_EQ(report.results.size(), 1u);
  ASSERT_FALSE(report.results[0].ok());
  EXPECT_EQ(report.results[0].error().code, msvc::ErrorCode::SolverFailure);
  EXPECT_NE(report.results[0].error().detail.find("died"), std::string::npos);
  EXPECT_LT(seconds, 30.0) << "worker death must fail fast, not hang";
  EXPECT_FALSE(router.alive(owner));
  EXPECT_EQ(router.alive_count(), 1u);
  EXPECT_FALSE(router.ring().contains(owner)) << "ring must rebalance";
}

TEST(Router, ReplicationFailsOverQueuedRequestsToTheReplica) {
  // With replication = 2 both workers hold every instance; killing the
  // primary before the run leaves the replica to serve everything.
  const auto batch = parse(
      "instance a\nprocessors 4\ntask 2.0 2 1.0\ntask 1.0 1 1.0\nend\n"
      "solve wdeq a\nsolve deq a\nsolve order-lp-smith a\n");
  const std::uint64_t key = msvc::intern(batch.instances.at("a")).key();

  mshard::RouterOptions options;
  options.shards = 2;
  options.replication = 2;
  mshard::ShardRouter router(registry(), options);
  const std::uint32_t primary = router.owner_of(key);
  router.kill(primary);
  EXPECT_EQ(router.alive_count(), 1u);

  const auto report = router.run(batch);
  for (const auto& result : report.results) {
    ASSERT_TRUE(result.ok()) << result.error().to_string();
  }
}

TEST(Router, KillBeforeRunRebalancesOwnershipToTheSurvivor) {
  // A worker killed *between* runs leaves the ring before placement, so the
  // consistent-hash arc reassigns to the survivor and the request succeeds
  // — mid-run death (the race the ring cannot absorb) is the case that
  // fails typed, covered by WorkerKilledMidSolveResolvesSolverFailure.
  const auto batch = parse(
      "instance a\nprocessors 4\ntask 2.0 2 1.0\nend\nsolve wdeq a\n");
  const std::uint64_t key = msvc::intern(batch.instances.at("a")).key();

  mshard::RouterOptions options;
  options.shards = 2;
  options.replication = 1;
  mshard::ShardRouter router(registry(), options);
  const std::uint32_t original_owner = router.owner_of(key);
  router.kill(original_owner);

  const auto report = router.run(batch);
  ASSERT_EQ(report.results.size(), 1u);
  ASSERT_TRUE(report.results[0].ok()) << report.results[0].error().to_string();
  EXPECT_NE(router.owner_of(key), original_owner);
}

TEST(Router, WholeFleetDownFailsEveryRequestTyped) {
  const auto batch = parse(
      "instance a\nprocessors 4\ntask 2.0 2 1.0\nend\nsolve wdeq a\n");
  mshard::ShardRouter router(registry(), mshard::RouterOptions{});
  router.kill(0);
  router.kill(1);
  const auto report = router.run(batch);
  ASSERT_EQ(report.results.size(), 1u);
  ASSERT_FALSE(report.results[0].ok());
  EXPECT_EQ(report.results[0].error().code, msvc::ErrorCode::SolverFailure);
}

TEST(Router, PingHealthChecksAndDrainAcknowledge) {
  mshard::ShardRouter router(registry(), mshard::RouterOptions{});
  EXPECT_TRUE(router.ping(0));
  EXPECT_TRUE(router.ping(1));
  EXPECT_TRUE(router.drain(0));

  router.kill(1);
  EXPECT_FALSE(router.ping(1));
  EXPECT_FALSE(router.drain(1));
  EXPECT_FALSE(router.ping(99));  // out of range
}

TEST(Router, RestartRespawnsAndReplantsTheRing) {
  const auto batch = parse(
      "generate work uniform 16 4 5\n"
      "solve wdeq work\nsolve order-lp-smith work\n");

  mshard::RouterOptions options;
  options.shards = 2;
  mshard::ShardRouter router(registry(), options);

  router.kill(0);
  EXPECT_EQ(router.alive_count(), 1u);
  EXPECT_FALSE(router.ring().contains(0));

  ASSERT_TRUE(router.restart(0));
  EXPECT_EQ(router.alive_count(), 2u);
  EXPECT_TRUE(router.ring().contains(0));
  EXPECT_TRUE(router.ping(0));

  // Restarting an alive worker drains it first and also succeeds.
  ASSERT_TRUE(router.restart(1));
  EXPECT_EQ(router.alive_count(), 2u);

  const auto report = router.run(batch);
  for (const auto& result : report.results) {
    ASSERT_TRUE(result.ok()) << result.error().to_string();
  }
}

TEST(Router, DeadlineExceededCrossesTheProcessBoundaryTyped) {
  // `deadline 0` expires the moment the worker pops it: the typed code must
  // survive the wire (the detail text is wall-clock flavored, so this is
  // not part of the byte-parity batch).
  const auto batch = parse(
      "instance a\nprocessors 4\ntask 2.0 2 1.0\nend\n"
      "deadline 0\nsolve wdeq a\n");
  mshard::ShardRouter router(registry(), mshard::RouterOptions{});
  const auto report = router.run(batch);
  ASSERT_EQ(report.results.size(), 1u);
  ASSERT_FALSE(report.results[0].ok());
  EXPECT_EQ(report.results[0].error().code,
            msvc::ErrorCode::DeadlineExceeded);
}

TEST(Router, SingleShardDegeneratesToOneWorkerService) {
  const auto batch = parse(
      "generate work bandwidth-like 12 8 9\n"
      "solve wdeq work\nsolve greedy-heuristic work\n");
  mshard::RouterOptions options;
  options.shards = 1;
  mshard::ShardRouter router(registry(), options);
  const auto sharded = msvc::format_results(router.run(batch));

  msvc::ServiceOptions service_options;
  service_options.threads = 1;
  const auto single = msvc::format_results(
      msvc::run_service(batch, registry(), service_options));
  EXPECT_EQ(sharded, single);
}

TEST(Router, PerWorkerCacheStatsSumToAggregateAndExposeTtlExpiry) {
  const auto batch = parse(kParityBatch);
  mshard::RouterOptions options;
  options.shards = 2;
  options.worker.threads = 2;
  options.worker.cache_ttl_seconds = 0.2;
  mshard::ShardRouter router(registry(), options);
  ASSERT_EQ(router.alive_count(), 2u);

  const auto report = router.run(batch);
  // The per-worker view decomposes the run's aggregate exactly.
  msvc::CacheStats sum;
  for (std::size_t w = 0; w < router.shard_count(); ++w) {
    const auto stats = router.worker_cache_stats(w);
    ASSERT_TRUE(stats.has_value()) << "worker " << w;
    sum.hits += stats->hits;
    sum.misses += stats->misses;
    sum.evictions += stats->evictions;
    sum.expired += stats->expired;
    sum.admitted += stats->admitted;
    sum.rejected += stats->rejected;
    sum.entries += stats->entries;
    sum.weight += stats->weight;
    sum.capacity += stats->capacity;
  }
  EXPECT_EQ(sum.hits, report.cache.hits);
  EXPECT_EQ(sum.misses, report.cache.misses);
  EXPECT_EQ(sum.expired, report.cache.expired);
  EXPECT_EQ(sum.admitted, report.cache.admitted);
  EXPECT_EQ(sum.rejected, report.cache.rejected);
  EXPECT_EQ(sum.entries, report.cache.entries);
  EXPECT_EQ(sum.weight, report.cache.weight);
  EXPECT_EQ(sum.capacity, report.cache.capacity);
  EXPECT_EQ(sum.expired, 0u);  // nothing aged out yet
  EXPECT_GT(sum.entries, 0u);

  // Let the TTL lapse; the re-run's lookups age the old entries out, and
  // the per-worker counters make the expirations attributable to a shard.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  (void)router.run(batch);
  std::uint64_t expired = 0;
  for (std::size_t w = 0; w < router.shard_count(); ++w) {
    const auto stats = router.worker_cache_stats(w);
    ASSERT_TRUE(stats.has_value()) << "worker " << w;
    expired += stats->expired;
  }
  EXPECT_GT(expired, 0u);

  // Out-of-range and dead workers answer nullopt, not a hang.
  EXPECT_FALSE(router.worker_cache_stats(99).has_value());
  router.kill(0);
  EXPECT_FALSE(router.worker_cache_stats(0).has_value());
  EXPECT_TRUE(router.worker_cache_stats(1).has_value());
}

TEST(Router, TransportStatsCountHandshakesAndDeaths) {
  mshard::RouterOptions options;
  options.shards = 2;
  mshard::ShardRouter router(registry(), options);
  const auto& stats = router.transport_stats();
  EXPECT_EQ(stats.handshakes, 2u) << "one hello exchange per forked worker";
  EXPECT_EQ(stats.handshake_failures, 0u);
  EXPECT_EQ(stats.dead_peers, 0u);

  router.kill(0);
  EXPECT_EQ(router.transport_stats().dead_peers, 1u);
  ASSERT_TRUE(router.restart(0));
  EXPECT_EQ(router.transport_stats().handshakes, 3u)
      << "a restart re-runs the versioned handshake";
}

TEST(Router, MidSolveDeathRetriesOnThePrimedReplicaUnderTheSameToken) {
  // The failover upgrade replication buys: the primary is SIGKILLed while
  // a solve is *in flight* (already sent, not yet answered).  The dead
  // worker may or may not have executed it — the router must replay it on
  // the replica under the same idempotency token and still succeed, where
  // replication=1 could only fail typed (WorkerKilledMidSolve... above).
  auto sleepy = msvc::SolverRegistry::with_default_solvers();
  sleepy.register_solver(
      "sleepy",
      [](const mc::Instance& inst) {
        std::this_thread::sleep_for(std::chrono::milliseconds(700));
        return msvc::SolveResult::success(
            "sleepy", msvc::SolveOutput{1.0, 1.0,
                                        std::vector<double>(inst.size(), 1.0)});
      },
      /*order_invariant=*/false, "slow success", /*cacheable=*/false);

  const auto batch = parse(
      "instance a\nprocessors 4\ntask 2.0 2 1.0\ntask 1.0 1 1.0\nend\n"
      "solve sleepy a\n");
  const std::uint64_t key = msvc::intern(batch.instances.at("a")).key();

  mshard::RouterOptions options;
  options.shards = 2;
  options.replication = 2;
  mshard::ShardRouter router(sleepy, options);
  const std::uint32_t primary = router.owner_of(key);
  const pid_t victim = router.pid_of(primary);
  ASSERT_GT(victim, 0);

  std::thread killer([victim] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ::kill(victim, SIGKILL);
  });
  const auto report = router.run(batch);
  killer.join();

  ASSERT_EQ(report.results.size(), 1u);
  ASSERT_TRUE(report.results[0].ok())
      << "the retry on the primed replica must succeed: "
      << report.results[0].error().to_string();
  EXPECT_FALSE(router.alive(primary));
  const auto& stats = router.transport_stats();
  EXPECT_EQ(stats.dead_peers, 1u);
  EXPECT_GE(stats.retries_replayed, 1u)
      << "the in-flight request must have been replayed, not failed";
}

TEST(Router, TcpWorkersMatchSingleProcessByteForByte) {
  // The multi-host data path end to end: two in-process "remote" workers
  // behind real TCP listeners on ephemeral loopback ports, dialed by the
  // router exactly as `--workers host:port,...` would.  Output must be
  // byte-identical to single-process serving — same contract the fork
  // transport honors.  No fork happens here, so the worker threads are
  // safe; they are joined before the test returns.
  struct TcpWorker {
    int listen_fd = -1;
    std::uint16_t port = 0;
    std::thread thread;
    int rc = -1;
  };
  std::vector<TcpWorker> fleet(2);
  for (auto& worker : fleet) {
    std::string error;
    worker.listen_fd =
        mnet::tcp_listen({"127.0.0.1", 0}, &error, &worker.port);
    ASSERT_GE(worker.listen_fd, 0) << error;
    worker.thread = std::thread([&worker] {
      std::string accept_error;
      const int fd = mnet::tcp_accept(
          worker.listen_fd, std::chrono::seconds(30), &accept_error);
      if (fd < 0) {
        return;  // rc stays -1 and the assertions below flag it
      }
      mshard::WorkerOptions options;
      options.threads = 2;
      worker.rc = mshard::run_worker(fd, registry(), options);
      ::close(fd);
    });
  }

  const auto batch = parse(kParityBatch);
  std::string sharded;
  {
    mshard::RouterOptions options;
    options.tcp_workers = {{"127.0.0.1", fleet[0].port},
                           {"127.0.0.1", fleet[1].port}};
    options.worker.threads = 2;
    mshard::ShardRouter router(registry(), options);
    ASSERT_EQ(router.shard_count(), 2u);
    ASSERT_EQ(router.alive_count(), 2u);
    EXPECT_EQ(router.transport_stats().handshakes, 2u);
    EXPECT_EQ(router.pid_of(0), -1) << "TCP workers are not our processes";
    EXPECT_TRUE(router.ping(0));
    sharded = msvc::format_results(router.run(batch));
  }  // router teardown closes the connections: EOF = clean worker exit

  for (auto& worker : fleet) {
    worker.thread.join();
    ::close(worker.listen_fd);
    EXPECT_EQ(worker.rc, 0) << "TCP worker must exit cleanly on EOF";
  }

  msvc::ServiceOptions service_options;
  service_options.threads = 2;
  const auto single = msvc::format_results(
      msvc::run_service(batch, registry(), service_options));
  EXPECT_EQ(sharded, single)
      << "the TCP fleet must be indistinguishable from single-process "
         "serving, byte for byte";
}

// --- data plane: shared-memory rings vs the socketpair fallback ---

TEST(Router, DataPlaneChoiceCannotChangeASingleOutputByte) {
  // The tentpole contract: shm rings, socketpair frames and single-process
  // serving are indistinguishable byte for byte, hostile error paths
  // included.  Runs the full parity batch under both forced planes.
  const auto batch = parse(kParityBatch);
  const auto run_with = [&](mshard::DataPlaneMode mode, const char* expect) {
    mshard::RouterOptions options;
    options.shards = 2;
    options.worker.threads = 2;
    options.data_plane = mode;
    mshard::ShardRouter router(registry(), options);
    EXPECT_EQ(router.transport_stats().shm_fallbacks, 0u);
    const std::string output = msvc::format_results(router.run(batch));
    for (std::size_t w = 0; w < router.shard_count(); ++w) {
      const auto stats = router.data_plane_stats(w);
      if (!stats.has_value()) {
        ADD_FAILURE() << "worker " << w << " has no data plane";
        continue;
      }
      EXPECT_STREQ(stats->plane, expect) << "worker " << w;
      EXPECT_GT(stats->frames_out, 0u) << "worker " << w;
      EXPECT_GT(stats->frames_in, 0u) << "worker " << w;
      EXPECT_GT(stats->bytes_in, 0u) << "worker " << w;
      // Between runs every ring has been drained.
      EXPECT_EQ(stats->request_depth, 0u);
      EXPECT_EQ(stats->response_depth, 0u);
    }
    return output;
  };

  const std::string over_shm = run_with(mshard::DataPlaneMode::Shm, "shm");
  const std::string over_pipes =
      run_with(mshard::DataPlaneMode::Socketpair, "socketpair");

  msvc::ServiceOptions service_options;
  service_options.threads = 2;
  const auto single = msvc::format_results(
      msvc::run_service(batch, registry(), service_options));
  EXPECT_EQ(over_shm, single)
      << "shm data plane must be indistinguishable from single-process";
  EXPECT_EQ(over_pipes, single)
      << "socketpair data plane must be indistinguishable from "
         "single-process";
}

TEST(Router, ShmSetupFailureFallsBackToSocketpairCountedAndServing) {
  // MALSCHED_SHM_DISABLE makes every ShmRegion::create fail, which is
  // exactly what a locked-down mmap would do: the router must degrade to
  // socketpair per worker, count it, and keep the byte-parity contract.
  ::setenv(mnet::kShmDisableEnv, "1", 1);
  const auto batch = parse(
      "instance a\nprocessors 4\ntask 2.0 2 1.0\ntask 1.0 1 1.0\nend\n"
      "solve wdeq a\nsolve deq a\n");
  std::string fallback_output;
  {
    mshard::RouterOptions options;
    options.shards = 2;
    options.data_plane = mshard::DataPlaneMode::Shm;  // ask, get denied
    mshard::ShardRouter router(registry(), options);
    EXPECT_EQ(router.transport_stats().shm_fallbacks, 2u)
        << "every worker should have fallen back";
    for (std::size_t w = 0; w < router.shard_count(); ++w) {
      const auto stats = router.data_plane_stats(w);
      ASSERT_TRUE(stats.has_value());
      EXPECT_STREQ(stats->plane, "socketpair");
    }
    fallback_output = msvc::format_results(router.run(batch));
  }
  ::unsetenv(mnet::kShmDisableEnv);

  msvc::ServiceOptions service_options;
  service_options.threads = 1;
  const auto single = msvc::format_results(
      msvc::run_service(batch, registry(), service_options));
  EXPECT_EQ(fallback_output, single);
}

TEST(Router, KillAndRestartUnderShmReplantsFreshRings) {
  // A respawned worker must come back on a *fresh* shm channel — stale
  // head/tail or a closed flag from the dead incarnation must not leak in.
  const auto batch = parse(
      "generate work uniform 16 4 5\n"
      "solve wdeq work\nsolve order-lp-smith work\n");
  mshard::RouterOptions options;
  options.shards = 2;
  options.data_plane = mshard::DataPlaneMode::Shm;
  mshard::ShardRouter router(registry(), options);

  const auto first = msvc::format_results(router.run(batch));
  router.kill(0);
  EXPECT_FALSE(router.data_plane_stats(0).has_value())
      << "a dead worker has no plane";
  ASSERT_TRUE(router.restart(0));
  EXPECT_TRUE(router.ping(0));
  const auto stats = router.data_plane_stats(0);
  ASSERT_TRUE(stats.has_value());
  EXPECT_STREQ(stats->plane, "shm");
  EXPECT_EQ(stats->request_depth, 0u) << "restart must reset the rings";
  EXPECT_EQ(stats->response_depth, 0u);

  const auto second = msvc::format_results(router.run(batch));
  EXPECT_EQ(second, first)
      << "a restarted shm worker must serve identically";
}

TEST(Router, MidSolveDeathUnderShmFailsTypedNotHung) {
  // WorkerKilledMidSolve... again, but with the data plane forced to shm:
  // the death evidence is ring silence plus a dead pid (the torn-write
  // case), which must surface as the same typed SolverFailure.
  const auto batch = parse(
      "generate hard equal-weights 12 4 1\n"
      "solve optimal hard\n");
  const std::uint64_t key = msvc::intern(batch.instances.at("hard")).key();

  mshard::RouterOptions options;
  options.shards = 2;
  options.data_plane = mshard::DataPlaneMode::Shm;
  mshard::ShardRouter router(registry(), options);
  const std::uint32_t owner = router.owner_of(key);
  const pid_t victim = router.pid_of(owner);
  ASSERT_GT(victim, 0);

  std::thread killer([victim] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    ::kill(victim, SIGKILL);
  });
  const auto start = std::chrono::steady_clock::now();
  const auto report = router.run(batch);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  killer.join();

  ASSERT_EQ(report.results.size(), 1u);
  ASSERT_FALSE(report.results[0].ok());
  EXPECT_EQ(report.results[0].error().code, msvc::ErrorCode::SolverFailure);
  EXPECT_LT(seconds, 30.0) << "shm worker death must fail fast, not hang";
  EXPECT_EQ(router.transport_stats().dead_peers, 1u);
}

TEST(Router, FramesLargerThanTheRingDivertOverTheControlFd) {
  // A ring sized at the 4 KiB floor cannot hold the parity batch's big
  // generated instances: those frames divert over the control fd while
  // small ones ride the ring, and the outputs still match byte for byte.
  const auto batch = parse(kParityBatch);
  mshard::RouterOptions options;
  options.shards = 2;
  options.worker.threads = 2;
  options.data_plane = mshard::DataPlaneMode::Shm;
  options.shm_ring_bytes = 1;  // rounds up to the 4 KiB floor
  mshard::ShardRouter router(registry(), options);
  const auto sharded = msvc::format_results(router.run(batch));

  msvc::ServiceOptions service_options;
  service_options.threads = 2;
  const auto single = msvc::format_results(
      msvc::run_service(batch, registry(), service_options));
  EXPECT_EQ(sharded, single)
      << "oversize-frame diversion must preserve byte parity";
}

TEST(Router, FleetCacheSummaryDividesByAliveWorkersNotConfigured) {
  // Regression for the --stats fleet mean: a dead worker contributes no
  // cache sample, so the alive count — the denominator the CLI divides
  // by — must track workers that actually answered, never the configured
  // fleet size.
  const auto batch = parse(
      "instance small\nprocessors 4\ntask 2.0 2 1.0\ntask 1.0 1 1.0\nend\n"
      "solve wdeq small\nsolve wdeq small\n");
  mshard::RouterOptions options;
  options.shards = 2;
  mshard::ShardRouter router(registry(), options);
  (void)router.run(batch);

  const auto healthy = router.fleet_cache_summary();
  EXPECT_EQ(healthy.configured, 2u);
  EXPECT_EQ(healthy.alive, 2u);
  EXPECT_GE(healthy.total.hits + healthy.total.misses, 1u)
      << "the repeated request must have touched a worker cache";

  router.kill(0);
  const auto degraded = router.fleet_cache_summary();
  EXPECT_EQ(degraded.configured, 2u);
  EXPECT_EQ(degraded.alive, 1u)
      << "a dead worker must drop out of the mean's denominator";
}

TEST(Router, DuplicateForwardDeliveryIsAbsorbedByTheDedup) {
  // The fault harness doubles the first forwarded solve frame: the worker
  // sees the same wire id twice, parks the alias, and answers twice; the
  // router must drop the echo and keep byte parity.
  const auto batch = parse(kParityBatch);
  msup::fault_arm("router.before_forward=dup");
  mshard::RouterOptions options;
  options.shards = 2;
  options.worker.threads = 2;
  mshard::ShardRouter router(registry(), options);
  const auto sharded = msvc::format_results(router.run(batch));
  msup::fault_disarm();

  msvc::ServiceOptions service_options;
  service_options.threads = 2;
  const auto single = msvc::format_results(
      msvc::run_service(batch, registry(), service_options));
  EXPECT_EQ(sharded, single);
  EXPECT_GE(router.transport_stats().duplicates_dropped, 1u)
      << "the duplicated forward must surface in the dedup counter";
}

TEST(Router, DuplicateWorkerReplyIsAbsorbedByTheDedup) {
  // Same property from the other side of the wire: the spec is armed
  // before the fork so the *workers* inherit it and every worker doubles
  // its first reply.
  const auto batch = parse(kParityBatch);
  msup::fault_arm("worker.before_reply=dup");
  mshard::RouterOptions options;
  options.shards = 2;
  options.worker.threads = 2;
  mshard::ShardRouter router(registry(), options);
  msup::fault_disarm();  // parent side: the router's own points stay cold
  const auto sharded = msvc::format_results(router.run(batch));

  msvc::ServiceOptions service_options;
  service_options.threads = 2;
  const auto single = msvc::format_results(
      msvc::run_service(batch, registry(), service_options));
  EXPECT_EQ(sharded, single);
  EXPECT_GE(router.transport_stats().duplicates_dropped, 1u)
      << "each worker's doubled reply must be dropped, not double-resolved";
}
