#include "malsched/flow/max_flow.hpp"

#include <gtest/gtest.h>

#include "malsched/support/rng.hpp"

namespace mf = malsched::flow;

TEST(MaxFlow, SingleEdge) {
  mf::MaxFlow net(2);
  const auto e = net.add_edge(0, 1, 3.5);
  EXPECT_DOUBLE_EQ(net.solve(0, 1), 3.5);
  EXPECT_DOUBLE_EQ(net.flow_on(e), 3.5);
}

TEST(MaxFlow, SeriesBottleneck) {
  mf::MaxFlow net(3);
  net.add_edge(0, 1, 5.0);
  net.add_edge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(net.solve(0, 2), 2.0);
}

TEST(MaxFlow, ParallelPathsAdd) {
  mf::MaxFlow net(4);
  net.add_edge(0, 1, 3.0);
  net.add_edge(1, 3, 3.0);
  net.add_edge(0, 2, 4.0);
  net.add_edge(2, 3, 2.0);
  EXPECT_DOUBLE_EQ(net.solve(0, 3), 5.0);
}

TEST(MaxFlow, ClassicCrossNetwork) {
  // The textbook 6-node network whose optimum needs the residual arc.
  //   s=0, a=1, b=2, c=3, d=4, t=5
  mf::MaxFlow net(6);
  net.add_edge(0, 1, 16);
  net.add_edge(0, 2, 13);
  net.add_edge(1, 2, 10);
  net.add_edge(2, 1, 4);
  net.add_edge(1, 3, 12);
  net.add_edge(3, 2, 9);
  net.add_edge(2, 4, 14);
  net.add_edge(4, 3, 7);
  net.add_edge(3, 5, 20);
  net.add_edge(4, 5, 4);
  EXPECT_DOUBLE_EQ(net.solve(0, 5), 23.0);  // CLRS figure 26.6 max flow
}

TEST(MaxFlow, DisconnectedSinkIsZero) {
  mf::MaxFlow net(4);
  net.add_edge(0, 1, 5.0);
  net.add_edge(2, 3, 5.0);
  EXPECT_DOUBLE_EQ(net.solve(0, 3), 0.0);
}

TEST(MaxFlow, ZeroCapacityEdgeCarriesNothing) {
  mf::MaxFlow net(2);
  const auto e = net.add_edge(0, 1, 0.0);
  EXPECT_DOUBLE_EQ(net.solve(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(net.flow_on(e), 0.0);
}

TEST(MaxFlow, FractionalCapacities) {
  mf::MaxFlow net(4);
  net.add_edge(0, 1, 0.25);
  net.add_edge(0, 2, 0.5);
  net.add_edge(1, 3, 1.0);
  net.add_edge(2, 3, 0.3);
  EXPECT_NEAR(net.solve(0, 3), 0.55, 1e-12);
}

TEST(MaxFlow, FlowConservationOnRandomBipartite) {
  // Random transportation networks: flow on every task edge within
  // capacity, conservation at interior nodes, total = min(supply, demand
  // capacity) when the middle is uncapacitated.
  malsched::support::Rng rng(311);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t left = 3 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    const std::size_t right = 3 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    mf::MaxFlow net(2 + left + right);
    std::vector<std::size_t> supply_edges;
    double supply = 0.0;
    for (std::size_t i = 0; i < left; ++i) {
      const double cap = rng.uniform_pos(2.0);
      supply += cap;
      supply_edges.push_back(net.add_edge(0, 2 + i, cap));
      for (std::size_t j = 0; j < right; ++j) {
        net.add_edge(2 + i, 2 + left + j, 10.0);  // effectively uncapped
      }
    }
    double demand = 0.0;
    for (std::size_t j = 0; j < right; ++j) {
      const double cap = rng.uniform_pos(2.0);
      demand += cap;
      net.add_edge(2 + left + j, 1, cap);
    }
    const double value = net.solve(0, 1);
    EXPECT_NEAR(value, std::min(supply, demand), 1e-9) << "trial " << trial;
    double outflow = 0.0;
    for (const auto e : supply_edges) {
      EXPECT_GE(net.flow_on(e), -1e-12);
      outflow += net.flow_on(e);
    }
    EXPECT_NEAR(outflow, value, 1e-9);
  }
}

TEST(MaxFlowDeath, RejectsBadNodes) {
  mf::MaxFlow net(2);
  EXPECT_DEATH(net.add_edge(0, 5, 1.0), "");
  EXPECT_DEATH((void)net.solve(0, 0), "");
}
