#include "malsched/service/service.hpp"

#include <gtest/gtest.h>

#include <string>

namespace msvc = malsched::service;

namespace {

const char* kBatchText = R"(# two instances, four requests
instance small
processors 4
task 2.0 2 1.0
task 1.5 1 0.5
end

instance wide   # trailing comment
processors 2
task 2.0 2 1.0
task 2.0 2 1.0
end

solve wdeq small
solve deq wide
solve wdeq small      # repeated: a cache hit on round one already
solve optimal wide
)";

}  // namespace

TEST(Service, ParseBatchFile) {
  std::string error;
  const auto batch = msvc::parse_batch(kBatchText, &error);
  ASSERT_TRUE(batch.has_value()) << error;
  EXPECT_EQ(batch->instances.size(), 2u);
  EXPECT_EQ(batch->requests.size(), 4u);
  EXPECT_EQ(batch->requests[0].solver, "wdeq");
  EXPECT_EQ(batch->requests[0].instance_name, "small");
  EXPECT_EQ(batch->requests[3].solver, "optimal");
  ASSERT_EQ(batch->instances.count("wide"), 1u);
  EXPECT_EQ(batch->instances.at("wide").size(), 2u);
}

TEST(Service, ParseErrorsAreDiagnosed) {
  std::string error;

  EXPECT_FALSE(msvc::parse_batch("solve", &error).has_value());
  EXPECT_NE(error.find("'solve' needs"), std::string::npos);

  EXPECT_FALSE(msvc::parse_batch("instance\n", &error).has_value());
  EXPECT_NE(error.find("needs a name"), std::string::npos);

  EXPECT_FALSE(
      msvc::parse_batch("instance a\nprocessors 2\ntask 1 1 1\n", &error)
          .has_value());
  EXPECT_NE(error.find("missing 'end'"), std::string::npos);

  EXPECT_FALSE(msvc::parse_batch("end\n", &error).has_value());
  EXPECT_NE(error.find("outside"), std::string::npos);

  EXPECT_FALSE(msvc::parse_batch(
                   "instance a\nprocessors 2\ntask 1 1 1\nend\n"
                   "instance a\nprocessors 2\ntask 1 1 1\nend\nsolve wdeq a\n",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("duplicate instance"), std::string::npos);

  // Malformed instance body surfaces the io.hpp diagnostic with context.
  EXPECT_FALSE(
      msvc::parse_batch("instance a\nprocessors -2\ntask 1 1 1\nend\nsolve wdeq a\n",
                        &error)
          .has_value());
  EXPECT_NE(error.find("instance 'a'"), std::string::npos);
  EXPECT_NE(error.find("processors"), std::string::npos);

  EXPECT_FALSE(msvc::parse_batch("frobnicate x\n", &error).has_value());
  EXPECT_NE(error.find("unknown keyword"), std::string::npos);

  EXPECT_FALSE(
      msvc::parse_batch("instance a\nprocessors 2\ntask 1 1 1\nend\n", &error)
          .has_value());
  EXPECT_NE(error.find("no 'solve'"), std::string::npos);
}

TEST(Service, InstanceBodyDiagnosticsUseFileLineNumbers) {
  // The 'task 1 1' error sits on file line 6 (after a comment and a blank
  // inside the block); the diagnostic must say 6, not a block-relative 2.
  std::string error;
  const std::string text =
      "# header\n"
      "instance a\n"
      "processors 2\n"
      "# note\n"
      "\n"
      "task 1 1\n"
      "end\n"
      "solve wdeq a\n";
  EXPECT_FALSE(msvc::parse_batch(text, &error).has_value());
  EXPECT_NE(error.find("instance 'a'"), std::string::npos) << error;
  EXPECT_NE(error.find("line 6"), std::string::npos) << error;
}

TEST(Service, EndToEndRunProducesPerRequestResults) {
  std::string error;
  const auto batch = msvc::parse_batch(kBatchText, &error);
  ASSERT_TRUE(batch.has_value()) << error;
  const auto registry = msvc::SolverRegistry::with_default_solvers();

  msvc::ServiceOptions options;
  options.threads = 2;
  const auto report = msvc::run_service(*batch, registry, options);
  ASSERT_EQ(report.results.size(), 4u);
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    EXPECT_TRUE(report.results[i].ok) << i << ": " << report.results[i].error;
  }
  // Request 2 repeats request 0 bit-for-bit.
  EXPECT_EQ(report.results[2].objective, report.results[0].objective);
  EXPECT_GE(report.cache.hits, 1u);
  EXPECT_EQ(report.latencies.size(), 4u);
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(Service, UnknownInstanceFailsOnlyThatRequest) {
  const std::string text =
      "instance a\nprocessors 2\ntask 1 1 1\nend\n"
      "solve wdeq a\nsolve wdeq ghost\n";
  std::string error;
  const auto batch = msvc::parse_batch(text, &error);
  ASSERT_TRUE(batch.has_value()) << error;
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto report = msvc::run_service(*batch, registry, {});
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_TRUE(report.results[0].ok);
  EXPECT_FALSE(report.results[1].ok);
  EXPECT_NE(report.results[1].error.find("ghost"), std::string::npos);
  EXPECT_NE(report.results[1].error.find("line 6"), std::string::npos);
}

TEST(Service, ResultStreamIsByteIdenticalAcrossThreadCounts) {
  // The determinism contract: for a fixed cache configuration, the result
  // stream is byte-identical whatever the worker count.  (Cached vs
  // uncached runs only agree to ~1e-9 relative — the cached path solves in
  // canonical space — so cache state is deliberately not varied here.)
  std::string error;
  const auto batch = msvc::parse_batch(kBatchText, &error);
  ASSERT_TRUE(batch.has_value()) << error;
  const auto registry = msvc::SolverRegistry::with_default_solvers();

  for (const bool use_cache : {true, false}) {
    std::string reference;
    for (const unsigned threads : {1u, 4u, 8u}) {
      msvc::ServiceOptions options;
      options.threads = threads;
      options.use_cache = use_cache;
      const auto text =
          msvc::format_results(msvc::run_service(*batch, registry, options));
      if (reference.empty()) {
        reference = text;
        EXPECT_NE(text.find("request 0 solver=wdeq status=ok"),
                  std::string::npos);
      } else {
        EXPECT_EQ(text, reference)
            << "threads=" << threads << " cache=" << use_cache;
      }
    }
  }
}

TEST(Service, DisabledCacheTelemetrySaysSo) {
  std::string error;
  const auto batch = msvc::parse_batch(kBatchText, &error);
  ASSERT_TRUE(batch.has_value()) << error;
  const auto registry = msvc::SolverRegistry::with_default_solvers();

  msvc::ServiceOptions options;
  options.use_cache = false;
  const auto report = msvc::run_service(*batch, registry, options);
  const auto telemetry = msvc::format_telemetry(report);
  EXPECT_NE(telemetry.find("cache         : disabled"), std::string::npos)
      << telemetry;
  EXPECT_EQ(telemetry.find("hit_rate"), std::string::npos);
}

TEST(Service, RepeatRoundsWarmTheCache) {
  std::string error;
  const auto batch = msvc::parse_batch(kBatchText, &error);
  ASSERT_TRUE(batch.has_value()) << error;
  const auto registry = msvc::SolverRegistry::with_default_solvers();

  msvc::ServiceOptions options;
  options.repeat = 3;
  const auto report = msvc::run_service(*batch, registry, options);
  EXPECT_EQ(report.latencies.size(), 12u);  // 4 requests x 3 rounds
  // Rounds two and three hit on everything; round one on the repeat.
  EXPECT_GE(report.cache.hits, 8u);
  const auto telemetry = msvc::format_telemetry(report);
  EXPECT_NE(telemetry.find("p50="), std::string::npos);
  EXPECT_NE(telemetry.find("p99="), std::string::npos);
  EXPECT_NE(telemetry.find("hit_rate="), std::string::npos);
}
