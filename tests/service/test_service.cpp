#include "malsched/service/service.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace msvc = malsched::service;

namespace {

const char* kBatchText = R"(# two instances, four requests
instance small
processors 4
task 2.0 2 1.0
task 1.5 1 0.5
end

instance wide   # trailing comment
processors 2
task 2.0 2 1.0
task 2.0 2 1.0
end

solve wdeq small
solve deq wide
solve wdeq small      # repeated: a cache hit on round one already
solve optimal wide
)";

// RAII scratch directory for include-file tests.
class ScratchDir {
 public:
  ScratchDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("malsched_service_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string path() const { return dir_.string(); }
  void write(const std::string& name, const std::string& text) const {
    std::ofstream out(dir_ / name);
    out << text;
  }

 private:
  std::filesystem::path dir_;
};

}  // namespace

TEST(Service, ParseBatchFile) {
  std::string error;
  const auto batch = msvc::parse_batch(kBatchText, &error);
  ASSERT_TRUE(batch.has_value()) << error;
  EXPECT_EQ(batch->instances.size(), 2u);
  EXPECT_EQ(batch->requests.size(), 4u);
  EXPECT_EQ(batch->requests[0].solver, "wdeq");
  EXPECT_EQ(batch->requests[0].instance_name, "small");
  EXPECT_EQ(batch->requests[3].solver, "optimal");
  ASSERT_EQ(batch->instances.count("wide"), 1u);
  EXPECT_EQ(batch->instances.at("wide").size(), 2u);
}

TEST(Service, ParseErrorsAreDiagnosed) {
  std::string error;

  EXPECT_FALSE(msvc::parse_batch("solve", &error).has_value());
  EXPECT_NE(error.find("'solve' needs"), std::string::npos);

  EXPECT_FALSE(msvc::parse_batch("instance\n", &error).has_value());
  EXPECT_NE(error.find("needs a name"), std::string::npos);

  EXPECT_FALSE(
      msvc::parse_batch("instance a\nprocessors 2\ntask 1 1 1\n", &error)
          .has_value());
  EXPECT_NE(error.find("missing 'end'"), std::string::npos);

  EXPECT_FALSE(msvc::parse_batch("end\n", &error).has_value());
  EXPECT_NE(error.find("outside"), std::string::npos);

  EXPECT_FALSE(msvc::parse_batch(
                   "instance a\nprocessors 2\ntask 1 1 1\nend\n"
                   "instance a\nprocessors 2\ntask 1 1 1\nend\nsolve wdeq a\n",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("duplicate instance"), std::string::npos);

  // Malformed instance body surfaces the io.hpp diagnostic with context.
  EXPECT_FALSE(
      msvc::parse_batch("instance a\nprocessors -2\ntask 1 1 1\nend\nsolve wdeq a\n",
                        &error)
          .has_value());
  EXPECT_NE(error.find("instance 'a'"), std::string::npos);
  EXPECT_NE(error.find("processors"), std::string::npos);

  EXPECT_FALSE(msvc::parse_batch("frobnicate x\n", &error).has_value());
  EXPECT_NE(error.find("unknown keyword"), std::string::npos);

  EXPECT_FALSE(
      msvc::parse_batch("instance a\nprocessors 2\ntask 1 1 1\nend\n", &error)
          .has_value());
  EXPECT_NE(error.find("no 'solve'"), std::string::npos);
}

TEST(Service, InstanceBodyDiagnosticsUseFileLineNumbers) {
  // The 'task 1 1' error sits on file line 6 (after a comment and a blank
  // inside the block); the diagnostic must say 6, not a block-relative 2.
  std::string error;
  const std::string text =
      "# header\n"
      "instance a\n"
      "processors 2\n"
      "# note\n"
      "\n"
      "task 1 1\n"
      "end\n"
      "solve wdeq a\n";
  EXPECT_FALSE(msvc::parse_batch(text, &error).has_value());
  EXPECT_NE(error.find("instance 'a'"), std::string::npos) << error;
  EXPECT_NE(error.find("line 6"), std::string::npos) << error;
}

TEST(Service, GenerateLineDefinesNamedInstance) {
  std::string error;
  const auto batch = msvc::parse_batch(
      "generate big heavy-tail-volumes 64 16 42\n"
      "generate small uniform 5 2 7\n"
      "solve wdeq big\n"
      "solve wdeq small\n",
      &error);
  ASSERT_TRUE(batch.has_value()) << error;
  ASSERT_EQ(batch->instances.count("big"), 1u);
  EXPECT_EQ(batch->instances.at("big").size(), 64u);
  EXPECT_DOUBLE_EQ(batch->instances.at("big").processors(), 16.0);
  EXPECT_EQ(batch->instances.at("small").size(), 5u);

  // Same spec => same seed => bitwise identical instance (determinism).
  const auto again = msvc::parse_batch(
      "generate big heavy-tail-volumes 64 16 42\nsolve wdeq big\n", &error);
  ASSERT_TRUE(again.has_value()) << error;
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(again->instances.at("big").task(i).volume,
              batch->instances.at("big").task(i).volume)
        << i;
  }
}

TEST(Service, GenerateErrorsAreDiagnosed) {
  std::string error;
  EXPECT_FALSE(msvc::parse_batch("generate x uniform\n", &error).has_value());
  EXPECT_NE(error.find("'generate' needs"), std::string::npos);

  EXPECT_FALSE(
      msvc::parse_batch("generate x no-such-family 5 2 1\n", &error)
          .has_value());
  EXPECT_NE(error.find("unknown family"), std::string::npos);
  EXPECT_NE(error.find("heavy-tail-volumes"), std::string::npos)
      << "diagnostic should list the known families: " << error;

  EXPECT_FALSE(
      msvc::parse_batch("generate x uniform 0 2 1\n", &error).has_value());
  EXPECT_NE(error.find("task count"), std::string::npos);

  EXPECT_FALSE(
      msvc::parse_batch("generate x uniform 5 0 1\n", &error).has_value());
  EXPECT_NE(error.find("positive processors"), std::string::npos);

  EXPECT_FALSE(msvc::parse_batch(
                   "instance x\nprocessors 2\ntask 1 1 1\nend\n"
                   "generate x uniform 5 2 1\nsolve wdeq x\n",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("duplicate instance"), std::string::npos);
}

TEST(Service, WeightAndDeadlineDirectivesAreStickyPerFile) {
  std::string error;
  const auto batch = msvc::parse_batch(
      "instance a\nprocessors 2\ntask 1 1 1\nend\n"
      "solve wdeq a\n"            // defaults: weight 1, no deadline
      "weight 4\n"
      "deadline 2.5\n"
      "solve wdeq a\n"            // weight 4, deadline 2.5
      "solve deq a\n"             // sticky: same
      "deadline none\n"
      "weight 0.5\n"
      "solve wdeq a\n",           // weight 0.5, no deadline
      &error);
  ASSERT_TRUE(batch.has_value()) << error;
  ASSERT_EQ(batch->requests.size(), 4u);
  EXPECT_DOUBLE_EQ(batch->requests[0].priority_weight, 1.0);
  EXPECT_FALSE(batch->requests[0].deadline_seconds.has_value());
  EXPECT_DOUBLE_EQ(batch->requests[1].priority_weight, 4.0);
  ASSERT_TRUE(batch->requests[1].deadline_seconds.has_value());
  EXPECT_DOUBLE_EQ(*batch->requests[1].deadline_seconds, 2.5);
  EXPECT_DOUBLE_EQ(batch->requests[2].priority_weight, 4.0);
  EXPECT_TRUE(batch->requests[2].deadline_seconds.has_value());
  EXPECT_DOUBLE_EQ(batch->requests[3].priority_weight, 0.5);
  EXPECT_FALSE(batch->requests[3].deadline_seconds.has_value());
}

TEST(Service, WeightAndDeadlineErrorsAreDiagnosed) {
  std::string error;
  EXPECT_FALSE(msvc::parse_batch("weight\nsolve wdeq a\n", &error).has_value());
  EXPECT_NE(error.find("'weight' needs a positive number"), std::string::npos);

  EXPECT_FALSE(
      msvc::parse_batch("weight 0\nsolve wdeq a\n", &error).has_value());
  EXPECT_NE(error.find("'weight' needs a positive number"), std::string::npos);

  EXPECT_FALSE(
      msvc::parse_batch("weight -1\nsolve wdeq a\n", &error).has_value());
  EXPECT_NE(error.find("'weight' needs a positive number"), std::string::npos);

  EXPECT_FALSE(
      msvc::parse_batch("deadline\nsolve wdeq a\n", &error).has_value());
  EXPECT_NE(error.find("'deadline' needs"), std::string::npos);

  EXPECT_FALSE(
      msvc::parse_batch("deadline -2\nsolve wdeq a\n", &error).has_value());
  EXPECT_NE(error.find("non-negative"), std::string::npos);

  EXPECT_FALSE(
      msvc::parse_batch("deadline soonish\nsolve wdeq a\n", &error)
          .has_value());
  EXPECT_NE(error.find("non-negative"), std::string::npos);
}

TEST(Service, DirectivesInIncludedFilesDoNotLeakIntoTheIncluder) {
  const ScratchDir scratch;
  scratch.write("inner.msb",
                "instance shared\nprocessors 2\ntask 1 1 1\nend\n"
                "weight 9\ndeadline 1\n"
                "solve wdeq shared\n");
  scratch.write("main.msb",
                "include inner.msb\n"
                "solve wdeq shared\n");
  std::ifstream in(scratch.path() + "/main.msb");
  std::string error;
  msvc::BatchReadOptions options;
  options.base_dir = scratch.path();
  const auto batch = msvc::read_batch(in, &error, options);
  ASSERT_TRUE(batch.has_value()) << error;
  ASSERT_EQ(batch->requests.size(), 2u);
  // The included file's own request carries its directives...
  EXPECT_DOUBLE_EQ(batch->requests[0].priority_weight, 9.0);
  EXPECT_TRUE(batch->requests[0].deadline_seconds.has_value());
  // ... but the includer's request is untouched.
  EXPECT_DOUBLE_EQ(batch->requests[1].priority_weight, 1.0);
  EXPECT_FALSE(batch->requests[1].deadline_seconds.has_value());
}

TEST(Service, ZeroDeadlineYieldsDeadlineExceededDeterministically) {
  // `deadline 0` expires at submission: the worker pops an already-expired
  // request and resolves DeadlineExceeded without solving, on any host.
  std::string error;
  const auto batch = msvc::parse_batch(
      "instance a\nprocessors 2\ntask 1 1 1\nend\n"
      "solve wdeq a\n"
      "deadline 0\n"
      "solve wdeq a\n",
      &error);
  ASSERT_TRUE(batch.has_value()) << error;
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto report = msvc::run_service(*batch, registry, {});
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_TRUE(report.results[0].ok());
  ASSERT_FALSE(report.results[1].ok());
  EXPECT_EQ(report.results[1].error().code,
            msvc::ErrorCode::DeadlineExceeded);
  // And the code name survives the output stream.
  const auto text = msvc::format_results(report);
  EXPECT_NE(text.find("code=deadline-exceeded"), std::string::npos) << text;
}

TEST(Service, FifoAdmissionProducesIdenticalResults) {
  // Admission order changes latency, never results: FIFO vs priority runs
  // of the same batch emit byte-identical result streams.
  std::string error;
  const auto batch = msvc::parse_batch(kBatchText, &error);
  ASSERT_TRUE(batch.has_value()) << error;
  const auto registry = msvc::SolverRegistry::with_default_solvers();

  msvc::ServiceOptions priority;
  priority.threads = 4;
  msvc::ServiceOptions fifo = priority;
  fifo.fifo_admission = true;
  const auto a = msvc::format_results(msvc::run_service(*batch, registry, priority));
  const auto b = msvc::format_results(msvc::run_service(*batch, registry, fifo));
  EXPECT_EQ(a, b);
}

TEST(Service, IncludeSplicesInstancesAndRequests) {
  const ScratchDir scratch;
  // A space in the file name: the path is the rest of the line, not one
  // whitespace token.
  scratch.write("common instances.msb",
                "instance shared\nprocessors 2\ntask 1 1 1\nend\n");
  scratch.write("main.msb",
                "include common instances.msb   # spliced\n"
                "solve wdeq shared\n");
  std::ifstream in(scratch.path() + "/main.msb");
  std::string error;
  msvc::BatchReadOptions options;
  options.base_dir = scratch.path();
  const auto batch = msvc::read_batch(in, &error, options);
  ASSERT_TRUE(batch.has_value()) << error;
  EXPECT_EQ(batch->instances.count("shared"), 1u);
  ASSERT_EQ(batch->requests.size(), 1u);
  EXPECT_EQ(batch->requests[0].instance_name, "shared");

  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto report = msvc::run_service(*batch, registry, {});
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_TRUE(report.results[0].ok()) << report.results[0].error().to_string();
}

TEST(Service, NestedIncludesResolveAgainstTheirOwnDirectory) {
  const ScratchDir scratch;
  std::filesystem::create_directories(
      std::filesystem::path(scratch.path()) / "sub");
  scratch.write("sub/leaf.msb",
                "instance leaf\nprocessors 2\ntask 1 1 1\nend\n");
  scratch.write("sub/mid.msb", "include leaf.msb\n");  // relative to sub/
  scratch.write("main.msb",
                "include sub/mid.msb\n"
                "generate extra uniform 4 2 1\n"
                "solve wdeq leaf\nsolve deq extra\n");
  std::ifstream in(scratch.path() + "/main.msb");
  std::string error;
  msvc::BatchReadOptions options;
  options.base_dir = scratch.path();
  const auto batch = msvc::read_batch(in, &error, options);
  ASSERT_TRUE(batch.has_value()) << error;
  EXPECT_EQ(batch->instances.count("leaf"), 1u);
  EXPECT_EQ(batch->instances.count("extra"), 1u);
  EXPECT_EQ(batch->requests.size(), 2u);
}

TEST(Service, IncludeErrorsAreDiagnosed) {
  const ScratchDir scratch;
  std::string error;

  // Missing file.
  scratch.write("main.msb", "include ghost.msb\nsolve wdeq x\n");
  {
    std::ifstream in(scratch.path() + "/main.msb");
    msvc::BatchReadOptions options;
    options.base_dir = scratch.path();
    EXPECT_FALSE(msvc::read_batch(in, &error, options).has_value());
    EXPECT_NE(error.find("cannot open include"), std::string::npos) << error;
  }

  // Cycle: a file including itself trips the depth bound, not a hang.
  scratch.write("loop.msb", "include loop.msb\n");
  {
    std::ifstream in(scratch.path() + "/loop.msb");
    msvc::BatchReadOptions options;
    options.base_dir = scratch.path();
    EXPECT_FALSE(msvc::read_batch(in, &error, options).has_value());
    EXPECT_NE(error.find("include depth exceeds"), std::string::npos)
        << error;
  }

  // Parse errors inside an include name the included file.
  scratch.write("bad.msb", "frobnicate\n");
  scratch.write("outer.msb", "include bad.msb\nsolve wdeq x\n");
  {
    std::ifstream in(scratch.path() + "/outer.msb");
    msvc::BatchReadOptions options;
    options.base_dir = scratch.path();
    EXPECT_FALSE(msvc::read_batch(in, &error, options).has_value());
    EXPECT_NE(error.find("bad.msb"), std::string::npos) << error;
    EXPECT_NE(error.find("unknown keyword"), std::string::npos) << error;
  }
}

TEST(Service, EndToEndRunProducesPerRequestResults) {
  std::string error;
  const auto batch = msvc::parse_batch(kBatchText, &error);
  ASSERT_TRUE(batch.has_value()) << error;
  const auto registry = msvc::SolverRegistry::with_default_solvers();

  msvc::ServiceOptions options;
  options.threads = 2;
  const auto report = msvc::run_service(*batch, registry, options);
  ASSERT_EQ(report.results.size(), 4u);
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    EXPECT_TRUE(report.results[i].ok())
        << i << ": " << report.results[i].error().to_string();
  }
  // Request 2 repeats request 0 bit-for-bit.
  EXPECT_EQ(report.results[2].objective(), report.results[0].objective());
  EXPECT_GE(report.cache.hits, 1u);
  EXPECT_EQ(report.latencies.size(), 4u);
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(Service, UnknownInstanceFailsOnlyThatRequestWithParseError) {
  const std::string text =
      "instance a\nprocessors 2\ntask 1 1 1\nend\n"
      "solve wdeq a\nsolve wdeq ghost\n";
  std::string error;
  const auto batch = msvc::parse_batch(text, &error);
  ASSERT_TRUE(batch.has_value()) << error;
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto report = msvc::run_service(*batch, registry, {});
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_TRUE(report.results[0].ok());
  ASSERT_FALSE(report.results[1].ok());
  EXPECT_EQ(report.results[1].error().code, msvc::ErrorCode::ParseError);
  EXPECT_NE(report.results[1].error().detail.find("ghost"), std::string::npos);
  EXPECT_NE(report.results[1].error().detail.find("line 6"),
            std::string::npos);
}

TEST(Service, ResultStreamIsByteIdenticalAcrossThreadCounts) {
  // The determinism contract: for a fixed cache configuration, the result
  // stream is byte-identical whatever the worker count.  (Cached vs
  // uncached runs only agree to ~1e-9 relative — the cached path solves in
  // canonical space — so cache state is deliberately not varied here.)
  std::string error;
  const auto batch = msvc::parse_batch(kBatchText, &error);
  ASSERT_TRUE(batch.has_value()) << error;
  const auto registry = msvc::SolverRegistry::with_default_solvers();

  for (const bool use_cache : {true, false}) {
    std::string reference;
    for (const unsigned threads : {1u, 4u, 8u}) {
      msvc::ServiceOptions options;
      options.threads = threads;
      options.use_cache = use_cache;
      const auto text =
          msvc::format_results(msvc::run_service(*batch, registry, options));
      if (reference.empty()) {
        reference = text;
        EXPECT_NE(text.find("request 0 solver=wdeq status=ok"),
                  std::string::npos);
      } else {
        EXPECT_EQ(text, reference)
            << "threads=" << threads << " cache=" << use_cache;
      }
    }
  }
}

TEST(Service, DisabledCacheTelemetrySaysSo) {
  std::string error;
  const auto batch = msvc::parse_batch(kBatchText, &error);
  ASSERT_TRUE(batch.has_value()) << error;
  const auto registry = msvc::SolverRegistry::with_default_solvers();

  msvc::ServiceOptions options;
  options.use_cache = false;
  const auto report = msvc::run_service(*batch, registry, options);
  const auto telemetry = msvc::format_telemetry(report);
  EXPECT_NE(telemetry.find("cache         : disabled"), std::string::npos)
      << telemetry;
  EXPECT_EQ(telemetry.find("hit_rate"), std::string::npos);
}

TEST(Service, RepeatRoundsWarmTheCache) {
  std::string error;
  const auto batch = msvc::parse_batch(kBatchText, &error);
  ASSERT_TRUE(batch.has_value()) << error;
  const auto registry = msvc::SolverRegistry::with_default_solvers();

  msvc::ServiceOptions options;
  options.repeat = 3;
  const auto report = msvc::run_service(*batch, registry, options);
  EXPECT_EQ(report.latencies.size(), 12u);  // 4 requests x 3 rounds
  // Rounds two and three hit on everything; round one on the repeat.
  EXPECT_GE(report.cache.hits, 8u);
  const auto telemetry = msvc::format_telemetry(report);
  EXPECT_NE(telemetry.find("p50="), std::string::npos);
  EXPECT_NE(telemetry.find("p99="), std::string::npos);
  EXPECT_NE(telemetry.find("hit_rate="), std::string::npos);
}
