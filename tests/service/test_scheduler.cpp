#include "malsched/service/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "malsched/core/generators.hpp"
#include "malsched/support/rng.hpp"
#include "malsched/support/stats.hpp"

namespace mc = malsched::core;
namespace msvc = malsched::service;
namespace ms = malsched::support;

namespace {

mc::Instance small_instance() {
  return mc::Instance(4.0, {{2.0, 2.0, 1.0}, {1.5, 1.0, 0.5}});
}

// A solver that spins until `released` flips: a deterministic "long solve"
// for streaming-admission tests (no wall-clock assumptions).
msvc::SolverRegistry registry_with_blocker(const std::atomic<bool>& released) {
  auto registry = msvc::SolverRegistry::with_default_solvers();
  registry.register_solver(
      "blocker",
      [&released](const mc::Instance& inst) {
        while (!released.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return msvc::SolveResult::success(
            "", msvc::SolveOutput{1.0, 1.0,
                                  std::vector<double>(inst.size(), 1.0)});
      },
      /*order_invariant=*/false, "test blocker", /*cacheable=*/false);
  return registry;
}

}  // namespace

TEST(Scheduler, SubmitReturnsResolvableTicketsWithMonotonicIds) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  msvc::Scheduler scheduler(registry, {.threads = 2});
  const auto handle = msvc::intern(small_instance());

  std::vector<msvc::Ticket> tickets;
  for (int i = 0; i < 8; ++i) {
    tickets.push_back(scheduler.submit("wdeq", handle));
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_TRUE(tickets[i].valid());
    EXPECT_EQ(tickets[i].id(), i + 1);  // admission order, 1-based
    auto result = tickets[i].get();
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    EXPECT_EQ(result.solver, "wdeq");
    EXPECT_GT(result.latency_seconds, 0.0);
    EXPECT_FALSE(tickets[i].valid()) << "get() is one-shot";
  }
  EXPECT_FALSE(msvc::Ticket{}.valid());
  EXPECT_EQ(msvc::Ticket{}.id(), 0u);
}

TEST(Scheduler, ShortRequestsResolveWhileALongSolveStillRuns) {
  // The heart of streaming admission, made deterministic with a latch
  // solver: with 2 workers, the blocker occupies one while the other drains
  // every short request — all short tickets must resolve while the long
  // ticket is still pending.  A barrier-style executor would hand back
  // nothing until the blocker finished.
  std::atomic<bool> released{false};
  const auto registry = registry_with_blocker(released);
  msvc::Scheduler scheduler(registry, {.threads = 2});
  const auto handle = msvc::intern(small_instance());

  auto long_ticket = scheduler.submit("blocker", handle);
  std::vector<msvc::Ticket> short_tickets;
  for (int i = 0; i < 16; ++i) {
    short_tickets.push_back(scheduler.submit("wdeq", handle));
  }
  for (auto& ticket : short_tickets) {
    const auto result = ticket.get();  // resolves with the blocker still held
    EXPECT_TRUE(result.ok()) << result.error().to_string();
  }
  EXPECT_FALSE(long_ticket.ready());

  released.store(true, std::memory_order_release);
  const auto long_result = long_ticket.get();
  EXPECT_TRUE(long_result.ok()) << long_result.error().to_string();
}

TEST(Scheduler, MixedOptimalAndWdeqShortLatencyIsNotGatedOnTheLongSolve) {
  // Wall-clock flavour of the claim on the real zoo: one `optimal` request
  // (n = 7: seconds of completion-order enumeration) admitted *first*, then
  // a stream of wdeq requests.  Short-request p50 latency must sit far
  // below the long solve's latency, i.e. shorts are not serialized behind
  // the enumeration.  (n = 9 as in the paper-scale mix takes minutes per
  // solve — n = 7 keeps the test seconds-long with the same 5-orders-of-
  // magnitude duration gap.)
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  msvc::Scheduler scheduler(registry, {.threads = 2});
  ms::Rng rng(2012);
  mc::GeneratorConfig long_config;
  long_config.num_tasks = 7;
  long_config.processors = 4.0;
  auto long_ticket =
      scheduler.submit("optimal", msvc::intern(mc::generate(long_config, rng)));

  std::vector<msvc::Ticket> short_tickets;
  for (int i = 0; i < 32; ++i) {
    mc::GeneratorConfig config;
    config.num_tasks = 4;
    config.processors = 4.0;
    short_tickets.push_back(
        scheduler.submit("wdeq", msvc::intern(mc::generate(config, rng))));
  }

  ms::Sample short_latencies;
  for (auto& ticket : short_tickets) {
    const auto result = ticket.get();
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    short_latencies.add(result.latency_seconds);
  }
  const auto long_result = long_ticket.get();
  ASSERT_TRUE(long_result.ok()) << long_result.error().to_string();

  EXPECT_LT(short_latencies.quantile(0.5),
            0.1 * long_result.latency_seconds)
      << "short p50 " << short_latencies.quantile(0.5) << "s vs long "
      << long_result.latency_seconds << "s";
}

TEST(Scheduler, ConcurrentSubmitStressIsRaceFree) {
  // Many client threads hammering submit() against few workers and a small
  // admission queue (so backpressure blocking is exercised).  Run under
  // -DMALSCHED_SANITIZE=thread for the data-race proof; the functional
  // assertion is that every ticket resolves correctly exactly once.
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  msvc::Scheduler::Options options;
  options.threads = 4;
  options.queue_capacity = 16;
  msvc::Scheduler scheduler(registry, options);

  const std::size_t submitters = 8;
  const std::size_t per_thread = 64;
  std::vector<msvc::InstanceHandle> handles;
  for (int i = 0; i < 4; ++i) {
    ms::Rng rng(100 + i);
    mc::GeneratorConfig config;
    config.num_tasks = 3 + static_cast<std::size_t>(i);
    config.processors = 2.0;
    handles.push_back(msvc::intern(mc::generate(config, rng)));
  }

  std::atomic<std::size_t> ok_count{0};
  std::atomic<std::uint64_t> id_xor{0};
  std::vector<std::thread> clients;
  clients.reserve(submitters);
  for (std::size_t t = 0; t < submitters; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t i = 0; i < per_thread; ++i) {
        auto ticket = scheduler.submit(i % 2 == 0 ? "wdeq" : "deq",
                                       handles[(t + i) % handles.size()]);
        id_xor.fetch_xor(ticket.id(), std::memory_order_relaxed);
        const auto result = ticket.get();
        if (result.ok() &&
            result.completions().size() ==
                handles[(t + i) % handles.size()].size()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  EXPECT_EQ(ok_count.load(), submitters * per_thread);
  // Ids 1..N each seen exactly once: xor over tickets equals xor over 1..N.
  std::uint64_t expected = 0;
  for (std::uint64_t id = 1; id <= submitters * per_thread; ++id) {
    expected ^= id;
  }
  EXPECT_EQ(id_xor.load(), expected);
}

TEST(Scheduler, BackpressureBlocksSubmitWithoutDeadlock) {
  // queue_capacity 1 with a single worker: every submit beyond the first
  // waits for a slot, and all of them still complete.
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  msvc::Scheduler::Options options;
  options.threads = 1;
  options.queue_capacity = 1;
  msvc::Scheduler scheduler(registry, options);
  const auto handle = msvc::intern(small_instance());
  std::vector<msvc::Ticket> tickets;
  for (int i = 0; i < 8; ++i) {
    tickets.push_back(scheduler.submit("wdeq", handle));
  }
  for (auto& ticket : tickets) {
    EXPECT_TRUE(ticket.get().ok());
  }
}

TEST(Scheduler, SubmitAfterCloseYieldsQueueClosed) {
  std::atomic<bool> released{false};
  const auto registry = registry_with_blocker(released);
  msvc::Scheduler scheduler(registry, {.threads = 1});
  const auto handle = msvc::intern(small_instance());

  auto admitted = scheduler.submit("blocker", handle);  // occupies the worker
  auto queued = scheduler.submit("wdeq", handle);       // waits in the queue
  scheduler.close();
  EXPECT_TRUE(scheduler.closed());

  // Rejected immediately: the ticket is already resolved, no worker needed,
  // and no admission id was consumed.
  auto rejected = scheduler.submit("wdeq", handle);
  EXPECT_TRUE(rejected.ready());
  EXPECT_EQ(rejected.id(), 0u);
  const auto rejected_result = rejected.get();
  ASSERT_FALSE(rejected_result.ok());
  EXPECT_EQ(rejected_result.error().code, msvc::ErrorCode::QueueClosed);
  EXPECT_EQ(rejected_result.solver, "wdeq");

  // Jobs admitted before the close still run to completion.
  released.store(true, std::memory_order_release);
  EXPECT_TRUE(admitted.get().ok());
  EXPECT_TRUE(queued.get().ok());
}

TEST(Scheduler, InterningEliminatesPerRequestInstanceCopies) {
  // The copy-counting double: a solver that records the address of every
  // instance it receives.  Registered non-cacheable, so each of the R
  // requests reaches the solver with the client-space instance — if submit
  // copied instances per request (as v1 SolveRequest did), R distinct
  // addresses would show up here.  One interned handle => one address, the
  // handle's own.
  std::set<const mc::Instance*> seen_addresses;
  std::mutex seen_mutex;
  auto registry = msvc::SolverRegistry::with_default_solvers();
  registry.register_solver(
      "address-recorder",
      [&](const mc::Instance& inst) {
        {
          const std::lock_guard<std::mutex> lock(seen_mutex);
          seen_addresses.insert(&inst);
        }
        return msvc::SolveResult::success(
            "", msvc::SolveOutput{0.0, 0.0,
                                  std::vector<double>(inst.size(), 0.0)});
      },
      /*order_invariant=*/false, "copy counter", /*cacheable=*/false);

  const auto handle = msvc::intern(small_instance());
  const msvc::InstanceHandle copy = handle;  // handle copy: shared_ptr only
  EXPECT_EQ(&copy.instance(), &handle.instance());
  EXPECT_GE(handle.use_count(), 2) << "copies share the interned instance";

  msvc::Scheduler scheduler(registry, {.threads = 4});
  std::vector<msvc::Ticket> tickets;
  for (int i = 0; i < 32; ++i) {
    tickets.push_back(
        scheduler.submit("address-recorder", i % 2 == 0 ? handle : copy));
  }
  for (auto& ticket : tickets) {
    EXPECT_TRUE(ticket.get().ok());
  }
  ASSERT_EQ(seen_addresses.size(), 1u)
      << "per-request Instance copies detected";
  EXPECT_EQ(*seen_addresses.begin(), &handle.instance());
}

TEST(Scheduler, InvalidHandleResolvesToParseError) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  msvc::Scheduler scheduler(registry, {.threads = 1});
  auto ticket = scheduler.submit("wdeq", msvc::InstanceHandle{});
  const auto result = ticket.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, msvc::ErrorCode::ParseError);
}

TEST(Scheduler, BorrowedCacheIsSharedAndReported) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  msvc::ResultCache cache(1024);
  msvc::Scheduler::Options options;
  options.threads = 1;
  options.cache = &cache;
  const auto handle = msvc::intern(small_instance());
  {
    msvc::Scheduler scheduler(registry, options);
    EXPECT_TRUE(scheduler.cache_enabled());
    (void)scheduler.submit("wdeq", handle).get();
    (void)scheduler.submit("wdeq", handle).get();
    EXPECT_EQ(scheduler.cache_stats().hits, 1u);
  }
  // A second scheduler over the same cache starts warm.
  {
    msvc::Scheduler scheduler(registry, options);
    auto result = scheduler.submit("wdeq", handle).get();
    EXPECT_TRUE(result.cache_hit);
  }

  msvc::Scheduler::Options uncached;
  uncached.threads = 1;
  uncached.use_cache = false;
  msvc::Scheduler scheduler(registry, uncached);
  EXPECT_FALSE(scheduler.cache_enabled());
  EXPECT_EQ(scheduler.cache_stats().capacity, 0u);

  // use_cache = false wins even when a borrowed cache is supplied, so an
  // uncached A/B baseline over a shared cache object is actually uncached.
  uncached.cache = &cache;
  const auto before = cache.stats();
  msvc::Scheduler off(registry, uncached);
  EXPECT_FALSE(off.cache_enabled());
  auto result = off.submit("wdeq", handle).get();
  EXPECT_FALSE(result.cache_hit);
  EXPECT_EQ(cache.stats().hits, before.hits);
  EXPECT_EQ(cache.stats().misses, before.misses);
}

TEST(Scheduler, HandleExposesCanonicalFingerprint) {
  const auto a = msvc::intern(small_instance());
  // Power-of-two rescale of volumes+weights: same equivalence class.
  const auto b = msvc::intern(
      mc::Instance(4.0, {{4.0, 2.0, 2.0}, {3.0, 1.0, 1.0}}));
  // Genuinely different instance.
  const auto c = msvc::intern(mc::Instance(4.0, {{1.0, 1.0, 1.0}}));
  EXPECT_NE(a.key(), 0u);
  EXPECT_EQ(a.key(), b.key());
  EXPECT_NE(a.key(), c.key());
  EXPECT_EQ(msvc::InstanceHandle{}.key(), 0u);
  EXPECT_EQ(a.size(), 2u);
}

TEST(Scheduler, CancelQueuedTicketResolvesWithoutConsumingASolve) {
  // The acceptance-criterion scenario: a queued-then-cancelled request must
  // resolve Cancelled immediately and no worker may ever spend a solve on
  // it.  The blocker pins the single worker so "counted" stays queued.
  std::atomic<bool> released{false};
  std::atomic<int> solves{0};
  auto registry = registry_with_blocker(released);
  registry.register_solver(
      "counted",
      [&solves](const mc::Instance& inst) {
        solves.fetch_add(1, std::memory_order_relaxed);
        return msvc::SolveResult::success(
            "", msvc::SolveOutput{0.0, 0.0,
                                  std::vector<double>(inst.size(), 0.0)});
      },
      /*order_invariant=*/false, "solve counter", /*cacheable=*/false);
  msvc::Scheduler scheduler(registry, {.threads = 1});
  const auto handle = msvc::intern(small_instance());

  auto holder = scheduler.submit("blocker", handle);
  auto queued = scheduler.submit("counted", handle);
  EXPECT_TRUE(queued.cancel());
  // Resolved by cancel() itself — ready before the worker frees up.
  EXPECT_TRUE(queued.ready());
  const auto result = queued.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, msvc::ErrorCode::Cancelled);
  EXPECT_EQ(result.solver, "counted");

  released.store(true, std::memory_order_release);
  EXPECT_TRUE(holder.get().ok());
  EXPECT_EQ(solves.load(), 0) << "cancelled queued work must never solve";
}

TEST(Scheduler, CancelWhileRunningAbortsACancellableSolve) {
  // cancel() after a worker picked the job up flips the cooperative flag;
  // a context-aware solver (registered via SolverInfo, like `optimal`)
  // observes it at its next poll and returns Cancelled.
  std::atomic<bool> running{false};
  auto registry = msvc::SolverRegistry::with_default_solvers();
  {
    msvc::SolverRegistry::SolverInfo info;
    info.fn = [&running](const mc::Instance& inst,
                         const msvc::SolveContext& context) {
      running.store(true, std::memory_order_release);
      while (!context.cancel.cancelled()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return msvc::SolveResult::failure(
          "", msvc::ErrorCode::Cancelled,
          "aborted by the cancellation token");
    };
    info.description = "cancellable latch";
    info.cacheable = false;
    info.cancellable = true;
    registry.register_solver("cancellable", std::move(info));
  }
  msvc::Scheduler scheduler(registry, {.threads = 1});
  auto ticket = scheduler.submit("cancellable", msvc::intern(small_instance()));
  while (!running.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ticket.cancel());
  const auto result = ticket.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, msvc::ErrorCode::Cancelled);
}

TEST(Scheduler, CancelAbortsARealBranchAndBoundSolve) {
  // End-to-end through the real `optimal` path: an n = 12 branch-and-bound
  // runs far longer than the cancellation latency (one node, i.e. one LP
  // push), so a cancel shortly after the solve starts must come back
  // Cancelled — and promptly.  No wall-clock upper bound is asserted on
  // the solve itself; only the outcome.
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  msvc::Scheduler::Options options;
  options.threads = 1;
  options.use_cache = false;
  msvc::Scheduler scheduler(registry, options);
  ms::Rng rng(20120521);
  mc::GeneratorConfig config;
  config.num_tasks = 12;
  config.processors = 4.0;
  auto ticket =
      scheduler.submit("optimal", msvc::intern(mc::generate(config, rng)));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  (void)ticket.cancel();
  const auto result = ticket.get();
  if (!result.ok()) {  // a very fast machine may legitimately finish first
    EXPECT_EQ(result.error().code, msvc::ErrorCode::Cancelled)
        << result.error().to_string();
    // Normally the abort comes from the solve loop itself ("... completion
    // orders"); on a heavily loaded host the cancel may land while still
    // queued, which is the other legitimate Cancelled path.
    const bool from_solver =
        result.error().detail.find("completion orders") != std::string::npos;
    const bool from_queue =
        result.error().detail.find("queued") != std::string::npos;
    EXPECT_TRUE(from_solver || from_queue) << result.error().detail;
  }
}

TEST(Scheduler, CancelRaceStressResolvesEveryTicketExactlyOnce) {
  // cancel() racing the worker's queued->running->resolved transitions,
  // many times over: every ticket must resolve exactly once, as either its
  // real result or Cancelled.  Run under -DMALSCHED_SANITIZE=thread for the
  // data-race proof.
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  msvc::Scheduler::Options options;
  options.threads = 2;
  options.queue_capacity = 8;
  msvc::Scheduler scheduler(registry, options);
  const auto handle = msvc::intern(small_instance());

  const int rounds = 64;
  std::atomic<int> resolved{0};
  for (int i = 0; i < rounds; ++i) {
    auto ticket = scheduler.submit(i % 2 == 0 ? "wdeq" : "deq", handle);
    std::thread canceller([&ticket] { (void)ticket.cancel(); });
    const auto result = ticket.get();
    if (result.ok()) {
      ++resolved;
    } else {
      EXPECT_EQ(result.error().code, msvc::ErrorCode::Cancelled);
      ++resolved;
    }
    canceller.join();
  }
  EXPECT_EQ(resolved.load(), rounds);
}

TEST(Scheduler, PriorityAdmissionServesCheapUrgentWorkFirst) {
  // Deterministic pop-order check: the blocker pins the single worker while
  // the backlog queues, so the pop order is exactly the rank order.  The
  // heavy request is admitted *first* but its cost hint dwarfs the light
  // ones, so weighted-priority admission must reorder — and Fifo must not.
  for (const bool fifo : {false, true}) {
    std::atomic<bool> released{false};
    std::vector<std::string> order;
    std::mutex order_mutex;
    auto registry = registry_with_blocker(released);
    const auto recorder = [&](const char* name, double cost_seconds) {
      msvc::SolverRegistry::SolverInfo info;
      info.fn = [&order, &order_mutex, label = std::string(name)](
                    const mc::Instance& inst, const msvc::SolveContext&) {
        {
          const std::lock_guard<std::mutex> lock(order_mutex);
          order.push_back(label);
        }
        return msvc::SolveResult::success(
            "", msvc::SolveOutput{0.0, 0.0,
                                  std::vector<double>(inst.size(), 0.0)});
      };
      info.description = "pop-order recorder";
      info.cacheable = false;
      info.cost_hint = [cost_seconds](std::size_t) { return cost_seconds; };
      registry.register_solver(name, std::move(info));
    };
    recorder("rec-heavy", 100.0);
    recorder("rec-light", 1e-4);

    msvc::Scheduler::Options options;
    options.threads = 1;
    options.admission = fifo ? msvc::Scheduler::Admission::Fifo
                             : msvc::Scheduler::Admission::WeightedPriority;
    msvc::Scheduler scheduler(registry, options);
    const auto handle = msvc::intern(small_instance());

    auto holder = scheduler.submit("blocker", handle);
    std::vector<msvc::Ticket> tickets;
    tickets.push_back(scheduler.submit("rec-heavy", handle));
    for (int i = 0; i < 3; ++i) {
      tickets.push_back(scheduler.submit("rec-light", handle));
    }
    released.store(true, std::memory_order_release);
    for (auto& ticket : tickets) {
      EXPECT_TRUE(ticket.get().ok());
    }
    EXPECT_TRUE(holder.get().ok());

    ASSERT_EQ(order.size(), 4u);
    if (fifo) {
      EXPECT_EQ(order.front(), "rec-heavy") << "Fifo must keep arrival order";
    } else {
      EXPECT_EQ(order.back(), "rec-heavy")
          << "priority admission must serve the cheap requests first";
    }
  }
}

TEST(Scheduler, PriorityWeightOutranksEqualWork) {
  // Two identical heavy requests, the later one carrying 16x the priority
  // weight: its aged-work term shrinks 16x, so it must pop first.
  std::atomic<bool> released{false};
  std::vector<int> order;
  std::mutex order_mutex;
  auto registry = registry_with_blocker(released);
  {
    msvc::SolverRegistry::SolverInfo info;
    info.fn = [&order, &order_mutex](const mc::Instance& inst,
                                     const msvc::SolveContext&) {
      {
        const std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(static_cast<int>(inst.size()));
      }
      return msvc::SolveResult::success(
          "", msvc::SolveOutput{0.0, 0.0,
                                std::vector<double>(inst.size(), 0.0)});
    };
    info.description = "records n as identity";
    info.cacheable = false;
    info.cost_hint = [](std::size_t) { return 100.0; };
    registry.register_solver("rec-n", std::move(info));
  }
  msvc::Scheduler scheduler(registry, {.threads = 1});

  auto holder = scheduler.submit("blocker", msvc::intern(small_instance()));
  // n identifies the request: 2 tasks = low weight, 3 tasks = high weight.
  auto low = scheduler.submit("rec-n", small_instance(),
                              {.priority_weight = 1.0});
  auto high = scheduler.submit(
      "rec-n",
      mc::Instance(4.0, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}}),
      {.priority_weight = 16.0});
  released.store(true, std::memory_order_release);
  EXPECT_TRUE(low.get().ok());
  EXPECT_TRUE(high.get().ok());
  EXPECT_TRUE(holder.get().ok());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 3) << "the 16x-weight request must be served first";
}

TEST(Scheduler, DeadlineExpiredWhileQueuedResolvesWithoutSolve) {
  std::atomic<bool> released{false};
  std::atomic<int> solves{0};
  auto registry = registry_with_blocker(released);
  registry.register_solver(
      "counted",
      [&solves](const mc::Instance& inst) {
        solves.fetch_add(1, std::memory_order_relaxed);
        return msvc::SolveResult::success(
            "", msvc::SolveOutput{0.0, 0.0,
                                  std::vector<double>(inst.size(), 0.0)});
      },
      /*order_invariant=*/false, "solve counter", /*cacheable=*/false);
  msvc::Scheduler scheduler(registry, {.threads = 1});
  const auto handle = msvc::intern(small_instance());

  auto holder = scheduler.submit("blocker", handle);
  msvc::SubmitOptions options;
  options.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  auto doomed = scheduler.submit("counted", handle, options);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  released.store(true, std::memory_order_release);

  const auto result = doomed.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, msvc::ErrorCode::DeadlineExceeded);
  EXPECT_NE(result.error().detail.find("admission queue"), std::string::npos);
  EXPECT_TRUE(holder.get().ok());
  EXPECT_EQ(solves.load(), 0) << "expired queued work must never solve";
}

TEST(Scheduler, GenerousDeadlineDoesNotPerturbTheResult) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  msvc::Scheduler scheduler(registry, {.threads = 1});
  const auto handle = msvc::intern(small_instance());
  msvc::SubmitOptions options;
  options.deadline =
      std::chrono::steady_clock::now() + std::chrono::hours(1);
  auto with_deadline = scheduler.submit("wdeq", handle, options);
  auto without = scheduler.submit("wdeq", handle);
  const auto a = with_deadline.get();
  const auto b = without.get();
  ASSERT_TRUE(a.ok()) << a.error().to_string();
  ASSERT_TRUE(b.ok()) << b.error().to_string();
  EXPECT_EQ(a.objective(), b.objective());
  EXPECT_EQ(a.completions(), b.completions());
}

TEST(Scheduler, DestructorDrainsPendingWork) {
  // Tickets taken before the scheduler dies must still resolve (the
  // destructor closes admission and drains the queue, it does not drop it).
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto handle = msvc::intern(small_instance());
  std::vector<msvc::Ticket> tickets;
  {
    msvc::Scheduler scheduler(registry, {.threads = 2});
    for (int i = 0; i < 16; ++i) {
      tickets.push_back(scheduler.submit("wdeq", handle));
    }
  }  // ~Scheduler joins workers
  for (auto& ticket : tickets) {
    EXPECT_TRUE(ticket.get().ok());
  }
}
