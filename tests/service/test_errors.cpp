// Typed-error coverage: every ErrorCode is producible through the public
// API, and failures round-trip through write_results deterministically
// (stable `code=` names a client can parse back into the enum).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "malsched/net/frame.hpp"
#include "malsched/net/socket.hpp"
#include "malsched/service/scheduler.hpp"
#include "malsched/service/service.hpp"
#include "malsched/service/solver_registry.hpp"
#include "malsched/shard/router.hpp"

namespace mc = malsched::core;
namespace mnet = malsched::net;
namespace msvc = malsched::service;
namespace mshard = malsched::shard;

namespace {

// The library's own enumeration, so a newly added code is covered here
// without touching this file.
std::vector<msvc::ErrorCode> all_codes() {
  return {std::begin(msvc::kAllErrorCodes), std::end(msvc::kAllErrorCodes)};
}

mc::Instance small_instance() {
  return mc::Instance(2.0, {{1.0, 1.0, 1.0}, {2.0, 2.0, 0.5}});
}

// One genuinely-produced failure per code, through the public surface.
std::vector<msvc::SolveResult> produce_all_failures() {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  std::vector<msvc::SolveResult> failures;

  // UnknownSolver: dispatch to a name nobody registered.
  failures.push_back(registry.solve("no-such-solver", small_instance()));

  // SizeGuard: the optimal solver beyond its n <= 18 guard.
  failures.push_back(registry.solve(
      "optimal",
      mc::Instance(4.0, std::vector<mc::Task>(19, {1.0, 1.0, 1.0}))));

  // ParseError: a batch request naming an instance that does not exist.
  std::string error;
  const auto batch = msvc::parse_batch(
      "instance a\nprocessors 2\ntask 1 1 1\nend\n"
      "solve wdeq ghost\n",
      &error);
  EXPECT_TRUE(batch.has_value()) << error;
  auto report = msvc::run_service(*batch, registry, {});
  failures.push_back(report.results.at(0));

  // SolverFailure: wdeq rejects a runnable zero-weight task.
  failures.push_back(registry.solve(
      "wdeq", mc::Instance(2.0, {{1.0, 1.0, 0.0}, {1.0, 1.0, 1.0}})));

  // QueueClosed: submit after Scheduler::close().
  {
    msvc::Scheduler scheduler(registry, {.threads = 1});
    scheduler.close();
    auto ticket =
        scheduler.submit("wdeq", msvc::intern(small_instance()));
    failures.push_back(ticket.get());
  }

  // Cancelled: a still-queued request abandoned via Ticket::cancel().  A
  // latch solver occupies the single worker, so the second request is
  // guaranteed to be in the admission queue when the cancel lands.
  {
    std::atomic<bool> released{false};
    auto blocking = msvc::SolverRegistry::with_default_solvers();
    blocking.register_solver(
        "blocker",
        [&released](const mc::Instance& inst) {
          while (!released.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          return msvc::SolveResult::success(
              "", msvc::SolveOutput{1.0, 1.0,
                                    std::vector<double>(inst.size(), 1.0)});
        },
        /*order_invariant=*/false, "test blocker", /*cacheable=*/false);
    msvc::Scheduler scheduler(blocking, {.threads = 1});
    auto holder = scheduler.submit("blocker", msvc::intern(small_instance()));
    // A vanishing priority weight ranks this request far behind the blocker
    // under the default priority admission, so the worker is guaranteed to
    // pop the blocker first and this request is still queued at cancel().
    auto queued = scheduler.submit("wdeq", msvc::intern(small_instance()),
                                   {.priority_weight = 1e-9});
    EXPECT_TRUE(queued.cancel());
    failures.push_back(queued.get());
    released.store(true, std::memory_order_release);
    EXPECT_TRUE(holder.get().ok());
  }

  // DeadlineExceeded: a deadline that already passed at submission; the
  // worker resolves it at pop time without starting a solve.
  {
    msvc::Scheduler scheduler(registry, {.threads = 1});
    msvc::SubmitOptions options;
    options.deadline = std::chrono::steady_clock::now();
    auto ticket =
        scheduler.submit("wdeq", msvc::intern(small_instance()), options);
    failures.push_back(ticket.get());
  }

  // ProtocolMismatch: the router dials a "worker" that greets with garbage;
  // the versioned handshake rejects it and requests fail typed.  TCP
  // transport, so no fork happens despite the threads above.
  {
    std::string net_error;
    std::uint16_t port = 0;
    const int listen_fd =
        mnet::tcp_listen({"127.0.0.1", 0}, &net_error, &port);
    EXPECT_GE(listen_fd, 0) << net_error;
    std::thread impostor([listen_fd] {
      std::string accept_error;
      const int fd = mnet::tcp_accept(
          listen_fd, std::chrono::milliseconds(10000), &accept_error);
      if (fd >= 0) {
        (void)mnet::write_frame(fd, "HTTP/1.1 200 OK");
        std::string ignored;
        (void)mnet::read_frame(fd, &ignored);  // drain the router's hello
        ::close(fd);
      }
    });
    mshard::RouterOptions router_options;
    router_options.tcp_workers = {{"127.0.0.1", port}};
    mshard::ShardRouter router(registry, router_options);
    impostor.join();
    ::close(listen_fd);
    const auto batch = msvc::parse_batch(
        "instance a\nprocessors 2\ntask 1 1 1\nend\nsolve wdeq a\n", &error);
    EXPECT_TRUE(batch.has_value()) << error;
    failures.push_back(router.run(*batch).results.at(0));
  }
  return failures;
}

}  // namespace

TEST(Errors, CodeNamesAreUniqueAndRoundTrip) {
  std::set<std::string> names;
  for (const msvc::ErrorCode code : all_codes()) {
    const std::string name = msvc::error_code_name(code);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    const auto parsed = msvc::parse_error_code(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_FALSE(msvc::parse_error_code("no-such-code").has_value());
  EXPECT_FALSE(msvc::parse_error_code("").has_value());
}

TEST(Errors, ToStringLeadsWithTheCodeName) {
  const msvc::SolveError error{msvc::ErrorCode::SizeGuard, "n too large"};
  EXPECT_EQ(error.to_string(), "size-guard: n too large");
}

TEST(Errors, EveryCodeIsProducibleThroughThePublicApi) {
  const auto failures = produce_all_failures();
  ASSERT_EQ(failures.size(), all_codes().size());
  for (std::size_t i = 0; i < failures.size(); ++i) {
    ASSERT_FALSE(failures[i].ok()) << i;
    EXPECT_EQ(failures[i].error().code, all_codes()[i])
        << "failure " << i << ": " << failures[i].error().to_string();
    EXPECT_FALSE(failures[i].error().detail.empty()) << i;
  }
}

TEST(Errors, FailuresRoundTripThroughWriteResultsDeterministically) {
  msvc::ServiceReport report;
  report.results = produce_all_failures();

  const std::string first = msvc::format_results(report);
  const std::string second = msvc::format_results(report);
  EXPECT_EQ(first, second) << "write_results must be deterministic";

  // Each line carries `code=<name>` that parses back to the original enum.
  std::istringstream lines(first);
  std::string line;
  std::size_t index = 0;
  while (std::getline(lines, line)) {
    ASSERT_LT(index, report.results.size());
    EXPECT_NE(line.find("status=error"), std::string::npos) << line;
    const auto pos = line.find("code=");
    ASSERT_NE(pos, std::string::npos) << line;
    const auto end = line.find(' ', pos);
    const std::string name = line.substr(pos + 5, end - (pos + 5));
    const auto parsed = msvc::parse_error_code(name);
    ASSERT_TRUE(parsed.has_value()) << "unparseable code '" << name << "'";
    EXPECT_EQ(*parsed, report.results[index].error().code) << line;
    ++index;
  }
  EXPECT_EQ(index, report.results.size());
}

TEST(Errors, SuccessAndErrorAccessorsAreExclusive) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto ok = registry.solve("wdeq", small_instance());
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_GT(ok.objective(), 0.0);

  const auto bad = registry.solve("bogus", small_instance());
  ASSERT_FALSE(bad.ok());
  EXPECT_FALSE(static_cast<bool>(bad));
  EXPECT_EQ(bad.error().code, msvc::ErrorCode::UnknownSolver);

  // Default-constructed results are failures until filled in.
  EXPECT_FALSE(msvc::SolveResult{}.ok());
}
