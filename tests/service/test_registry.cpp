#include "malsched/service/solver_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "malsched/core/optimal.hpp"
#include "malsched/sim/engine.hpp"
#include "malsched/sim/policy.hpp"

namespace mc = malsched::core;
namespace msvc = malsched::service;
namespace msim = malsched::sim;

namespace {

mc::Instance small_instance() {
  return mc::Instance(4.0, {{2.0, 2.0, 1.0}, {1.5, 1.0, 0.5}, {3.0, 4.0, 2.0}});
}

}  // namespace

TEST(Registry, DefaultZooCoversPoliciesAndExactPaths) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto names = registry.names();
  for (const char* expected :
       {"wdeq", "deq", "wrr", "fifo-rigid", "smith-greedy", "greedy-heuristic",
        "water-fill-smith", "order-lp-smith", "optimal"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing solver " << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, WdeqDispatchMatchesDirectEngineRun) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto inst = small_instance();
  const auto result = registry.solve("wdeq", inst);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.solver, "wdeq");

  const auto direct = msim::run_policy(inst, *msim::make_wdeq_policy());
  EXPECT_DOUBLE_EQ(result.objective(), direct.weighted_completion);
  ASSERT_EQ(result.completions().size(), inst.size());
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.completions()[i], direct.completions[i]);
  }
}

TEST(Registry, OptimalDispatchMatchesEnumeration) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto inst = small_instance();
  const auto result = registry.solve("optimal", inst);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const auto direct = mc::optimal_by_enumeration(inst);
  EXPECT_NEAR(result.objective(), direct.objective, 1e-9);
}

TEST(Registry, OptimalGuardsLargeInstances) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  std::vector<mc::Task> tasks(19, {1.0, 1.0, 1.0});
  const auto result = registry.solve("optimal", mc::Instance(4.0, tasks));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, msvc::ErrorCode::SizeGuard);
  EXPECT_NE(result.error().detail.find("n <= "), std::string::npos);
}

TEST(Registry, OptimalServesMidSizeInstancesViaBranchAndBound) {
  // n = 12 was refused under the enumeration-only guard; branch-and-bound
  // now serves it.  12 unit tasks on P = 4 have a closed-form optimum: any
  // order is optimal, boundaries at 1, 2, 3 with four completions each,
  // so sum wC = 4*(1+2+3) = 24.
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  std::vector<mc::Task> tasks(12, {1.0, 1.0, 1.0});
  const auto result = registry.solve("optimal", mc::Instance(4.0, tasks));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_NEAR(result.objective(), 24.0, 1e-6);
  EXPECT_EQ(result.completions().size(), 12u);
}

TEST(Registry, UnknownSolverIsAnErrorNotACrash) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto result = registry.solve("no-such-solver", small_instance());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, msvc::ErrorCode::UnknownSolver);
  EXPECT_NE(result.error().detail.find("no-such-solver"), std::string::npos);
  EXPECT_EQ(result.solver, "no-such-solver");
}

TEST(Registry, EmptyInstanceShortCircuitsForEverySolver) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const mc::Instance empty(2.0, {});
  for (const auto& name : registry.names()) {
    const auto result = registry.solve(name, empty);
    ASSERT_TRUE(result.ok()) << name << ": " << result.error().to_string();
    EXPECT_EQ(result.objective(), 0.0) << name;
    EXPECT_TRUE(result.completions().empty()) << name;
  }
}

TEST(Registry, AllSolversAgreeOnObjectiveOrdering) {
  // Every ok solver result must be a valid upper bound on the optimum; the
  // LP/optimal pair anchors the scale.
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto inst = small_instance();
  const auto optimal = registry.solve("optimal", inst);
  ASSERT_TRUE(optimal.ok());
  for (const auto& name : registry.names()) {
    const auto result = registry.solve(name, inst);
    ASSERT_TRUE(result.ok()) << name << ": " << result.error().to_string();
    EXPECT_GE(result.objective(), optimal.objective() - 1e-6) << name;
  }
}

TEST(Registry, WeightSharingSolversRejectNonpositiveWeights) {
  // core::wdeq_shares aborts the process on zero weights; the service must
  // turn that class of input into an error result instead.
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const mc::Instance zero_weight(2.0, {{1.0, 1.0, 0.0}, {1.0, 2.0, 1.0}});
  for (const char* solver : {"wdeq", "wrr"}) {
    const auto result = registry.solve(solver, zero_weight);
    ASSERT_FALSE(result.ok()) << solver;
    EXPECT_EQ(result.error().code, msvc::ErrorCode::SolverFailure) << solver;
    EXPECT_NE(result.error().detail.find("positive weights"),
              std::string::npos)
        << solver;
    EXPECT_NE(result.error().detail.find("task 0"), std::string::npos)
        << solver;
  }
  // Solvers that only use weights in the objective still serve it.
  for (const char* solver : {"deq", "smith-greedy", "greedy-heuristic",
                             "optimal"}) {
    const auto result = registry.solve(solver, zero_weight);
    EXPECT_TRUE(result.ok()) << solver << ": " << result.error().to_string();
  }
  // A zero-volume task may carry zero weight: it is never alive.
  const mc::Instance zero_volume(2.0, {{0.0, 1.0, 0.0}, {1.0, 2.0, 1.0}});
  EXPECT_TRUE(registry.solve("wdeq", zero_volume).ok());
}

TEST(Registry, EngineSolversRejectDegenerateWidths) {
  // A runnable task with width <= the engine tolerance starves every
  // rate-proportional policy and would trip the engine's process-aborting
  // safety valve; the service must reject it as a per-request error.
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const mc::Instance tiny_width(2.0, {{1.0, 1e-10, 1.0}, {1.0, 1.0, 1.0}});
  for (const char* solver : {"wdeq", "deq", "wrr", "fifo-rigid",
                             "smith-greedy"}) {
    const auto result = registry.solve(solver, tiny_width);
    ASSERT_FALSE(result.ok()) << solver;
    EXPECT_EQ(result.error().code, msvc::ErrorCode::SolverFailure) << solver;
    EXPECT_NE(result.error().detail.find("width"), std::string::npos)
        << solver;
    EXPECT_NE(result.error().detail.find("task 0"), std::string::npos)
        << solver;
  }
  // Zero-volume tasks never run, so a tiny width there is harmless.
  const mc::Instance tiny_but_idle(2.0, {{0.0, 1e-10, 1.0}, {1.0, 1.0, 1.0}});
  EXPECT_TRUE(registry.solve("wdeq", tiny_but_idle).ok());
}

TEST(Registry, EngineAndGreedySolversAreCancellable) {
  // PR 4 left `optimal` the only cancellation-aware solver; the token now
  // threads through the fluid engine (one poll per event) and the greedy
  // order search (one poll per candidate), so every default solver that can
  // run for more than a moment aborts with a typed Cancelled.
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  mc::CancelSource source;
  source.request_cancel();
  msvc::SolveContext context;
  context.cancel = source.token();

  for (const char* solver : {"wdeq", "deq", "wrr", "fifo-rigid",
                             "smith-greedy", "greedy-heuristic", "optimal"}) {
    ASSERT_TRUE(registry.find(solver)->cancellable) << solver;
    const auto result = registry.solve(solver, small_instance(), context);
    ASSERT_FALSE(result.ok()) << solver;
    EXPECT_EQ(result.error().code, msvc::ErrorCode::Cancelled) << solver;
  }
  // Unfired tokens must not perturb results.
  msvc::SolveContext live;
  live.cancel = mc::CancelSource().token();
  const auto with_token = registry.solve("wdeq", small_instance(), live);
  const auto without = registry.solve("wdeq", small_instance());
  ASSERT_TRUE(with_token.ok());
  EXPECT_EQ(with_token.objective(), without.objective());
}

TEST(Registry, CustomSolverRegistrationAndReplacement) {
  msvc::SolverRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  registry.register_solver("stub", [](const mc::Instance&) {
    return msvc::SolveResult::success("", msvc::SolveOutput{42.0, 1.0, {}});
  });
  EXPECT_TRUE(registry.contains("stub"));
  EXPECT_EQ(registry.solve("stub", small_instance()).objective(), 42.0);

  registry.register_solver("stub", [](const mc::Instance&) {
    return msvc::SolveResult::success("", msvc::SolveOutput{7.0, 1.0, {}});
  });
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.solve("stub", small_instance()).objective(), 7.0);
}
