// TinyLFU admission filter: count-min estimates must never under-count
// within a sample window, the doorkeeper must absorb exactly the first
// occurrence of a key, halving must decay popularity and clear the
// doorkeeper, and the admission rule must be "victim strictly more popular
// rejects; ties admit".

#include "malsched/service/tinylfu.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "malsched/support/rng.hpp"

namespace msvc = malsched::service;
namespace ms = malsched::support;

namespace {

// Arbitrary well-mixed key hashes (the filter expects pre-hashed input).
std::uint64_t key(std::uint64_t id) {
  std::uint64_t state = id * 0x9e3779b97f4a7c15ULL + 1;
  return ms::splitmix64(state);
}

msvc::TinyLfuOptions small_options(std::size_t sample_size = 0) {
  msvc::TinyLfuOptions options;
  options.counters = 1 << 8;
  options.sample_size = sample_size;
  return options;
}

}  // namespace

TEST(TinyLfu, FreshFilterEstimatesZero) {
  msvc::TinyLfu lfu(small_options());
  for (std::uint64_t id = 0; id < 64; ++id) {
    EXPECT_EQ(lfu.estimate(key(id)), 0u);
  }
  EXPECT_EQ(lfu.sampled(), 0u);
  EXPECT_EQ(lfu.resets(), 0u);
}

TEST(TinyLfu, DoorkeeperAbsorbsExactlyTheFirstOccurrence) {
  msvc::TinyLfu lfu(small_options());
  const std::uint64_t k = key(1);
  lfu.record(k);
  // First sighting: doorkeeper bit only, sketch untouched.
  EXPECT_EQ(lfu.estimate(k), 1u);
  lfu.record(k);
  // Second sighting: doorkeeper + one sketch increment.
  EXPECT_EQ(lfu.estimate(k), 2u);
}

TEST(TinyLfu, EstimateNeverUndercountsWithinAWindow) {
  // Count-min with conservative increment over-estimates but never
  // under-estimates; the doorkeeper contributes the absorbed first
  // occurrence back.  Saturation caps the answer at kMaxEstimate.
  msvc::TinyLfu lfu(small_options(/*sample_size=*/1 << 20));
  for (std::uint64_t id = 0; id < 32; ++id) {
    const std::uint32_t count = 1 + static_cast<std::uint32_t>(id % 20);
    for (std::uint32_t c = 0; c < count; ++c) {
      lfu.record(key(id));
    }
  }
  for (std::uint64_t id = 0; id < 32; ++id) {
    const std::uint32_t count = 1 + static_cast<std::uint32_t>(id % 20);
    const std::uint32_t expected =
        count < msvc::TinyLfu::kMaxEstimate ? count
                                            : msvc::TinyLfu::kMaxEstimate;
    EXPECT_GE(lfu.estimate(key(id)), expected) << "id " << id;
    EXPECT_LE(lfu.estimate(key(id)), msvc::TinyLfu::kMaxEstimate);
  }
}

TEST(TinyLfu, SaturatesAtMaxEstimate) {
  msvc::TinyLfu lfu(small_options(/*sample_size=*/1 << 20));
  const std::uint64_t k = key(9);
  for (int c = 0; c < 200; ++c) {
    lfu.record(k);
  }
  EXPECT_EQ(lfu.estimate(k), msvc::TinyLfu::kMaxEstimate);
}

TEST(TinyLfu, HalvingDecaysCountsAndClearsTheDoorkeeper) {
  // sample_size = 16: the 16th record triggers the reset.
  msvc::TinyLfu lfu(small_options(/*sample_size=*/16));
  const std::uint64_t hot = key(1);
  const std::uint64_t once = key(2);
  for (int c = 0; c < 10; ++c) {
    lfu.record(hot);  // doorkeeper + 9 sketch increments -> estimate 10
  }
  lfu.record(once);  // doorkeeper only -> estimate 1
  EXPECT_EQ(lfu.estimate(hot), 10u);
  EXPECT_EQ(lfu.estimate(once), 1u);

  for (std::uint64_t id = 10; id < 15; ++id) {
    lfu.record(key(id));  // 5 more events: the last one fills the window
  }
  EXPECT_EQ(lfu.resets(), 1u);
  EXPECT_EQ(lfu.sampled(), 0u);
  // The hot key's sketch count 9 halves to 4; its doorkeeper bit is gone.
  EXPECT_EQ(lfu.estimate(hot), 4u);
  // A doorkeeper-only key loses its entire history.
  EXPECT_EQ(lfu.estimate(once), 0u);
}

TEST(TinyLfu, AdmissionRejectsOnlyStrictlyMorePopularVictims) {
  msvc::TinyLfu lfu(small_options(/*sample_size=*/1 << 20));
  const std::uint64_t victim = key(1);
  const std::uint64_t candidate = key(2);
  for (int c = 0; c < 8; ++c) {
    lfu.record(victim);
  }
  // Unseen candidate vs popular victim: reject.
  EXPECT_FALSE(lfu.admit(candidate, victim));
  // The candidate accrues popularity with each arrival and eventually wins.
  for (int c = 0; c < 7; ++c) {
    lfu.record(candidate);
    EXPECT_FALSE(lfu.admit(candidate, victim)) << c;
  }
  lfu.record(candidate);  // 8th: tie
  EXPECT_TRUE(lfu.admit(candidate, victim)) << "ties must admit";
  // Fresh vs fresh is a tie too — an unskewed stream behaves like LRU.
  EXPECT_TRUE(lfu.admit(key(3), key(4)));
}

TEST(TinyLfu, SkewedStreamKeepsHotKeysSeparableFromColdOnes) {
  // A zipf-ish stream: a handful of hot keys among a long singleton tail.
  // After the stream (halvings included), every hot key must out-score
  // every cold key — the separation the cache admission contest relies on.
  // The short sample window keeps the doorkeeper's bloom load per window
  // low enough that tail false positives stay rare.
  msvc::TinyLfuOptions options;
  options.counters = 1 << 12;
  options.sample_size = 1 << 12;
  msvc::TinyLfu lfu(options);
  ms::Rng rng(20120521);
  for (int event = 0; event < 20000; ++event) {
    if (rng.bernoulli(0.5)) {
      lfu.record(key(static_cast<std::uint64_t>(rng.uniform_int(0, 7))));
    } else {
      lfu.record(key(1000 + static_cast<std::uint64_t>(event)));
    }
  }
  std::uint32_t min_hot = msvc::TinyLfu::kMaxEstimate;
  for (std::uint64_t id = 0; id < 8; ++id) {
    min_hot = std::min(min_hot, lfu.estimate(key(id)));
  }
  std::uint32_t max_cold = 0;
  for (std::uint64_t id = 0; id < 64; ++id) {
    max_cold = std::max(max_cold, lfu.estimate(key(5000000 + id)));
  }
  EXPECT_GT(min_hot, max_cold)
      << "hot " << min_hot << " vs never-seen " << max_cold;
}

TEST(TinyLfu, RoundsCountersUpToAPowerOfTwo) {
  msvc::TinyLfuOptions options;
  options.counters = 100;
  msvc::TinyLfu lfu(options);
  EXPECT_EQ(lfu.counters_per_row(), 128u);
  EXPECT_EQ(lfu.sample_size(), 16u * 128u);
}
