#include "malsched/service/canonical.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "malsched/core/generators.hpp"
#include "malsched/sim/engine.hpp"
#include "malsched/sim/policy.hpp"
#include "malsched/support/rng.hpp"

namespace mc = malsched::core;
namespace msvc = malsched::service;
namespace msim = malsched::sim;
namespace ms = malsched::support;

namespace {

mc::Instance base_instance() {
  return mc::Instance(4.0, {{2.0, 2.0, 1.0}, {1.0, 1.0, 0.5}, {0.5, 4.0, 2.0}});
}

}  // namespace

TEST(Canonical, NormalFormHasUnitSums) {
  const auto form = msvc::canonicalize(base_instance());
  EXPECT_DOUBLE_EQ(form.instance.processors(), 1.0);
  EXPECT_NEAR(form.instance.total_volume(), 1.0, 1e-12);
  EXPECT_NEAR(form.instance.total_weight(), 1.0, 1e-12);
}

TEST(Canonical, PowerOfTwoScalingSharesTheKey) {
  const auto inst = base_instance();
  const auto form = msvc::canonicalize(inst);

  // Volumes x4, weights x0.5, machine (P and widths) x2: all exact binary
  // scalings, so the quotient map lands on bit-identical canonical doubles.
  std::vector<mc::Task> tasks;
  for (const auto& t : inst.tasks()) {
    tasks.push_back({t.volume * 4.0, t.width * 2.0, t.weight * 0.5});
  }
  const mc::Instance scaled(inst.processors() * 2.0, std::move(tasks));
  const auto scaled_form = msvc::canonicalize(scaled);

  EXPECT_EQ(form.key, scaled_form.key);
  EXPECT_EQ(msvc::canonical_text(form), msvc::canonical_text(scaled_form));
  // Scales differ: volumes x4 stretch time x4, machine x2 shrinks it x2.
  EXPECT_DOUBLE_EQ(scaled_form.time_scale, form.time_scale * 2.0);
}

TEST(Canonical, TaskPermutationSharesTheKey) {
  const auto inst = base_instance();
  const mc::Instance permuted(
      4.0, {inst.task(2), inst.task(0), inst.task(1)});
  const auto a = msvc::canonicalize(inst);
  const auto b = msvc::canonicalize(permuted);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(msvc::canonical_text(a), msvc::canonical_text(b));
}

TEST(Canonical, PermuteFalseKeepsTaskOrder) {
  const auto inst = base_instance();
  msvc::CanonicalOptions options;
  options.permute = false;
  const auto form = msvc::canonicalize(inst, options);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(form.permutation[i], i);
  }
  // Order-sensitive canonical forms distinguish permuted instances.
  const mc::Instance permuted(4.0, {inst.task(2), inst.task(0), inst.task(1)});
  EXPECT_NE(msvc::canonical_text(form),
            msvc::canonical_text(msvc::canonicalize(permuted, options)));
}

TEST(Canonical, DistinctInstancesGetDistinctKeys) {
  const auto a = msvc::canonicalize(base_instance());
  const auto b = msvc::canonicalize(
      mc::Instance(4.0, {{2.0, 2.0, 1.0}, {1.0, 1.0, 0.5}, {0.5, 4.0, 2.5}}));
  EXPECT_NE(a.key, b.key);
  EXPECT_NE(msvc::canonical_text(a), msvc::canonical_text(b));
}

TEST(Canonical, DenormalizedSolveMatchesDirectSolve) {
  // Solving the canonical instance and mapping back must agree with solving
  // the original directly (scale-equivariance of the fluid policies).
  ms::Rng rng(41);
  const auto policy = msim::make_wdeq_policy();
  for (int rep = 0; rep < 25; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 6;
    config.processors = 3.0;
    const auto inst = mc::generate(config, rng);

    const auto form = msvc::canonicalize(inst);
    const auto canonical_run = msim::run_policy(form.instance, *policy);
    const auto direct_run = msim::run_policy(inst, *policy);

    const auto mapped =
        msvc::denormalize_completions(form, canonical_run.completions);
    ASSERT_EQ(mapped.size(), inst.size());
    for (std::size_t i = 0; i < inst.size(); ++i) {
      EXPECT_NEAR(mapped[i], direct_run.completions[i],
                  1e-9 * (1.0 + direct_run.completions[i]))
          << "rep " << rep << " task " << i;
    }
    EXPECT_NEAR(form.objective_scale * canonical_run.weighted_completion,
                direct_run.weighted_completion,
                1e-9 * (1.0 + direct_run.weighted_completion))
        << "rep " << rep;
  }
}

TEST(Canonical, NegativeZeroSharesKeyAndText) {
  // -0.0 weights survive parsing ("task 1 1 -0"); both zero encodings must
  // land on one cache entry.
  const mc::Instance pos(2.0, {{1.0, 1.0, 0.0}, {1.0, 2.0, 1.0}});
  const mc::Instance neg(2.0, {{1.0, 1.0, -0.0}, {1.0, 2.0, 1.0}});
  const auto a = msvc::canonicalize(pos);
  const auto b = msvc::canonicalize(neg);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(msvc::canonical_text(a), msvc::canonical_text(b));
}

TEST(Canonical, ZeroTaskAndZeroSumEdgeCases) {
  const auto empty = msvc::canonicalize(mc::Instance(3.0, {}));
  EXPECT_EQ(empty.instance.size(), 0u);
  EXPECT_DOUBLE_EQ(empty.instance.processors(), 1.0);
  EXPECT_TRUE(msvc::denormalize_completions(empty, {}).empty());

  // All-zero volumes and weights: scaling must not divide by zero.
  const auto degenerate = msvc::canonicalize(
      mc::Instance(2.0, {{0.0, 1.0, 0.0}, {0.0, 2.0, 0.0}}));
  EXPECT_DOUBLE_EQ(degenerate.instance.total_volume(), 0.0);
  EXPECT_DOUBLE_EQ(degenerate.instance.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(degenerate.time_scale, 1.0 / 2.0);
}
