#include "malsched/service/canonical.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "malsched/core/generators.hpp"
#include "malsched/service/scheduler.hpp"
#include "malsched/service/service.hpp"
#include "malsched/service/solver_registry.hpp"
#include "malsched/sim/engine.hpp"
#include "malsched/sim/policy.hpp"
#include "malsched/support/rng.hpp"

namespace mc = malsched::core;
namespace msvc = malsched::service;
namespace msim = malsched::sim;
namespace ms = malsched::support;

namespace {

mc::Instance base_instance() {
  return mc::Instance(4.0, {{2.0, 2.0, 1.0}, {1.0, 1.0, 0.5}, {0.5, 4.0, 2.0}});
}

// Hexfloat rendering: failures show the exact bit-level divergence instead
// of two identically-printed decimals.
std::string hex(double d) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%a", d);
  return buffer;
}

// Rescales all three symmetry axes: volumes x volume_scale, machine
// (P and widths) x machine_scale, weights x weight_scale.
mc::Instance rescale(const mc::Instance& inst, double volume_scale,
                     double machine_scale, double weight_scale) {
  std::vector<mc::Task> tasks;
  tasks.reserve(inst.size());
  for (const auto& t : inst.tasks()) {
    tasks.push_back({t.volume * volume_scale, t.width * machine_scale,
                     t.weight * weight_scale});
  }
  return mc::Instance(inst.processors() * machine_scale, std::move(tasks));
}

}  // namespace

TEST(Canonical, NormalFormHasUnitSums) {
  const auto form = msvc::canonicalize(base_instance());
  EXPECT_DOUBLE_EQ(form.instance.processors(), 1.0);
  EXPECT_NEAR(form.instance.total_volume(), 1.0, 1e-12);
  EXPECT_NEAR(form.instance.total_weight(), 1.0, 1e-12);
}

TEST(Canonical, PowerOfTwoScalingSharesTheKey) {
  const auto inst = base_instance();
  const auto form = msvc::canonicalize(inst);

  // Volumes x4, weights x0.5, machine (P and widths) x2: all exact binary
  // scalings, so the quotient map lands on bit-identical canonical doubles.
  std::vector<mc::Task> tasks;
  for (const auto& t : inst.tasks()) {
    tasks.push_back({t.volume * 4.0, t.width * 2.0, t.weight * 0.5});
  }
  const mc::Instance scaled(inst.processors() * 2.0, std::move(tasks));
  const auto scaled_form = msvc::canonicalize(scaled);

  EXPECT_EQ(form.key, scaled_form.key);
  EXPECT_EQ(msvc::canonical_text(form), msvc::canonical_text(scaled_form));
  // Scales differ: volumes x4 stretch time x4, machine x2 shrinks it x2.
  EXPECT_DOUBLE_EQ(scaled_form.time_scale, form.time_scale * 2.0);
}

TEST(Canonical, TaskPermutationSharesTheKey) {
  const auto inst = base_instance();
  const mc::Instance permuted(
      4.0, {inst.task(2), inst.task(0), inst.task(1)});
  const auto a = msvc::canonicalize(inst);
  const auto b = msvc::canonicalize(permuted);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(msvc::canonical_text(a), msvc::canonical_text(b));
}

TEST(Canonical, PermuteFalseKeepsTaskOrder) {
  const auto inst = base_instance();
  msvc::CanonicalOptions options;
  options.permute = false;
  const auto form = msvc::canonicalize(inst, options);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(form.permutation[i], i);
  }
  // Order-sensitive canonical forms distinguish permuted instances.
  const mc::Instance permuted(4.0, {inst.task(2), inst.task(0), inst.task(1)});
  EXPECT_NE(msvc::canonical_text(form),
            msvc::canonical_text(msvc::canonicalize(permuted, options)));
}

TEST(Canonical, DistinctInstancesGetDistinctKeys) {
  const auto a = msvc::canonicalize(base_instance());
  const auto b = msvc::canonicalize(
      mc::Instance(4.0, {{2.0, 2.0, 1.0}, {1.0, 1.0, 0.5}, {0.5, 4.0, 2.5}}));
  EXPECT_NE(a.key, b.key);
  EXPECT_NE(msvc::canonical_text(a), msvc::canonical_text(b));
}

TEST(Canonical, DenormalizedSolveMatchesDirectSolve) {
  // Solving the canonical instance and mapping back must agree with solving
  // the original directly (scale-equivariance of the fluid policies).
  ms::Rng rng(41);
  const auto policy = msim::make_wdeq_policy();
  for (int rep = 0; rep < 25; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 6;
    config.processors = 3.0;
    const auto inst = mc::generate(config, rng);

    const auto form = msvc::canonicalize(inst);
    const auto canonical_run = msim::run_policy(form.instance, *policy);
    const auto direct_run = msim::run_policy(inst, *policy);

    const auto mapped =
        msvc::denormalize_completions(form, canonical_run.completions);
    ASSERT_EQ(mapped.size(), inst.size());
    for (std::size_t i = 0; i < inst.size(); ++i) {
      EXPECT_NEAR(mapped[i], direct_run.completions[i],
                  1e-9 * (1.0 + direct_run.completions[i]))
          << "rep " << rep << " task " << i;
    }
    EXPECT_NEAR(form.objective_scale * canonical_run.weighted_completion,
                direct_run.weighted_completion,
                1e-9 * (1.0 + direct_run.weighted_completion))
        << "rep " << rep;
  }
}

TEST(Canonical, QuantizeRatioFindsMinimalDenominatorRationals) {
  // Exactly representable rationals are fixed points.
  EXPECT_EQ(msvc::quantize_ratio(0.25), 0.25);
  EXPECT_EQ(msvc::quantize_ratio(1.0), 1.0);
  EXPECT_EQ(msvc::quantize_ratio(0.5714285714285714),  // nearest(4/7)
            4.0 / 7.0);
  // Ulp-perturbed ratios snap back to the rational's own double.
  const double third = 1.0 / 3.0;
  EXPECT_EQ(msvc::quantize_ratio(std::nextafter(third, 0.0)), third);
  EXPECT_EQ(msvc::quantize_ratio(std::nextafter(third, 1.0)), third);
  // Minimal denominator, not nearest: anything within the window of 1/2
  // maps to 1/2, not to some closer 499999/999998.
  EXPECT_EQ(msvc::quantize_ratio(0.5 * (1.0 + 4e-13)), 0.5);
  // Non-positive and non-finite inputs pass through untouched.
  EXPECT_EQ(msvc::quantize_ratio(0.0), 0.0);
  EXPECT_EQ(msvc::quantize_ratio(-0.75), -0.75);
  EXPECT_TRUE(std::isnan(msvc::quantize_ratio(
      std::numeric_limits<double>::quiet_NaN())));
  // The result always stays inside the relative window, and ulp-level
  // perturbations of the input (the twin property the cache key relies on)
  // land on the same snapped value.  The twin property cannot be universal:
  // any input-to-rational map is a step function, and a twin pair can
  // straddle a step when the minimal-denominator rational sits within an
  // ulp of the window boundary (probability ~ulp/window ~ 1e-4 per draw).
  // A straddle is a missed dedup — one extra cache miss — never a wrong
  // result, so the test pins the rate, not absolute agreement.
  ms::Rng rng(5150);
  int twin_mismatches = 0;
  for (int rep = 0; rep < 2000; ++rep) {
    const double r = rng.uniform(1e-6, 1e6);
    const double q = msvc::quantize_ratio(r);
    EXPECT_GE(q, r * (1.0 - 1.01 * msvc::kQuantizationTol)) << hex(r);
    EXPECT_LE(q, r * (1.0 + 1.01 * msvc::kQuantizationTol)) << hex(r);
    const double down = msvc::quantize_ratio(std::nextafter(r, 0.0));
    const double up = msvc::quantize_ratio(std::nextafter(r, 2e6));
    twin_mismatches += (down != q) + (up != q);
  }
  EXPECT_LE(twin_mismatches, 4) << "of 4000 twin draws";
}

TEST(Canonical, ArbitraryRescalingsShareKeyAndCanonicalInstance) {
  // The property the old power-of-two-only quotient lacked: *any* positive
  // rescaling of the three symmetry axes — 3x, 1/7x, 0.013x — lands on the
  // same key, the same text, and the same canonical instance bit for bit
  // (the rebuilt-from-rationals doubles, not merely close ones).
  const double scales[][3] = {{3.0, 1.0, 1.0},     {1.0, 7.0, 1.0},
                              {1.0, 1.0, 0.013},   {3.7, 1.9, 42.0},
                              {1.0 / 3.0, 5.0, 9.0}, {1e-3, 1e2, 1e4}};
  for (const mc::Family family : mc::all_families()) {
    ms::Rng rng(777 + static_cast<std::uint64_t>(family));
    for (int rep = 0; rep < 10; ++rep) {
      mc::GeneratorConfig config;
      config.family = family;
      config.num_tasks = 5;
      config.processors = 4.0;
      const auto inst = mc::generate(config, rng);
      const auto form = msvc::canonicalize(inst);
      for (const auto& s : scales) {
        const auto scaled_form =
            msvc::canonicalize(rescale(inst, s[0], s[1], s[2]));
        ASSERT_EQ(form.key, scaled_form.key)
            << mc::family_name(family) << " rep " << rep << " scales "
            << s[0] << "," << s[1] << "," << s[2];
        EXPECT_EQ(msvc::canonical_text(form),
                  msvc::canonical_text(scaled_form));
        for (std::size_t i = 0; i < form.instance.size(); ++i) {
          EXPECT_EQ(std::bit_cast<std::uint64_t>(form.instance.task(i).volume),
                    std::bit_cast<std::uint64_t>(
                        scaled_form.instance.task(i).volume))
              << hex(form.instance.task(i).volume) << " vs "
              << hex(scaled_form.instance.task(i).volume);
        }
        // The scales stay request-exact so results map back to the client's
        // own units: time stretches with volume, shrinks with the machine.
        EXPECT_NEAR(scaled_form.time_scale, form.time_scale * s[0] / s[1],
                    1e-12 * form.time_scale * s[0] / s[1]);
      }
    }
  }
}

TEST(Canonical, QuantizationTwinsShareTheKey) {
  // Twins from different arithmetic: 0.1 * 3 != 0.3 in doubles, but both
  // express the same real instance, so the quantized normal form must unify
  // them (the divide-only quotient kept them apart forever).
  const mc::Instance a(2.0, {{0.3, 1.0, 1.0}, {0.7, 2.0, 2.0}});
  const mc::Instance b(2.0, {{0.1 * 3.0, 1.0, 1.0}, {0.7, 2.0, 2.0}});
  ASSERT_NE(a.task(0).volume, b.task(0).volume) << "twins must differ in ulps";
  const auto fa = msvc::canonicalize(a);
  const auto fb = msvc::canonicalize(b);
  EXPECT_EQ(fa.key, fb.key);
  EXPECT_EQ(msvc::canonical_text(fa), msvc::canonical_text(fb));
}

TEST(Canonical, LegacyQuantizeOffDedupesOnlyExactScalings) {
  // quantize = false is the pre-rational quotient, kept for differential
  // benchmarking: power-of-two scalings still unify (exact binary ops) but
  // an odd rescaling drifts the ratios by an ulp and misses the key.
  const mc::Instance inst(4.0, {{0.1, 2.0, 1.0}, {0.2, 1.0, 0.5},
                                {0.7, 4.0, 2.0}});
  msvc::CanonicalOptions legacy;
  legacy.quantize = false;
  const auto form = msvc::canonicalize(inst, legacy);
  EXPECT_EQ(form.key,
            msvc::canonicalize(rescale(inst, 4.0, 2.0, 0.5), legacy).key);
  EXPECT_NE(form.key,
            msvc::canonicalize(rescale(inst, 3.0, 1.0, 1.0), legacy).key);
  // The quantized form unifies exactly that miss.
  EXPECT_EQ(msvc::canonicalize(inst).key,
            msvc::canonicalize(rescale(inst, 3.0, 1.0, 1.0)).key);
}

TEST(Canonical, CacheHitReplaysByteIdenticalResults) {
  // End-to-end byte parity: a request served from the cache must be
  // indistinguishable — bit for bit, and through the write_results text —
  // from the same request solved fresh.  Holds because every member of the
  // equivalence class solves the identical canonical instance and
  // denormalizes with its own request-exact scales.
  auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto inst = base_instance();
  // An odd rescaling + permutation of the base instance: hits the entry the
  // base solve filled only through the quantized normal form.
  const auto variant_base = rescale(inst, 3.0, 1.5, 7.0);
  const mc::Instance variant(variant_base.processors(),
                             {variant_base.task(2), variant_base.task(0),
                              variant_base.task(1)});

  msvc::Scheduler::Options options;
  options.threads = 1;
  msvc::Scheduler warm(registry, options);
  const auto seed = warm.submit("wdeq", inst).get();
  ASSERT_TRUE(seed.ok());
  auto via_cache = warm.submit("wdeq", variant).get();
  ASSERT_TRUE(via_cache.ok());
  EXPECT_TRUE(via_cache.cache_hit);

  msvc::Scheduler cold(registry, options);
  auto fresh = cold.submit("wdeq", variant).get();
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.cache_hit);

  EXPECT_EQ(std::bit_cast<std::uint64_t>(via_cache.objective()),
            std::bit_cast<std::uint64_t>(fresh.objective()))
      << hex(via_cache.objective()) << " vs " << hex(fresh.objective());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(via_cache.makespan()),
            std::bit_cast<std::uint64_t>(fresh.makespan()))
      << hex(via_cache.makespan()) << " vs " << hex(fresh.makespan());
  ASSERT_EQ(via_cache.completions().size(), fresh.completions().size());
  for (std::size_t i = 0; i < fresh.completions().size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(via_cache.completions()[i]),
              std::bit_cast<std::uint64_t>(fresh.completions()[i]))
        << "task " << i << ": " << hex(via_cache.completions()[i]) << " vs "
        << hex(fresh.completions()[i]);
  }

  msvc::ServiceReport replayed;
  replayed.results.push_back(std::move(via_cache));
  msvc::ServiceReport solved;
  solved.results.push_back(std::move(fresh));
  EXPECT_EQ(msvc::format_results(replayed), msvc::format_results(solved));
}

TEST(Canonical, NegativeZeroSharesKeyAndText) {
  // -0.0 weights survive parsing ("task 1 1 -0"); both zero encodings must
  // land on one cache entry.
  const mc::Instance pos(2.0, {{1.0, 1.0, 0.0}, {1.0, 2.0, 1.0}});
  const mc::Instance neg(2.0, {{1.0, 1.0, -0.0}, {1.0, 2.0, 1.0}});
  const auto a = msvc::canonicalize(pos);
  const auto b = msvc::canonicalize(neg);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(msvc::canonical_text(a), msvc::canonical_text(b));
}

TEST(Canonical, ZeroTaskAndZeroSumEdgeCases) {
  const auto empty = msvc::canonicalize(mc::Instance(3.0, {}));
  EXPECT_EQ(empty.instance.size(), 0u);
  EXPECT_DOUBLE_EQ(empty.instance.processors(), 1.0);
  EXPECT_TRUE(msvc::denormalize_completions(empty, {}).empty());

  // All-zero volumes and weights: scaling must not divide by zero.
  const auto degenerate = msvc::canonicalize(
      mc::Instance(2.0, {{0.0, 1.0, 0.0}, {0.0, 2.0, 0.0}}));
  EXPECT_DOUBLE_EQ(degenerate.instance.total_volume(), 0.0);
  EXPECT_DOUBLE_EQ(degenerate.instance.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(degenerate.time_scale, 1.0 / 2.0);
}
