#include "malsched/service/cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "malsched/support/thread_pool.hpp"

namespace msvc = malsched::service;
namespace ms = malsched::support;

namespace {

msvc::CachedSolve value_of(double objective) {
  msvc::CachedSolve value;
  value.objective = objective;
  value.makespan = objective / 2.0;
  value.completions = {objective, objective * 2.0};
  return value;
}

}  // namespace

TEST(Cache, PutGetRoundTrip) {
  msvc::ResultCache cache(16);
  EXPECT_FALSE((cache.get("a") != nullptr));
  cache.put("a", value_of(3.0));
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit != nullptr);
  EXPECT_DOUBLE_EQ(hit->objective, 3.0);
  EXPECT_DOUBLE_EQ(hit->makespan, 1.5);
  ASSERT_EQ(hit->completions.size(), 2u);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(Cache, PutReplacesExistingKey) {
  msvc::ResultCache cache(16);
  cache.put("k", value_of(1.0));
  cache.put("k", value_of(9.0));
  EXPECT_DOUBLE_EQ(cache.get("k")->objective, 9.0);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(Cache, LruEvictionOrder) {
  // One shard makes the LRU order deterministic and observable.
  msvc::ResultCache cache(2, /*shards=*/1);
  cache.put("a", value_of(1.0));
  cache.put("b", value_of(2.0));
  EXPECT_TRUE((cache.get("a") != nullptr));  // refresh a: b is now LRU
  cache.put("c", value_of(3.0));            // evicts b

  EXPECT_TRUE((cache.get("a") != nullptr));
  EXPECT_FALSE((cache.get("b") != nullptr));
  EXPECT_TRUE((cache.get("c") != nullptr));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(Cache, CapacityIsSpreadAcrossShards) {
  msvc::ResultCache cache(64, 8);
  EXPECT_EQ(cache.shard_count(), 8u);
  for (int i = 0; i < 64; ++i) {
    cache.put("key-" + std::to_string(i), value_of(i));
  }
  const auto stats = cache.stats();
  EXPECT_LE(stats.entries, 64u);
  EXPECT_EQ(stats.capacity, 64u);
}

TEST(Cache, ClearEmptiesEveryShard) {
  msvc::ResultCache cache(32, 4);
  for (int i = 0; i < 20; ++i) {
    cache.put("key-" + std::to_string(i), value_of(i));
  }
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE((cache.get("key-3") != nullptr));
}

TEST(Cache, HitRateArithmetic) {
  msvc::ResultCache cache(8);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.0);
  cache.put("x", value_of(1.0));
  (void)cache.get("x");
  (void)cache.get("x");
  (void)cache.get("y");
  EXPECT_NEAR(cache.stats().hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, ConcurrentMixedTrafficStaysConsistent) {
  // Hammer a small cache from many workers: every get must observe either
  // a miss or the exact value put under that key, and the counters must
  // account for every operation.
  msvc::ResultCache cache(64, 8);
  ms::ThreadPool pool(4);
  const std::size_t ops = 4000;
  std::atomic<std::uint64_t> observed_hits{0};
  std::atomic<std::uint64_t> observed_misses{0};
  std::atomic<std::uint64_t> bad_values{0};

  pool.parallel_for(0, ops, [&](std::size_t i) {
    const int key_id = static_cast<int>(i % 97);
    const std::string key = "key-" + std::to_string(key_id);
    if (i % 3 == 0) {
      cache.put(key, value_of(static_cast<double>(key_id)));
    } else {
      const auto hit = cache.get(key);
      if (hit != nullptr) {
        observed_hits.fetch_add(1, std::memory_order_relaxed);
        if (hit->objective != static_cast<double>(key_id)) {
          bad_values.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        observed_misses.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  EXPECT_EQ(bad_values.load(), 0u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_EQ(stats.misses, observed_misses.load());
  EXPECT_EQ(stats.hits + stats.misses, ops - (ops + 2) / 3);
  EXPECT_LE(stats.entries, 64u + cache.shard_count());
}
