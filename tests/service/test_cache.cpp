#include "malsched/service/cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "malsched/support/thread_pool.hpp"

namespace msvc = malsched::service;
namespace ms = malsched::support;

namespace {

// Two completions => entry_weight == 3.
msvc::CachedSolve value_of(double objective) {
  msvc::CachedSolve value;
  value.objective = objective;
  value.makespan = objective / 2.0;
  value.completions = {objective, objective * 2.0};
  return value;
}

msvc::CachedSolve value_with_n(double objective, std::size_t n) {
  msvc::CachedSolve value;
  value.objective = objective;
  value.completions.assign(n, objective);
  return value;
}

}  // namespace

TEST(Cache, EntryWeightIsOnePlusCompletionLength) {
  EXPECT_EQ(msvc::entry_weight(value_of(1.0)), 3u);
  EXPECT_EQ(msvc::entry_weight(value_with_n(1.0, 500)), 501u);
  EXPECT_EQ(msvc::entry_weight(msvc::CachedSolve{}), 1u);
}

TEST(Cache, PutGetRoundTrip) {
  msvc::ResultCache cache(16);
  EXPECT_FALSE((cache.get("a") != nullptr));
  cache.put("a", value_of(3.0));
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit != nullptr);
  EXPECT_DOUBLE_EQ(hit->objective, 3.0);
  EXPECT_DOUBLE_EQ(hit->makespan, 1.5);
  ASSERT_EQ(hit->completions.size(), 2u);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.weight, 3u);
}

TEST(Cache, PutReplacesExistingKey) {
  msvc::ResultCache cache(16);
  cache.put("k", value_of(1.0));
  cache.put("k", value_with_n(9.0, 4));  // weight 3 -> 5, no double count
  EXPECT_DOUBLE_EQ(cache.get("k")->objective, 9.0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.weight, 5u);
}

TEST(Cache, LruEvictionOrder) {
  // One shard makes the LRU order deterministic and observable.  Weight-3
  // entries with capacity 6: room for exactly two.
  msvc::ResultCache cache(6, /*shards=*/1);
  cache.put("a", value_of(1.0));
  cache.put("b", value_of(2.0));
  EXPECT_TRUE((cache.get("a") != nullptr));  // refresh a: b is now LRU
  cache.put("c", value_of(3.0));            // evicts b

  EXPECT_TRUE((cache.get("a") != nullptr));
  EXPECT_FALSE((cache.get("b") != nullptr));
  EXPECT_TRUE((cache.get("c") != nullptr));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.weight, 6u);
}

TEST(Cache, HeavyEntryEvictsAsManyLightOnesAsItWeighs) {
  // Size-aware eviction: one n = 8 entry (weight 9) displaces three weight-3
  // entries from a 12-unit shard, not just one.
  msvc::ResultCache cache(12, /*shards=*/1);
  cache.put("a", value_of(1.0));
  cache.put("b", value_of(2.0));
  cache.put("c", value_of(3.0));
  cache.put("d", value_of(4.0));  // weight 12: exactly full, no eviction
  EXPECT_EQ(cache.stats().evictions, 0u);

  cache.put("big", value_with_n(9.0, 8));  // weight 9: evicts a, b, c
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 3u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.weight, 12u);
  EXPECT_TRUE((cache.get("big") != nullptr));
  EXPECT_TRUE((cache.get("d") != nullptr));
  EXPECT_FALSE((cache.get("a") != nullptr));
}

TEST(Cache, OversizedEntryIsAdmittedAlone) {
  // An entry heavier than the whole shard budget still caches (a 1-entry
  // memo beats re-solving a huge instance every time); the next put evicts
  // it normally.
  msvc::ResultCache cache(8, /*shards=*/1);
  cache.put("huge", value_with_n(1.0, 100));  // weight 101 > 8
  EXPECT_TRUE((cache.get("huge") != nullptr));
  EXPECT_EQ(cache.stats().weight, 101u);
  cache.put("small", value_of(2.0));  // evicts huge, shard back under budget
  EXPECT_FALSE((cache.get("huge") != nullptr));
  EXPECT_TRUE((cache.get("small") != nullptr));
  EXPECT_EQ(cache.stats().weight, 3u);
}

TEST(Cache, CapacityIsSpreadAcrossShards) {
  msvc::ResultCache cache(64, 8);
  EXPECT_EQ(cache.shard_count(), 8u);
  for (int i = 0; i < 64; ++i) {
    cache.put("key-" + std::to_string(i), value_of(i));
  }
  const auto stats = cache.stats();
  EXPECT_LE(stats.weight, 64u);
  EXPECT_EQ(stats.capacity, 64u);
}

TEST(Cache, ClearEmptiesEveryShard) {
  msvc::ResultCache cache(32, 4);
  for (int i = 0; i < 20; ++i) {
    cache.put("key-" + std::to_string(i), value_of(i));
  }
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().weight, 0u);
  EXPECT_FALSE((cache.get("key-3") != nullptr));
}

TEST(Cache, HitRateArithmetic) {
  msvc::ResultCache cache(8);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.0);
  cache.put("x", value_of(1.0));
  (void)cache.get("x");
  (void)cache.get("x");
  (void)cache.get("y");
  EXPECT_NEAR(cache.stats().hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, TtlZeroExpiresEveryEntryAtTheNextLookup) {
  // ttl = 0 makes every entry stale the moment it is written: the lookup
  // that finds it evicts it (lazy expiry), reporting a miss and an
  // `expired` eviction — never a capacity eviction.
  msvc::CacheOptions options;
  options.capacity = 64;
  options.shards = 1;
  options.ttl = std::chrono::duration<double>(0.0);
  msvc::ResultCache cache(options);
  EXPECT_TRUE(cache.has_ttl());

  cache.put("k", value_of(1.0));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_FALSE((cache.get("k") != nullptr));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.weight, 0u);
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(Cache, LongTtlKeepsServingHits) {
  msvc::CacheOptions options;
  options.capacity = 64;
  options.ttl = std::chrono::duration<double>(3600.0);
  msvc::ResultCache cache(options);
  cache.put("k", value_of(2.0));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE((cache.get("k") != nullptr));
  }
  EXPECT_EQ(cache.stats().hits, 3u);
  EXPECT_EQ(cache.stats().expired, 0u);
}

TEST(Cache, PutRefreshesTheTtlDeadline) {
  // Re-putting a key restarts its clock: with ttl = 0 the refreshed entry
  // expires again, proving the deadline is per-write, not per-key-creation.
  msvc::CacheOptions options;
  options.capacity = 64;
  options.shards = 1;
  options.ttl = std::chrono::duration<double>(0.0);
  msvc::ResultCache cache(options);
  cache.put("k", value_of(1.0));
  EXPECT_FALSE((cache.get("k") != nullptr));
  cache.put("k", value_of(9.0));  // re-insert after expiry eviction
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_FALSE((cache.get("k") != nullptr));
  EXPECT_EQ(cache.stats().expired, 2u);
}

TEST(Cache, NoTtlByDefault) {
  msvc::ResultCache cache(16);
  EXPECT_FALSE(cache.has_ttl());
  cache.put("k", value_of(1.0));
  EXPECT_TRUE((cache.get("k") != nullptr));
  EXPECT_EQ(cache.stats().expired, 0u);
}

namespace {

// One-shard admission cache: LRU order and contest outcomes deterministic.
msvc::CacheOptions admission_options(std::size_t capacity) {
  msvc::CacheOptions options;
  options.capacity = capacity;
  options.shards = 1;
  options.admission = true;
  options.admission_sketch.counters = 1 << 8;
  options.admission_sketch.sample_size = 1 << 16;  // no mid-test halving
  return options;
}

}  // namespace

TEST(Cache, AdmissionIsOffByDefaultAndCountersStayZero) {
  msvc::ResultCache cache(6, /*shards=*/1);
  EXPECT_FALSE(cache.has_admission());
  cache.put("a", value_of(1.0));
  cache.put("b", value_of(2.0));
  cache.put("c", value_of(3.0));  // legacy behavior: always admitted
  const auto stats = cache.stats();
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_TRUE((cache.get("c") != nullptr));
}

TEST(Cache, AdmissionProtectsPopularResidentsFromOneShotFloods) {
  // Weight-3 entries, capacity 6: room for two.  "hot" is looked up
  // repeatedly; a parade of fresh keys then tries to flush it.  Plain LRU
  // would evict hot after two inserts; the filter rejects every newcomer
  // whose victim is the strictly more popular resident.
  msvc::ResultCache cache(admission_options(6));
  EXPECT_TRUE(cache.has_admission());
  cache.put("hot", value_of(1.0));
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE((cache.get("hot") != nullptr));
  }
  cache.put("warm", value_of(2.0));  // fills the second slot (no contest
                                     // needed: still under budget)
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE((cache.get("warm") != nullptr));
  }

  for (int i = 0; i < 16; ++i) {
    cache.put("one-shot-" + std::to_string(i), value_of(9.0));
  }
  // Every flood key was seen once (its own put); the LRU victim "hot" has
  // 9 sightings: all 16 inserts lose the contest.
  const auto stats = cache.stats();
  EXPECT_EQ(stats.rejected, 16u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.admitted, 2u);  // hot and warm themselves
  EXPECT_TRUE((cache.get("hot") != nullptr));
  EXPECT_TRUE((cache.get("warm") != nullptr));
  EXPECT_FALSE((cache.get("one-shot-3") != nullptr));
}

TEST(Cache, RecurringKeyEventuallyWinsTheContest) {
  // A rejected key is not banished: every arrival (get miss + re-put) adds
  // popularity, and once it ties the victim it displaces it.
  msvc::ResultCache cache(admission_options(6));
  cache.put("a", value_of(1.0));
  cache.put("b", value_of(2.0));
  for (int i = 0; i < 3; ++i) {
    (void)cache.get("b");  // b: 4 sightings
  }
  for (int i = 0; i < 4; ++i) {
    (void)cache.get("a");  // a: 5 sightings, and b is now the LRU victim
  }

  // Each round trip is a get miss plus a re-put: 2 sightings.  Rounds 1
  // (score 2 vs 4) is rejected; round 2 ties at 4 and displaces b.
  int attempts = 0;
  while (cache.get("newcomer") == nullptr) {
    cache.put("newcomer", value_of(7.0));
    ASSERT_LT(++attempts, 16) << "newcomer was never admitted";
  }
  // The newcomer displaced exactly the weaker resident.
  EXPECT_GE(attempts, 2);  // first attempt must have been rejected
  EXPECT_GT(cache.stats().rejected, 0u);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_TRUE((cache.get("a") != nullptr)) << "the popular resident survives";
}

TEST(Cache, AdmissionRefreshOfResidentKeyBypassesTheContest) {
  msvc::ResultCache cache(admission_options(6));
  cache.put("k", value_of(1.0));
  for (int i = 0; i < 5; ++i) {
    (void)cache.get("k");
  }
  cache.put("k", value_with_n(9.0, 4));  // refresh: weight 3 -> 5, no contest
  const auto stats = cache.stats();
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.admitted, 1u);  // only the original insert counted
  EXPECT_DOUBLE_EQ(cache.get("k")->objective, 9.0);
}

TEST(Cache, AdmissionTieAdmitsLikeLru) {
  // Fresh victim vs fresh candidate is a tie, and ties admit: a stream with
  // no recurring keys cycles through the cache exactly as plain LRU would.
  msvc::ResultCache cache(admission_options(6));
  for (int i = 0; i < 8; ++i) {
    cache.put("k-" + std::to_string(i), value_of(i));
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.admitted, 8u);
  EXPECT_EQ(stats.evictions, 6u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(Cache, AdmissionDoesNotDisturbTtlExpiry) {
  // TTL expiry is orthogonal to admission: expired entries still evict
  // lazily at lookup, counted in `expired` (not `rejected`), and the
  // re-insert after expiry passes through the contest machinery.
  auto options = admission_options(64);
  options.ttl = std::chrono::duration<double>(0.0);
  msvc::ResultCache cache(options);
  cache.put("k", value_of(1.0));
  EXPECT_FALSE((cache.get("k") != nullptr));
  cache.put("k", value_of(9.0));
  EXPECT_FALSE((cache.get("k") != nullptr));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.expired, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.admitted, 2u);  // both inserts were under budget
  EXPECT_EQ(stats.misses, 2u);
}

TEST(Cache, AdmissionOversizedEntryStillContestsItsVictims) {
  // An oversized newcomer must beat each resident it displaces; a fresh
  // giant against fresh residents ties every contest and is admitted alone,
  // exactly like the legacy oversized path.
  msvc::ResultCache cache(admission_options(8));
  cache.put("small", value_of(1.0));
  cache.put("huge", value_with_n(1.0, 100));  // weight 101 > 8
  EXPECT_TRUE((cache.get("huge") != nullptr));
  EXPECT_FALSE((cache.get("small") != nullptr));
  EXPECT_EQ(cache.stats().weight, 101u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Cache, ConcurrentMixedTrafficStaysConsistent) {
  // Hammer a small cache from many workers: every get must observe either
  // a miss or the exact value put under that key, and the counters must
  // account for every operation.
  msvc::ResultCache cache(64, 8);
  ms::ThreadPool pool(4);
  const std::size_t ops = 4000;
  std::atomic<std::uint64_t> observed_hits{0};
  std::atomic<std::uint64_t> observed_misses{0};
  std::atomic<std::uint64_t> bad_values{0};

  pool.parallel_for(0, ops, [&](std::size_t i) {
    const int key_id = static_cast<int>(i % 97);
    const std::string key = "key-" + std::to_string(key_id);
    if (i % 3 == 0) {
      cache.put(key, value_of(static_cast<double>(key_id)));
    } else {
      const auto hit = cache.get(key);
      if (hit != nullptr) {
        observed_hits.fetch_add(1, std::memory_order_relaxed);
        if (hit->objective != static_cast<double>(key_id)) {
          bad_values.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        observed_misses.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  EXPECT_EQ(bad_values.load(), 0u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_EQ(stats.misses, observed_misses.load());
  EXPECT_EQ(stats.hits + stats.misses, ops - (ops + 2) / 3);
  // Weight-3 entries against a ceil(64/8) = 8 per-shard budget: every shard
  // settles at <= 8 weight after each put.
  EXPECT_LE(stats.weight, 64u);
}
