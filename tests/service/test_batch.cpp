#include "malsched/service/batch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "malsched/core/generators.hpp"
#include "malsched/support/rng.hpp"

namespace mc = malsched::core;
namespace msvc = malsched::service;
namespace ms = malsched::support;

namespace {

std::vector<msvc::BatchRequest> mixed_requests(std::size_t count,
                                               std::uint64_t seed) {
  ms::Rng rng(seed);
  const std::vector<std::string> solvers = {"wdeq", "deq", "smith-greedy",
                                            "greedy-heuristic"};
  std::vector<msvc::BatchRequest> requests;
  for (std::size_t i = 0; i < count; ++i) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 3 + i % 5;
    config.processors = 2.0;
    requests.push_back({solvers[i % solvers.size()],
                        msvc::intern(mc::generate(config, rng))});
  }
  return requests;
}

}  // namespace

TEST(Batch, ResultsComeBackInRequestOrder) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto requests = mixed_requests(40, 3);
  msvc::BatchOptions options;
  options.threads = 4;
  const auto results = msvc::solve_batch(registry, requests, options);
  ASSERT_EQ(results.size(), requests.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i << ": " << results[i].error().to_string();
    EXPECT_EQ(results[i].solver, requests[i].solver) << i;
    EXPECT_EQ(results[i].completions().size(), requests[i].instance.size())
        << i;
    EXPECT_GT(results[i].latency_seconds, 0.0) << i;
  }
}

TEST(Batch, DeterministicAcrossThreadCounts) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto requests = mixed_requests(60, 5);

  std::vector<std::vector<msvc::SolveResult>> runs;
  for (const unsigned threads : {1u, 4u, 8u}) {
    msvc::ResultCache cache(1024);
    msvc::BatchOptions options;
    options.threads = threads;
    options.cache = &cache;
    runs.push_back(msvc::solve_batch(registry, requests, options));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      ASSERT_EQ(runs[r][i].ok(), runs[0][i].ok()) << i;
      // Bitwise equality: the canonical-space solve is identical work, so
      // the denormalized doubles must match exactly, not just approximately.
      EXPECT_EQ(runs[r][i].objective(), runs[0][i].objective()) << i;
      EXPECT_EQ(runs[r][i].makespan(), runs[0][i].makespan()) << i;
      EXPECT_EQ(runs[r][i].completions(), runs[0][i].completions()) << i;
    }
  }
}

TEST(Batch, CacheHitsFlagRepeatedInstances) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto handle =
      msvc::intern(mc::Instance(3.0, {{1.0, 1.0, 1.0}, {2.0, 2.0, 0.5}}));
  std::vector<msvc::BatchRequest> requests(6, {"wdeq", handle});

  msvc::ResultCache cache(64);
  msvc::BatchOptions options;
  options.threads = 1;  // sequential: hit pattern is deterministic
  options.cache = &cache;
  const auto results = msvc::solve_batch(registry, requests, options);
  EXPECT_FALSE(results[0].cache_hit);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].cache_hit) << i;
    EXPECT_EQ(results[i].objective(), results[0].objective());
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 5u);
}

TEST(Batch, CachedAndUncachedValuesAgree) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto requests = mixed_requests(30, 11);

  msvc::ResultCache cache(1024);
  msvc::BatchOptions cached;
  cached.cache = &cache;
  msvc::BatchOptions uncached;
  const auto with_cache = msvc::solve_batch(registry, requests, cached);
  const auto without = msvc::solve_batch(registry, requests, uncached);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(with_cache[i].ok() && without[i].ok()) << i;
    // Cached solves run in canonical space; allow last-ulp scale noise.
    EXPECT_NEAR(with_cache[i].objective(), without[i].objective(),
                1e-9 * (1.0 + without[i].objective()))
        << i;
  }
}

TEST(Batch, ScaledInstancesHitTheSameEntry) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto base =
      msvc::intern(mc::Instance(2.0, {{1.0, 1.0, 1.0}, {2.0, 2.0, 0.5}}));
  const auto doubled =
      msvc::intern(mc::Instance(2.0, {{2.0, 1.0, 2.0}, {4.0, 2.0, 1.0}}));

  msvc::ResultCache cache(64);
  const auto first = msvc::solve_cached(registry, "wdeq", base, &cache);
  const auto second = msvc::solve_cached(registry, "wdeq", doubled, &cache);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  // The scale quotient is the same, so the canonical fingerprints agree.
  EXPECT_EQ(base.key(), doubled.key());
  // Volumes and weights both doubled: objective x4, completions x2.
  EXPECT_NEAR(second.objective(), 4.0 * first.objective(), 1e-12);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(second.completions()[i], 2.0 * first.completions()[i], 1e-12);
  }
}

TEST(Batch, TieBreakingSolversMatchUncachedOnTies) {
  // Both tasks tie on Smith ratio w/V = 1, and smith-greedy breaks ties by
  // task id — the cache's canonical sort must not flip the tie, so these
  // solvers get scale-only canonicalization.
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const mc::Instance inst(2.0, {{2.0, 2.0, 2.0}, {1.0, 1.0, 1.0}});
  const auto handle = msvc::intern(inst);
  for (const char* solver : {"smith-greedy", "greedy-heuristic",
                             "water-fill-smith", "order-lp-smith", "optimal"}) {
    msvc::ResultCache cache(64);
    const auto cached = msvc::solve_cached(registry, solver, handle, &cache);
    const auto direct = registry.solve(solver, inst);
    ASSERT_TRUE(cached.ok() && direct.ok()) << solver;
    // A flipped tie shows up as an O(1) difference; the documented cached
    // vs uncached agreement is only ~1e-9 relative (canonical-space
    // rescaling), so don't demand bitwise equality across compilers.
    EXPECT_NEAR(cached.makespan(), direct.makespan(), 1e-9) << solver;
    ASSERT_EQ(cached.completions().size(), direct.completions().size())
        << solver;
    for (std::size_t i = 0; i < direct.completions().size(); ++i) {
      EXPECT_NEAR(cached.completions()[i], direct.completions()[i], 1e-9)
          << solver << " task " << i;
    }
    // Repeats still hit the scale-only cache entry.
    const auto again = msvc::solve_cached(registry, solver, handle, &cache);
    EXPECT_TRUE(again.cache_hit) << solver;
    EXPECT_NEAR(again.makespan(), direct.makespan(), 1e-9) << solver;
  }
}

TEST(Batch, FifoRigidSkipsPermutationQuotient) {
  // fifo-rigid output depends on task ids; the cache must not alias
  // permuted instances for it.
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto a =
      msvc::intern(mc::Instance(2.0, {{4.0, 2.0, 0.1}, {0.2, 2.0, 10.0}}));
  const auto b =
      msvc::intern(mc::Instance(2.0, {{0.2, 2.0, 10.0}, {4.0, 2.0, 0.1}}));

  msvc::ResultCache cache(64);
  const auto ra = msvc::solve_cached(registry, "fifo-rigid", a, &cache);
  const auto rb = msvc::solve_cached(registry, "fifo-rigid", b, &cache);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_FALSE(rb.cache_hit);
  // Different first-come order => genuinely different objectives.
  EXPECT_NE(ra.objective(), rb.objective());
}

TEST(Batch, WideDynamicRangeBypassesTheCanonicalCache) {
  // Rescaling this instance pushes task 0's canonical volume (~2.5e-10)
  // under the engine's absolute tolerance, which would silently drop its
  // weighted completion.  The conditioning guard must solve client-space
  // instead and agree with the uncached path.
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const mc::Instance inst(2.0, {{1.0, 1.0, 1000000.0}, {4e9, 2.0, 1.0}});
  const auto handle = msvc::intern(inst);

  msvc::ResultCache cache(64);
  const auto cached = msvc::solve_cached(registry, "wdeq", handle, &cache);
  const auto direct = registry.solve("wdeq", inst);
  ASSERT_TRUE(cached.ok() && direct.ok());
  EXPECT_FALSE(cached.cache_hit);
  EXPECT_EQ(cached.objective(), direct.objective());
  EXPECT_EQ(cached.completions(), direct.completions());
  EXPECT_GT(cached.completions()[0], 0.0);  // the small task is not dropped
  EXPECT_EQ(cache.stats().entries, 0u);     // nothing was memoized
}

TEST(Batch, VolumeOverflowBypassesTheCacheInsteadOfCachingNaN) {
  // Total volume overflows to inf, which would make every canonical value
  // 0/NaN and time_scale infinite; well_conditioned must route this to the
  // client-space solve so cached and uncached agree (and no NaN entry is
  // memoized).
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto overflow =
      msvc::intern(mc::Instance(2.0, {{1e308, 1.0, 1.0}, {1e308, 2.0, 1.0}}));
  msvc::ResultCache cache(64);
  const auto cached = msvc::solve_cached(registry, "wdeq", overflow, &cache);
  const auto direct = registry.solve("wdeq", overflow.instance());
  EXPECT_FALSE(cached.cache_hit);
  EXPECT_EQ(cache.stats().entries, 0u);
  ASSERT_EQ(cached.ok(), direct.ok());
  EXPECT_EQ(cached.objective(), direct.objective());  // inf == inf, not NaN
  EXPECT_FALSE(std::isnan(cached.objective()));
}

TEST(Batch, ErrorDiagnosticsUseClientTaskIdsDespiteCache) {
  // Canonicalization sorts tasks, so a canonical-space failure would blame
  // the wrong task id; the cached path must re-solve in client space for
  // the diagnostic.  Here the zero-weight task is client id 1 but sorts to
  // canonical id 0.
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const mc::Instance inst(2.0, {{5.0, 1.0, 1.0}, {1.0, 1.0, 0.0}});
  const auto handle = msvc::intern(inst);
  msvc::ResultCache cache(64);
  const auto cached = msvc::solve_cached(registry, "wdeq", handle, &cache);
  const auto direct = registry.solve("wdeq", inst);
  ASSERT_FALSE(cached.ok());
  EXPECT_EQ(cached.error().code, msvc::ErrorCode::SolverFailure);
  EXPECT_NE(cached.error().detail.find("task 1"), std::string::npos)
      << cached.error().detail;
  EXPECT_EQ(cached.error().detail, direct.error().detail);
}

TEST(Batch, CustomSolverDefaultsAreCacheSafe) {
  // Default registration must not opt into the permutation quotient: this
  // task-id-sensitive solver would silently alias permuted instances if
  // order_invariant defaulted to true.
  auto registry = msvc::SolverRegistry::with_default_solvers();
  registry.register_solver("first-volume", [](const mc::Instance& inst) {
    return msvc::SolveResult::success(
        "", msvc::SolveOutput{inst.task(0).volume, 1.0,  // task-numbering dep
                              std::vector<double>(inst.size(), 1.0)});
  });
  const auto a =
      msvc::intern(mc::Instance(2.0, {{1.0, 1.0, 1.0}, {2.0, 2.0, 1.0}}));
  const auto b =
      msvc::intern(mc::Instance(2.0, {{2.0, 2.0, 1.0}, {1.0, 1.0, 1.0}}));
  msvc::ResultCache cache(64);
  const auto ra = msvc::solve_cached(registry, "first-volume", a, &cache);
  const auto rb = msvc::solve_cached(registry, "first-volume", b, &cache);
  EXPECT_FALSE(rb.cache_hit);  // scale-only keys distinguish the orderings
  EXPECT_NE(ra.objective(), rb.objective());
}

TEST(Batch, NonCacheableSolverBypassesTheCache) {
  auto registry = msvc::SolverRegistry::with_default_solvers();
  registry.register_solver(
      "absolute", [](const mc::Instance& inst) {
        // Not scale-equivariant: an absolute threshold on the volume.
        return msvc::SolveResult::success(
            "", msvc::SolveOutput{inst.total_volume() > 10.0 ? 1.0 : 0.0, 1.0,
                                  std::vector<double>(inst.size(), 1.0)});
      },
      /*order_invariant=*/false, "absolute threshold", /*cacheable=*/false);
  const auto big = msvc::intern(mc::Instance(2.0, {{20.0, 1.0, 1.0}}));
  msvc::ResultCache cache(64);
  const auto first = msvc::solve_cached(registry, "absolute", big, &cache);
  const auto second = msvc::solve_cached(registry, "absolute", big, &cache);
  EXPECT_EQ(first.objective(), 1.0);  // client-space solve, threshold intact
  EXPECT_FALSE(second.cache_hit);     // never memoized
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(Batch, UnknownSolverFailsOnlyThatRequest) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto handle = msvc::intern(mc::Instance(2.0, {{1.0, 1.0, 1.0}}));
  const std::vector<msvc::BatchRequest> requests = {
      {"wdeq", handle}, {"bogus", handle}, {"deq", handle}};
  msvc::BatchOptions options;
  options.threads = 2;
  const auto results = msvc::solve_batch(registry, requests, options);
  EXPECT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].error().code, msvc::ErrorCode::UnknownSolver);
  EXPECT_NE(results[1].error().detail.find("bogus"), std::string::npos);
  EXPECT_TRUE(results[2].ok());
}

TEST(Batch, ThrowingSolverIsContainedPerRequest) {
  auto registry = msvc::SolverRegistry::with_default_solvers();
  registry.register_solver("explode", [](const mc::Instance&) -> msvc::SolveResult {
    throw std::runtime_error("boom");
  });
  const auto handle = msvc::intern(mc::Instance(2.0, {{1.0, 1.0, 1.0}}));
  const std::vector<msvc::BatchRequest> requests = {
      {"wdeq", handle}, {"explode", handle}, {"wdeq", handle}};
  msvc::BatchOptions options;
  options.threads = 2;
  const auto results = msvc::solve_batch(registry, requests, options);
  EXPECT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].error().code, msvc::ErrorCode::SolverFailure);
  EXPECT_NE(results[1].error().detail.find("boom"), std::string::npos);
  EXPECT_TRUE(results[2].ok());
}

TEST(Batch, NonStdExceptionIsContainedToo) {
  auto registry = msvc::SolverRegistry::with_default_solvers();
  registry.register_solver("explode-int",
                           [](const mc::Instance&) -> msvc::SolveResult {
                             throw 42;  // arbitrary user callable, non-std
                           });
  const auto handle = msvc::intern(mc::Instance(2.0, {{1.0, 1.0, 1.0}}));
  const std::vector<msvc::BatchRequest> requests = {{"explode-int", handle},
                                                    {"wdeq", handle}};
  const auto results = msvc::solve_batch(registry, requests, {});
  ASSERT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].error().code, msvc::ErrorCode::SolverFailure);
  EXPECT_NE(results[0].error().detail.find("non-standard"), std::string::npos);
  EXPECT_TRUE(results[1].ok());
}

TEST(Batch, SharedCacheStaysWarmAcrossBatches) {
  // BatchOptions::cache is borrowed, so a second batch over the same
  // traffic is pure hit dispatch — the replacement for sharing a thread
  // pool across batches in the v1 API.
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto requests = mixed_requests(20, 17);
  msvc::ResultCache cache(4096);
  msvc::BatchOptions options;
  options.threads = 3;
  options.cache = &cache;
  const auto first = msvc::solve_batch(registry, requests, options);
  ASSERT_EQ(first.size(), requests.size());
  const auto second = msvc::solve_batch(registry, requests, options);
  for (std::size_t i = 0; i < second.size(); ++i) {
    ASSERT_TRUE(second[i].ok()) << second[i].error().to_string();
    EXPECT_TRUE(second[i].cache_hit) << i;
    EXPECT_EQ(second[i].objective(), first[i].objective()) << i;
  }
}

TEST(Batch, SchedulerOverloadReusesWorkersAcrossBatches) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto requests = mixed_requests(12, 23);
  msvc::Scheduler::Options options;
  options.threads = 2;
  msvc::Scheduler scheduler(registry, options);
  const auto first = msvc::solve_batch(scheduler, requests);
  const auto second = msvc::solve_batch(scheduler, requests);
  ASSERT_EQ(first.size(), requests.size());
  ASSERT_EQ(second.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(first[i].ok() && second[i].ok()) << i;
    EXPECT_EQ(first[i].objective(), second[i].objective()) << i;
    EXPECT_TRUE(second[i].cache_hit) << i;  // the owned cache stayed warm
  }
}

TEST(Batch, EmptyBatchIsFine) {
  const auto registry = msvc::SolverRegistry::with_default_solvers();
  const auto results = msvc::solve_batch(registry, {}, {});
  EXPECT_TRUE(results.empty());
}
