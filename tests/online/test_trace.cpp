#include "malsched/online/trace.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

namespace mo = malsched::online;
namespace mc = malsched::core;
namespace ms = malsched::support;

namespace {

mo::ArrivalTrace sample_trace() {
  std::vector<mo::Arrival> arrivals;
  arrivals.push_back({0.0, {1.5, 2.0, 0.5}});
  arrivals.push_back({0.25, {0.5, 1.0, 1.0}});
  arrivals.push_back({1.0, {2.0, 4.0, 0.75}});
  return mo::ArrivalTrace(4.0, std::move(arrivals));
}

}  // namespace

using ArrivalTraceDeathTest = ::testing::Test;

TEST(ArrivalTraceDeathTest, ValidatesInputs) {
  EXPECT_DEATH(mo::ArrivalTrace(0.0, {}), "processors");
  EXPECT_DEATH(mo::ArrivalTrace(
                   4.0, {{1.0, {1.0, 1.0, 1.0}}, {0.5, {1.0, 1.0, 1.0}}}),
               "non-decreasing");
  EXPECT_DEATH(mo::ArrivalTrace(4.0, {{-0.5, {1.0, 1.0, 1.0}}}), "time");
}

TEST(ArrivalTrace, BatchViewAndReleases) {
  const auto trace = sample_trace();
  const auto inst = trace.to_instance();
  ASSERT_EQ(inst.size(), 3u);
  EXPECT_DOUBLE_EQ(inst.processors(), 4.0);
  EXPECT_DOUBLE_EQ(inst.task(1).volume, 0.5);
  const auto release = trace.release_dates();
  ASSERT_EQ(release.size(), 3u);
  EXPECT_DOUBLE_EQ(release[0], 0.0);
  EXPECT_DOUBLE_EQ(release[2], 1.0);
  EXPECT_FALSE(trace.all_at_time_zero());
}

TEST(ArrivalTrace, AllAtTimeZero) {
  std::vector<mo::Arrival> arrivals;
  arrivals.push_back({0.0, {1.0, 1.0, 1.0}});
  arrivals.push_back({0.0, {2.0, 2.0, 0.5}});
  const mo::ArrivalTrace trace(2.0, std::move(arrivals));
  EXPECT_TRUE(trace.all_at_time_zero());
}

TEST(TraceIo, RoundTripsExactly) {
  const auto trace = sample_trace();
  const std::string text = mo::format_trace(trace);
  std::string error;
  const auto parsed = mo::parse_trace(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), trace.size());
  EXPECT_EQ(parsed->processors(), trace.processors());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    // setprecision(17) serialization: bit-exact doubles through the text.
    EXPECT_EQ(parsed->arrival(i).time, trace.arrival(i).time);
    EXPECT_EQ(parsed->arrival(i).task.volume, trace.arrival(i).task.volume);
    EXPECT_EQ(parsed->arrival(i).task.width, trace.arrival(i).task.width);
    EXPECT_EQ(parsed->arrival(i).task.weight, trace.arrival(i).task.weight);
  }
}

TEST(TraceIo, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(mo::parse_trace("arrive 0 1 1 1\n", &error));  // no processors
  EXPECT_NE(error.find("processors"), std::string::npos);
  EXPECT_FALSE(mo::parse_trace("processors 4\n", &error));  // no arrivals
  EXPECT_FALSE(
      mo::parse_trace("processors 4\narrive 1 1 1 1\narrive 0 1 1 1\n",
                      &error));  // decreasing times
  EXPECT_NE(error.find("non-decreasing"), std::string::npos);
  EXPECT_FALSE(mo::parse_trace("processors 4\nfrobnicate\n", &error));
  EXPECT_NE(error.find("unknown keyword"), std::string::npos);
  EXPECT_FALSE(
      mo::parse_trace("processors 4\narrive 0 1 0 1\n", &error));  // width 0
}

TEST(TraceIo, ParsesCommentsAndBlanks) {
  const char* text =
      "# a comment\n"
      "processors 4  # trailing comment\n"
      "\n"
      "arrive 0.5 1.0 2.0 0.25\n";
  std::string error;
  const auto parsed = mo::parse_trace(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->arrival(0).time, 0.5);
}

TEST(TraceFamilies, NamesRoundTrip) {
  for (const auto family : mo::all_trace_families()) {
    const auto parsed = mo::trace_family_from_name(mo::trace_family_name(family));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, family);
  }
  EXPECT_FALSE(mo::trace_family_from_name("uniform").has_value());
}

class TraceFamilyTest : public ::testing::TestWithParam<mo::TraceFamily> {};

TEST_P(TraceFamilyTest, GeneratesValidTraces) {
  ms::Rng rng(2718);
  mo::TraceConfig config;
  config.family = GetParam();
  config.num_tasks = 16;
  config.processors = 4.0;
  for (int rep = 0; rep < 10; ++rep) {
    const auto trace = mo::generate_trace(config, rng);
    EXPECT_EQ(trace.size(), 16u);
    double prev = 0.0;
    for (const auto& a : trace.arrivals()) {
      EXPECT_GE(a.time, prev);
      prev = a.time;
      EXPECT_GT(a.task.volume, 0.0);
      EXPECT_GT(a.task.width, 0.0);
      EXPECT_GT(a.task.weight, 0.0);
    }
  }
}

TEST_P(TraceFamilyTest, DeterministicGivenSeed) {
  mo::TraceConfig config;
  config.family = GetParam();
  config.num_tasks = 12;
  config.processors = 4.0;
  ms::Rng rng_a(55);
  ms::Rng rng_b(55);
  const auto a = mo::generate_trace(config, rng_a);
  const auto b = mo::generate_trace(config, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.arrival(i).time, b.arrival(i).time);
    EXPECT_EQ(a.arrival(i).task.volume, b.arrival(i).task.volume);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTraceFamilies, TraceFamilyTest,
                         ::testing::ValuesIn(mo::all_trace_families()),
                         [](const auto& info) {
                           std::string name =
                               mo::trace_family_name(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(TraceFamilies, AdversarialSpikeShape) {
  ms::Rng rng(7);
  mo::TraceConfig config;
  config.family = mo::TraceFamily::AdversarialSpike;
  config.num_tasks = 20;
  config.processors = 4.0;
  config.horizon = 4.0;
  const auto trace = mo::generate_trace(config, rng);
  // 3/4 of the jobs land exactly at the spike instant, and they are wide
  // (δ > P/2) and heavy — the anti-greedy construction.
  std::size_t at_spike = 0;
  for (const auto& a : trace.arrivals()) {
    if (a.time == 2.0) {
      ++at_spike;
      EXPECT_GT(a.task.width, 2.0);
      EXPECT_GT(a.task.volume, 0.5);
      EXPECT_GT(a.task.weight, 0.5);
    }
  }
  EXPECT_EQ(at_spike, 15u);
}

namespace {

std::uint64_t fnv1a_double(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  for (int b = 0; b < 8; ++b) {
    h ^= (bits >> (8 * b)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t trace_hash(const mo::ArrivalTrace& trace) {
  std::uint64_t h = 14695981039346656037ULL;
  h = fnv1a_double(h, trace.processors());
  for (const auto& a : trace.arrivals()) {
    h = fnv1a_double(h, a.time);
    h = fnv1a_double(h, a.task.volume);
    h = fnv1a_double(h, a.task.width);
    h = fnv1a_double(h, a.task.weight);
  }
  return h;
}

}  // namespace

// Pins the exact arrival/task double streams at (seed 20120521, n=8, P=4) —
// the online counterpart of GeneratorGoldenHash.SeedStableStreams.  The
// pinned bench traces and the CI t=0 gate ride on these streams; a
// deliberate generator change must update the constants.  (diurnal routes
// through libm sin/cos and poisson-bursts through log: bit-stable on the
// glibc toolchains CI runs.)
TEST(TraceGoldenHash, SeedStableStreams) {
  struct Golden {
    mo::TraceFamily family;
    std::uint64_t hash;
  };
  const Golden golden[] = {
      {mo::TraceFamily::PoissonBursts, 0xdf276a0fdc168f98ULL},
      {mo::TraceFamily::Diurnal, 0x2f4de4e34ad7a4f4ULL},
      {mo::TraceFamily::AdversarialSpike, 0x94dc6014a3026310ULL},
  };
  EXPECT_EQ(std::size(golden), mo::all_trace_families().size());
  for (const auto& g : golden) {
    ms::Rng rng(20120521);
    mo::TraceConfig config;
    config.family = g.family;
    config.num_tasks = 8;
    config.processors = 4.0;
    const auto trace = mo::generate_trace(config, rng);
    EXPECT_EQ(trace_hash(trace), g.hash)
        << mo::trace_family_name(g.family)
        << ": generated stream changed (got 0x" << std::hex
        << trace_hash(trace) << ")";
  }
}
