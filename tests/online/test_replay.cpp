#include "malsched/online/clock.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "malsched/core/bnb.hpp"
#include "malsched/core/wdeq.hpp"
#include "malsched/online/baseline.hpp"
#include "malsched/online/replan.hpp"
#include "malsched/support/rng.hpp"

namespace mo = malsched::online;
namespace mc = malsched::core;
namespace ms = malsched::support;

namespace {

/// All arrivals at t = 0: the degenerate trace on which online collapses to
/// the offline batch problem.
mo::ArrivalTrace t0_trace(std::size_t n, std::uint64_t seed,
                          double processors = 4.0) {
  ms::Rng rng(seed);
  std::vector<mo::Arrival> arrivals;
  for (std::size_t i = 0; i < n; ++i) {
    mc::Task t;
    t.volume = rng.uniform_pos(1.0);
    t.width = rng.uniform_pos(processors);
    t.weight = rng.uniform_pos(1.0);
    arrivals.push_back({0.0, t});
  }
  return mo::ArrivalTrace(processors, std::move(arrivals));
}

/// Staggered arrivals with mixed widths — the generic online workload the
/// invariant tests replay.
mo::ArrivalTrace staggered_trace() {
  std::vector<mo::Arrival> arrivals;
  arrivals.push_back({0.0, {2.0, 2.0, 1.0}});
  arrivals.push_back({0.0, {1.0, 4.0, 0.25}});
  arrivals.push_back({0.4, {1.5, 1.0, 2.0}});
  arrivals.push_back({0.9, {0.75, 3.0, 0.5}});
  arrivals.push_back({0.9, {2.5, 2.0, 1.5}});
  arrivals.push_back({2.0, {0.5, 4.0, 3.0}});
  return mo::ArrivalTrace(4.0, std::move(arrivals));
}

}  // namespace

// The CI-gated collapse: with every arrival at t = 0, exact-replan solves
// the whole instance once, the clock snaps completions onto the plan's step
// ends, and the replayed ΣwC reproduces the offline branch-and-bound optimum
// bit-for-bit (==, not near).
TEST(Replay, ExactReplanReproducesOfflineOptimumAtTimeZero) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const auto trace = t0_trace(6, seed);
    const auto baseline = mo::offline_baseline(trace);
    ASSERT_TRUE(baseline.exact);
    auto policy = mo::make_exact_replan_policy();
    const auto run = mo::replay(trace, *policy);
    EXPECT_EQ(run.weighted_completion, baseline.objective) << "seed " << seed;
  }
}

// wdeq-replan on a t = 0 trace is batch WDEQ: re-running the equipartition
// on the remaining subinstance after each completion is exactly what the
// batch simulation does between events (WDEQ is memoryless).
TEST(Replay, WdeqReplanMatchesBatchWdeqAtTimeZero) {
  const auto trace = t0_trace(7, 11);
  const auto instance = trace.to_instance();
  const auto batch = mc::run_wdeq(instance);
  auto policy = mo::make_wdeq_replan_policy();
  const auto run = mo::replay(trace, *policy);
  const auto batch_completions = batch.schedule.completions();
  ASSERT_EQ(run.completions.size(), batch_completions.size());
  for (std::size_t i = 0; i < batch_completions.size(); ++i) {
    EXPECT_NEAR(run.completions[i], batch_completions[i], 1e-9) << "task " << i;
  }
  EXPECT_NEAR(run.weighted_completion,
              batch.schedule.weighted_completion(instance), 1e-9);
}

// Every policy's executed schedule is a feasible schedule of the batch
// instance, and the result fields are self-consistent.
TEST(Replay, ExecutedScheduleValidatesForEveryPolicy) {
  const auto trace = staggered_trace();
  const auto instance = trace.to_instance();
  for (auto& policy : mo::all_replan_policies()) {
    const auto run = mo::replay(trace, *policy);
    const auto validation = run.schedule.validate(instance);
    EXPECT_TRUE(static_cast<bool>(validation))
        << policy->name() << ": " << validation.message;
    // Completions at or after arrival, makespan = last completion, ΣwC
    // re-derivable from the per-task completions.
    double sum_wc = 0.0;
    double last = 0.0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      EXPECT_GE(run.completions[i], trace.arrival(i).time) << policy->name();
      sum_wc += trace.arrival(i).task.weight * run.completions[i];
      last = std::max(last, run.completions[i]);
    }
    EXPECT_DOUBLE_EQ(run.weighted_completion, sum_wc) << policy->name();
    EXPECT_DOUBLE_EQ(run.makespan, last) << policy->name();
    EXPECT_GE(run.events, trace.size());  // one completion event per task
    EXPECT_GE(run.replans, 1u);
  }
}

// The online ground rule: no work before arrival.  Steps are cut at arrival
// events, so any step beginning before task i's release must give it rate 0.
TEST(Replay, NoWorkBeforeArrival) {
  const auto trace = staggered_trace();
  const auto release = trace.release_dates();
  for (auto& policy : mo::all_replan_policies()) {
    const auto run = mo::replay(trace, *policy);
    for (const auto& step : run.schedule.steps()) {
      for (std::size_t i = 0; i < trace.size(); ++i) {
        if (step.begin < release[i] - 1e-12) {
          EXPECT_EQ(step.rates[i], 0.0)
              << policy->name() << ": task " << i << " ran in ["
              << step.begin << ", " << step.end << ") before release "
              << release[i];
        }
      }
    }
  }
}

// greedy-append never preempts: allocations promised to earlier arrivals
// are invariant under later arrivals, so replaying a prefix of the trace
// leaves the prefix tasks' completion times unchanged.
TEST(Replay, GreedyAppendCommitmentsSurviveLaterArrivals) {
  const auto full = staggered_trace();
  // Prefix = the three tasks arriving at {0, 0, 0.4}; cut before the 0.9
  // pair so the later arrivals are the only difference.
  std::vector<mo::Arrival> head(full.arrivals().begin(),
                                full.arrivals().begin() + 3);
  const mo::ArrivalTrace prefix(full.processors(), std::move(head));

  auto policy_prefix = mo::make_greedy_append_policy();
  auto policy_full = mo::make_greedy_append_policy();
  const auto run_prefix = mo::replay(prefix, *policy_prefix);
  const auto run_full = mo::replay(full, *policy_full);
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_NEAR(run_full.completions[i], run_prefix.completions[i], 1e-9)
        << "task " << i << " was preempted by a later arrival";
  }
}

// Zero-volume tasks complete the instant they arrive — including arrivals
// after other work has started (the core/release_dates edge case).
TEST(Replay, ZeroVolumeTaskCompletesAtArrival) {
  std::vector<mo::Arrival> arrivals;
  arrivals.push_back({0.0, {2.0, 2.0, 1.0}});
  arrivals.push_back({0.7, {0.0, 1.0, 5.0}});  // zero volume, mid-flight
  const mo::ArrivalTrace trace(4.0, std::move(arrivals));
  for (auto& policy : mo::all_replan_policies()) {
    const auto run = mo::replay(trace, *policy);
    EXPECT_EQ(run.completions[1], 0.7) << policy->name();
    const auto validation = run.schedule.validate(trace.to_instance());
    EXPECT_TRUE(static_cast<bool>(validation))
        << policy->name() << ": " << validation.message;
  }
}

// An idle gap (all live work done, next arrival later) is bridged with
// explicit zero-rate steps so the executed schedule stays contiguous from 0.
TEST(Replay, IdleGapsProduceContiguousSchedule) {
  std::vector<mo::Arrival> arrivals;
  arrivals.push_back({0.0, {1.0, 4.0, 1.0}});  // done by t = 0.25
  arrivals.push_back({1.0, {1.0, 4.0, 1.0}});  // arrives after an idle gap
  const mo::ArrivalTrace trace(4.0, std::move(arrivals));
  auto policy = mo::make_wsew_replan_policy();
  const auto run = mo::replay(trace, *policy);
  EXPECT_DOUBLE_EQ(run.completions[0], 0.25);
  EXPECT_DOUBLE_EQ(run.completions[1], 1.25);
  double cursor = 0.0;
  for (const auto& step : run.schedule.steps()) {
    EXPECT_DOUBLE_EQ(step.begin, cursor);
    cursor = step.end;
  }
  EXPECT_TRUE(static_cast<bool>(run.schedule.validate(trace.to_instance())));
}

// A fired replay-level CancelToken bounds per-replan solve effort but never
// aborts the replay: exact-replan degrades to a feasible (incumbent/WSEW)
// plan and the run still completes every task.
TEST(Replay, FiredCancelTokenStillYieldsFeasibleRun) {
  const auto trace = t0_trace(8, 3);
  mc::CancelSource source;
  source.request_cancel();
  mo::ReplayOptions options;
  options.cancel = source.token();
  auto policy = mo::make_exact_replan_policy();
  const auto run = mo::replay(trace, *policy, options);
  EXPECT_TRUE(static_cast<bool>(run.schedule.validate(trace.to_instance())));
  for (const double c : run.completions) {
    EXPECT_GT(c, 0.0);
  }
}

// Beyond max_exact_tasks the exact policy must fall back (WSEW) rather than
// attempt an exponential solve; the run stays feasible.
TEST(Replay, ExactReplanFallsBackBeyondSizeGuard) {
  const auto trace = t0_trace(6, 19);
  mo::ExactReplanOptions options;
  options.max_exact_tasks = 2;  // force the fallback path
  auto exact = mo::make_exact_replan_policy(options);
  auto wsew = mo::make_wsew_replan_policy();
  const auto run_exact = mo::replay(trace, *exact);
  const auto run_wsew = mo::replay(trace, *wsew);
  EXPECT_TRUE(static_cast<bool>(run_exact.schedule.validate(trace.to_instance())));
  // On a t=0 trace with a live set permanently above the guard, the exact
  // policy's plans are WSEW plans.
  EXPECT_NEAR(run_exact.weighted_completion, run_wsew.weighted_completion,
              1e-9);
}

// Replays are deterministic: same trace, fresh policy, identical doubles.
TEST(Replay, DeterministicAcrossRuns) {
  const auto trace = staggered_trace();
  for (int which = 0; which < 2; ++which) {
    auto a = mo::all_replan_policies();
    auto b = mo::all_replan_policies();
    const auto run_a = mo::replay(trace, *a[which]);
    const auto run_b = mo::replay(trace, *b[which]);
    EXPECT_EQ(run_a.weighted_completion, run_b.weighted_completion);
    EXPECT_EQ(run_a.completions, run_b.completions);
  }
}
