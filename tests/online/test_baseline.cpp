#include "malsched/online/baseline.hpp"

#include <gtest/gtest.h>

#include "malsched/core/bnb.hpp"
#include "malsched/core/release_dates.hpp"
#include "malsched/online/clock.hpp"
#include "malsched/online/replan.hpp"
#include "malsched/support/rng.hpp"

namespace mo = malsched::online;
namespace mc = malsched::core;
namespace ms = malsched::support;

namespace {

mo::ArrivalTrace random_trace(std::size_t n, std::uint64_t seed,
                              double spread) {
  ms::Rng rng(seed);
  std::vector<mo::Arrival> arrivals;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mc::Task task;
    task.volume = rng.uniform_pos(1.0);
    task.width = rng.uniform_pos(4.0);
    task.weight = rng.uniform_pos(1.0);
    arrivals.push_back({t, task});
    t += spread > 0.0 ? rng.uniform_pos(spread) : 0.0;
  }
  return mo::ArrivalTrace(4.0, std::move(arrivals));
}

}  // namespace

// Small all-at-t=0 traces get the exact branch-and-bound optimum, computed
// through the same schedule summation the replay uses.
TEST(OfflineBaseline, ExactOnSmallTimeZeroTraces) {
  const auto trace = random_trace(6, 5, 0.0);
  const auto baseline = mo::offline_baseline(trace);
  EXPECT_TRUE(baseline.exact);
  EXPECT_EQ(baseline.method, "bnb");
  mc::BnbOptions options;
  options.want_schedule = true;
  const auto solved = mc::branch_and_bound(trace.to_instance(), options);
  EXPECT_EQ(baseline.objective,
            solved.schedule.weighted_completion(trace.to_instance()));
}

// Staggered arrivals downgrade to a lower bound: plain B&B relaxes away the
// release dates, so the result is max(B&B, released bound) and not exact.
TEST(OfflineBaseline, LowerBoundOnStaggeredTraces) {
  const auto trace = random_trace(6, 5, 0.5);
  const auto baseline = mo::offline_baseline(trace);
  EXPECT_FALSE(baseline.exact);
  EXPECT_EQ(baseline.method, "bnb+release-lb");
  // It dominates both of its ingredients.
  const auto relaxed = mc::branch_and_bound(trace.to_instance());
  EXPECT_GE(baseline.objective, relaxed.objective);
  EXPECT_GE(baseline.objective,
            mc::released_weighted_completion_lower_bound(
                trace.to_instance(), trace.release_dates()));
}

// Beyond the exact-size guard only the released bound is affordable.
TEST(OfflineBaseline, ReleaseBoundBeyondSizeGuard) {
  const auto trace = random_trace(20, 9, 0.2);
  const auto baseline = mo::offline_baseline(trace);
  EXPECT_FALSE(baseline.exact);
  EXPECT_EQ(baseline.method, "release-lb");
  EXPECT_GT(baseline.objective, 0.0);
}

// The baseline is a genuine lower bound: no policy's replay beats it.
TEST(OfflineBaseline, NeverExceedsAnyReplay) {
  for (const std::uint64_t seed : {2ull, 13ull, 77ull}) {
    for (const double spread : {0.0, 0.4}) {
      const auto trace = random_trace(8, seed, spread);
      const auto baseline = mo::offline_baseline(trace);
      for (auto& policy : mo::all_replan_policies()) {
        const auto run = mo::replay(trace, *policy);
        EXPECT_LE(baseline.objective, run.weighted_completion * (1 + 1e-9))
            << policy->name() << " seed " << seed << " spread " << spread;
      }
    }
  }
}

// A fired CancelToken downgrades the result to the released lower bound —
// a cancelled incumbent is an upper bound, unusable as a ratio denominator.
TEST(OfflineBaseline, CancelledSolveDowngradesToLowerBound) {
  const auto trace = random_trace(10, 3, 0.0);
  mc::CancelSource source;
  source.request_cancel();
  mo::BaselineOptions options;
  options.cancel = source.token();
  const auto baseline = mo::offline_baseline(trace, options);
  EXPECT_FALSE(baseline.exact);
  EXPECT_EQ(baseline.method, "release-lb");
  // Still a valid lower bound on the uncancelled optimum.
  const auto full = mo::offline_baseline(trace);
  EXPECT_LE(baseline.objective, full.objective);
}

// Degenerate inputs: an all-zero-volume trace has objective 0 yet stays
// well-defined.
TEST(OfflineBaseline, ZeroVolumeTraceIsExactZero) {
  std::vector<mo::Arrival> arrivals;
  arrivals.push_back({0.0, {0.0, 1.0, 2.0}});
  arrivals.push_back({0.0, {0.0, 2.0, 1.0}});
  const mo::ArrivalTrace trace(4.0, std::move(arrivals));
  const auto baseline = mo::offline_baseline(trace);
  EXPECT_TRUE(baseline.exact);
  EXPECT_EQ(baseline.objective, 0.0);
}
