#include "malsched/bwshare/network.hpp"

#include <gtest/gtest.h>

#include "malsched/core/bounds.hpp"
#include "malsched/core/optimal.hpp"
#include "malsched/support/rng.hpp"

namespace mb = malsched::bwshare;
namespace mc = malsched::core;
namespace msim = malsched::sim;
namespace ms = malsched::support;

namespace {

mb::Scenario small_scenario() {
  return mb::Scenario(10.0, {{4.0, 2.0, 1.0, "w0"},
                             {2.0, 8.0, 3.0, "w1"},
                             {6.0, 4.0, 0.5, "w2"}});
}

}  // namespace

TEST(Bwshare, InstanceMappingIsFigure1) {
  const auto scenario = small_scenario();
  const auto inst = scenario.to_instance();
  EXPECT_DOUBLE_EQ(inst.processors(), 10.0);
  ASSERT_EQ(inst.size(), 3u);
  EXPECT_DOUBLE_EQ(inst.task(0).volume, 4.0);   // code size -> V
  EXPECT_DOUBLE_EQ(inst.task(0).width, 2.0);    // link bandwidth -> δ
  EXPECT_DOUBLE_EQ(inst.task(1).weight, 3.0);   // processing rate -> w
}

TEST(Bwshare, ThroughputEquivalence) {
  // Σ w_i (T − C_i) == W·T − Σ w_i C_i whenever T >= max C_i: maximizing
  // throughput IS minimizing weighted completion (the paper's reduction).
  const auto scenario = small_scenario();
  const auto result = mb::distribute(scenario, *msim::make_wdeq_policy());
  const double horizon = 100.0;
  double total_rate = 0.0;
  for (const auto& w : scenario.workers()) {
    total_rate += w.processing_rate;
  }
  EXPECT_NEAR(result.throughput(horizon, scenario.workers()),
              total_rate * horizon - result.weighted_completion, 1e-7);
}

TEST(Bwshare, ThroughputClampsAtHorizon) {
  // Workers whose code arrives after T contribute nothing (not negative).
  const auto scenario = small_scenario();
  const auto result = mb::distribute(scenario, *msim::make_wdeq_policy());
  const double tiny_horizon = 1e-6;
  EXPECT_GE(result.throughput(tiny_horizon, scenario.workers()), 0.0);
}

TEST(Bwshare, BetterPolicyMoreThroughput) {
  // On weight-skewed scenarios the clairvoyant Smith policy must process at
  // least as many tasks as rigid FCFS for a long horizon.
  ms::Rng rng(233);
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<mb::Worker> workers;
    for (int i = 0; i < 6; ++i) {
      workers.push_back({rng.uniform_pos(4.0), rng.uniform_pos(2.0),
                         rng.uniform_pos(5.0), ""});
    }
    const mb::Scenario scenario(4.0, std::move(workers));
    const auto smith =
        mb::distribute(scenario, *msim::make_smith_greedy_policy());
    const auto fifo =
        mb::distribute(scenario, *msim::make_fifo_rigid_policy());
    const double horizon = 50.0;
    EXPECT_GE(smith.throughput(horizon, scenario.workers()) + 1e-7,
              fifo.throughput(horizon, scenario.workers()))
        << "rep " << rep;
  }
}

TEST(Bwshare, UpperBoundDominatesAllPolicies) {
  ms::Rng rng(239);
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<mb::Worker> workers;
    for (int i = 0; i < 5; ++i) {
      workers.push_back({rng.uniform_pos(2.0), rng.uniform_pos(1.5),
                         rng.uniform_pos(3.0), ""});
    }
    const mb::Scenario scenario(3.0, std::move(workers));
    const double horizon = 20.0;
    const double bound = mb::throughput_upper_bound(scenario, horizon);
    for (const auto& policy : msim::all_policies()) {
      const auto result = mb::distribute(scenario, *policy);
      EXPECT_LE(result.throughput(horizon, scenario.workers()),
                bound + 1e-6)
          << policy->name() << " rep " << rep;
    }
  }
}

TEST(Bwshare, WdeqWithinTwiceOptimalThroughputLoss) {
  // Theorem 4 restated in throughput terms: the throughput *loss* of WDEQ
  // relative to W·T is at most twice the optimal loss.
  ms::Rng rng(241);
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<mb::Worker> workers;
    for (int i = 0; i < 4; ++i) {
      workers.push_back({rng.uniform_pos(1.0), rng.uniform_pos(1.0),
                         rng.uniform_pos(1.0), ""});
    }
    const mb::Scenario scenario(2.0, std::move(workers));
    const auto inst = scenario.to_instance();
    const auto result = mb::distribute(scenario, *msim::make_wdeq_policy());
    const auto opt = mc::optimal_by_enumeration(inst);
    EXPECT_LE(result.weighted_completion, 2.0 * opt.objective + 1e-6)
        << "rep " << rep;
  }
}

TEST(BwshareDeath, RejectsEmptyScenario) {
  EXPECT_DEATH(mb::Scenario(1.0, {}), "workers");
}
