// Branch-and-bound exactness: the pruned search must return the same
// optimum as n! enumeration on every fixture and across every generator
// family, the pruning machinery must degenerate to exhaustive enumeration
// when disabled, and the OrderLpEvaluator's warm-started prefix values must
// agree with from-scratch order-LP solves through arbitrary push/pop walks.

#include "malsched/core/bnb.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "malsched/core/generators.hpp"
#include "malsched/core/io.hpp"
#include "malsched/core/optimal.hpp"
#include "malsched/core/order_lp.hpp"

namespace mc = malsched::core;
namespace ms = malsched::support;

namespace {

mc::Instance load(const std::string& name) {
  const std::string path = std::string(MALSCHED_DATA_DIR) + "/" + name;
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("missing fixture " + path);
  }
  std::string error;
  auto inst = mc::read_instance(in, &error);
  if (!inst.has_value()) {
    throw std::runtime_error("bad fixture " + path + ": " + error);
  }
  return *inst;
}

double relative_gap(double a, double b) {
  return std::fabs(a - b) / std::max(1.0, std::max(std::fabs(a), std::fabs(b)));
}

std::size_t factorial(std::size_t n) {
  std::size_t f = 1;
  for (std::size_t k = 2; k <= n; ++k) {
    f *= k;
  }
  return f;
}

}  // namespace

TEST(Bnb, MatchesEnumerationOnEveryFixture) {
  for (const char* fixture :
       {"example_small.mls", "bandwidth_fig1.mls",
        "theorem9_counterexample.mls", "wide_tasks.mls"}) {
    const auto inst = load(fixture);
    ASSERT_LE(inst.size(), 9u) << fixture;
    const auto enumerated = mc::optimal_by_enumeration(inst);
    const auto bnb = mc::branch_and_bound(inst);
    EXPECT_LT(relative_gap(bnb.objective, enumerated.objective), 1e-6)
        << fixture << ": bnb " << bnb.objective << " vs enumeration "
        << enumerated.objective;
    // The returned order must actually achieve the optimum.
    EXPECT_LT(relative_gap(mc::order_lp_objective(inst, bnb.order),
                           enumerated.objective),
              1e-6)
        << fixture;
  }
}

TEST(Bnb, MatchesEnumerationAcrossGeneratorFamilies) {
  // >= 50 random instances per family; sizes cycle 2..5 so the enumeration
  // baseline (n! order LPs per instance) stays affordable.
  for (const mc::Family family : mc::all_families()) {
    ms::Rng rng(20120521 + static_cast<std::uint64_t>(family));
    for (int rep = 0; rep < 50; ++rep) {
      mc::GeneratorConfig config;
      config.family = family;
      config.num_tasks = 2 + static_cast<std::size_t>(rep % 4);
      config.processors = (rep % 3 == 0) ? 1.0 : 4.0;
      const auto inst = mc::generate(config, rng);
      const auto enumerated = mc::optimal_by_enumeration(inst);
      const auto bnb = mc::branch_and_bound(inst);
      EXPECT_LT(relative_gap(bnb.objective, enumerated.objective), 1e-6)
          << mc::family_name(family) << " rep " << rep << " n "
          << inst.size() << ": bnb " << bnb.objective << " vs enumeration "
          << enumerated.objective;
      EXPECT_LT(relative_gap(mc::order_lp_objective(inst, bnb.order),
                             enumerated.objective),
                1e-6)
          << mc::family_name(family) << " rep " << rep;
    }
  }
}

TEST(Bnb, DisabledPruningVisitsExactlyFactorialLeaves) {
  ms::Rng rng(97);
  mc::GeneratorConfig config;
  config.family = mc::Family::Uniform;
  config.num_tasks = 6;
  config.processors = 2.0;
  const auto inst = mc::generate(config, rng);

  mc::BnbOptions options;
  options.use_bounds = false;
  options.use_dominance = false;
  const auto exhaustive = mc::branch_and_bound(inst, options);
  EXPECT_EQ(exhaustive.stats.leaves, factorial(inst.size()));
  EXPECT_EQ(exhaustive.stats.pruned_by_bound, 0u);
  EXPECT_EQ(exhaustive.stats.pruned_by_dominance, 0u);

  const auto enumerated = mc::optimal_by_enumeration(inst);
  EXPECT_LT(relative_gap(exhaustive.objective, enumerated.objective), 1e-6);

  // Default options search the same space with pruning: same optimum, a
  // strictly smaller tree.
  const auto pruned = mc::branch_and_bound(inst);
  EXPECT_LT(relative_gap(pruned.objective, enumerated.objective), 1e-6);
  EXPECT_LT(pruned.stats.leaves, exhaustive.stats.leaves);
  EXPECT_GT(pruned.stats.pruned_by_bound, 0u);
}

TEST(BnbCuts, DifferentialFuzzCutsPreserveTheSearchContract) {
  // The tail cuts are *redundant* constraints: they may only remove
  // subtrees the DP bound would have explored, never change the answer.
  // On these continuous generator families the identical-shape exchange
  // cut is provably inert (exact shape collisions have probability zero),
  // so even the returned order must match bit for bit.  Three-way
  // differential per instance, >= 50 seeded instances per generator
  // family:
  //   * cuts-on vs cuts-off objective is EXPECT_EQ — both searches keep the
  //     incumbent in the same double arithmetic, so parity is exact, not
  //     approximate;
  //   * cuts-on never expands more nodes than cuts-off (children are sorted
  //     by the DP bound in both modes, so the cut can only subtract);
  //   * below the enumeration crossover, both agree with the n! baseline.
  for (const mc::Family family : mc::all_families()) {
    ms::Rng rng(911 + static_cast<std::uint64_t>(family));
    for (int rep = 0; rep < 50; ++rep) {
      mc::GeneratorConfig config;
      config.family = family;
      // n caps at 7: the narrow families' cuts-off trees grow factorially
      // and n = 8 alone multiplies the suite's wall time several-fold
      // without adding differential coverage.
      config.num_tasks = 4 + static_cast<std::size_t>(rep % 4);
      config.processors = (rep % 3 == 0) ? 2.0 : 4.0;
      const auto inst = mc::generate(config, rng);

      mc::BnbOptions off;
      off.use_cuts = false;
      const auto without = mc::branch_and_bound(inst, off);
      const auto with = mc::branch_and_bound(inst);  // cuts default on

      EXPECT_EQ(with.objective, without.objective)
          << mc::family_name(family) << " rep " << rep << " n " << inst.size();
      EXPECT_EQ(with.order, without.order)
          << mc::family_name(family) << " rep " << rep;
      EXPECT_LE(with.stats.nodes, without.stats.nodes)
          << mc::family_name(family) << " rep " << rep
          << ": cuts expanded the tree";
      EXPECT_EQ(without.stats.pruned_by_cut, 0u);

      if (inst.size() <= 6) {
        const auto enumerated = mc::optimal_by_enumeration(inst);
        EXPECT_LT(relative_gap(with.objective, enumerated.objective), 1e-6)
            << mc::family_name(family) << " rep " << rep;
      }
    }
  }
}

TEST(BnbCuts, CutsOffReproducesTheDpBoundEraTree) {
  // With use_cuts = false the search must be byte-for-byte the pre-cut
  // algorithm: same stats, zero cut prunes, and use_cuts without use_bounds
  // is inert (the cut shares the bound infrastructure).
  ms::Rng rng(404);
  mc::GeneratorConfig config;
  config.family = mc::Family::Uniform;
  config.num_tasks = 7;
  config.processors = 4.0;
  const auto inst = mc::generate(config, rng);

  mc::BnbOptions off;
  off.use_cuts = false;
  const auto a = mc::branch_and_bound(inst, off);
  const auto b = mc::branch_and_bound(inst, off);
  EXPECT_EQ(a.stats.nodes, b.stats.nodes);
  EXPECT_EQ(a.stats.leaves, b.stats.leaves);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.stats.pruned_by_cut, 0u);

  mc::BnbOptions no_bounds;
  no_bounds.use_bounds = false;
  no_bounds.use_dominance = false;
  const auto exhaustive = mc::branch_and_bound(inst, no_bounds);
  EXPECT_EQ(exhaustive.stats.pruned_by_cut, 0u)
      << "cuts must be inert when bounds are disabled";
  EXPECT_EQ(exhaustive.stats.leaves, factorial(inst.size()));
}

namespace {

/// The pinned structured fixture: two interleaved batches of six
/// identical-shape jobs each (tall-narrow v=2/δ=1 and short-wide v=1/δ=4 on
/// P=4, so the shapes interfere and the completion-floor relaxation goes
/// loose) under geometric intra-batch weight spreads.  Repeated shapes with
/// heterogeneous weights are exactly the workload the exchange cut exists
/// for: within each batch only the weight-descending completion order
/// survives, while cuts-off has to grind through the near-tied interleavings.
mc::Instance structured_batch_fixture() {
  std::vector<mc::Task> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back({2.0, 1.0, std::pow(2.0, i)});
    tasks.push_back({1.0, 4.0, 0.9 * std::pow(2.0, 5 - i)});
  }
  return mc::Instance(4.0, std::move(tasks));
}

}  // namespace

TEST(BnbCuts, ExchangeCutStaysExactOnShapeClassInstances) {
  // Validity of the identical-shape exchange cut, against the ground truth:
  // random instances made of repeated shapes with heterogeneous weights —
  // the one regime where the cut actually fires.  The excluded orders are
  // objective-tied, so cuts-on may legitimately return a *different*
  // optimal order than cuts-off; the contract here is optimality (vs n!
  // enumeration) and tree shrinkage, not order identity.
  ms::Rng rng(20120522);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<mc::Task> tasks;
    const std::size_t shapes = 1 + static_cast<std::size_t>(rep % 3);
    for (std::size_t s = 0; s < shapes; ++s) {
      const double volume = rng.uniform(0.5, 2.0);
      const double width = rng.uniform(0.5, 4.0);
      const std::size_t copies = 2 + static_cast<std::size_t>(rep % 2);
      for (std::size_t c = 0; c < copies && tasks.size() < 6; ++c) {
        tasks.push_back({volume, width, rng.uniform(0.1, 4.0)});
      }
    }
    const mc::Instance inst(2.0, std::move(tasks));

    mc::BnbOptions off;
    off.use_cuts = false;
    const auto without = mc::branch_and_bound(inst, off);
    const auto with = mc::branch_and_bound(inst);
    const auto enumerated = mc::optimal_by_enumeration(inst);

    EXPECT_LT(relative_gap(with.objective, enumerated.objective), 1e-6)
        << "rep " << rep << " n " << inst.size();
    EXPECT_LT(relative_gap(with.objective, without.objective), 1e-9)
        << "rep " << rep;
    EXPECT_LE(with.stats.nodes, without.stats.nodes) << "rep " << rep;
    EXPECT_LT(relative_gap(mc::order_lp_objective(inst, with.order),
                           enumerated.objective),
              1e-6)
        << "rep " << rep << ": cuts-on order must achieve the optimum";
  }
}

TEST(BnbCuts, PinnedStructuredFixtureCollapsesFiveFold) {
  // The CI gate from this PR's acceptance criteria, pinned as a regression
  // fixture: on the structured n=12 batch instance the exchange cut must
  // keep at least a 5x node advantage over the cuts-off search (measured
  // ~97x when pinned) while returning the identical optimal order, whose
  // from-scratch leaf re-solve makes the objectives bit-equal.  The
  // absolute pins keep both trees from regressing independently: cuts-on
  // must stay collapsed, cuts-off documents the DP-bound-era cost of this
  // workload (and keeps the suite honest if the DP bound ever improves
  // enough to close the gap itself).
  const mc::Instance inst = structured_batch_fixture();

  mc::BnbOptions off;
  off.use_cuts = false;
  const auto without = mc::branch_and_bound(inst, off);
  const auto with = mc::branch_and_bound(inst);

  EXPECT_EQ(with.objective, without.objective);
  EXPECT_EQ(with.order, without.order);
  EXPECT_GT(with.stats.pruned_by_cut, 0u);
  EXPECT_EQ(without.stats.pruned_by_cut, 0u);

  EXPECT_LE(with.stats.nodes, 400u) << "cuts-on tree regressed";
  EXPECT_GE(without.stats.nodes, 20000u)
      << "cuts-off tree shrank: re-measure the fixture before relaxing";
  EXPECT_GE(without.stats.nodes, 5 * with.stats.nodes)
      << "acceptance gate: >= 5x fewer nodes with cuts on";
}

TEST(Bnb, DominanceCollapsesIdenticalTasks) {
  // Eight identical tasks: every order is a renaming, so the dominance rule
  // leaves exactly one chain — a single leaf even with bounds off.
  const mc::Instance inst(4.0, std::vector<mc::Task>(8, {1.0, 1.0, 1.0}));
  mc::BnbOptions options;
  options.use_bounds = false;
  const auto res = mc::branch_and_bound(inst, options);
  EXPECT_EQ(res.stats.leaves, 1u);
  EXPECT_GT(res.stats.pruned_by_dominance, 0u);
  // Closed form: batches of four unit tasks on P = 4 complete at 1 and 2.
  EXPECT_NEAR(res.objective, 4.0 * 1.0 + 4.0 * 2.0, 1e-7);
  // The surviving order is the index order.
  EXPECT_TRUE(std::is_sorted(res.order.begin(), res.order.end()));
}

TEST(Bnb, DominancePinsZeroVolumeFirstAndZeroWeightLast) {
  // Task 1 has zero volume (completes at 0), task 3 zero weight (free to
  // finish last); dominance prunes every order violating either pin.
  const mc::Instance inst(2.0, {{1.0, 1.0, 1.0},
                                {0.0, 1.0, 5.0},
                                {0.5, 2.0, 2.0},
                                {2.0, 1.5, 0.0}});
  const auto enumerated = mc::optimal_by_enumeration(inst);
  const auto bnb = mc::branch_and_bound(inst);
  EXPECT_LT(relative_gap(bnb.objective, enumerated.objective), 1e-6);
  EXPECT_GT(bnb.stats.pruned_by_dominance, 0u);
  EXPECT_EQ(bnb.order.front(), 1u);  // zero volume first
  EXPECT_EQ(bnb.order.back(), 3u);   // zero weight last
}

TEST(Bnb, WantScheduleProducesValidOptimalSchedule) {
  ms::Rng rng(101);
  mc::GeneratorConfig config;
  config.family = mc::Family::Uniform;
  config.num_tasks = 8;
  config.processors = 2.0;
  const auto inst = mc::generate(config, rng);
  mc::BnbOptions options;
  options.want_schedule = true;
  const auto res = mc::branch_and_bound(inst, options);
  const auto check = res.schedule.validate(inst);
  EXPECT_TRUE(check.valid) << check.message;
  EXPECT_NEAR(res.schedule.weighted_completion(inst), res.objective, 1e-6);
}

TEST(Bnb, EmptyAndSingletonInstances) {
  const mc::Instance empty(2.0, {});
  const auto none = mc::branch_and_bound(empty);
  EXPECT_EQ(none.objective, 0.0);
  EXPECT_TRUE(none.order.empty());

  const mc::Instance one(2.0, {{3.0, 1.5, 2.0}});
  const auto single = mc::branch_and_bound(one);
  EXPECT_NEAR(single.objective, 2.0 * (3.0 / 1.5), 1e-9);
  EXPECT_EQ(single.order, (std::vector<std::size_t>{0}));
}

TEST(BnbDeath, RefusesInstancesBeyondTheGuard) {
  std::vector<mc::Task> tasks(21, {1.0, 1.0, 1.0});
  const mc::Instance inst(4.0, std::move(tasks));
  EXPECT_DEATH((void)mc::branch_and_bound(inst), "exponential");
}

TEST(OrderLpEvaluator, WarmStartedPushMatchesFromScratchSolves) {
  ms::Rng rng(42);
  mc::GeneratorConfig config;
  config.family = mc::Family::Uniform;
  config.num_tasks = 7;
  config.processors = 4.0;
  const auto inst = mc::generate(config, rng);

  mc::OrderLpEvaluator evaluator(inst);
  ms::Rng walk(7);
  std::vector<std::size_t> prefix;
  for (int step = 0; step < 400; ++step) {
    const bool can_push = prefix.size() < inst.size();
    if (can_push && (prefix.empty() || walk.bernoulli(0.6))) {
      std::size_t task;
      do {
        task = static_cast<std::size_t>(
            walk.uniform_int(0, static_cast<std::int64_t>(inst.size()) - 1));
      } while (std::find(prefix.begin(), prefix.end(), task) != prefix.end());
      prefix.push_back(task);
      const double incremental = evaluator.push(task, /*exact=*/false);
      const double reference = mc::order_lp_objective(inst, prefix);
      EXPECT_LT(relative_gap(incremental, reference), 1e-9)
          << "depth " << prefix.size() << " step " << step;
      EXPECT_EQ(evaluator.depth(), prefix.size());
    } else {
      prefix.pop_back();
      evaluator.pop();
    }
  }
}

TEST(OrderLpEvaluator, ExactPushIsBitIdenticalWithOrderLpObjective) {
  const auto inst = load("example_small.mls");
  mc::OrderLpEvaluator evaluator(inst);
  std::vector<std::size_t> prefix;
  for (std::size_t task = 0; task < inst.size(); ++task) {
    prefix.push_back(task);
    const double exact = evaluator.push(task, /*exact=*/true);
    EXPECT_EQ(exact, mc::order_lp_objective(inst, prefix)) << task;
    EXPECT_EQ(evaluator.objective(), exact);
  }
}

TEST(OrderLpEvaluator, GreedyCompletionMatchesCapacityProfilePeek) {
  const auto inst = load("bandwidth_fig1.mls");
  mc::OrderLpEvaluator evaluator(inst);
  mc::CapacityProfile profile(inst.processors());
  for (std::size_t task = 0; task < inst.size(); ++task) {
    EXPECT_DOUBLE_EQ(
        evaluator.greedy_completion(task),
        profile.peek(inst.effective_width(task), inst.task(task).volume))
        << task;
    evaluator.push(task, /*exact=*/false);
    profile.place(inst.effective_width(task), inst.task(task).volume);
  }
}

TEST(Optimal, DelegatesToBranchAndBoundAboveTheCrossover) {
  ms::Rng rng(11);
  mc::GeneratorConfig config;
  config.family = mc::Family::Uniform;
  config.num_tasks = 8;  // above the enumeration crossover of 7
  config.processors = 4.0;
  const auto inst = mc::generate(config, rng);
  const auto viaOptimal = mc::optimal_by_enumeration(inst);
  const auto direct = mc::branch_and_bound(inst);
  EXPECT_EQ(viaOptimal.objective, direct.objective);
  EXPECT_EQ(viaOptimal.order, direct.order);
  EXPECT_EQ(viaOptimal.orders_tried, direct.stats.leaves);
  // n! would be 40320; the proof tree is orders of magnitude smaller.
  EXPECT_LT(direct.stats.lp_evaluations, 40320u);
}

TEST(Cancellation, PreCancelledTokenStopsTheSearchButKeepsASeedIncumbent) {
  // A token that fired before the DFS even starts: the search must return
  // immediately with cancelled = true, yet still carry a feasible order —
  // the incumbent seeds (Smith, greedy, ...) always run.
  ms::Rng rng(3);
  mc::GeneratorConfig config;
  config.family = mc::Family::Uniform;
  config.num_tasks = 9;
  config.processors = 4.0;
  const auto inst = mc::generate(config, rng);

  mc::CancelSource source;
  source.request_cancel();
  mc::BnbOptions options;
  options.cancel = source.token();
  const auto cancelled = mc::branch_and_bound(inst, options);
  EXPECT_TRUE(cancelled.cancelled);
  EXPECT_EQ(cancelled.order.size(), inst.size());
  EXPECT_EQ(cancelled.stats.leaves, 0u) << "no leaf may be explored";

  // The incumbent is an upper bound on the true optimum.
  const auto exact = mc::branch_and_bound(inst);
  EXPECT_FALSE(exact.cancelled);
  EXPECT_GE(cancelled.objective, exact.objective - 1e-9);

  // Same contract through the optimal_by_enumeration facade, on both sides
  // of the enumeration crossover.
  for (const std::size_t n : {std::size_t{6}, std::size_t{9}}) {
    mc::GeneratorConfig small_config;
    small_config.family = mc::Family::Uniform;
    small_config.num_tasks = n;
    small_config.processors = 2.0;
    ms::Rng small_rng(7);
    const auto small_inst = mc::generate(small_config, small_rng);
    mc::OptimalOptions optimal_options;
    optimal_options.cancel = source.token();
    const auto result = mc::optimal_by_enumeration(small_inst, optimal_options);
    EXPECT_TRUE(result.cancelled) << n;
  }
}

TEST(Cancellation, DefaultTokenNeverFires) {
  const mc::CancelToken token;
  EXPECT_FALSE(token.can_cancel());
  EXPECT_FALSE(token.cancelled());

  mc::CancelSource source;
  EXPECT_FALSE(source.cancel_requested());
  const auto live = source.token();
  EXPECT_TRUE(live.can_cancel());
  EXPECT_FALSE(live.cancelled());
  source.request_cancel();
  EXPECT_TRUE(live.cancelled());
  EXPECT_TRUE(source.cancel_requested());

  // Deadline-only token: fires exactly when the clock passes the deadline.
  const auto past = mc::CancelToken::with_deadline(
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(past.cancelled());
  const auto future = mc::CancelToken::with_deadline(
      std::chrono::steady_clock::now() + std::chrono::hours(1));
  EXPECT_TRUE(future.can_cancel());
  EXPECT_FALSE(future.cancelled());
}
