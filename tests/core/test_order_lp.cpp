#include "malsched/core/order_lp.hpp"

#include <gtest/gtest.h>

#include "malsched/core/generators.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/core/water_filling.hpp"

namespace mc = malsched::core;
namespace ms = malsched::support;
using malsched::numeric::Rational;

TEST(OrderLp, SingleTaskClosedForm) {
  const mc::Instance inst(4.0, {{6.0, 3.0, 2.0}});
  const auto result = mc::solve_order_lp(inst, mc::identity_order(1));
  ASSERT_TRUE(result.optimal());
  // C = V / min(δ, P) = 2, objective = w*C = 4.
  EXPECT_NEAR(result.objective, 4.0, 1e-9);
  EXPECT_TRUE(result.schedule.validate(inst).valid);
}

TEST(OrderLp, TwoTaskClosedForm) {
  // P=1, unit widths... δ=1 each, V=1 each, w 2 and 1, order (0,1):
  // C0 = 1, C1 = 2, objective = 2*1 + 1*2 = 4.  The LP may also interleave,
  // but with equal δ=P=1 sequential is optimal for the fixed order.
  const mc::Instance inst(1.0, {{1.0, 1.0, 2.0}, {1.0, 1.0, 1.0}});
  const auto result = mc::solve_order_lp(inst, mc::identity_order(2));
  ASSERT_TRUE(result.optimal());
  EXPECT_NEAR(result.objective, 4.0, 1e-9);
}

TEST(OrderLp, OrderMattersForWeights) {
  const mc::Instance inst(1.0, {{1.0, 1.0, 1.0}, {1.0, 1.0, 10.0}});
  const std::vector<std::size_t> heavy_first{1, 0};
  const std::vector<std::size_t> light_first{0, 1};
  const double heavy = mc::order_lp_objective(inst, heavy_first);
  const double light = mc::order_lp_objective(inst, light_first);
  // Heavy task first: 10*1 + 1*2 = 12; light first: 1*1 + 10*2 = 21.
  EXPECT_NEAR(heavy, 12.0, 1e-9);
  EXPECT_NEAR(light, 21.0, 1e-9);
}

TEST(OrderLp, ScheduleIsValidAndMatchesObjective) {
  ms::Rng rng(73);
  for (int rep = 0; rep < 30; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 5;
    config.processors = 2.0;
    const auto inst = mc::generate(config, rng);
    const auto order = rng.permutation(inst.size());
    const auto result = mc::solve_order_lp(inst, order);
    ASSERT_TRUE(result.optimal()) << "rep " << rep;
    const auto check = result.schedule.validate(inst);
    EXPECT_TRUE(check.valid) << "rep " << rep << ": " << check.message;
    EXPECT_NEAR(result.schedule.weighted_completion(inst), result.objective,
                1e-6)
        << "rep " << rep;
  }
}

TEST(OrderLp, LpBeatsGreedyWithSameOrder) {
  // The LP optimizes over all schedules with the given completion order;
  // greedy with that order produces one such schedule (up to completion
  // order mismatch, use the greedy completion order).
  ms::Rng rng(79);
  for (int rep = 0; rep < 20; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 4;
    config.processors = 2.0;
    const auto inst = mc::generate(config, rng);
    const auto greedy = mc::greedy_schedule(inst, mc::smith_order(inst));
    const auto columns = greedy.to_columns(inst);
    const double lp = mc::order_lp_objective(inst, columns.order());
    EXPECT_LE(lp, greedy.weighted_completion(inst) + 1e-7) << "rep " << rep;
  }
}

TEST(OrderLp, WfReconstructsLpCompletions) {
  // Theorem 8 consistency: completion times from an LP-optimal schedule are
  // WF-feasible.
  ms::Rng rng(83);
  for (int rep = 0; rep < 20; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 4;
    config.processors = 2.0;
    const auto inst = mc::generate(config, rng);
    const auto result = mc::solve_order_lp(inst, rng.permutation(4));
    ASSERT_TRUE(result.optimal());
    const auto completions = result.schedule.completions();
    EXPECT_TRUE(mc::water_fill(inst, completions).feasible) << "rep " << rep;
  }
}

TEST(OrderLp, ExactMatchesDouble) {
  ms::Rng rng(89);
  for (int rep = 0; rep < 5; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 3;
    config.processors = 2.0;
    const auto inst = mc::generate(config, rng);
    const auto order = mc::identity_order(3);
    const auto exact = mc::solve_order_lp_exact(inst, order);
    const double approx = mc::order_lp_objective(inst, order);
    ASSERT_EQ(exact.status, malsched::lp::SolveStatus::Optimal);
    EXPECT_NEAR(exact.objective.to_double(), approx, 1e-7) << "rep " << rep;
  }
}

TEST(OrderLp, ExactValueIsRationalClosedForm) {
  // P=1, two tasks δ=1, V=1, weights 1: any order gives C = (1, 2),
  // Σ C = 3 exactly.
  const mc::Instance inst(1.0, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  const auto exact = mc::solve_order_lp_exact(inst, mc::identity_order(2));
  ASSERT_EQ(exact.status, malsched::lp::SolveStatus::Optimal);
  EXPECT_EQ(exact.objective, Rational(3));
}

TEST(OrderLp, BadOrderStillSolvable) {
  // Forcing a "wrong" completion order (big task first) must still be
  // feasible — just more expensive.
  const mc::Instance inst(1.0, {{10.0, 1.0, 1.0}, {0.1, 1.0, 1.0}});
  const std::vector<std::size_t> big_first{0, 1};
  const std::vector<std::size_t> small_first{1, 0};
  const double big = mc::order_lp_objective(inst, big_first);
  const double small = mc::order_lp_objective(inst, small_first);
  EXPECT_LT(small, big);
  EXPECT_TRUE(std::isfinite(big));
}
