#include "malsched/core/instance.hpp"

#include <gtest/gtest.h>

#include "malsched/core/generators.hpp"

namespace mc = malsched::core;

namespace {

mc::Instance small() {
  return mc::Instance(4.0, {{2.0, 2.0, 1.0}, {1.0, 4.0, 2.0}, {3.0, 1.0, 0.5}});
}

}  // namespace

TEST(Instance, BasicAccessors) {
  const auto inst = small();
  EXPECT_DOUBLE_EQ(inst.processors(), 4.0);
  EXPECT_EQ(inst.size(), 3u);
  EXPECT_DOUBLE_EQ(inst.task(0).volume, 2.0);
  EXPECT_DOUBLE_EQ(inst.task(1).width, 4.0);
  EXPECT_DOUBLE_EQ(inst.task(2).weight, 0.5);
  EXPECT_DOUBLE_EQ(inst.total_volume(), 6.0);
  EXPECT_DOUBLE_EQ(inst.total_weight(), 3.5);
}

TEST(Instance, TaskHeight) {
  const mc::Task t{6.0, 3.0, 1.0};
  EXPECT_DOUBLE_EQ(t.height(), 2.0);
}

TEST(Instance, EffectiveWidthClampsAtP) {
  const mc::Instance inst(2.0, {{1.0, 5.0, 1.0}, {1.0, 1.5, 1.0}});
  EXPECT_DOUBLE_EQ(inst.effective_width(0), 2.0);
  EXPECT_DOUBLE_EQ(inst.effective_width(1), 1.5);
}

TEST(Instance, IntegralDetection) {
  EXPECT_TRUE(mc::Instance(4.0, {{1.0, 2.0, 1.0}}).integral());
  EXPECT_FALSE(mc::Instance(4.0, {{1.0, 2.5, 1.0}}).integral());
  EXPECT_FALSE(mc::Instance(3.5, {{1.0, 2.0, 1.0}}).integral());
}

TEST(Instance, WithVolumesBuildsSubinstance) {
  const auto inst = small();
  const std::vector<double> volumes{0.5, 0.0, 3.0};
  const auto sub = inst.with_volumes(volumes);
  EXPECT_DOUBLE_EQ(sub.task(0).volume, 0.5);
  EXPECT_DOUBLE_EQ(sub.task(1).volume, 0.0);
  EXPECT_DOUBLE_EQ(sub.task(2).volume, 3.0);
  // Other fields untouched.
  EXPECT_DOUBLE_EQ(sub.task(1).width, 4.0);
  EXPECT_DOUBLE_EQ(sub.task(2).weight, 0.5);
}

TEST(Instance, ZeroVolumeTasksAllowed) {
  const mc::Instance inst(1.0, {{0.0, 1.0, 1.0}});
  EXPECT_DOUBLE_EQ(inst.total_volume(), 0.0);
}

TEST(Instance, DescribeMentionsShape) {
  const auto text = small().describe();
  EXPECT_NE(text.find("P=4"), std::string::npos);
  EXPECT_NE(text.find("n=3"), std::string::npos);
}

TEST(InstanceDeath, RejectsNonPositiveProcessors) {
  EXPECT_DEATH(mc::Instance(0.0, {{1.0, 1.0, 1.0}}), "P > 0");
}

TEST(InstanceDeath, RejectsNonPositiveWidth) {
  EXPECT_DEATH(mc::Instance(1.0, {{1.0, 0.0, 1.0}}), "width");
}

TEST(InstanceDeath, RejectsNegativeVolume) {
  EXPECT_DEATH(mc::Instance(1.0, {{-1.0, 1.0, 1.0}}), "volume");
}
