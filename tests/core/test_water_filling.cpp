#include "malsched/core/water_filling.hpp"

#include <gtest/gtest.h>

#include "malsched/core/generators.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/core/wdeq.hpp"

namespace mc = malsched::core;
namespace ms = malsched::support;

TEST(WaterFill, SingleTaskExactFit) {
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}});
  const std::vector<double> completions{1.0};
  const auto result = mc::water_fill(inst, completions);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.schedule.validate(inst).valid);
  EXPECT_DOUBLE_EQ(result.schedule.completion(0), 1.0);
  EXPECT_DOUBLE_EQ(result.schedule.allocation(0, 0), 2.0);
}

TEST(WaterFill, SingleTaskInfeasibleDeadline) {
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}});
  const std::vector<double> completions{0.9};  // needs 1.0
  const auto result = mc::water_fill(inst, completions);
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.failed_position, 0u);
}

TEST(WaterFill, WidthCapMakesDeadlineInfeasible) {
  // V=2, δ=1: needs 2 time units even though P=4.
  const mc::Instance inst(4.0, {{2.0, 1.0, 1.0}});
  EXPECT_FALSE(mc::water_fill(inst, std::vector<double>{1.9}).feasible);
  EXPECT_TRUE(mc::water_fill(inst, std::vector<double>{2.0}).feasible);
}

TEST(WaterFill, TwoTasksSharingMachine) {
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}, {1.0, 1.0, 1.0}});
  // T1 by time 1, T0 by time 1.5 (the canonical example).
  const std::vector<double> completions{1.5, 1.0};
  const auto result = mc::water_fill(inst, completions);
  ASSERT_TRUE(result.feasible);
  const auto check = result.schedule.validate(inst);
  EXPECT_TRUE(check.valid) << check.message;
  EXPECT_DOUBLE_EQ(result.schedule.completion(0), 1.5);
  EXPECT_DOUBLE_EQ(result.schedule.completion(1), 1.0);
}

TEST(WaterFill, ProfileHeightsNonIncreasing) {
  // Lemma 3: after each allocation, the occupied height per column is
  // non-increasing over time.  Verify on a random feasible instance by
  // summing allocations column-wise.
  ms::Rng rng(11);
  for (int rep = 0; rep < 30; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 6;
    config.processors = 2.0;
    const auto inst = mc::generate(config, rng);
    // Use greedy completions (always feasible).
    const auto greedy = mc::greedy_schedule(inst, mc::smith_order(inst));
    const auto completions = greedy.completions();
    const auto result = mc::water_fill(inst, completions);
    ASSERT_TRUE(result.feasible);
    const auto& sched = result.schedule;
    for (std::size_t j = 0; j + 1 < sched.num_columns(); ++j) {
      if (sched.column_length(j) <= 1e-12 ||
          sched.column_length(j + 1) <= 1e-12) {
        continue;
      }
      double height_j = 0.0;
      double height_next = 0.0;
      for (std::size_t i = 0; i < inst.size(); ++i) {
        height_j += sched.allocation(i, j);
        height_next += sched.allocation(i, j + 1);
      }
      EXPECT_GE(height_j, height_next - 1e-6)
          << "rep " << rep << " column " << j;
    }
  }
}

TEST(WaterFill, NormalFormPreservesCompletionTimes) {
  // Theorem 8 applied to schedules produced by WDEQ: re-running WF on the
  // completion times must succeed and reproduce them.
  ms::Rng rng(13);
  for (int rep = 0; rep < 30; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 5;
    config.processors = 3.0;
    const auto inst = mc::generate(config, rng);
    const auto run = mc::run_wdeq(inst);
    const auto completions = run.schedule.completions();
    const auto result = mc::water_fill(inst, completions);
    ASSERT_TRUE(result.feasible) << "rep " << rep;
    const auto check = result.schedule.validate(inst);
    EXPECT_TRUE(check.valid) << check.message;
    for (std::size_t i = 0; i < inst.size(); ++i) {
      EXPECT_NEAR(result.schedule.completion(i), completions[i], 1e-9);
    }
  }
}

TEST(WaterFill, GreedyCompletionsAreWfFeasible) {
  // Greedy schedules are valid, so WF must accept their completion times
  // (this is the Theorem 8 "if one exists" direction).
  ms::Rng rng(17);
  for (int rep = 0; rep < 30; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::BandwidthLike;
    config.num_tasks = 7;
    config.processors = 4.0;
    const auto inst = mc::generate(config, rng);
    const auto sched = mc::greedy_schedule(inst, mc::volume_order(inst));
    ASSERT_TRUE(sched.validate(inst).valid);
    EXPECT_TRUE(mc::water_fill(inst, sched.completions()).feasible)
        << "rep " << rep;
  }
}

TEST(WaterFill, ShrunkCompletionsBecomeInfeasible) {
  // Shrinking the last completion of a tight schedule below the area bound
  // must be rejected.
  const mc::Instance inst(1.0, {{0.5, 1.0, 1.0}, {0.5, 1.0, 1.0}});
  // Total volume 1.0 on one processor: C = (0.5, 1.0) is tight.
  EXPECT_TRUE(
      mc::water_fill(inst, std::vector<double>{0.5, 1.0}).feasible);
  EXPECT_FALSE(
      mc::water_fill(inst, std::vector<double>{0.5, 0.99}).feasible);
}

TEST(WaterFill, TiesProduceZeroLengthColumns) {
  const mc::Instance inst(2.0, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  const std::vector<double> completions{1.0, 1.0};
  const auto result = mc::water_fill(inst, completions);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.schedule.validate(inst).valid);
  EXPECT_DOUBLE_EQ(result.schedule.completion(0), 1.0);
  EXPECT_DOUBLE_EQ(result.schedule.completion(1), 1.0);
}

TEST(WaterFill, ZeroVolumeTask) {
  const mc::Instance inst(1.0, {{0.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  const std::vector<double> completions{0.0, 1.0};
  const auto result = mc::water_fill(inst, completions);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.schedule.validate(inst).valid);
}

TEST(WaterFillFeasible, MatchesFullWaterFill) {
  ms::Rng rng(19);
  int feasible_count = 0;
  for (int rep = 0; rep < 200; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 5;
    config.processors = 2.0;
    const auto inst = mc::generate(config, rng);
    // Random deadlines around the makespan scale: some feasible, some not.
    std::vector<double> deadlines(inst.size());
    for (auto& d : deadlines) {
      d = rng.uniform(0.1, 2.5);
    }
    const bool fast = mc::water_fill_feasible(inst, deadlines);
    const bool full = mc::water_fill(inst, deadlines).feasible;
    EXPECT_EQ(fast, full) << "rep " << rep;
    feasible_count += full ? 1 : 0;
  }
  // The deadline distribution must actually exercise both branches.
  EXPECT_GT(feasible_count, 10);
  EXPECT_LT(feasible_count, 190);
}

TEST(WaterFillFeasible, SaturatedSuffixHandling) {
  // One narrow task with a late deadline on a busy machine: exercises the
  // "saturated groups keep their order" path of the merged-profile variant.
  const mc::Instance inst(4.0, {{4.0, 4.0, 1.0},
                                {2.0, 1.0, 1.0},
                                {6.0, 2.0, 1.0}});
  // t=1: T0 done (rate 4 impossible with others... rate 4*1=4=V ok alone?)
  // Check a consistent set: deadlines 2, 3, 4.
  const std::vector<double> ok{2.0, 3.0, 4.0};
  EXPECT_EQ(mc::water_fill_feasible(inst, ok),
            mc::water_fill(inst, ok).feasible);
  const std::vector<double> tight{1.0, 2.0, 3.5};
  EXPECT_EQ(mc::water_fill_feasible(inst, tight),
            mc::water_fill(inst, tight).feasible);
}

TEST(Normalize, WrapsScheduleExtraction) {
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}, {1.0, 1.0, 1.0}});
  const auto run = mc::run_wdeq(inst);
  const auto result = mc::normalize(inst, run.schedule);
  ASSERT_TRUE(result.feasible);
  const auto original = run.schedule.completions();
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_NEAR(result.schedule.completion(i), original[i], 1e-9);
  }
}
