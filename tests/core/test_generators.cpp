#include "malsched/core/generators.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace mc = malsched::core;
namespace ms = malsched::support;

class GeneratorFamilyTest : public ::testing::TestWithParam<mc::Family> {};

TEST_P(GeneratorFamilyTest, ProducesValidTasks) {
  ms::Rng rng(2718);
  mc::GeneratorConfig config;
  config.family = GetParam();
  config.num_tasks = 12;
  config.processors = 8.0;
  for (int rep = 0; rep < 20; ++rep) {
    const auto inst = mc::generate(config, rng);
    EXPECT_EQ(inst.size(), 12u);
    EXPECT_GT(inst.processors(), 0.0);
    for (const auto& t : inst.tasks()) {
      EXPECT_GT(t.volume, 0.0);
      EXPECT_GT(t.width, 0.0);
      EXPECT_GE(t.weight, 0.0);
    }
  }
}

TEST_P(GeneratorFamilyTest, DeterministicGivenSeed) {
  mc::GeneratorConfig config;
  config.family = GetParam();
  config.num_tasks = 6;
  config.processors = 4.0;
  ms::Rng rng_a(55);
  ms::Rng rng_b(55);
  const auto a = mc::generate(config, rng_a);
  const auto b = mc::generate(config, rng_b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.task(i).volume, b.task(i).volume);
    EXPECT_DOUBLE_EQ(a.task(i).width, b.task(i).width);
    EXPECT_DOUBLE_EQ(a.task(i).weight, b.task(i).weight);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, GeneratorFamilyTest,
                         ::testing::ValuesIn(mc::all_families()),
                         [](const auto& info) {
                           std::string name = mc::family_name(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(Generators, UniformRespectsPaperConstraints) {
  // §V: δ_i < P, w_i < 1, V_i < 1 (and all strictly positive).
  ms::Rng rng(31);
  mc::GeneratorConfig config;
  config.family = mc::Family::Uniform;
  config.num_tasks = 50;
  config.processors = 3.0;
  const auto inst = mc::generate(config, rng);
  for (const auto& t : inst.tasks()) {
    EXPECT_LE(t.width, 3.0);
    EXPECT_LE(t.volume, 1.0);
    EXPECT_LE(t.weight, 1.0);
  }
}

TEST(Generators, WideTasksAreAboveHalfP) {
  ms::Rng rng(32);
  mc::GeneratorConfig config;
  config.family = mc::Family::WideTasks;
  config.num_tasks = 50;
  config.processors = 6.0;
  const auto inst = mc::generate(config, rng);
  for (const auto& t : inst.tasks()) {
    EXPECT_GT(t.width, 3.0);
    EXPECT_LE(t.width, 6.0);
    EXPECT_DOUBLE_EQ(t.weight, 1.0);
  }
}

TEST(Generators, HomogeneousHalfIsSectionVB) {
  ms::Rng rng(33);
  mc::GeneratorConfig config;
  config.family = mc::Family::HomogeneousHalf;
  config.num_tasks = 30;
  config.processors = 17.0;  // must be ignored
  const auto inst = mc::generate(config, rng);
  EXPECT_DOUBLE_EQ(inst.processors(), 1.0);
  for (const auto& t : inst.tasks()) {
    EXPECT_DOUBLE_EQ(t.volume, 1.0);
    EXPECT_DOUBLE_EQ(t.weight, 1.0);
    EXPECT_GE(t.width, 0.5);
    EXPECT_LE(t.width, 1.0);
  }
}

TEST(Generators, UnitWidthFamily) {
  ms::Rng rng(34);
  mc::GeneratorConfig config;
  config.family = mc::Family::UnitWidth;
  config.num_tasks = 10;
  config.processors = 4.0;
  const auto inst = mc::generate(config, rng);
  for (const auto& t : inst.tasks()) {
    EXPECT_DOUBLE_EQ(t.width, 1.0);
  }
}

TEST(Generators, IntegralFamilyIsIntegral) {
  ms::Rng rng(35);
  mc::GeneratorConfig config;
  config.family = mc::Family::UniformIntegral;
  config.num_tasks = 10;
  config.processors = 5.0;
  const auto inst = mc::generate(config, rng);
  EXPECT_TRUE(inst.integral());
}

namespace {

// FNV-1a over the bit patterns of the generated doubles: one 64-bit
// fingerprint pins a family's entire (seed, n, P) output stream.
std::uint64_t fnv1a_double(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  for (int b = 0; b < 8; ++b) {
    h ^= (bits >> (8 * b)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t instance_hash(const mc::Instance& inst) {
  std::uint64_t h = 14695981039346656037ULL;
  h = fnv1a_double(h, inst.processors());
  for (const auto& t : inst.tasks()) {
    h = fnv1a_double(h, t.volume);
    h = fnv1a_double(h, t.width);
    h = fnv1a_double(h, t.weight);
  }
  return h;
}

}  // namespace

// Seed stability: the exact double stream of every family at a pinned
// (seed, n, P), fingerprinted.  Anything that perturbs a generator's draw
// sequence — a reordered draw, a new distribution parameter, an Rng change —
// flips the hash and fails here, because downstream golden results (bench
// fixtures, pinned CI traces, cached canonical keys) silently shift with the
// stream.  A deliberate generator change must update these constants and
// note the stream break in its commit.  (Families whose draws route through
// libm (heavy-tail's pow) are bit-stable on the glibc toolchains CI runs;
// a new platform that legitimately disagrees should regenerate the table.)
TEST(GeneratorGoldenHash, SeedStableStreams) {
  struct Golden {
    mc::Family family;
    std::uint64_t hash;
  };
  const Golden golden[] = {
      {mc::Family::Uniform, 0x66ad67248d805637ULL},
      {mc::Family::UniformIntegral, 0xb572e6b9883c2a3cULL},
      {mc::Family::EqualWeights, 0xa62395a28a9b0b6fULL},
      {mc::Family::EqualWeightsVolumes, 0x9bf1d24e32228e8cULL},
      {mc::Family::WideTasks, 0x52b01d670c23cc93ULL},
      {mc::Family::HomogeneousHalf, 0xf5c5cd747d1ce391ULL},
      {mc::Family::UnitWidth, 0x979f36e0937ef473ULL},
      {mc::Family::BandwidthLike, 0x92059589cb5b7d03ULL},
      {mc::Family::HeavyTailVolumes, 0xd9745e97a4314df3ULL},
  };
  // Every family must carry a golden row: growing the enum without pinning
  // the new stream fails here first.
  EXPECT_EQ(std::size(golden), mc::all_families().size());
  for (const auto& g : golden) {
    ms::Rng rng(20120521);
    mc::GeneratorConfig config;
    config.family = g.family;
    config.num_tasks = 8;
    config.processors = 4.0;
    const auto inst = mc::generate(config, rng);
    EXPECT_EQ(instance_hash(inst), g.hash)
        << mc::family_name(g.family)
        << ": generated stream changed (got 0x" << std::hex
        << instance_hash(inst) << ")";
  }
}
