#include "malsched/core/generators.hpp"

#include <gtest/gtest.h>

namespace mc = malsched::core;
namespace ms = malsched::support;

class GeneratorFamilyTest : public ::testing::TestWithParam<mc::Family> {};

TEST_P(GeneratorFamilyTest, ProducesValidTasks) {
  ms::Rng rng(2718);
  mc::GeneratorConfig config;
  config.family = GetParam();
  config.num_tasks = 12;
  config.processors = 8.0;
  for (int rep = 0; rep < 20; ++rep) {
    const auto inst = mc::generate(config, rng);
    EXPECT_EQ(inst.size(), 12u);
    EXPECT_GT(inst.processors(), 0.0);
    for (const auto& t : inst.tasks()) {
      EXPECT_GT(t.volume, 0.0);
      EXPECT_GT(t.width, 0.0);
      EXPECT_GE(t.weight, 0.0);
    }
  }
}

TEST_P(GeneratorFamilyTest, DeterministicGivenSeed) {
  mc::GeneratorConfig config;
  config.family = GetParam();
  config.num_tasks = 6;
  config.processors = 4.0;
  ms::Rng rng_a(55);
  ms::Rng rng_b(55);
  const auto a = mc::generate(config, rng_a);
  const auto b = mc::generate(config, rng_b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.task(i).volume, b.task(i).volume);
    EXPECT_DOUBLE_EQ(a.task(i).width, b.task(i).width);
    EXPECT_DOUBLE_EQ(a.task(i).weight, b.task(i).weight);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, GeneratorFamilyTest,
                         ::testing::ValuesIn(mc::all_families()),
                         [](const auto& info) {
                           std::string name = mc::family_name(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(Generators, UniformRespectsPaperConstraints) {
  // §V: δ_i < P, w_i < 1, V_i < 1 (and all strictly positive).
  ms::Rng rng(31);
  mc::GeneratorConfig config;
  config.family = mc::Family::Uniform;
  config.num_tasks = 50;
  config.processors = 3.0;
  const auto inst = mc::generate(config, rng);
  for (const auto& t : inst.tasks()) {
    EXPECT_LE(t.width, 3.0);
    EXPECT_LE(t.volume, 1.0);
    EXPECT_LE(t.weight, 1.0);
  }
}

TEST(Generators, WideTasksAreAboveHalfP) {
  ms::Rng rng(32);
  mc::GeneratorConfig config;
  config.family = mc::Family::WideTasks;
  config.num_tasks = 50;
  config.processors = 6.0;
  const auto inst = mc::generate(config, rng);
  for (const auto& t : inst.tasks()) {
    EXPECT_GT(t.width, 3.0);
    EXPECT_LE(t.width, 6.0);
    EXPECT_DOUBLE_EQ(t.weight, 1.0);
  }
}

TEST(Generators, HomogeneousHalfIsSectionVB) {
  ms::Rng rng(33);
  mc::GeneratorConfig config;
  config.family = mc::Family::HomogeneousHalf;
  config.num_tasks = 30;
  config.processors = 17.0;  // must be ignored
  const auto inst = mc::generate(config, rng);
  EXPECT_DOUBLE_EQ(inst.processors(), 1.0);
  for (const auto& t : inst.tasks()) {
    EXPECT_DOUBLE_EQ(t.volume, 1.0);
    EXPECT_DOUBLE_EQ(t.weight, 1.0);
    EXPECT_GE(t.width, 0.5);
    EXPECT_LE(t.width, 1.0);
  }
}

TEST(Generators, UnitWidthFamily) {
  ms::Rng rng(34);
  mc::GeneratorConfig config;
  config.family = mc::Family::UnitWidth;
  config.num_tasks = 10;
  config.processors = 4.0;
  const auto inst = mc::generate(config, rng);
  for (const auto& t : inst.tasks()) {
    EXPECT_DOUBLE_EQ(t.width, 1.0);
  }
}

TEST(Generators, IntegralFamilyIsIntegral) {
  ms::Rng rng(35);
  mc::GeneratorConfig config;
  config.family = mc::Family::UniformIntegral;
  config.num_tasks = 10;
  config.processors = 5.0;
  const auto inst = mc::generate(config, rng);
  EXPECT_TRUE(inst.integral());
}
