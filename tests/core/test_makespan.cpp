#include "malsched/core/makespan.hpp"

#include <gtest/gtest.h>

#include "malsched/core/generators.hpp"

namespace mc = malsched::core;
namespace ms = malsched::support;

TEST(Makespan, AreaDominated) {
  // Total volume 6 on P=2 -> 3; tallest task 2/2=1.
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}, {4.0, 2.0, 1.0}});
  EXPECT_DOUBLE_EQ(mc::optimal_makespan(inst), 3.0);
}

TEST(Makespan, HeightDominated) {
  // Narrow long task: V=4, δ=1 -> height 4 > area 5/4.
  const mc::Instance inst(4.0, {{4.0, 1.0, 1.0}, {1.0, 4.0, 1.0}});
  EXPECT_DOUBLE_EQ(mc::optimal_makespan(inst), 4.0);
}

TEST(Makespan, WfFeasibilityConfirmsOptimality) {
  ms::Rng rng(103);
  for (int rep = 0; rep < 40; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 6;
    config.processors = 2.0;
    const auto inst = mc::generate(config, rng);
    const double cmax = mc::optimal_makespan(inst);
    std::vector<double> at(inst.size(), cmax * (1.0 + 1e-9));
    std::vector<double> below(inst.size(), cmax * (1.0 - 1e-4));
    EXPECT_TRUE(mc::deadlines_feasible(inst, at)) << "rep " << rep;
    EXPECT_FALSE(mc::deadlines_feasible(inst, below)) << "rep " << rep;
  }
}

TEST(Lmax, ZeroWhenDueDatesEqualCompletions) {
  // Due dates = achievable completions: Lmax <= 0 (can even be negative if
  // there is slack; here the schedule is tight so Lmax == 0).
  const mc::Instance inst(1.0, {{0.5, 1.0, 1.0}, {0.5, 1.0, 1.0}});
  const std::vector<double> due{0.5, 1.0};
  const auto result = mc::minimize_lmax(inst, due);
  EXPECT_NEAR(result.lmax, 0.0, 1e-6);
}

TEST(Lmax, PositiveWhenDueDatesTooTight) {
  const mc::Instance inst(1.0, {{1.0, 1.0, 1.0}});
  const std::vector<double> due{0.25};
  const auto result = mc::minimize_lmax(inst, due);
  EXPECT_NEAR(result.lmax, 0.75, 1e-6);
}

TEST(Lmax, NegativeWhenSlack) {
  const mc::Instance inst(2.0, {{1.0, 2.0, 1.0}});
  const std::vector<double> due{5.0};
  const auto result = mc::minimize_lmax(inst, due);
  EXPECT_NEAR(result.lmax, -4.5, 1e-6);  // completes at 0.5
}

TEST(Lmax, ResultIsFeasibleAndTight) {
  ms::Rng rng(107);
  for (int rep = 0; rep < 25; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 5;
    config.processors = 2.0;
    const auto inst = mc::generate(config, rng);
    std::vector<double> due(inst.size());
    for (auto& d : due) {
      d = rng.uniform(0.0, 2.0);
    }
    const auto result = mc::minimize_lmax(inst, due);
    std::vector<double> at(inst.size());
    std::vector<double> below(inst.size());
    for (std::size_t i = 0; i < inst.size(); ++i) {
      at[i] = due[i] + result.lmax + 1e-6;
      below[i] = due[i] + result.lmax - 1e-4;
    }
    EXPECT_TRUE(mc::deadlines_feasible(inst, at)) << "rep " << rep;
    EXPECT_FALSE(mc::deadlines_feasible(inst, below)) << "rep " << rep;
  }
}

TEST(Lmax, EdfStructure) {
  // With equal heights, the binding constraint is the cumulative area at
  // each deadline; check against a hand-computed case.
  // P=1, three unit tasks, due dates 1, 2, 3: perfectly schedulable
  // sequentially -> Lmax = 0.
  const mc::Instance inst(1.0, {{1.0, 1.0, 1.0},
                                {1.0, 1.0, 1.0},
                                {1.0, 1.0, 1.0}});
  const std::vector<double> due{1.0, 2.0, 3.0};
  EXPECT_NEAR(mc::minimize_lmax(inst, due).lmax, 0.0, 1e-6);
  // Clustered due dates: all at 1 -> last finishes at 3 -> Lmax = 2.
  const std::vector<double> clustered{1.0, 1.0, 1.0};
  EXPECT_NEAR(mc::minimize_lmax(inst, clustered).lmax, 2.0, 1e-6);
}
