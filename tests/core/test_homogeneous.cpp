#include "malsched/core/homogeneous.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "malsched/core/greedy.hpp"
#include "malsched/core/instance.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/support/rng.hpp"

namespace mc = malsched::core;
namespace ms = malsched::support;
using malsched::numeric::Rational;

namespace {

mc::Instance to_instance(std::span<const double> delta) {
  std::vector<mc::Task> tasks;
  for (double d : delta) {
    tasks.push_back({1.0, d, 1.0});
  }
  return mc::Instance(1.0, std::move(tasks));
}

std::vector<Rational> rational_deltas(ms::Rng& rng, std::size_t n) {
  // δ = k / (2k') with δ in [1/2, 1]: pick small integer fractions.
  std::vector<Rational> out;
  for (std::size_t i = 0; i < n; ++i) {
    const long long den = rng.uniform_int(2, 24);
    const long long num = rng.uniform_int((den + 1) / 2, den);
    out.emplace_back(num, den);
  }
  return out;
}

}  // namespace

TEST(Homogeneous, FirstTaskCompletion) {
  const std::vector<double> delta{0.8, 0.6};
  const std::vector<std::size_t> order{0, 1};
  const auto c = mc::homogeneous_completions(delta, order);
  EXPECT_NEAR(c[0], 1.0 / 0.8, 1e-12);
}

TEST(Homogeneous, RecurrenceMatchesGreedySimulation) {
  // The closed-form recurrence must agree with the actual greedy schedule
  // on the corresponding P=1, V=w=1 instance.
  ms::Rng rng(113);
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    std::vector<double> delta(n);
    for (auto& d : delta) {
      d = rng.uniform(0.5, 1.0);
    }
    const auto order = rng.permutation(n);
    const auto inst = to_instance(delta);
    const auto sched = mc::greedy_schedule(inst, order);
    ASSERT_TRUE(sched.validate(inst).valid) << "rep " << rep;
    const auto simulated = sched.completions();
    const auto recurrence = mc::homogeneous_completions(delta, order);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(simulated[i], recurrence[i], 1e-7)
          << "rep " << rep << " task " << i;
    }
  }
}

TEST(Homogeneous, TotalMatchesSum) {
  const std::vector<double> delta{0.9, 0.7, 0.5};
  const std::vector<std::size_t> order{2, 0, 1};
  const auto c = mc::homogeneous_completions(delta, order);
  EXPECT_NEAR(mc::homogeneous_total(delta, order), c[0] + c[1] + c[2], 1e-12);
}

TEST(Homogeneous, ExactAndDoubleAgree) {
  ms::Rng rng(127);
  for (int rep = 0; rep < 20; ++rep) {
    const auto exact_delta = rational_deltas(rng, 5);
    std::vector<double> delta;
    for (const auto& d : exact_delta) {
      delta.push_back(d.to_double());
    }
    const auto order = rng.permutation(5);
    const double via_double = mc::homogeneous_total(delta, order);
    const auto via_exact = mc::homogeneous_total_exact(exact_delta, order);
    EXPECT_NEAR(via_double, via_exact.to_double(), 1e-9) << "rep " << rep;
  }
}

TEST(Homogeneous, Conjecture13ReversalSymmetryExact) {
  // The paper formally checked this up to 15 tasks with Sage; we verify
  // random instances and orders exactly with rationals.
  ms::Rng rng(131);
  for (int rep = 0; rep < 30; ++rep) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 8));
    const auto delta = rational_deltas(rng, n);
    const auto order = rng.permutation(n);
    EXPECT_TRUE(mc::reversal_symmetric_exact(delta, order))
        << "rep " << rep << " n=" << n;
  }
}

TEST(Homogeneous, Conjecture13AllOrdersSmallN) {
  ms::Rng rng(137);
  const auto delta = rational_deltas(rng, 4);
  auto order = mc::identity_order(4);
  do {
    EXPECT_TRUE(mc::reversal_symmetric_exact(delta, order));
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(Homogeneous, OptimalOrderPatternsFromPaper) {
  // §V-B: with δ_1 >= δ_2 >= ... (descending), the paper states the optimal
  // orders are 1,2 / 2,1 for n=2 and 1,3,2 / 2,3,1 for n=3; both reproduce
  // exactly.  For n=4 the paper prints 1,3,2,4 / 4,2,3,1, but evaluating the
  // paper's own recurrence (cross-validated against greedy simulation in
  // RecurrenceMatchesGreedySimulation) yields 1,3,4,2 / 2,4,3,1 as the
  // strict optimum for every δ profile we tried — we pin the measured
  // pattern and record the discrepancy in EXPERIMENTS.md.
  ms::Rng rng(139);
  for (int rep = 0; rep < 20; ++rep) {
    // Distinct deltas to make the optimum (generically) unique up to
    // reversal.
    std::vector<double> delta;
    while (delta.size() < 4) {
      const double d = rng.uniform(0.55, 0.99);
      bool close = false;
      for (double existing : delta) {
        close = close || std::fabs(existing - d) < 0.02;
      }
      if (!close) {
        delta.push_back(d);
      }
    }
    std::sort(delta.begin(), delta.end(), std::greater<>());

    {
      const std::vector<double> two{delta[0], delta[1]};
      const auto best = mc::best_homogeneous_order(two);
      // Both orders optimal (symmetry): accept either.
      const bool ok = best.order == std::vector<std::size_t>{0, 1} ||
                      best.order == std::vector<std::size_t>{1, 0};
      EXPECT_TRUE(ok);
    }
    {
      const std::vector<double> three{delta[0], delta[1], delta[2]};
      const auto best = mc::best_homogeneous_order(three);
      const bool ok = best.order == std::vector<std::size_t>{0, 2, 1} ||
                      best.order == std::vector<std::size_t>{1, 2, 0};
      EXPECT_TRUE(ok) << "rep " << rep << " got " << best.order[0]
                      << best.order[1] << best.order[2];
    }
    {
      const auto best = mc::best_homogeneous_order(delta);
      const bool ok =
          best.order == std::vector<std::size_t>{0, 2, 3, 1} ||
          best.order == std::vector<std::size_t>{1, 3, 2, 0};
      EXPECT_TRUE(ok) << "rep " << rep << " got " << best.order[0]
                      << best.order[1] << best.order[2] << best.order[3];
    }
  }
}

TEST(Homogeneous, FiveTaskNecessaryCondition) {
  // (δ_l − δ_j)(δ_i − δ_m) <= 0 for every optimal 5-task order.
  ms::Rng rng(149);
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<double> delta(5);
    for (auto& d : delta) {
      d = rng.uniform(0.5, 1.0);
    }
    const auto best = mc::best_homogeneous_order(delta);
    EXPECT_TRUE(mc::five_task_condition(delta, best.order)) << "rep " << rep;
  }
}

TEST(HomogeneousDeath, RejectsDeltaOutOfRange) {
  const std::vector<double> delta{0.4, 0.9};
  const std::vector<std::size_t> order{0, 1};
  EXPECT_DEATH((void)mc::homogeneous_completions(delta, order), "1/2");
}
