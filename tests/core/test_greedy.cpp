#include "malsched/core/greedy.hpp"

#include <gtest/gtest.h>

#include "malsched/core/generators.hpp"
#include "malsched/core/optimal.hpp"
#include "malsched/core/orderings.hpp"

namespace mc = malsched::core;
namespace ms = malsched::support;

TEST(Greedy, SingleTaskRunsFlatOut) {
  const mc::Instance inst(4.0, {{6.0, 3.0, 1.0}});
  const auto sched = mc::greedy_schedule(inst, mc::identity_order(1));
  ASSERT_TRUE(sched.validate(inst).valid);
  EXPECT_DOUBLE_EQ(sched.completions()[0], 2.0);  // 6 / min(3,4)
}

TEST(Greedy, SecondTaskFillsLeftover) {
  // P=2: T0 (V=2, δ=2) then T1 (V=1, δ=2).  T0 takes the whole machine
  // until t=1; T1 runs after at rate 2 until 1.5.
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}, {1.0, 2.0, 1.0}});
  const auto sched = mc::greedy_schedule(inst, mc::identity_order(2));
  ASSERT_TRUE(sched.validate(inst).valid);
  const auto done = sched.completions();
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 1.5);
}

TEST(Greedy, NarrowFirstTaskLeavesRoom) {
  // T0 (V=2, δ=1) occupies one processor for 2 units; T1 (V=2, δ=2) gets
  // 1 processor until t=2... it needs 2 volume: rate 1 for 2 -> done at 2.
  const mc::Instance inst(2.0, {{2.0, 1.0, 1.0}, {2.0, 2.0, 1.0}});
  const auto sched = mc::greedy_schedule(inst, mc::identity_order(2));
  ASSERT_TRUE(sched.validate(inst).valid);
  const auto done = sched.completions();
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);
}

TEST(Greedy, ObjectiveMatchesSchedule) {
  ms::Rng rng(41);
  for (int rep = 0; rep < 50; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 6;
    config.processors = 3.0;
    const auto inst = mc::generate(config, rng);
    const auto order = rng.permutation(inst.size());
    const auto sched = mc::greedy_schedule(inst, order);
    ASSERT_TRUE(sched.validate(inst).valid) << "rep " << rep;
    EXPECT_NEAR(sched.weighted_completion(inst),
                mc::greedy_objective(inst, order), 1e-9)
        << "rep " << rep;
  }
}

TEST(Greedy, ValidOnAllFamilies) {
  ms::Rng rng(43);
  for (const auto family : mc::all_families()) {
    mc::GeneratorConfig config;
    config.family = family;
    config.num_tasks = 8;
    config.processors = 4.0;
    const auto inst = mc::generate(config, rng);
    const auto sched = mc::greedy_schedule(inst, mc::smith_order(inst));
    const auto check = sched.validate(inst);
    EXPECT_TRUE(check.valid)
        << mc::family_name(family) << ": " << check.message;
  }
}

TEST(Greedy, ExhaustiveBeatsHeuristicOrEqual) {
  ms::Rng rng(47);
  for (int rep = 0; rep < 20; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 5;
    config.processors = 2.0;
    const auto inst = mc::generate(config, rng);
    const auto exhaustive = mc::best_greedy_exhaustive(inst);
    const auto heuristic = mc::best_greedy_heuristic(inst);
    EXPECT_EQ(exhaustive.orders_tried, 120u);
    EXPECT_LE(exhaustive.objective, heuristic.objective + 1e-9)
        << "rep " << rep;
  }
}

TEST(Greedy, GreedyDominatesItsOwnCompletionOrderLp) {
  // For any greedy schedule, re-solving the LP with the greedy completion
  // order can only improve (Corollary 1 optimality for that order).
  ms::Rng rng(53);
  for (int rep = 0; rep < 20; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 4;
    config.processors = 2.0;
    const auto inst = mc::generate(config, rng);
    const auto order = rng.permutation(inst.size());
    const auto sched = mc::greedy_schedule(inst, order);
    // Completion order of the greedy schedule:
    const auto columns = sched.to_columns(inst);
    const double lp =
        mc::order_lp_objective(inst, columns.order());
    EXPECT_LE(lp, sched.weighted_completion(inst) + 1e-7) << "rep " << rep;
  }
}

TEST(Greedy, Theorem11OptimalIsGreedyForWideEqualWeightTasks) {
  // δ_i > P/2 and equal weights: the exhaustive-greedy optimum must match
  // the LP-enumerated optimum (every optimal schedule is greedy).
  ms::Rng rng(59);
  for (int rep = 0; rep < 15; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::WideTasks;
    config.num_tasks = 4;
    config.processors = 2.0;
    const auto inst = mc::generate(config, rng);
    const auto greedy = mc::best_greedy_exhaustive(inst);
    const auto opt = mc::optimal_by_enumeration(inst);
    EXPECT_NEAR(greedy.objective, opt.objective,
                1e-6 * std::max(1.0, opt.objective))
        << "rep " << rep;
  }
}

TEST(Greedy, ZeroVolumeTaskHandled) {
  const mc::Instance inst(2.0, {{0.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  const auto sched = mc::greedy_schedule(inst, mc::identity_order(2));
  EXPECT_TRUE(sched.validate(inst).valid);
  EXPECT_DOUBLE_EQ(sched.completions()[0], 0.0);
}

TEST(Greedy, PreCancelledTokenAbortsBothSearches) {
  const mc::Instance inst(4.0, {{6.0, 3.0, 1.0},
                                {2.0, 2.0, 2.0},
                                {1.0, 1.0, 0.5},
                                {3.0, 4.0, 1.5}});
  mc::CancelSource source;
  source.request_cancel();

  const auto heuristic = mc::best_greedy_heuristic(inst, source.token());
  EXPECT_TRUE(heuristic.cancelled);
  EXPECT_EQ(heuristic.orders_tried, 0u);

  const auto exhaustive = mc::best_greedy_exhaustive(inst, source.token());
  EXPECT_TRUE(exhaustive.cancelled);
  EXPECT_EQ(exhaustive.orders_tried, 0u);
}

TEST(Greedy, UnfiredTokenLeavesTheSearchAnswerUnchanged) {
  mc::GeneratorConfig config;
  config.family = mc::Family::Uniform;
  config.num_tasks = 7;
  config.processors = 4.0;
  ms::Rng rng(20120521);
  const mc::Instance inst = mc::generate(config, rng);
  mc::CancelSource source;
  const auto with_token = mc::best_greedy_heuristic(inst, source.token());
  const auto without = mc::best_greedy_heuristic(inst);
  EXPECT_FALSE(with_token.cancelled);
  EXPECT_EQ(with_token.objective, without.objective);
  EXPECT_EQ(with_token.order, without.order);
  EXPECT_EQ(with_token.orders_tried, without.orders_tried);
}

TEST(Orderings, SmithSortsByRatio) {
  // Ratios V/w: T0: 4, T1: 1, T2: 2 -> order 1, 2, 0.
  const mc::Instance inst(2.0, {{4.0, 1.0, 1.0}, {1.0, 1.0, 1.0},
                                {4.0, 1.0, 2.0}});
  const auto order = mc::smith_order(inst);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(Orderings, HeightTallestFirst) {
  const mc::Instance inst(4.0, {{1.0, 1.0, 1.0},   // h=1
                                {4.0, 2.0, 1.0},   // h=2
                                {1.0, 4.0, 1.0}});  // h=0.25
  const auto order = mc::height_order(inst);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 0, 2}));
}

TEST(Orderings, WidthDescendingAndReverse) {
  const mc::Instance inst(4.0, {{1.0, 1.0, 1.0}, {1.0, 3.0, 1.0},
                                {1.0, 2.0, 1.0}});
  const auto order = mc::width_order(inst);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
  EXPECT_EQ(mc::reversed(order), (std::vector<std::size_t>{0, 2, 1}));
}

TEST(Orderings, StableOnTies) {
  const mc::Instance inst(2.0, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  EXPECT_EQ(mc::smith_order(inst), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(mc::volume_order(inst), (std::vector<std::size_t>{0, 1}));
}
