#include "malsched/core/release_dates.hpp"

#include <gtest/gtest.h>

#include "malsched/core/generators.hpp"
#include "malsched/core/makespan.hpp"
#include "malsched/core/water_filling.hpp"

namespace mc = malsched::core;
namespace ms = malsched::support;

namespace {

std::vector<double> zeros(std::size_t n) { return std::vector<double>(n, 0.0); }

}  // namespace

TEST(ReleaseDates, AgreesWithWaterFillWhenAllReleasedAtZero) {
  // With r = 0 the flow feasibility must coincide with WF feasibility.
  ms::Rng rng(401);
  int feasible = 0;
  for (int rep = 0; rep < 100; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 6;
    gen.processors = 2.0;
    const auto inst = mc::generate(gen, rng);
    std::vector<double> deadlines(inst.size());
    for (auto& d : deadlines) {
      d = rng.uniform(0.2, 2.5);
    }
    const bool via_flow =
        mc::released_feasible(inst, zeros(inst.size()), deadlines);
    const bool via_wf = mc::water_fill_feasible(inst, deadlines);
    EXPECT_EQ(via_flow, via_wf) << "rep " << rep;
    feasible += via_wf ? 1 : 0;
  }
  EXPECT_GT(feasible, 5);
  EXPECT_LT(feasible, 95);
}

TEST(ReleaseDates, MakespanMatchesNoReleaseFormula) {
  ms::Rng rng(409);
  for (int rep = 0; rep < 20; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 5;
    gen.processors = 2.0;
    const auto inst = mc::generate(gen, rng);
    const auto released =
        mc::released_optimal_makespan(inst, zeros(inst.size()));
    EXPECT_NEAR(released.makespan, mc::optimal_makespan(inst),
                1e-6 * std::max(1.0, released.makespan))
        << "rep " << rep;
  }
}

TEST(ReleaseDates, StaggeredReleasesDelayCompletion) {
  // Two full-width tasks; the second only appears at t = 2.
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}, {2.0, 2.0, 1.0}});
  const std::vector<double> release{0.0, 2.0};
  const auto result = mc::released_optimal_makespan(inst, release);
  EXPECT_NEAR(result.makespan, 3.0, 1e-6);  // 2 + 2/2
}

TEST(ReleaseDates, HandComputedWindowCase) {
  // P=1, two unit tasks with windows [0,2] and [1,2]: total volume 2 in
  // [0,2] works only if the machine never idles: feasible exactly.
  const mc::Instance inst(1.0, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  const std::vector<double> release{0.0, 1.0};
  const std::vector<double> full{2.0, 2.0};
  EXPECT_TRUE(mc::released_feasible(inst, release, full));
  // Shrink the horizon: infeasible.
  const std::vector<double> tight{1.9, 1.9};
  EXPECT_FALSE(mc::released_feasible(inst, release, tight));
  // The second task's window [1, 1.5] is too small for its width-1 volume.
  const std::vector<double> narrow{2.5, 1.5};
  EXPECT_FALSE(mc::released_feasible(inst, release, narrow));
}

TEST(ReleaseDates, ScheduleExtractionIsValidAndRespectsWindows) {
  ms::Rng rng(419);
  for (int rep = 0; rep < 30; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 6;
    gen.processors = 3.0;
    const auto inst = mc::generate(gen, rng);
    std::vector<double> release(inst.size());
    for (auto& r : release) {
      r = rng.uniform(0.0, 1.0);
    }
    const auto cmax = mc::released_optimal_makespan(inst, release);
    const std::vector<double> deadlines(inst.size(),
                                        cmax.makespan * (1.0 + 1e-7));
    const auto extracted = mc::released_schedule(inst, release, deadlines);
    ASSERT_TRUE(extracted.feasible) << "rep " << rep;
    const auto check = extracted.schedule.validate(inst, {1e-7, 1e-7});
    EXPECT_TRUE(check.valid) << "rep " << rep << ": " << check.message;
    // No task may run before its release date.
    for (const auto& step : extracted.schedule.steps()) {
      for (std::size_t i = 0; i < inst.size(); ++i) {
        if (step.rates[i] > 1e-9) {
          EXPECT_GE(step.begin, release[i] - 1e-6)
              << "rep " << rep << " task " << i;
        }
      }
    }
  }
}

TEST(ReleaseDates, LowerBoundIsAttainedOrBelow) {
  ms::Rng rng(421);
  for (int rep = 0; rep < 30; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 6;
    gen.processors = 2.0;
    const auto inst = mc::generate(gen, rng);
    std::vector<double> release(inst.size());
    for (auto& r : release) {
      r = rng.uniform(0.0, 1.5);
    }
    const double bound = mc::released_makespan_lower_bound(inst, release);
    const auto result = mc::released_optimal_makespan(inst, release);
    EXPECT_GE(result.makespan, bound - 1e-6) << "rep " << rep;
  }
}

TEST(ReleaseDates, LmaxWithReleasesZeroMatchesWfVersion) {
  ms::Rng rng(431);
  for (int rep = 0; rep < 15; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 5;
    gen.processors = 2.0;
    const auto inst = mc::generate(gen, rng);
    std::vector<double> due(inst.size());
    for (auto& d : due) {
      d = rng.uniform(0.0, 2.0);
    }
    const auto via_flow =
        mc::released_minimize_lmax(inst, zeros(inst.size()), due);
    const auto via_wf = mc::minimize_lmax(inst, due);
    EXPECT_NEAR(via_flow.lmax, via_wf.lmax,
                1e-5 * std::max(1.0, std::fabs(via_wf.lmax)))
        << "rep " << rep;
  }
}

TEST(ReleaseDates, LmaxRespectsReleaseDelays) {
  // One task released late: lateness grows by exactly the delay.
  const mc::Instance inst(1.0, {{1.0, 1.0, 1.0}});
  const std::vector<double> due{1.0};
  const std::vector<double> at_zero{0.0};
  const std::vector<double> at_half{0.5};
  const auto on_time = mc::released_minimize_lmax(inst, at_zero, due);
  const auto delayed = mc::released_minimize_lmax(inst, at_half, due);
  EXPECT_NEAR(on_time.lmax, 0.0, 1e-6);
  EXPECT_NEAR(delayed.lmax, 0.5, 1e-6);
}

TEST(ReleaseDates, EmptyWindowDetected) {
  const mc::Instance inst(1.0, {{1.0, 1.0, 1.0}});
  const std::vector<double> release{2.0};
  const std::vector<double> deadline{1.0};
  EXPECT_FALSE(mc::released_feasible(inst, release, deadline));
}
