#include "malsched/core/release_dates.hpp"

#include <gtest/gtest.h>

#include "malsched/core/bnb.hpp"
#include "malsched/core/bounds.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/core/makespan.hpp"
#include "malsched/core/water_filling.hpp"

namespace mc = malsched::core;
namespace ms = malsched::support;

namespace {

std::vector<double> zeros(std::size_t n) { return std::vector<double>(n, 0.0); }

}  // namespace

TEST(ReleaseDates, AgreesWithWaterFillWhenAllReleasedAtZero) {
  // With r = 0 the flow feasibility must coincide with WF feasibility.
  ms::Rng rng(401);
  int feasible = 0;
  for (int rep = 0; rep < 100; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 6;
    gen.processors = 2.0;
    const auto inst = mc::generate(gen, rng);
    std::vector<double> deadlines(inst.size());
    for (auto& d : deadlines) {
      d = rng.uniform(0.2, 2.5);
    }
    const bool via_flow =
        mc::released_feasible(inst, zeros(inst.size()), deadlines);
    const bool via_wf = mc::water_fill_feasible(inst, deadlines);
    EXPECT_EQ(via_flow, via_wf) << "rep " << rep;
    feasible += via_wf ? 1 : 0;
  }
  EXPECT_GT(feasible, 5);
  EXPECT_LT(feasible, 95);
}

TEST(ReleaseDates, MakespanMatchesNoReleaseFormula) {
  ms::Rng rng(409);
  for (int rep = 0; rep < 20; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 5;
    gen.processors = 2.0;
    const auto inst = mc::generate(gen, rng);
    const auto released =
        mc::released_optimal_makespan(inst, zeros(inst.size()));
    EXPECT_NEAR(released.makespan, mc::optimal_makespan(inst),
                1e-6 * std::max(1.0, released.makespan))
        << "rep " << rep;
  }
}

TEST(ReleaseDates, StaggeredReleasesDelayCompletion) {
  // Two full-width tasks; the second only appears at t = 2.
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}, {2.0, 2.0, 1.0}});
  const std::vector<double> release{0.0, 2.0};
  const auto result = mc::released_optimal_makespan(inst, release);
  EXPECT_NEAR(result.makespan, 3.0, 1e-6);  // 2 + 2/2
}

TEST(ReleaseDates, HandComputedWindowCase) {
  // P=1, two unit tasks with windows [0,2] and [1,2]: total volume 2 in
  // [0,2] works only if the machine never idles: feasible exactly.
  const mc::Instance inst(1.0, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  const std::vector<double> release{0.0, 1.0};
  const std::vector<double> full{2.0, 2.0};
  EXPECT_TRUE(mc::released_feasible(inst, release, full));
  // Shrink the horizon: infeasible.
  const std::vector<double> tight{1.9, 1.9};
  EXPECT_FALSE(mc::released_feasible(inst, release, tight));
  // The second task's window [1, 1.5] is too small for its width-1 volume.
  const std::vector<double> narrow{2.5, 1.5};
  EXPECT_FALSE(mc::released_feasible(inst, release, narrow));
}

TEST(ReleaseDates, ScheduleExtractionIsValidAndRespectsWindows) {
  ms::Rng rng(419);
  for (int rep = 0; rep < 30; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 6;
    gen.processors = 3.0;
    const auto inst = mc::generate(gen, rng);
    std::vector<double> release(inst.size());
    for (auto& r : release) {
      r = rng.uniform(0.0, 1.0);
    }
    const auto cmax = mc::released_optimal_makespan(inst, release);
    const std::vector<double> deadlines(inst.size(),
                                        cmax.makespan * (1.0 + 1e-7));
    const auto extracted = mc::released_schedule(inst, release, deadlines);
    ASSERT_TRUE(extracted.feasible) << "rep " << rep;
    const auto check = extracted.schedule.validate(inst, {1e-7, 1e-7});
    EXPECT_TRUE(check.valid) << "rep " << rep << ": " << check.message;
    // No task may run before its release date.
    for (const auto& step : extracted.schedule.steps()) {
      for (std::size_t i = 0; i < inst.size(); ++i) {
        if (step.rates[i] > 1e-9) {
          EXPECT_GE(step.begin, release[i] - 1e-6)
              << "rep " << rep << " task " << i;
        }
      }
    }
  }
}

TEST(ReleaseDates, LowerBoundIsAttainedOrBelow) {
  ms::Rng rng(421);
  for (int rep = 0; rep < 30; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 6;
    gen.processors = 2.0;
    const auto inst = mc::generate(gen, rng);
    std::vector<double> release(inst.size());
    for (auto& r : release) {
      r = rng.uniform(0.0, 1.5);
    }
    const double bound = mc::released_makespan_lower_bound(inst, release);
    const auto result = mc::released_optimal_makespan(inst, release);
    EXPECT_GE(result.makespan, bound - 1e-6) << "rep " << rep;
  }
}

TEST(ReleaseDates, LmaxWithReleasesZeroMatchesWfVersion) {
  ms::Rng rng(431);
  for (int rep = 0; rep < 15; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 5;
    gen.processors = 2.0;
    const auto inst = mc::generate(gen, rng);
    std::vector<double> due(inst.size());
    for (auto& d : due) {
      d = rng.uniform(0.0, 2.0);
    }
    const auto via_flow =
        mc::released_minimize_lmax(inst, zeros(inst.size()), due);
    const auto via_wf = mc::minimize_lmax(inst, due);
    EXPECT_NEAR(via_flow.lmax, via_wf.lmax,
                1e-5 * std::max(1.0, std::fabs(via_wf.lmax)))
        << "rep " << rep;
  }
}

TEST(ReleaseDates, LmaxRespectsReleaseDelays) {
  // One task released late: lateness grows by exactly the delay.
  const mc::Instance inst(1.0, {{1.0, 1.0, 1.0}});
  const std::vector<double> due{1.0};
  const std::vector<double> at_zero{0.0};
  const std::vector<double> at_half{0.5};
  const auto on_time = mc::released_minimize_lmax(inst, at_zero, due);
  const auto delayed = mc::released_minimize_lmax(inst, at_half, due);
  EXPECT_NEAR(on_time.lmax, 0.0, 1e-6);
  EXPECT_NEAR(delayed.lmax, 0.5, 1e-6);
}

TEST(ReleaseDates, EmptyWindowDetected) {
  const mc::Instance inst(1.0, {{1.0, 1.0, 1.0}});
  const std::vector<double> release{2.0};
  const std::vector<double> deadline{1.0};
  EXPECT_FALSE(mc::released_feasible(inst, release, deadline));
}

// --- Frozen-prefix replan helpers (the online layer's state transition) ---

TEST(FrozenPrefix, RemainingInstanceClampsExecutedVolume) {
  const mc::Instance inst(4.0, {{2.0, 2.0, 1.0}, {1.0, 1.0, 0.5}});
  // Tolerance residue: task 0 "executed" slightly more than its volume;
  // task 1 got a spurious negative amount.  Both clamp to [0, V].
  const std::vector<double> executed{2.0 + 1e-12, -1e-12};
  const auto rest = mc::remaining_instance(inst, executed);
  EXPECT_EQ(rest.task(0).volume, 0.0);
  EXPECT_EQ(rest.task(1).volume, 1.0);
  // Widths, weights and P are untouched — only volumes shrink.
  EXPECT_EQ(rest.processors(), inst.processors());
  EXPECT_EQ(rest.task(0).width, inst.task(0).width);
  EXPECT_EQ(rest.task(0).weight, inst.task(0).weight);
}

TEST(FrozenPrefix, SpliceHandlesEmptySides) {
  const mc::StepSchedule empty;
  mc::StepSchedule plan(1, {{0.0, 1.0, {1.0}}});
  EXPECT_EQ(mc::splice_frozen_prefix(empty, plan).steps().size(), 1u);
  EXPECT_EQ(mc::splice_frozen_prefix(plan, empty).steps().size(), 1u);
  EXPECT_EQ(mc::splice_frozen_prefix(empty, empty).steps().size(), 0u);
}

TEST(FrozenPrefix, SpliceSnapsToleranceDriftAtSeam) {
  // The replanner re-derived `now` with tolerance-level drift: the suffix
  // starts 1e-12 late.  The splice snaps it so contiguity survives.
  const mc::StepSchedule prefix(1, {{0.0, 1.0, {2.0}}});
  const mc::StepSchedule suffix(1, {{1.0 + 1e-12, 2.0, {2.0}}});
  const auto whole = mc::splice_frozen_prefix(prefix, suffix);
  ASSERT_EQ(whole.steps().size(), 2u);
  EXPECT_EQ(whole.steps()[1].begin, whole.steps()[0].end);
  const mc::Instance inst(2.0, {{4.0 + 2e-12, 2.0, 1.0}});
  EXPECT_TRUE(static_cast<bool>(whole.validate(inst)));
}

using FrozenPrefixDeathTest = ::testing::Test;

TEST(FrozenPrefixDeathTest, SpliceRejectsSeamGap) {
  const mc::StepSchedule prefix(1, {{0.0, 1.0, {1.0}}});
  const mc::StepSchedule gapped(1, {{1.5, 2.0, {1.0}}});
  EXPECT_DEATH((void)mc::splice_frozen_prefix(prefix, gapped),
               "suffix plan must start where the frozen prefix ends");
}

TEST(FrozenPrefix, ArrivalMidSliceFreezesExecutedWork) {
  // Task 0 runs alone at rate 2 over [0, 2); task 1 arrives at t = 1, mid
  // slice.  The replan freezes the executed half (volume 2 of 4) and
  // re-solves the suffix over the remainders.
  const mc::Instance inst(4.0, {{4.0, 2.0, 1.0}, {2.0, 2.0, 1.0}});
  const std::vector<double> executed{2.0, 0.0};
  const auto rest = mc::remaining_instance(inst, executed);
  EXPECT_EQ(rest.task(0).volume, 2.0);
  EXPECT_EQ(rest.task(1).volume, 2.0);
  // A suffix plan over the remainders, shifted to start at the arrival.
  const mc::StepSchedule prefix(2, {{0.0, 1.0, {2.0, 0.0}}});
  const mc::StepSchedule suffix(2, {{1.0, 2.0, {2.0, 2.0}}});
  const auto whole = mc::splice_frozen_prefix(prefix, suffix);
  const auto check = whole.validate(inst);
  EXPECT_TRUE(static_cast<bool>(check)) << check.message;
  // No work for task 1 before its arrival, and volumes conserve end-to-end.
  EXPECT_EQ(whole.steps()[0].rates[1], 0.0);
  const auto volumes = whole.volumes();
  EXPECT_DOUBLE_EQ(volumes[0], 4.0);
  EXPECT_DOUBLE_EQ(volumes[1], 2.0);
}

TEST(FrozenPrefix, ZeroVolumeTaskArrivingAfterWorkStarted) {
  // A zero-volume task with a late release contributes exactly w · r to the
  // ΣwC lower bound (it completes at arrival under the online semantics)
  // and survives remaining_instance untouched.
  const mc::Instance inst(2.0, {{1.0, 1.0, 1.0}, {0.0, 1.0, 2.0}});
  const std::vector<double> release{0.0, 3.0};
  const double bound =
      mc::released_weighted_completion_lower_bound(inst, release);
  // release term = 1·(0 + 1/1) + 2·3 = 7, dominating A(I) and H(I).
  EXPECT_DOUBLE_EQ(bound, 7.0);
  const std::vector<double> executed{0.5, 0.0};
  const auto rest = mc::remaining_instance(inst, executed);
  EXPECT_EQ(rest.task(1).volume, 0.0);
}

TEST(ReleaseDates, WeightedCompletionBoundDegeneratesAtZeroRelease) {
  // With every r_i = 0 the release term is H(I) summed in the same index
  // order, so the bound equals max(A(I), H(I)) bit-for-bit — the batch
  // solvers' certification bound.
  ms::Rng rng(443);
  for (int rep = 0; rep < 25; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 7;
    gen.processors = 3.0;
    const auto inst = mc::generate(gen, rng);
    const double released = mc::released_weighted_completion_lower_bound(
        inst, zeros(inst.size()));
    const double batch =
        std::max(mc::squashed_area_bound(inst), mc::height_bound(inst));
    EXPECT_EQ(released, batch) << "rep " << rep;
  }
}

TEST(ReleaseDates, WeightedCompletionBoundBelowOptimumAtZeroRelease) {
  // Certification: with r = 0 the bound must sit below the exact optimum.
  ms::Rng rng(449);
  for (int rep = 0; rep < 10; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 6;
    gen.processors = 2.0;
    const auto inst = mc::generate(gen, rng);
    const double bound = mc::released_weighted_completion_lower_bound(
        inst, zeros(inst.size()));
    const auto exact = mc::branch_and_bound(inst);
    EXPECT_LE(bound, exact.objective * (1.0 + 1e-7)) << "rep " << rep;
  }
}

TEST(ReleaseDates, WeightedCompletionBoundBelowAnyFeasibleSchedule) {
  // Any release-respecting schedule prices at or above the bound — here the
  // makespan-optimal extraction, whose ΣwC is certainly suboptimal.
  ms::Rng rng(457);
  for (int rep = 0; rep < 20; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 6;
    gen.processors = 3.0;
    const auto inst = mc::generate(gen, rng);
    std::vector<double> release(inst.size());
    for (auto& r : release) {
      r = rng.uniform(0.0, 1.0);
    }
    const double bound =
        mc::released_weighted_completion_lower_bound(inst, release);
    const auto cmax = mc::released_optimal_makespan(inst, release);
    const auto extracted = mc::released_schedule(
        inst, release,
        std::vector<double>(inst.size(), cmax.makespan * (1.0 + 1e-7)));
    ASSERT_TRUE(extracted.feasible) << "rep " << rep;
    EXPECT_GE(extracted.schedule.weighted_completion(inst),
              bound * (1.0 - 1e-6))
        << "rep " << rep;
  }
}

TEST(ReleaseDates, BoundIncreasesWithReleaseDelays) {
  // Monotonicity: delaying releases can only push the bound up.
  const mc::Instance inst(2.0, {{1.0, 1.0, 1.0}, {2.0, 2.0, 0.5}});
  double prev = 0.0;
  for (const double shift : {0.0, 0.5, 1.0, 4.0}) {
    const std::vector<double> release(inst.size(), shift);
    const double bound =
        mc::released_weighted_completion_lower_bound(inst, release);
    EXPECT_GE(bound, prev);
    prev = bound;
  }
}
