#include "malsched/core/optimal.hpp"

#include <gtest/gtest.h>

#include "malsched/core/bounds.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/orderings.hpp"

namespace mc = malsched::core;
namespace ms = malsched::support;

TEST(Optimal, TwoTasksSmithWins) {
  // P=1, δ=1: the classic single-machine case; optimum = Smith order.
  const mc::Instance inst(1.0, {{2.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  const auto opt = mc::optimal_by_enumeration(inst);
  EXPECT_EQ(opt.orders_tried, 2u);
  // Short first: C = (3, 1): obj = 4; long first: (2, 3): obj = 5.
  EXPECT_NEAR(opt.objective, 4.0, 1e-9);
  EXPECT_EQ(opt.order, (std::vector<std::size_t>{1, 0}));
}

TEST(Optimal, MatchesSquashedAreaForUncappedWidths) {
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}, {1.0, 2.0, 3.0},
                                {0.5, 2.0, 1.0}});
  const auto opt = mc::optimal_by_enumeration(inst);
  EXPECT_NEAR(opt.objective, mc::squashed_area_bound(inst), 1e-7);
}

TEST(Optimal, NeverWorseThanAnyGreedyOrder) {
  ms::Rng rng(97);
  for (int rep = 0; rep < 15; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 4;
    config.processors = 2.0;
    const auto inst = mc::generate(config, rng);
    const auto opt = mc::optimal_by_enumeration(inst);
    const auto greedy = mc::best_greedy_exhaustive(inst);
    EXPECT_LE(opt.objective, greedy.objective + 1e-7) << "rep " << rep;
    // Conjecture 12 direction observed in the paper's experiments: the gap
    // is numerically zero.  Tested softly here (1e-5 relative) — the bench
    // measures it at scale.
    EXPECT_NEAR(opt.objective, greedy.objective,
                1e-5 * std::max(1.0, greedy.objective))
        << "rep " << rep;
  }
}

TEST(Optimal, WantScheduleProducesValidOptimalSchedule) {
  ms::Rng rng(101);
  mc::GeneratorConfig config;
  config.family = mc::Family::Uniform;
  config.num_tasks = 4;
  config.processors = 2.0;
  const auto inst = mc::generate(config, rng);
  mc::OptimalOptions options;
  options.want_schedule = true;
  const auto opt = mc::optimal_by_enumeration(inst, options);
  const auto check = opt.schedule.validate(inst);
  EXPECT_TRUE(check.valid) << check.message;
  EXPECT_NEAR(opt.schedule.weighted_completion(inst), opt.objective, 1e-6);
}

TEST(Optimal, EnumerationCountsFactorial) {
  const mc::Instance inst(1.0, {{1.0, 1.0, 1.0},
                                {0.5, 1.0, 1.0},
                                {0.25, 1.0, 1.0}});
  const auto opt = mc::optimal_by_enumeration(inst);
  EXPECT_EQ(opt.orders_tried, 6u);
}

TEST(OptimalDeath, RefusesLargeInstances) {
  // Branch-and-bound opened n <= 15 and the mean-busy-time cuts n <= 18;
  // the guard now sits there.
  std::vector<mc::Task> tasks(19, {1.0, 1.0, 1.0});
  const mc::Instance inst(2.0, std::move(tasks));
  EXPECT_DEATH((void)mc::optimal_by_enumeration(inst), "factorial");
}
