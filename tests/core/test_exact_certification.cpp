// Exact-arithmetic certification of the headline experiment (Conjecture 12)
// on pinned instances: the double-precision pipeline finds the best greedy
// order and the best completion order; the exact rational simplex then
// certifies that the two LPs agree EXACTLY, ruling out "the gap was just
// solver noise" on these instances.  This is the role Sage plays in the
// paper, transplanted to the LP side.

#include <gtest/gtest.h>

#include <algorithm>

#include "malsched/core/generators.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/optimal.hpp"
#include "malsched/core/order_lp.hpp"
#include "malsched/core/orderings.hpp"

namespace mc = malsched::core;
namespace ms = malsched::support;
using malsched::lp::SolveStatus;
using malsched::numeric::Rational;

namespace {

/// Exact minimum of the order LP over all n! orders.
Rational exact_optimal(const mc::Instance& inst) {
  auto order = mc::identity_order(inst.size());
  bool first = true;
  Rational best;
  do {
    const auto solved = mc::solve_order_lp_exact(inst, order);
    EXPECT_EQ(solved.status, SolveStatus::Optimal);
    if (first || solved.objective < best) {
      best = solved.objective;
      first = false;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

}  // namespace

TEST(ExactCertification, BestGreedyCompletionOrderIsExactlyOptimal) {
  // For pinned random instances (n = 3: 6 exact LPs each), the exact
  // optimum over all completion orders equals the exact LP value at the
  // best greedy schedule's completion order.
  ms::Rng rng(20120521);
  for (int rep = 0; rep < 4; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 3;
    gen.processors = 1.0;
    const auto inst = mc::generate(gen, rng);

    const Rational optimum = exact_optimal(inst);

    const auto greedy = mc::best_greedy_exhaustive(inst);
    const auto greedy_schedule = mc::greedy_schedule(inst, greedy.order);
    const auto columns = greedy_schedule.to_columns(inst);
    const auto at_greedy_order = mc::solve_order_lp_exact(inst, columns.order());
    ASSERT_EQ(at_greedy_order.status, SolveStatus::Optimal);

    // Conjecture 12, certified exactly on this instance: the greedy
    // completion order achieves the exact optimum.
    EXPECT_EQ(at_greedy_order.objective, optimum)
        << "rep " << rep << ": greedy order gives "
        << at_greedy_order.objective.to_string() << " vs optimum "
        << optimum.to_string();

    // And the double pipeline agrees with the exact value.
    const auto approx = mc::optimal_by_enumeration(inst);
    EXPECT_NEAR(approx.objective, optimum.to_double(), 1e-7);
  }
}

TEST(ExactCertification, SingleTaskClosedFormExact) {
  // V = 3, δ = 2, P = 4, w = 5: C = 3/2 exactly, objective 15/2.
  const mc::Instance inst(4.0, {{3.0, 2.0, 5.0}});
  const auto solved = mc::solve_order_lp_exact(inst, mc::identity_order(1));
  ASSERT_EQ(solved.status, SolveStatus::Optimal);
  EXPECT_EQ(solved.objective, Rational(15, 2));
}

TEST(ExactCertification, TwoTaskSequencingExact) {
  // P = 1, δ = 1: pure single-machine.  V = (1, 2), w = (1, 1):
  // SPT order: C = (1, 3), Σ = 4 exactly; reverse: C = (2, 3), Σ = 5.
  const mc::Instance inst(1.0, {{1.0, 1.0, 1.0}, {2.0, 1.0, 1.0}});
  const std::vector<std::size_t> spt{0, 1};
  const std::vector<std::size_t> lpt{1, 0};
  const auto a = mc::solve_order_lp_exact(inst, spt);
  const auto b = mc::solve_order_lp_exact(inst, lpt);
  ASSERT_EQ(a.status, SolveStatus::Optimal);
  ASSERT_EQ(b.status, SolveStatus::Optimal);
  EXPECT_EQ(a.objective, Rational(4));
  EXPECT_EQ(b.objective, Rational(5));
}

TEST(ExactCertification, WidthCapChangesExactOptimum) {
  // P = 2, one task with δ = 1/2 (stored exactly as a double): the height
  // term V/δ = 2·V must appear exactly in the optimum.
  const mc::Instance inst(2.0, {{1.0, 0.5, 1.0}});
  const auto solved = mc::solve_order_lp_exact(inst, mc::identity_order(1));
  ASSERT_EQ(solved.status, SolveStatus::Optimal);
  EXPECT_EQ(solved.objective, Rational(2));
}
