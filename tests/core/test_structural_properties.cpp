// Structural properties stated (or used implicitly) by the paper's proofs,
// checked directly on the implementations.

#include <gtest/gtest.h>

#include <algorithm>

#include "malsched/core/assignment.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/optimal.hpp"
#include "malsched/core/order_lp.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/core/water_filling.hpp"
#include "malsched/core/wdeq.hpp"

namespace mc = malsched::core;
namespace ms = malsched::support;

TEST(StructuralProperties, WdeqAllocationsNonDecreasingPerTask) {
  // §III: "the amount of resources allocated to each task is increasing
  // with time, until it is given its full allocation" — the monotonicity
  // Lemma 2's volume split relies on.
  ms::Rng rng(701);
  for (int rep = 0; rep < 30; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 8;
    gen.processors = 3.0;
    const auto inst = mc::generate(gen, rng);
    const auto run = mc::run_wdeq(inst);
    const auto& steps = run.schedule.steps();
    for (std::size_t i = 0; i < inst.size(); ++i) {
      double prev = 0.0;
      for (const auto& step : steps) {
        if (step.rates[i] <= 1e-12) {
          continue;  // task already finished
        }
        EXPECT_GE(step.rates[i], prev - 1e-9)
            << "rep " << rep << " task " << i;
        prev = step.rates[i];
      }
    }
  }
}

TEST(StructuralProperties, WfAllocationsNonDecreasingPerTask) {
  // Lemma 6's premise: in WF schedules the per-task rate never decreases
  // before completion (heights are non-increasing over time).
  ms::Rng rng(709);
  for (int rep = 0; rep < 30; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 8;
    gen.processors = 3.0;
    const auto inst = mc::generate(gen, rng);
    const auto greedy = mc::greedy_schedule(inst, mc::smith_order(inst));
    const auto wf = mc::water_fill(inst, greedy.completions());
    ASSERT_TRUE(wf.feasible);
    for (std::size_t i = 0; i < inst.size(); ++i) {
      double prev = 0.0;
      bool started = false;
      for (std::size_t j = 0; j <= wf.schedule.position(i); ++j) {
        if (wf.schedule.column_length(j) <= 1e-12) {
          continue;
        }
        const double rate = wf.schedule.allocation(i, j);
        if (rate > 1e-12) {
          started = true;
        }
        if (started) {
          EXPECT_GE(rate, prev - 1e-9) << "rep " << rep << " task " << i;
          prev = rate;
        }
      }
    }
  }
}

TEST(StructuralProperties, GreedyPrefixIndependence) {
  // Algorithm 3 places tasks one at a time, so the completion time of the
  // k-th placed task cannot depend on the tasks placed after it.
  ms::Rng rng(719);
  for (int rep = 0; rep < 20; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 6;
    gen.processors = 2.0;
    const auto inst = mc::generate(gen, rng);
    const auto order = rng.permutation(inst.size());
    const auto full = mc::greedy_schedule(inst, order);
    const auto full_completions = full.completions();

    // Build the prefix instance (first 4 tasks of the order).
    std::vector<mc::Task> prefix_tasks;
    std::vector<std::size_t> prefix_order;
    for (std::size_t k = 0; k < 4; ++k) {
      prefix_tasks.push_back(inst.task(order[k]));
      prefix_order.push_back(k);
    }
    const mc::Instance prefix(inst.processors(), std::move(prefix_tasks));
    const auto partial = mc::greedy_schedule(prefix, prefix_order);
    const auto partial_completions = partial.completions();
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_NEAR(partial_completions[k], full_completions[order[k]], 1e-9)
          << "rep " << rep << " position " << k;
    }
  }
}

TEST(StructuralProperties, OrderLpScalesWithWeights) {
  // Scaling all weights by c scales the optimum by c (the LP objective is
  // linear in w).
  ms::Rng rng(727);
  mc::GeneratorConfig gen;
  gen.family = mc::Family::Uniform;
  gen.num_tasks = 4;
  gen.processors = 2.0;
  const auto inst = mc::generate(gen, rng);
  const auto order = mc::identity_order(4);
  const double base = mc::order_lp_objective(inst, order);

  std::vector<mc::Task> scaled = inst.tasks();
  for (auto& t : scaled) {
    t.weight *= 3.0;
  }
  const mc::Instance inst3(inst.processors(), std::move(scaled));
  EXPECT_NEAR(mc::order_lp_objective(inst3, order), 3.0 * base, 1e-6);
}

TEST(StructuralProperties, OrderLpScalesWithTime) {
  // Scaling all volumes by c scales every completion time — and hence the
  // objective — by c (time dilation).
  ms::Rng rng(733);
  mc::GeneratorConfig gen;
  gen.family = mc::Family::Uniform;
  gen.num_tasks = 4;
  gen.processors = 2.0;
  const auto inst = mc::generate(gen, rng);
  const auto order = mc::identity_order(4);
  const double base = mc::order_lp_objective(inst, order);

  std::vector<mc::Task> scaled = inst.tasks();
  for (auto& t : scaled) {
    t.volume *= 2.0;
  }
  const mc::Instance inst2(inst.processors(), std::move(scaled));
  EXPECT_NEAR(mc::order_lp_objective(inst2, order), 2.0 * base, 1e-6);
}

TEST(StructuralProperties, WdeqInvariantUnderWeightScaling) {
  // WDEQ's shares depend on weight *ratios* only.
  ms::Rng rng(739);
  mc::GeneratorConfig gen;
  gen.family = mc::Family::Uniform;
  gen.num_tasks = 6;
  gen.processors = 2.0;
  const auto inst = mc::generate(gen, rng);
  std::vector<mc::Task> scaled = inst.tasks();
  for (auto& t : scaled) {
    t.weight *= 7.5;
  }
  const mc::Instance inst_scaled(inst.processors(), std::move(scaled));
  const auto a = mc::run_wdeq(inst).schedule.completions();
  const auto b = mc::run_wdeq(inst_scaled).schedule.completions();
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-9);
  }
}

TEST(StructuralProperties, WaterFillStressLargeInstance) {
  // n = 300 validity + monotone profile + Lemma-5 band bound in one pass.
  ms::Rng rng(743);
  mc::GeneratorConfig gen;
  gen.family = mc::Family::Uniform;
  gen.num_tasks = 300;
  gen.processors = 8.0;
  const auto inst = mc::generate(gen, rng);
  const auto greedy = mc::greedy_schedule(inst, mc::smith_order(inst));
  const auto wf = mc::water_fill(inst, greedy.completions());
  ASSERT_TRUE(wf.feasible);
  const auto check = wf.schedule.validate(inst, {1e-7, 1e-7});
  EXPECT_TRUE(check.valid) << check.message;
  EXPECT_LE(mc::count_band_changes(inst, wf.schedule), inst.size());
}

TEST(StructuralProperties, MoreProcessorsNeverHurt) {
  // OPT is monotone in P: adding capacity can only help, for every
  // algorithm in the stack.
  ms::Rng rng(751);
  for (int rep = 0; rep < 10; ++rep) {
    mc::GeneratorConfig gen;
    gen.family = mc::Family::Uniform;
    gen.num_tasks = 4;
    gen.processors = 2.0;
    const auto inst = mc::generate(gen, rng);
    const mc::Instance bigger(4.0, inst.tasks());
    EXPECT_LE(mc::optimal_by_enumeration(bigger).objective,
              mc::optimal_by_enumeration(inst).objective + 1e-7)
        << "rep " << rep;
    EXPECT_LE(mc::run_wdeq(bigger).schedule.weighted_completion(bigger),
              mc::run_wdeq(inst).schedule.weighted_completion(inst) + 1e-7)
        << "rep " << rep;
  }
}
