#include "malsched/core/assignment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "malsched/core/generators.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/core/water_filling.hpp"
#include "malsched/core/wdeq.hpp"

namespace mc = malsched::core;
namespace ms = malsched::support;

namespace {

/// A WF normal-form schedule for a random integral instance.
mc::ColumnSchedule wf_schedule(const mc::Instance& inst, ms::Rng& rng) {
  const auto greedy = mc::greedy_schedule(inst, rng.permutation(inst.size()));
  const auto result = mc::water_fill(inst, greedy.completions());
  EXPECT_TRUE(result.feasible);
  return result.schedule;
}

mc::Instance random_integral(ms::Rng& rng, std::size_t n, double p) {
  mc::GeneratorConfig config;
  config.family = mc::Family::UniformIntegral;
  config.num_tasks = n;
  config.processors = p;
  return mc::generate(config, rng);
}

}  // namespace

TEST(Assignment, SingleTaskSingleProcessor) {
  const mc::Instance inst(1.0, {{1.0, 1.0, 1.0}});
  const auto result = mc::water_fill(inst, std::vector<double>{1.0});
  ASSERT_TRUE(result.feasible);
  const auto assignment = mc::assign_processors(inst, result.schedule);
  EXPECT_EQ(assignment.num_processors(), 1u);
  ASSERT_EQ(assignment.processor(0).size(), 1u);
  EXPECT_DOUBLE_EQ(assignment.processor(0)[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(assignment.processor(0)[0].end, 1.0);
  EXPECT_TRUE(assignment.validate(inst).valid);
}

TEST(Assignment, FractionalRateSplitsAcrossProcessors) {
  // Two tasks sharing P=2 at rate 1 each... rates are integral there.
  // Force a fractional rate: P=2, two tasks each δ=2, V=1, completing
  // together at t=1: each runs at rate 1 (integral).  Use three tasks at
  // rate 2/3 each: P=2, V=2/3 each, all complete at t=1.
  const mc::Instance inst(2.0, {{2.0 / 3.0, 2.0, 1.0},
                                {2.0 / 3.0, 2.0, 1.0},
                                {2.0 / 3.0, 2.0, 1.0}});
  const auto result =
      mc::water_fill(inst, std::vector<double>{1.0, 1.0, 1.0});
  ASSERT_TRUE(result.feasible);
  const auto assignment = mc::assign_processors(inst, result.schedule);
  const auto check = assignment.validate(inst);
  EXPECT_TRUE(check.valid) << check.message;
  // At any instant each task uses ⌊2/3⌋=0 or ⌈2/3⌉=1 processors.
  for (double t : {0.1, 0.4, 0.7, 0.95}) {
    for (std::size_t i = 0; i < 3; ++i) {
      const auto count = assignment.count_at(i, t);
      EXPECT_LE(count, 1u);
    }
  }
}

TEST(Assignment, IntegerCountsAreFloorOrCeil) {
  // Theorem 3: at every instant, d_i(t) ∈ {⌊d_{i,j}⌋, ⌈d_{i,j}⌉}.
  ms::Rng rng(151);
  for (int rep = 0; rep < 10; ++rep) {
    const auto inst = random_integral(rng, 5, 4.0);
    const auto sched = wf_schedule(inst, rng);
    const auto assignment = mc::assign_processors(inst, sched);
    ASSERT_TRUE(assignment.validate(inst).valid);
    for (std::size_t j = 0; j < sched.num_columns(); ++j) {
      const double len = sched.column_length(j);
      if (len <= 1e-9) {
        continue;
      }
      // Probe a few interior instants of the column.
      for (double frac : {0.25, 0.5, 0.75}) {
        const double t = sched.column_start(j) + frac * len;
        for (std::size_t i = 0; i < inst.size(); ++i) {
          const double d = sched.allocation(i, j);
          const auto count = assignment.count_at(i, t);
          const auto floor_d = static_cast<std::size_t>(std::floor(d + 1e-9));
          const auto ceil_d = static_cast<std::size_t>(std::ceil(d - 1e-9));
          EXPECT_GE(count, floor_d) << "rep " << rep;
          EXPECT_LE(count, ceil_d) << "rep " << rep;
        }
      }
    }
  }
}

TEST(Assignment, CapacityNeverExceeded) {
  ms::Rng rng(157);
  for (int rep = 0; rep < 10; ++rep) {
    const auto inst = random_integral(rng, 6, 3.0);
    const auto sched = wf_schedule(inst, rng);
    const auto assignment = mc::assign_processors(inst, sched);
    // Disjointness per processor is checked by validate(); capacity follows
    // because there are exactly P processor lanes.
    EXPECT_TRUE(assignment.validate(inst).valid);
    EXPECT_EQ(assignment.num_processors(), 3u);
  }
}

TEST(Preemptions, FractionalChangesAtMostN) {
  // Theorem 9 on WF schedules built from greedy completion profiles.  The
  // natural all-changes count happens to respect n on these profiles (the
  // counterexample below needs saturating final columns); the band count is
  // guaranteed.
  ms::Rng rng(163);
  for (int rep = 0; rep < 30; ++rep) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 8));
    const auto inst = random_integral(rng, n, 4.0);
    const auto sched = wf_schedule(inst, rng);
    EXPECT_LE(mc::count_fractional_changes(sched), n)
        << "rep " << rep << " n=" << n;
    EXPECT_LE(mc::count_band_changes(inst, sched), n)
        << "rep " << rep << " n=" << n;
  }
}

TEST(Preemptions, Theorem9NaturalCountCounterexample) {
  // Reproduction finding: a 4-task instance whose WF normal form has FIVE
  // interior rate changes — more than n = 4, contradicting Theorem 9 under
  // the natural "every allocation change" reading.  Each task saturates
  // inside its own final column; the Lemma 5 induction never charges the
  // band->saturated transition (nor the boundary the appended column
  // creates), which is exactly the leak.  Under the paper's own ¶-count
  // (count_band_changes) the bound holds: 2 <= n - 1.
  const mc::Instance inst(2.0, {{0.5, 1.0, 1.0},
                                {1.2, 0.8, 1.0},
                                {1.9, 0.9, 1.0},
                                {2.2, 0.95, 1.0}});
  const std::vector<double> completions{1.0, 2.0, 3.0, 4.0};
  const auto wf = mc::water_fill(inst, completions);
  ASSERT_TRUE(wf.feasible);
  ASSERT_TRUE(wf.schedule.validate(inst).valid);
  // Expected WF rates: T0 [0.5]; T1 [0.4, 0.8=δ]; T2 [0.45, 0.55, 0.9=δ];
  // T3 [0.2667, 0.2667, 0.7167, 0.95=δ].
  EXPECT_EQ(mc::count_fractional_changes(wf.schedule), 5u);  // > n = 4
  EXPECT_EQ(mc::count_band_changes(inst, wf.schedule), 2u);  // <= n - 1
}

TEST(Preemptions, BandChangesAtMostNOnWdeqProfiles) {
  // WDEQ completion profiles are where the natural count blows past n; the
  // Lemma-5 band count must still respect the Theorem 9 cap.
  ms::Rng rng(164);
  for (int rep = 0; rep < 30; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 12;
    config.processors = 4.0;
    const auto inst = mc::generate(config, rng);
    const auto run = mc::run_wdeq(inst);
    const auto wf = mc::water_fill(inst, run.schedule.completions());
    ASSERT_TRUE(wf.feasible);
    EXPECT_LE(mc::count_band_changes(inst, wf.schedule), inst.size())
        << "rep " << rep;
    // The natural count stays under the corrected 2n - 1 envelope.
    EXPECT_LE(mc::count_fractional_changes(wf.schedule), 2 * inst.size() - 1)
        << "rep " << rep;
  }
}

TEST(Preemptions, IntegerChangesAtMost3N) {
  // Lemma 9 / Theorem 10 on WF schedules.
  ms::Rng rng(167);
  for (int rep = 0; rep < 30; ++rep) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 8));
    const auto inst = random_integral(rng, n, 4.0);
    const auto sched = wf_schedule(inst, rng);
    const auto assignment = mc::assign_processors(inst, sched);
    const auto stats = mc::count_preemptions(inst, sched, assignment);
    EXPECT_LE(stats.integer_changes, 3 * n) << "rep " << rep << " n=" << n;
  }
}

TEST(Preemptions, AffinityReducesProcessorChurn) {
  ms::Rng rng(173);
  std::size_t with_affinity = 0;
  std::size_t without_affinity = 0;
  for (int rep = 0; rep < 15; ++rep) {
    const auto inst = random_integral(rng, 6, 4.0);
    const auto sched = wf_schedule(inst, rng);
    mc::AssignmentOptions on;
    on.improve_affinity = true;
    mc::AssignmentOptions off;
    off.improve_affinity = false;
    const auto a_on = mc::assign_processors(inst, sched, on);
    const auto a_off = mc::assign_processors(inst, sched, off);
    with_affinity += mc::count_preemptions(inst, sched, a_on).processor_losses;
    without_affinity +=
        mc::count_preemptions(inst, sched, a_off).processor_losses;
  }
  EXPECT_LE(with_affinity, without_affinity);
}

TEST(Preemptions, CountFractionalIgnoresZeroColumns) {
  // A task at constant rate with a tie column in between: no changes.
  const mc::Instance inst(2.0, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  const auto result = mc::water_fill(inst, std::vector<double>{1.0, 1.0});
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(mc::count_fractional_changes(result.schedule), 0u);
}

TEST(Preemptions, WdeqScheduleCountsAreFinite) {
  // WDEQ rates change at every completion, so fractional changes can hit
  // the generic (non-WF) upper bound n(n-1)… just verify the counter is
  // consistent and the assignment remains valid on integral instances.
  ms::Rng rng(179);
  const auto inst = random_integral(rng, 5, 4.0);
  const auto run = mc::run_wdeq(inst);
  const auto columns = run.schedule.to_columns(inst);
  ASSERT_TRUE(columns.validate(inst).valid);
  const auto assignment = mc::assign_processors(inst, columns);
  EXPECT_TRUE(assignment.validate(inst).valid);
  const auto stats = mc::count_preemptions(inst, columns, assignment);
  EXPECT_LT(stats.fractional_changes, inst.size() * inst.size());
}
