#include "malsched/core/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "malsched/core/assignment.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/core/water_filling.hpp"
#include "malsched/support/rng.hpp"

namespace mc = malsched::core;

TEST(Io, ParseBasicInstance) {
  const std::string text = R"(# example
processors 4
task 2.0 2 1.0
task 1.5 1 0.5
)";
  std::string error;
  const auto inst = mc::parse_instance(text, &error);
  ASSERT_TRUE(inst.has_value()) << error;
  EXPECT_DOUBLE_EQ(inst->processors(), 4.0);
  EXPECT_EQ(inst->size(), 2u);
  EXPECT_DOUBLE_EQ(inst->task(1).volume, 1.5);
}

TEST(Io, RoundTrip) {
  const mc::Instance inst(3.0, {{0.25, 1.5, 2.0}, {1.0, 3.0, 0.125}});
  const auto text = mc::format_instance(inst);
  std::string error;
  const auto back = mc::parse_instance(text, &error);
  ASSERT_TRUE(back.has_value()) << error;
  ASSERT_EQ(back->size(), inst.size());
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_DOUBLE_EQ(back->task(i).volume, inst.task(i).volume);
    EXPECT_DOUBLE_EQ(back->task(i).width, inst.task(i).width);
    EXPECT_DOUBLE_EQ(back->task(i).weight, inst.task(i).weight);
  }
}

TEST(Io, CommentsAndBlankLinesIgnored) {
  const std::string text = "\n# full line comment\nprocessors 2 # trailing\n\ntask 1 1 1\n";
  std::string error;
  const auto inst = mc::parse_instance(text, &error);
  ASSERT_TRUE(inst.has_value()) << error;
  EXPECT_EQ(inst->size(), 1u);
}

TEST(Io, ErrorsAreReported) {
  std::string error;
  EXPECT_FALSE(mc::parse_instance("task 1 1 1\n", &error).has_value());
  EXPECT_NE(error.find("processors"), std::string::npos);

  EXPECT_FALSE(mc::parse_instance("processors 2\n", &error).has_value());
  EXPECT_NE(error.find("no tasks"), std::string::npos);

  EXPECT_FALSE(
      mc::parse_instance("processors 2\nbananas 1\n", &error).has_value());
  EXPECT_NE(error.find("unknown keyword"), std::string::npos);

  EXPECT_FALSE(
      mc::parse_instance("processors 2\ntask -1 1 1\n", &error).has_value());
  EXPECT_NE(error.find("invalid task"), std::string::npos);
}

TEST(Io, ProcessorsLineErrorPaths) {
  // The service front-end forwards these diagnostics verbatim to clients;
  // every malformed shape must be rejected with the offending line number.
  std::string error;
  for (const char* bad : {"processors\ntask 1 1 1\n",       // missing value
                          "processors abc\ntask 1 1 1\n",   // non-numeric
                          "processors 0\ntask 1 1 1\n",     // zero
                          "processors -3\ntask 1 1 1\n"}) { // negative
    EXPECT_FALSE(mc::parse_instance(bad, &error).has_value()) << bad;
    EXPECT_NE(error.find("line 1"), std::string::npos) << bad;
    EXPECT_NE(error.find("processors"), std::string::npos) << bad;
  }
}

TEST(Io, TaskLineErrorPaths) {
  std::string error;
  for (const char* bad : {"processors 2\ntask\n",            // no fields
                          "processors 2\ntask 1\n",          // missing width
                          "processors 2\ntask 1 1\n",        // missing weight
                          "processors 2\ntask x 1 1\n",      // non-numeric V
                          "processors 2\ntask 1 1 oops\n",   // non-numeric w
                          "processors 2\ntask -1 1 1\n",     // negative volume
                          "processors 2\ntask 1 0 1\n",      // zero width
                          "processors 2\ntask 1 -2 1\n",     // negative width
                          "processors 2\ntask 1 1 -1\n"}) {  // negative weight
    EXPECT_FALSE(mc::parse_instance(bad, &error).has_value()) << bad;
    EXPECT_NE(error.find("line 2"), std::string::npos) << bad;
    EXPECT_NE(error.find("invalid task"), std::string::npos) << bad;
  }
}

TEST(Io, ZeroVolumeTaskIsAccepted) {
  // Zero volumes are legal (subinstances of Definition 7) even though
  // negative ones are not.
  std::string error;
  const auto inst = mc::parse_instance("processors 2\ntask 0 1 1\n", &error);
  ASSERT_TRUE(inst.has_value()) << error;
  EXPECT_DOUBLE_EQ(inst->task(0).volume, 0.0);
}

TEST(Io, ZeroWeightTaskIsAccepted) {
  std::string error;
  const auto inst = mc::parse_instance("processors 2\ntask 1 1 0\n", &error);
  ASSERT_TRUE(inst.has_value()) << error;
  EXPECT_DOUBLE_EQ(inst->task(0).weight, 0.0);
}

TEST(Io, ErrorLineNumbersAccountForCommentsAndBlanks) {
  std::string error;
  const std::string text = "# header\n\nprocessors 2\n# note\ntask 1 1\n";
  EXPECT_FALSE(mc::parse_instance(text, &error).has_value());
  EXPECT_NE(error.find("line 5"), std::string::npos) << error;
}

TEST(Io, EmptyStreamIsAnError) {
  std::string error;
  EXPECT_FALSE(mc::parse_instance("", &error).has_value());
  EXPECT_NE(error.find("processors"), std::string::npos);
}

TEST(Io, ScheduleCsvHasHeaderAndRows) {
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}, {1.0, 1.0, 1.0}});
  const auto greedy = mc::greedy_schedule(inst, mc::identity_order(2));
  const auto wf = mc::water_fill(inst, greedy.completions());
  ASSERT_TRUE(wf.feasible);
  std::ostringstream out;
  mc::write_schedule_csv(out, wf.schedule);
  const auto text = out.str();
  EXPECT_NE(text.find("task,column,start,end,processors"), std::string::npos);
  EXPECT_GT(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(Io, GanttRenderHasOneRowPerTask) {
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}, {1.0, 1.0, 1.0}});
  const auto greedy = mc::greedy_schedule(inst, mc::identity_order(2));
  const auto text = mc::render_gantt(inst, greedy, 40);
  EXPECT_NE(text.find("T0"), std::string::npos);
  EXPECT_NE(text.find("T1"), std::string::npos);
}

TEST(Io, GanttEmptySchedule) {
  const mc::Instance inst(1.0, {{0.0, 1.0, 1.0}});
  const mc::StepSchedule empty(1, {});
  EXPECT_NE(mc::render_gantt(inst, empty).find("empty"), std::string::npos);
}

TEST(Io, ProcessorGanttShowsTaskDigits) {
  const mc::Instance inst(2.0, {{2.0, 2.0, 1.0}, {1.0, 1.0, 1.0}});
  const auto greedy = mc::greedy_schedule(inst, mc::identity_order(2));
  const auto wf = mc::water_fill(inst, greedy.completions());
  ASSERT_TRUE(wf.feasible);
  const auto assignment = mc::assign_processors(inst, wf.schedule);
  const auto text = mc::render_processor_gantt(assignment, 40);
  EXPECT_NE(text.find("P0"), std::string::npos);
  EXPECT_NE(text.find("P1"), std::string::npos);
  EXPECT_NE(text.find('0'), std::string::npos);  // task 0 visible
  EXPECT_NE(text.find('1'), std::string::npos);  // task 1 visible
}

TEST(Io, ProcessorGanttEmptyAssignment) {
  const mc::ProcessorAssignment empty;
  EXPECT_NE(mc::render_processor_gantt(empty).find("empty"),
            std::string::npos);
}

TEST(Io, RandomInstanceRoundTripProperty) {
  malsched::support::Rng rng(997);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<mc::Task> tasks;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 6));
    for (int i = 0; i < n; ++i) {
      tasks.push_back({rng.uniform_pos(10.0), rng.uniform_pos(4.0),
                       rng.uniform_pos(2.0)});
    }
    const mc::Instance inst(rng.uniform_pos(8.0), std::move(tasks));
    std::string error;
    const auto back = mc::parse_instance(mc::format_instance(inst), &error);
    ASSERT_TRUE(back.has_value()) << error;
    ASSERT_EQ(back->size(), inst.size());
    EXPECT_DOUBLE_EQ(back->processors(), inst.processors());
    for (std::size_t i = 0; i < inst.size(); ++i) {
      EXPECT_DOUBLE_EQ(back->task(i).volume, inst.task(i).volume);
      EXPECT_DOUBLE_EQ(back->task(i).width, inst.task(i).width);
      EXPECT_DOUBLE_EQ(back->task(i).weight, inst.task(i).weight);
    }
  }
}
