#include "malsched/core/bounds.hpp"

#include <gtest/gtest.h>

#include "malsched/core/generators.hpp"
#include "malsched/core/optimal.hpp"
#include "malsched/core/wdeq.hpp"

namespace mc = malsched::core;
namespace ms = malsched::support;

TEST(Bounds, SquashedAreaSingleTask) {
  // One task: A = w * V / P.
  const mc::Instance inst(4.0, {{8.0, 2.0, 3.0}});
  EXPECT_DOUBLE_EQ(mc::squashed_area_bound(inst), 6.0);
}

TEST(Bounds, SquashedAreaUsesSmithOrder) {
  // Two unit-weight tasks, V = 1 and 2, P = 1: Smith order short-first.
  // A = 2*1 + 1*2 = 4 (suffix weights 2 then 1).
  const mc::Instance inst(1.0, {{2.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  EXPECT_DOUBLE_EQ(mc::squashed_area_bound(inst), 4.0);
}

TEST(Bounds, HeightBoundDefinition) {
  const mc::Instance inst(4.0, {{8.0, 2.0, 3.0}, {2.0, 8.0, 1.0}});
  // h_0 = 8/2 = 4 (w=3), h_1 = 2/min(8,4) = 0.5 (w=1).
  EXPECT_DOUBLE_EQ(mc::height_bound(inst), 12.5);
}

TEST(Bounds, BothAreLowerBoundsOfOptimal) {
  ms::Rng rng(61);
  for (int rep = 0; rep < 25; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 4;
    config.processors = 2.0;
    const auto inst = mc::generate(config, rng);
    const auto opt = mc::optimal_by_enumeration(inst);
    EXPECT_LE(mc::squashed_area_bound(inst), opt.objective + 1e-7)
        << "rep " << rep;
    EXPECT_LE(mc::height_bound(inst), opt.objective + 1e-7) << "rep " << rep;
    EXPECT_LE(mc::best_simple_lower_bound(inst), opt.objective + 1e-7);
  }
}

TEST(Bounds, MixedBoundIsLowerBound) {
  // Lemma 1 with the WDEQ-induced split (the split used in the proof).
  ms::Rng rng(67);
  for (int rep = 0; rep < 25; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 4;
    config.processors = 2.0;
    const auto inst = mc::generate(config, rng);
    const auto run = mc::run_wdeq(inst);
    const double mixed = mc::mixed_lower_bound(inst, run.limited_volume);
    const auto opt = mc::optimal_by_enumeration(inst);
    EXPECT_LE(mixed, opt.objective + 1e-6) << "rep " << rep;
  }
}

TEST(Bounds, MixedBoundDegeneratesToPureBounds) {
  const mc::Instance inst(2.0, {{1.0, 1.0, 1.0}, {2.0, 2.0, 1.0}});
  const std::vector<double> all{1.0, 2.0};
  const std::vector<double> none{0.0, 0.0};
  EXPECT_NEAR(mc::mixed_lower_bound(inst, all),
              mc::squashed_area_bound(inst), 1e-12);
  EXPECT_NEAR(mc::mixed_lower_bound(inst, none), mc::height_bound(inst),
              1e-12);
}

TEST(Bounds, HeightEqualsOptimalWhenMachineHuge) {
  // With P >= Σ δ_i every task runs at δ from time 0: OPT = H(I).
  const mc::Instance inst(100.0, {{2.0, 2.0, 1.0}, {3.0, 1.0, 2.0}});
  const auto run = mc::run_wdeq(inst);
  EXPECT_NEAR(run.schedule.weighted_completion(inst), mc::height_bound(inst),
              1e-9);
}

TEST(Bounds, AreaTightForUnboundedWidths) {
  // δ_i = P: the problem is single-machine; A(I) equals the Smith optimum,
  // achieved by the LP with the Smith order.
  ms::Rng rng(71);
  for (int rep = 0; rep < 10; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 4;
    config.processors = 2.0;
    auto base = mc::generate(config, rng);
    std::vector<mc::Task> tasks = base.tasks();
    for (auto& t : tasks) {
      t.width = base.processors();
    }
    const mc::Instance inst(base.processors(), std::move(tasks));
    const auto opt = mc::optimal_by_enumeration(inst);
    EXPECT_NEAR(opt.objective, mc::squashed_area_bound(inst), 1e-6)
        << "rep " << rep;
  }
}

TEST(Bounds, ZeroWeightTasksContributeNothing) {
  const mc::Instance inst(2.0, {{5.0, 1.0, 0.0}, {1.0, 1.0, 1.0}});
  // Only task 1 contributes: A sorts task 1 first (ratio 1 vs inf).
  EXPECT_DOUBLE_EQ(mc::squashed_area_bound(inst), 0.5);
  EXPECT_DOUBLE_EQ(mc::height_bound(inst), 1.0);
}
