// Fixture-driven integration tests: parse the instances shipped in data/
// and pin the end-to-end numbers (objective values, feasibility verdicts,
// counterexample counts) so refactors cannot silently change behaviour.

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>

#include "malsched/core/assignment.hpp"
#include "malsched/core/bounds.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/io.hpp"
#include "malsched/core/optimal.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/core/water_filling.hpp"
#include "malsched/core/wdeq.hpp"

namespace mc = malsched::core;

namespace {

mc::Instance load(const std::string& name) {
  // Throw rather than EXPECT: a missing/corrupt fixture must abort the test
  // with the message, not dereference an empty optional.
  const std::string path = std::string(MALSCHED_DATA_DIR) + "/" + name;
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("missing fixture " + path);
  }
  std::string error;
  auto inst = mc::read_instance(in, &error);
  if (!inst.has_value()) {
    throw std::runtime_error("bad fixture " + path + ": " + error);
  }
  return *inst;
}

}  // namespace

TEST(Fixtures, ExampleSmallPinnedNumbers) {
  // The seed shipped this test without its data files; the fixtures under
  // tests/data/ were authored afterwards and these pins re-established from
  // their measured values (PR 1), so they guard against regressions from
  // that baseline onward.  The seed's original pins — squashed 12.125,
  // height 10.5, opt 15.2083, wdeq 18.175 — are kept here for the record: a
  // 150M-sample grid search over (V, δ, w) on 1/4-steps found no 5-task
  // P = 4 instance satisfying all four simultaneously, so the instance they
  // described is not recoverable.
  const auto inst = load("example_small.mls");
  EXPECT_EQ(inst.size(), 5u);
  EXPECT_DOUBLE_EQ(inst.processors(), 4.0);
  EXPECT_NEAR(mc::squashed_area_bound(inst), 10.125, 1e-9);
  EXPECT_NEAR(mc::height_bound(inst), 10.375, 1e-9);
  const auto opt = mc::optimal_by_enumeration(inst);
  EXPECT_NEAR(opt.objective, 14.25, 2e-4);
  const auto wdeq = mc::run_wdeq(inst);
  EXPECT_NEAR(wdeq.schedule.weighted_completion(inst), 16.6667, 1e-3);
  // Theorem 4 sanity on the pinned instance.
  EXPECT_LE(wdeq.schedule.weighted_completion(inst), 2.0 * opt.objective);
}

TEST(Fixtures, BandwidthFig1SmithBeatsWdeq) {
  const auto inst = load("bandwidth_fig1.mls");
  const auto wdeq = mc::run_wdeq(inst);
  const auto greedy = mc::greedy_schedule(inst, mc::smith_order(inst));
  EXPECT_LE(greedy.weighted_completion(inst),
            wdeq.schedule.weighted_completion(inst));
  EXPECT_TRUE(greedy.validate(inst).valid);
}

TEST(Fixtures, Theorem9CounterexampleFromDisk) {
  const auto inst = load("theorem9_counterexample.mls");
  const std::vector<double> completions{1.0, 2.0, 3.0, 4.0};
  const auto wf = mc::water_fill(inst, completions);
  ASSERT_TRUE(wf.feasible);
  EXPECT_EQ(mc::count_fractional_changes(wf.schedule), 5u);
  EXPECT_EQ(mc::count_band_changes(inst, wf.schedule), 2u);
}

TEST(Fixtures, WideTasksOptimalIsGreedy) {
  const auto inst = load("wide_tasks.mls");
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_GT(inst.task(i).width, inst.processors() / 2.0);
  }
  const auto greedy = mc::best_greedy_exhaustive(inst);
  const auto opt = mc::optimal_by_enumeration(inst);
  EXPECT_NEAR(greedy.objective, opt.objective, 1e-6);
}
