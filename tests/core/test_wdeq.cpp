#include "malsched/core/wdeq.hpp"

#include <gtest/gtest.h>

#include "malsched/core/bounds.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/core/optimal.hpp"

namespace mc = malsched::core;
namespace ms = malsched::support;

TEST(WdeqShares, ProportionalWhenUncapped) {
  // Weights 1:3 on P=4 with wide tasks: shares 1 and 3.
  const std::vector<double> w{1.0, 3.0};
  const std::vector<double> d{4.0, 4.0};
  const auto shares = mc::wdeq_shares(4.0, w, d);
  EXPECT_DOUBLE_EQ(shares[0], 1.0);
  EXPECT_DOUBLE_EQ(shares[1], 3.0);
}

TEST(WdeqShares, CapAndRedistribute) {
  // Task 1 would get 3 but is capped at 1; the surplus goes to task 0.
  const std::vector<double> w{1.0, 3.0};
  const std::vector<double> d{4.0, 1.0};
  const auto shares = mc::wdeq_shares(4.0, w, d);
  EXPECT_DOUBLE_EQ(shares[1], 1.0);
  EXPECT_DOUBLE_EQ(shares[0], 3.0);
}

TEST(WdeqShares, CascadingCaps) {
  // Redistribution can push further tasks over their caps.
  const std::vector<double> w{1.0, 1.0, 2.0};
  const std::vector<double> d{0.5, 1.2, 10.0};
  const auto shares = mc::wdeq_shares(4.0, w, d);
  // Fair shares: 1, 1, 2.  Task 0 capped at 0.5 -> remaining P=3.5, W=3:
  // task 1 fair = 3.5/3 ≈ 1.167 < 1.2 OK; task 2 = 2*3.5/3 ≈ 2.33.
  EXPECT_DOUBLE_EQ(shares[0], 0.5);
  EXPECT_NEAR(shares[1], 3.5 / 3.0, 1e-12);
  EXPECT_NEAR(shares[2], 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(shares[0] + shares[1] + shares[2], 4.0, 1e-12);
}

TEST(WdeqShares, AllCapped) {
  const std::vector<double> w{1.0, 1.0};
  const std::vector<double> d{1.0, 1.0};
  const auto shares = mc::wdeq_shares(10.0, w, d);
  EXPECT_DOUBLE_EQ(shares[0], 1.0);
  EXPECT_DOUBLE_EQ(shares[1], 1.0);
}

TEST(WdeqShares, DeadTasksGetNothing) {
  const std::vector<double> w{1.0, 1.0};
  const std::vector<double> d{2.0, 2.0};
  const std::vector<std::uint8_t> alive{1, 0};
  const auto shares =
      mc::wdeq_shares(2.0, w, d, std::span<const std::uint8_t>(alive));
  EXPECT_DOUBLE_EQ(shares[0], 2.0);
  EXPECT_DOUBLE_EQ(shares[1], 0.0);
}

TEST(WdeqShares, FullMachineUsedWhenPossible) {
  ms::Rng rng(5);
  for (int rep = 0; rep < 100; ++rep) {
    const int n = 2 + static_cast<int>(rng.uniform_int(0, 4));
    std::vector<double> w(n);
    std::vector<double> d(n);
    double total_width = 0.0;
    for (int i = 0; i < n; ++i) {
      w[i] = rng.uniform_pos(1.0);
      d[i] = rng.uniform_pos(2.0);
      total_width += d[i];
    }
    const double P = 3.0;
    const auto shares = mc::wdeq_shares(P, w, d);
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
      EXPECT_LE(shares[i], d[i] + 1e-12);
      EXPECT_GE(shares[i], 0.0);
      sum += shares[i];
    }
    EXPECT_NEAR(sum, std::min(P, total_width), 1e-9) << "rep " << rep;
  }
}

TEST(WdeqRun, ProducesValidSchedule) {
  ms::Rng rng(7);
  for (int rep = 0; rep < 50; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 6;
    config.processors = 2.0;
    const auto inst = mc::generate(config, rng);
    const auto run = mc::run_wdeq(inst);
    const auto check = run.schedule.validate(inst);
    EXPECT_TRUE(check.valid) << "rep " << rep << ": " << check.message;
    // At most n steps (shares change only at completions).
    EXPECT_LE(run.schedule.steps().size(), inst.size());
  }
}

TEST(WdeqRun, VolumeSplitAccounting) {
  // VF + V̄F must equal the total volume of each task.
  ms::Rng rng(9);
  for (int rep = 0; rep < 50; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 5;
    config.processors = 3.0;
    const auto inst = mc::generate(config, rng);
    const auto run = mc::run_wdeq(inst);
    for (std::size_t i = 0; i < inst.size(); ++i) {
      EXPECT_NEAR(run.full_volume[i] + run.limited_volume[i],
                  inst.task(i).volume, 1e-8)
          << "rep " << rep << " task " << i;
    }
  }
}

TEST(WdeqRun, Lemma2BoundHolds) {
  // TC_WDEQ(I) <= 2 (A(I[limited]) + H(I[full])) — the exact inequality the
  // proof of Theorem 4 establishes.
  ms::Rng rng(21);
  for (int rep = 0; rep < 100; ++rep) {
    mc::GeneratorConfig config;
    config.family =
        rep % 2 == 0 ? mc::Family::Uniform : mc::Family::BandwidthLike;
    config.num_tasks = 2 + static_cast<std::size_t>(rng.uniform_int(0, 5));
    config.processors = 2.0;
    const auto inst = mc::generate(config, rng);
    const auto run = mc::run_wdeq(inst);
    const double tc = run.schedule.weighted_completion(inst);
    const double area_part =
        mc::squashed_area_bound(inst.with_volumes(run.limited_volume));
    const double height_part =
        mc::height_bound(inst.with_volumes(run.full_volume));
    EXPECT_LE(tc, 2.0 * (area_part + height_part) + 1e-6)
        << "rep " << rep << " " << inst.describe();
  }
}

TEST(WdeqRun, TwoApproxAgainstExactOptimum) {
  // Theorem 4 against the LP-enumerated optimum on small instances.
  ms::Rng rng(23);
  for (int rep = 0; rep < 20; ++rep) {
    mc::GeneratorConfig config;
    config.family = mc::Family::Uniform;
    config.num_tasks = 4;
    config.processors = 2.0;
    const auto inst = mc::generate(config, rng);
    const auto run = mc::run_wdeq(inst);
    const double tc = run.schedule.weighted_completion(inst);
    const auto opt = mc::optimal_by_enumeration(inst);
    EXPECT_LE(tc, 2.0 * opt.objective + 1e-6)
        << "rep " << rep << " ratio " << tc / opt.objective;
  }
}

TEST(WdeqRun, SingleTaskRunsAtWidth) {
  const mc::Instance inst(4.0, {{2.0, 2.0, 1.0}});
  const auto run = mc::run_wdeq(inst);
  const auto done = run.schedule.completions();
  EXPECT_NEAR(done[0], 1.0, 1e-12);
  EXPECT_NEAR(run.full_volume[0], 2.0, 1e-12);
  EXPECT_NEAR(run.limited_volume[0], 0.0, 1e-12);
}

TEST(DeqRun, MatchesWdeqOnEqualWeights) {
  ms::Rng rng(25);
  mc::GeneratorConfig config;
  config.family = mc::Family::EqualWeights;
  config.num_tasks = 5;
  config.processors = 2.0;
  const auto inst = mc::generate(config, rng);
  const auto wdeq = mc::run_wdeq(inst);
  const auto deq = mc::run_deq(inst);
  const auto ca = wdeq.schedule.completions();
  const auto cb = deq.schedule.completions();
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_NEAR(ca[i], cb[i], 1e-9);
  }
}

TEST(DeqRun, IgnoresWeights) {
  // DEQ must produce the same schedule regardless of the weights.
  const mc::Instance a(2.0, {{1.0, 1.0, 1.0}, {1.0, 2.0, 1.0}});
  const mc::Instance b(2.0, {{1.0, 1.0, 9.0}, {1.0, 2.0, 0.1}});
  const auto run_a = mc::run_deq(a);
  const auto run_b = mc::run_deq(b);
  const auto ca = run_a.schedule.completions();
  const auto cb = run_b.schedule.completions();
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(ca[i], cb[i], 1e-12);
  }
}
