// Cross-module property sweeps: every invariant the paper proves, checked on
// randomized instances drawn from all generator families (parameterized via
// TEST_P so each family/size combination is its own test case).

#include <gtest/gtest.h>

#include <cmath>

#include "malsched/core/assignment.hpp"
#include "malsched/core/bounds.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/makespan.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/core/water_filling.hpp"
#include "malsched/core/wdeq.hpp"

namespace mc = malsched::core;
namespace ms = malsched::support;

namespace {

struct SweepParam {
  mc::Family family;
  std::size_t num_tasks;
  double processors;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = mc::family_name(info.param.family);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name + "_n" + std::to_string(info.param.num_tasks) + "_p" +
         std::to_string(static_cast<int>(info.param.processors));
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  std::uint64_t seed = 1000;
  for (const auto family : mc::all_families()) {
    for (const std::size_t n : {3u, 8u}) {
      for (const double p : {2.0, 5.0}) {
        params.push_back({family, n, p, seed++});
      }
    }
  }
  return params;
}

}  // namespace

class ScheduleInvariantSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  [[nodiscard]] mc::Instance draw(int rep) const {
    ms::Rng rng(GetParam().seed * 977 + static_cast<std::uint64_t>(rep));
    mc::GeneratorConfig config;
    config.family = GetParam().family;
    config.num_tasks = GetParam().num_tasks;
    config.processors = GetParam().processors;
    return mc::generate(config, rng);
  }
};

TEST_P(ScheduleInvariantSweep, WdeqScheduleIsValid) {
  for (int rep = 0; rep < 5; ++rep) {
    const auto inst = draw(rep);
    const auto run = mc::run_wdeq(inst);
    const auto check = run.schedule.validate(inst);
    EXPECT_TRUE(check.valid) << check.message;
  }
}

TEST_P(ScheduleInvariantSweep, WdeqRespectsLemma2Bound) {
  for (int rep = 0; rep < 5; ++rep) {
    const auto inst = draw(rep);
    const auto run = mc::run_wdeq(inst);
    const double tc = run.schedule.weighted_completion(inst);
    const double bound =
        2.0 * (mc::squashed_area_bound(inst.with_volumes(run.limited_volume)) +
               mc::height_bound(inst.with_volumes(run.full_volume)));
    EXPECT_LE(tc, bound * (1.0 + 1e-9) + 1e-6);
  }
}

TEST_P(ScheduleInvariantSweep, GreedySmithIsValidAndAboveBounds) {
  for (int rep = 0; rep < 5; ++rep) {
    const auto inst = draw(rep);
    const auto sched = mc::greedy_schedule(inst, mc::smith_order(inst));
    const auto check = sched.validate(inst);
    EXPECT_TRUE(check.valid) << check.message;
    const double objective = sched.weighted_completion(inst);
    EXPECT_GE(objective, mc::squashed_area_bound(inst) - 1e-6);
    EXPECT_GE(objective, mc::height_bound(inst) - 1e-6);
  }
}

TEST_P(ScheduleInvariantSweep, NormalFormPreservesObjective) {
  for (int rep = 0; rep < 5; ++rep) {
    const auto inst = draw(rep);
    const auto run = mc::run_wdeq(inst);
    const auto normal = mc::normalize(inst, run.schedule);
    ASSERT_TRUE(normal.feasible);
    const auto check = normal.schedule.validate(inst);
    EXPECT_TRUE(check.valid) << check.message;
    EXPECT_NEAR(normal.schedule.weighted_completion(inst),
                run.schedule.weighted_completion(inst),
                1e-6 * std::max(1.0, run.schedule.weighted_completion(inst)));
  }
}

TEST_P(ScheduleInvariantSweep, NormalFormIsIdempotent) {
  for (int rep = 0; rep < 3; ++rep) {
    const auto inst = draw(rep);
    const auto run = mc::run_wdeq(inst);
    const auto once = mc::normalize(inst, run.schedule);
    ASSERT_TRUE(once.feasible);
    const auto twice =
        mc::water_fill(inst, once.schedule.completions());
    ASSERT_TRUE(twice.feasible);
    for (std::size_t i = 0; i < inst.size(); ++i) {
      EXPECT_NEAR(once.schedule.completion(i), twice.schedule.completion(i),
                  1e-9);
      for (std::size_t j = 0; j < inst.size(); ++j) {
        EXPECT_NEAR(once.schedule.allocation(i, j),
                    twice.schedule.allocation(i, j), 1e-6);
      }
    }
  }
}

TEST_P(ScheduleInvariantSweep, MakespanIsWfBoundary) {
  for (int rep = 0; rep < 5; ++rep) {
    const auto inst = draw(rep);
    const double cmax = mc::optimal_makespan(inst);
    const std::vector<double> at(inst.size(), cmax * (1.0 + 1e-9) + 1e-12);
    EXPECT_TRUE(mc::deadlines_feasible(inst, at));
    const std::vector<double> below(inst.size(), cmax * (1.0 - 1e-3));
    EXPECT_FALSE(mc::deadlines_feasible(inst, below));
  }
}

TEST_P(ScheduleInvariantSweep, GreedyCompletionsAreWfFeasible) {
  for (int rep = 0; rep < 5; ++rep) {
    const auto inst = draw(rep);
    const auto sched = mc::greedy_schedule(inst, mc::height_order(inst));
    EXPECT_TRUE(mc::water_fill(inst, sched.completions()).feasible);
  }
}

TEST_P(ScheduleInvariantSweep, WfPreemptionBoundsHold) {
  for (int rep = 0; rep < 3; ++rep) {
    const auto inst = draw(rep);
    const auto sched = mc::greedy_schedule(inst, mc::smith_order(inst));
    const auto wf = mc::water_fill(inst, sched.completions());
    ASSERT_TRUE(wf.feasible);
    // Lemma 5 band count: <= n everywhere.  Natural count: <= 2n - 1 (the
    // Theorem 9 statement of n admits counterexamples, see
    // Preemptions.Theorem9NaturalCountCounterexample).
    EXPECT_LE(mc::count_band_changes(inst, wf.schedule), inst.size());
    EXPECT_LE(mc::count_fractional_changes(wf.schedule),
              2 * inst.size() - 1);
    if (inst.integral()) {
      const auto assignment = mc::assign_processors(inst, wf.schedule);
      EXPECT_TRUE(assignment.validate(inst).valid);
      const auto stats = mc::count_preemptions(inst, wf.schedule, assignment);
      EXPECT_LE(stats.integer_changes, 4 * inst.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ScheduleInvariantSweep,
                         ::testing::ValuesIn(sweep_params()), param_name);
