#include "malsched/core/schedule.hpp"

#include <gtest/gtest.h>

#include "malsched/core/instance.hpp"
#include "malsched/support/matrix.hpp"

namespace mc = malsched::core;
namespace ms = malsched::support;

namespace {

// Two tasks on P=2: T0 (V=2, δ=2) alone first, then T1 (V=1, δ=1).
// Columns: [0,1] with T0 at rate 2... actually share them:
//   column 0 = [0,1]: T0 rate 1, T1 rate 1 -> T0 still unfinished? Use:
//   T0 completes at 1.5, T1 at 1.
// Simpler canonical example:
//   column 0 = [0,1]: T0 rate 1, T1 rate 1; T1 done (V=1) at C=1.
//   column 1 = [1,1.5]: T0 rate 2; T0 volume = 1*1 + 2*0.5 = 2. C0 = 1.5.
mc::Instance two_task_instance() {
  return mc::Instance(2.0, {{2.0, 2.0, 1.0}, {1.0, 1.0, 3.0}});
}

mc::ColumnSchedule two_task_schedule() {
  ms::Matrix alloc(2, 2, 0.0);
  alloc(1, 0) = 1.0;  // T1 in column 0
  alloc(0, 0) = 1.0;  // T0 in column 0
  alloc(0, 1) = 2.0;  // T0 in column 1
  return mc::ColumnSchedule({1, 0}, {1.0, 1.5}, std::move(alloc));
}

}  // namespace

TEST(ColumnSchedule, AccessorsAndCompletions) {
  const auto sched = two_task_schedule();
  EXPECT_EQ(sched.num_tasks(), 2u);
  EXPECT_DOUBLE_EQ(sched.completion(1), 1.0);
  EXPECT_DOUBLE_EQ(sched.completion(0), 1.5);
  EXPECT_EQ(sched.position(1), 0u);
  EXPECT_EQ(sched.position(0), 1u);
  EXPECT_DOUBLE_EQ(sched.column_length(0), 1.0);
  EXPECT_DOUBLE_EQ(sched.column_length(1), 0.5);
  EXPECT_DOUBLE_EQ(sched.makespan(), 1.5);
}

TEST(ColumnSchedule, WeightedCompletion) {
  const auto inst = two_task_instance();
  const auto sched = two_task_schedule();
  // 1.0 * 1.5 + 3.0 * 1.0 = 4.5
  EXPECT_DOUBLE_EQ(sched.weighted_completion(inst), 4.5);
}

TEST(ColumnSchedule, ValidSchedulePasses) {
  const auto inst = two_task_instance();
  const auto sched = two_task_schedule();
  const auto check = sched.validate(inst);
  EXPECT_TRUE(check.valid) << check.message;
}

TEST(ColumnSchedule, DetectsCapacityViolation) {
  const auto inst = two_task_instance();
  ms::Matrix alloc(2, 2, 0.0);
  alloc(1, 0) = 1.0;  // at its width cap δ_1 = 1
  alloc(0, 0) = 1.5;  // within δ_0 = 2, but total 2.5 > P = 2
  alloc(0, 1) = 2.0;
  const mc::ColumnSchedule bad({1, 0}, {1.0, 1.5}, std::move(alloc));
  const auto check = bad.validate(inst);
  EXPECT_FALSE(check.valid);
  EXPECT_NE(check.message.find("capacity"), std::string::npos);
}

TEST(ColumnSchedule, DetectsWidthViolation) {
  const auto inst = two_task_instance();
  ms::Matrix alloc(2, 2, 0.0);
  alloc(1, 0) = 1.5;  // δ_1 = 1
  alloc(0, 0) = 0.5;
  alloc(0, 1) = 2.0;
  const mc::ColumnSchedule bad({1, 0}, {1.0, 1.5}, std::move(alloc));
  const auto check = bad.validate(inst);
  EXPECT_FALSE(check.valid);
  EXPECT_NE(check.message.find("width"), std::string::npos);
}

TEST(ColumnSchedule, DetectsVolumeMismatch) {
  const auto inst = two_task_instance();
  ms::Matrix alloc(2, 2, 0.0);
  alloc(1, 0) = 1.0;
  alloc(0, 0) = 0.5;  // T0 volume = 0.5 + 1.0 = 1.5 != 2
  alloc(0, 1) = 2.0;
  const mc::ColumnSchedule bad({1, 0}, {1.0, 1.5}, std::move(alloc));
  const auto check = bad.validate(inst);
  EXPECT_FALSE(check.valid);
  EXPECT_NE(check.message.find("volume"), std::string::npos);
}

TEST(ColumnSchedule, DetectsAllocationAfterCompletion) {
  const auto inst = two_task_instance();
  ms::Matrix alloc(2, 2, 0.0);
  alloc(1, 0) = 0.5;
  alloc(1, 1) = 1.0;  // T1 completes at column 0 but runs in column 1
  alloc(0, 0) = 1.5;
  alloc(0, 1) = 1.0;
  const mc::ColumnSchedule bad({1, 0}, {1.0, 1.5}, std::move(alloc));
  const auto check = bad.validate(inst);
  EXPECT_FALSE(check.valid);
  EXPECT_NE(check.message.find("after completion"), std::string::npos);
}

TEST(ColumnScheduleDeath, RejectsDuplicateOrder) {
  ms::Matrix alloc(2, 2, 0.0);
  EXPECT_DEATH(mc::ColumnSchedule({0, 0}, {1.0, 2.0}, std::move(alloc)),
               "duplicate");
}

TEST(StepSchedule, CompletionsAndVolumes) {
  const auto inst = two_task_instance();
  std::vector<mc::Step> steps;
  steps.push_back({0.0, 1.0, {1.0, 1.0}});
  steps.push_back({1.0, 1.5, {2.0, 0.0}});
  const mc::StepSchedule sched(2, std::move(steps));
  const auto check = sched.validate(inst);
  EXPECT_TRUE(check.valid) << check.message;
  const auto done = sched.completions();
  EXPECT_DOUBLE_EQ(done[0], 1.5);
  EXPECT_DOUBLE_EQ(done[1], 1.0);
  const auto vol = sched.volumes();
  EXPECT_DOUBLE_EQ(vol[0], 2.0);
  EXPECT_DOUBLE_EQ(vol[1], 1.0);
  EXPECT_DOUBLE_EQ(sched.weighted_completion(inst), 4.5);
  EXPECT_DOUBLE_EQ(sched.makespan(), 1.5);
}

TEST(StepSchedule, DetectsGap) {
  const auto inst = two_task_instance();
  std::vector<mc::Step> steps;
  steps.push_back({0.0, 1.0, {1.0, 1.0}});
  steps.push_back({1.2, 1.7, {2.0, 0.0}});  // gap 1.0 -> 1.2
  const mc::StepSchedule sched(2, std::move(steps));
  const auto check = sched.validate(inst);
  EXPECT_FALSE(check.valid);
  EXPECT_NE(check.message.find("non-contiguous"), std::string::npos);
}

TEST(StepSchedule, RoundTripThroughColumns) {
  const auto inst = two_task_instance();
  const auto columns = two_task_schedule();
  const auto steps = mc::to_steps(columns);
  EXPECT_TRUE(steps.validate(inst).valid);
  const auto back = steps.to_columns(inst);
  EXPECT_TRUE(back.validate(inst).valid);
  EXPECT_DOUBLE_EQ(back.completion(0), columns.completion(0));
  EXPECT_DOUBLE_EQ(back.completion(1), columns.completion(1));
  EXPECT_DOUBLE_EQ(back.weighted_completion(inst),
                   columns.weighted_completion(inst));
}

TEST(StepSchedule, ToColumnsAveragesRates) {
  // A task running at rate 2 for half a column and 0 for the other half
  // averages to rate 1 in the column schedule (Theorem 3 construction).
  const mc::Instance inst(2.0, {{1.0, 2.0, 1.0}, {2.0, 2.0, 1.0}});
  std::vector<mc::Step> steps;
  steps.push_back({0.0, 0.5, {2.0, 0.0}});
  steps.push_back({0.5, 1.0, {0.0, 2.0}});
  steps.push_back({1.0, 1.5, {0.0, 2.0}});
  const mc::StepSchedule sched(2, std::move(steps));
  ASSERT_TRUE(sched.validate(inst).valid);
  const auto columns = sched.to_columns(inst);
  // T0 completes at 0.5, T1 at 1.5. Column 0 = [0, 0.5]: T0 avg rate 2.
  // Column 1 = [0.5, 1.5]: T1 avg rate 2.
  EXPECT_TRUE(columns.validate(inst).valid);
  EXPECT_DOUBLE_EQ(columns.allocation(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(columns.allocation(1, 1), 2.0);
  // T1 also ran in column 0 at average rate... it did not run before 0.5.
  EXPECT_DOUBLE_EQ(columns.allocation(1, 0), 0.0);
}

TEST(StepSchedule, TiedCompletionsGetZeroLengthColumns) {
  const mc::Instance inst(2.0, {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  std::vector<mc::Step> steps;
  steps.push_back({0.0, 1.0, {1.0, 1.0}});
  const mc::StepSchedule sched(2, std::move(steps));
  const auto columns = sched.to_columns(inst);
  EXPECT_TRUE(columns.validate(inst).valid);
  EXPECT_DOUBLE_EQ(columns.completion(0), 1.0);
  EXPECT_DOUBLE_EQ(columns.completion(1), 1.0);
  EXPECT_DOUBLE_EQ(columns.column_length(1), 0.0);
}

TEST(StepSchedule, ZeroVolumeTaskCompletesAtZero) {
  const mc::Instance inst(1.0, {{0.0, 1.0, 1.0}, {1.0, 1.0, 1.0}});
  std::vector<mc::Step> steps;
  steps.push_back({0.0, 1.0, {0.0, 1.0}});
  const mc::StepSchedule sched(2, std::move(steps));
  EXPECT_TRUE(sched.validate(inst).valid);
  EXPECT_DOUBLE_EQ(sched.completions()[0], 0.0);
}
