// E1 — Table I of the paper: the complexity landscape of
// P |pmtn; var; V_i/q, δ_i| objectives.  For every row we *run* the regime
// with the matching algorithm from this library and report the measured
// quality against the row's theoretical guarantee:
//
//   δ≠, V≠, ΣwC, N-C : WDEQ               2-approx (this paper, Thm 4)
//   δ=1, V≠, ΣC,  N-C : DEQ on unit widths 2-approx [12]
//   δ≠, V≠, ΣC,  N-C : DEQ                2-approx [13]
//   δ=P, V≠, ΣwC, N-C : WDEQ, δ=P          2-approx [14]
//   δ=P, V≠, ΣwC, C   : Smith's rule       polynomial/optimal [15]
//   δ=1, V≠, ΣC,  C   : SPT (McNaughton)   polynomial/optimal [16]
//   δ≠, V≠, Cmax, C   : constant rates     O(n^2) [10] (exact here)
//   δ≠, V≠, Lmax, C   : WF + bisection     O(n^4 P) [2] / O(n log n) §IV
//   δ=1, V≠, ΣwC, C   : LRF/WSPT greedy    (1+√2)/2-approx [17,18]

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "malsched/core/bounds.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/makespan.hpp"
#include "malsched/core/optimal.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/core/wdeq.hpp"
#include "malsched/support/stats.hpp"
#include "malsched/support/table.hpp"

using namespace malsched;

namespace {

core::Instance draw(core::Family family, std::size_t n, double p,
                    support::Rng& rng) {
  core::GeneratorConfig config;
  config.family = family;
  config.num_tasks = n;
  config.processors = p;
  return core::generate(config, rng);
}

core::Instance force_width(core::Instance inst, double width) {
  std::vector<core::Task> tasks = inst.tasks();
  for (auto& t : tasks) {
    t.width = width;
  }
  return core::Instance(inst.processors(), std::move(tasks));
}

core::Instance force_weight(core::Instance inst, double weight) {
  std::vector<core::Task> tasks = inst.tasks();
  for (auto& t : tasks) {
    t.weight = weight;
  }
  return core::Instance(inst.processors(), std::move(tasks));
}

struct RowResult {
  double max_ratio = 0.0;
  double mean_ratio = 0.0;
};

template <typename ScheduleFn>
RowResult ratio_vs_optimal(core::Family family, std::size_t n, double p,
                           std::size_t trials, std::uint64_t seed,
                           ScheduleFn&& schedule_objective,
                           double (*transform_width)(double) = nullptr,
                           bool unit_weights = false) {
  support::Sample ratios;
  support::Rng rng(seed);
  for (std::size_t t = 0; t < trials; ++t) {
    auto inst = draw(family, n, p, rng);
    if (transform_width != nullptr) {
      inst = force_width(std::move(inst), transform_width(p));
    }
    if (unit_weights) {
      inst = force_weight(std::move(inst), 1.0);
    }
    const double objective = schedule_objective(inst);
    const auto opt = core::optimal_by_enumeration(inst);
    ratios.add(objective / std::max(1e-12, opt.objective));
  }
  return {ratios.max(), ratios.mean()};
}

void run_report(const bench::BenchConfig& config) {
  bench::print_banner("E1 (paper Table I)",
                      "complexity landscape, measured per row", config);

  const std::size_t trials = bench::scaled(60, config.scale);
  const std::size_t n = 4;  // small enough for the LP-enumerated optimum
  std::uint64_t seed = config.seed;

  support::TextTable table({{"row (delta, V, objective, ctx)", support::Align::Left},
                            {"algorithm", support::Align::Left},
                            {"guarantee", support::Align::Right},
                            {"measured max", support::Align::Right},
                            {"measured mean", support::Align::Right},
                            {"ok", support::Align::Left}});

  const auto add_ratio_row = [&](const char* row, const char* algo,
                                 const char* guarantee, double limit,
                                 const RowResult& result) {
    table.add_row({row, algo, guarantee, support::fmt_double(result.max_ratio),
                   support::fmt_double(result.mean_ratio),
                   result.max_ratio <= limit + 1e-6 ? "yes" : "NO"});
  };

  // Row 1: this paper — WDEQ on fully heterogeneous weighted instances.
  add_ratio_row(
      "delta!=, V!=, sum wC, N-C", "WDEQ (Alg 1)", "2", 2.0,
      ratio_vs_optimal(core::Family::Uniform, n, 2.0, trials, seed++,
                       [](const core::Instance& inst) {
                         return core::run_wdeq(inst)
                             .schedule.weighted_completion(inst);
                       }));

  // Row 2: Motwani et al. — unit widths, unweighted, DEQ.
  add_ratio_row(
      "delta=1,  V!=, sum C,  N-C", "DEQ", "2", 2.0,
      ratio_vs_optimal(
          core::Family::UnitWidth, n, 3.0, trials, seed++,
          [](const core::Instance& inst) {
            return core::run_deq(inst).schedule.weighted_completion(inst);
          },
          nullptr, /*unit_weights=*/true));

  // Row 3: Deng et al. — heterogeneous widths, unweighted, DEQ.
  add_ratio_row(
      "delta!=, V!=, sum C,  N-C", "DEQ", "2", 2.0,
      ratio_vs_optimal(core::Family::EqualWeights, n, 2.0, trials, seed++,
                       [](const core::Instance& inst) {
                         return core::run_deq(inst)
                             .schedule.weighted_completion(inst);
                       }));

  // Row 4: Kim & Chwa — δ = P (single squashed machine), weighted, WDEQ.
  add_ratio_row(
      "delta=P,  V!=, sum wC, N-C", "WDEQ", "2", 2.0,
      ratio_vs_optimal(
          core::Family::Uniform, n, 2.0, trials, seed++,
          [](const core::Instance& inst) {
            return core::run_wdeq(inst).schedule.weighted_completion(inst);
          },
          [](double p) { return p; }));

  // Row 5: Smith — δ = P clairvoyant: greedy with Smith order is optimal.
  add_ratio_row(
      "delta=P,  V!=, sum wC, C  ", "greedy(Smith)", "1 (optimal)", 1.0,
      ratio_vs_optimal(
          core::Family::Uniform, n, 2.0, trials, seed++,
          [](const core::Instance& inst) {
            return core::greedy_objective(inst, core::smith_order(inst));
          },
          [](double p) { return p; }));

  // Row 6: McNaughton — δ = 1 unweighted clairvoyant: SPT greedy optimal.
  add_ratio_row(
      "delta=1,  V!=, sum C,  C  ", "greedy(SPT)", "1 (optimal)", 1.0,
      ratio_vs_optimal(
          core::Family::UnitWidth, n, 3.0, trials, seed++,
          [](const core::Instance& inst) {
            return core::greedy_objective(inst, core::volume_order(inst));
          },
          nullptr, /*unit_weights=*/true));

  // Row 7: Kawaguchi–Kyan — δ = 1 weighted clairvoyant: WSPT greedy within
  // (1+sqrt 2)/2 ≈ 1.2071.
  const double kk = (1.0 + std::sqrt(2.0)) / 2.0;
  add_ratio_row(
      "delta=1,  V!=, sum wC, C  ", "greedy(WSPT)", "1.2071", kk,
      ratio_vs_optimal(core::Family::UnitWidth, n, 3.0, trials, seed++,
                       [](const core::Instance& inst) {
                         return core::greedy_objective(
                             inst, core::smith_order(inst));
                       }));

  std::printf("%s\n", table.to_string().c_str());

  // Cmax and Lmax rows are exact algorithms; report agreement checks.
  {
    support::Rng rng(seed++);
    std::size_t cmax_ok = 0;
    std::size_t lmax_ok = 0;
    const std::size_t checks = bench::scaled(100, config.scale);
    for (std::size_t t = 0; t < checks; ++t) {
      const auto inst = draw(core::Family::Uniform, 12, 3.0, rng);
      const double cmax = core::optimal_makespan(inst);
      const std::vector<double> at(inst.size(), cmax * (1 + 1e-9));
      const std::vector<double> below(inst.size(), cmax * (1 - 1e-3));
      cmax_ok += (core::deadlines_feasible(inst, at) &&
                  !core::deadlines_feasible(inst, below))
                     ? 1
                     : 0;
      std::vector<double> due(inst.size());
      for (auto& d : due) {
        d = rng.uniform(0.0, 2.0);
      }
      const auto lmax = core::minimize_lmax(inst, due);
      std::vector<double> shifted(inst.size());
      for (std::size_t i = 0; i < inst.size(); ++i) {
        shifted[i] = due[i] + lmax.lmax + 1e-6;
      }
      lmax_ok += core::deadlines_feasible(inst, shifted) ? 1 : 0;
    }
    std::printf("delta!=, V!=, Cmax, C   : constant-rate optimum verified by "
                "WF on %zu/%zu instances\n",
                cmax_ok, checks);
    std::printf("delta!=, V!=, Lmax, C   : WF-bisection optimum verified on "
                "%zu/%zu instances\n\n",
                lmax_ok, checks);
  }
}

void bm_wdeq(benchmark::State& state) {
  support::Rng rng(7);
  core::GeneratorConfig config;
  config.family = core::Family::Uniform;
  config.num_tasks = static_cast<std::size_t>(state.range(0));
  config.processors = 8.0;
  const auto inst = core::generate(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_wdeq(inst).schedule.weighted_completion(inst));
  }
}
BENCHMARK(bm_wdeq)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void bm_makespan(benchmark::State& state) {
  support::Rng rng(7);
  core::GeneratorConfig config;
  config.family = core::Family::Uniform;
  config.num_tasks = static_cast<std::size_t>(state.range(0));
  config.processors = 8.0;
  const auto inst = core::generate(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimal_makespan(inst));
  }
}
BENCHMARK(bm_makespan)->Arg(1024)->Arg(16384)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_config(argc, argv);
  run_report(config);
  if (config.timing) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
