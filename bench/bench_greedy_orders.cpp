// E12 — greedy-order ablation (the paper's §VI open question: "study the
// approximation ratio of the greedy schedule based on Smith's ordering").
// Compares the classical priority orders as greedy seeds against the
// exhaustive best greedy order, per instance family, and reports how often
// and by how much each heuristic is off.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/support/stats.hpp"
#include "malsched/support/table.hpp"

using namespace malsched;

namespace {

struct Heuristic {
  const char* name;
  std::vector<std::size_t> (*order)(const core::Instance&);
};

std::vector<std::size_t> reversed_smith(const core::Instance& inst) {
  return core::reversed(core::smith_order(inst));
}

const Heuristic kHeuristics[] = {
    {"smith (V/w asc)", core::smith_order},
    {"height desc", core::height_order},
    {"volume asc", core::volume_order},
    {"weight desc", core::weight_order},
    {"width desc", core::width_order},
    {"smith reversed", reversed_smith},
};

void run_report(const bench::BenchConfig& config) {
  bench::print_banner(
      "E12 (paper §VI)",
      "greedy-order ablation: priority seeds vs best greedy order", config);

  const std::size_t trials = bench::scaled(40, config.scale);
  const std::size_t n = 6;  // 720 orders per exhaustive search

  for (const auto family :
       {core::Family::Uniform, core::Family::EqualWeights,
        core::Family::BandwidthLike, core::Family::WideTasks,
        core::Family::UnitWidth}) {
    support::TextTable table({{"order heuristic", support::Align::Left},
                              {"mean ratio", support::Align::Right},
                              {"max ratio", support::Align::Right},
                              {"optimal hits", support::Align::Right}});
    std::vector<support::Sample> ratios(std::size(kHeuristics));
    std::vector<std::size_t> hits(std::size(kHeuristics), 0);

    support::Rng rng(config.seed + static_cast<std::uint64_t>(family));
    for (std::size_t t = 0; t < trials; ++t) {
      core::GeneratorConfig gen;
      gen.family = family;
      gen.num_tasks = n;
      gen.processors = 3.0;
      const auto inst = core::generate(gen, rng);
      const auto best = core::best_greedy_exhaustive(inst);
      for (std::size_t h = 0; h < std::size(kHeuristics); ++h) {
        const double objective =
            core::greedy_objective(inst, kHeuristics[h].order(inst));
        const double ratio = objective / std::max(1e-12, best.objective);
        ratios[h].add(ratio);
        hits[h] += ratio <= 1.0 + 1e-9 ? 1 : 0;
      }
    }
    std::printf("family: %s (n=%zu, %zu instances)\n",
                core::family_name(family), n, trials);
    for (std::size_t h = 0; h < std::size(kHeuristics); ++h) {
      table.add_row({kHeuristics[h].name,
                     support::fmt_double(ratios[h].mean()),
                     support::fmt_double(ratios[h].max()),
                     support::fmt_int(static_cast<long long>(hits[h])) + "/" +
                         support::fmt_int(static_cast<long long>(trials))});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf(
      "Reading: Smith's order is the paper's suggested candidate (§VI) and\n"
      "dominates the other seeds except on wide-task instances where width\n"
      "ordering matters; no heuristic matches the exhaustive best greedy\n"
      "everywhere — the open question is open for a reason.\n\n");
}

void bm_best_greedy(benchmark::State& state) {
  support::Rng rng(43);
  core::GeneratorConfig gen;
  gen.family = core::Family::Uniform;
  gen.num_tasks = static_cast<std::size_t>(state.range(0));
  gen.processors = 3.0;
  const auto inst = core::generate(gen, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::best_greedy_exhaustive(inst).objective);
  }
}
BENCHMARK(bm_best_greedy)->Arg(4)->Arg(6)->Arg(7)->Unit(benchmark::kMillisecond);

void bm_heuristic_greedy(benchmark::State& state) {
  support::Rng rng(47);
  core::GeneratorConfig gen;
  gen.family = core::Family::Uniform;
  gen.num_tasks = static_cast<std::size_t>(state.range(0));
  gen.processors = 3.0;
  const auto inst = core::generate(gen, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::best_greedy_heuristic(inst).objective);
  }
}
BENCHMARK(bm_heuristic_greedy)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_config(argc, argv);
  run_report(config);
  if (config.timing) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
