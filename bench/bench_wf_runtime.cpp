// E7 — §IV remark: WF improves on Chen et al.'s construction, whose step
// count is proportional to the allocated *area*; WF's work depends only on
// the number of tasks/columns.  We benchmark
//   * water_fill            (full allocation matrix, O(n²)),
//   * water_fill_feasible   (merged-profile fast path),
//   * a Chen-style unit-step baseline (pours volume in fixed quanta),
// plus the Lmax pipeline that the fast path enables (binary search of
// feasibility tests, the O(n log n)-per-probe structure the paper notes).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/makespan.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/core/water_filling.hpp"
#include "malsched/support/rng.hpp"

using namespace malsched;

namespace {

struct Workload {
  core::Instance instance;
  std::vector<double> completions;
};

Workload make_workload(std::size_t n) {
  support::Rng rng(19);
  core::GeneratorConfig gen;
  gen.family = core::Family::Uniform;
  gen.num_tasks = n;
  gen.processors = 8.0;
  auto inst = core::generate(gen, rng);
  auto completions =
      core::greedy_schedule(inst, core::smith_order(inst)).completions();
  return {std::move(inst), std::move(completions)};
}

/// Chen-style baseline: pour each task's volume in fixed quanta onto an
/// explicit per-column height profile (work proportional to volume/quantum,
/// i.e. to the allocated area).
bool chen_unit_step(const core::Instance& inst,
                    std::span<const double> completions, double quantum) {
  const std::size_t n = inst.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return completions[a] < completions[b];
  });
  std::vector<double> heights(n, 0.0);
  std::vector<double> lengths(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    lengths[j] = completions[order[j]] - (j == 0 ? 0.0 : completions[order[j - 1]]);
  }
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t task = order[pos];
    double remaining = inst.task(task).volume;
    const double cap = inst.effective_width(task);
    std::vector<double> given(pos + 1, 0.0);
    while (remaining > 1e-12) {
      // Lowest column with spare width and spare machine capacity.
      std::size_t best = pos + 1;
      for (std::size_t k = 0; k <= pos; ++k) {
        if (lengths[k] <= 0.0 || given[k] >= cap ||
            heights[k] >= inst.processors()) {
          continue;
        }
        if (best == pos + 1 || heights[k] < heights[best]) {
          best = k;
        }
      }
      if (best == pos + 1) {
        return false;  // cannot place the rest
      }
      const double head = std::min(
          {cap - given[best], inst.processors() - heights[best],
           remaining / lengths[best], quantum / lengths[best]});
      given[best] += head;
      heights[best] += head;
      remaining -= head * lengths[best];
    }
  }
  return true;
}

void bm_water_fill_full(benchmark::State& state) {
  const auto w = make_workload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::water_fill(w.instance, w.completions).feasible);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_water_fill_full)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

void bm_water_fill_feasible(benchmark::State& state) {
  const auto w = make_workload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::water_fill_feasible(w.instance, w.completions));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_water_fill_feasible)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

void bm_chen_unit_step(benchmark::State& state) {
  const auto w = make_workload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chen_unit_step(w.instance, w.completions, /*quantum=*/0.01));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_chen_unit_step)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

void bm_lmax(benchmark::State& state) {
  const auto w = make_workload(static_cast<std::size_t>(state.range(0)));
  std::vector<double> due(w.completions);
  for (auto& d : due) {
    d *= 0.8;  // force a non-trivial positive Lmax
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::minimize_lmax(w.instance, due).lmax);
  }
}
BENCHMARK(bm_lmax)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_config(argc, argv);
  bench::print_banner("E7 (paper §IV remark)",
                      "WF runtime scaling vs a Chen-style unit-step baseline",
                      config);
  std::printf("Expected shape: water_fill_feasible scales near-linearly,\n"
              "water_fill quadratically (it materializes the n x n matrix),\n"
              "and the Chen-style baseline scales with allocated AREA —\n"
              "matching the paper's two claimed improvements over [19].\n\n");
  // Sanity cross-check before timing: the baseline and WF agree.
  {
    const auto w = make_workload(48);
    const bool wf = core::water_fill(w.instance, w.completions).feasible;
    const bool chen = chen_unit_step(w.instance, w.completions, 0.01);
    std::printf("agreement check (n=48): WF=%s, Chen-style=%s\n\n",
                wf ? "feasible" : "infeasible",
                chen ? "feasible" : "infeasible");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
