// E11 — Table I rows with release dates:
// P|var;V_i/q,δ_i,r_i|Cmax (Drozdowski [10], O(n²)) and ...|Lmax ([2]).
// Our implementation reduces window feasibility to a task×interval
// transportation max-flow (Dinic) and bisects.  Measures
//   * agreement with the Water-Filling machinery at r = 0,
//   * tightness of the max(r_i + h_i, staggered-area) lower bound,
//   * the cost of one released-makespan solve vs n.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/core/makespan.hpp"
#include "malsched/core/release_dates.hpp"
#include "malsched/core/water_filling.hpp"
#include "malsched/support/stats.hpp"
#include "malsched/support/table.hpp"

using namespace malsched;

namespace {

void run_report(const bench::BenchConfig& config) {
  bench::print_banner("E11 (paper Table I, r_i rows)",
                      "release-date Cmax/Lmax via the flow reduction",
                      config);

  // Agreement with WF at r = 0 across random deadline probes.
  {
    const std::size_t probes = bench::scaled(200, config.scale);
    support::Rng rng(config.seed);
    std::size_t agree = 0;
    for (std::size_t t = 0; t < probes; ++t) {
      core::GeneratorConfig gen;
      gen.family = core::Family::Uniform;
      gen.num_tasks = 6;
      gen.processors = 2.0;
      const auto inst = core::generate(gen, rng);
      std::vector<double> deadlines(inst.size());
      for (auto& d : deadlines) {
        d = rng.uniform(0.2, 2.5);
      }
      const std::vector<double> zero(inst.size(), 0.0);
      agree += (core::released_feasible(inst, zero, deadlines) ==
                core::water_fill_feasible(inst, deadlines))
                   ? 1
                   : 0;
    }
    std::printf("flow-reduction vs Water-Filling feasibility at r = 0: "
                "%zu/%zu probes agree\n\n",
                agree, probes);
  }

  // Lower-bound tightness across release spreads.
  {
    const std::size_t trials = bench::scaled(40, config.scale);
    support::TextTable table({{"release spread", support::Align::Left},
                              {"mean Cmax/LB", support::Align::Right},
                              {"max Cmax/LB", support::Align::Right}});
    std::uint64_t seed = config.seed + 7;
    for (const double spread : {0.0, 0.5, 2.0, 8.0}) {
      support::Sample ratios;
      support::Rng rng(seed++);
      for (std::size_t t = 0; t < trials; ++t) {
        core::GeneratorConfig gen;
        gen.family = core::Family::Uniform;
        gen.num_tasks = 8;
        gen.processors = 2.0;
        const auto inst = core::generate(gen, rng);
        std::vector<double> release(inst.size());
        for (auto& r : release) {
          r = spread > 0.0 ? rng.uniform(0.0, spread) : 0.0;
        }
        const double bound =
            core::released_makespan_lower_bound(inst, release);
        const auto result = core::released_optimal_makespan(inst, release);
        ratios.add(result.makespan / std::max(1e-12, bound));
      }
      table.add_row({support::fmt_double(spread, 1),
                     support::fmt_double(ratios.mean()),
                     support::fmt_double(ratios.max())});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf(
        "Spread 0 reduces to the r-free case where the bound is exact\n"
        "(ratio 1); widening spreads open a gap only when staggered work\n"
        "fragments the profile — the regime [10] handles in O(n^2).\n\n");
  }
}

void bm_released_makespan(benchmark::State& state) {
  support::Rng rng(37);
  core::GeneratorConfig gen;
  gen.family = core::Family::Uniform;
  gen.num_tasks = static_cast<std::size_t>(state.range(0));
  gen.processors = 4.0;
  const auto inst = core::generate(gen, rng);
  std::vector<double> release(inst.size());
  for (auto& r : release) {
    r = rng.uniform(0.0, 2.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::released_optimal_makespan(inst, release).makespan);
  }
}
BENCHMARK(bm_released_makespan)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void bm_released_feasibility(benchmark::State& state) {
  support::Rng rng(41);
  core::GeneratorConfig gen;
  gen.family = core::Family::Uniform;
  gen.num_tasks = static_cast<std::size_t>(state.range(0));
  gen.processors = 4.0;
  const auto inst = core::generate(gen, rng);
  std::vector<double> release(inst.size());
  std::vector<double> deadlines(inst.size());
  for (std::size_t i = 0; i < inst.size(); ++i) {
    release[i] = rng.uniform(0.0, 1.0);
    deadlines[i] = release[i] + rng.uniform(0.5, 3.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::released_feasible(inst, release, deadlines));
  }
}
BENCHMARK(bm_released_feasibility)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_config(argc, argv);
  run_report(config);
  if (config.timing) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
