// E2 — reproduces the §V experiment behind Conjecture 12:
// "We have considered instances composed of 2, 3, 4 and 5 uniform random
//  tasks ... For each set size, we generated 10,000 instances and for each
//  instance the best greedy schedule was numerically indistinguishable from
//  the optimal.  We have also successfully performed the same experiments on
//  constant weight instances and on constant weight and constant volume
//  instances."
//
// For every instance we compute (a) the best greedy schedule over all n!
// orders and (b) the true optimum = min over all n! completion orders of the
// Corollary-1 LP, and report the distribution of the relative gap.  The
// paper-scale 10 000-instance sweep is MALSCHED_BENCH_SCALE=10 (defaults are
// trimmed to keep the single-core run short; the statistic is identical).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/optimal.hpp"
#include "malsched/support/stats.hpp"
#include "malsched/support/table.hpp"
#include "malsched/support/thread_pool.hpp"

using namespace malsched;

namespace {

struct Variant {
  core::Family family;
  const char* label;
};

const Variant kVariants[] = {
    {core::Family::Uniform, "uniform (V,w,delta random)"},
    {core::Family::EqualWeights, "constant weight"},
    {core::Family::EqualWeightsVolumes, "constant weight+volume"},
};

struct GapRow {
  std::size_t n;
  std::size_t instances;
  double max_gap;
  double mean_gap;
};

GapRow measure(core::Family family, std::size_t n, std::size_t instances,
               std::uint64_t seed) {
  support::Sample gaps;
  gaps.reserve(instances);
  support::Rng rng(seed);
  for (std::size_t trial = 0; trial < instances; ++trial) {
    core::GeneratorConfig config;
    config.family = family;
    config.num_tasks = n;
    config.processors = 1.0;  // the paper draws δ_i < P with P normalized
    const auto inst = core::generate(config, rng);
    const auto greedy = core::best_greedy_exhaustive(inst);
    const auto opt = core::optimal_by_enumeration(inst);
    const double gap = (greedy.objective - opt.objective) /
                       std::max(1e-12, opt.objective);
    gaps.add(gap);
  }
  return {n, instances, gaps.max(), gaps.mean()};
}

void run_report(const bench::BenchConfig& config) {
  bench::print_banner(
      "E2 (paper §V, Conjecture 12)",
      "best greedy vs LP optimum on random instances", config);

  // Per-size instance counts: the paper uses 10 000 for every n; the default
  // scale trims the expensive sizes (n=5 solves 120 LPs per instance).
  const std::size_t count2 = bench::scaled(1000, config.scale);
  const std::size_t count3 = bench::scaled(1000, config.scale);
  const std::size_t count4 = bench::scaled(300, config.scale);
  const std::size_t count5 = bench::scaled(60, config.scale);

  for (const auto& variant : kVariants) {
    std::printf("Variant: %s\n", variant.label);
    support::TextTable table({{"n", support::Align::Right},
                              {"instances", support::Align::Right},
                              {"max rel gap", support::Align::Right},
                              {"mean rel gap", support::Align::Right},
                              {"indistinguishable?", support::Align::Left}});
    std::uint64_t seed = config.seed;
    for (const auto& [n, count] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {2, count2}, {3, count3}, {4, count4}, {5, count5}}) {
      const auto row = measure(variant.family, n, count, seed++);
      table.add_row({support::fmt_int(static_cast<long long>(row.n)),
                     support::fmt_int(static_cast<long long>(row.instances)),
                     support::fmt_ratio(row.max_gap, 9),
                     support::fmt_ratio(row.mean_gap, 9),
                     row.max_gap < 1e-5 ? "yes (within LP tolerance)" : "NO"});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf("Paper claim: \"the best greedy schedule was numerically\n"
              "indistinguishable from the optimal\" — reproduced when every\n"
              "max-gap row is within LP tolerance (~1e-6 relative).\n\n");
}

// Timing section: cost of one instance at each n (greedy enumeration + LP
// enumeration), for the record.
void bm_instance_cost(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(4242);
  core::GeneratorConfig config;
  config.family = core::Family::Uniform;
  config.num_tasks = n;
  config.processors = 1.0;
  const auto inst = core::generate(config, rng);
  for (auto _ : state) {
    const auto greedy = core::best_greedy_exhaustive(inst);
    const auto opt = core::optimal_by_enumeration(inst);
    benchmark::DoNotOptimize(greedy.objective + opt.objective);
  }
}
BENCHMARK(bm_instance_cost)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_config(argc, argv);
  run_report(config);
  if (config.timing) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
