// E6 — Theorems 9 and 10: preemption bounds of the Water-Filling normal
// form.  For growing n we build WF schedules (from greedy completion times)
// on integral instances and measure
//   * fractional rate changes      (Theorem 9:   <= n),
//   * integer count changes        (Lemma 9:     <= 3n),
//   * realized processor losses under the affinity assignment.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "malsched/core/assignment.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/core/water_filling.hpp"
#include "malsched/support/stats.hpp"
#include "malsched/support/table.hpp"

using namespace malsched;

namespace {

void run_report(const bench::BenchConfig& config) {
  bench::print_banner("E6 (paper Theorems 9/10)",
                      "preemption counts of the WF normal form", config);

  const std::size_t trials = bench::scaled(20, config.scale);
  support::TextTable table({{"n", support::Align::Right},
                            {"band chg (Lem 5)", support::Align::Right},
                            {"bound n", support::Align::Right},
                            {"all frac chg", support::Align::Right},
                            {"2n envelope", support::Align::Right},
                            {"int chg", support::Align::Right},
                            {"bound 3n", support::Align::Right},
                            {"proc losses", support::Align::Right},
                            {"ok", support::Align::Left}});

  std::uint64_t seed = config.seed;
  for (const std::size_t n : {10u, 30u, 100u, 300u}) {
    support::Sample band;
    support::Sample frac;
    support::Sample integer;
    support::Sample losses;
    bool ok = true;
    support::Rng rng(seed++);
    for (std::size_t t = 0; t < trials; ++t) {
      core::GeneratorConfig gen;
      gen.family = core::Family::UniformIntegral;
      gen.num_tasks = n;
      gen.processors = 8.0;
      const auto inst = core::generate(gen, rng);
      const auto greedy = core::greedy_schedule(inst, core::smith_order(inst));
      const auto wf = core::water_fill(inst, greedy.completions());
      if (!wf.feasible) {
        ok = false;
        continue;
      }
      const auto assignment = core::assign_processors(inst, wf.schedule);
      const auto stats =
          core::count_preemptions(inst, wf.schedule, assignment);
      band.add(static_cast<double>(stats.band_changes));
      frac.add(static_cast<double>(stats.fractional_changes));
      integer.add(static_cast<double>(stats.integer_changes));
      losses.add(static_cast<double>(stats.processor_losses));
      ok = ok && stats.band_changes <= n &&
           stats.fractional_changes <= 2 * n &&
           stats.integer_changes <= 3 * n;
    }
    table.add_row({support::fmt_int(static_cast<long long>(n)),
                   support::fmt_double(band.mean(), 1),
                   support::fmt_int(static_cast<long long>(n)),
                   support::fmt_double(frac.mean(), 1),
                   support::fmt_int(static_cast<long long>(2 * n)),
                   support::fmt_double(integer.mean(), 1),
                   support::fmt_int(static_cast<long long>(3 * n)),
                   support::fmt_double(losses.mean(), 1),
                   ok ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Theorem 9 bounds the Lemma-5 band count by n (holds everywhere).\n"
      "Reproduction note: counting EVERY interior allocation change can\n"
      "exceed n (minimal 4-task counterexample in the test suite: 5 > 4);\n"
      "the measured envelope is 2n-1.  Theorem 10's 3n holds for the\n"
      "integer count on every instance tried here.\n\n");
}

void bm_assignment(benchmark::State& state) {
  support::Rng rng(17);
  core::GeneratorConfig gen;
  gen.family = core::Family::UniformIntegral;
  gen.num_tasks = static_cast<std::size_t>(state.range(0));
  gen.processors = 8.0;
  const auto inst = core::generate(gen, rng);
  const auto greedy = core::greedy_schedule(inst, core::smith_order(inst));
  const auto wf = core::water_fill(inst, greedy.completions());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::assign_processors(inst, wf.schedule).num_processors());
  }
}
BENCHMARK(bm_assignment)->Arg(30)->Arg(100)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_config(argc, argv);
  run_report(config);
  if (config.timing) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
