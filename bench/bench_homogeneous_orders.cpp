// E3 — §V-B: optimal greedy orders on homogeneous instances
// (P = 1, V = w = 1, δ_i ∈ [1/2, 1], δ sorted descending).
//
// The paper states the optimal orders: n=2: {1,2 | 2,1}; n=3: {1,3,2 |
// 2,3,1}; n=4: {1,3,2,4 | 4,2,3,1}; and for n=5 the necessary condition
// (δ_l − δ_j)(δ_i − δ_m) <= 0.  We enumerate the true optima per instance
// and report the observed pattern frequencies.  Note: for n=4 the recurrence
// (the paper's own equation, cross-checked against simulated greedy
// schedules) yields 1,3,4,2 / 2,4,3,1 instead of the printed 1,3,2,4 /
// 4,2,3,1 — see EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "bench_common.hpp"
#include "malsched/core/homogeneous.hpp"
#include "malsched/support/rng.hpp"
#include "malsched/support/table.hpp"

using namespace malsched;

namespace {

std::string order_string(std::span<const std::size_t> order) {
  std::string out;
  for (const std::size_t i : order) {
    out += std::to_string(i + 1);  // 1-based like the paper
    out += ',';
  }
  if (!out.empty()) {
    out.pop_back();
  }
  return out;
}

std::vector<double> random_descending_deltas(support::Rng& rng,
                                             std::size_t n) {
  std::vector<double> delta(n);
  for (auto& d : delta) {
    d = rng.uniform(0.5 + 1e-6, 1.0);
  }
  std::sort(delta.begin(), delta.end(), std::greater<>());
  return delta;
}

void run_report(const bench::BenchConfig& config) {
  bench::print_banner("E3 (paper §V-B)",
                      "optimal greedy orders on homogeneous instances",
                      config);

  const std::size_t trials = bench::scaled(200, config.scale);

  for (const std::size_t n : {2u, 3u, 4u, 5u}) {
    support::Rng rng(config.seed + n);
    std::map<std::string, std::size_t> pattern_counts;
    std::size_t five_condition_ok = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      const auto delta = random_descending_deltas(rng, n);
      const auto best = core::best_homogeneous_order(delta);
      ++pattern_counts[order_string(best.order)];
      if (n == 5) {
        five_condition_ok +=
            core::five_task_condition(delta, best.order) ? 1 : 0;
      }
    }
    std::printf("n = %zu (%zu random instances, deltas sorted descending):\n",
                n, trials);
    support::TextTable table({{"optimal order (1-based)", support::Align::Left},
                              {"frequency", support::Align::Right}});
    for (const auto& [pattern, count] : pattern_counts) {
      table.add_row({pattern, support::fmt_int(static_cast<long long>(count))});
    }
    std::printf("%s", table.to_string().c_str());
    if (n == 5) {
      std::printf("5-task necessary condition (δl−δj)(δi−δm) <= 0 held on "
                  "%zu/%zu optima\n",
                  five_condition_ok, trials);
    }
    std::printf("\n");
  }

  std::printf(
      "Paper-stated patterns: n=2: 1,2 / 2,1;  n=3: 1,3,2 / 2,3,1;\n"
      "n=4: 1,3,2,4 / 4,2,3,1 (paper) vs 1,3,4,2 / 2,4,3,1 (measured from\n"
      "the paper's own recurrence — the n=2,3 rows match the paper exactly).\n\n");
}

void bm_best_order(benchmark::State& state) {
  support::Rng rng(9);
  const auto delta =
      random_descending_deltas(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::best_homogeneous_order(delta).total);
  }
}
BENCHMARK(bm_best_order)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_config(argc, argv);
  run_report(config);
  if (config.timing) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
