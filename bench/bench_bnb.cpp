// E-BNB — branch-and-bound exact solver vs n! enumeration.
//
// Three sections:
//   1. head-to-head at enumeration-feasible sizes (n = 6, 7): same optimum,
//      wall time and order-LP evaluation counts side by side;
//   2. branch-and-bound scaling n = 8..12 across generator families —
//      where enumeration would need n! LP solves (40320 .. 479M), the
//      search reports its actual node/LP counts and the n!/LP ratio;
//   3. the pinned n = 12 fixture (uniform, seed 42) that the CI smoke job
//      replays with `--quick`: the wall-time ceiling turns an accidental
//      O(n!) regression (or a broken bound) into a red build;
//   4. the pinned structured n = 12 batch fixture for the tail cuts: two
//      interleaved identical-shape batches under geometric weight spreads,
//      solved cuts-on and cuts-off.  The CI gate requires >= 5x fewer
//      nodes with cuts on (measured ~97x) and bit-equal objectives — the
//      acceptance bar of the exchange-cut PR, replayed on every build.
//
// Results land in BENCH_bnb.json (see bench_common.hpp) so the perf
// trajectory of the exact-serving path is machine-readable.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "malsched/core/bnb.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/core/optimal.hpp"
#include "malsched/support/stats.hpp"
#include "malsched/support/table.hpp"

using namespace malsched;

namespace {

constexpr std::uint64_t kPinnedSeed = 42;  // the CI fixture below

core::Instance pinned_instance(std::size_t n, core::Family family,
                               std::uint64_t seed) {
  support::Rng rng(seed);
  core::GeneratorConfig config;
  config.family = family;
  config.num_tasks = n;
  config.processors = 4.0;
  return core::generate(config, rng);
}

double factorial(std::size_t n) {
  double f = 1.0;
  for (std::size_t k = 2; k <= n; ++k) {
    f *= static_cast<double>(k);
  }
  return f;
}

template <typename Fn>
double wall_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void run_head_to_head(const bench::BenchConfig& config, bench::BenchJson& json) {
  std::printf("1. head-to-head vs enumeration (optimum must match):\n");
  support::TextTable table({{"family", support::Align::Left},
                            {"n", support::Align::Right},
                            {"instances", support::Align::Right},
                            {"enum ms", support::Align::Right},
                            {"b&b ms", support::Align::Right},
                            {"enum LPs", support::Align::Right},
                            {"b&b LPs", support::Align::Right},
                            {"max |gap|", support::Align::Right}});
  const core::Family families[] = {core::Family::Uniform,
                                   core::Family::EqualWeights,
                                   core::Family::WideTasks,
                                   core::Family::UnitWidth};
  for (const core::Family family : families) {
    for (const std::size_t n : {std::size_t{6}, std::size_t{7}}) {
      const std::size_t instances = bench::scaled(n == 6 ? 5 : 2, config.scale);
      support::Rng rng(config.seed + n);
      support::Sample enum_ms;
      support::Sample bnb_ms;
      double enum_lps = 0.0;
      double bnb_lps = 0.0;
      double max_gap = 0.0;
      for (std::size_t rep = 0; rep < instances; ++rep) {
        core::GeneratorConfig generator;
        generator.family = family;
        generator.num_tasks = n;
        generator.processors = 4.0;
        const auto inst = core::generate(generator, rng);
        core::OptimalResult enumerated;
        enum_ms.add(1e3 * wall_seconds([&] {
                      core::OptimalOptions options;
                      options.enumeration_crossover = n;  // force the n! path
                      enumerated = core::optimal_by_enumeration(inst, options);
                    }));
        core::BnbResult bnb;
        bnb_ms.add(1e3 * wall_seconds([&] { bnb = core::branch_and_bound(inst); }));
        enum_lps += static_cast<double>(enumerated.orders_tried);
        bnb_lps += static_cast<double>(bnb.stats.lp_evaluations);
        max_gap = std::max(max_gap,
                           std::abs(bnb.objective - enumerated.objective) /
                               std::max(1.0, enumerated.objective));
      }
      table.add_row({core::family_name(family), support::fmt_int(static_cast<long long>(n)),
                     support::fmt_int(static_cast<long long>(instances)),
                     support::fmt_double(enum_ms.mean()),
                     support::fmt_double(bnb_ms.mean()),
                     support::fmt_double(enum_lps / static_cast<double>(instances)),
                     support::fmt_double(bnb_lps / static_cast<double>(instances)),
                     support::fmt_ratio(max_gap, 9)});
      const std::string scenario = std::string("head_to_head_") +
                                   core::family_name(family) + "_n" +
                                   std::to_string(n);
      json.add(scenario, "enum_wall_ns_p50", enum_ms.quantile(0.5) * 1e6);
      json.add(scenario, "bnb_wall_ns_p50", bnb_ms.quantile(0.5) * 1e6);
      json.add(scenario, "bnb_wall_ns_p95", bnb_ms.quantile(0.95) * 1e6);
      json.add(scenario, "enum_lp_evaluations",
               enum_lps / static_cast<double>(instances));
      json.add(scenario, "bnb_lp_evaluations",
               bnb_lps / static_cast<double>(instances));
      json.add(scenario, "max_relative_gap", max_gap);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

void run_scaling(const bench::BenchConfig& config, bench::BenchJson& json) {
  std::printf("2. branch-and-bound scaling (enumeration would need n! LPs):\n");
  support::TextTable table({{"family", support::Align::Left},
                            {"n", support::Align::Right},
                            {"wall ms", support::Align::Right},
                            {"nodes", support::Align::Right},
                            {"leaves", support::Align::Right},
                            {"LP evals", support::Align::Right},
                            {"n!/LPs", support::Align::Right}});
  const core::Family families[] = {core::Family::Uniform,
                                   core::Family::EqualWeights,
                                   core::Family::HeavyTailVolumes};
  for (const core::Family family : families) {
    for (std::size_t n = 8; n <= 12; ++n) {
      if (family != core::Family::Uniform && n != 10 && config.scale < 2.0) {
        // Uniform carries the full n = 8..12 sweep by default; the
        // structured families contribute only their n = 10 row (their
        // larger sizes are minutes of search — the bound is weakest there)
        // unless --full / MALSCHED_BENCH_SCALE >= 2 asks for everything.
        continue;
      }
      const auto inst = pinned_instance(n, family, kPinnedSeed);
      core::BnbResult result;
      const double seconds = wall_seconds(
          [&] { result = core::branch_and_bound(inst); });
      const double ratio =
          factorial(n) / static_cast<double>(result.stats.lp_evaluations);
      table.add_row({core::family_name(family),
                     support::fmt_int(static_cast<long long>(n)),
                     support::fmt_double(seconds * 1e3),
                     support::fmt_int(static_cast<long long>(result.stats.nodes)),
                     support::fmt_int(static_cast<long long>(result.stats.leaves)),
                     support::fmt_int(
                         static_cast<long long>(result.stats.lp_evaluations)),
                     support::fmt_double(ratio)});
      const std::string scenario = std::string("scaling_") +
                                   core::family_name(family) + "_n" +
                                   std::to_string(n);
      json.add(scenario, "wall_ns", seconds * 1e9);
      json.add(scenario, "nodes", static_cast<double>(result.stats.nodes));
      json.add(scenario, "leaves", static_cast<double>(result.stats.leaves));
      json.add(scenario, "lp_evaluations",
               static_cast<double>(result.stats.lp_evaluations));
      json.add(scenario, "factorial_over_lp", ratio);
      json.add(scenario, "objective", result.objective);
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(12! = 4.79e8: the n = 12 rows above beat enumeration by the "
              "n!/LPs factor shown — the acceptance bar is >= 100x.)\n\n");
}

/// The CI smoke: solve the pinned uniform n = 12 instance once and fail
/// (exit 1) when the wall time exceeds the ceiling.  The ceiling is
/// deliberately generous — it exists to catch an accidental return to
/// factorial behaviour, not to benchmark the machine.  Tightened 60 → 30 s
/// once the tail-cut work landed: the fixture measures ~3.4 s RelWithDebInfo
/// on a 1-core container, so 30 s still leaves ~9x machine slack while
/// halving how much regression can hide under the gate.
int measure_pinned(bench::BenchJson& json) {
  double ceiling_seconds = 30.0;
  if (const char* env = std::getenv("MALSCHED_BNB_CEILING_SECONDS")) {
    ceiling_seconds = std::atof(env);
  }
  const auto inst = pinned_instance(12, core::Family::Uniform, kPinnedSeed);
  core::BnbResult result;
  const double seconds =
      wall_seconds([&] { result = core::branch_and_bound(inst); });
  const double ratio =
      factorial(12) / static_cast<double>(result.stats.lp_evaluations);

  json.add("pinned_uniform_n12", "wall_ns", seconds * 1e9);
  json.add("pinned_uniform_n12", "nodes", static_cast<double>(result.stats.nodes));
  json.add("pinned_uniform_n12", "leaves",
           static_cast<double>(result.stats.leaves));
  json.add("pinned_uniform_n12", "lp_evaluations",
           static_cast<double>(result.stats.lp_evaluations));
  json.add("pinned_uniform_n12", "factorial_over_lp", ratio);
  json.add("pinned_uniform_n12", "objective", result.objective);
  json.add("pinned_uniform_n12", "ceiling_seconds", ceiling_seconds);

  std::printf("pinned uniform n=12 (seed %llu): objective %.6f in %.2fs — "
              "%zu nodes, %zu LP evals (n!/LPs = %.0fx, bar >= 100x)\n",
              static_cast<unsigned long long>(kPinnedSeed), result.objective,
              seconds, result.stats.nodes, result.stats.lp_evaluations, ratio);
  const bool time_ok = seconds <= ceiling_seconds;
  const bool ratio_ok = ratio >= 100.0;
  std::printf("ceiling %.0fs: %s;  LP-reduction bar: %s\n\n", ceiling_seconds,
              time_ok ? "PASS" : "FAIL (O(n!) regression?)",
              ratio_ok ? "PASS" : "FAIL");
  return time_ok && ratio_ok ? 0 : 1;
}

/// The structured tail-cut fixture: the same two-batch instance the core
/// test suite pins (tests/core/test_bnb.cpp, structured_batch_fixture) —
/// tall-narrow v=2/δ=1 and short-wide v=1/δ=4 batches of six on P=4,
/// geometric intra-batch weights.  Repeated shapes under heterogeneous
/// weights are the workload the identical-shape exchange cut exists for.
core::Instance structured_batch_instance() {
  std::vector<core::Task> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back({2.0, 1.0, std::pow(2.0, i)});
    tasks.push_back({1.0, 4.0, 0.9 * std::pow(2.0, 5 - i)});
  }
  return core::Instance(4.0, std::move(tasks));
}

/// CI gate for the tail cuts: cuts-on must keep a >= 5x node advantage on
/// the structured fixture and return the bit-identical objective.
int measure_structured_cuts(bench::BenchJson& json) {
  const auto inst = structured_batch_instance();
  core::BnbOptions off;
  off.use_cuts = false;
  core::BnbResult with;
  core::BnbResult without;
  const double on_seconds =
      wall_seconds([&] { with = core::branch_and_bound(inst); });
  const double off_seconds =
      wall_seconds([&] { without = core::branch_and_bound(inst, off); });

  const double node_ratio = static_cast<double>(without.stats.nodes) /
                            static_cast<double>(std::max<std::size_t>(
                                1, with.stats.nodes));
  json.add("structured_cuts_n12", "cuts_on_wall_ns", on_seconds * 1e9);
  json.add("structured_cuts_n12", "cuts_off_wall_ns", off_seconds * 1e9);
  json.add("structured_cuts_n12", "cuts_on_nodes",
           static_cast<double>(with.stats.nodes));
  json.add("structured_cuts_n12", "cuts_off_nodes",
           static_cast<double>(without.stats.nodes));
  json.add("structured_cuts_n12", "node_ratio", node_ratio);
  json.add("structured_cuts_n12", "cut_prunes",
           static_cast<double>(with.stats.pruned_by_cut));
  json.add("structured_cuts_n12", "objective", with.objective);

  std::printf("structured batch n=12: cuts-on %zu nodes (%.2fs) vs cuts-off "
              "%zu nodes (%.2fs) — %.0fx\n",
              with.stats.nodes, on_seconds, without.stats.nodes, off_seconds,
              node_ratio);
  const bool ratio_ok = node_ratio >= 5.0;
  const bool parity_ok = with.objective == without.objective;
  std::printf("tail-cut gate (>= 5x fewer nodes, bit-equal objective): %s\n\n",
              ratio_ok && parity_ok ? "PASS" : "FAIL");
  return ratio_ok && parity_ok ? 0 : 1;
}

void bm_branch_and_bound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inst = pinned_instance(n, core::Family::Uniform, kPinnedSeed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::branch_and_bound(inst).objective);
  }
}
BENCHMARK(bm_branch_and_bound)->Arg(8)->Arg(9)->Arg(10)->Unit(benchmark::kMillisecond);

void bm_order_lp_evaluator_push_pop(benchmark::State& state) {
  const auto inst = pinned_instance(10, core::Family::Uniform, kPinnedSeed);
  core::OrderLpEvaluator evaluator(inst);
  for (std::size_t t = 0; t + 1 < inst.size(); ++t) {
    evaluator.push(t, /*exact=*/false);
  }
  const std::size_t last = inst.size() - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.push(last, /*exact=*/false));
    evaluator.pop();
  }
}
BENCHMARK(bm_order_lp_evaluator_push_pop)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_config(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      bench::print_banner("E-BNB (quick)",
                          "pinned n=12 ceiling + tail-cut gate", config);
      bench::BenchJson json("bnb", config);
      const int status = measure_pinned(json);
      const int cut_status = measure_structured_cuts(json);
      json.write();
      return status != 0 ? status : cut_status;
    }
  }

  bench::print_banner("E-BNB", "branch-and-bound exact solver vs enumeration",
                      config);
  bench::BenchJson json("bnb", config);
  run_head_to_head(config, json);
  run_scaling(config, json);
  int quick_status = measure_pinned(json);  // the pinned CI row
  const int cut_status = measure_structured_cuts(json);
  if (quick_status == 0) {
    quick_status = cut_status;
  }
  json.write();
  if (config.timing) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return quick_status;
}
