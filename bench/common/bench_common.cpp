#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace malsched::bench {

BenchConfig parse_config(int argc, char** argv) {
  BenchConfig config;
  if (const char* env = std::getenv("MALSCHED_BENCH_SCALE")) {
    config.scale = std::atof(env);
    if (config.scale <= 0.0) {
      config.scale = 1.0;
    }
  }
  if (const char* env = std::getenv("MALSCHED_BENCH_SEED")) {
    config.seed = std::strtoull(env, nullptr, 10);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      config.scale = 10.0;
    } else if (std::strcmp(argv[i], "--no-timing") == 0) {
      config.timing = false;
    }
  }
  return config;
}

std::size_t scaled(std::size_t base, double scale, std::size_t min_count) {
  const auto value = static_cast<std::size_t>(static_cast<double>(base) * scale);
  return value < min_count ? min_count : value;
}

void print_banner(const std::string& experiment_id, const std::string& title,
                  const BenchConfig& config) {
  std::printf("=====================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
  std::printf("scale=%.1f seed=%llu  (MALSCHED_BENCH_SCALE / --full for "
              "paper-scale runs)\n",
              config.scale, static_cast<unsigned long long>(config.seed));
  std::printf("=====================================================\n\n");
}

}  // namespace malsched::bench
