#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace malsched::bench {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control bytes) —
/// scenario/metric names are code-chosen, but stay robust anyway.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trippable double; JSON has no infinity/NaN, so those
/// degrade to null.
std::string json_number(double value) {
  if (!(value == value) || value > 1.7976931348623157e308 ||
      value < -1.7976931348623157e308) {
    return "null";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

}  // namespace

BenchConfig parse_config(int argc, char** argv) {
  BenchConfig config;
  if (const char* env = std::getenv("MALSCHED_BENCH_SCALE")) {
    config.scale = std::atof(env);
    if (config.scale <= 0.0) {
      config.scale = 1.0;
    }
  }
  if (const char* env = std::getenv("MALSCHED_BENCH_SEED")) {
    config.seed = std::strtoull(env, nullptr, 10);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      config.scale = 10.0;
    } else if (std::strcmp(argv[i], "--no-timing") == 0) {
      config.timing = false;
    }
  }
  return config;
}

std::size_t scaled(std::size_t base, double scale, std::size_t min_count) {
  const auto value = static_cast<std::size_t>(static_cast<double>(base) * scale);
  return value < min_count ? min_count : value;
}

void print_banner(const std::string& experiment_id, const std::string& title,
                  const BenchConfig& config) {
  std::printf("=====================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
  std::printf("scale=%.1f seed=%llu  (MALSCHED_BENCH_SCALE / --full for "
              "paper-scale runs)\n",
              config.scale, static_cast<unsigned long long>(config.seed));
  std::printf("=====================================================\n\n");
}

BenchJson::BenchJson(std::string name, const BenchConfig& config)
    : name_(std::move(name)), scale_(config.scale), seed_(config.seed) {}

void BenchJson::add(const std::string& scenario, const std::string& metric,
                    double value) {
  Scenario* target = nullptr;
  for (auto& existing : scenarios_) {
    if (existing.name == scenario) {
      target = &existing;
      break;
    }
  }
  if (target == nullptr) {
    scenarios_.push_back({scenario, {}});
    target = &scenarios_.back();
  }
  for (auto& [name, existing_value] : target->metrics) {
    if (name == metric) {
      existing_value = value;
      return;
    }
  }
  target->metrics.emplace_back(metric, value);
}

std::string BenchJson::to_string() const {
  std::string out = "{\"bench\":\"" + json_escape(name_) + "\"";
  out += ",\"scale\":" + json_number(scale_);
  out += ",\"seed\":" + std::to_string(seed_);
  out += ",\"scenarios\":[";
  for (std::size_t s = 0; s < scenarios_.size(); ++s) {
    if (s != 0) {
      out += ',';
    }
    out += "{\"name\":\"" + json_escape(scenarios_[s].name) + "\",\"metrics\":{";
    const auto& metrics = scenarios_[s].metrics;
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      if (m != 0) {
        out += ',';
      }
      out += "\"" + json_escape(metrics[m].first) +
             "\":" + json_number(metrics[m].second);
    }
    out += "}}";
  }
  out += "]}\n";
  return out;
}

bool BenchJson::write() const {
  const std::string path = "BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  out << to_string();
  const bool ok = out.good();
  if (ok) {
    std::printf("wrote %s\n", path.c_str());
  }
  return ok;
}

}  // namespace malsched::bench
