#pragma once

/// \file bench_common.hpp
/// Shared plumbing for the experiment binaries (bench/): scale control,
/// headers, and seed provenance.  Every binary prints a paper-style table to
/// stdout; CSV series go next to the binary when a path is writable.
///
/// Scaling: experiments default to sizes that finish in seconds on one core.
/// Set MALSCHED_BENCH_SCALE=10 (or pass --full) to reproduce the paper-scale
/// counts (e.g. the 10 000-instance Monte-Carlo sweeps of §V).

#include <cstddef>
#include <cstdint>
#include <string>

namespace malsched::bench {

struct BenchConfig {
  double scale = 1.0;
  std::uint64_t seed = 20120521;  // IPDPS 2012 started May 21, 2012
  bool timing = true;             ///< run the google-benchmark section
};

/// Parses MALSCHED_BENCH_SCALE / MALSCHED_BENCH_SEED and --full/--no-timing
/// flags (unknown flags are left for google-benchmark).
[[nodiscard]] BenchConfig parse_config(int argc, char** argv);

/// Scales a default count, with a floor of `min_count`.
[[nodiscard]] std::size_t scaled(std::size_t base, double scale,
                                 std::size_t min_count = 1);

/// Prints the standard experiment banner.
void print_banner(const std::string& experiment_id, const std::string& title,
                  const BenchConfig& config);

}  // namespace malsched::bench
