#pragma once

/// \file bench_common.hpp
/// Shared plumbing for the experiment binaries (bench/): scale control,
/// headers, and seed provenance.  Every binary prints a paper-style table to
/// stdout; CSV series go next to the binary when a path is writable.
///
/// Scaling: experiments default to sizes that finish in seconds on one core.
/// Set MALSCHED_BENCH_SCALE=10 (or pass --full) to reproduce the paper-scale
/// counts (e.g. the 10 000-instance Monte-Carlo sweeps of §V).

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace malsched::bench {

struct BenchConfig {
  double scale = 1.0;
  std::uint64_t seed = 20120521;  // IPDPS 2012 started May 21, 2012
  bool timing = true;             ///< run the google-benchmark section
};

/// Parses MALSCHED_BENCH_SCALE / MALSCHED_BENCH_SEED and --full/--no-timing
/// flags (unknown flags are left for google-benchmark).
[[nodiscard]] BenchConfig parse_config(int argc, char** argv);

/// Scales a default count, with a floor of `min_count`.
[[nodiscard]] std::size_t scaled(std::size_t base, double scale,
                                 std::size_t min_count = 1);

/// Prints the standard experiment banner.
void print_banner(const std::string& experiment_id, const std::string& title,
                  const BenchConfig& config);

/// Machine-readable benchmark results.  Each binary that wants its perf
/// trajectory tracked accumulates named scenarios with numeric metrics
/// (wall-time quantiles in ns, node counts, ...) and writes
/// `BENCH_<name>.json` into the working directory, so CI and tooling can
/// diff runs without scraping the human tables.
class BenchJson {
 public:
  BenchJson(std::string name, const BenchConfig& config);

  /// Sets one metric of a scenario (scenario created on first use; setting
  /// the same metric again overwrites it).
  void add(const std::string& scenario, const std::string& metric,
           double value);

  /// The serialized document:
  /// {"bench":..., "scale":..., "seed":...,
  ///  "scenarios":[{"name":..., "metrics":{...}}, ...]}
  [[nodiscard]] std::string to_string() const;

  /// Writes BENCH_<name>.json (current directory); returns false and warns
  /// on stderr when the path is not writable.
  bool write() const;

 private:
  struct Scenario {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };

  std::string name_;
  double scale_;
  std::uint64_t seed_;
  std::vector<Scenario> scenarios_;
};

}  // namespace malsched::bench
