// E-ONLINE — empirical competitive ratios of the online replanning
// policies (src/online/) against the clairvoyant offline baseline.
//
// Full mode sweeps policy x trace-family x size: each (family, n, seed)
// trace is replayed under every policy and priced against the offline
// baseline (exact branch-and-bound optimum when affordable, the released
// ΣwC lower bound beyond — ratios against a lower bound are conservative
// upper bounds on the true competitive ratio; docs/BENCHMARKS.md has the
// methodology).  Results land in BENCH_online.json.
//
// --quick is the CI gate (exit non-zero on failure):
//   1. single-task all-at-t=0 trace: every policy is trivially optimal, so
//      every ratio must be <= 1 + 1e-9;
//   2. pinned n=8 all-at-t=0 trace: exact-replan must reproduce the offline
//      branch-and-bound optimum BIT-FOR-BIT (== on the doubles), and every
//      other policy must stay within the 2x ceiling of Theorem 4;
//   3. every replayed schedule must validate against its instance.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "malsched/online/baseline.hpp"
#include "malsched/online/clock.hpp"
#include "malsched/online/replan.hpp"
#include "malsched/online/trace.hpp"
#include "malsched/support/stats.hpp"
#include "malsched/support/table.hpp"

using namespace malsched;

namespace {

constexpr std::uint64_t kPinnedSeed = 42;

online::ArrivalTrace pinned_trace(online::TraceFamily family, std::size_t n,
                                  std::uint64_t seed) {
  online::TraceConfig config;
  config.family = family;
  config.num_tasks = n;
  config.processors = 4.0;
  support::Rng rng(seed);
  return online::generate_trace(config, rng);
}

/// All arrivals at t = 0 with the §V-uniform marginals: the degenerate trace
/// on which online collapses to the offline batch problem.
online::ArrivalTrace t0_trace(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  const double P = 4.0;
  std::vector<online::Arrival> arrivals;
  for (std::size_t i = 0; i < n; ++i) {
    core::Task t;
    t.volume = rng.uniform_pos(1.0);
    t.width = rng.uniform_pos(P);
    t.weight = rng.uniform_pos(1.0);
    arrivals.push_back({0.0, t});
  }
  return online::ArrivalTrace(P, std::move(arrivals));
}

void run_sweep(const bench::BenchConfig& config, bench::BenchJson& json) {
  std::printf("competitive ratios (vs offline baseline; '<=' rows are "
              "against a lower bound):\n");
  support::TextTable table({{"family", support::Align::Left},
                            {"n", support::Align::Right},
                            {"policy", support::Align::Left},
                            {"traces", support::Align::Right},
                            {"ratio mean", support::Align::Right},
                            {"ratio max", support::Align::Right},
                            {"replans", support::Align::Right},
                            {"baseline", support::Align::Left}});
  for (const online::TraceFamily family : online::all_trace_families()) {
    for (const std::size_t n : {std::size_t{10}, std::size_t{30}}) {
      const std::size_t traces =
          bench::scaled(n <= 10 ? 5 : 3, config.scale);
      // One sample set per policy, aggregated over the per-seed traces.
      std::vector<std::string> names;
      std::vector<support::Sample> ratios;
      std::vector<support::Sample> replans;
      bool exact_baseline = true;
      for (std::size_t rep = 0; rep < traces; ++rep) {
        const auto trace =
            pinned_trace(family, n, config.seed + 977 * rep + n);
        const auto baseline = online::offline_baseline(trace);
        exact_baseline = exact_baseline && baseline.exact;
        auto policies = online::all_replan_policies();
        if (names.empty()) {
          for (const auto& policy : policies) {
            names.push_back(policy->name());
          }
          ratios.resize(policies.size());
          replans.resize(policies.size());
        }
        for (std::size_t p = 0; p < policies.size(); ++p) {
          const auto run = online::replay(trace, *policies[p]);
          ratios[p].add(run.weighted_completion / baseline.objective);
          replans[p].add(static_cast<double>(run.replans));
        }
      }
      for (std::size_t p = 0; p < names.size(); ++p) {
        table.add_row({online::trace_family_name(family),
                       support::fmt_int(static_cast<long long>(n)), names[p],
                       support::fmt_int(static_cast<long long>(traces)),
                       support::fmt_ratio(ratios[p].mean(), 4),
                       support::fmt_ratio(ratios[p].max(), 4),
                       support::fmt_double(replans[p].mean()),
                       exact_baseline ? "exact" : "lower bound"});
        const std::string scenario = std::string(
            online::trace_family_name(family)) + "_n" + std::to_string(n) +
            "_" + names[p];
        json.add(scenario, "ratio_mean", ratios[p].mean());
        json.add(scenario, "ratio_max", ratios[p].max());
        json.add(scenario, "replans_mean", replans[p].mean());
        json.add(scenario, "baseline_exact", exact_baseline ? 1.0 : 0.0);
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

/// The CI gate (see file comment).  Returns the process exit status.
int run_gate(bench::BenchJson& json) {
  int failures = 0;
  const auto check = [&](bool ok, const char* what) {
    std::printf("  %-52s %s\n", what, ok ? "PASS" : "FAIL");
    if (!ok) {
      ++failures;
    }
  };

  // 1. Single task at t = 0: every work-conserving policy runs it at
  // min(δ, P) from 0, so every ratio is exactly 1.
  {
    const auto trace = t0_trace(1, kPinnedSeed);
    const auto baseline = online::offline_baseline(trace);
    std::printf("gate 1: single-task t=0 trace (every policy optimal)\n");
    for (auto& policy : online::all_replan_policies()) {
      const auto run = online::replay(trace, *policy);
      const double ratio = run.weighted_completion / baseline.objective;
      json.add("gate_single_t0", policy->name() + "_ratio", ratio);
      check(ratio <= 1.0 + 1e-9,
            (policy->name() + " ratio <= 1 + 1e-9").c_str());
    }
  }

  // 2. Pinned n=8 t=0 trace: exact-replan reproduces the offline optimum
  // bit-for-bit; the others stay under the Theorem-4 2x ceiling.
  {
    const auto trace = t0_trace(8, kPinnedSeed);
    const auto baseline = online::offline_baseline(trace);
    const auto instance = trace.to_instance();
    std::printf("gate 2: pinned n=8 t=0 trace (baseline %s = %.17g)\n",
                baseline.method.c_str(), baseline.objective);
    check(baseline.exact, "baseline is the exact optimum");
    for (auto& policy : online::all_replan_policies()) {
      const auto run = online::replay(trace, *policy);
      const double ratio = run.weighted_completion / baseline.objective;
      json.add("gate_pinned_t0_n8", policy->name() + "_ratio", ratio);
      if (policy->name() == "exact-replan") {
        check(run.weighted_completion == baseline.objective,
              "exact-replan == offline optimum (bit-for-bit)");
      } else {
        check(ratio <= 2.0 + 1e-6,
              (policy->name() + " ratio <= 2 (Theorem 4 ceiling)").c_str());
      }
      check(static_cast<bool>(run.schedule.validate(instance)),
            (policy->name() + " replayed schedule validates").c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}

void bm_replay(benchmark::State& state, const char* policy_name) {
  const auto trace =
      pinned_trace(online::TraceFamily::PoissonBursts, 20, kPinnedSeed);
  for (auto _ : state) {
    for (auto& policy : online::all_replan_policies()) {
      if (policy->name() == policy_name) {
        benchmark::DoNotOptimize(
            online::replay(trace, *policy).weighted_completion);
      }
    }
  }
}
BENCHMARK_CAPTURE(bm_replay, wsew, "wsew-replan")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_replay, exact, "exact-replan")->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_config(argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }

  if (quick) {
    bench::print_banner("E-ONLINE (quick)", "t=0 collapse gate", config);
    bench::BenchJson json("online", config);
    const int status = run_gate(json);
    json.write();
    return status;
  }

  bench::print_banner("E-ONLINE",
                      "online replanning policies vs offline baseline",
                      config);
  bench::BenchJson json("online", config);
  run_sweep(config, json);
  const int status = run_gate(json);
  json.write();
  if (config.timing) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return status;
}
