// E8 — Figure 1: bandwidth sharing on a master-workers platform.
// The server's uplink is shared among code downloads; worker i starts
// processing at rate w_i once its download completes.  We sweep the horizon
// T and report the throughput Σ w_i max(0, T − C_i) per policy — the series
// form of the Σ w_i (T − C_i) objective the paper reduces to Σ w_i C_i.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "malsched/bwshare/network.hpp"
#include "malsched/support/csv.hpp"
#include "malsched/support/rng.hpp"
#include "malsched/support/stats.hpp"
#include "malsched/support/table.hpp"

using namespace malsched;

namespace {

bwshare::Scenario random_scenario(support::Rng& rng, std::size_t workers,
                                  double server_bw) {
  std::vector<bwshare::Worker> list;
  for (std::size_t i = 0; i < workers; ++i) {
    list.push_back({rng.pareto(1.0, 1.6),        // code sizes, heavy tail
                    rng.uniform(0.2, 2.0),       // link bandwidth
                    rng.uniform(0.1, 4.0), ""}); // processing rate
  }
  return bwshare::Scenario(server_bw, std::move(list));
}

void run_report(const bench::BenchConfig& config) {
  bench::print_banner("E8 (paper Figure 1)",
                      "bandwidth-sharing throughput over the horizon T",
                      config);

  const std::size_t scenarios = bench::scaled(30, config.scale);
  const std::size_t workers = 24;
  const double server_bw = 8.0;
  const std::vector<double> horizons{2.0, 5.0, 10.0, 20.0, 40.0};

  const auto policies = sim::all_policies();
  // mean throughput normalized by the height-certificate upper bound,
  // per policy per horizon.
  std::vector<std::vector<support::Accumulator>> norm(
      policies.size(), std::vector<support::Accumulator>(horizons.size()));

  support::Rng rng(config.seed);
  for (std::size_t s = 0; s < scenarios; ++s) {
    const auto scenario = random_scenario(rng, workers, server_bw);
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const auto result = bwshare::distribute(scenario, *policies[p]);
      for (std::size_t h = 0; h < horizons.size(); ++h) {
        const double bound =
            bwshare::throughput_upper_bound(scenario, horizons[h]);
        if (bound <= 0.0) {
          continue;
        }
        norm[p][h].add(
            result.throughput(horizons[h], scenario.workers()) / bound);
      }
    }
  }

  std::vector<support::TextTable::Column> columns{
      {"policy", support::Align::Left}};
  for (const double horizon : horizons) {
    columns.push_back({"T=" + support::fmt_double(horizon, 0),
                       support::Align::Right});
  }
  support::TextTable table(std::move(columns));
  for (std::size_t p = 0; p < policies.size(); ++p) {
    std::vector<std::string> row{policies[p]->name()};
    for (std::size_t h = 0; h < horizons.size(); ++h) {
      row.push_back(support::fmt_double(norm[p][h].mean(), 3));
    }
    table.add_row(std::move(row));
  }
  std::printf("Mean throughput / upper bound (%zu scenarios, %zu workers, "
              "server bw %.0f):\n%s\n",
              scenarios, workers, server_bw, table.to_string().c_str());
  std::printf("Expected shape: clairvoyant smith-greedy >= wdeq >= wrr and\n"
              "fifo-rigid trails at small horizons (heavy codes block the\n"
              "pipe); the gap closes as T grows — the Figure-1 motivation.\n\n");

  support::CsvWriter csv("bench_bandwidth_sharing.csv",
                         {"policy", "horizon", "mean_normalized_throughput"});
  if (csv.ok()) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      for (std::size_t h = 0; h < horizons.size(); ++h) {
        csv.write_row({policies[p]->name(),
                       support::fmt_double(horizons[h], 1),
                       support::fmt_double(norm[p][h].mean(), 6)});
      }
    }
    std::printf("series written to bench_bandwidth_sharing.csv\n\n");
  }
}

void bm_distribute(benchmark::State& state) {
  support::Rng rng(23);
  const auto scenario =
      random_scenario(rng, static_cast<std::size_t>(state.range(0)), 8.0);
  const auto policy = sim::make_wdeq_policy();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bwshare::distribute(scenario, *policy).weighted_completion);
  }
}
BENCHMARK(bm_distribute)->Arg(24)->Arg(96)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_config(argc, argv);
  run_report(config);
  if (config.timing) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
