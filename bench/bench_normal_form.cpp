// E10 — Theorem 8 ablation: what normalization buys.
// Take schedules produced by different generators (WDEQ, greedy orders,
// order-LP optima), renormalize them with Water-Filling, and measure
//   * completion-time preservation (must be exact: the normal form keeps C_i),
//   * fractional rate changes before vs after (WF guarantees <= n; the
//     sources do not),
// demonstrating why the normal form "can be used to reduce the search
// space" (§IV) at no cost in the objective.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "malsched/core/assignment.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/core/greedy.hpp"
#include "malsched/core/order_lp.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/core/water_filling.hpp"
#include "malsched/core/wdeq.hpp"
#include "malsched/support/stats.hpp"
#include "malsched/support/table.hpp"

using namespace malsched;

namespace {

struct SourceResult {
  support::Sample changes_before;
  support::Sample changes_after;
  support::Sample band_after;
  support::Sample completion_error;
  std::size_t violations = 0;  // infeasible WF or band count > n
};

void run_report(const bench::BenchConfig& config) {
  bench::print_banner("E10 (paper Theorem 8)",
                      "normal-form ablation: preservation and preemptions",
                      config);

  const std::size_t trials = bench::scaled(40, config.scale);
  const std::size_t n = 12;

  const auto measure = [&](auto&& make_columns, std::uint64_t seed) {
    SourceResult result;
    support::Rng rng(seed);
    for (std::size_t t = 0; t < trials; ++t) {
      core::GeneratorConfig gen;
      gen.family = core::Family::Uniform;
      gen.num_tasks = n;
      gen.processors = 4.0;
      const auto inst = core::generate(gen, rng);
      const core::ColumnSchedule columns = make_columns(inst, rng);
      const auto wf = core::water_fill(inst, columns.completions());
      if (!wf.feasible) {
        ++result.violations;
        continue;
      }
      result.changes_before.add(
          static_cast<double>(core::count_fractional_changes(columns)));
      result.changes_after.add(
          static_cast<double>(core::count_fractional_changes(wf.schedule)));
      result.band_after.add(
          static_cast<double>(core::count_band_changes(inst, wf.schedule)));
      double max_err = 0.0;
      for (std::size_t i = 0; i < inst.size(); ++i) {
        max_err = std::max(max_err, std::fabs(wf.schedule.completion(i) -
                                              columns.completion(i)));
      }
      result.completion_error.add(max_err);
      if (core::count_band_changes(inst, wf.schedule) > n) {
        ++result.violations;
      }
    }
    return result;
  };

  const auto from_wdeq = [](const core::Instance& inst, support::Rng&) {
    return core::run_wdeq(inst).schedule.to_columns(inst);
  };
  const auto from_greedy_random = [](const core::Instance& inst,
                                     support::Rng& rng) {
    return core::greedy_schedule(inst, rng.permutation(inst.size()))
        .to_columns(inst);
  };
  const auto from_greedy_smith = [](const core::Instance& inst,
                                    support::Rng&) {
    return core::greedy_schedule(inst, core::smith_order(inst))
        .to_columns(inst);
  };

  support::TextTable table(
      {{"schedule source", support::Align::Left},
       {"rate changes before", support::Align::Right},
       {"after WF (all)", support::Align::Right},
       {"after WF (band)", support::Align::Right},
       {"bound n", support::Align::Right},
       {"max completion drift", support::Align::Right},
       {"band > n", support::Align::Right}});
  const auto add = [&](const char* name, const SourceResult& r) {
    table.add_row({name, support::fmt_double(r.changes_before.mean(), 1),
                   support::fmt_double(r.changes_after.mean(), 1),
                   support::fmt_double(r.band_after.mean(), 1),
                   support::fmt_int(static_cast<long long>(n)),
                   support::fmt_ratio(r.completion_error.max(), 12),
                   support::fmt_int(static_cast<long long>(r.violations))});
  };
  add("WDEQ run", measure(from_wdeq, config.seed));
  add("greedy (random order)", measure(from_greedy_random, config.seed + 1));
  add("greedy (Smith order)", measure(from_greedy_smith, config.seed + 2));
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: WF reproduces every source's completion times to machine\n"
      "precision while pushing the Lemma-5 band count under the Theorem-9\n"
      "cap n=%zu.  The all-changes column can exceed n on WDEQ-shaped\n"
      "profiles (tasks saturating in their final columns) — the\n"
      "reproduction finding detailed in EXPERIMENTS.md.\n\n",
      n);
}

void bm_normalize(benchmark::State& state) {
  support::Rng rng(29);
  core::GeneratorConfig gen;
  gen.family = core::Family::Uniform;
  gen.num_tasks = static_cast<std::size_t>(state.range(0));
  gen.processors = 4.0;
  const auto inst = core::generate(gen, rng);
  const auto run = core::run_wdeq(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::normalize(inst, run.schedule).feasible);
  }
}
BENCHMARK(bm_normalize)->Arg(12)->Arg(48)->Arg(192)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_config(argc, argv);
  run_report(config);
  if (config.timing) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
