// E4 — Conjecture 13: on §V-B homogeneous instances the greedy total
// completion time of any order equals that of the reversed order.
// The paper verified this formally (Sage) for up to 15 tasks; we verify it
// with exact rational arithmetic: every check below is exact equality of
// rationals, not a floating-point comparison.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "malsched/core/homogeneous.hpp"
#include "malsched/numeric/rational.hpp"
#include "malsched/support/rng.hpp"
#include "malsched/support/table.hpp"

using namespace malsched;
using malsched::numeric::Rational;

namespace {

std::vector<Rational> random_rational_deltas(support::Rng& rng,
                                             std::size_t n) {
  std::vector<Rational> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const long long den = rng.uniform_int(2, 64);
    const long long num = rng.uniform_int((den + 1) / 2, den);
    out.emplace_back(num, den);
  }
  return out;
}

void run_report(const bench::BenchConfig& config) {
  bench::print_banner("E4 (paper §V-B, Conjecture 13)",
                      "order-reversal symmetry, exact rational check",
                      config);

  const std::size_t instances_per_n = bench::scaled(20, config.scale);
  const std::size_t orders_per_instance = bench::scaled(10, config.scale);

  support::TextTable table({{"n", support::Align::Right},
                            {"instances", support::Align::Right},
                            {"orders checked", support::Align::Right},
                            {"violations", support::Align::Right}});

  bool all_ok = true;
  for (std::size_t n = 2; n <= 15; ++n) {
    support::Rng rng(config.seed * 31 + n);
    std::size_t checked = 0;
    std::size_t violations = 0;
    for (std::size_t inst = 0; inst < instances_per_n; ++inst) {
      const auto delta = random_rational_deltas(rng, n);
      for (std::size_t k = 0; k < orders_per_instance; ++k) {
        const auto order = rng.permutation(n);
        ++checked;
        if (!core::reversal_symmetric_exact(delta, order)) {
          ++violations;
        }
      }
    }
    all_ok = all_ok && violations == 0;
    table.add_row({support::fmt_int(static_cast<long long>(n)),
                   support::fmt_int(static_cast<long long>(instances_per_n)),
                   support::fmt_int(static_cast<long long>(checked)),
                   support::fmt_int(static_cast<long long>(violations))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Conjecture 13 %s on every exact check up to n = 15 "
              "(paper: formally checked to 15 with Sage).\n\n",
              all_ok ? "HOLDS" : "FAILS");
}

void bm_exact_check(benchmark::State& state) {
  support::Rng rng(11);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto delta = random_rational_deltas(rng, n);
  const auto order = rng.permutation(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::reversal_symmetric_exact(delta, order));
  }
}
BENCHMARK(bm_exact_check)->Arg(5)->Arg(10)->Arg(15)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_config(argc, argv);
  run_report(config);
  if (config.timing) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
