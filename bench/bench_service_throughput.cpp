// E-SVC — service layer: batch throughput, cache speedup, determinism.
//
// Three claims about malsched::service are measured here:
//   1. batch throughput scales with worker threads (embarrassingly parallel
//      fan-out over support::ThreadPool; speedup is bounded by the host's
//      core count — a single-core host shows ~1x by construction),
//   2. a warm canonicalization cache answers repeated traffic much faster
//      than re-solving (target: >= 10x on the mean request),
//   3. the per-request output stream is byte-identical for every thread
//      count (deterministic request-order results).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/service/batch.hpp"
#include "malsched/service/service.hpp"
#include "malsched/support/rng.hpp"
#include "malsched/support/stats.hpp"
#include "malsched/support/table.hpp"
#include "malsched/support/thread_pool.hpp"

using namespace malsched;

namespace {

// Mixed workload: heterogeneous families/sizes, solver mix from cheap fluid
// policies to the order LP, and repeated instances (the cloud-batch pattern
// the cache is built for).
std::vector<service::SolveRequest> make_mixed_batch(std::size_t num_requests,
                                                    std::uint64_t seed) {
  support::Rng rng(seed);
  const std::vector<core::Family> families = {
      core::Family::Uniform, core::Family::BandwidthLike,
      core::Family::HeavyTailVolumes, core::Family::EqualWeights};
  std::vector<core::Instance> bases;
  const std::size_t num_bases = 48;
  for (std::size_t b = 0; b < num_bases; ++b) {
    core::GeneratorConfig config;
    config.family = families[b % families.size()];
    config.num_tasks = 4 + static_cast<std::size_t>(rng.uniform_int(0, 10));
    config.processors = static_cast<double>(1 << rng.uniform_int(1, 4));
    bases.push_back(core::generate(config, rng));
  }

  const std::vector<std::string> solvers = {
      "wdeq",          "deq",           "wrr",
      "smith-greedy",  "greedy-heuristic", "water-fill-smith",
      "order-lp-smith"};
  std::vector<service::SolveRequest> requests;
  requests.reserve(num_requests);
  for (std::size_t r = 0; r < num_requests; ++r) {
    const auto& base =
        bases[static_cast<std::size_t>(rng.uniform_int(0, num_bases - 1))];
    service::SolveRequest request{
        solvers[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(solvers.size()) - 1))],
        base};
    // A third of the traffic is the same work in different units: scale
    // volumes/weights by powers of two, which the canonicalization cache
    // maps onto the base instance's entry exactly.
    if (rng.bernoulli(1.0 / 3.0)) {
      std::vector<core::Task> tasks = base.tasks();
      const double vs = rng.bernoulli(0.5) ? 2.0 : 0.5;
      const double ws = rng.bernoulli(0.5) ? 4.0 : 0.25;
      for (auto& t : tasks) {
        t.volume *= vs;
        t.weight *= ws;
      }
      request.instance = core::Instance(base.processors(), std::move(tasks));
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

double time_batch(const service::SolverRegistry& registry,
                  const std::vector<service::SolveRequest>& requests,
                  unsigned threads, service::ResultCache* cache,
                  std::vector<service::SolveResult>* results_out = nullptr) {
  support::ThreadPool pool(threads);
  service::BatchOptions options;
  options.pool = &pool;
  options.cache = cache;
  const auto start = std::chrono::steady_clock::now();
  auto results = service::solve_batch(registry, requests, options);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (results_out != nullptr) {
    *results_out = std::move(results);
  }
  return seconds;
}

std::string results_text(std::vector<service::SolveResult> results) {
  service::ServiceReport report;
  report.results = std::move(results);
  return service::format_results(report);
}

// Returns false when a correctness claim (determinism) fails, so CI's
// bench-smoke step turns red instead of just printing the mismatch.
[[nodiscard]] bool run_report(const bench::BenchConfig& config) {
  bench::print_banner("E-SVC (service layer)",
                      "batch scheduling service throughput", config);
  const auto registry = service::SolverRegistry::with_default_solvers();
  const std::size_t num_requests = bench::scaled(1000, config.scale);
  const auto requests = make_mixed_batch(num_requests, config.seed);
  std::printf("mixed batch: %zu requests over %zu solvers, hardware threads: %u\n\n",
              requests.size(), registry.size(),
              support::ThreadPool::global().thread_count());

  // --- 1. throughput vs thread count (cold cache each run). ---
  {
    support::TextTable table({{"threads", support::Align::Right},
                              {"seconds", support::Align::Right},
                              {"req/s", support::Align::Right},
                              {"speedup", support::Align::Right}});
    double base_seconds = 0.0;
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      service::ResultCache cache(4096);
      const double seconds = time_batch(registry, requests, threads, &cache);
      if (threads == 1) {
        base_seconds = seconds;
      }
      table.add_row({support::fmt_int(threads), support::fmt_double(seconds),
                     support::fmt_double(static_cast<double>(requests.size()) /
                                         seconds),
                     support::fmt_double(base_seconds / seconds)});
    }
    std::printf("throughput vs threads (cold cache):\n%s\n",
                table.to_string().c_str());
  }

  // --- 2. cache: cold vs warm vs disabled. ---
  {
    service::ResultCache cache(4096);
    const double cold = time_batch(registry, requests, 1, &cache);
    const double warm = time_batch(registry, requests, 1, &cache);
    const double uncached = time_batch(registry, requests, 1, nullptr);
    const auto stats = cache.stats();
    support::TextTable table({{"mode", support::Align::Left},
                              {"seconds", support::Align::Right},
                              {"mean us/req", support::Align::Right}});
    const auto us = [&](double seconds) {
      return seconds * 1e6 / static_cast<double>(requests.size());
    };
    table.add_row({"no cache", support::fmt_double(uncached),
                   support::fmt_double(us(uncached))});
    table.add_row({"cold cache", support::fmt_double(cold),
                   support::fmt_double(us(cold))});
    table.add_row({"warm cache", support::fmt_double(warm),
                   support::fmt_double(us(warm))});
    std::printf("canonicalization cache (1 thread):\n%s", table.to_string().c_str());
    std::printf("warm-vs-cold speedup: %.1fx (target >= 10x)  "
                "hit_rate after both passes: %.3f  entries: %zu\n\n",
                cold / warm, stats.hit_rate(), stats.entries);
  }

  // --- 3. determinism across thread counts. ---
  bool deterministic = false;
  {
    std::vector<service::SolveResult> results_1, results_8;
    service::ResultCache cache_1(4096), cache_8(4096);
    time_batch(registry, requests, 1, &cache_1, &results_1);
    time_batch(registry, requests, 8, &cache_8, &results_8);
    deterministic =
        results_text(std::move(results_1)) == results_text(std::move(results_8));
    std::printf("determinism: --threads 1 vs --threads 8 output %s\n\n",
                deterministic ? "IDENTICAL (byte-for-byte)" : "DIFFERS (BUG)");
  }
  return deterministic;
}

void bm_solve_batch(benchmark::State& state) {
  static const auto registry = service::SolverRegistry::with_default_solvers();
  static const auto requests = make_mixed_batch(256, 20120521);
  const auto threads = static_cast<unsigned>(state.range(0));
  support::ThreadPool pool(threads);
  service::ResultCache cache(4096);
  service::BatchOptions options;
  options.pool = &pool;
  options.cache = &cache;
  for (auto _ : state) {
    // Cold cache every iteration: otherwise rounds 2..N are pure hit
    // dispatch and the thread-scaling numbers measure lookups, not solving.
    state.PauseTiming();
    cache.clear();
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        service::solve_batch(registry, requests, options).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(requests.size()));
}
// Real time, not CPU time: the work runs on pool workers, so the main
// thread's CPU clock would report near-zero and inflate items/s.
BENCHMARK(bm_solve_batch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void bm_cache_hit(benchmark::State& state) {
  static const auto registry = service::SolverRegistry::with_default_solvers();
  static const auto requests = make_mixed_batch(64, 7);
  service::ResultCache cache(4096);
  for (const auto& request : requests) {  // prime
    benchmark::DoNotOptimize(
        service::solve_cached(registry, request, &cache).ok);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        service::solve_cached(registry, requests[i % requests.size()], &cache)
            .cache_hit);
    ++i;
  }
}
BENCHMARK(bm_cache_hit)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_config(argc, argv);
  const bool ok = run_report(config);
  if (config.timing) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return ok ? 0 : 1;
}
