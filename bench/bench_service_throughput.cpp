// E-SVC — service layer: batch throughput, cache speedup, determinism,
// streaming admission, priority admission, cancellation, and multi-process
// sharding.
//
// Eight claims about malsched::service are measured here:
//   1. batch throughput scales with worker threads (requests stream off the
//      Scheduler's admission queue; speedup is bounded by the host's core
//      count — a single-core host shows ~1x by construction),
//   2. a warm canonicalization cache answers repeated traffic much faster
//      than re-solving (target: >= 10x on the mean request),
//   3. the per-request output stream is byte-identical for every thread
//      count (deterministic request-order results),
//   4. streaming admission beats the barrier: on a batch mixing one long
//      `optimal` solve with many short `wdeq` requests, the client-observed
//      short-request p50 latency under the v2 Scheduler is strictly lower
//      than under a barrier-style fan-out (which hands back nothing until
//      the whole batch — long solve included — has finished),
//   5. priority admission beats FIFO on weighted mean response time: on a
//      backlogged mixed-duration batch (a burst of exponential `optimal`
//      solves ahead of many cheap high-weight `wdeq` requests), the
//      weighted-shortest-estimated-work queue must come out strictly ahead
//      — the headline number of the objective-aligned admission work,
//   6. a queued-then-cancelled `optimal` ticket resolves Cancelled without
//      ever consuming a worker solve,
//   7. multi-process sharding (shard::ShardRouter) is output-transparent —
//      byte-identical results to single-process serving — and scales
//      throughput with shard count on a cache-miss-heavy workload (like the
//      thread-scaling claim, the speedup is bounded by the host's core
//      count; a single-core host shows ~1x by construction, so the scaling
//      gate arms only on multi-core hosts).  Emitted to BENCH_shard.json,
//   8. on zipf-skewed repeated traffic arriving in fresh units and task
//      orders, the quantized rational normal form's hit rate beats the
//      legacy divide-only quotient by >= 20 points while a warm replay of
//      the stream is byte-identical to the first pass (TinyLFU admission
//      enabled, counters reported).

#include <benchmark/benchmark.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/service/batch.hpp"
#include "malsched/service/canonical.hpp"
#include "malsched/service/scheduler.hpp"
#include "malsched/service/service.hpp"
#include "malsched/shard/router.hpp"
#include "malsched/support/rng.hpp"
#include "malsched/support/stats.hpp"
#include "malsched/support/table.hpp"
#include "malsched/support/thread_pool.hpp"

using namespace malsched;

namespace {

// Mixed workload: heterogeneous families/sizes, solver mix from cheap fluid
// policies to the order LP, and repeated instances (the cloud-batch pattern
// the cache is built for).  Instances are interned once and shared by
// handle, so repeats cost a shared_ptr copy, not a task-vector copy.
std::vector<service::BatchRequest> make_mixed_batch(std::size_t num_requests,
                                                    std::uint64_t seed) {
  support::Rng rng(seed);
  const std::vector<core::Family> families = {
      core::Family::Uniform, core::Family::BandwidthLike,
      core::Family::HeavyTailVolumes, core::Family::EqualWeights};
  std::vector<core::Instance> bases;
  std::vector<service::InstanceHandle> handles;
  const std::size_t num_bases = 48;
  for (std::size_t b = 0; b < num_bases; ++b) {
    core::GeneratorConfig config;
    config.family = families[b % families.size()];
    config.num_tasks = 4 + static_cast<std::size_t>(rng.uniform_int(0, 10));
    config.processors = static_cast<double>(1 << rng.uniform_int(1, 4));
    bases.push_back(core::generate(config, rng));
    handles.push_back(service::intern(bases.back()));
  }

  const std::vector<std::string> solvers = {
      "wdeq",          "deq",           "wrr",
      "smith-greedy",  "greedy-heuristic", "water-fill-smith",
      "order-lp-smith"};
  std::vector<service::BatchRequest> requests;
  requests.reserve(num_requests);
  for (std::size_t r = 0; r < num_requests; ++r) {
    const auto base_index =
        static_cast<std::size_t>(rng.uniform_int(0, num_bases - 1));
    service::BatchRequest request{
        solvers[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(solvers.size()) - 1))],
        handles[base_index]};
    // A third of the traffic is the same work in different units: scale
    // volumes/weights by powers of two, which the canonicalization cache
    // maps onto the base instance's entry exactly.
    if (rng.bernoulli(1.0 / 3.0)) {
      const auto& base = bases[base_index];
      std::vector<core::Task> tasks = base.tasks();
      const double vs = rng.bernoulli(0.5) ? 2.0 : 0.5;
      const double ws = rng.bernoulli(0.5) ? 4.0 : 0.25;
      for (auto& t : tasks) {
        t.volume *= vs;
        t.weight *= ws;
      }
      request.instance = service::intern(
          core::Instance(base.processors(), std::move(tasks)));
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

double time_batch(const service::SolverRegistry& registry,
                  const std::vector<service::BatchRequest>& requests,
                  unsigned threads, service::ResultCache* cache,
                  std::vector<service::SolveResult>* results_out = nullptr) {
  // Scheduler construction (thread spawn) stays outside the timed window so
  // the numbers measure solving, not worker startup.
  service::Scheduler::Options options;
  options.threads = threads;
  options.cache = cache;
  options.use_cache = cache != nullptr;
  service::Scheduler scheduler(registry, options);
  const auto start = std::chrono::steady_clock::now();
  auto results = service::solve_batch(scheduler, requests);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (results_out != nullptr) {
    *results_out = std::move(results);
  }
  return seconds;
}

std::string results_text(std::vector<service::SolveResult> results) {
  service::ServiceReport report;
  report.results = std::move(results);
  return service::format_results(report);
}

// --- 4. streaming admission vs the barrier, on a mixed-duration batch. ---
//
// The batch is one `optimal` request (n = 7: ~seconds of completion-order
// enumeration) buried among short `wdeq` requests.  Client-observed latency
// of request i is "when can the client act on result i":
//   * barrier style (v1 solve_batch): the call returns the whole vector at
//     once, so every request's latency is the full batch wall time;
//   * streaming (v2 Scheduler): each Ticket resolves independently, so a
//     short request's latency is its own submit-to-completion time.
// Returns false when the v2 short-request p50 is not strictly lower.
bool run_streaming_vs_barrier(const service::SolverRegistry& registry,
                              const bench::BenchConfig& config,
                              bench::BenchJson& json) {
  const unsigned threads = 8;
  const std::size_t num_short = bench::scaled(256, config.scale);
  support::Rng rng(config.seed + 7);
  core::GeneratorConfig long_config;
  long_config.family = core::Family::Uniform;
  long_config.num_tasks = 7;  // n! enumeration: a multi-second solve
  long_config.processors = 4.0;
  const auto long_handle = service::intern(core::generate(long_config, rng));

  std::vector<service::BatchRequest> requests;
  requests.reserve(num_short + 1);
  requests.push_back({"optimal", long_handle});  // long solve admitted first
  for (std::size_t i = 0; i < num_short; ++i) {
    core::GeneratorConfig config_short;
    config_short.family = core::Family::Uniform;
    config_short.num_tasks = 4 + i % 6;
    config_short.processors = 4.0;
    requests.push_back(
        {"wdeq", service::intern(core::generate(config_short, rng))});
  }

  // Barrier style: fan out over a ThreadPool, results visible only when the
  // whole batch returns (this is exactly what v1 solve_batch offered).
  support::Sample barrier_latencies;
  {
    support::ThreadPool pool(threads);
    std::vector<service::SolveResult> results(requests.size());
    const auto start = std::chrono::steady_clock::now();
    pool.parallel_for(0, requests.size(), [&](std::size_t i) {
      results[i] = service::solve_cached(registry, requests[i].solver,
                                         requests[i].instance, nullptr);
    });
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    for (std::size_t i = 1; i < results.size(); ++i) {
      barrier_latencies.add(wall);  // nothing observable before the barrier
    }
  }

  // Streaming: every ticket resolves on its own; latency_seconds is the
  // Scheduler's submit-to-completion measurement (queueing included).
  support::Sample streaming_latencies;
  double long_latency = 0.0;
  {
    service::Scheduler::Options options;
    options.threads = threads;
    options.use_cache = false;
    service::Scheduler scheduler(registry, options);
    std::vector<service::Ticket> tickets;
    tickets.reserve(requests.size());
    for (const auto& request : requests) {
      tickets.push_back(scheduler.submit(request.solver, request.instance));
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const auto result = tickets[i].get();
      if (i == 0) {
        long_latency = result.latency_seconds;
      } else {
        streaming_latencies.add(result.latency_seconds);
      }
    }
  }

  const double p50_barrier = barrier_latencies.quantile(0.5);
  const double p50_streaming = streaming_latencies.quantile(0.5);
  support::TextTable table({{"path", support::Align::Left},
                            {"short p50 (ms)", support::Align::Right},
                            {"short p99 (ms)", support::Align::Right},
                            {"long solve (s)", support::Align::Right}});
  table.add_row({"barrier (v1)", support::fmt_double(p50_barrier * 1e3),
                 support::fmt_double(barrier_latencies.quantile(0.99) * 1e3),
                 "-"});
  table.add_row({"streaming (v2)", support::fmt_double(p50_streaming * 1e3),
                 support::fmt_double(streaming_latencies.quantile(0.99) * 1e3),
                 support::fmt_double(long_latency)});
  std::printf(
      "mixed-duration batch (1 optimal n=7 + %zu wdeq, %u threads):\n%s",
      num_short, threads, table.to_string().c_str());
  const bool streaming_wins = p50_streaming < p50_barrier;
  std::printf("streaming admission: short-request p50 %.3f ms vs %.3f ms "
              "under the barrier — %s\n\n",
              p50_streaming * 1e3, p50_barrier * 1e3,
              streaming_wins ? "STRICTLY LOWER (ok)" : "NOT LOWER (BUG)");
  json.add("streaming_admission", "short_p50_ns_barrier", p50_barrier * 1e9);
  json.add("streaming_admission", "short_p50_ns_streaming",
           p50_streaming * 1e9);
  json.add("streaming_admission", "short_p99_ns_streaming",
           streaming_latencies.quantile(0.99) * 1e9);
  json.add("streaming_admission", "long_solve_ns", long_latency * 1e9);
  return streaming_wins;
}

// --- 5. priority vs FIFO admission on a backlogged mixed-duration batch. --
//
// The paper's objective at the serving layer: a burst of heavy `optimal`
// solves (n = 9, tens of milliseconds each via branch-and-bound) is
// admitted *ahead of* a stream of cheap high-priority-weight `wdeq`
// requests, with fewer workers than the backlog.  Under FIFO every cheap
// request waits for the whole heavy burst; under the weighted-priority
// queue the cheap requests overtake it.  The score is the weighted mean
// response time Σ w·latency / Σ w over all requests (w = priority weight),
// which priority admission must strictly beat.  Returns false otherwise.
bool run_priority_vs_fifo(const service::SolverRegistry& registry,
                          const bench::BenchConfig& config,
                          bench::BenchJson& json) {
  const unsigned threads = 2;
  // Floors keep the scenario meaningful at CI smoke scale: the heavy burst
  // must exceed the worker count, or both workers grab the whole burst
  // immediately, no backlog ever forms, and the strict priority-vs-FIFO
  // gate would be decided by noise.
  const std::size_t num_heavy = bench::scaled(8, config.scale, threads + 4);
  const std::size_t num_light = bench::scaled(64, config.scale, 16);
  const double heavy_weight = 1.0;
  const double light_weight = 4.0;

  struct Request {
    std::string solver;
    service::InstanceHandle instance;
    double weight;
  };
  std::vector<Request> requests;
  requests.reserve(num_heavy + num_light);
  support::Rng rng(config.seed + 13);
  for (std::size_t i = 0; i < num_heavy; ++i) {
    core::GeneratorConfig heavy_config;
    heavy_config.family = core::Family::Uniform;
    heavy_config.num_tasks = 9;  // branch-and-bound territory: ~10s of ms
    heavy_config.processors = 4.0;
    requests.push_back({"optimal",
                        service::intern(core::generate(heavy_config, rng)),
                        heavy_weight});
  }
  for (std::size_t i = 0; i < num_light; ++i) {
    core::GeneratorConfig light_config;
    light_config.family = core::Family::Uniform;
    light_config.num_tasks = 4 + i % 5;
    light_config.processors = 4.0;
    requests.push_back({"wdeq",
                        service::intern(core::generate(light_config, rng)),
                        light_weight});
  }

  const auto weighted_mean_response =
      [&](service::Scheduler::Admission admission) {
        service::Scheduler::Options options;
        options.threads = threads;
        options.use_cache = false;  // measure solving, not memoization
        options.admission = admission;
        options.queue_capacity = requests.size() + 1;  // a true backlog
        service::Scheduler scheduler(registry, options);
        std::vector<service::Ticket> tickets;
        tickets.reserve(requests.size());
        for (const auto& request : requests) {
          service::SubmitOptions submit_options;
          submit_options.priority_weight = request.weight;
          tickets.push_back(scheduler.submit(request.solver, request.instance,
                                             submit_options));
        }
        double weighted_sum = 0.0;
        double weight_sum = 0.0;
        for (std::size_t i = 0; i < tickets.size(); ++i) {
          const auto result = tickets[i].get();
          weighted_sum += requests[i].weight * result.latency_seconds;
          weight_sum += requests[i].weight;
        }
        return weighted_sum / weight_sum;
      };

  const double fifo = weighted_mean_response(service::Scheduler::Admission::Fifo);
  const double priority =
      weighted_mean_response(service::Scheduler::Admission::WeightedPriority);

  support::TextTable table({{"admission", support::Align::Left},
                            {"weighted mean response (ms)",
                             support::Align::Right}});
  table.add_row({"fifo", support::fmt_double(fifo * 1e3)});
  table.add_row({"weighted priority", support::fmt_double(priority * 1e3)});
  std::printf(
      "backlogged mixed-duration batch (%zu optimal n=9 ahead of %zu wdeq, "
      "weights %g/%g, %u threads):\n%s",
      num_heavy, num_light, heavy_weight, light_weight, threads,
      table.to_string().c_str());
  const bool priority_wins = priority < fifo;
  std::printf("priority admission: weighted mean response %.3f ms vs "
              "%.3f ms under FIFO (%.1fx) — %s\n\n",
              priority * 1e3, fifo * 1e3, fifo / priority,
              priority_wins ? "STRICTLY LOWER (ok)" : "NOT LOWER (BUG)");
  json.add("priority_admission", "weighted_mean_response_ns_fifo",
           fifo * 1e9);
  json.add("priority_admission", "weighted_mean_response_ns_priority",
           priority * 1e9);
  json.add("priority_admission", "improvement_x", fifo / priority);
  return priority_wins;
}

// --- 6. queued-then-cancelled optimal ticket: Cancelled, zero solves. ---
//
// One worker is pinned by a heavy `optimal` solve; a second `optimal`
// request is admitted behind it, cancelled while queued, and must resolve
// ErrorCode::Cancelled without the (instrumented) solver ever running.
bool run_cancel_check(bench::BenchJson& json) {
  auto registry = service::SolverRegistry::with_default_solvers();
  std::atomic<int> solves{0};
  {
    const auto* base = registry.find("optimal");
    service::SolverRegistry::SolverInfo counted = *base;
    counted.fn = [inner = base->fn, &solves](
                     const core::Instance& instance,
                     const service::SolveContext& context) {
      solves.fetch_add(1, std::memory_order_relaxed);
      return inner(instance, context);
    };
    registry.register_solver("counted-optimal", std::move(counted));
  }

  service::Scheduler::Options options;
  options.threads = 1;
  options.use_cache = false;
  service::Scheduler scheduler(registry, options);
  support::Rng rng(20120521);
  core::GeneratorConfig config;
  config.family = core::Family::Uniform;
  config.num_tasks = 10;
  config.processors = 4.0;
  auto running = scheduler.submit("counted-optimal",
                                  service::intern(core::generate(config, rng)));
  auto queued = scheduler.submit("counted-optimal",
                                 service::intern(core::generate(config, rng)));
  const bool cancel_accepted = queued.cancel();
  const auto cancelled_result = queued.get();  // resolved by cancel() itself
  const bool first_ok = running.get().ok();

  const bool cancelled_ok = cancel_accepted && !cancelled_result.ok() &&
                            cancelled_result.error().code ==
                                service::ErrorCode::Cancelled &&
                            first_ok && solves.load() == 1;
  std::printf("queued-then-cancelled optimal ticket: code=%s, solver "
              "invocations=%d (want 1) — %s\n\n",
              cancelled_result.ok()
                  ? "ok"
                  : service::error_code_name(cancelled_result.error().code),
              solves.load(), cancelled_ok ? "CANCELLED CLEANLY (ok)" : "BUG");
  json.add("cancellation", "queued_cancel_ok", cancelled_ok ? 1.0 : 0.0);
  json.add("cancellation", "solver_invocations", solves.load());
  return cancelled_ok;
}

// --- 7. sharded vs single-process serving on a cache-miss-heavy batch. ---
//
// Every request is a *distinct* generated instance solved once, so nothing
// is served from a cache and the solver cost dominates — the regime where
// horizontal fan-out across worker processes must pay.  Two gates: the
// sharded output must be byte-identical to single-process serving (exact
// hexfloat wire round-trip, the sharding transparency contract), and on a
// multi-core host throughput with 2 shards must strictly beat 1 shard.
// Emits BENCH_shard.json.
//
// MUST run before anything touches ThreadPool::global() or leaves other
// threads alive: the router forks, and the fork-without-exec contract
// requires a single-threaded parent.
bool run_sharded_vs_single(const service::SolverRegistry& registry,
                           const bench::BenchConfig& config) {
  bench::BenchJson json("shard", config);
  const std::size_t num_requests = bench::scaled(128, config.scale, 64);
  service::BatchSpec batch;
  support::Rng rng(config.seed + 29);
  for (std::size_t i = 0; i < num_requests; ++i) {
    const std::string name = "miss-" + std::to_string(i);
    core::GeneratorConfig generator;
    generator.family = core::Family::Uniform;
    generator.num_tasks = 24;  // order LP ~10 ms: solver cost dominates wire
    generator.processors = 8.0;
    batch.instances.emplace(name, core::generate(generator, rng));
    batch.requests.push_back({"order-lp-smith", name, i + 1, 1.0, {}});
  }

  support::TextTable table({{"mode", support::Align::Left},
                            {"seconds", support::Align::Right},
                            {"req/s", support::Align::Right},
                            {"speedup vs 1 shard", support::Align::Right}});
  const auto add = [&](const std::string& mode, const std::string& scenario,
                       double seconds, double base_seconds) {
    table.add_row({mode, support::fmt_double(seconds),
                   support::fmt_double(static_cast<double>(num_requests) /
                                       seconds),
                   support::fmt_double(base_seconds / seconds)});
    json.add(scenario, "wall_ns", seconds * 1e9);
    json.add(scenario, "requests_per_second",
             static_cast<double>(num_requests) / seconds);
  };

  std::string single_text;
  double single_seconds = 0.0;
  {
    service::ServiceOptions options;
    options.threads = 1;
    const auto report = service::run_service(batch, registry, options);
    single_seconds = report.wall_seconds;
    single_text = service::format_results(report);
  }

  std::string sharded_text;
  double shard_seconds[3] = {0.0, 0.0, 0.0};
  const std::size_t shard_counts[3] = {1, 2, 4};
  for (std::size_t s = 0; s < 3; ++s) {
    shard::RouterOptions options;
    options.shards = shard_counts[s];
    options.worker.threads = 1;
    shard::ShardRouter router(registry, options);
    const auto report = router.run(batch);
    shard_seconds[s] = report.wall_seconds;
    if (shard_counts[s] == 2) {
      sharded_text = service::format_results(report);
    }
    add("sharded x" + std::to_string(shard_counts[s]),
        "shards_" + std::to_string(shard_counts[s]), report.wall_seconds,
        shard_seconds[0]);
  }
  add("single-process (1 thread)", "single_process", single_seconds,
      shard_seconds[0]);

  // Data plane: the same cache-miss-heavy batch with the transport forced
  // to shm rings and to socketpair frames, at 1/2/4 shards.  The gated
  // floor is the tentpole's claim: on a multi-core host, 2 shards over shm
  // must clear 1.5x the single-process wall time.  Socketpair rows make
  // the plane's own contribution visible next to the fork-parallelism win.
  double shm_2shard_seconds = 0.0;
  {
    support::TextTable plane_table({{"plane", support::Align::Left},
                                    {"shards", support::Align::Right},
                                    {"seconds", support::Align::Right},
                                    {"req/s", support::Align::Right},
                                    {"speedup vs single", support::Align::Right}});
    const struct {
      shard::DataPlaneMode mode;
      const char* name;
    } planes[] = {{shard::DataPlaneMode::Shm, "shm"},
                  {shard::DataPlaneMode::Socketpair, "socketpair"}};
    for (const auto& plane : planes) {
      for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                       std::size_t{4}}) {
        shard::RouterOptions options;
        options.shards = shards;
        options.worker.threads = 1;
        options.data_plane = plane.mode;
        shard::ShardRouter router(registry, options);
        const auto report = router.run(batch);
        if (plane.mode == shard::DataPlaneMode::Shm && shards == 2) {
          shm_2shard_seconds = report.wall_seconds;
        }
        plane_table.add_row(
            {plane.name, support::fmt_int(shards),
             support::fmt_double(report.wall_seconds),
             support::fmt_double(static_cast<double>(num_requests) /
                                 report.wall_seconds),
             support::fmt_double(single_seconds / report.wall_seconds)});
        const std::string scenario = "data_plane_" + std::string(plane.name) +
                                     "_x" + std::to_string(shards);
        json.add(scenario, "wall_ns", report.wall_seconds * 1e9);
        json.add(scenario, "requests_per_second",
                 static_cast<double>(num_requests) / report.wall_seconds);
        json.add(scenario, "speedup_vs_single_process",
                 single_seconds / report.wall_seconds);
      }
    }
    std::printf("data plane sweep (same miss-heavy batch, forced plane):\n%s\n",
                plane_table.to_string().c_str());
  }

  // Failover under load: the same batch, replication 2, and one worker
  // SIGKILLed about 40% into the healthy x2 wall time.  Every request must
  // still succeed — queued work fails over to the primed replica, in-flight
  // work is *retried* under its idempotency token — and the run finishes at
  // a useful fraction of the healthy rate.  The killer thread is joined
  // before this function returns, restoring the fork-safety invariant.
  bool failover_ok = false;
  double failover_seconds = 0.0;
  std::uint64_t retries_replayed = 0;
  {
    shard::RouterOptions options;
    options.shards = 2;
    options.replication = 2;
    options.worker.threads = 1;
    shard::ShardRouter router(registry, options);
    const pid_t victim = router.pid_of(0);
    std::thread killer([victim, delay = shard_seconds[1] * 0.4] {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      if (victim > 0) {
        ::kill(victim, SIGKILL);
      }
    });
    const auto report = router.run(batch);
    killer.join();
    failover_seconds = report.wall_seconds;
    std::size_t ok_count = 0;
    for (const auto& result : report.results) {
      ok_count += result.ok() ? 1 : 0;
    }
    const auto& stats = router.transport_stats();
    retries_replayed = stats.retries_replayed;
    failover_ok = ok_count == report.results.size() && stats.dead_peers == 1;
    add("sharded x2, 1 killed mid-run", "failover_under_load",
        failover_seconds, shard_seconds[0]);
    json.add("failover_under_load", "ok_requests",
             static_cast<double>(ok_count));
    json.add("failover_under_load", "retries_replayed",
             static_cast<double>(stats.retries_replayed));
    json.add("failover_under_load", "dead_peers",
             static_cast<double>(stats.dead_peers));
    json.add("failover_under_load", "all_ok", failover_ok ? 1 : 0);
  }

  const bool identical = sharded_text == single_text;
  const unsigned cores = std::thread::hardware_concurrency();
  // Router + workers need their own cores for fan-out to pay; on a
  // single-core host the claim degenerates and only transparency is gated.
  const bool scaling_armed = cores >= 2;
  const bool scales = shard_seconds[1] < shard_seconds[0];
  std::printf("sharded vs single-process (%zu distinct order-lp-smith "
              "requests, cold caches, %u hardware threads):\n%s",
              num_requests, cores, table.to_string().c_str());
  std::printf("sharding transparency: --shards 2 output %s\n",
              identical ? "IDENTICAL to single-process (byte-for-byte)"
                        : "DIFFERS (BUG)");
  std::printf("shard scaling: x2 vs x1 speedup %.2fx — %s\n",
              shard_seconds[0] / shard_seconds[1],
              !scaling_armed ? "not gated on a single-core host"
              : scales      ? "FASTER (ok)"
                            : "NOT FASTER (BUG)");
  std::printf("failover under load: SIGKILL at 40%% of the x2 run, "
              "%llu in-flight retr%s replayed, finished in %.2fs — %s\n\n",
              static_cast<unsigned long long>(retries_replayed),
              retries_replayed == 1 ? "y" : "ies", failover_seconds,
              failover_ok ? "ALL REQUESTS OK (ok)" : "REQUESTS LOST (BUG)");
  // The data-plane floor, gated like the scaling claim: fan-out cannot pay
  // without cores to fan out onto.
  const double shm_speedup = single_seconds / shm_2shard_seconds;
  const bool shm_floor_ok = shm_speedup >= 1.5;
  std::printf("data plane floor: 2-shard shm %.2fx single-process "
              "(floor 1.5x) — %s\n\n",
              shm_speedup,
              !scaling_armed ? "not gated on a single-core host"
              : shm_floor_ok ? "CLEARED (ok)"
                             : "BELOW FLOOR (BUG)");
  json.add("transparency", "sharded_identical_to_single", identical ? 1 : 0);
  json.add("scaling", "speedup_2_shards_vs_1", shard_seconds[0] / shard_seconds[1]);
  json.add("scaling", "speedup_4_shards_vs_1", shard_seconds[0] / shard_seconds[2]);
  json.add("scaling", "gate_armed", scaling_armed ? 1 : 0);
  json.add("data_plane", "speedup_shm_2_shards_vs_single", shm_speedup);
  json.add("data_plane", "floor", 1.5);
  json.add("data_plane", "gate_armed", scaling_armed ? 1 : 0);
  json.write();
  return identical && (!scaling_armed || scales) &&
         (!scaling_armed || shm_floor_ok) && failover_ok;
}

// --- 8. zipf-skewed repeated traffic: the cache normal form's hit rate. ---
//
// The cloud-batch pattern the rational normal form exists for: a small set
// of base workloads arrives over and over under zipf-skewed popularity,
// each time in different units (arbitrary continuous volume/weight scales,
// nothing power-of-two) and with tasks listed in a different order.  The
// legacy divide-only quotient keys on raw ratio bits, so every non-pow2
// rescaling is a distinct key and the cache never warms; the quantized
// normal form snaps the ratios to shared rationals and every repeat after a
// base's first arrival hits.  Three CI gates:
//   * the quantized hit rate must clear an absolute floor (0.5),
//   * it must beat the legacy quotient's (simulated by first-seen counting
//     of quantize=false keys over the same stream) by >= 20 points — the
//     acceptance bar of the normal-form PR,
//   * replaying the stream against the warm cache must reproduce the first
//     pass byte-for-byte (hits denormalize through the same canonical entry
//     the miss filled, so output bytes cannot depend on cache state).
// TinyLFU admission runs on the cache to exercise the production
// configuration; admitted/rejected counters land in the JSON.
bool run_zipf_hit_rate(const service::SolverRegistry& registry,
                       const bench::BenchConfig& config,
                       bench::BenchJson& json) {
  const std::size_t num_bases = 24;
  const std::size_t num_requests = bench::scaled(1500, config.scale, 256);
  support::Rng rng(config.seed + 41);

  std::vector<core::Instance> bases;
  const std::vector<core::Family> families = {
      core::Family::Uniform, core::Family::BandwidthLike,
      core::Family::HeavyTailVolumes, core::Family::EqualWeights};
  for (std::size_t b = 0; b < num_bases; ++b) {
    core::GeneratorConfig generator;
    generator.family = families[b % families.size()];
    generator.num_tasks = 4 + static_cast<std::size_t>(rng.uniform_int(0, 8));
    generator.processors = static_cast<double>(1 << rng.uniform_int(1, 4));
    bases.push_back(core::generate(generator, rng));
  }

  // Zipf(1.2) popularity over the bases.
  std::vector<double> cdf(num_bases, 0.0);
  double total = 0.0;
  for (std::size_t r = 0; r < num_bases; ++r) {
    total += std::pow(static_cast<double>(r + 1), -1.2);
    cdf[r] = total;
  }

  std::vector<service::InstanceHandle> stream;
  stream.reserve(num_requests);
  for (std::size_t r = 0; r < num_requests; ++r) {
    const double u = rng.uniform(0.0, total);
    const std::size_t b = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const auto& base = bases[std::min(b, num_bases - 1)];
    // The same work in fresh units and a fresh task order.
    const double vs = rng.uniform(0.25, 4.0);
    const double ws = rng.uniform(0.25, 4.0);
    std::vector<core::Task> tasks = base.tasks();
    for (auto& t : tasks) {
      t.volume *= vs;
      t.weight *= ws;
    }
    for (std::size_t i = tasks.size(); i > 1; --i) {
      std::swap(tasks[i - 1], tasks[static_cast<std::size_t>(
                                  rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    }
    stream.push_back(
        service::intern(core::Instance(base.processors(), std::move(tasks))));
  }

  // Legacy quotient baseline: first sight of a quantize=false key is the
  // miss it would have been; everything else would have hit.
  std::size_t legacy_hits = 0;
  {
    std::vector<std::string> seen;
    for (const auto& handle : stream) {
      service::CanonicalOptions legacy;
      legacy.quantize = false;
      const auto form = service::canonicalize(handle.instance(), legacy);
      std::string text = service::canonical_text(form);
      if (std::find(seen.begin(), seen.end(), text) != seen.end()) {
        ++legacy_hits;
      } else {
        seen.push_back(std::move(text));
      }
    }
  }

  service::CacheOptions cache_options;
  cache_options.capacity = std::size_t{1} << 16;
  cache_options.admission = true;
  service::ResultCache cache(cache_options);

  const auto pass = [&](std::size_t* hits_out) {
    std::vector<service::SolveResult> results;
    results.reserve(stream.size());
    std::size_t hits = 0;
    for (const auto& handle : stream) {
      results.push_back(service::solve_cached(registry, "wdeq", handle, &cache));
      hits += results.back().cache_hit ? 1 : 0;
    }
    if (hits_out != nullptr) {
      *hits_out = hits;
    }
    return results_text(std::move(results));
  };
  std::size_t quantized_hits = 0;
  const std::string first_pass = pass(&quantized_hits);
  const std::string warm_replay = pass(nullptr);

  const double n = static_cast<double>(num_requests);
  const double hit_rate_quantized = static_cast<double>(quantized_hits) / n;
  const double hit_rate_legacy = static_cast<double>(legacy_hits) / n;
  const double gain = hit_rate_quantized - hit_rate_legacy;
  const bool byte_identical = warm_replay == first_pass;
  const auto stats = cache.stats();

  support::TextTable table({{"canonicalization", support::Align::Left},
                            {"hit rate", support::Align::Right}});
  table.add_row({"legacy divide-only (simulated)",
                 support::fmt_ratio(hit_rate_legacy, 3)});
  table.add_row({"rational normal form",
                 support::fmt_ratio(hit_rate_quantized, 3)});
  std::printf("zipf-skewed repeats (%zu requests over %zu bases, continuous "
              "rescales + permutations, wdeq):\n%s",
              num_requests, num_bases, table.to_string().c_str());
  const bool floor_ok = hit_rate_quantized >= 0.5;
  const bool gain_ok = gain >= 0.20;
  std::printf("normal-form hit-rate gain: %.1f points (floor 20) — %s;  "
              "absolute floor 0.5: %s\n",
              gain * 100.0, gain_ok ? "CLEARED (ok)" : "BELOW (BUG)",
              floor_ok ? "CLEARED (ok)" : "BELOW (BUG)");
  std::printf("warm replay: output %s;  admission: %llu admitted, "
              "%llu rejected\n\n",
              byte_identical ? "IDENTICAL to first pass (byte-for-byte)"
                             : "DIFFERS (BUG)",
              static_cast<unsigned long long>(stats.admitted),
              static_cast<unsigned long long>(stats.rejected));

  json.add("zipf_normal_form", "hit_rate_quantized", hit_rate_quantized);
  json.add("zipf_normal_form", "hit_rate_legacy", hit_rate_legacy);
  json.add("zipf_normal_form", "gain_points", gain * 100.0);
  json.add("zipf_normal_form", "byte_identical_replay",
           byte_identical ? 1.0 : 0.0);
  json.add("zipf_normal_form", "admitted", static_cast<double>(stats.admitted));
  json.add("zipf_normal_form", "rejected", static_cast<double>(stats.rejected));
  return floor_ok && gain_ok && byte_identical;
}

// Returns false when a correctness claim (determinism, streaming admission)
// fails, so CI's bench-smoke step turns red instead of just printing the
// mismatch.
[[nodiscard]] bool run_report(const bench::BenchConfig& config) {
  bench::print_banner("E-SVC (service layer)",
                      "batch scheduling service throughput", config);
  bench::BenchJson json("service_throughput", config);
  const auto registry = service::SolverRegistry::with_default_solvers();

  // Sharding forks worker processes, so it goes first — before the global
  // thread pool (or any other thread) exists in this process.
  const bool sharded = run_sharded_vs_single(registry, config);

  // --- 8. zipf-skewed repeated traffic through the cache normal form. ---
  const bool zipf = run_zipf_hit_rate(registry, config, json);

  const std::size_t num_requests = bench::scaled(1000, config.scale);
  const auto requests = make_mixed_batch(num_requests, config.seed);
  std::printf("mixed batch: %zu requests over %zu solvers, hardware threads: %u\n\n",
              requests.size(), registry.size(),
              support::ThreadPool::global().thread_count());

  // --- 1. throughput vs thread count (cold cache each run). ---
  {
    support::TextTable table({{"threads", support::Align::Right},
                              {"seconds", support::Align::Right},
                              {"req/s", support::Align::Right},
                              {"speedup", support::Align::Right}});
    double base_seconds = 0.0;
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      service::ResultCache cache(1 << 16);
      const double seconds = time_batch(registry, requests, threads, &cache);
      if (threads == 1) {
        base_seconds = seconds;
      }
      table.add_row({support::fmt_int(threads), support::fmt_double(seconds),
                     support::fmt_double(static_cast<double>(requests.size()) /
                                         seconds),
                     support::fmt_double(base_seconds / seconds)});
      const std::string scenario =
          "throughput_threads_" + std::to_string(threads);
      json.add(scenario, "wall_ns", seconds * 1e9);
      json.add(scenario, "requests_per_second",
               static_cast<double>(requests.size()) / seconds);
      json.add(scenario, "speedup_vs_1_thread", base_seconds / seconds);
    }
    std::printf("throughput vs threads (cold cache):\n%s\n",
                table.to_string().c_str());
  }

  // --- 2. cache: cold vs warm vs disabled. ---
  {
    service::ResultCache cache(1 << 16);
    const double cold = time_batch(registry, requests, 1, &cache);
    const double warm = time_batch(registry, requests, 1, &cache);
    const double uncached = time_batch(registry, requests, 1, nullptr);
    const auto stats = cache.stats();
    support::TextTable table({{"mode", support::Align::Left},
                              {"seconds", support::Align::Right},
                              {"mean us/req", support::Align::Right}});
    const auto us = [&](double seconds) {
      return seconds * 1e6 / static_cast<double>(requests.size());
    };
    table.add_row({"no cache", support::fmt_double(uncached),
                   support::fmt_double(us(uncached))});
    table.add_row({"cold cache", support::fmt_double(cold),
                   support::fmt_double(us(cold))});
    table.add_row({"warm cache", support::fmt_double(warm),
                   support::fmt_double(us(warm))});
    std::printf("canonicalization cache (1 thread):\n%s", table.to_string().c_str());
    std::printf("warm-vs-cold speedup: %.1fx (target >= 10x)  "
                "hit_rate after both passes: %.3f  entries: %zu  weight: %zu\n\n",
                cold / warm, stats.hit_rate(), stats.entries, stats.weight);
    json.add("cache", "cold_wall_ns", cold * 1e9);
    json.add("cache", "warm_wall_ns", warm * 1e9);
    json.add("cache", "uncached_wall_ns", uncached * 1e9);
    json.add("cache", "warm_speedup", cold / warm);
    json.add("cache", "hit_rate", stats.hit_rate());
  }

  // --- 3. determinism across thread counts. ---
  bool deterministic = false;
  {
    std::vector<service::SolveResult> results_1, results_8;
    service::ResultCache cache_1(1 << 16), cache_8(1 << 16);
    time_batch(registry, requests, 1, &cache_1, &results_1);
    time_batch(registry, requests, 8, &cache_8, &results_8);
    deterministic =
        results_text(std::move(results_1)) == results_text(std::move(results_8));
    std::printf("determinism: --threads 1 vs --threads 8 output %s\n\n",
                deterministic ? "IDENTICAL (byte-for-byte)" : "DIFFERS (BUG)");
  }

  const bool streaming = run_streaming_vs_barrier(registry, config, json);
  const bool priority = run_priority_vs_fifo(registry, config, json);
  const bool cancelled = run_cancel_check(json);
  json.add("determinism", "threads_1_vs_8_identical", deterministic ? 1.0 : 0.0);
  json.write();
  return deterministic && streaming && priority && cancelled && sharded && zipf;
}

void bm_solve_batch(benchmark::State& state) {
  static const auto registry = service::SolverRegistry::with_default_solvers();
  static const auto requests = make_mixed_batch(256, 20120521);
  const auto threads = static_cast<unsigned>(state.range(0));
  service::ResultCache cache(1 << 16);
  service::Scheduler::Options options;
  options.threads = threads;
  options.cache = &cache;
  service::Scheduler scheduler(registry, options);  // workers hoisted
  for (auto _ : state) {
    // Cold cache every iteration: otherwise rounds 2..N are pure hit
    // dispatch and the thread-scaling numbers measure lookups, not solving.
    state.PauseTiming();
    cache.clear();
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        service::solve_batch(scheduler, requests).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(requests.size()));
}
// Real time, not CPU time: the work runs on Scheduler workers, so the main
// thread's CPU clock would report near-zero and inflate items/s.
BENCHMARK(bm_solve_batch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void bm_cache_hit(benchmark::State& state) {
  static const auto registry = service::SolverRegistry::with_default_solvers();
  static const auto requests = make_mixed_batch(64, 7);
  service::ResultCache cache(1 << 16);
  for (const auto& request : requests) {  // prime
    benchmark::DoNotOptimize(
        service::solve_cached(registry, request.solver, request.instance,
                              &cache)
            .ok());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& request = requests[i % requests.size()];
    benchmark::DoNotOptimize(
        service::solve_cached(registry, request.solver, request.instance,
                              &cache)
            .cache_hit);
    ++i;
  }
}
BENCHMARK(bm_cache_hit)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_config(argc, argv);
  const bool ok = run_report(config);
  if (config.timing) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return ok ? 0 : 1;
}
