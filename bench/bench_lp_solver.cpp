// E9 — Corollary 1 machinery: size and cost of the order LP, double vs
// exact-rational agreement.  The paper outsources this to an LP solver; we
// built one (two-phase dense simplex), so this experiment doubles as its
// acceptance test at the sizes the Monte-Carlo sweeps use.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/core/order_lp.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/support/stats.hpp"
#include "malsched/support/table.hpp"

using namespace malsched;

namespace {

core::Instance draw(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  core::GeneratorConfig gen;
  gen.family = core::Family::Uniform;
  gen.num_tasks = n;
  gen.processors = 2.0;
  return core::generate(gen, rng);
}

void run_report(const bench::BenchConfig& config) {
  bench::print_banner("E9 (paper Corollary 1)",
                      "order-LP sizes, solver agreement and cost", config);

  // LP shape per n.
  {
    support::TextTable table({{"n", support::Align::Right},
                              {"variables", support::Align::Right},
                              {"constraints", support::Align::Right},
                              {"simplex iterations", support::Align::Right}});
    for (const std::size_t n : {2u, 4u, 6u, 8u}) {
      const auto inst = draw(n, config.seed + n);
      const auto model = core::build_order_lp(inst, core::identity_order(n));
      const auto solution = lp::solve(model);
      table.add_row(
          {support::fmt_int(static_cast<long long>(n)),
           support::fmt_int(static_cast<long long>(model.num_variables())),
           support::fmt_int(static_cast<long long>(model.num_constraints())),
           support::fmt_int(static_cast<long long>(solution.iterations))});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // Double vs exact agreement.
  {
    const std::size_t trials = bench::scaled(20, config.scale);
    support::Sample abs_err;
    support::Rng rng(config.seed + 99);
    for (std::size_t t = 0; t < trials; ++t) {
      const auto inst = draw(4, rng.next_u64());
      const auto order = rng.permutation(4);
      const double approx = core::order_lp_objective(inst, order);
      const auto exact = core::solve_order_lp_exact(inst, order);
      if (exact.status == lp::SolveStatus::Optimal) {
        abs_err.add(std::fabs(approx - exact.objective.to_double()));
      }
    }
    std::printf("double-simplex vs exact-rational simplex on %zu random "
                "order LPs (n=4):\n  |objective difference| %s\n\n",
                trials, abs_err.summary(3).c_str());
  }
}

void bm_order_lp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inst = draw(n, 555);
  const auto order = core::identity_order(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::order_lp_objective(inst, order));
  }
}
BENCHMARK(bm_order_lp)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void bm_order_lp_exact(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inst = draw(n, 555);
  const auto order = core::identity_order(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_order_lp_exact(inst, order).status);
  }
}
BENCHMARK(bm_order_lp_exact)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_config(argc, argv);
  run_report(config);
  if (config.timing) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
