// E5 — Theorem 4: WDEQ is a 2-approximation for Σ w_i C_i.
// Measures the empirical approximation ratio of WDEQ (and the DEQ/WRR
// baselines) across instance families:
//   * against the exact LP-enumerated optimum for small n,
//   * against the mixed lower bound of Lemma 1 (with the run's own VF/V̄F
//     volume split — the certificate used inside the proof) for large n.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "malsched/core/bounds.hpp"
#include "malsched/core/generators.hpp"
#include "malsched/core/optimal.hpp"
#include "malsched/core/wdeq.hpp"
#include "malsched/support/stats.hpp"
#include "malsched/support/table.hpp"

using namespace malsched;

namespace {

void run_report(const bench::BenchConfig& config) {
  bench::print_banner("E5 (paper Theorem 4)",
                      "empirical WDEQ approximation ratios", config);

  // --- Small instances: ratio vs the exact optimum. ---
  {
    const std::size_t trials = bench::scaled(80, config.scale);
    support::TextTable table({{"family", support::Align::Left},
                              {"n", support::Align::Right},
                              {"mean ratio", support::Align::Right},
                              {"max ratio", support::Align::Right},
                              {"bound", support::Align::Right}});
    std::uint64_t seed = config.seed;
    for (const auto family :
         {core::Family::Uniform, core::Family::EqualWeights,
          core::Family::BandwidthLike, core::Family::WideTasks}) {
      for (const std::size_t n : {3u, 5u}) {
        support::Sample ratios;
        support::Rng rng(seed++);
        for (std::size_t t = 0; t < trials; ++t) {
          core::GeneratorConfig gen;
          gen.family = family;
          gen.num_tasks = n;
          gen.processors = 2.0;
          const auto inst = core::generate(gen, rng);
          const auto run = core::run_wdeq(inst);
          const auto opt = core::optimal_by_enumeration(inst);
          ratios.add(run.schedule.weighted_completion(inst) /
                     std::max(1e-12, opt.objective));
        }
        table.add_row({core::family_name(family),
                       support::fmt_int(static_cast<long long>(n)),
                       support::fmt_double(ratios.mean()),
                       support::fmt_double(ratios.max()), "2.0000"});
      }
    }
    std::printf("vs exact optimum (LP over all completion orders):\n%s\n",
                table.to_string().c_str());
  }

  // --- Large instances: ratio vs the Lemma 1 mixed lower bound. ---
  {
    const std::size_t trials = bench::scaled(40, config.scale);
    support::TextTable table({{"family", support::Align::Left},
                              {"n", support::Align::Right},
                              {"mean ratio", support::Align::Right},
                              {"max ratio", support::Align::Right},
                              {"bound", support::Align::Right}});
    std::uint64_t seed = config.seed + 1000;
    for (const auto family :
         {core::Family::Uniform, core::Family::HeavyTailVolumes,
          core::Family::BandwidthLike}) {
      for (const std::size_t n : {50u, 200u}) {
        support::Sample ratios;
        support::Rng rng(seed++);
        for (std::size_t t = 0; t < trials; ++t) {
          core::GeneratorConfig gen;
          gen.family = family;
          gen.num_tasks = n;
          gen.processors = 16.0;
          const auto inst = core::generate(gen, rng);
          const auto run = core::run_wdeq(inst);
          // Lemma 2 certificate: A(I[limited]) + H(I[full]).
          const double certificate =
              core::squashed_area_bound(inst.with_volumes(run.limited_volume)) +
              core::height_bound(inst.with_volumes(run.full_volume));
          ratios.add(run.schedule.weighted_completion(inst) /
                     std::max(1e-12, certificate));
        }
        table.add_row({core::family_name(family),
                       support::fmt_int(static_cast<long long>(n)),
                       support::fmt_double(ratios.mean()),
                       support::fmt_double(ratios.max()), "2.0000"});
      }
    }
    std::printf("vs Lemma-1 mixed lower bound (certificate from the run's "
                "own VF/V̄F split):\n%s\n",
                table.to_string().c_str());
  }
  std::printf("Every max ratio staying below 2 reproduces Theorem 4's "
              "guarantee;\nmean ratios well under 2 show the bound is loose "
              "in practice.\n\n");
}

void bm_wdeq_run(benchmark::State& state) {
  support::Rng rng(13);
  core::GeneratorConfig gen;
  gen.family = core::Family::Uniform;
  gen.num_tasks = static_cast<std::size_t>(state.range(0));
  gen.processors = 16.0;
  const auto inst = core::generate(gen, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_wdeq(inst).schedule.steps().size());
  }
}
BENCHMARK(bm_wdeq_run)->Arg(50)->Arg(200)->Arg(800)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_config(argc, argv);
  run_report(config);
  if (config.timing) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
