#include "malsched/bwshare/network.hpp"

#include <algorithm>

#include "malsched/core/bounds.hpp"
#include "malsched/support/contracts.hpp"

namespace malsched::bwshare {

Scenario::Scenario(double server_bandwidth, std::vector<Worker> workers)
    : server_bandwidth_(server_bandwidth), workers_(std::move(workers)) {
  MALSCHED_EXPECTS(server_bandwidth_ > 0.0);
  MALSCHED_EXPECTS(!workers_.empty());
  for (const Worker& w : workers_) {
    MALSCHED_EXPECTS(w.code_size >= 0.0);
    MALSCHED_EXPECTS(w.bandwidth > 0.0);
    MALSCHED_EXPECTS(w.processing_rate >= 0.0);
  }
}

core::Instance Scenario::to_instance() const {
  std::vector<core::Task> tasks;
  tasks.reserve(workers_.size());
  for (const Worker& w : workers_) {
    tasks.push_back({w.code_size, w.bandwidth, w.processing_rate});
  }
  return core::Instance(server_bandwidth_, std::move(tasks));
}

double DistributionResult::throughput(double horizon,
                                      std::span<const Worker> workers) const {
  MALSCHED_EXPECTS(workers.size() == completion.size());
  double total = 0.0;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    total += workers[i].processing_rate *
             std::max(0.0, horizon - completion[i]);
  }
  return total;
}

DistributionResult distribute(const Scenario& scenario,
                              const sim::AllocationPolicy& policy) {
  const auto instance = scenario.to_instance();
  const auto run = sim::run_policy(instance, policy);
  DistributionResult result;
  result.completion = run.completions;
  result.weighted_completion = run.weighted_completion;
  result.policy = policy.name();
  return result;
}

double throughput_upper_bound(const Scenario& scenario, double horizon) {
  const auto instance = scenario.to_instance();

  // Height certificate: no code can arrive before V/min(δ, P).
  double height_bound = 0.0;
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const double h = instance.task(i).volume / instance.effective_width(i);
    height_bound +=
        instance.task(i).weight * std::max(0.0, horizon - h);
  }
  return height_bound;
}

}  // namespace malsched::bwshare
