#pragma once

/// \file network.hpp
/// The paper's Figure 1 application: a server with outgoing bandwidth P
/// distributes code archives of size V_i to workers whose incoming bandwidth
/// is δ_i; worker i then processes tasks at rate w_i until the horizon T.
///
/// Total work processed by T is Σ w_i (T − C_i), so maximizing throughput is
/// exactly minimizing the weighted mean completion time Σ w_i C_i of the
/// malleable "transfer tasks" — the reduction this module makes executable.

#include <span>
#include <string>
#include <vector>

#include "malsched/core/instance.hpp"
#include "malsched/sim/engine.hpp"

namespace malsched::bwshare {

/// One worker node of the master-workers platform.
struct Worker {
  double code_size = 1.0;       ///< V_i: bytes (scaled) to download
  double bandwidth = 1.0;       ///< δ_i: incoming link capacity
  double processing_rate = 1.0; ///< w_i: tasks/second once the code arrived
  std::string name;             ///< optional label for reports
};

/// The distribution scenario: server capacity plus workers.
class Scenario {
 public:
  Scenario(double server_bandwidth, std::vector<Worker> workers);

  [[nodiscard]] double server_bandwidth() const noexcept {
    return server_bandwidth_;
  }
  [[nodiscard]] const std::vector<Worker>& workers() const noexcept {
    return workers_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// The equivalent MWCT instance (the Figure 1 reduction).
  [[nodiscard]] core::Instance to_instance() const;

 private:
  double server_bandwidth_;
  std::vector<Worker> workers_;
};

/// Outcome of distributing the codes under some bandwidth-sharing policy.
struct DistributionResult {
  std::vector<double> completion;  ///< per worker, when its code is complete
  double weighted_completion = 0.0;
  std::string policy;

  /// Σ w_i max(0, T − C_i): tasks processed by horizon T.
  [[nodiscard]] double throughput(double horizon,
                                  std::span<const Worker> workers) const;
};

/// Runs the given allocation policy on the transfer tasks.
[[nodiscard]] DistributionResult distribute(const Scenario& scenario,
                                            const sim::AllocationPolicy& policy);

/// Upper bound on the clamped throughput Σ w_i max(0, T − C_i) over all
/// schedules, via the height certificate C_i >= V_i/min(δ_i, P): each term
/// is at most w_i max(0, T − h_i).  Valid even when some transfers cannot
/// finish by T (unlike the unclamped identity W·T − Σ w_i C_i, which the
/// Figure 1 reduction uses only under T >= max C_i).
[[nodiscard]] double throughput_upper_bound(const Scenario& scenario,
                                            double horizon);

}  // namespace malsched::bwshare
