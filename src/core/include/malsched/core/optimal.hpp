#pragma once

/// \file optimal.hpp
/// Exact optimum of MWCT-CB-F by enumeration: Corollary 1 reduces the
/// problem to choosing the best completion order, so for small n we solve
/// the order LP for every permutation.  This is the ground truth against
/// which WDEQ's ratio, greedy's conjectured optimality (Conjecture 12) and
/// Theorem 11 are checked.

#include <vector>

#include "malsched/core/instance.hpp"
#include "malsched/core/order_lp.hpp"

namespace malsched::core {

struct OptimalOptions {
  /// Hard guard: enumeration is n! — refuse beyond this size.
  std::size_t max_tasks = 9;
  /// Also build the optimal schedule (slightly slower).
  bool want_schedule = false;
};

struct OptimalResult {
  double objective = 0.0;
  std::vector<std::size_t> order;    ///< the optimal completion order
  ColumnSchedule schedule;           ///< populated if want_schedule
  std::size_t orders_tried = 0;
};

/// Exhaustive optimum over all completion orders.
[[nodiscard]] OptimalResult optimal_by_enumeration(
    const Instance& instance, const OptimalOptions& options = {});

}  // namespace malsched::core
