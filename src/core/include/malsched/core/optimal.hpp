#pragma once

/// \file optimal.hpp
/// Exact optimum of MWCT-CB-F: Corollary 1 reduces the problem to choosing
/// the best completion order.  For tiny n we solve the order LP for every
/// permutation (deterministic, bit-reproducible run to run — the ground
/// truth against which WDEQ's ratio, greedy's conjectured optimality
/// (Conjecture 12) and Theorem 11 are checked); above the crossover the
/// call delegates to the branch-and-bound of bnb.hpp, which searches the
/// same space with pruning and opens n ≈ 15 to exact serving.

#include <vector>

#include "malsched/core/cancel.hpp"
#include "malsched/core/instance.hpp"
#include "malsched/core/order_lp.hpp"

namespace malsched::core {

struct OptimalOptions {
  /// Hard guard — branch-and-bound is worst-case exponential; 18 stays
  /// interactive single-thread now that the mean-busy-time cuts trim the
  /// structured-family tails (the n ≤ 9 limit of the pure-enumeration era
  /// and the n ≤ 15 limit of the DP-bound era are both gone).
  std::size_t max_tasks = 18;
  /// Also build the optimal schedule (slightly slower).
  bool want_schedule = false;
  /// n <= crossover runs the plain n! enumeration; larger instances run
  /// branch_and_bound.  Both are exact — the crossover only trades the
  /// enumeration's run-to-run bit-reproducibility for pruning.
  std::size_t enumeration_crossover = 7;
  /// Cooperative cancellation.  The enumeration polls every 64 permutations
  /// (amortizing the clock read when a deadline is attached); the
  /// branch-and-bound polls at every node.  A cancelled result carries
  /// `cancelled = true` and the best order seen so far.
  CancelToken cancel;
};

struct OptimalResult {
  double objective = 0.0;
  std::vector<std::size_t> order;    ///< the optimal completion order
  ColumnSchedule schedule;           ///< populated if want_schedule
  /// Complete orders whose LP was evaluated: n! below the crossover, the
  /// branch-and-bound leaf count above it.
  std::size_t orders_tried = 0;
  /// True when OptimalOptions::cancel fired mid-search; objective/order are
  /// then the best seen so far, not the proven optimum.
  bool cancelled = false;
};

/// Exact optimum over all completion orders (enumeration below the
/// crossover, branch-and-bound above).
[[nodiscard]] OptimalResult optimal_by_enumeration(
    const Instance& instance, const OptimalOptions& options = {});

}  // namespace malsched::core
