#pragma once

/// \file schedule.hpp
/// The two schedule representations of the paper and their equivalence
/// (Theorem 3):
///
/// * ColumnSchedule — the MWCT-CB-F form (Definition 2): tasks are ordered by
///   completion time; between two consecutive completions ("column j") each
///   task receives a constant fractional number of processors d_{i,j}.
/// * StepSchedule — the general MWCT form (Definition 1) restricted to
///   piecewise-constant allocations d_i(t): a sequence of contiguous time
///   steps with per-task rates.
///
/// `StepSchedule::to_columns` implements the averaging direction of
/// Theorem 3 (any valid schedule -> column-based with the same completion
/// times); the integer direction lives in assignment.hpp.

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "malsched/core/instance.hpp"
#include "malsched/support/float_compare.hpp"
#include "malsched/support/matrix.hpp"

namespace malsched::core {

/// Result of a schedule validity check; `message` explains the first
/// violation found.
struct Validation {
  bool valid = true;
  std::string message;

  explicit operator bool() const noexcept { return valid; }
};

/// Column-based fractional schedule (MWCT-CB-F).
class ColumnSchedule {
 public:
  ColumnSchedule() = default;

  /// \param order        order[j] = task completing at the end of column j
  /// \param boundaries   boundaries[j] = C_{order[j]}, non-decreasing
  /// \param alloc        alloc(task, column) = d_{task,column} processors
  ColumnSchedule(std::vector<std::size_t> order, std::vector<double> boundaries,
                 support::Matrix alloc);

  [[nodiscard]] std::size_t num_tasks() const noexcept { return order_.size(); }
  [[nodiscard]] std::size_t num_columns() const noexcept {
    return order_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return order_.empty(); }

  [[nodiscard]] const std::vector<std::size_t>& order() const noexcept {
    return order_;
  }
  /// Column position at which `task` completes.
  [[nodiscard]] std::size_t position(std::size_t task) const {
    return position_[task];
  }

  [[nodiscard]] double column_start(std::size_t j) const {
    return j == 0 ? 0.0 : boundaries_[j - 1];
  }
  [[nodiscard]] double column_end(std::size_t j) const { return boundaries_[j]; }
  [[nodiscard]] double column_length(std::size_t j) const {
    return column_end(j) - column_start(j);
  }

  /// Completion time of `task`.
  [[nodiscard]] double completion(std::size_t task) const {
    return boundaries_[position_[task]];
  }
  /// Completion times indexed by task id.
  [[nodiscard]] std::vector<double> completions() const;

  /// d_{task, column}.
  [[nodiscard]] double allocation(std::size_t task, std::size_t column) const {
    return alloc_(task, column);
  }
  [[nodiscard]] const support::Matrix& allocations() const noexcept {
    return alloc_;
  }

  /// Σ w_i C_i.
  [[nodiscard]] double weighted_completion(const Instance& instance) const;
  /// Largest completion time (0 for empty schedules).
  [[nodiscard]] double makespan() const;

  /// Checks every MWCT-CB-F constraint: boundary monotonicity, d >= 0,
  /// d_{i,j} <= δ_i, Σ_i d_{i,j} <= P, exact volumes, and no allocation
  /// after completion.
  [[nodiscard]] Validation validate(const Instance& instance,
                                    support::Tolerance tol = {}) const;

 private:
  std::vector<std::size_t> order_;
  std::vector<std::size_t> position_;
  std::vector<double> boundaries_;
  support::Matrix alloc_;
};

/// One step of a piecewise-constant schedule: constant per-task rates over
/// [begin, end).
struct Step {
  double begin = 0.0;
  double end = 0.0;
  std::vector<double> rates;  ///< indexed by task id

  [[nodiscard]] double length() const noexcept { return end - begin; }
};

/// Piecewise-constant MWCT schedule.
class StepSchedule {
 public:
  StepSchedule() = default;
  StepSchedule(std::size_t num_tasks, std::vector<Step> steps);

  [[nodiscard]] std::size_t num_tasks() const noexcept { return num_tasks_; }
  [[nodiscard]] const std::vector<Step>& steps() const noexcept {
    return steps_;
  }

  /// Completion time of each task: the end of the last step in which it has
  /// a positive rate (0 for zero-volume tasks).
  [[nodiscard]] std::vector<double> completions(
      support::Tolerance tol = {}) const;

  [[nodiscard]] double weighted_completion(const Instance& instance,
                                           support::Tolerance tol = {}) const;
  [[nodiscard]] double makespan(support::Tolerance tol = {}) const;

  /// Volume processed per task (integral of its rate).
  [[nodiscard]] std::vector<double> volumes() const;

  /// Checks step contiguity, rate bounds (0 <= rate <= δ, Σ <= P) and
  /// volume conservation.
  [[nodiscard]] Validation validate(const Instance& instance,
                                    support::Tolerance tol = {}) const;

  /// Theorem 3 (averaging direction): collapse to a column schedule with the
  /// same completion times.  Tasks tied in completion time get consistent
  /// (index-ordered) columns of zero length.
  [[nodiscard]] ColumnSchedule to_columns(const Instance& instance,
                                          support::Tolerance tol = {}) const;

 private:
  std::size_t num_tasks_ = 0;
  std::vector<Step> steps_;  ///< contiguous, increasing times
};

/// Expands a column schedule into the equivalent step schedule (one step per
/// non-empty column) — the trivial direction of the representation change.
[[nodiscard]] StepSchedule to_steps(const ColumnSchedule& schedule);

}  // namespace malsched::core
