#pragma once

/// \file bnb.hpp
/// Exact optimum of MWCT-CB-F by branch-and-bound over completion orders.
///
/// Corollary 1 reduces the problem to choosing the best completion order;
/// `optimal_by_enumeration` walks all n! orders and is hard-capped at tiny
/// n.  This module searches the same space as a depth-first tree over order
/// *prefixes* and prunes it three ways:
///
/// * Incremental evaluation — an OrderLpEvaluator solves one prefix-sized
///   order LP per node (the prefix objective is an exact lower bound on what
///   those tasks contribute to any completion of the prefix), instead of one
///   full-n LP per leaf.
/// * Admissible bounds — a node's value is bounded below by
///     prefix LP  +  max(offset squashed area, per-task height)
///   over the remaining tasks, where the offset area is
///   W_suffix · V_prefix / P + A(suffix) (every suffix task's boundary must
///   cover the whole prefix volume plus the Smith-ordered suffix work, the
///   Definition-5 relaxation of bounds.hpp) and the per-task bound is
///   Σ w_i · max(V_i/δ_i, (V_prefix + V_i)/P) (Definition 6 plus the same
///   volume argument).  Subtrees whose bound cannot beat the incumbent are
///   cut.
/// * Tail cuts (use_cuts) — two redundant-by-construction prunes on top of
///   the subset-DP bound:
///   (a) the Queyranne-style mean-busy-time inequality
///     Σ_{t∈F} V_t C_t ≥ max( V_pre·V_F/P + (V_F² + Σ V_t²)/(2P),
///                            V_F²/(2P) + ½ Σ V_t h_t )
///   over each candidate child's suffix set F (V_pre = volume completed
///   before F; h_t = V_t/δ_t): the first member aggregates the
///   cumulative-volume floors of any completion order of F, the second is
///   the mean-busy-time argument of bounds.hpp (total delivery rate ≤ P
///   front-loads, per-task rate ≤ δ_t back-loads); the node bound is the
///   closed-form optimum of the one-cut LP min Σ w_t C_t s.t.
///   C_t ≥ floor_t and the cut, with the LP slack landing on the smallest
///   w_t/V_t.  A cheap secondary filter — the subset DP's per-order floor
///   solution is feasible for this LP, so it can only win weight-pairing
///   corner cases.
///   (b) the identical-shape exchange cut, the workhorse: tasks with
///   exactly equal (V, δ_eff) can swap delivery profiles verbatim, so some
///   optimal order completes each shape class in weight-descending order
///   and every other interleaving of the class is never generated.  This
///   collapses structured batch workloads (repeated shapes, heterogeneous
///   weights) whose near-tied orders the completion-floor bounds cannot
///   separate; on continuous instances exact shape collisions never occur
///   and the cut is inert.  Cut pruning never reorders children (siblings
///   sort by the DP bound in both modes), so enabling cuts can only remove
///   subtrees, never explore new ones.
/// * Incumbent-aware sibling pruning — children are sorted by ascending
///   bound, so the moment one sibling is prunable after an incumbent
///   improvement the entire sorted tail is prunable with it; the loop
///   charges the tail in one step instead of re-checking each sibling.
/// * Dominance — branches that a volume/weight exchange argument proves
///   redundant are never generated: tasks identical in (V, δ, w) are forced
///   into index order (swapping them is a pure renaming, the degenerate
///   Theorem-11 exchange), zero-volume tasks complete first, and
///   zero-weight tasks complete last (moving them is free).
///
/// The incumbent is seeded with the order LP of the classical priority
/// orders (Smith first — §VI's suggestion) and the greedy-heuristic order,
/// and siblings are explored cheapest-bound-first, so pruning bites from
/// the first descent.  With bounds and dominance disabled the search
/// degenerates to exhaustive enumeration and visits exactly n! leaves —
/// the correctness test for the pruning machinery.

#include <cstddef>
#include <vector>

#include "malsched/core/cancel.hpp"
#include "malsched/core/instance.hpp"
#include "malsched/core/schedule.hpp"

namespace malsched::core {

struct BnbOptions {
  /// Hard guard: worst-case exponential (and the subset-DP bound tables
  /// cost 3·2^n doubles, capping n at 20).  ~15 is comfortable
  /// single-thread interactive territory.
  std::size_t max_tasks = 18;
  /// Also build the optimal schedule (one extra full order LP).
  bool want_schedule = false;
  /// Prune subtrees whose admissible lower bound cannot beat the incumbent.
  bool use_bounds = true;
  /// Skip dominated branches (identical-task symmetry, zero-volume/weight
  /// pinning).
  bool use_dominance = true;
  /// Also apply the tail cuts: the Queyranne-style mean-busy-time
  /// inequality and the identical-shape exchange cut (see the file
  /// comment).  Only ever tighten: the inequality joins the subset-DP
  /// bound via max() in the prune checks and never changes sibling order,
  /// the exchange cut removes provably redundant shape-class orderings, so
  /// node counts with cuts on are ≤ node counts with cuts off — the
  /// property the differential suite pins.  No effect when `use_bounds` is
  /// false.
  bool use_cuts = true;
  /// Relative pruning slack: a subtree is cut when its bound is within
  /// slack·max(1, |incumbent|) of the incumbent, absorbing simplex noise.
  /// The returned objective is optimal up to this slack (default well below
  /// every tolerance the test-suite uses).
  double bound_slack = 1e-7;
  /// Cooperative cancellation, polled once per search node (each node costs
  /// an order-LP solve, so the poll is free by comparison).  When the token
  /// fires the DFS unwinds and the result carries `cancelled = true` with
  /// the best incumbent found so far — an upper bound, not the proven
  /// optimum.  The incumbent seeds always run, so a cancelled result still
  /// holds a feasible order.
  CancelToken cancel;
};

struct BnbStats {
  std::size_t nodes = 0;             ///< prefixes expanded (LP-evaluated)
  std::size_t leaves = 0;            ///< complete orders evaluated
  std::size_t lp_evaluations = 0;    ///< order-LP solves, seeds included
  std::size_t pruned_by_bound = 0;   ///< subtrees cut by the subset-DP bound
  std::size_t pruned_by_cut = 0;     ///< subtrees cut by the tail cuts:
                                     ///< busy-time inequality prunes (only
                                     ///< where the DP bound passed) plus
                                     ///< exchange-cut eliminations
  std::size_t pruned_by_dominance = 0;  ///< branches never generated
};

struct BnbResult {
  double objective = 0.0;
  std::vector<std::size_t> order;  ///< an optimal completion order
  ColumnSchedule schedule;         ///< populated if want_schedule
  BnbStats stats;
  /// True when BnbOptions::cancel fired before the search finished; the
  /// objective/order are then the best incumbent, not the proven optimum.
  bool cancelled = false;
};

/// Exact optimum over all completion orders by branch-and-bound.  Matches
/// `optimal_by_enumeration` to within `bound_slack` (relative) on every
/// instance.
[[nodiscard]] BnbResult branch_and_bound(const Instance& instance,
                                         const BnbOptions& options = {});

}  // namespace malsched::core
