#pragma once

/// \file assignment.hpp
/// Theorem 3, integer direction: a column-based fractional schedule becomes
/// a concrete per-processor schedule in which every task uses an integer
/// number of processors (⌊d_{i,j}⌋ or ⌈d_{i,j}⌉) at every instant.
///
/// Construction (the paper's Figure 2): within a column, stack the tasks
/// along a "ribbon" of length P; processor p owns ribbon segment [p, p+1],
/// and the ribbon coordinate maps linearly to time inside the column, the
/// earliest part of a shared processor going to the lower task.
///
/// A relabelling pass then aligns processor labels across consecutive
/// columns (tasks keep the processors they already hold where possible) —
/// this is the affinity argument behind Lemma 10, which turns the ≤ 3n bound
/// on allocation *changes* (Lemma 9) into a ≤ 3n bound on *preemptions*
/// (Theorem 10).  The fractional analogue (Theorem 9) bounds rate changes by
/// n; both counters live here so the benches can compare measured values to
/// the bounds.

#include <cstddef>
#include <vector>

#include "malsched/core/instance.hpp"
#include "malsched/core/schedule.hpp"

namespace malsched::core {

/// A contiguous run of one task on one processor.
struct AssignmentPiece {
  std::size_t task;
  double begin;
  double end;
};

/// Concrete per-processor schedule.
class ProcessorAssignment {
 public:
  ProcessorAssignment() = default;
  ProcessorAssignment(std::size_t num_tasks,
                      std::vector<std::vector<AssignmentPiece>> per_processor);

  [[nodiscard]] std::size_t num_processors() const noexcept {
    return per_processor_.size();
  }
  [[nodiscard]] std::size_t num_tasks() const noexcept { return num_tasks_; }
  [[nodiscard]] const std::vector<AssignmentPiece>& processor(
      std::size_t p) const {
    return per_processor_[p];
  }

  /// All pieces of one task, sorted by begin time.
  [[nodiscard]] std::vector<AssignmentPiece> task_pieces(
      std::size_t task) const;

  /// Integer processor count used by `task` at time t.
  [[nodiscard]] std::size_t count_at(std::size_t task, double t) const;

  /// Checks: pieces on each processor are disjoint and time-ordered, and
  /// each task's total piece time equals its volume.
  [[nodiscard]] Validation validate(const Instance& instance,
                                    support::Tolerance tol = {}) const;

 private:
  std::size_t num_tasks_ = 0;
  std::vector<std::vector<AssignmentPiece>> per_processor_;
};

struct AssignmentOptions {
  /// Relabel processors per column so tasks keep their processors across
  /// column boundaries (the Lemma 10 affinity construction).
  bool improve_affinity = true;
  support::Tolerance tol = {};
};

/// Builds the integer assignment for a valid column schedule on an integral
/// instance (P and all δ_i integers).
[[nodiscard]] ProcessorAssignment assign_processors(
    const Instance& instance, const ColumnSchedule& schedule,
    const AssignmentOptions& options = {});

struct PreemptionStats {
  /// All interior changes in the fractional rate of each task
  /// (column-to-column).  Empirically ≤ 2n-1 for WF schedules; can exceed
  /// the paper's n (see count_fractional_changes note).
  std::size_t fractional_changes = 0;
  /// The Lemma 5 ¶-count (saturation entries not charged).  ≤ n for WF
  /// schedules (Theorem 9 under the paper's own accounting).
  std::size_t band_changes = 0;
  /// Lemma 9 quantity: changes over time in each task's integer processor
  /// count.  ≤ 3n for WF schedules.
  std::size_t integer_changes = 0;
  /// Processor-level losses: a task loses a specific processor before its
  /// completion (Theorem 10 preemptions realized by the affinity
  /// relabelling).
  std::size_t processor_losses = 0;
  /// Processor-level acquisitions after first start (informational).
  std::size_t processor_gains = 0;
};

/// Counts fractional rate changes of a column schedule (interior changes
/// only: first start and final stop are free, zero-length columns ignored).
///
/// Reproduction note: with *this* natural count, Theorem 9's bound n is
/// violated by WF schedules in which tasks saturate inside their own final
/// column (minimal 4-task counterexample in the tests, 5 > 4); the safe
/// empirical bound is 2n-1.  The Lemma 5 induction charges only changes
/// inside the unsaturated band — that variant is count_band_changes below
/// and does satisfy the <= n bound in all our experiments.
[[nodiscard]] std::size_t count_fractional_changes(
    const ColumnSchedule& schedule, support::Tolerance tol = {});

/// The paper's ¶-count from the Lemma 5 proof: interior rate changes whose
/// *new* rate is below the task's width cap (transitions entering the
/// saturated phase, rate == min(δ_i, P), are not charged).  Theorem 9's
/// <= n bound holds for this count.
[[nodiscard]] std::size_t count_band_changes(const Instance& instance,
                                             const ColumnSchedule& schedule,
                                             support::Tolerance tol = {});

/// Counts all preemption statistics for a schedule and its assignment.
[[nodiscard]] PreemptionStats count_preemptions(
    const Instance& instance, const ColumnSchedule& schedule,
    const ProcessorAssignment& assignment, support::Tolerance tol = {});

}  // namespace malsched::core
