#pragma once

/// \file io.hpp
/// Plain-text serialization of instances and schedules, used by the CLI
/// example and for pinning regression fixtures.
///
/// Instance format (line-oriented, '#' comments):
///
///     processors 4
///     task <volume> <width> <weight>
///     task <volume> <width> <weight>
///     ...

#include <iosfwd>
#include <optional>
#include <string>

#include "malsched/core/instance.hpp"
#include "malsched/core/schedule.hpp"

namespace malsched::core {

/// Parses an instance; returns std::nullopt with `error` filled on failure.
[[nodiscard]] std::optional<Instance> read_instance(std::istream& in,
                                                    std::string* error = nullptr);
[[nodiscard]] std::optional<Instance> parse_instance(const std::string& text,
                                                     std::string* error = nullptr);

/// Writes the canonical text form.
void write_instance(std::ostream& out, const Instance& instance);
[[nodiscard]] std::string format_instance(const Instance& instance);

/// CSV dump of a column schedule: task,column,start,end,processors.
void write_schedule_csv(std::ostream& out, const ColumnSchedule& schedule);

/// ASCII rendering of a step schedule: one row per task, time binned into
/// `columns` buckets, glyph scaled by the task's share of its width.
[[nodiscard]] std::string render_gantt(const Instance& instance,
                                       const StepSchedule& schedule,
                                       std::size_t columns = 60);

/// ASCII rendering of an integer processor assignment: one row per
/// processor, each bucket showing the (single-digit) id of the task that
/// owns most of the bucket, '.' when idle.  Tasks beyond id 35 render '+'.
class ProcessorAssignment;  // assignment.hpp
[[nodiscard]] std::string render_processor_gantt(
    const ProcessorAssignment& assignment, std::size_t columns = 60);

}  // namespace malsched::core
