#pragma once

/// \file instance.hpp
/// The problem input of MWCT (Definition 1 of the paper): P identical
/// processors and n work-preserving malleable tasks T_i = (V_i, δ_i, w_i),
/// where V_i is the sequential volume (work), δ_i the maximal number of
/// processors the task can use simultaneously, and w_i its weight in the
/// objective Σ w_i C_i.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace malsched::core {

/// One malleable task.
struct Task {
  double volume = 0.0;  ///< V_i: total work (area in the Gantt chart)
  double width = 1.0;   ///< δ_i: max processors usable at any instant
  double weight = 1.0;  ///< w_i: objective weight

  /// h_i = V_i / δ_i, the minimum possible execution time span (paper
  /// Definition 6 calls this the height of the task).
  [[nodiscard]] double height() const noexcept { return volume / width; }
};

/// An MWCT instance: processor count plus task list.  Immutable after
/// construction; transformation helpers return new instances.
class Instance {
 public:
  /// Validates and stores the instance.  Requirements: P > 0, and for each
  /// task V >= 0 (zero volumes arise in subinstances, Definition 7),
  /// δ > 0, w >= 0.
  Instance(double processors, std::vector<Task> tasks);

  [[nodiscard]] double processors() const noexcept { return processors_; }
  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] const Task& task(std::size_t i) const { return tasks_[i]; }
  [[nodiscard]] const std::vector<Task>& tasks() const noexcept {
    return tasks_;
  }

  /// δ_i clamped to P: a task can never use more than the whole machine, so
  /// algorithms and bounds use this effective limit.
  [[nodiscard]] double effective_width(std::size_t i) const {
    return tasks_[i].width < processors_ ? tasks_[i].width : processors_;
  }

  [[nodiscard]] double total_volume() const noexcept;
  [[nodiscard]] double total_weight() const noexcept;

  /// True when P and every δ_i are integers (required by the integer
  /// processor-assignment of Theorem 3).
  [[nodiscard]] bool integral() const noexcept;

  /// Subinstance I[V'] of Definition 7: same tasks, volumes replaced.
  [[nodiscard]] Instance with_volumes(std::span<const double> volumes) const;

  /// Human-readable one-line description for logs.
  [[nodiscard]] std::string describe() const;

 private:
  double processors_;
  std::vector<Task> tasks_;
};

}  // namespace malsched::core
