#pragma once

/// \file makespan.hpp
/// Makespan and maximum-lateness machinery for work-preserving malleable
/// tasks (the Cmax and Lmax rows of the paper's Table I).
///
/// With zero release dates a constant-rate schedule is optimal, so
/// Cmax* = max(Σ V_i / P, max_i V_i/δ_i).  Deadline feasibility is exactly
/// Water-Filling feasibility (the paper's §IV remark: WF solves Lmax in
/// O(n log n) when r_i = 0); minimizing Lmax is a monotone search over the
/// shift L applied to all due dates.

#include <span>

#include "malsched/core/instance.hpp"
#include "malsched/core/water_filling.hpp"

namespace malsched::core {

/// Optimal makespan: max(Σ V_i / P, max_i V_i / min(δ_i, P)).
[[nodiscard]] double optimal_makespan(const Instance& instance);

/// Can every task i complete by deadlines[i]?  (WF feasibility.)
[[nodiscard]] bool deadlines_feasible(const Instance& instance,
                                      std::span<const double> deadlines,
                                      support::Tolerance tol = {});

struct LmaxResult {
  double lmax = 0.0;           ///< minimal max_i (C_i − d_i)
  std::size_t iterations = 0;  ///< bisection steps used
};

/// Minimizes the maximum lateness against the given due dates via bisection
/// on the common shift, each probe being one WF feasibility test.
[[nodiscard]] LmaxResult minimize_lmax(const Instance& instance,
                                       std::span<const double> due_dates,
                                       double precision = 1e-9);

}  // namespace malsched::core
