#pragma once

/// \file generators.hpp
/// Random instance families used by the test and benchmark harnesses.
///
/// `Uniform` reproduces the paper's §V experiment distribution ("uniform
/// among tasks such that δ_i < P, w_i < 1 and V_i < 1"); the other families
/// cover the structured corners the theory distinguishes (homogeneous
/// weights, δ > P/2, single-processor tasks δ = 1, bandwidth-like skew,
/// heavy-tailed volumes).

#include <cstdint>
#include <string>
#include <vector>

#include "malsched/core/instance.hpp"
#include "malsched/support/rng.hpp"

namespace malsched::core {

/// Instance family selector.
enum class Family {
  Uniform,            ///< §V: V,w ~ U(0,1), δ ~ U(0,P)         (fractional δ)
  UniformIntegral,    ///< V,w ~ U(0,1), δ ~ U{1..P}            (integer δ)
  EqualWeights,       ///< Uniform but w_i = 1 for all tasks
  EqualWeightsVolumes,///< w_i = 1, V_i = 1; only δ varies
  WideTasks,          ///< δ_i > P/2 (Theorem 11 regime), w_i = 1
  HomogeneousHalf,    ///< §V-B: P = 1, V = w = 1, δ ~ U(1/2, 1)
  UnitWidth,          ///< δ_i = 1 (classic multiprocessor ΣwC rows of Table I)
  BandwidthLike,      ///< Fig. 1 flavour: δ ≪ P, heavy-tailed volumes
  HeavyTailVolumes,   ///< Pareto volumes, uniform widths/weights
};

[[nodiscard]] const char* family_name(Family family) noexcept;

struct GeneratorConfig {
  Family family = Family::Uniform;
  std::size_t num_tasks = 5;
  double processors = 1.0;  ///< ignored by HomogeneousHalf (always P = 1)
};

/// Draws one instance from the family.
[[nodiscard]] Instance generate(const GeneratorConfig& config,
                                support::Rng& rng);

/// All families, for parameterized sweeps.
[[nodiscard]] std::vector<Family> all_families();

}  // namespace malsched::core
