#pragma once

/// \file order_lp.hpp
/// Corollary 1: once the completion *order* of the tasks is fixed, the
/// optimal schedule is a linear program.  With tasks renumbered so that
/// position a completes at the end of column a (boundary C_a):
///
///   minimize   Σ_a w_{σ(a)} · C_a
///   subject to C_a ≥ C_{a-1}                       (C_{-1} = 0)
///              Σ_a x_{a,j}        ≤ P  (C_j − C_{j-1})   per column j
///              x_{a,j}            ≤ δ_{σ(a)} (C_j − C_{j-1})
///              Σ_{j≤a} x_{a,j}    = V_{σ(a)}
///              x_{a,j} = 0 for j > a, all variables ≥ 0
///
/// where x_{a,j} is the *volume* position-a's task receives in column j.

#include <span>

#include "malsched/core/instance.hpp"
#include "malsched/core/schedule.hpp"
#include "malsched/lp/solver.hpp"
#include "malsched/numeric/rational.hpp"

namespace malsched::core {

/// Builds the Corollary-1 LP for the given completion order (a permutation
/// of task ids).  Exposed so callers can feed it to either solver.
[[nodiscard]] lp::Model build_order_lp(const Instance& instance,
                                       std::span<const std::size_t> order);

struct OrderLpResult {
  lp::SolveStatus status = lp::SolveStatus::IterationLimit;
  double objective = 0.0;
  ColumnSchedule schedule;  ///< populated when status == Optimal

  [[nodiscard]] bool optimal() const noexcept {
    return status == lp::SolveStatus::Optimal;
  }
};

/// Solves the order LP (double precision) and reconstructs the schedule.
[[nodiscard]] OrderLpResult solve_order_lp(const Instance& instance,
                                           std::span<const std::size_t> order);

/// Objective only (skips schedule reconstruction) — the enumeration hot
/// path.
[[nodiscard]] double order_lp_objective(const Instance& instance,
                                        std::span<const std::size_t> order);

/// Exact-rational solve; returns the certified optimal objective for the
/// order (or nullopt-like status in `status`).
struct ExactOrderLpResult {
  lp::SolveStatus status = lp::SolveStatus::IterationLimit;
  numeric::Rational objective;
};
[[nodiscard]] ExactOrderLpResult solve_order_lp_exact(
    const Instance& instance, std::span<const std::size_t> order);

}  // namespace malsched::core
