#pragma once

/// \file order_lp.hpp
/// Corollary 1: once the completion *order* of the tasks is fixed, the
/// optimal schedule is a linear program.  With tasks renumbered so that
/// position a completes at the end of column a (boundary C_a):
///
///   minimize   Σ_a w_{σ(a)} · C_a
///   subject to C_a ≥ C_{a-1}                       (C_{-1} = 0)
///              Σ_a x_{a,j}        ≤ P  (C_j − C_{j-1})   per column j
///              x_{a,j}            ≤ δ_{σ(a)} (C_j − C_{j-1})
///              Σ_{j≤a} x_{a,j}    = V_{σ(a)}
///              x_{a,j} = 0 for j > a, all variables ≥ 0
///
/// where x_{a,j} is the *volume* position-a's task receives in column j.

#include <memory>
#include <span>
#include <vector>

#include "malsched/core/greedy.hpp"
#include "malsched/core/instance.hpp"
#include "malsched/core/schedule.hpp"
#include "malsched/lp/solver.hpp"
#include "malsched/numeric/rational.hpp"

namespace malsched::core {

/// Builds the Corollary-1 LP for the given completion order.  `order` may
/// also be a *prefix* — a duplicate-free subset of task ids — in which case
/// the LP is that of the induced subinstance with the completion order
/// fixed over just those tasks (the branch-and-bound node relaxation).
/// Exposed so callers can feed it to either solver.
[[nodiscard]] lp::Model build_order_lp(const Instance& instance,
                                       std::span<const std::size_t> order);

struct OrderLpResult {
  lp::SolveStatus status = lp::SolveStatus::IterationLimit;
  double objective = 0.0;
  ColumnSchedule schedule;  ///< populated when status == Optimal

  [[nodiscard]] bool optimal() const noexcept {
    return status == lp::SolveStatus::Optimal;
  }
};

/// Solves the order LP (double precision) and reconstructs the schedule.
[[nodiscard]] OrderLpResult solve_order_lp(const Instance& instance,
                                           std::span<const std::size_t> order);

/// Objective only (skips schedule reconstruction) — the enumeration hot
/// path.  Accepts prefixes like build_order_lp; a prefix objective is an
/// exact lower bound on the weighted completion those tasks contribute to
/// any full order extending the prefix (restriction argument: dropping the
/// suffix allocations from a full solution leaves a feasible prefix
/// schedule).
[[nodiscard]] double order_lp_objective(const Instance& instance,
                                        std::span<const std::size_t> order);

namespace detail {
class IncrementalOrderLp;
}  // namespace detail

/// Resumable prefix evaluation for branch-and-bound over completion orders.
///
/// A depth-first search over order prefixes re-visits each prefix's
/// ancestors once per subtree; this evaluator keeps one stack of per-depth
/// state so extending a prefix by one task reuses everything the parent
/// already paid for:
///
/// * the parent's *optimal simplex basis* — a push appends the new
///   position's columns and rows to the parent tableau (the new volume
///   variables' reduced columns are exactly the stored slack columns of the
///   old capacity rows, so no basis-inverse solve is needed), repairs
///   primal feasibility for the one new volume row, and re-optimizes in a
///   handful of pivots instead of a from-scratch two-phase solve;
/// * the greedy capacity-profile state (Algorithm 3's water-level profile)
///   — `greedy_completion` probes where a candidate task would finish
///   against the current prefix without any LP work, which the search uses
///   to order sibling branches best-first.
///
/// The warm-started value equals the prefix order LP optimum up to simplex
/// tolerance; an *exact* push additionally re-solves from scratch so leaf
/// values agree bit-for-bit with `order_lp_objective` (what the
/// enumeration baseline computes).
class OrderLpEvaluator {
 public:
  explicit OrderLpEvaluator(const Instance& instance);
  ~OrderLpEvaluator();
  OrderLpEvaluator(OrderLpEvaluator&&) noexcept;
  OrderLpEvaluator& operator=(OrderLpEvaluator&&) noexcept;

  /// Appends `task` (not already in the prefix) and returns the order LP
  /// objective of the extended prefix.  exact = false (the branch-and-bound
  /// interior default) returns the warm-started incremental value; exact
  /// additionally re-solves from scratch and returns that bit-reproducible
  /// value (used at leaves).
  double push(std::size_t task, bool exact = true);
  /// Removes the most recently pushed task.
  void pop();

  [[nodiscard]] std::size_t depth() const noexcept { return prefix_.size(); }
  /// Prefix order LP objective (0 at depth 0).
  [[nodiscard]] double objective() const noexcept;
  [[nodiscard]] std::span<const std::size_t> prefix() const noexcept {
    return prefix_;
  }
  /// Σ V_i over the prefix — the suffix-bound offset.
  [[nodiscard]] double prefix_volume() const noexcept;
  /// Completion `task` would get placed greedily after the prefix (no LP).
  [[nodiscard]] double greedy_completion(std::size_t task) const;
  /// Number of LP solves performed so far (incremental or from scratch).
  [[nodiscard]] std::size_t lp_evaluations() const noexcept {
    return lp_evaluations_;
  }

 private:
  const Instance* instance_;
  std::vector<std::size_t> prefix_;
  std::vector<double> objectives_;        ///< objectives_[d]: depth d+1 value
  std::vector<double> volumes_;           ///< cumulative volume per depth
  std::vector<CapacityProfile> profiles_; ///< profiles_[d]: after d tasks
  std::unique_ptr<detail::IncrementalOrderLp> lp_;
  std::size_t lp_evaluations_ = 0;
};

/// Exact-rational solve; returns the certified optimal objective for the
/// order (or nullopt-like status in `status`).
struct ExactOrderLpResult {
  lp::SolveStatus status = lp::SolveStatus::IterationLimit;
  numeric::Rational objective;
};
[[nodiscard]] ExactOrderLpResult solve_order_lp_exact(
    const Instance& instance, std::span<const std::size_t> order);

}  // namespace malsched::core
