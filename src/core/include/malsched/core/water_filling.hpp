#pragma once

/// \file water_filling.hpp
/// Algorithm WF (paper Algorithm 2): given the completion time of every task,
/// rebuild a valid column-based schedule — the paper's *normal form*.
///
/// Tasks are processed by non-decreasing completion time.  Task i may only
/// use columns 1..i (times before C_i).  The algorithm "pours" the volume
/// V_i onto the current height profile, finding the minimal water level h*
/// with  Σ_k l_k · clamp(h* − h_k, 0, δ_i) = V_i,  then raises the touched
/// columns.  Theorem 8: WF succeeds iff *any* valid schedule with those
/// completion times exists, so the normal form loses nothing.  Lemma 3: the
/// height profile stays non-increasing over time throughout.
///
/// Two entry points:
///  * water_fill       — materializes the full allocation (O(n²) memory),
///  * water_fill_feasible — height-profile only, merged equal-height groups
///    (near O(n log n) in practice); used by the Lmax/deadline machinery.

#include <span>

#include "malsched/core/instance.hpp"
#include "malsched/core/schedule.hpp"

namespace malsched::core {

struct WaterFillResult {
  bool feasible = false;
  /// Valid only when feasible.
  ColumnSchedule schedule;
  /// When infeasible: position (in completion order) of the first task that
  /// could not be fitted — the Tm+1 of the Theorem 8 proof.
  std::size_t failed_position = 0;
};

/// Runs WF against per-task completion times `completions` (indexed by task
/// id).  Ties are allowed; tied tasks get zero-length columns in index
/// order.
[[nodiscard]] WaterFillResult water_fill(const Instance& instance,
                                         std::span<const double> completions,
                                         support::Tolerance tol = {});

/// Fast feasibility test: can every task i finish by deadlines[i]?
/// Equivalent to water_fill(...).feasible but does not materialize the
/// schedule.
[[nodiscard]] bool water_fill_feasible(const Instance& instance,
                                       std::span<const double> deadlines,
                                       support::Tolerance tol = {});

/// Normalizes an arbitrary valid schedule: extracts its completion times and
/// rebuilds the WF normal form (same completions, canonical allocation).
[[nodiscard]] WaterFillResult normalize(const Instance& instance,
                                        const StepSchedule& schedule,
                                        support::Tolerance tol = {});

}  // namespace malsched::core
