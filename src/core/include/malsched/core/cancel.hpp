#pragma once

/// \file cancel.hpp
/// Cooperative cancellation for long-running exact solves.
///
/// The exponential-time searches (bnb.hpp, optimal.hpp) can run seconds on
/// hard instances; a client that went away — or whose deadline passed —
/// should be able to abandon the solve instead of burning a worker.  The
/// mechanism is the standard source/token split:
///
///     CancelSource source;                       // owned by the requester
///     BnbOptions options;
///     options.cancel = source.token();           // handed to the solve
///     // ... on another thread ...
///     source.request_cancel();                   // sets one atomic flag
///
/// Tokens are cheap to copy (a shared_ptr plus a time point) and polling is
/// one relaxed-acquire atomic load (plus a steady_clock read when a deadline
/// is attached) — solvers poll at *node boundaries*, where an LP solve
/// dwarfs the check.  A default-constructed token never fires, and
/// `can_cancel()` lets hot loops skip the poll entirely when no caller asked
/// for cancellation.
///
/// Cancellation is cooperative and best-effort: a solve that never polls
/// (all the polynomial-time algorithms) simply runs to completion.

#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

namespace malsched::core {

/// Read side: polled by solvers.  Fires when the owning CancelSource
/// requested cancellation or the attached deadline passed, whichever first.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;  ///< never fires

  /// Deadline-only token (no source): fires once `deadline` passes.
  [[nodiscard]] static CancelToken with_deadline(Clock::time_point deadline) {
    CancelToken token;
    token.deadline_ = deadline;
    token.has_deadline_ = true;
    return token;
  }

  /// True when this token can ever fire; hot loops may skip the poll when
  /// false (the default-constructed token).
  [[nodiscard]] bool can_cancel() const noexcept {
    return flag_ != nullptr || has_deadline_;
  }

  /// The poll: flag first (no clock read needed when it is set), then the
  /// deadline.
  [[nodiscard]] bool cancelled() const noexcept {
    if (flag_ != nullptr && flag_->load(std::memory_order_acquire)) {
      return true;
    }
    return has_deadline_ && Clock::now() >= deadline_;
  }

 private:
  friend class CancelSource;

  std::shared_ptr<const std::atomic<bool>> flag_;
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
};

/// Write side: owned by whoever may abandon the solve.  Thread-safe —
/// request_cancel() may race freely with token polls.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() noexcept {
    flag_->store(true, std::memory_order_release);
  }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return flag_->load(std::memory_order_acquire);
  }

  [[nodiscard]] CancelToken token() const {
    CancelToken token;
    token.flag_ = flag_;
    return token;
  }

  /// Token that also fires once `deadline` passes (the flag still wins the
  /// tie — a poll checks it first).
  [[nodiscard]] CancelToken token_with_deadline(
      CancelToken::Clock::time_point deadline) const {
    CancelToken token = this->token();
    token.deadline_ = deadline;
    token.has_deadline_ = true;
    return token;
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace malsched::core
