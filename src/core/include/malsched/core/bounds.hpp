#pragma once

/// \file bounds.hpp
/// Lower bounds on OPT(I) = min Σ w_i C_i used throughout the paper:
///
/// * Squashed area A(I) (Definition 5): the optimum of the relaxation that
///   ignores the width caps (δ_i = P), i.e. weighted single-machine
///   scheduling solved by Smith's rule on the "squashed" machine.
/// * Height bound H(I) (Definition 6): Σ w_i · V_i/δ_i, the optimum when
///   P = ∞ (every task runs fully parallel from time 0).
/// * Mixed bound (Lemma 1): for any split V_i = V¹_i + V²_i,
///   OPT(I) ≥ A(I[V¹]) + H(I[V²]).  WDEQ's analysis instantiates the split
///   with the limited/full volumes of the run.
/// * Mean-busy-time bound (Queyranne-style): a volume-aggregated cut on the
///   completion times themselves.  Writing M_i for task i's mean busy time
///   (the volume-weighted average instant at which its work is delivered),
///   two facts hold for every feasible schedule:
///     Σ V_i M_i ≥ (Σ V_i)² / (2P)        (total delivery rate ≤ P, so the
///                                          front-loaded profile minimizes),
///     M_i ≤ C_i − h_i/2, h_i = V_i/δ_i    (per-task rate ≤ δ_i, so the
///                                          back-loaded profile maximizes).
///   Combining: Σ V_i C_i ≥ (Σ V_i)²/(2P) + ½ Σ V_i h_i.  The bound below
///   is the exact optimum of   min Σ w_i C_i   subject to that single cut
///   plus the per-task floors C_i ≥ max(V_i/P, h_i) — a one-constraint LP
///   whose closed form charges the slack to the smallest w_i/V_i ratio.
///   The height term ½ Σ V_i h_i is what neither A(I) nor H(I) expresses:
///   A collapses widths, H ignores the shared machine.  bnb.cpp evaluates
///   the same cut incrementally over search-suffix sets.

#include <span>

#include "malsched/core/instance.hpp"

namespace malsched::core {

/// A(I): sort by V_i/w_i non-decreasing; A = Σ_i (Σ_{j>=i} w_j) · V_i / P.
[[nodiscard]] double squashed_area_bound(const Instance& instance);

/// H(I) = Σ_i w_i · V_i / min(δ_i, P).
[[nodiscard]] double height_bound(const Instance& instance);

/// Lemma 1 with the given first-part volumes: A(I[v1]) + H(I[V - v1]).
/// Each v1[i] must lie in [0, V_i].
[[nodiscard]] double mixed_lower_bound(const Instance& instance,
                                       std::span<const double> v1);

/// The Queyranne-style mean-busy-time bound described above:
/// min Σ w_i C_i s.t. C_i ≥ max(V_i/P, h_i) and
/// Σ V_i C_i ≥ (Σ V_i)²/(2P) + ½ Σ V_i h_i, solved in closed form.
[[nodiscard]] double mean_busy_time_bound(const Instance& instance);

/// max(A(I), H(I)) — the generic certificate used when no schedule-specific
/// split is available.
[[nodiscard]] double best_simple_lower_bound(const Instance& instance);

}  // namespace malsched::core
