#pragma once

/// \file homogeneous.hpp
/// The §V-B study: instances with P = 1, V_i = w_i = 1 and δ_i ∈ [1/2, 1].
/// Theorem 11 applies (δ_i > P/2), so optima are greedy and a greedy order σ
/// has the closed-form completion recurrence
///
///   C_{σ(1)} = 1/δ_{σ(1)},
///   C_{σ(i)} = C_{σ(i-1)} +
///              (1 − (1−δ_{σ(i-1)})(C_{σ(i-1)} − C_{σ(i-2)})) / δ_{σ(i)}.
///
/// Provided in double (for sweeps) and exact Rational (for the Conjecture 13
/// order-reversal symmetry check, which the paper verified symbolically up
/// to 15 tasks).

#include <span>
#include <vector>

#include "malsched/numeric/rational.hpp"

namespace malsched::core {

/// Completion times of the greedy schedule for `order` (indices into
/// `delta`).  Every δ must lie in [1/2, 1].
[[nodiscard]] std::vector<double> homogeneous_completions(
    std::span<const double> delta, std::span<const std::size_t> order);

/// Σ C_i for the greedy schedule of `order`.
[[nodiscard]] double homogeneous_total(std::span<const double> delta,
                                       std::span<const std::size_t> order);

/// Exact-rational versions of the recurrence.
[[nodiscard]] std::vector<numeric::Rational> homogeneous_completions_exact(
    std::span<const numeric::Rational> delta,
    std::span<const std::size_t> order);
[[nodiscard]] numeric::Rational homogeneous_total_exact(
    std::span<const numeric::Rational> delta,
    std::span<const std::size_t> order);

/// Conjecture 13 check for one order: total(order) == total(reversed order),
/// exactly.
[[nodiscard]] bool reversal_symmetric_exact(
    std::span<const numeric::Rational> delta,
    std::span<const std::size_t> order);

struct HomogeneousBest {
  std::vector<std::size_t> order;
  double total = 0.0;
  std::size_t orders_tried = 0;
};

/// Enumerates all orders (n <= 10 guard) and returns the best.
[[nodiscard]] HomogeneousBest best_homogeneous_order(
    std::span<const double> delta);

/// The §V-B necessary condition for 5-task optimal orders i,j,k,l,m:
/// (δ_l − δ_j)(δ_i − δ_m) <= 0.
[[nodiscard]] bool five_task_condition(std::span<const double> delta,
                                       std::span<const std::size_t> order);

}  // namespace malsched::core
