#pragma once

/// \file release_dates.hpp
/// Release-date variants of the malleable model — the Table I rows
/// `P|var;V_i/q,δ_i,r_i|Cmax` (Drozdowski [10]) and `...|Lmax` ([2]).
///
/// With windows [r_i, d_i], slice time at the sorted release/deadline
/// events; within a slice every allocation is exchangeable, so feasibility
/// is exactly a bipartite transportation problem:
///
///     source --V_i--> task i --δ_i·len_j--> slice j --P·len_j--> sink
///     (edge task->slice present iff  [slice_j] ⊆ [r_i, d_i])
///
/// which the flow substrate (Dinic) saturates iff a schedule exists.  Cmax
/// and Lmax then reduce to monotone bisection on the deadline shift.  With
/// all r_i = 0 this agrees with the Water-Filling feasibility test — a
/// cross-validation the tests exploit.

#include <span>

#include "malsched/core/instance.hpp"
#include "malsched/core/schedule.hpp"

namespace malsched::core {

/// Can each task i be executed within its window [release[i], deadline[i]]?
[[nodiscard]] bool released_feasible(const Instance& instance,
                                     std::span<const double> release,
                                     std::span<const double> deadlines,
                                     support::Tolerance tol = {});

/// Extracts an explicit schedule when feasible (constant rates per slice).
struct ReleasedScheduleResult {
  bool feasible = false;
  StepSchedule schedule;  ///< valid only when feasible
};
[[nodiscard]] ReleasedScheduleResult released_schedule(
    const Instance& instance, std::span<const double> release,
    std::span<const double> deadlines, support::Tolerance tol = {});

/// Minimal makespan with release dates (bisection on a common deadline).
struct ReleasedMakespanResult {
  double makespan = 0.0;
  std::size_t iterations = 0;
};
[[nodiscard]] ReleasedMakespanResult released_optimal_makespan(
    const Instance& instance, std::span<const double> release,
    double precision = 1e-9);

/// Minimal maximum lateness with release dates and due dates.
struct ReleasedLmaxResult {
  double lmax = 0.0;
  std::size_t iterations = 0;
};
[[nodiscard]] ReleasedLmaxResult released_minimize_lmax(
    const Instance& instance, std::span<const double> release,
    std::span<const double> due_dates, double precision = 1e-9);

/// Simple lower bound on the released makespan:
/// max( max_i (r_i + V_i/δ_i_eff),  max over release levels r of
///      r + (volume released at or after r) / P ).
[[nodiscard]] double released_makespan_lower_bound(
    const Instance& instance, std::span<const double> release);

/// --- Frozen-prefix replan support (the online layer's state transition) ---
///
/// An online replan at time t freezes everything executed before t and
/// re-solves the suffix as a fresh MWCT problem over *remaining* volumes:
/// work-preserving malleability (Definition 1) makes the executed volume the
/// complete state of a task, so the suffix subinstance is just I[V - done].

/// Subinstance of the remaining work: volumes become V_i - executed[i],
/// clamped to [0, V_i] (executed amounts beyond V_i — tolerance residue from
/// a simulation — count as complete).  Widths and weights are unchanged.
[[nodiscard]] Instance remaining_instance(const Instance& instance,
                                          std::span<const double> executed);

/// Concatenates a frozen prefix (steps covering [0, t)) with a re-planned
/// suffix (steps covering [t, ...)).  The suffix must start where the prefix
/// ends (within tol); both must agree on the task count.  Empty prefixes
/// and/or suffixes are fine.
[[nodiscard]] StepSchedule splice_frozen_prefix(const StepSchedule& prefix,
                                                const StepSchedule& suffix,
                                                support::Tolerance tol = {});

/// Certified lower bound on min Σ w_i C_i when task i is only available
/// from release[i] on:
///   max( A(I),  H(I),  Σ_i w_i · (r_i + V_i/δ_i_eff) )
/// — the release-free bounds of Definitions 5/6 stay valid (releases only
/// shrink the feasible set) and the third term adds the release offsets.
/// With all r_i = 0 this equals max(A(I), H(I)) bit-for-bit (the third term
/// degenerates to H(I)).
[[nodiscard]] double released_weighted_completion_lower_bound(
    const Instance& instance, std::span<const double> release);

}  // namespace malsched::core
