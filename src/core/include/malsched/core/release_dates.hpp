#pragma once

/// \file release_dates.hpp
/// Release-date variants of the malleable model — the Table I rows
/// `P|var;V_i/q,δ_i,r_i|Cmax` (Drozdowski [10]) and `...|Lmax` ([2]).
///
/// With windows [r_i, d_i], slice time at the sorted release/deadline
/// events; within a slice every allocation is exchangeable, so feasibility
/// is exactly a bipartite transportation problem:
///
///     source --V_i--> task i --δ_i·len_j--> slice j --P·len_j--> sink
///     (edge task->slice present iff  [slice_j] ⊆ [r_i, d_i])
///
/// which the flow substrate (Dinic) saturates iff a schedule exists.  Cmax
/// and Lmax then reduce to monotone bisection on the deadline shift.  With
/// all r_i = 0 this agrees with the Water-Filling feasibility test — a
/// cross-validation the tests exploit.

#include <span>

#include "malsched/core/instance.hpp"
#include "malsched/core/schedule.hpp"

namespace malsched::core {

/// Can each task i be executed within its window [release[i], deadline[i]]?
[[nodiscard]] bool released_feasible(const Instance& instance,
                                     std::span<const double> release,
                                     std::span<const double> deadlines,
                                     support::Tolerance tol = {});

/// Extracts an explicit schedule when feasible (constant rates per slice).
struct ReleasedScheduleResult {
  bool feasible = false;
  StepSchedule schedule;  ///< valid only when feasible
};
[[nodiscard]] ReleasedScheduleResult released_schedule(
    const Instance& instance, std::span<const double> release,
    std::span<const double> deadlines, support::Tolerance tol = {});

/// Minimal makespan with release dates (bisection on a common deadline).
struct ReleasedMakespanResult {
  double makespan = 0.0;
  std::size_t iterations = 0;
};
[[nodiscard]] ReleasedMakespanResult released_optimal_makespan(
    const Instance& instance, std::span<const double> release,
    double precision = 1e-9);

/// Minimal maximum lateness with release dates and due dates.
struct ReleasedLmaxResult {
  double lmax = 0.0;
  std::size_t iterations = 0;
};
[[nodiscard]] ReleasedLmaxResult released_minimize_lmax(
    const Instance& instance, std::span<const double> release,
    std::span<const double> due_dates, double precision = 1e-9);

/// Simple lower bound on the released makespan:
/// max( max_i (r_i + V_i/δ_i_eff),  max over release levels r of
///      r + (volume released at or after r) / P ).
[[nodiscard]] double released_makespan_lower_bound(
    const Instance& instance, std::span<const double> release);

}  // namespace malsched::core
