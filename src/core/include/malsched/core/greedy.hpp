#pragma once

/// \file greedy.hpp
/// Greedy schedules (paper Algorithm 3 and §V).  Given a task order σ, each
/// task in turn grabs as much of the remaining capacity as possible, as
/// early as possible (rate min(δ_i, P − used(t)) at every instant), which
/// minimizes its own completion time against the already-placed tasks.
///
/// Theorem 11 proves every optimal schedule is greedy when weights are equal
/// and all δ_i > P/2; Conjecture 12 claims some greedy order is optimal for
/// every instance — the E2 benchmark reproduces the paper's Monte-Carlo
/// evidence.

#include <functional>
#include <span>
#include <vector>

#include "malsched/core/instance.hpp"
#include "malsched/core/schedule.hpp"

namespace malsched::core {

/// Builds the greedy schedule for the given order (a permutation of task
/// ids; order[0] is placed first).
[[nodiscard]] StepSchedule greedy_schedule(const Instance& instance,
                                           std::span<const std::size_t> order);

/// Objective Σ w_i C_i of greedy_schedule without materializing steps —
/// the hot path of the order-enumeration experiments.
[[nodiscard]] double greedy_objective(const Instance& instance,
                                      std::span<const std::size_t> order);

struct BestGreedy {
  std::vector<std::size_t> order;
  double objective = 0.0;
  std::size_t orders_tried = 0;
};

/// Exhaustively searches all n! orders (requires small n; guarded at 10).
[[nodiscard]] BestGreedy best_greedy_exhaustive(const Instance& instance);

/// Cheap heuristic search: tries the classical priority orders (Smith,
/// height, volume, weight) plus adjacent-swap local search from the best.
[[nodiscard]] BestGreedy best_greedy_heuristic(const Instance& instance);

}  // namespace malsched::core
