#pragma once

/// \file greedy.hpp
/// Greedy schedules (paper Algorithm 3 and §V).  Given a task order σ, each
/// task in turn grabs as much of the remaining capacity as possible, as
/// early as possible (rate min(δ_i, P − used(t)) at every instant), which
/// minimizes its own completion time against the already-placed tasks.
///
/// Theorem 11 proves every optimal schedule is greedy when weights are equal
/// and all δ_i > P/2; Conjecture 12 claims some greedy order is optimal for
/// every instance — the E2 benchmark reproduces the paper's Monte-Carlo
/// evidence.

#include <functional>
#include <span>
#include <vector>

#include "malsched/core/cancel.hpp"
#include "malsched/core/instance.hpp"
#include "malsched/core/schedule.hpp"

namespace malsched::core {

/// One time interval of a greedy placement: the task runs at `rate`
/// processors over [begin, end).
struct ProfilePiece {
  double begin = 0.0;
  double end = 0.0;
  double rate = 0.0;
};

/// Piecewise-constant "used processors" profile over time, the running state
/// of greedy placement.  Placement mutates the profile in place (the split
/// segment is spliced where it lies instead of rebuilding the whole vector),
/// so a full greedy run allocates O(1) beyond the segment storage itself.
/// Copyable: branch-and-bound snapshots it per search depth.
class CapacityProfile {
 public:
  explicit CapacityProfile(double processors) : processors_(processors) {}

  [[nodiscard]] double processors() const noexcept { return processors_; }
  [[nodiscard]] std::size_t num_segments() const noexcept {
    return segments_.size();
  }
  void clear() noexcept { segments_.clear(); }

  /// Greedy placement (paper Algorithm 3 step): the task runs at rate
  /// min(cap, P - used(t)) from time 0 until its volume is done.  Returns
  /// the completion time and updates the profile.  When `pieces` is
  /// non-null it is cleared and filled with the granted intervals.
  double place(double cap, double volume,
               std::vector<ProfilePiece>* pieces = nullptr);

  /// The completion `place` would return, without mutating the profile —
  /// the cheap probe branch-and-bound uses to order sibling branches.
  [[nodiscard]] double peek(double cap, double volume) const;

 private:
  struct Segment {
    double begin;
    double end;
    double used;
  };

  double processors_;
  std::vector<Segment> segments_;
};

/// Builds the greedy schedule for the given order (a permutation of task
/// ids; order[0] is placed first).
[[nodiscard]] StepSchedule greedy_schedule(const Instance& instance,
                                           std::span<const std::size_t> order);

/// Objective Σ w_i C_i of greedy_schedule without materializing steps —
/// the hot path of the order-enumeration experiments.
[[nodiscard]] double greedy_objective(const Instance& instance,
                                      std::span<const std::size_t> order);

struct BestGreedy {
  std::vector<std::size_t> order;
  double objective = 0.0;
  std::size_t orders_tried = 0;
  /// True when the search's cancellation token fired; order/objective are
  /// then the best seen so far, not the search's full answer.
  bool cancelled = false;
};

/// Exhaustively searches all n! orders (requires small n; guarded at 10).
/// The token is polled every 64 orders, so abort latency is bounded by a
/// handful of greedy placements.
[[nodiscard]] BestGreedy best_greedy_exhaustive(const Instance& instance,
                                                const CancelToken& cancel = {});

/// Cheap heuristic search: tries the classical priority orders (Smith,
/// height, volume, weight) plus adjacent-swap local search from the best.
/// The token is polled per candidate order, bounding abort latency at one
/// greedy evaluation.
[[nodiscard]] BestGreedy best_greedy_heuristic(const Instance& instance,
                                               const CancelToken& cancel = {});

}  // namespace malsched::core
