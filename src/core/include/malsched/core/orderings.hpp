#pragma once

/// \file orderings.hpp
/// Classical priority orders referenced by the paper (Table I and §VI):
/// Smith's ratio rule (optimal for δ_i = P, [15]), the largest-ratio-first
/// rule of Kawaguchi–Kyan ([17]), and structural orders (height, volume,
/// width) used as greedy seeds and in the homogeneous §V-B study.

#include <cstddef>
#include <vector>

#include "malsched/core/instance.hpp"

namespace malsched::core {

/// Smith / WSPT order: V_i/w_i non-decreasing (equivalently w_i/V_i
/// non-increasing).  The paper's §VI suggests greedy with this order.
[[nodiscard]] std::vector<std::size_t> smith_order(const Instance& instance);

/// Height order: V_i/δ_i non-increasing (tallest first).
[[nodiscard]] std::vector<std::size_t> height_order(const Instance& instance);

/// Volume order: V_i non-decreasing (shortest work first).
[[nodiscard]] std::vector<std::size_t> volume_order(const Instance& instance);

/// Weight order: w_i non-increasing.
[[nodiscard]] std::vector<std::size_t> weight_order(const Instance& instance);

/// Width order: δ_i non-increasing (the §V-B convention δ_1 >= δ_2 >= ...).
[[nodiscard]] std::vector<std::size_t> width_order(const Instance& instance);

/// The identity order 0..n-1.
[[nodiscard]] std::vector<std::size_t> identity_order(std::size_t n);

/// Reverses an order.
[[nodiscard]] std::vector<std::size_t> reversed(std::vector<std::size_t> order);

}  // namespace malsched::core
