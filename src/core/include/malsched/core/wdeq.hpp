#pragma once

/// \file wdeq.hpp
/// WDEQ — Weighted Dynamic EQuipartition (paper Algorithm 1, Theorem 4).
///
/// The non-clairvoyant online policy: at every instant share the P
/// processors among alive tasks proportionally to their weights; tasks whose
/// share would exceed their width δ_i are capped at δ_i and the surplus is
/// re-shared among the rest (a fixed point reached by the loop of
/// Algorithm 1).  Shares change only when a task completes, so the schedule
/// is piecewise constant with at most n steps.
///
/// Theorem 4: the resulting Σ w_i C_i is at most twice the optimum.  The
/// proof (Lemma 2) splits each task's processed volume into the part done at
/// full allocation (d_i = δ_i) and the part done while limited by the
/// equipartition; `WdeqRun` reports that split so the bound
/// TC ≤ 2·(A(I[limited]) + H(I[full])) is checkable verbatim.

#include <cstdint>
#include <span>
#include <vector>

#include "malsched/core/instance.hpp"
#include "malsched/core/schedule.hpp"

namespace malsched::core {

/// One round of Algorithm 1: the stationary share vector for the given
/// weights/widths on P processors.  Entries of `alive` that are zero get
/// share 0 (std::uint8_t mask because std::vector<bool> cannot back a
/// span).  Weights must be positive for alive tasks.
[[nodiscard]] std::vector<double> wdeq_shares(double processors,
                                              std::span<const double> weights,
                                              std::span<const double> widths,
                                              std::span<const std::uint8_t> alive);

/// Convenience overload: all tasks alive.
[[nodiscard]] std::vector<double> wdeq_shares(double processors,
                                              std::span<const double> weights,
                                              std::span<const double> widths);

struct WdeqRun {
  StepSchedule schedule;
  /// VF_i: volume processed while running at full allocation (d_i = δ_i).
  std::vector<double> full_volume;
  /// V̄F_i: volume processed while limited by the equipartition (d_i < δ_i).
  std::vector<double> limited_volume;
};

/// Simulates WDEQ to completion.  Non-clairvoyant: the policy itself never
/// reads volumes; the simulation uses them only to locate completion events.
[[nodiscard]] WdeqRun run_wdeq(const Instance& instance,
                               support::Tolerance tol = {});

/// DEQ (Deng et al.): the unweighted special case, i.e. WDEQ with all
/// weights forced to 1.
[[nodiscard]] WdeqRun run_deq(const Instance& instance,
                              support::Tolerance tol = {});

}  // namespace malsched::core
