#include "malsched/core/orderings.hpp"

#include <algorithm>
#include <numeric>

namespace malsched::core {

namespace {

template <typename Less>
std::vector<std::size_t> sorted_order(std::size_t n, Less less) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), less);
  return order;
}

}  // namespace

std::vector<std::size_t> smith_order(const Instance& instance) {
  return sorted_order(instance.size(), [&](std::size_t a, std::size_t b) {
    const Task& ta = instance.task(a);
    const Task& tb = instance.task(b);
    return ta.volume * tb.weight < tb.volume * ta.weight;
  });
}

std::vector<std::size_t> height_order(const Instance& instance) {
  return sorted_order(instance.size(), [&](std::size_t a, std::size_t b) {
    return instance.task(a).height() > instance.task(b).height();
  });
}

std::vector<std::size_t> volume_order(const Instance& instance) {
  return sorted_order(instance.size(), [&](std::size_t a, std::size_t b) {
    return instance.task(a).volume < instance.task(b).volume;
  });
}

std::vector<std::size_t> weight_order(const Instance& instance) {
  return sorted_order(instance.size(), [&](std::size_t a, std::size_t b) {
    return instance.task(a).weight > instance.task(b).weight;
  });
}

std::vector<std::size_t> width_order(const Instance& instance) {
  return sorted_order(instance.size(), [&](std::size_t a, std::size_t b) {
    return instance.task(a).width > instance.task(b).width;
  });
}

std::vector<std::size_t> identity_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::vector<std::size_t> reversed(std::vector<std::size_t> order) {
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace malsched::core
