#include "malsched/core/optimal.hpp"

#include <algorithm>
#include <limits>

#include "malsched/core/bnb.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/support/contracts.hpp"

namespace malsched::core {

OptimalResult optimal_by_enumeration(const Instance& instance,
                                     const OptimalOptions& options) {
  MALSCHED_EXPECTS_MSG(instance.size() <= options.max_tasks,
                       "optimal is factorial (enumeration) / worst-case "
                       "exponential (branch-and-bound) in n; raise "
                       "OptimalOptions::max_tasks deliberately");
  if (instance.size() > options.enumeration_crossover) {
    BnbOptions bnb_options;
    bnb_options.max_tasks = options.max_tasks;
    bnb_options.want_schedule = options.want_schedule;
    bnb_options.cancel = options.cancel;
    auto bnb = branch_and_bound(instance, bnb_options);
    OptimalResult result;
    result.objective = bnb.objective;
    result.order = std::move(bnb.order);
    result.schedule = std::move(bnb.schedule);
    result.orders_tried = bnb.stats.leaves;
    result.cancelled = bnb.cancelled;
    return result;
  }
  OptimalResult result;
  result.objective = std::numeric_limits<double>::infinity();

  // Poll the cancellation token every 64 permutations: each iteration is an
  // order-LP solve (microseconds), so the cadence bounds cancellation
  // latency at well under a millisecond while keeping clock reads (for
  // deadline tokens) off the per-iteration path.
  const bool poll_cancel = options.cancel.can_cancel();
  auto order = identity_order(instance.size());
  do {
    if (poll_cancel && (result.orders_tried & 0x3F) == 0 &&
        options.cancel.cancelled()) {
      result.cancelled = true;
      break;
    }
    const double objective = order_lp_objective(instance, order);
    ++result.orders_tried;
    if (objective < result.objective) {
      result.objective = objective;
      result.order = order;
    }
  } while (std::next_permutation(order.begin(), order.end()));

  if (options.want_schedule && !result.order.empty()) {
    auto solved = solve_order_lp(instance, result.order);
    MALSCHED_ENSURES(solved.optimal());
    result.schedule = std::move(solved.schedule);
  }
  return result;
}

}  // namespace malsched::core
