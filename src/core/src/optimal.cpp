#include "malsched/core/optimal.hpp"

#include <algorithm>
#include <limits>

#include "malsched/core/orderings.hpp"
#include "malsched/support/contracts.hpp"

namespace malsched::core {

OptimalResult optimal_by_enumeration(const Instance& instance,
                                     const OptimalOptions& options) {
  MALSCHED_EXPECTS_MSG(instance.size() <= options.max_tasks,
                       "optimal_by_enumeration is factorial in n");
  OptimalResult result;
  result.objective = std::numeric_limits<double>::infinity();

  auto order = identity_order(instance.size());
  do {
    const double objective = order_lp_objective(instance, order);
    ++result.orders_tried;
    if (objective < result.objective) {
      result.objective = objective;
      result.order = order;
    }
  } while (std::next_permutation(order.begin(), order.end()));

  if (options.want_schedule && !result.order.empty()) {
    auto solved = solve_order_lp(instance, result.order);
    MALSCHED_ENSURES(solved.optimal());
    result.schedule = std::move(solved.schedule);
  }
  return result;
}

}  // namespace malsched::core
