#include "malsched/core/wdeq.hpp"

#include <algorithm>
#include <limits>

#include "malsched/support/contracts.hpp"

namespace malsched::core {

std::vector<double> wdeq_shares(double processors,
                                std::span<const double> weights,
                                std::span<const double> widths,
                                std::span<const std::uint8_t> alive) {
  MALSCHED_EXPECTS(weights.size() == widths.size());
  MALSCHED_EXPECTS(weights.size() == alive.size());
  const std::size_t n = weights.size();
  std::vector<double> shares(n, 0.0);

  // Active = alive and not yet capped at δ.
  std::vector<std::uint8_t> active(alive.begin(), alive.end());
  double remaining_p = processors;
  double remaining_w = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (active[i]) {
      MALSCHED_EXPECTS_MSG(weights[i] > 0.0,
                           "WDEQ requires positive weights for alive tasks");
      remaining_w += weights[i];
    }
  }

  // Algorithm 1: while some active task's fair share exceeds its width,
  // pin it to the width and redistribute.  Each pass pins at least one task,
  // so at most n passes run.
  bool changed = true;
  while (changed && remaining_w > 0.0) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) {
        continue;
      }
      const double fair = weights[i] * remaining_p / remaining_w;
      if (widths[i] < fair) {
        shares[i] = widths[i];
        active[i] = 0;
        remaining_p -= widths[i];
        remaining_w -= weights[i];
        changed = true;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (active[i]) {
      shares[i] = weights[i] * remaining_p / remaining_w;
    }
  }
  return shares;
}

std::vector<double> wdeq_shares(double processors,
                                std::span<const double> weights,
                                std::span<const double> widths) {
  const std::vector<std::uint8_t> alive(weights.size(), 1);
  return wdeq_shares(processors, weights, widths,
                     std::span<const std::uint8_t>(alive));
}

namespace {

WdeqRun run_weighted(const Instance& instance, std::span<const double> weights,
                     support::Tolerance tol) {
  const std::size_t n = instance.size();
  std::vector<double> widths(n);
  for (std::size_t i = 0; i < n; ++i) {
    widths[i] = instance.effective_width(i);
  }

  std::vector<double> remaining(n);
  std::vector<std::uint8_t> alive(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    remaining[i] = instance.task(i).volume;
    alive[i] = remaining[i] > tol.abs ? 1 : 0;
  }

  WdeqRun run;
  run.full_volume.assign(n, 0.0);
  run.limited_volume.assign(n, 0.0);

  std::vector<Step> steps;
  double now = 0.0;
  for (std::size_t round = 0; round < n + 1; ++round) {
    if (std::none_of(alive.begin(), alive.end(),
                     [](std::uint8_t b) { return b != 0; })) {
      break;
    }
    const auto shares =
        wdeq_shares(instance.processors(), weights, widths,
                    std::span<const std::uint8_t>(alive));

    // Time until the next completion under these constant rates.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (alive[i]) {
        MALSCHED_ASSERT(shares[i] > 0.0);
        dt = std::min(dt, remaining[i] / shares[i]);
      }
    }
    MALSCHED_ASSERT(std::isfinite(dt));

    Step step;
    step.begin = now;
    step.end = now + dt;
    step.rates.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) {
        continue;
      }
      step.rates[i] = shares[i];
      const double processed = shares[i] * dt;
      // Full allocation means the task runs pinned at its width.
      if (support::approx_eq(shares[i], widths[i], tol)) {
        run.full_volume[i] += processed;
      } else {
        run.limited_volume[i] += processed;
      }
      remaining[i] -= processed;
      if (remaining[i] <= tol.slack(instance.task(i).volume)) {
        remaining[i] = 0.0;
        alive[i] = 0;
      }
    }
    steps.push_back(std::move(step));
    now += dt;
  }
  MALSCHED_ENSURES(std::none_of(alive.begin(), alive.end(),
                                [](std::uint8_t b) { return b != 0; }));

  // Snap tiny volume residue so the schedule validates exactly: adjust the
  // last step each task appears in.
  run.schedule = StepSchedule(n, std::move(steps));
  return run;
}

}  // namespace

WdeqRun run_wdeq(const Instance& instance, support::Tolerance tol) {
  std::vector<double> weights(instance.size());
  for (std::size_t i = 0; i < instance.size(); ++i) {
    weights[i] = instance.task(i).weight;
  }
  return run_weighted(instance, weights, tol);
}

WdeqRun run_deq(const Instance& instance, support::Tolerance tol) {
  const std::vector<double> weights(instance.size(), 1.0);
  return run_weighted(instance, weights, tol);
}

}  // namespace malsched::core
