#include "malsched/core/water_filling.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "malsched/support/contracts.hpp"

namespace malsched::core {

namespace {

/// clamp(h - base, 0, cap): the rate task i receives in a column of height
/// `base` under water level `h` and width cap `cap`.
double pour_rate(double h, double base, double cap) noexcept {
  return std::clamp(h - base, 0.0, cap);
}

/// Slope-change event of the piecewise-linear pour function: at level `h`
/// the derivative gains `delta` (a column starts filling: +length; a column
/// saturates at its cap: -length).
struct LevelEvent {
  double h;
  double delta;
};

/// Finds the minimal water level h* such that
///   Σ_k lengths[k] * clamp(h* - heights[k], 0, cap) == volume
/// over the given columns, or returns infinity if even h* = ceiling is not
/// enough.  The pour function is piecewise linear and non-decreasing in h;
/// one sort of its slope-change events plus a running-sum sweep locates the
/// crossing segment in O(n log n) (the old per-breakpoint re-summation was
/// O(n²)).  `events` is caller-owned scratch so loops over find_level do not
/// reallocate.
double find_level(std::span<const double> heights,
                  std::span<const double> lengths, double cap, double volume,
                  double ceiling, support::Tolerance tol,
                  std::vector<LevelEvent>& events) {
  MALSCHED_ASSERT(heights.size() == lengths.size());
  if (volume <= tol.abs) {
    return 0.0;
  }

  // Pour and right-derivative at h = 0; columns whose span [h_k, h_k + cap]
  // starts at or below 0 fold into the initial slope instead of the queue.
  events.clear();
  events.reserve(heights.size() * 2);
  double poured = 0.0;
  double slope = 0.0;
  for (std::size_t k = 0; k < heights.size(); ++k) {
    poured += lengths[k] * pour_rate(0.0, heights[k], cap);
    const double fill_h = heights[k];
    const double saturate_h = heights[k] + cap;
    if (fill_h <= 0.0 && 0.0 < saturate_h) {
      slope += lengths[k];
    }
    if (fill_h > 0.0) {
      events.push_back({fill_h, lengths[k]});
    }
    if (saturate_h > 0.0) {
      events.push_back({saturate_h, -lengths[k]});
    }
  }
  if (poured >= volume) {
    return 0.0;
  }
  std::sort(events.begin(), events.end(),
            [](const LevelEvent& a, const LevelEvent& b) { return a.h < b.h; });

  // Sweep: advance the running (poured, slope) pair event by event and
  // interpolate inside the segment that crosses `volume`.  Track the pour at
  // `ceiling` on the way for the saturated-everywhere fallback below.
  double lo = 0.0;
  double poured_at_ceiling = poured;
  bool ceiling_passed = ceiling <= lo;
  for (const LevelEvent& event : events) {
    if (event.h > lo) {
      if (!ceiling_passed && ceiling <= event.h) {
        poured_at_ceiling = poured + slope * (ceiling - lo);
        ceiling_passed = true;
      }
      const double poured_next = poured + slope * (event.h - lo);
      if (poured_next >= volume) {
        MALSCHED_ASSERT(slope > 0.0);
        return lo + (volume - poured) / slope;
      }
      poured = poured_next;
      lo = event.h;
    }
    slope += event.delta;
  }
  // Above the last event the function is constant: never reaches volume.
  // (All columns saturated at cap.)  Check the ceiling for completeness.
  if (!ceiling_passed) {
    poured_at_ceiling = poured;
  }
  if (poured_at_ceiling >= volume - tol.slack(volume)) {
    return ceiling;
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace

WaterFillResult water_fill(const Instance& instance,
                           std::span<const double> completions,
                           support::Tolerance tol) {
  MALSCHED_EXPECTS(completions.size() == instance.size());
  const std::size_t n = instance.size();
  const double P = instance.processors();

  // Completion order, ties by index.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (completions[a] != completions[b]) {
      return completions[a] < completions[b];
    }
    return a < b;
  });

  std::vector<double> boundaries(n);
  for (std::size_t j = 0; j < n; ++j) {
    MALSCHED_EXPECTS_MSG(completions[order[j]] >= 0.0,
                         "completion times must be non-negative");
    boundaries[j] = completions[order[j]];
  }

  std::vector<double> lengths(n);
  for (std::size_t j = 0; j < n; ++j) {
    lengths[j] = boundaries[j] - (j == 0 ? 0.0 : boundaries[j - 1]);
  }

  support::Matrix alloc(n, n, 0.0);
  std::vector<double> heights(n, 0.0);  // current profile, columns 0..n-1
  std::vector<LevelEvent> level_events;  // find_level scratch, reused per pour

  WaterFillResult result;
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t task = order[pos];
    const double volume = instance.task(task).volume;
    const double cap = instance.effective_width(task);

    const std::span<const double> active_heights(heights.data(), pos + 1);
    const std::span<const double> active_lengths(lengths.data(), pos + 1);
    const double level = find_level(active_heights, active_lengths, cap,
                                    volume, P, tol, level_events);
    if (!(level <= P + tol.slack(P))) {
      result.feasible = false;
      result.failed_position = pos;
      return result;
    }

    // Pour: raise every reachable column to the water level (cap-limited).
    double placed = 0.0;
    for (std::size_t k = 0; k <= pos; ++k) {
      const double rate = pour_rate(level, heights[k], cap);
      if (rate <= 0.0) {
        continue;
      }
      alloc(task, k) = rate;
      heights[k] += rate;
      placed += rate * lengths[k];
    }
    // Distribute any interpolation residue into the last unsaturated column
    // (numerically tiny; keeps volumes exact).
    if (volume > 0.0 && std::fabs(placed - volume) > 0.0) {
      for (std::size_t k = pos + 1; k-- > 0;) {
        if (lengths[k] <= 0.0) {
          continue;
        }
        const double fix = (volume - placed) / lengths[k];
        const double new_rate = alloc(task, k) + fix;
        if (new_rate >= -tol.abs && new_rate <= cap + tol.slack(cap) &&
            heights[k] + fix <= P + tol.slack(P)) {
          alloc(task, k) = std::max(0.0, new_rate);
          heights[k] += fix;
          break;
        }
      }
    }
  }

  result.feasible = true;
  result.schedule =
      ColumnSchedule(std::move(order), std::move(boundaries), std::move(alloc));
  return result;
}

bool water_fill_feasible(const Instance& instance,
                         std::span<const double> deadlines,
                         support::Tolerance tol) {
  MALSCHED_EXPECTS(deadlines.size() == instance.size());
  const std::size_t n = instance.size();
  const double P = instance.processors();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return deadlines[a] < deadlines[b];
  });

  // Merged profile groups, non-increasing heights over time (Lemma 3).
  // Equal-height neighbours are merged after every pour, which is what
  // keeps the group count — and hence the per-task cost — small.
  struct Group {
    double height;
    double length;
  };
  std::vector<Group> groups;
  groups.reserve(n);
  std::vector<double> heights;
  std::vector<double> lengths;
  std::vector<LevelEvent> level_events;  // find_level scratch, reused per pour

  double horizon = 0.0;
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t task = order[pos];
    const double deadline = deadlines[task];
    if (deadline < -tol.abs) {
      return false;
    }
    if (deadline > horizon) {
      groups.push_back({0.0, deadline - horizon});
      horizon = deadline;
    }

    const double volume = instance.task(task).volume;
    const double cap = instance.effective_width(task);
    if (volume <= tol.abs) {
      continue;
    }
    if (groups.empty()) {
      return false;  // positive volume, zero deadline
    }

    heights.clear();
    lengths.clear();
    for (const Group& g : groups) {
      heights.push_back(g.height);
      lengths.push_back(g.length);
    }
    const double level =
        find_level(heights, lengths, cap, volume, P, tol, level_events);
    if (!(level <= P + tol.slack(P))) {
      return false;
    }

    // Apply the pour, preserving the non-increasing height order:
    // groups >= level untouched, the band merges at `level`, saturated
    // groups rise by cap (staying below level and keeping their order).
    std::vector<Group> updated;
    updated.reserve(groups.size() + 1);
    double band_length = 0.0;
    for (const Group& g : groups) {
      if (g.height >= level) {
        updated.push_back(g);
      } else if (g.height >= level - cap) {
        band_length += g.length;
      } else {
        if (band_length > 0.0) {
          updated.push_back({level, band_length});
          band_length = 0.0;
        }
        updated.push_back({g.height + cap, g.length});
      }
    }
    if (band_length > 0.0) {
      updated.push_back({level, band_length});
    }
    // Merge equal-height neighbours.
    groups.clear();
    for (const Group& g : updated) {
      if (!groups.empty() &&
          support::approx_eq(groups.back().height, g.height, tol)) {
        groups.back().length += g.length;
      } else {
        groups.push_back(g);
      }
    }
  }
  return true;
}

WaterFillResult normalize(const Instance& instance, const StepSchedule& schedule,
                          support::Tolerance tol) {
  const auto completions = schedule.completions(tol);
  return water_fill(instance, completions, tol);
}

}  // namespace malsched::core
