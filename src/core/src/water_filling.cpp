#include "malsched/core/water_filling.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "malsched/support/contracts.hpp"

namespace malsched::core {

namespace {

/// clamp(h - base, 0, cap): the rate task i receives in a column of height
/// `base` under water level `h` and width cap `cap`.
double pour_rate(double h, double base, double cap) noexcept {
  return std::clamp(h - base, 0.0, cap);
}

/// Finds the minimal water level h* such that
///   Σ_k lengths[k] * clamp(h* - heights[k], 0, cap) == volume
/// over the given columns, or returns infinity if even h* = ceiling is not
/// enough.  The pour function is piecewise linear and non-decreasing in h;
/// we sweep its breakpoints.
double find_level(std::span<const double> heights,
                  std::span<const double> lengths, double cap, double volume,
                  double ceiling, support::Tolerance tol) {
  MALSCHED_ASSERT(heights.size() == lengths.size());
  if (volume <= tol.abs) {
    return 0.0;
  }

  // Candidate breakpoints: each column starts contributing at h_k and
  // saturates at h_k + cap.
  std::vector<double> breaks;
  breaks.reserve(heights.size() * 2);
  for (double h : heights) {
    breaks.push_back(h);
    breaks.push_back(h + cap);
  }
  std::sort(breaks.begin(), breaks.end());

  const auto poured_at = [&](double h) {
    double total = 0.0;
    for (std::size_t k = 0; k < heights.size(); ++k) {
      total += lengths[k] * pour_rate(h, heights[k], cap);
    }
    return total;
  };

  // Locate the segment [lo, hi] of the piecewise-linear pour function that
  // crosses `volume`, then interpolate.
  double lo = 0.0;
  double poured_lo = poured_at(lo);
  if (poured_lo >= volume) {
    return lo;
  }
  for (double b : breaks) {
    if (b <= lo) {
      continue;
    }
    const double poured_b = poured_at(b);
    if (poured_b >= volume) {
      // Linear between lo and b.
      const double slope = (poured_b - poured_lo) / (b - lo);
      MALSCHED_ASSERT(slope > 0.0);
      return lo + (volume - poured_lo) / slope;
    }
    lo = b;
    poured_lo = poured_b;
  }
  // Above the last breakpoint the function is constant: never reaches volume.
  // (All columns saturated at cap.)  Check the ceiling for completeness.
  if (poured_at(ceiling) >= volume - tol.slack(volume)) {
    return ceiling;
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace

WaterFillResult water_fill(const Instance& instance,
                           std::span<const double> completions,
                           support::Tolerance tol) {
  MALSCHED_EXPECTS(completions.size() == instance.size());
  const std::size_t n = instance.size();
  const double P = instance.processors();

  // Completion order, ties by index.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (completions[a] != completions[b]) {
      return completions[a] < completions[b];
    }
    return a < b;
  });

  std::vector<double> boundaries(n);
  for (std::size_t j = 0; j < n; ++j) {
    MALSCHED_EXPECTS_MSG(completions[order[j]] >= 0.0,
                         "completion times must be non-negative");
    boundaries[j] = completions[order[j]];
  }

  std::vector<double> lengths(n);
  for (std::size_t j = 0; j < n; ++j) {
    lengths[j] = boundaries[j] - (j == 0 ? 0.0 : boundaries[j - 1]);
  }

  support::Matrix alloc(n, n, 0.0);
  std::vector<double> heights(n, 0.0);  // current profile, columns 0..n-1

  WaterFillResult result;
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t task = order[pos];
    const double volume = instance.task(task).volume;
    const double cap = instance.effective_width(task);

    const std::span<const double> active_heights(heights.data(), pos + 1);
    const std::span<const double> active_lengths(lengths.data(), pos + 1);
    const double level =
        find_level(active_heights, active_lengths, cap, volume, P, tol);
    if (!(level <= P + tol.slack(P))) {
      result.feasible = false;
      result.failed_position = pos;
      return result;
    }

    // Pour: raise every reachable column to the water level (cap-limited).
    double placed = 0.0;
    for (std::size_t k = 0; k <= pos; ++k) {
      const double rate = pour_rate(level, heights[k], cap);
      if (rate <= 0.0) {
        continue;
      }
      alloc(task, k) = rate;
      heights[k] += rate;
      placed += rate * lengths[k];
    }
    // Distribute any interpolation residue into the last unsaturated column
    // (numerically tiny; keeps volumes exact).
    if (volume > 0.0 && std::fabs(placed - volume) > 0.0) {
      for (std::size_t k = pos + 1; k-- > 0;) {
        if (lengths[k] <= 0.0) {
          continue;
        }
        const double fix = (volume - placed) / lengths[k];
        const double new_rate = alloc(task, k) + fix;
        if (new_rate >= -tol.abs && new_rate <= cap + tol.slack(cap) &&
            heights[k] + fix <= P + tol.slack(P)) {
          alloc(task, k) = std::max(0.0, new_rate);
          heights[k] += fix;
          break;
        }
      }
    }
  }

  result.feasible = true;
  result.schedule =
      ColumnSchedule(std::move(order), std::move(boundaries), std::move(alloc));
  return result;
}

bool water_fill_feasible(const Instance& instance,
                         std::span<const double> deadlines,
                         support::Tolerance tol) {
  MALSCHED_EXPECTS(deadlines.size() == instance.size());
  const std::size_t n = instance.size();
  const double P = instance.processors();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return deadlines[a] < deadlines[b];
  });

  // Merged profile groups, non-increasing heights over time (Lemma 3).
  // Equal-height neighbours are merged after every pour, which is what
  // keeps the group count — and hence the per-task cost — small.
  struct Group {
    double height;
    double length;
  };
  std::vector<Group> groups;
  groups.reserve(n);
  std::vector<double> heights;
  std::vector<double> lengths;

  double horizon = 0.0;
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t task = order[pos];
    const double deadline = deadlines[task];
    if (deadline < -tol.abs) {
      return false;
    }
    if (deadline > horizon) {
      groups.push_back({0.0, deadline - horizon});
      horizon = deadline;
    }

    const double volume = instance.task(task).volume;
    const double cap = instance.effective_width(task);
    if (volume <= tol.abs) {
      continue;
    }
    if (groups.empty()) {
      return false;  // positive volume, zero deadline
    }

    heights.clear();
    lengths.clear();
    for (const Group& g : groups) {
      heights.push_back(g.height);
      lengths.push_back(g.length);
    }
    const double level = find_level(heights, lengths, cap, volume, P, tol);
    if (!(level <= P + tol.slack(P))) {
      return false;
    }

    // Apply the pour, preserving the non-increasing height order:
    // groups >= level untouched, the band merges at `level`, saturated
    // groups rise by cap (staying below level and keeping their order).
    std::vector<Group> updated;
    updated.reserve(groups.size() + 1);
    double band_length = 0.0;
    for (const Group& g : groups) {
      if (g.height >= level) {
        updated.push_back(g);
      } else if (g.height >= level - cap) {
        band_length += g.length;
      } else {
        if (band_length > 0.0) {
          updated.push_back({level, band_length});
          band_length = 0.0;
        }
        updated.push_back({g.height + cap, g.length});
      }
    }
    if (band_length > 0.0) {
      updated.push_back({level, band_length});
    }
    // Merge equal-height neighbours.
    groups.clear();
    for (const Group& g : updated) {
      if (!groups.empty() &&
          support::approx_eq(groups.back().height, g.height, tol)) {
        groups.back().length += g.length;
      } else {
        groups.push_back(g);
      }
    }
  }
  return true;
}

WaterFillResult normalize(const Instance& instance, const StepSchedule& schedule,
                          support::Tolerance tol) {
  const auto completions = schedule.completions(tol);
  return water_fill(instance, completions, tol);
}

}  // namespace malsched::core
