#include "malsched/core/greedy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "malsched/core/orderings.hpp"
#include "malsched/support/contracts.hpp"

namespace malsched::core {

namespace {

/// Capacity profile: piecewise-constant "used processors" over time,
/// represented as consecutive segments.  The final segment is implicitly
/// followed by unused capacity to infinity.
struct ProfileSegment {
  double begin;
  double end;
  double used;
};

/// Greedy placement of one task onto the profile.  Returns the pieces
/// (time intervals × rate) given to the task and its completion time, and
/// updates the profile in place.
struct Placement {
  std::vector<ProfileSegment> pieces;  // used field = task's rate
  double completion = 0.0;
};

Placement place_greedy(std::vector<ProfileSegment>& profile, double processors,
                       double cap, double volume) {
  Placement out;
  if (volume <= 0.0) {
    out.completion = 0.0;
    return out;
  }
  double remaining = volume;
  std::vector<ProfileSegment> updated;
  updated.reserve(profile.size() + 2);

  std::size_t k = 0;
  for (; k < profile.size() && remaining > 0.0; ++k) {
    ProfileSegment seg = profile[k];
    const double rate = std::min(cap, processors - seg.used);
    if (rate <= 0.0 || seg.end <= seg.begin) {
      updated.push_back(seg);
      continue;
    }
    const double capacity = rate * (seg.end - seg.begin);
    if (capacity < remaining) {
      remaining -= capacity;
      out.pieces.push_back({seg.begin, seg.end, rate});
      seg.used += rate;
      updated.push_back(seg);
    } else {
      const double need = remaining / rate;
      const double split = seg.begin + need;
      out.pieces.push_back({seg.begin, split, rate});
      out.completion = split;
      remaining = 0.0;
      updated.push_back({seg.begin, split, seg.used + rate});
      if (split < seg.end) {
        updated.push_back({split, seg.end, seg.used});
      }
    }
  }
  // Untouched tail segments survive unchanged.
  for (; k < profile.size(); ++k) {
    updated.push_back(profile[k]);
  }
  if (remaining > 0.0) {
    // Extend beyond the current horizon on an empty machine.
    const double start = profile.empty() ? 0.0 : profile.back().end;
    const double rate = std::min(cap, processors);
    MALSCHED_ASSERT(rate > 0.0);
    const double need = remaining / rate;
    out.pieces.push_back({start, start + need, rate});
    out.completion = start + need;
    updated.push_back({start, start + need, rate});
    remaining = 0.0;
  } else if (out.completion == 0.0 && !out.pieces.empty()) {
    out.completion = out.pieces.back().end;
  }
  profile = std::move(updated);
  return out;
}

}  // namespace

StepSchedule greedy_schedule(const Instance& instance,
                             std::span<const std::size_t> order) {
  MALSCHED_EXPECTS(order.size() == instance.size());
  const std::size_t n = instance.size();
  const double P = instance.processors();

  std::vector<ProfileSegment> profile;
  std::vector<std::vector<ProfileSegment>> pieces(n);

  for (const std::size_t task : order) {
    MALSCHED_EXPECTS(task < n);
    const auto placement =
        place_greedy(profile, P, instance.effective_width(task),
                     instance.task(task).volume);
    pieces[task] = placement.pieces;
  }

  // Merge all piece boundaries into global steps.
  std::set<double> cuts{0.0};
  for (const auto& task_pieces : pieces) {
    for (const auto& piece : task_pieces) {
      cuts.insert(piece.begin);
      cuts.insert(piece.end);
    }
  }
  std::vector<double> times(cuts.begin(), cuts.end());
  std::vector<Step> steps;
  steps.reserve(times.size());
  for (std::size_t k = 0; k + 1 < times.size(); ++k) {
    Step step;
    step.begin = times[k];
    step.end = times[k + 1];
    step.rates.assign(n, 0.0);
    steps.push_back(std::move(step));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& piece : pieces[i]) {
      // Locate the steps covered by this piece (steps are sorted).
      const auto first = std::lower_bound(
          times.begin(), times.end(), piece.begin);
      for (std::size_t k = static_cast<std::size_t>(first - times.begin());
           k + 1 < times.size() && times[k] < piece.end; ++k) {
        steps[k].rates[i] = piece.used;
      }
    }
  }
  return StepSchedule(n, std::move(steps));
}

double greedy_objective(const Instance& instance,
                        std::span<const std::size_t> order) {
  MALSCHED_EXPECTS(order.size() == instance.size());
  const double P = instance.processors();
  std::vector<ProfileSegment> profile;
  double objective = 0.0;
  for (const std::size_t task : order) {
    const auto placement =
        place_greedy(profile, P, instance.effective_width(task),
                     instance.task(task).volume);
    objective += instance.task(task).weight * placement.completion;
  }
  return objective;
}

BestGreedy best_greedy_exhaustive(const Instance& instance) {
  MALSCHED_EXPECTS_MSG(instance.size() <= 10,
                       "exhaustive greedy is factorial; use <= 10 tasks");
  auto order = identity_order(instance.size());
  BestGreedy best;
  best.objective = std::numeric_limits<double>::infinity();
  do {
    const double objective = greedy_objective(instance, order);
    ++best.orders_tried;
    if (objective < best.objective) {
      best.objective = objective;
      best.order = order;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

BestGreedy best_greedy_heuristic(const Instance& instance) {
  BestGreedy best;
  best.objective = std::numeric_limits<double>::infinity();

  const auto consider = [&](std::vector<std::size_t> order) {
    const double objective = greedy_objective(instance, order);
    ++best.orders_tried;
    if (objective < best.objective) {
      best.objective = objective;
      best.order = std::move(order);
    }
  };

  consider(smith_order(instance));
  consider(height_order(instance));
  consider(volume_order(instance));
  consider(weight_order(instance));
  consider(width_order(instance));
  consider(reversed(smith_order(instance)));

  // Adjacent-swap local search from the incumbent.
  bool improved = true;
  while (improved && instance.size() >= 2) {
    improved = false;
    for (std::size_t k = 0; k + 1 < instance.size(); ++k) {
      auto candidate = best.order;
      std::swap(candidate[k], candidate[k + 1]);
      const double objective = greedy_objective(instance, candidate);
      ++best.orders_tried;
      if (objective < best.objective - 1e-12) {
        best.objective = objective;
        best.order = std::move(candidate);
        improved = true;
      }
    }
  }
  return best;
}

}  // namespace malsched::core
