#include "malsched/core/greedy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "malsched/core/orderings.hpp"
#include "malsched/support/contracts.hpp"

namespace malsched::core {

double CapacityProfile::place(double cap, double volume,
                              std::vector<ProfilePiece>* pieces) {
  if (pieces != nullptr) {
    pieces->clear();
  }
  if (volume <= 0.0) {
    return 0.0;
  }
  double remaining = volume;
  for (std::size_t k = 0; k < segments_.size(); ++k) {
    Segment& seg = segments_[k];
    const double rate = std::min(cap, processors_ - seg.used);
    if (rate <= 0.0 || seg.end <= seg.begin) {
      continue;
    }
    const double capacity = rate * (seg.end - seg.begin);
    if (capacity < remaining) {
      remaining -= capacity;
      if (pieces != nullptr) {
        pieces->push_back({seg.begin, seg.end, rate});
      }
      seg.used += rate;
    } else {
      // The task completes inside this segment: splice the split in place
      // (one O(n) element shift at most, no whole-profile copy).
      const double need = remaining / rate;
      const double split = seg.begin + need;
      if (pieces != nullptr) {
        pieces->push_back({seg.begin, split, rate});
      }
      const Segment tail{split, seg.end, seg.used};
      seg.end = split;
      seg.used += rate;
      if (tail.end > tail.begin) {
        segments_.insert(segments_.begin() + static_cast<std::ptrdiff_t>(k) + 1,
                         tail);
      }
      return split;
    }
  }
  // Extend beyond the current horizon on an empty machine.
  const double start = segments_.empty() ? 0.0 : segments_.back().end;
  const double rate = std::min(cap, processors_);
  MALSCHED_ASSERT(rate > 0.0);
  const double need = remaining / rate;
  if (pieces != nullptr) {
    pieces->push_back({start, start + need, rate});
  }
  segments_.push_back({start, start + need, rate});
  return start + need;
}

double CapacityProfile::peek(double cap, double volume) const {
  if (volume <= 0.0) {
    return 0.0;
  }
  double remaining = volume;
  for (const Segment& seg : segments_) {
    const double rate = std::min(cap, processors_ - seg.used);
    if (rate <= 0.0 || seg.end <= seg.begin) {
      continue;
    }
    const double capacity = rate * (seg.end - seg.begin);
    if (capacity >= remaining) {
      return seg.begin + remaining / rate;
    }
    remaining -= capacity;
  }
  const double start = segments_.empty() ? 0.0 : segments_.back().end;
  const double rate = std::min(cap, processors_);
  MALSCHED_ASSERT(rate > 0.0);
  return start + remaining / rate;
}

StepSchedule greedy_schedule(const Instance& instance,
                             std::span<const std::size_t> order) {
  MALSCHED_EXPECTS(order.size() == instance.size());
  const std::size_t n = instance.size();
  const double P = instance.processors();

  CapacityProfile profile(P);
  std::vector<std::vector<ProfilePiece>> pieces(n);

  for (const std::size_t task : order) {
    MALSCHED_EXPECTS(task < n);
    profile.place(instance.effective_width(task), instance.task(task).volume,
                  &pieces[task]);
  }

  // Merge all piece boundaries into global steps.
  std::set<double> cuts{0.0};
  for (const auto& task_pieces : pieces) {
    for (const auto& piece : task_pieces) {
      cuts.insert(piece.begin);
      cuts.insert(piece.end);
    }
  }
  std::vector<double> times(cuts.begin(), cuts.end());
  std::vector<Step> steps;
  steps.reserve(times.size());
  for (std::size_t k = 0; k + 1 < times.size(); ++k) {
    Step step;
    step.begin = times[k];
    step.end = times[k + 1];
    step.rates.assign(n, 0.0);
    steps.push_back(std::move(step));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& piece : pieces[i]) {
      // Locate the steps covered by this piece (steps are sorted).
      const auto first = std::lower_bound(
          times.begin(), times.end(), piece.begin);
      for (std::size_t k = static_cast<std::size_t>(first - times.begin());
           k + 1 < times.size() && times[k] < piece.end; ++k) {
        steps[k].rates[i] = piece.rate;
      }
    }
  }
  return StepSchedule(n, std::move(steps));
}

double greedy_objective(const Instance& instance,
                        std::span<const std::size_t> order) {
  MALSCHED_EXPECTS(order.size() == instance.size());
  CapacityProfile profile(instance.processors());
  double objective = 0.0;
  for (const std::size_t task : order) {
    const double completion = profile.place(instance.effective_width(task),
                                            instance.task(task).volume);
    objective += instance.task(task).weight * completion;
  }
  return objective;
}

BestGreedy best_greedy_exhaustive(const Instance& instance,
                                  const CancelToken& cancel) {
  MALSCHED_EXPECTS_MSG(instance.size() <= 10,
                       "exhaustive greedy is factorial; use <= 10 tasks");
  auto order = identity_order(instance.size());
  BestGreedy best;
  best.objective = std::numeric_limits<double>::infinity();
  const bool poll_cancel = cancel.can_cancel();
  do {
    // Every 64 orders amortizes the clock read of deadline tokens while
    // keeping abort latency to a handful of greedy placements.
    if (poll_cancel && best.orders_tried % 64 == 0 && cancel.cancelled()) {
      best.cancelled = true;
      return best;
    }
    const double objective = greedy_objective(instance, order);
    ++best.orders_tried;
    if (objective < best.objective) {
      best.objective = objective;
      best.order = order;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

BestGreedy best_greedy_heuristic(const Instance& instance,
                                 const CancelToken& cancel) {
  BestGreedy best;
  best.objective = std::numeric_limits<double>::infinity();
  const bool poll_cancel = cancel.can_cancel();

  const auto consider = [&](std::vector<std::size_t> order) {
    if (best.cancelled || (poll_cancel && cancel.cancelled())) {
      best.cancelled = true;
      return;
    }
    const double objective = greedy_objective(instance, order);
    ++best.orders_tried;
    if (objective < best.objective) {
      best.objective = objective;
      best.order = std::move(order);
    }
  };

  consider(smith_order(instance));
  consider(height_order(instance));
  consider(volume_order(instance));
  consider(weight_order(instance));
  consider(width_order(instance));
  consider(reversed(smith_order(instance)));

  // Adjacent-swap local search from the incumbent.
  bool improved = !best.cancelled;
  while (improved && instance.size() >= 2) {
    improved = false;
    for (std::size_t k = 0; k + 1 < instance.size(); ++k) {
      // One poll per candidate swap: abort latency is a single greedy
      // evaluation.
      if (poll_cancel && cancel.cancelled()) {
        best.cancelled = true;
        return best;
      }
      auto candidate = best.order;
      std::swap(candidate[k], candidate[k + 1]);
      const double objective = greedy_objective(instance, candidate);
      ++best.orders_tried;
      if (objective < best.objective - 1e-12) {
        best.objective = objective;
        best.order = std::move(candidate);
        improved = true;
      }
    }
  }
  return best;
}

}  // namespace malsched::core
