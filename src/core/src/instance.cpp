#include "malsched/core/instance.hpp"

#include <cmath>
#include <sstream>

#include "malsched/support/contracts.hpp"

namespace malsched::core {

Instance::Instance(double processors, std::vector<Task> tasks)
    : processors_(processors), tasks_(std::move(tasks)) {
  MALSCHED_EXPECTS_MSG(processors_ > 0.0, "instance needs P > 0");
  for (const Task& t : tasks_) {
    MALSCHED_EXPECTS_MSG(t.volume >= 0.0, "task volume must be non-negative");
    MALSCHED_EXPECTS_MSG(t.width > 0.0, "task width must be positive");
    MALSCHED_EXPECTS_MSG(t.weight >= 0.0, "task weight must be non-negative");
  }
}

double Instance::total_volume() const noexcept {
  double sum = 0.0;
  for (const Task& t : tasks_) {
    sum += t.volume;
  }
  return sum;
}

double Instance::total_weight() const noexcept {
  double sum = 0.0;
  for (const Task& t : tasks_) {
    sum += t.weight;
  }
  return sum;
}

bool Instance::integral() const noexcept {
  const auto is_int = [](double v) {
    return std::nearbyint(v) == v;
  };
  if (!is_int(processors_)) {
    return false;
  }
  for (const Task& t : tasks_) {
    if (!is_int(t.width)) {
      return false;
    }
  }
  return true;
}

Instance Instance::with_volumes(std::span<const double> volumes) const {
  MALSCHED_EXPECTS(volumes.size() == tasks_.size());
  std::vector<Task> tasks = tasks_;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    MALSCHED_EXPECTS(volumes[i] >= 0.0);
    tasks[i].volume = volumes[i];
  }
  return Instance(processors_, std::move(tasks));
}

std::string Instance::describe() const {
  std::ostringstream out;
  out << "P=" << processors_ << " n=" << tasks_.size()
      << " totalV=" << total_volume();
  return out.str();
}

}  // namespace malsched::core
