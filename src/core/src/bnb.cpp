#include "malsched/core/bnb.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "malsched/core/greedy.hpp"
#include "malsched/core/order_lp.hpp"
#include "malsched/core/orderings.hpp"
#include "malsched/support/contracts.hpp"

namespace malsched::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Must task `i` complete no later than task `j` in some optimal order?
/// Only exchanges that are provably free are claimed (the search stays
/// exact):
/// * zero-volume tasks can always complete at time 0, so they go first;
/// * among positive-volume tasks, a zero-weight task can have its completion
///   boundary moved to the makespan at no objective cost, so it goes last;
/// * tasks identical in (V, δ_eff, w) are interchangeable by renaming, so
///   only the index-ordered representative branch is kept.
/// Ties inside each rule break by index, keeping the relation antisymmetric
/// and acyclic.
bool dominates(const Instance& instance, std::size_t i, std::size_t j) {
  const Task& a = instance.task(i);
  const Task& b = instance.task(j);
  const bool a_empty = a.volume <= 0.0;
  const bool b_empty = b.volume <= 0.0;
  if (a_empty || b_empty) {
    if (a_empty && b_empty) {
      return i < j;
    }
    return a_empty;
  }
  const bool a_weightless = a.weight <= 0.0;
  const bool b_weightless = b.weight <= 0.0;
  if (a_weightless || b_weightless) {
    if (a_weightless && b_weightless) {
      return i < j;
    }
    return b_weightless;
  }
  return a.volume == b.volume && a.weight == b.weight &&
         instance.effective_width(i) == instance.effective_width(j) && i < j;
}

class Searcher {
 public:
  Searcher(const Instance& instance, const BnbOptions& options)
      : instance_(instance),
        options_(options),
        n_(instance.size()),
        processors_(instance.processors()),
        total_volume_(instance.total_volume()),
        evaluator_(instance) {
    heights_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      heights_[i] = instance.task(i).volume / instance.effective_width(i);
    }
    if (options_.use_cuts) {
      // Exchange cut: two positive-volume tasks of *identical shape*
      // (exactly equal V and δ_eff) can trade their delivery profiles
      // verbatim — no rate scaling, so both width caps and the machine
      // capacity are untouched instant by instant and only the two
      // completion times swap.  By the rearrangement inequality some
      // optimal order therefore completes each shape class in
      // weight-descending order (index breaks ties, keeping the relation a
      // total order per class and hence acyclic).  Equal height alone is
      // NOT enough: swapping profiles of same-height tasks with different
      // volumes requires scaling rates by V_i/V_j, which can push the
      // instantaneous total above P in a saturated schedule — the
      // differential probe caught exactly that.  This cut is what
      // collapses structured batch workloads (repeated task shapes under
      // heterogeneous weights) whose near-tied orders defeat every
      // completion-time bound; on continuous random instances exact shape
      // collisions have probability zero and the cut is inert, which keeps
      // the cuts-on/off differential contract (same objective, same order)
      // intact there.
      cut_dominators_.assign(n_, 0u);
      for (std::size_t j = 0; j < n_; ++j) {
        const Task& b = instance_.task(j);
        if (b.volume <= 0.0) {
          continue;  // zero-volume tasks keep their dedicated go-first rule
        }
        for (std::size_t i = 0; i < n_; ++i) {
          const Task& a = instance_.task(i);
          if (i == j || a.volume != b.volume ||
              instance_.effective_width(i) != instance_.effective_width(j)) {
            continue;
          }
          if (a.weight > b.weight || (a.weight == b.weight && i < j)) {
            cut_dominators_[j] |= bit(i);
          }
        }
      }
    }
    dominators_.assign(n_, 0u);
    if (options_.use_dominance) {
      for (std::size_t j = 0; j < n_; ++j) {
        for (std::size_t i = 0; i < n_; ++i) {
          if (i != j && dominates(instance_, i, j)) {
            dominators_[j] |= bit(i);
          }
        }
      }
    }
    if (options_.use_bounds) {
      build_suffix_dp();
    }
  }

  BnbResult run() {
    BnbResult result;
    if (n_ == 0) {
      return result;
    }
    // Seed the incumbent with the classical priority orders — both as
    // completion orders directly and, crucially, via the *completion order
    // of the greedy schedule* each one induces (a placement order and its
    // completion order differ, and the order LP on the latter is at most
    // the greedy objective — with Conjecture 12 that is usually the
    // optimum already, which is what makes the bound bite from the root).
    consider_seed(smith_order(instance_));
    consider_seed(height_order(instance_));
    consider_seed(volume_order(instance_));
    consider_seed(weight_order(instance_));
    consider_greedy_seed(smith_order(instance_));
    consider_greedy_seed(best_greedy_heuristic(instance_).order);
    dfs();

    MALSCHED_ENSURES(!best_order_.empty());
    result.cancelled = cancelled_;
    result.objective = incumbent_;
    result.order = std::move(best_order_);
    stats_.lp_evaluations += evaluator_.lp_evaluations();
    if (options_.want_schedule) {
      auto solved = solve_order_lp(instance_, result.order);
      ++stats_.lp_evaluations;
      MALSCHED_ENSURES(solved.optimal());
      result.schedule = std::move(solved.schedule);
    }
    result.stats = stats_;
    return result;
  }

 private:
  [[nodiscard]] static std::uint32_t bit(std::size_t task) noexcept {
    return std::uint32_t{1} << task;
  }

  void consider_seed(std::vector<std::size_t> order) {
    ++stats_.lp_evaluations;
    const double objective = order_lp_objective(instance_, order);
    if (objective < incumbent_) {
      incumbent_ = objective;
      best_order_ = std::move(order);
    }
  }

  /// Seeds with the completion order of the greedy schedule placed in
  /// `placement` order.  The greedy schedule is feasible with exactly those
  /// completions, so the order LP on its completion order is at most the
  /// greedy objective.
  void consider_greedy_seed(const std::vector<std::size_t>& placement) {
    const auto schedule = greedy_schedule(instance_, placement);
    const auto completions = schedule.completions();
    std::vector<std::size_t> order(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                if (completions[a] != completions[b]) {
                  return completions[a] < completions[b];
                }
                return a < b;
              });
    consider_seed(std::move(order));
  }

  /// True when a subtree with lower bound `bound` cannot improve on the
  /// incumbent by more than the numerical slack.
  [[nodiscard]] bool prunable(double bound) const noexcept {
    if (!std::isfinite(incumbent_)) {
      return false;
    }
    const double slack =
        options_.bound_slack * std::max(1.0, std::abs(incumbent_));
    return bound >= incumbent_ - slack;
  }

  /// Completion floor of task `t` when it is the next to complete after
  /// the task set `prefix_mask`: the exact minimum makespan of
  /// prefix ∪ {t}, max((V_prefix + V_t)/P, tallest height among them)
  /// (Definitions 5/6 plus McNaughton's makespan formula).
  [[nodiscard]] double completion_floor(std::uint32_t prefix_mask,
                                        std::size_t t) const {
    const double volume = set_volume_[prefix_mask] + instance_.task(t).volume;
    return std::max(volume / processors_,
                    std::max(set_max_height_[prefix_mask], heights_[t]));
  }

  /// Queyranne-style mean-busy-time bound on what the suffix set `free`
  /// adds to the objective when everything in `prefix_mask` completed
  /// first: the closed-form optimum of
  ///   min Σ w_t C_t   s.t.  C_t ≥ floor_t  and  Σ V_t C_t ≥ Q(free)
  /// with Q the stronger of the cumulative-volume aggregation
  ///   V_pre·V_F/P + (V_F² + Σ V_t²)/(2P)
  /// (sum the per-position floors C_(i) ≥ (V_pre + cumV_i)/P weighted by
  /// V_(i) — order-independent) and the busy-time aggregation
  ///   V_F²/(2P) + ½ Σ V_t h_t
  /// (Σ V_t M_t ≥ V_F²/(2P) since total delivery rate ≤ P, and
  /// M_t ≤ C_t − h_t/2 since per-task rate ≤ δ_t; the prefix offset is NOT
  /// valid here — suffix delivery may overlap the prefix).  The LP slack
  /// lands on the smallest w_t/V_t — exact for this one-constraint LP (a
  /// vertex puts all slack on one task), but lossy when w/V spreads.
  ///
  /// Honesty note: the subset DP's per-order floor solution C_(i) =
  /// max((V_pre + cumV_i)/P, running-max height) is *feasible* for this LP
  /// (position-summing the floors recovers both aggregations, the height
  /// halves by max(a,h) ≥ (a+h)/2 at every crossover), so the inequality
  /// can out-prune the DP only through the weight-pairing corner cases the
  /// one-constraint relaxation happens to price differently — it is a
  /// cheap secondary filter, not the workhorse.  The node reductions on
  /// structured families come from the identical-shape exchange cut built
  /// in the constructor.  O(|free|) per call.
  [[nodiscard]] double cut_bound(std::uint32_t prefix_mask,
                                 std::uint32_t free) const {
    const double before_volume = set_volume_[prefix_mask];
    const double before_height = set_max_height_[prefix_mask];
    const double free_volume = set_volume_[free];
    double sum_sq = 0.0;   // Σ V_t²
    double sum_vh = 0.0;   // Σ V_t h_t
    double base = 0.0;     // Σ w_t floor_t
    double have = 0.0;     // Σ V_t floor_t
    double min_ratio = kInf;
    for (std::uint32_t rest = free; rest != 0u;) {
      const std::uint32_t low = rest & (~rest + 1u);
      rest ^= low;
      const auto t = static_cast<std::size_t>(std::countr_zero(low));
      const Task& task = instance_.task(t);
      const double floor_t =
          std::max((before_volume + task.volume) / processors_,
                   std::max(before_height, heights_[t]));
      base += task.weight * floor_t;
      have += task.volume * floor_t;
      sum_sq += task.volume * task.volume;
      sum_vh += task.volume * heights_[t];
      if (task.volume > 0.0) {
        min_ratio = std::min(min_ratio, task.weight / task.volume);
      }
    }
    const double cut = std::max(
        (before_volume * free_volume +
         0.5 * (free_volume * free_volume + sum_sq)) /
            processors_,
        free_volume * free_volume / (2.0 * processors_) + 0.5 * sum_vh);
    if (cut > have && std::isfinite(min_ratio)) {
      base += (cut - have) * min_ratio;
    }
    return base;
  }

  [[nodiscard]] std::uint32_t free_mask(std::uint32_t used_mask) const {
    return full_mask() & ~used_mask;
  }
  [[nodiscard]] std::uint32_t full_mask() const {
    return n_ == 32 ? ~std::uint32_t{0}
                    : (std::uint32_t{1} << n_) - std::uint32_t{1};
  }

  /// Exact-over-the-relaxation suffix bound, one subset DP sweep per
  /// instance: suffix_dp_[F] is the minimum over completion orders of F of
  /// Σ w_t · completion_floor(complement at t's turn, t) — each suffix
  /// task pays at least the minimum makespan of everything completing
  /// before it plus itself.  Position floors combine the offset
  /// squashed-area cumulative-volume argument (Definition 5) with the
  /// tallest-height makespan term (Definition 6), and the min-assignment
  /// over orders is solved exactly, so this dominates both aggregate
  /// relaxations as well as any rearrangement pairing of them.  O(2^n · n)
  /// once, O(1) per node.
  void build_suffix_dp() {
    const std::size_t size = std::size_t{1} << n_;
    set_volume_.assign(size, 0.0);
    set_max_height_.assign(size, 0.0);
    for (std::uint32_t mask = 1; mask < size; ++mask) {
      const std::uint32_t low = mask & (~mask + 1u);
      const auto i = static_cast<std::size_t>(std::countr_zero(low));
      set_volume_[mask] = set_volume_[mask ^ low] + instance_.task(i).volume;
      set_max_height_[mask] =
          std::max(set_max_height_[mask ^ low], heights_[i]);
    }
    suffix_dp_.assign(size, 0.0);
    for (std::uint32_t free = 1; free < size; ++free) {
      double best = kInf;
      const double before_volume = total_volume_ - set_volume_[free];
      const double before_height = set_max_height_[full_mask() & ~free];
      for (std::uint32_t rest = free; rest != 0u;) {
        const std::uint32_t low = rest & (~rest + 1u);
        rest ^= low;
        const auto t = static_cast<std::size_t>(std::countr_zero(low));
        const Task& task = instance_.task(t);
        const double floor_t = std::max(
            (before_volume + task.volume) / processors_,
            std::max(before_height, heights_[t]));
        best = std::min(best,
                        task.weight * floor_t + suffix_dp_[free ^ low]);
      }
      suffix_dp_[free] = best;
    }
  }

  void dfs() {
    // Cancellation poll, once per node: every node below costs at least one
    // warm-started LP push, so the atomic load (plus a clock read when a
    // deadline is attached) is noise.  The flag makes the whole DFS unwind.
    if (!cancelled_ && options_.cancel.can_cancel() &&
        options_.cancel.cancelled()) {
      cancelled_ = true;
    }
    if (cancelled_) {
      return;
    }
    const std::size_t depth = evaluator_.depth();
    if (depth == n_) {
      ++stats_.leaves;
      const double objective = evaluator_.objective();
      if (objective < incumbent_) {
        incumbent_ = objective;
        best_order_.assign(evaluator_.prefix().begin(),
                           evaluator_.prefix().end());
      }
      return;
    }

    struct Child {
      std::size_t task;
      double bound;        ///< subset-DP bound: the sort key in both modes
      double prune_bound;  ///< max(bound, cut bound): prune checks only
      double greedy_completion;
    };
    std::vector<Child> children;
    children.reserve(n_ - depth);
    const double prefix_objective = evaluator_.objective();
    for (std::size_t t = 0; t < n_; ++t) {
      if ((used_ & bit(t)) != 0u) {
        continue;
      }
      if (options_.use_dominance && (dominators_[t] & ~used_) != 0u) {
        ++stats_.pruned_by_dominance;
        continue;
      }
      if (options_.use_bounds && options_.use_cuts &&
          (cut_dominators_[t] & ~used_) != 0u) {
        // Exchange cut: an identical-shape task with strictly larger
        // weight (index on ties) is still free, and some optimal order
        // completes it first, so this child's subtree is redundant.  Gated
        // with the
        // bounds like the inequality cut, so `use_cuts` without
        // `use_bounds` stays inert.
        ++stats_.pruned_by_cut;
        continue;
      }
      double bound = -kInf;
      double prune_bound = -kInf;
      if (options_.use_bounds) {
        // Pre-LP bound: exact prefix LP + the candidate's completion floor
        // + the subset-DP relaxation over the rest.  The parts bound
        // disjoint terms of the objective, so the sum is admissible.
        const double head =
            prefix_objective +
            instance_.task(t).weight * completion_floor(used_, t);
        bound = head + suffix_dp_[free_mask(used_ | bit(t))];
        if (prunable(bound)) {
          ++stats_.pruned_by_bound;
          continue;
        }
        prune_bound = bound;
        if (options_.use_cuts) {
          // The busy-time cut joins via max() and is kept out of the sort
          // key below, so enabling cuts never reorders siblings — it can
          // only remove subtrees the DP bound would have descended into.
          prune_bound = std::max(
              bound, head + cut_bound(used_ | bit(t),
                                      free_mask(used_ | bit(t))));
          if (prunable(prune_bound)) {
            ++stats_.pruned_by_cut;
            continue;
          }
        }
      }
      children.push_back(
          {t, bound, prune_bound, evaluator_.greedy_completion(t)});
    }

    if (options_.use_bounds) {
      // Cheapest bound first (greedy completion breaks ties): descending
      // into the most promising branch early tightens the incumbent, which
      // retroactively prunes its siblings via the re-check below.
      std::sort(children.begin(), children.end(),
                [](const Child& a, const Child& b) {
                  if (a.bound != b.bound) {
                    return a.bound < b.bound;
                  }
                  if (a.greedy_completion != b.greedy_completion) {
                    return a.greedy_completion < b.greedy_completion;
                  }
                  return a.task < b.task;
                });
    }

    for (std::size_t c = 0; c < children.size(); ++c) {
      const Child& child = children[c];
      if (cancelled_) {
        return;
      }
      if (options_.use_bounds && prunable(child.bound)) {
        // Incumbent-aware sibling pruning: children are sorted by ascending
        // DP bound and the incumbent only ever improves, so once one
        // sibling is prunable the whole sorted tail is prunable with it.
        stats_.pruned_by_bound += children.size() - c;
        break;
      }
      if (options_.use_bounds && options_.use_cuts &&
          prunable(child.prune_bound)) {
        // Cut bounds are not monotone along the DP-sorted order, so a cut
        // prune skips only this sibling.
        ++stats_.pruned_by_cut;
        continue;
      }
      // Interior nodes warm-start from the parent basis; the leaf re-solves
      // from scratch so its objective is bit-identical with enumeration's.
      const bool leaf_push = depth + 1 == n_;
      const double pushed = evaluator_.push(child.task, leaf_push);
      ++stats_.nodes;
      used_ |= bit(child.task);

      bool descend = true;
      if (options_.use_bounds && evaluator_.depth() < n_) {
        // Refined bound: the exact (prefix + child) LP replaces the cheap
        // prefix-plus-one-task estimate.
        const double refined =
            std::max(child.bound, pushed + suffix_dp_[free_mask(used_)]);
        if (prunable(refined)) {
          ++stats_.pruned_by_bound;
          descend = false;
        } else if (options_.use_cuts &&
                   prunable(std::max(
                       refined,
                       pushed + cut_bound(used_, free_mask(used_))))) {
          ++stats_.pruned_by_cut;
          descend = false;
        }
      }
      if (descend) {
        dfs();
      }

      used_ &= ~bit(child.task);
      evaluator_.pop();
    }
  }

  const Instance& instance_;
  const BnbOptions& options_;
  std::size_t n_;
  double processors_;
  double total_volume_;
  OrderLpEvaluator evaluator_;
  std::vector<double> heights_;         ///< V_i / δ_eff per task
  /// cut_dominators_[j] = tasks that must complete before j under the
  /// identical-shape exchange cut (see the constructor).  Empty when cuts
  /// are off.
  std::vector<std::uint32_t> cut_dominators_;
  std::vector<double> set_volume_;      ///< Σ V over each subset
  std::vector<double> set_max_height_;  ///< max height over each subset
  std::vector<double> suffix_dp_;       ///< subset suffix lower bound
  std::vector<std::uint32_t> dominators_;
  BnbStats stats_;
  std::uint32_t used_ = 0;
  double incumbent_ = kInf;
  bool cancelled_ = false;
  std::vector<std::size_t> best_order_;
};

}  // namespace

BnbResult branch_and_bound(const Instance& instance,
                           const BnbOptions& options) {
  MALSCHED_EXPECTS_MSG(
      instance.size() <= options.max_tasks && instance.size() <= 20,
      "branch_and_bound is worst-case exponential in n; raise "
      "BnbOptions::max_tasks deliberately (hard cap 20: the subset-DP bound "
      "tables are 3·2^n doubles)");
  Searcher searcher(instance, options);
  return searcher.run();
}

}  // namespace malsched::core
