#include "malsched/core/makespan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "malsched/support/contracts.hpp"

namespace malsched::core {

double optimal_makespan(const Instance& instance) {
  double area = instance.total_volume() / instance.processors();
  double tallest = 0.0;
  for (std::size_t i = 0; i < instance.size(); ++i) {
    if (instance.task(i).volume > 0.0) {
      tallest = std::max(tallest,
                         instance.task(i).volume / instance.effective_width(i));
    }
  }
  return std::max(area, tallest);
}

bool deadlines_feasible(const Instance& instance,
                        std::span<const double> deadlines,
                        support::Tolerance tol) {
  return water_fill_feasible(instance, deadlines, tol);
}

LmaxResult minimize_lmax(const Instance& instance,
                         std::span<const double> due_dates, double precision) {
  MALSCHED_EXPECTS(due_dates.size() == instance.size());
  MALSCHED_EXPECTS(precision > 0.0);
  const std::size_t n = instance.size();

  const auto feasible_at = [&](double shift) {
    std::vector<double> deadlines(n);
    for (std::size_t i = 0; i < n; ++i) {
      deadlines[i] = due_dates[i] + shift;
    }
    return water_fill_feasible(instance, deadlines);
  };

  // Bracket the answer.  Lower bound: each task needs at least its height,
  // so L >= max(h_i - d_i); also the total area before any deadline bounds
  // L from below.  Upper bound: everything fits by Cmax*, so
  // L <= Cmax* - min d_i.
  double lo = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const Task& t = instance.task(i);
    if (t.volume > 0.0) {
      lo = std::max(lo, t.volume / instance.effective_width(i) - due_dates[i]);
    }
  }
  if (!std::isfinite(lo)) {
    return {0.0, 0};  // no positive-volume tasks: lateness can be pushed to 0
  }
  double min_due = due_dates[0];
  for (double d : due_dates) {
    min_due = std::min(min_due, d);
  }
  double hi = optimal_makespan(instance) - min_due;
  hi = std::max(hi, lo);

  LmaxResult result;
  if (feasible_at(lo)) {
    result.lmax = lo;
    return result;
  }
  MALSCHED_ASSERT(feasible_at(hi));
  while (hi - lo > precision * std::max(1.0, std::fabs(hi))) {
    const double mid = 0.5 * (lo + hi);
    ++result.iterations;
    if (feasible_at(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.lmax = hi;
  return result;
}

}  // namespace malsched::core
