#include "malsched/core/release_dates.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "malsched/core/bounds.hpp"
#include "malsched/flow/max_flow.hpp"
#include "malsched/support/contracts.hpp"

namespace malsched::core {

namespace {

struct SliceNetwork {
  std::vector<double> cuts;                   // slice boundaries, sorted
  flow::MaxFlow network;
  std::vector<std::vector<std::size_t>> task_slice_edge;  // [task][slice]
  double total_volume = 0.0;
  bool trivially_infeasible = false;

  SliceNetwork(std::size_t nodes) : network(nodes) {}
};

constexpr std::size_t kInvalidEdge = static_cast<std::size_t>(-1);

/// Builds the transportation network; node layout:
/// 0 = source, 1 = sink, 2..2+n-1 = tasks, then one node per slice.
SliceNetwork build_network(const Instance& instance,
                           std::span<const double> release,
                           std::span<const double> deadlines,
                           support::Tolerance tol) {
  const std::size_t n = instance.size();

  std::vector<double> cuts;
  cuts.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    cuts.push_back(release[i]);
    cuts.push_back(deadlines[i]);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end(),
                         [&](double a, double b) {
                           return support::approx_eq(a, b, tol);
                         }),
             cuts.end());

  const std::size_t slices = cuts.size() > 0 ? cuts.size() - 1 : 0;
  SliceNetwork result(2 + n + std::max<std::size_t>(slices, 1));
  result.cuts = cuts;
  result.task_slice_edge.assign(n, std::vector<std::size_t>(slices, kInvalidEdge));

  const auto task_node = [](std::size_t i) { return 2 + i; };
  const auto slice_node = [&](std::size_t j) { return 2 + n + j; };

  for (std::size_t j = 0; j < slices; ++j) {
    const double len = result.cuts[j + 1] - result.cuts[j];
    if (len <= tol.abs) {
      continue;
    }
    (void)result.network.add_edge(slice_node(j), 1,
                                  instance.processors() * len);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double volume = instance.task(i).volume;
    result.total_volume += volume;
    if (volume <= tol.abs) {
      continue;
    }
    if (deadlines[i] < release[i] - tol.abs) {
      result.trivially_infeasible = true;
      continue;
    }
    (void)result.network.add_edge(0, task_node(i), volume);
    const double cap = instance.effective_width(i);
    for (std::size_t j = 0; j < slices; ++j) {
      const double lo = result.cuts[j];
      const double hi = result.cuts[j + 1];
      const double len = hi - lo;
      if (len <= tol.abs) {
        continue;
      }
      if (lo >= release[i] - tol.slack(release[i]) &&
          hi <= deadlines[i] + tol.slack(deadlines[i])) {
        result.task_slice_edge[i][j] =
            result.network.add_edge(task_node(i), slice_node(j), cap * len);
      }
    }
  }
  return result;
}

}  // namespace

bool released_feasible(const Instance& instance,
                       std::span<const double> release,
                       std::span<const double> deadlines,
                       support::Tolerance tol) {
  MALSCHED_EXPECTS(release.size() == instance.size());
  MALSCHED_EXPECTS(deadlines.size() == instance.size());
  auto net = build_network(instance, release, deadlines, tol);
  if (net.trivially_infeasible) {
    return false;
  }
  const double routed = net.network.solve(0, 1);
  return support::approx_ge(routed, net.total_volume,
                            {tol.abs * 100, tol.rel * 100});
}

ReleasedScheduleResult released_schedule(const Instance& instance,
                                         std::span<const double> release,
                                         std::span<const double> deadlines,
                                         support::Tolerance tol) {
  MALSCHED_EXPECTS(release.size() == instance.size());
  MALSCHED_EXPECTS(deadlines.size() == instance.size());
  ReleasedScheduleResult result;
  auto net = build_network(instance, release, deadlines, tol);
  if (net.trivially_infeasible) {
    return result;
  }
  const double routed = net.network.solve(0, 1);
  if (!support::approx_ge(routed, net.total_volume,
                          {tol.abs * 100, tol.rel * 100})) {
    return result;
  }

  const std::size_t n = instance.size();
  std::vector<Step> steps;
  double cursor = 0.0;
  // A leading idle step keeps the schedule contiguous from t = 0.
  if (!net.cuts.empty() && net.cuts.front() > tol.abs) {
    steps.push_back({0.0, net.cuts.front(), std::vector<double>(n, 0.0)});
    cursor = net.cuts.front();
  }
  for (std::size_t j = 0; j + 1 < net.cuts.size(); ++j) {
    const double lo = net.cuts[j];
    const double hi = net.cuts[j + 1];
    const double len = hi - lo;
    if (len <= tol.abs) {
      continue;
    }
    Step step;
    step.begin = cursor;
    step.end = cursor + len;
    step.rates.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t edge = net.task_slice_edge[i][j];
      if (edge != kInvalidEdge) {
        const double volume = net.network.flow_on(edge);
        if (volume > tol.abs) {
          step.rates[i] = volume / len;
        }
      }
    }
    steps.push_back(std::move(step));
    cursor += len;
  }
  result.feasible = true;
  result.schedule = StepSchedule(n, std::move(steps));
  return result;
}

double released_makespan_lower_bound(const Instance& instance,
                                     std::span<const double> release) {
  MALSCHED_EXPECTS(release.size() == instance.size());
  double bound = 0.0;
  for (std::size_t i = 0; i < instance.size(); ++i) {
    if (instance.task(i).volume > 0.0) {
      bound = std::max(bound, release[i] + instance.task(i).volume /
                                               instance.effective_width(i));
    }
  }
  // Area released at or after each release level must still fit.
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const double level = release[i];
    double tail_volume = 0.0;
    for (std::size_t k = 0; k < instance.size(); ++k) {
      if (release[k] >= level) {
        tail_volume += instance.task(k).volume;
      }
    }
    bound = std::max(bound, level + tail_volume / instance.processors());
  }
  return bound;
}

ReleasedMakespanResult released_optimal_makespan(
    const Instance& instance, std::span<const double> release,
    double precision) {
  MALSCHED_EXPECTS(release.size() == instance.size());
  MALSCHED_EXPECTS(precision > 0.0);
  const std::size_t n = instance.size();

  double lo = released_makespan_lower_bound(instance, release);
  // Upper bound: run everything after the last release at the no-release
  // optimal makespan.
  double max_release = 0.0;
  for (double r : release) {
    max_release = std::max(max_release, r);
  }
  double hi = max_release + instance.total_volume() / instance.processors();
  for (std::size_t i = 0; i < n; ++i) {
    hi = std::max(hi, release[i] + instance.task(i).volume /
                          instance.effective_width(i));
  }

  const auto feasible_at = [&](double deadline) {
    const std::vector<double> deadlines(n, deadline);
    return released_feasible(instance, release, deadlines);
  };

  ReleasedMakespanResult result;
  if (feasible_at(lo)) {
    result.makespan = lo;
    return result;
  }
  MALSCHED_ASSERT(feasible_at(hi));
  while (hi - lo > precision * std::max(1.0, hi)) {
    const double mid = 0.5 * (lo + hi);
    ++result.iterations;
    if (feasible_at(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.makespan = hi;
  return result;
}

Instance remaining_instance(const Instance& instance,
                            std::span<const double> executed) {
  MALSCHED_EXPECTS(executed.size() == instance.size());
  std::vector<double> remaining(instance.size());
  for (std::size_t i = 0; i < instance.size(); ++i) {
    remaining[i] =
        std::clamp(instance.task(i).volume - executed[i], 0.0,
                   instance.task(i).volume);
  }
  return instance.with_volumes(remaining);
}

StepSchedule splice_frozen_prefix(const StepSchedule& prefix,
                                  const StepSchedule& suffix,
                                  support::Tolerance tol) {
  if (prefix.steps().empty()) {
    return suffix;
  }
  if (suffix.steps().empty()) {
    return prefix;
  }
  MALSCHED_EXPECTS(prefix.num_tasks() == suffix.num_tasks());
  MALSCHED_EXPECTS_MSG(
      support::approx_eq(prefix.steps().back().end,
                         suffix.steps().front().begin, tol),
      "suffix plan must start where the frozen prefix ends");
  std::vector<Step> steps(prefix.steps());
  // Snap the seam so the result passes StepSchedule's contiguity check even
  // when the replanner re-derived `now` with tolerance-level drift.
  double cursor = steps.back().end;
  for (Step step : suffix.steps()) {
    step.begin = cursor;
    if (step.end < step.begin) {
      step.end = step.begin;
    }
    cursor = step.end;
    steps.push_back(std::move(step));
  }
  return StepSchedule(prefix.num_tasks(), std::move(steps));
}

double released_weighted_completion_lower_bound(
    const Instance& instance, std::span<const double> release) {
  MALSCHED_EXPECTS(release.size() == instance.size());
  double release_term = 0.0;
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const Task& t = instance.task(i);
    if (t.volume > 0.0) {
      // Associated as w·r + (w·V)/δ_eff — the same grouping height_bound
      // uses — so the r = 0 degeneration to H(I) is bit-for-bit, not just
      // within rounding.
      release_term += t.weight * release[i] +
                      t.weight * t.volume / instance.effective_width(i);
    } else {
      // Zero-volume tasks complete at their release under the online
      // semantics, contributing w_i · r_i.
      release_term += t.weight * release[i];
    }
  }
  return std::max({squashed_area_bound(instance), height_bound(instance),
                   release_term});
}

ReleasedLmaxResult released_minimize_lmax(const Instance& instance,
                                          std::span<const double> release,
                                          std::span<const double> due_dates,
                                          double precision) {
  MALSCHED_EXPECTS(release.size() == instance.size());
  MALSCHED_EXPECTS(due_dates.size() == instance.size());
  MALSCHED_EXPECTS(precision > 0.0);
  const std::size_t n = instance.size();

  const auto feasible_at = [&](double shift) {
    std::vector<double> deadlines(n);
    for (std::size_t i = 0; i < n; ++i) {
      deadlines[i] = due_dates[i] + shift;
    }
    return released_feasible(instance, release, deadlines);
  };

  // Bracket: per-task height after release; upper via sequential-ish bound.
  double lo = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (instance.task(i).volume > 0.0) {
      lo = std::max(lo, release[i] +
                            instance.task(i).volume /
                                instance.effective_width(i) -
                            due_dates[i]);
    }
  }
  ReleasedLmaxResult result;
  if (!std::isfinite(lo)) {
    return result;
  }
  double max_release = 0.0;
  for (double r : release) {
    max_release = std::max(max_release, r);
  }
  const double horizon =
      max_release + instance.total_volume() / instance.processors() +
      [&] {
        double tallest = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          tallest = std::max(tallest, instance.task(i).volume /
                                          instance.effective_width(i));
        }
        return tallest;
      }();
  double min_due = due_dates[0];
  for (double d : due_dates) {
    min_due = std::min(min_due, d);
  }
  double hi = std::max(lo, horizon - min_due);

  if (feasible_at(lo)) {
    result.lmax = lo;
    return result;
  }
  MALSCHED_ASSERT(feasible_at(hi));
  while (hi - lo > precision * std::max(1.0, std::fabs(hi))) {
    const double mid = 0.5 * (lo + hi);
    ++result.iterations;
    if (feasible_at(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.lmax = hi;
  return result;
}

}  // namespace malsched::core
