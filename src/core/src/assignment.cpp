#include "malsched/core/assignment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <sstream>

#include "malsched/support/contracts.hpp"

namespace malsched::core {

namespace {

/// Snaps a ribbon coordinate that is numerically an integer onto it, so
/// accumulated offsets do not create sliver pieces.
double snap_coord(double x) noexcept {
  const double r = std::nearbyint(x);
  return std::fabs(x - r) <= 1e-9 ? r : x;
}

}  // namespace

ProcessorAssignment::ProcessorAssignment(
    std::size_t num_tasks,
    std::vector<std::vector<AssignmentPiece>> per_processor)
    : num_tasks_(num_tasks), per_processor_(std::move(per_processor)) {
  for (auto& pieces : per_processor_) {
    std::sort(pieces.begin(), pieces.end(),
              [](const AssignmentPiece& a, const AssignmentPiece& b) {
                return a.begin < b.begin;
              });
  }
}

std::vector<AssignmentPiece> ProcessorAssignment::task_pieces(
    std::size_t task) const {
  std::vector<AssignmentPiece> out;
  for (const auto& pieces : per_processor_) {
    for (const auto& piece : pieces) {
      if (piece.task == task) {
        out.push_back(piece);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const AssignmentPiece& a, const AssignmentPiece& b) {
              return a.begin < b.begin;
            });
  return out;
}

std::size_t ProcessorAssignment::count_at(std::size_t task, double t) const {
  std::size_t count = 0;
  for (const auto& pieces : per_processor_) {
    for (const auto& piece : pieces) {
      if (piece.task == task && piece.begin <= t && t < piece.end) {
        ++count;
        break;  // at most one piece per processor covers t
      }
    }
  }
  return count;
}

Validation ProcessorAssignment::validate(const Instance& instance,
                                         support::Tolerance tol) const {
  if (instance.size() != num_tasks_) {
    return {false, "task count mismatch"};
  }
  for (std::size_t p = 0; p < per_processor_.size(); ++p) {
    double cursor = 0.0;
    for (const auto& piece : per_processor_[p]) {
      if (piece.end < piece.begin - tol.abs) {
        return {false, "piece with negative duration"};
      }
      if (piece.begin < cursor - tol.slack(cursor)) {
        std::ostringstream out;
        out << "overlapping pieces on processor " << p;
        return {false, out.str()};
      }
      cursor = std::max(cursor, piece.end);
      if (piece.task >= num_tasks_) {
        return {false, "piece references unknown task"};
      }
    }
  }
  // Volume conservation: each piece contributes its duration (1 processor).
  std::vector<double> volume(num_tasks_, 0.0);
  for (const auto& pieces : per_processor_) {
    for (const auto& piece : pieces) {
      volume[piece.task] += piece.end - piece.begin;
    }
  }
  for (std::size_t i = 0; i < num_tasks_; ++i) {
    if (!support::approx_eq(volume[i], instance.task(i).volume,
                            {tol.abs * 100, tol.rel * 100})) {
      std::ostringstream out;
      out << "assigned volume " << volume[i] << " != " << instance.task(i).volume
          << " for task " << i;
      return {false, out.str()};
    }
  }
  return {};
}

ProcessorAssignment assign_processors(const Instance& instance,
                                      const ColumnSchedule& schedule,
                                      const AssignmentOptions& options) {
  MALSCHED_EXPECTS_MSG(instance.integral(),
                       "integer assignment needs integral P and widths");
  const auto tol = options.tol;
  const std::size_t n = instance.size();
  const auto num_procs = static_cast<std::size_t>(instance.processors());

  std::vector<std::vector<AssignmentPiece>> per_processor(num_procs);
  // Labels each task held at the end of the previous non-empty column
  // (post-relabelling), for the affinity pass.
  std::vector<std::vector<std::size_t>> prev_end_labels(n);

  for (std::size_t j = 0; j < schedule.num_columns(); ++j) {
    const double t0 = schedule.column_start(j);
    const double t1 = schedule.column_end(j);
    const double len = t1 - t0;
    if (len <= tol.abs) {
      continue;
    }

    // Ribbon packing in completion order (the stacking the paper uses:
    // earlier-finishing tasks lower).
    struct ColumnPiece {
      std::size_t task;
      std::size_t label;
      double begin;
      double end;
    };
    std::vector<ColumnPiece> pieces;
    std::vector<std::vector<std::size_t>> start_labels(n);
    std::vector<std::vector<std::size_t>> end_labels(n);

    double offset = 0.0;
    for (std::size_t pos = 0; pos < schedule.num_columns(); ++pos) {
      const std::size_t task = schedule.order()[pos];
      const double d = schedule.allocation(task, j);
      if (d <= tol.abs) {
        continue;
      }
      const double lo_band = snap_coord(offset);
      const double hi_band = snap_coord(offset + d);
      offset = hi_band;
      for (auto p = static_cast<std::size_t>(std::floor(lo_band));
           p < num_procs; ++p) {
        const double lo = std::max(lo_band, static_cast<double>(p));
        const double hi = std::min(hi_band, static_cast<double>(p) + 1.0);
        if (hi - lo <= 1e-12) {
          if (static_cast<double>(p) >= hi_band) {
            break;
          }
          continue;
        }
        // Ribbon coordinate -> time: earliest time to the lowest coordinate.
        const double begin = t0 + (lo - static_cast<double>(p)) * len;
        const double end = t0 + (hi - static_cast<double>(p)) * len;
        pieces.push_back({task, p, begin, end});
        if (begin <= t0 + tol.slack(t0)) {
          start_labels[task].push_back(p);
        }
        if (end >= t1 - tol.slack(t1)) {
          end_labels[task].push_back(p);
        }
      }
    }

    // Affinity relabelling: permute this column's labels so tasks that span
    // the previous boundary keep their processors.
    std::vector<std::size_t> relabel(num_procs,
                                     std::numeric_limits<std::size_t>::max());
    std::vector<bool> target_used(num_procs, false);
    if (options.improve_affinity) {
      for (std::size_t task = 0; task < n; ++task) {
        if (start_labels[task].empty() || prev_end_labels[task].empty()) {
          continue;
        }
        std::size_t matched = 0;
        for (const std::size_t cur : start_labels[task]) {
          if (matched >= prev_end_labels[task].size()) {
            break;
          }
          const std::size_t want = prev_end_labels[task][matched];
          if (!target_used[want] &&
              relabel[cur] == std::numeric_limits<std::size_t>::max()) {
            relabel[cur] = want;
            target_used[want] = true;
            ++matched;
          }
        }
      }
    }
    // Fill the rest of the permutation with unused targets.
    std::size_t next_target = 0;
    for (std::size_t p = 0; p < num_procs; ++p) {
      if (relabel[p] != std::numeric_limits<std::size_t>::max()) {
        continue;
      }
      while (target_used[next_target]) {
        ++next_target;
      }
      relabel[p] = next_target;
      target_used[next_target] = true;
    }

    // Emit pieces under the final labels and record end-of-column holders.
    for (auto& labels : prev_end_labels) {
      labels.clear();
    }
    for (const auto& piece : pieces) {
      const std::size_t label = relabel[piece.label];
      per_processor[label].push_back({piece.task, piece.begin, piece.end});
    }
    for (std::size_t task = 0; task < n; ++task) {
      for (const std::size_t cur : end_labels[task]) {
        prev_end_labels[task].push_back(relabel[cur]);
      }
    }
  }

  return ProcessorAssignment(n, std::move(per_processor));
}

namespace {

/// Shared rate-sequence walk: counts interior changes per task, optionally
/// skipping transitions whose new rate sits at the width cap (the paper's
/// band-only ¶-count).
std::size_t count_changes_impl(const ColumnSchedule& schedule,
                               const Instance* instance_for_caps,
                               support::Tolerance tol) {
  std::size_t changes = 0;
  for (std::size_t task = 0; task < schedule.num_tasks(); ++task) {
    // Rate sequence over non-empty columns up to the task's completion.
    std::vector<double> rates;
    for (std::size_t j = 0; j <= schedule.position(task); ++j) {
      if (schedule.column_length(j) <= tol.abs) {
        continue;
      }
      rates.push_back(schedule.allocation(task, j));
    }
    // Trim leading and trailing zero stretches (before first start / after
    // completion there is no "change" by the paper's convention).
    std::size_t first = 0;
    while (first < rates.size() && rates[first] <= tol.abs) {
      ++first;
    }
    std::size_t last = rates.size();
    while (last > first && rates[last - 1] <= tol.abs) {
      --last;
    }
    for (std::size_t k = first + 1; k < last; ++k) {
      if (support::approx_eq(rates[k], rates[k - 1], tol)) {
        continue;
      }
      if (instance_for_caps != nullptr &&
          support::approx_eq(rates[k],
                             instance_for_caps->effective_width(task), tol)) {
        continue;  // entering the saturated phase: not charged by Lemma 5
      }
      ++changes;
    }
  }
  return changes;
}

}  // namespace

std::size_t count_fractional_changes(const ColumnSchedule& schedule,
                                     support::Tolerance tol) {
  return count_changes_impl(schedule, nullptr, tol);
}

std::size_t count_band_changes(const Instance& instance,
                               const ColumnSchedule& schedule,
                               support::Tolerance tol) {
  MALSCHED_EXPECTS(instance.size() == schedule.num_tasks());
  return count_changes_impl(schedule, &instance, tol);
}

namespace {

/// Interior changes of one task's integer processor-count profile.
std::size_t integer_profile_changes(
    const std::vector<AssignmentPiece>& pieces, support::Tolerance tol) {
  if (pieces.empty()) {
    return 0;
  }
  // Sweep piece boundaries; +1 at begin, -1 at end.
  std::map<double, int> delta;
  for (const auto& piece : pieces) {
    if (piece.end - piece.begin <= tol.abs) {
      continue;
    }
    delta[piece.begin] += 1;
    delta[piece.end] -= 1;
  }
  // Merge numerically-equal event times.
  std::vector<std::pair<double, int>> events;
  for (const auto& [t, d] : delta) {
    if (!events.empty() && support::approx_eq(events.back().first, t, tol)) {
      events.back().second += d;
    } else {
      events.emplace_back(t, d);
    }
  }
  // Count profile: transitions excluding the first start and the last stop.
  std::size_t changes = 0;
  int count = 0;
  bool started = false;
  for (std::size_t k = 0; k < events.size(); ++k) {
    const int next = count + events[k].second;
    if (events[k].second == 0) {
      count = next;
      continue;  // touching pieces, no actual change
    }
    const bool is_first_start = !started && count == 0 && next > 0;
    const bool is_final_stop = next == 0 && k + 1 == events.size();
    if (!is_first_start && !is_final_stop) {
      ++changes;
    }
    if (next > 0) {
      started = true;
    }
    count = next;
  }
  return changes;
}

}  // namespace

PreemptionStats count_preemptions(const Instance& instance,
                                  const ColumnSchedule& schedule,
                                  const ProcessorAssignment& assignment,
                                  support::Tolerance tol) {
  PreemptionStats stats;
  stats.fractional_changes = count_fractional_changes(schedule, tol);
  stats.band_changes = count_band_changes(instance, schedule, tol);

  for (std::size_t task = 0; task < instance.size(); ++task) {
    const auto pieces = assignment.task_pieces(task);
    stats.integer_changes += integer_profile_changes(pieces, tol);
    if (pieces.empty()) {
      continue;
    }

    double completion = 0.0;
    double first_start = std::numeric_limits<double>::infinity();
    for (const auto& piece : pieces) {
      completion = std::max(completion, piece.end);
      first_start = std::min(first_start, piece.begin);
    }
    // Processor losses/gains: a piece that stops before the task completes
    // with no continuation on the same processor is a loss; a piece that
    // starts after the task began with no predecessor on the same processor
    // is a gain.  Continuity is a same-processor property, so walk the
    // per-processor lists.
    for (std::size_t p = 0; p < assignment.num_processors(); ++p) {
      const auto& plist = assignment.processor(p);
      for (std::size_t k = 0; k < plist.size(); ++k) {
        if (plist[k].task != task) {
          continue;
        }
        const bool has_next_same =
            k + 1 < plist.size() && plist[k + 1].task == task &&
            support::approx_eq(plist[k + 1].begin, plist[k].end, tol);
        const bool has_prev_same =
            k > 0 && plist[k - 1].task == task &&
            support::approx_eq(plist[k - 1].end, plist[k].begin, tol);
        if (plist[k].end < completion - tol.slack(completion) &&
            !has_next_same) {
          ++stats.processor_losses;
        }
        if (plist[k].begin > first_start + tol.slack(first_start) &&
            !has_prev_same) {
          ++stats.processor_gains;
        }
      }
    }
  }
  return stats;
}

}  // namespace malsched::core
