#include "malsched/core/io.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "malsched/core/assignment.hpp"
#include "malsched/support/contracts.hpp"

namespace malsched::core {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

}  // namespace

std::optional<Instance> read_instance(std::istream& in, std::string* error) {
  double processors = 0.0;
  bool have_processors = false;
  std::vector<Task> tasks;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) {
      continue;  // blank/comment line
    }
    if (keyword == "processors") {
      if (!(fields >> processors) || processors <= 0.0) {
        set_error(error, "line " + std::to_string(line_no) +
                             ": invalid processors value");
        return std::nullopt;
      }
      have_processors = true;
    } else if (keyword == "task") {
      Task t;
      if (!(fields >> t.volume >> t.width >> t.weight) || t.volume < 0.0 ||
          t.width <= 0.0 || t.weight < 0.0) {
        set_error(error,
                  "line " + std::to_string(line_no) + ": invalid task line");
        return std::nullopt;
      }
      tasks.push_back(t);
    } else {
      set_error(error, "line " + std::to_string(line_no) +
                           ": unknown keyword '" + keyword + "'");
      return std::nullopt;
    }
  }
  if (!have_processors) {
    set_error(error, "missing 'processors' line");
    return std::nullopt;
  }
  if (tasks.empty()) {
    set_error(error, "instance has no tasks");
    return std::nullopt;
  }
  return Instance(processors, std::move(tasks));
}

std::optional<Instance> parse_instance(const std::string& text,
                                       std::string* error) {
  std::istringstream in(text);
  return read_instance(in, error);
}

void write_instance(std::ostream& out, const Instance& instance) {
  out << "# malsched instance: n=" << instance.size() << "\n";
  out << "processors " << std::setprecision(17) << instance.processors()
      << "\n";
  for (const Task& t : instance.tasks()) {
    out << "task " << std::setprecision(17) << t.volume << " " << t.width
        << " " << t.weight << "\n";
  }
}

std::string format_instance(const Instance& instance) {
  std::ostringstream out;
  write_instance(out, instance);
  return out.str();
}

void write_schedule_csv(std::ostream& out, const ColumnSchedule& schedule) {
  out << "task,column,start,end,processors\n";
  for (std::size_t i = 0; i < schedule.num_tasks(); ++i) {
    for (std::size_t j = 0; j < schedule.num_columns(); ++j) {
      const double d = schedule.allocation(i, j);
      if (d <= 0.0) {
        continue;
      }
      out << i << "," << j << "," << std::setprecision(12)
          << schedule.column_start(j) << "," << schedule.column_end(j) << ","
          << d << "\n";
    }
  }
}

std::string render_gantt(const Instance& instance, const StepSchedule& schedule,
                         std::size_t columns) {
  MALSCHED_EXPECTS(columns > 0);
  const double horizon = schedule.makespan();
  std::ostringstream out;
  if (horizon <= 0.0) {
    out << "(empty schedule)\n";
    return out.str();
  }
  const double bucket = horizon / static_cast<double>(columns);
  static const char glyphs[] = " .:-=+*#%@";

  for (std::size_t i = 0; i < instance.size(); ++i) {
    out << "T" << std::setw(3) << std::left << i << "|";
    for (std::size_t b = 0; b < columns; ++b) {
      const double lo = bucket * static_cast<double>(b);
      const double hi = lo + bucket;
      // Average rate of task i in the bucket, scaled by its width cap.
      double area = 0.0;
      for (const auto& step : schedule.steps()) {
        const double overlap = std::min(hi, step.end) - std::max(lo, step.begin);
        if (overlap > 0.0) {
          area += step.rates[i] * overlap;
        }
      }
      const double share = area / (bucket * instance.effective_width(i));
      const auto level = static_cast<std::size_t>(
          std::clamp(share, 0.0, 1.0) * 9.0 + 0.5);
      out << glyphs[level];
    }
    out << "|\n";
  }
  std::ostringstream hor;
  hor << std::setprecision(4) << horizon;
  out << "     0" << std::string(columns > hor.str().size() + 1
                                     ? columns - hor.str().size() - 1
                                     : 1,
                                 ' ')
      << hor.str() << "\n";
  return out.str();
}

std::string render_processor_gantt(const ProcessorAssignment& assignment,
                                   std::size_t columns) {
  MALSCHED_EXPECTS(columns > 0);
  double horizon = 0.0;
  for (std::size_t p = 0; p < assignment.num_processors(); ++p) {
    for (const auto& piece : assignment.processor(p)) {
      horizon = std::max(horizon, piece.end);
    }
  }
  std::ostringstream out;
  if (horizon <= 0.0) {
    out << "(empty assignment)\n";
    return out.str();
  }
  const double bucket = horizon / static_cast<double>(columns);
  const auto glyph = [](std::size_t task) -> char {
    if (task < 10) {
      return static_cast<char>('0' + task);
    }
    if (task < 36) {
      return static_cast<char>('a' + (task - 10));
    }
    return '+';
  };

  for (std::size_t p = 0; p < assignment.num_processors(); ++p) {
    out << "P" << std::setw(3) << std::left << p << "|";
    for (std::size_t b = 0; b < columns; ++b) {
      const double lo = bucket * static_cast<double>(b);
      const double hi = lo + bucket;
      // The task covering most of the bucket on this processor.
      double best_cover = 0.0;
      std::size_t best_task = 0;
      bool any = false;
      for (const auto& piece : assignment.processor(p)) {
        const double overlap = std::min(hi, piece.end) - std::max(lo, piece.begin);
        if (overlap > best_cover) {
          best_cover = overlap;
          best_task = piece.task;
          any = true;
        }
      }
      out << (any && best_cover > bucket * 0.25 ? glyph(best_task) : '.');
    }
    out << "|\n";
  }
  std::ostringstream hor;
  hor << std::setprecision(4) << horizon;
  out << "     0" << std::string(columns > hor.str().size() + 1
                                     ? columns - hor.str().size() - 1
                                     : 1,
                                 ' ')
      << hor.str() << "\n";
  return out.str();
}

}  // namespace malsched::core
