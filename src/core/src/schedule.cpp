#include "malsched/core/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "malsched/support/contracts.hpp"

namespace malsched::core {

namespace {

Validation fail(std::string message) {
  return Validation{false, std::move(message)};
}

std::string describe_index(const char* what, std::size_t i) {
  std::ostringstream out;
  out << what << " " << i;
  return out.str();
}

}  // namespace

ColumnSchedule::ColumnSchedule(std::vector<std::size_t> order,
                               std::vector<double> boundaries,
                               support::Matrix alloc)
    : order_(std::move(order)),
      boundaries_(std::move(boundaries)),
      alloc_(std::move(alloc)) {
  MALSCHED_EXPECTS(order_.size() == boundaries_.size());
  MALSCHED_EXPECTS(alloc_.rows() == order_.size());
  MALSCHED_EXPECTS(alloc_.cols() == order_.size());
  position_.assign(order_.size(), 0);
  std::vector<bool> seen(order_.size(), false);
  for (std::size_t j = 0; j < order_.size(); ++j) {
    const std::size_t task = order_[j];
    MALSCHED_EXPECTS_MSG(task < order_.size(), "order entry out of range");
    MALSCHED_EXPECTS_MSG(!seen[task], "order contains a duplicate task");
    seen[task] = true;
    position_[task] = j;
  }
}

std::vector<double> ColumnSchedule::completions() const {
  std::vector<double> out(num_tasks());
  for (std::size_t i = 0; i < num_tasks(); ++i) {
    out[i] = completion(i);
  }
  return out;
}

double ColumnSchedule::weighted_completion(const Instance& instance) const {
  MALSCHED_EXPECTS(instance.size() == num_tasks());
  double total = 0.0;
  for (std::size_t i = 0; i < num_tasks(); ++i) {
    total += instance.task(i).weight * completion(i);
  }
  return total;
}

double ColumnSchedule::makespan() const {
  return boundaries_.empty() ? 0.0 : boundaries_.back();
}

Validation ColumnSchedule::validate(const Instance& instance,
                                    support::Tolerance tol) const {
  if (instance.size() != num_tasks()) {
    return fail("task count mismatch");
  }
  double prev = 0.0;
  for (std::size_t j = 0; j < num_columns(); ++j) {
    if (boundaries_[j] < prev - tol.slack(prev)) {
      return fail(describe_index("boundary decreases at column", j));
    }
    prev = boundaries_[j];
  }

  // Per-column capacity and per-task width caps.
  for (std::size_t j = 0; j < num_columns(); ++j) {
    double used = 0.0;
    for (std::size_t i = 0; i < num_tasks(); ++i) {
      const double d = alloc_(i, j);
      if (d < -tol.abs) {
        return fail(describe_index("negative allocation in column", j));
      }
      if (!support::approx_le(d, instance.effective_width(i), tol)) {
        return fail(describe_index("width cap exceeded by task", i));
      }
      used += d;
    }
    if (!support::approx_le(used, instance.processors(), tol)) {
      return fail(describe_index("processor capacity exceeded in column", j));
    }
  }

  // Volume conservation and no-allocation-after-completion.
  for (std::size_t i = 0; i < num_tasks(); ++i) {
    double volume = 0.0;
    for (std::size_t j = 0; j < num_columns(); ++j) {
      const double contribution = alloc_(i, j) * column_length(j);
      if (j > position_[i] && contribution > tol.slack(instance.task(i).volume)) {
        return fail(describe_index("allocation after completion for task", i));
      }
      volume += contribution;
    }
    if (!support::approx_eq(volume, instance.task(i).volume,
                            {tol.abs * 10, tol.rel * 10})) {
      std::ostringstream out;
      out << "volume mismatch for task " << i << ": scheduled " << volume
          << " vs required " << instance.task(i).volume;
      return fail(out.str());
    }
  }
  return {};
}

StepSchedule::StepSchedule(std::size_t num_tasks, std::vector<Step> steps)
    : num_tasks_(num_tasks), steps_(std::move(steps)) {
  for (const Step& s : steps_) {
    MALSCHED_EXPECTS(s.rates.size() == num_tasks_);
    MALSCHED_EXPECTS(s.end >= s.begin);
  }
}

std::vector<double> StepSchedule::completions(support::Tolerance tol) const {
  std::vector<double> out(num_tasks_, 0.0);
  for (const Step& s : steps_) {
    for (std::size_t i = 0; i < num_tasks_; ++i) {
      if (s.rates[i] > tol.abs && s.length() > 0.0) {
        out[i] = s.end;
      }
    }
  }
  return out;
}

double StepSchedule::weighted_completion(const Instance& instance,
                                         support::Tolerance tol) const {
  MALSCHED_EXPECTS(instance.size() == num_tasks_);
  const auto done = completions(tol);
  double total = 0.0;
  for (std::size_t i = 0; i < num_tasks_; ++i) {
    total += instance.task(i).weight * done[i];
  }
  return total;
}

double StepSchedule::makespan(support::Tolerance tol) const {
  const auto done = completions(tol);
  return done.empty() ? 0.0 : *std::max_element(done.begin(), done.end());
}

std::vector<double> StepSchedule::volumes() const {
  std::vector<double> out(num_tasks_, 0.0);
  for (const Step& s : steps_) {
    for (std::size_t i = 0; i < num_tasks_; ++i) {
      out[i] += s.rates[i] * s.length();
    }
  }
  return out;
}

Validation StepSchedule::validate(const Instance& instance,
                                  support::Tolerance tol) const {
  if (instance.size() != num_tasks_) {
    return fail("task count mismatch");
  }
  double cursor = 0.0;
  for (std::size_t k = 0; k < steps_.size(); ++k) {
    const Step& s = steps_[k];
    if (!support::approx_eq(s.begin, cursor, tol)) {
      return fail(describe_index("non-contiguous step", k));
    }
    cursor = s.end;
    double used = 0.0;
    for (std::size_t i = 0; i < num_tasks_; ++i) {
      const double r = s.rates[i];
      if (r < -tol.abs) {
        return fail(describe_index("negative rate in step", k));
      }
      if (!support::approx_le(r, instance.effective_width(i), tol)) {
        return fail(describe_index("width cap exceeded in step", k));
      }
      used += r;
    }
    if (!support::approx_le(used, instance.processors(), tol)) {
      return fail(describe_index("capacity exceeded in step", k));
    }
  }
  const auto vol = volumes();
  for (std::size_t i = 0; i < num_tasks_; ++i) {
    if (!support::approx_eq(vol[i], instance.task(i).volume,
                            {tol.abs * 10, tol.rel * 10})) {
      std::ostringstream out;
      out << "volume mismatch for task " << i << ": scheduled " << vol[i]
          << " vs required " << instance.task(i).volume;
      return fail(out.str());
    }
  }
  return {};
}

ColumnSchedule StepSchedule::to_columns(const Instance& instance,
                                        support::Tolerance tol) const {
  MALSCHED_EXPECTS(instance.size() == num_tasks_);
  const std::size_t n = num_tasks_;
  const auto done = completions(tol);

  // Completion order, ties broken by task index for determinism.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (done[a] != done[b]) {
      return done[a] < done[b];
    }
    return a < b;
  });

  std::vector<double> boundaries(n);
  for (std::size_t j = 0; j < n; ++j) {
    boundaries[j] = done[order[j]];
  }

  // Average each task's rate over each column (Theorem 3).
  support::Matrix alloc(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const double lo = j == 0 ? 0.0 : boundaries[j - 1];
    const double hi = boundaries[j];
    const double len = hi - lo;
    if (len <= 0.0) {
      continue;
    }
    for (const Step& s : steps_) {
      const double overlap =
          std::min(hi, s.end) - std::max(lo, s.begin);
      if (overlap <= 0.0) {
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (s.rates[i] > 0.0) {
          alloc(i, j) += s.rates[i] * overlap / len;
        }
      }
    }
  }
  return ColumnSchedule(std::move(order), std::move(boundaries),
                        std::move(alloc));
}

StepSchedule to_steps(const ColumnSchedule& schedule) {
  const std::size_t n = schedule.num_tasks();
  std::vector<Step> steps;
  steps.reserve(n);
  double cursor = 0.0;
  for (std::size_t j = 0; j < schedule.num_columns(); ++j) {
    const double end = schedule.column_end(j);
    if (end <= cursor) {
      continue;  // zero-length column (completion tie)
    }
    Step s;
    s.begin = cursor;
    s.end = end;
    s.rates.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      s.rates[i] = schedule.allocation(i, j);
    }
    steps.push_back(std::move(s));
    cursor = end;
  }
  return StepSchedule(n, std::move(steps));
}

}  // namespace malsched::core
