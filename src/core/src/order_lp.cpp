#include "malsched/core/order_lp.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "malsched/support/contracts.hpp"

namespace malsched::core {

namespace {

/// Variable indexing for the order LP: first the n boundary variables C_j,
/// then the lower-triangular x_{a,j} (j <= a) packed row by row.
struct VarMap {
  std::size_t n;

  [[nodiscard]] std::size_t c(std::size_t j) const { return j; }
  [[nodiscard]] std::size_t x(std::size_t a, std::size_t j) const {
    MALSCHED_ASSERT(j <= a && a < n);
    // Row a starts after rows 0..a-1, which hold 1 + 2 + ... + a entries.
    return n + a * (a + 1) / 2 + j;
  }
};

}  // namespace

lp::Model build_order_lp(const Instance& instance,
                         std::span<const std::size_t> order) {
  // `order` may be a duplicate-free prefix: the LP then covers only the
  // induced subinstance (n = prefix length), columns and boundaries
  // renumbered by prefix position.
  MALSCHED_EXPECTS(order.size() <= instance.size());
  const std::size_t n = order.size();
  const double P = instance.processors();
  const VarMap vars{n};

  // Variables are addressed by dense index throughout (VarMap); names are
  // debugging sugar the enumeration/branch-and-bound hot path cannot afford
  // to format, so they stay empty.
  lp::Model model;
  for (std::size_t j = 0; j < n; ++j) {
    model.add_variable();
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t j = 0; j <= a; ++j) {
      model.add_variable();
    }
  }

  // Objective: Σ w_{σ(a)} C_a.
  for (std::size_t a = 0; a < n; ++a) {
    model.set_objective(vars.c(a), instance.task(order[a]).weight);
  }

  // Boundary ordering C_j >= C_{j-1}.
  for (std::size_t j = 1; j < n; ++j) {
    model.add_constraint(
        {{vars.c(j), 1.0}, {vars.c(j - 1), -1.0}},
        lp::Sense::GreaterEqual, 0.0);
  }

  // Column capacity: Σ_a x_{a,j} − P(C_j − C_{j-1}) <= 0.
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<lp::Term> terms;
    for (std::size_t a = j; a < n; ++a) {
      terms.push_back({vars.x(a, j), 1.0});
    }
    terms.push_back({vars.c(j), -P});
    if (j > 0) {
      terms.push_back({vars.c(j - 1), P});
    }
    model.add_constraint(std::move(terms), lp::Sense::LessEqual, 0.0);
  }

  // Width caps: x_{a,j} − δ(C_j − C_{j-1}) <= 0.
  for (std::size_t a = 0; a < n; ++a) {
    const double width = instance.effective_width(order[a]);
    for (std::size_t j = 0; j <= a; ++j) {
      std::vector<lp::Term> terms{{vars.x(a, j), 1.0}, {vars.c(j), -width}};
      if (j > 0) {
        terms.push_back({vars.c(j - 1), width});
      }
      model.add_constraint(std::move(terms), lp::Sense::LessEqual, 0.0);
    }
  }

  // Volume conservation: Σ_{j<=a} x_{a,j} = V.
  for (std::size_t a = 0; a < n; ++a) {
    std::vector<lp::Term> terms;
    for (std::size_t j = 0; j <= a; ++j) {
      terms.push_back({vars.x(a, j), 1.0});
    }
    model.add_constraint(std::move(terms), lp::Sense::Equal,
                         instance.task(order[a]).volume);
  }
  return model;
}

OrderLpResult solve_order_lp(const Instance& instance,
                             std::span<const std::size_t> order) {
  MALSCHED_EXPECTS(order.size() == instance.size());
  const std::size_t n = instance.size();
  const VarMap vars{n};
  const auto model = build_order_lp(instance, order);
  const auto solution = lp::solve(model);

  OrderLpResult result;
  result.status = solution.status;
  if (!solution.optimal()) {
    return result;
  }
  result.objective = solution.objective;

  // Reconstruct the column schedule: rates = volume / column length.
  std::vector<double> boundaries(n);
  for (std::size_t j = 0; j < n; ++j) {
    boundaries[j] = solution.values[vars.c(j)];
  }
  support::Matrix alloc(n, n, 0.0);
  for (std::size_t a = 0; a < n; ++a) {
    const std::size_t task = order[a];
    for (std::size_t j = 0; j <= a; ++j) {
      const double length =
          boundaries[j] - (j == 0 ? 0.0 : boundaries[j - 1]);
      const double volume = solution.values[vars.x(a, j)];
      if (length > 0.0 && volume > 0.0) {
        alloc(task, j) = volume / length;
      }
    }
  }
  result.schedule = ColumnSchedule(
      std::vector<std::size_t>(order.begin(), order.end()),
      std::move(boundaries), std::move(alloc));
  return result;
}

namespace {

/// Compact objective-only formulation: substituting column lengths
/// L_j = C_j − C_{j-1} ≥ 0 eliminates the n−1 boundary-ordering rows (and
/// their phase-1 artificials), and width caps with δ_eff = P are implied by
/// the column capacity row and dropped.  Same optimum as build_order_lp —
/// the objective Σ_a w_a C_a becomes Σ_j (Σ_{a≥j} w_a) L_j — but the
/// simplex tableau is ~25% smaller with half the artificials, which is
/// where the branch-and-bound hot path spends its time.
lp::Model build_order_lp_compact(const Instance& instance,
                                 std::span<const std::size_t> order) {
  MALSCHED_EXPECTS(order.size() <= instance.size());
  const std::size_t n = order.size();
  const double P = instance.processors();
  const VarMap vars{n};  // L_j takes the C_j slot; x packing unchanged

  lp::Model model;
  for (std::size_t v = 0; v < n + n * (n + 1) / 2; ++v) {
    model.add_variable();
  }

  // Objective: Σ_a w_a C_a = Σ_j (suffix weight from position j) L_j.
  double suffix_weight = 0.0;
  for (std::size_t a = 0; a < n; ++a) {
    suffix_weight += instance.task(order[a]).weight;
  }
  for (std::size_t j = 0; j < n; ++j) {
    model.set_objective(vars.c(j), suffix_weight);
    suffix_weight -= instance.task(order[j]).weight;
  }

  // Column capacity: Σ_a x_{a,j} − P·L_j <= 0.
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<lp::Term> terms;
    terms.reserve(n - j + 1);
    for (std::size_t a = j; a < n; ++a) {
      terms.push_back({vars.x(a, j), 1.0});
    }
    terms.push_back({vars.c(j), -P});
    model.add_constraint(std::move(terms), lp::Sense::LessEqual, 0.0);
  }

  // Width caps: x_{a,j} − δ·L_j <= 0, only where δ_eff < P binds beyond
  // the column capacity.
  for (std::size_t a = 0; a < n; ++a) {
    const double width = instance.effective_width(order[a]);
    if (width >= P) {
      continue;
    }
    for (std::size_t j = 0; j <= a; ++j) {
      model.add_constraint({{vars.x(a, j), 1.0}, {vars.c(j), -width}},
                           lp::Sense::LessEqual, 0.0);
    }
  }

  // Volume conservation: Σ_{j<=a} x_{a,j} = V.
  for (std::size_t a = 0; a < n; ++a) {
    std::vector<lp::Term> terms;
    terms.reserve(a + 1);
    for (std::size_t j = 0; j <= a; ++j) {
      terms.push_back({vars.x(a, j), 1.0});
    }
    model.add_constraint(std::move(terms), lp::Sense::Equal,
                         instance.task(order[a]).volume);
  }
  return model;
}

}  // namespace

double order_lp_objective(const Instance& instance,
                          std::span<const std::size_t> order) {
  const auto model = build_order_lp_compact(instance, order);
  const auto solution = lp::solve(model);
  if (!solution.optimal()) {
    return std::numeric_limits<double>::infinity();
  }
  return solution.objective;
}

namespace detail {

/// Warm-started simplex over the compact order LP, specialized for the
/// push/pop access pattern of branch-and-bound.
///
/// The tableau for a prefix of length k holds, per position a: the column
/// length L_a, the volume splits x_{a,j} (j <= a), one capacity row
/// (Σ x_{·,a} <= P·L_a), width rows x_{a,j} <= δ_a·L_j where δ_eff < P,
/// and one volume row (Σ_j x_{a,j} = V_a).  Pushing position k:
///
/// * new columns x_{k,j} (j < k) touch exactly one *old* row — capacity
///   row j with coefficient +1 — so their reduced form B⁻¹·e_row is the
///   current tableau column of that row's slack variable, a plain copy;
///   L_k and x_{k,k} touch no old rows at all;
/// * new rows are reduced against the basis in one pass (only the width
///   rows reference an old variable, L_j);
/// * the new volume row enters with its artificial basic at V_k — the only
///   infeasibility — so a phase-1 restricted to artificial cost followed
///   by a re-priced phase 2 re-optimizes in a few pivots, not a
///   from-scratch two-phase solve.
///
/// pop() restores the parent's full state from a per-depth snapshot.
class IncrementalOrderLp {
 public:
  explicit IncrementalOrderLp(const Instance& instance)
      : instance_(&instance), processors_(instance.processors()) {}

  double push(std::size_t task, bool solve = true) {
    snapshots_.push_back(state_);
    State& s = state_;
    const std::size_t position = s.position_weights.size();
    const Task& t = instance_->task(task);
    const double width = instance_->effective_width(task);

    // --- new columns -----------------------------------------------------
    // x_{k,j} for j < position: reduced column = capacity row j's slack
    // column (its only old-row coefficient is +1 in that row).
    std::vector<std::size_t> x_cols(position + 1);
    for (std::size_t j = 0; j < position; ++j) {
      x_cols[j] = append_column_copy(s.cap_slack_col[j]);
    }
    // L_k and x_{k,k} appear in new rows only.
    const std::size_t l_col = append_zero_column();
    x_cols[position] = append_zero_column();
    s.l_col.push_back(l_col);

    // --- new rows (reduced against the current basis) --------------------
    // Capacity row k: x_{k,k} − P·L_k <= 0 — all-new variables, no
    // reduction needed.  Future pushes add their x_{·,k} into this row via
    // the slack-column copy above, which is why the slack column index is
    // recorded.
    {
      const std::size_t row = append_row();
      s.tab[row][x_cols[position]] = 1.0;
      s.tab[row][l_col] = -processors_;
      const std::size_t slack = append_zero_column();
      s.tab[row][slack] = 1.0;
      s.basis.push_back(slack);
      s.rhs.push_back(0.0);
      s.cap_slack_col.push_back(slack);
    }
    // Width rows x_{k,j} − δ·L_j <= 0 (skipped when the capacity row
    // already implies them).  For j < position they reference the old
    // variable L_j and must be reduced if it is basic.
    if (width < processors_) {
      for (std::size_t j = 0; j <= position; ++j) {
        const std::size_t row = append_row();
        s.rhs.push_back(0.0);
        s.tab[row][x_cols[j]] = 1.0;
        const std::size_t lj = j == position ? l_col : s.l_col[j];
        s.tab[row][lj] += -width;
        reduce_row_against_basis(row);
        const std::size_t slack = append_zero_column();
        s.tab[row][slack] = 1.0;
        s.basis.push_back(slack);
      }
    }
    // Volume row: Σ_j x_{k,j} = V_k — all-new variables; its artificial
    // starts basic at V_k, the single primal infeasibility to repair.
    {
      const std::size_t row = append_row();
      for (std::size_t j = 0; j <= position; ++j) {
        s.tab[row][x_cols[j]] = 1.0;
      }
      const std::size_t artificial = append_zero_column();
      s.tab[row][artificial] = 1.0;
      s.artificial[artificial] = 1;
      s.basis.push_back(artificial);
      s.rhs.push_back(t.volume);
    }
    s.position_weights.push_back(t.weight);
    s.tasks.push_back(task);
    if (!solve) {
      // Structure-only push (the caller wants a from-scratch value, e.g. a
      // bit-reproducible leaf): the new artificial stays basic at V_k and
      // is repaired by the next solving push's phase 1.
      return 0.0;
    }

    // --- phase 1 (artificial cost), then re-priced phase 2 ---------------
    costs_.assign(s.cols, 0.0);
    for (std::size_t c = 0; c < s.cols; ++c) {
      if (s.artificial[c] != 0) {
        costs_[c] = 1.0;
      }
    }
    if (!optimize(/*allow_artificials=*/true)) {
      return resolve_from_scratch();
    }
    double residual = 0.0;
    for (std::size_t i = 0; i < s.rows(); ++i) {
      if (s.artificial[s.basis[i]] != 0) {
        residual += s.rhs[i];
      }
    }
    if (residual > kEps * std::max(1.0, t.volume)) {
      // The order LP is always feasible; a positive residual means the
      // warm-started basis drifted numerically.
      return resolve_from_scratch();
    }
    costs_.assign(s.cols, 0.0);
    double suffix_weight = 0.0;
    for (std::size_t j = s.position_weights.size(); j-- > 0;) {
      suffix_weight += s.position_weights[j];
      costs_[s.l_col[j]] = suffix_weight;
    }
    if (!optimize(/*allow_artificials=*/false)) {
      return resolve_from_scratch();
    }
    double objective = 0.0;
    for (std::size_t i = 0; i < s.rows(); ++i) {
      objective += costs_[s.basis[i]] * s.rhs[i];
    }
    return objective;
  }

  void pop() {
    MALSCHED_ASSERT(!snapshots_.empty());
    state_ = std::move(snapshots_.back());
    snapshots_.pop_back();
  }

 private:
  struct State {
    std::vector<std::vector<double>> tab;  ///< rows over columns
    std::vector<double> rhs;
    std::vector<std::size_t> basis;        ///< per row: basic column
    std::vector<std::uint8_t> artificial;  ///< per column
    std::vector<std::size_t> cap_slack_col;  ///< per position
    std::vector<std::size_t> l_col;          ///< per position
    std::vector<double> position_weights;
    std::vector<std::size_t> tasks;          ///< pushed prefix, for fallback
    std::size_t cols = 0;

    [[nodiscard]] std::size_t rows() const noexcept { return tab.size(); }
  };

  static constexpr double kEps = 1e-9;
  static constexpr double kSnap = 1e-12;

  [[nodiscard]] static double snap(double v) noexcept {
    return (v <= kSnap && v >= -kSnap) ? 0.0 : v;
  }

  std::size_t append_zero_column() {
    for (auto& row : state_.tab) {
      row.push_back(0.0);
    }
    state_.artificial.push_back(0);
    return state_.cols++;
  }

  std::size_t append_column_copy(std::size_t source) {
    for (auto& row : state_.tab) {
      row.push_back(row[source]);
    }
    state_.artificial.push_back(0);
    return state_.cols++;
  }

  std::size_t append_row() {
    state_.tab.emplace_back(state_.cols, 0.0);
    return state_.rows() - 1;
  }

  /// Expresses a freshly appended row (coefficients *and* right-hand side)
  /// in the current basis: one pass over the old rows suffices because
  /// every reduced tableau row carries an identity on the basis columns.
  void reduce_row_against_basis(std::size_t row) {
    State& s = state_;
    auto& target = s.tab[row];
    for (std::size_t i = 0; i + 1 < s.rows(); ++i) {
      const double factor = target[s.basis[i]];
      if (factor == 0.0) {
        continue;
      }
      const auto& source = s.tab[i];
      for (std::size_t c = 0; c < s.cols; ++c) {
        target[c] = snap(target[c] - factor * source[c]);
      }
      target[s.basis[i]] = 0.0;
      s.rhs[row] = snap(s.rhs[row] - factor * s.rhs[i]);
    }
  }

  /// Primal simplex on `costs_` from the current (feasible) basis.
  /// Returns false when the iteration budget is exhausted.
  bool optimize(bool allow_artificials) {
    State& s = state_;
    reduced_ = costs_;
    for (std::size_t i = 0; i < s.rows(); ++i) {
      const double cb = costs_[s.basis[i]];
      if (cb == 0.0) {
        continue;
      }
      const auto& row = s.tab[i];
      for (std::size_t c = 0; c < s.cols; ++c) {
        if (row[c] != 0.0) {
          reduced_[c] = snap(reduced_[c] - cb * row[c]);
        }
      }
    }

    const std::size_t cap = 50 * (s.rows() + s.cols) + 200;
    const std::size_t bland_after = cap / 2;
    for (std::size_t iteration = 0;; ++iteration) {
      if (iteration >= cap) {
        return false;
      }
      const bool use_bland = iteration >= bland_after;
      std::size_t entering = s.cols;
      for (std::size_t c = 0; c < s.cols; ++c) {
        if (!allow_artificials && s.artificial[c] != 0) {
          continue;
        }
        if (reduced_[c] >= -kEps) {
          continue;
        }
        if (use_bland) {
          entering = c;
          break;
        }
        if (entering == s.cols || reduced_[c] < reduced_[entering]) {
          entering = c;
        }
      }
      if (entering == s.cols) {
        return true;
      }

      std::size_t leaving = s.rows();
      for (std::size_t i = 0; i < s.rows(); ++i) {
        const double coeff = s.tab[i][entering];
        if (coeff <= kEps) {
          continue;
        }
        if (leaving == s.rows()) {
          leaving = i;
          continue;
        }
        const double lhs = s.rhs[i] * s.tab[leaving][entering];
        const double rhs_cmp = s.rhs[leaving] * coeff;
        if (lhs < rhs_cmp ||
            (!(rhs_cmp < lhs) && s.basis[i] < s.basis[leaving])) {
          leaving = i;
        }
      }
      // Costs are non-negative (phase 1) or suffix weights (phase 2), so
      // the LP is bounded below; a missing leaving row would mean the
      // basis drifted — treat as a failed warm start.
      if (leaving == s.rows()) {
        return false;
      }
      pivot(leaving, entering);
    }
  }

  void pivot(std::size_t row, std::size_t col) {
    State& s = state_;
    auto& pivot_row = s.tab[row];
    const double pivot_value = pivot_row[col];
    for (double& v : pivot_row) {
      v = snap(v / pivot_value);
    }
    s.rhs[row] = snap(s.rhs[row] / pivot_value);
    pivot_row[col] = 1.0;
    for (std::size_t i = 0; i < s.rows(); ++i) {
      if (i == row) {
        continue;
      }
      const double factor = s.tab[i][col];
      if (factor == 0.0) {
        continue;
      }
      auto& target = s.tab[i];
      for (std::size_t c = 0; c < s.cols; ++c) {
        target[c] = snap(target[c] - factor * pivot_row[c]);
      }
      target[col] = 0.0;
      s.rhs[i] = snap(s.rhs[i] - factor * s.rhs[row]);
    }
    const double cost_factor = reduced_[col];
    if (cost_factor != 0.0) {
      for (std::size_t c = 0; c < s.cols; ++c) {
        reduced_[c] = snap(reduced_[c] - cost_factor * pivot_row[c]);
      }
      reduced_[col] = 0.0;
    }
    s.basis[row] = col;
  }

  /// Warm-start failure fallback: the tableau stays primal feasible (every
  /// ratio-test pivot preserves feasibility), so future pushes remain
  /// valid; only this node's value is recomputed exactly.
  double resolve_from_scratch() {
    return order_lp_objective(*instance_, state_.tasks);
  }

  const Instance* instance_;
  double processors_;
  State state_;
  std::vector<State> snapshots_;
  std::vector<double> costs_;
  std::vector<double> reduced_;
};

}  // namespace detail

OrderLpEvaluator::OrderLpEvaluator(const Instance& instance)
    : instance_(&instance),
      lp_(std::make_unique<detail::IncrementalOrderLp>(instance)) {
  const std::size_t n = instance.size();
  prefix_.reserve(n);
  objectives_.reserve(n);
  volumes_.reserve(n);
  profiles_.reserve(n + 1);
  profiles_.emplace_back(instance.processors());
}

OrderLpEvaluator::~OrderLpEvaluator() = default;
OrderLpEvaluator::OrderLpEvaluator(OrderLpEvaluator&&) noexcept = default;
OrderLpEvaluator& OrderLpEvaluator::operator=(OrderLpEvaluator&&) noexcept =
    default;

double OrderLpEvaluator::push(std::size_t task, bool exact) {
  MALSCHED_EXPECTS(task < instance_->size());
  MALSCHED_EXPECTS(prefix_.size() < instance_->size());
  MALSCHED_EXPECTS_MSG(
      std::find(prefix_.begin(), prefix_.end(), task) == prefix_.end(),
      "task already in the prefix");
  prefix_.push_back(task);
  ++lp_evaluations_;
  double objective;
  if (exact) {
    // Leaves re-solve from scratch so the reported objective is
    // bit-identical with what enumeration computes for the same order.
    // The incremental state is still extended (snapshot + appended
    // rows/columns, no re-optimization) so pop() and deeper pushes stay
    // consistent — the next warm-started push's phase 1 repairs every
    // outstanding artificial, not just its own.
    lp_->push(task, /*solve=*/false);
    objective = order_lp_objective(*instance_, prefix_);
  } else {
    objective = lp_->push(task);
  }
  objectives_.push_back(objective);
  volumes_.push_back(prefix_volume() + instance_->task(task).volume);
  profiles_.push_back(profiles_.back());
  profiles_.back().place(instance_->effective_width(task),
                         instance_->task(task).volume);
  return objective;
}

void OrderLpEvaluator::pop() {
  MALSCHED_EXPECTS(!prefix_.empty());
  prefix_.pop_back();
  objectives_.pop_back();
  volumes_.pop_back();
  profiles_.pop_back();
  lp_->pop();
}

double OrderLpEvaluator::objective() const noexcept {
  return objectives_.empty() ? 0.0 : objectives_.back();
}

double OrderLpEvaluator::prefix_volume() const noexcept {
  return volumes_.empty() ? 0.0 : volumes_.back();
}

double OrderLpEvaluator::greedy_completion(std::size_t task) const {
  return profiles_.back().peek(instance_->effective_width(task),
                               instance_->task(task).volume);
}

ExactOrderLpResult solve_order_lp_exact(const Instance& instance,
                                        std::span<const std::size_t> order) {
  // Certification is only meaningful for a complete order; prefixes would
  // silently certify a subinstance.
  MALSCHED_EXPECTS(order.size() == instance.size());
  const auto model = build_order_lp(instance, order);
  const auto solution = lp::solve_exact(model);
  ExactOrderLpResult result;
  result.status = solution.status;
  if (solution.optimal()) {
    result.objective = solution.objective;
  }
  return result;
}

}  // namespace malsched::core
