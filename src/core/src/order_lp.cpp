#include "malsched/core/order_lp.hpp"

#include <limits>
#include <vector>

#include "malsched/support/contracts.hpp"

namespace malsched::core {

namespace {

/// Variable indexing for the order LP: first the n boundary variables C_j,
/// then the lower-triangular x_{a,j} (j <= a) packed row by row.
struct VarMap {
  std::size_t n;

  [[nodiscard]] std::size_t c(std::size_t j) const { return j; }
  [[nodiscard]] std::size_t x(std::size_t a, std::size_t j) const {
    MALSCHED_ASSERT(j <= a && a < n);
    // Row a starts after rows 0..a-1, which hold 1 + 2 + ... + a entries.
    return n + a * (a + 1) / 2 + j;
  }
};

}  // namespace

lp::Model build_order_lp(const Instance& instance,
                         std::span<const std::size_t> order) {
  MALSCHED_EXPECTS(order.size() == instance.size());
  const std::size_t n = instance.size();
  const double P = instance.processors();
  const VarMap vars{n};

  lp::Model model;
  for (std::size_t j = 0; j < n; ++j) {
    model.add_variable("C" + std::to_string(j));
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t j = 0; j <= a; ++j) {
      model.add_variable("x" + std::to_string(a) + "_" + std::to_string(j));
    }
  }

  // Objective: Σ w_{σ(a)} C_a.
  for (std::size_t a = 0; a < n; ++a) {
    model.set_objective(vars.c(a), instance.task(order[a]).weight);
  }

  // Boundary ordering C_j >= C_{j-1}.
  for (std::size_t j = 1; j < n; ++j) {
    model.add_constraint(
        {{vars.c(j), 1.0}, {vars.c(j - 1), -1.0}},
        lp::Sense::GreaterEqual, 0.0);
  }

  // Column capacity: Σ_a x_{a,j} − P(C_j − C_{j-1}) <= 0.
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<lp::Term> terms;
    for (std::size_t a = j; a < n; ++a) {
      terms.push_back({vars.x(a, j), 1.0});
    }
    terms.push_back({vars.c(j), -P});
    if (j > 0) {
      terms.push_back({vars.c(j - 1), P});
    }
    model.add_constraint(std::move(terms), lp::Sense::LessEqual, 0.0);
  }

  // Width caps: x_{a,j} − δ(C_j − C_{j-1}) <= 0.
  for (std::size_t a = 0; a < n; ++a) {
    const double width = instance.effective_width(order[a]);
    for (std::size_t j = 0; j <= a; ++j) {
      std::vector<lp::Term> terms{{vars.x(a, j), 1.0}, {vars.c(j), -width}};
      if (j > 0) {
        terms.push_back({vars.c(j - 1), width});
      }
      model.add_constraint(std::move(terms), lp::Sense::LessEqual, 0.0);
    }
  }

  // Volume conservation: Σ_{j<=a} x_{a,j} = V.
  for (std::size_t a = 0; a < n; ++a) {
    std::vector<lp::Term> terms;
    for (std::size_t j = 0; j <= a; ++j) {
      terms.push_back({vars.x(a, j), 1.0});
    }
    model.add_constraint(std::move(terms), lp::Sense::Equal,
                         instance.task(order[a]).volume);
  }
  return model;
}

OrderLpResult solve_order_lp(const Instance& instance,
                             std::span<const std::size_t> order) {
  const std::size_t n = instance.size();
  const VarMap vars{n};
  const auto model = build_order_lp(instance, order);
  const auto solution = lp::solve(model);

  OrderLpResult result;
  result.status = solution.status;
  if (!solution.optimal()) {
    return result;
  }
  result.objective = solution.objective;

  // Reconstruct the column schedule: rates = volume / column length.
  std::vector<double> boundaries(n);
  for (std::size_t j = 0; j < n; ++j) {
    boundaries[j] = solution.values[vars.c(j)];
  }
  support::Matrix alloc(n, n, 0.0);
  for (std::size_t a = 0; a < n; ++a) {
    const std::size_t task = order[a];
    for (std::size_t j = 0; j <= a; ++j) {
      const double length =
          boundaries[j] - (j == 0 ? 0.0 : boundaries[j - 1]);
      const double volume = solution.values[vars.x(a, j)];
      if (length > 0.0 && volume > 0.0) {
        alloc(task, j) = volume / length;
      }
    }
  }
  result.schedule = ColumnSchedule(
      std::vector<std::size_t>(order.begin(), order.end()),
      std::move(boundaries), std::move(alloc));
  return result;
}

double order_lp_objective(const Instance& instance,
                          std::span<const std::size_t> order) {
  const auto model = build_order_lp(instance, order);
  const auto solution = lp::solve(model);
  if (!solution.optimal()) {
    return std::numeric_limits<double>::infinity();
  }
  return solution.objective;
}

ExactOrderLpResult solve_order_lp_exact(const Instance& instance,
                                        std::span<const std::size_t> order) {
  const auto model = build_order_lp(instance, order);
  const auto solution = lp::solve_exact(model);
  ExactOrderLpResult result;
  result.status = solution.status;
  if (solution.optimal()) {
    result.objective = solution.objective;
  }
  return result;
}

}  // namespace malsched::core
