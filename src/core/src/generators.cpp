#include "malsched/core/generators.hpp"

#include <algorithm>
#include <cmath>

#include "malsched/support/contracts.hpp"

namespace malsched::core {

const char* family_name(Family family) noexcept {
  switch (family) {
    case Family::Uniform:
      return "uniform";
    case Family::UniformIntegral:
      return "uniform-integral";
    case Family::EqualWeights:
      return "equal-weights";
    case Family::EqualWeightsVolumes:
      return "equal-weights-volumes";
    case Family::WideTasks:
      return "wide-tasks";
    case Family::HomogeneousHalf:
      return "homogeneous-half";
    case Family::UnitWidth:
      return "unit-width";
    case Family::BandwidthLike:
      return "bandwidth-like";
    case Family::HeavyTailVolumes:
      return "heavy-tail-volumes";
  }
  return "?";
}

std::vector<Family> all_families() {
  return {Family::Uniform,          Family::UniformIntegral,
          Family::EqualWeights,     Family::EqualWeightsVolumes,
          Family::WideTasks,        Family::HomogeneousHalf,
          Family::UnitWidth,        Family::BandwidthLike,
          Family::HeavyTailVolumes};
}

Instance generate(const GeneratorConfig& config, support::Rng& rng) {
  MALSCHED_EXPECTS(config.num_tasks > 0);
  MALSCHED_EXPECTS(config.processors > 0.0);

  const double P = config.family == Family::HomogeneousHalf
                       ? 1.0
                       : config.processors;
  std::vector<Task> tasks;
  tasks.reserve(config.num_tasks);

  for (std::size_t i = 0; i < config.num_tasks; ++i) {
    Task t;
    switch (config.family) {
      case Family::Uniform:
        t.volume = rng.uniform_pos(1.0);
        t.width = rng.uniform_pos(P);
        t.weight = rng.uniform_pos(1.0);
        break;
      case Family::UniformIntegral: {
        t.volume = rng.uniform_pos(1.0);
        const auto max_width =
            std::max<std::int64_t>(1, static_cast<std::int64_t>(P));
        t.width = static_cast<double>(rng.uniform_int(1, max_width));
        t.weight = rng.uniform_pos(1.0);
        break;
      }
      case Family::EqualWeights:
        t.volume = rng.uniform_pos(1.0);
        t.width = rng.uniform_pos(P);
        t.weight = 1.0;
        break;
      case Family::EqualWeightsVolumes:
        t.volume = 1.0;
        t.width = rng.uniform_pos(P);
        t.weight = 1.0;
        break;
      case Family::WideTasks:
        t.volume = rng.uniform_pos(1.0);
        // Strictly above P/2, strictly below P.
        t.width = P / 2.0 + rng.uniform_pos(P / 2.0) * (1.0 - 1e-9);
        t.weight = 1.0;
        break;
      case Family::HomogeneousHalf:
        t.volume = 1.0;
        t.width = 0.5 + rng.uniform_pos(0.5);
        t.weight = 1.0;
        break;
      case Family::UnitWidth:
        t.volume = rng.uniform_pos(1.0);
        t.width = 1.0;
        t.weight = rng.uniform_pos(1.0);
        break;
      case Family::BandwidthLike:
        // Many narrow "connections" against a fat server pipe.
        t.volume = rng.pareto(0.1, 1.5);
        t.width = rng.uniform_pos(std::max(1.0, P / 8.0));
        t.weight = rng.uniform_pos(1.0);
        break;
      case Family::HeavyTailVolumes:
        t.volume = rng.pareto(0.05, 1.2);
        t.width = rng.uniform_pos(P);
        t.weight = rng.uniform_pos(1.0);
        break;
    }
    tasks.push_back(t);
  }
  return Instance(P, std::move(tasks));
}

}  // namespace malsched::core
