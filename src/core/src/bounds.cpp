#include "malsched/core/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "malsched/support/contracts.hpp"

namespace malsched::core {

double squashed_area_bound(const Instance& instance) {
  const std::size_t n = instance.size();
  // Smith order: V_i / w_i non-decreasing.  Zero-weight tasks sort last
  // (infinite ratio) and contribute nothing to the weighted sum anyway.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Task& ta = instance.task(a);
    const Task& tb = instance.task(b);
    // Compare V_a/w_a < V_b/w_b without dividing (weights may be zero).
    return ta.volume * tb.weight < tb.volume * ta.weight;
  });

  // A = Σ_i (suffix weight from i) * V_i / P over the sorted order, which
  // equals Σ w_j C_j of the squashed single-machine schedule.
  double suffix_weight = instance.total_weight();
  double bound = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const Task& t = instance.task(order[k]);
    bound += suffix_weight * t.volume / instance.processors();
    suffix_weight -= t.weight;
  }
  return bound;
}

double height_bound(const Instance& instance) {
  double bound = 0.0;
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const Task& t = instance.task(i);
    if (t.volume > 0.0) {
      bound += t.weight * t.volume / instance.effective_width(i);
    }
  }
  return bound;
}

double mixed_lower_bound(const Instance& instance, std::span<const double> v1) {
  MALSCHED_EXPECTS(v1.size() == instance.size());
  std::vector<double> v2(instance.size());
  for (std::size_t i = 0; i < instance.size(); ++i) {
    MALSCHED_EXPECTS(v1[i] >= -1e-12);
    const double first = std::clamp(v1[i], 0.0, instance.task(i).volume);
    v2[i] = instance.task(i).volume - first;
  }
  std::vector<double> v1_clamped(v1.begin(), v1.end());
  for (std::size_t i = 0; i < instance.size(); ++i) {
    v1_clamped[i] = std::clamp(v1_clamped[i], 0.0, instance.task(i).volume);
  }
  return squashed_area_bound(instance.with_volumes(v1_clamped)) +
         height_bound(instance.with_volumes(v2));
}

double mean_busy_time_bound(const Instance& instance) {
  const double p = instance.processors();
  double total_volume = 0.0;
  double sum_vh = 0.0;      // Σ V_i h_i
  double base = 0.0;        // Σ w_i floor_i
  double have = 0.0;        // Σ V_i floor_i
  double min_ratio = std::numeric_limits<double>::infinity();  // min w_i/V_i
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const Task& t = instance.task(i);
    if (t.volume <= 0.0) {
      continue;  // completes at 0; contributes nothing to either side
    }
    const double h = t.volume / instance.effective_width(i);
    const double floor_i = std::max(t.volume / p, h);
    total_volume += t.volume;
    sum_vh += t.volume * h;
    base += t.weight * floor_i;
    have += t.volume * floor_i;
    min_ratio = std::min(min_ratio, t.weight / t.volume);
  }
  const double cut = total_volume * total_volume / (2.0 * p) + 0.5 * sum_vh;
  if (cut > have && std::isfinite(min_ratio)) {
    // The one-cut LP raises the cheapest weight-per-volume completion time
    // until Σ V_i C_i meets the cut; everything else stays on its floor.
    base += (cut - have) * min_ratio;
  }
  return base;
}

double best_simple_lower_bound(const Instance& instance) {
  return std::max(squashed_area_bound(instance), height_bound(instance));
}

}  // namespace malsched::core
