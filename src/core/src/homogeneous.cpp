#include "malsched/core/homogeneous.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "malsched/support/contracts.hpp"

namespace malsched::core {

namespace {

/// Shared recurrence skeleton; Number is double or Rational.
template <typename Number>
std::vector<Number> completions_impl(std::span<const Number> delta,
                                     std::span<const std::size_t> order) {
  MALSCHED_EXPECTS(delta.size() == order.size());
  const std::size_t n = order.size();
  std::vector<Number> c(n);
  Number prev{};       // C_{σ(i-1)}
  Number prev_prev{};  // C_{σ(i-2)}
  for (std::size_t i = 0; i < n; ++i) {
    const Number& d_cur = delta[order[i]];
    Number next;
    if (i == 0) {
      next = Number(1) / d_cur;
    } else {
      const Number& d_prev = delta[order[i - 1]];
      // Remaining volume after sharing column i-1 with the previous task:
      // 1 − (1 − δ_prev)(C_{i-1} − C_{i-2}), finished at rate δ_cur.
      next = prev +
             (Number(1) - (Number(1) - d_prev) * (prev - prev_prev)) / d_cur;
    }
    c[order[i]] = next;
    prev_prev = prev;
    prev = next;
  }
  return c;
}

}  // namespace

std::vector<double> homogeneous_completions(std::span<const double> delta,
                                            std::span<const std::size_t> order) {
  for (double d : delta) {
    MALSCHED_EXPECTS_MSG(d >= 0.5 && d <= 1.0, "δ must lie in [1/2, 1]");
  }
  return completions_impl<double>(delta, order);
}

double homogeneous_total(std::span<const double> delta,
                         std::span<const std::size_t> order) {
  const auto c = homogeneous_completions(delta, order);
  double total = 0.0;
  for (double v : c) {
    total += v;
  }
  return total;
}

std::vector<numeric::Rational> homogeneous_completions_exact(
    std::span<const numeric::Rational> delta,
    std::span<const std::size_t> order) {
  for (const auto& d : delta) {
    MALSCHED_EXPECTS_MSG(
        d >= numeric::Rational(1, 2) && d <= numeric::Rational(1),
        "δ must lie in [1/2, 1]");
  }
  return completions_impl<numeric::Rational>(delta, order);
}

numeric::Rational homogeneous_total_exact(
    std::span<const numeric::Rational> delta,
    std::span<const std::size_t> order) {
  const auto c = homogeneous_completions_exact(delta, order);
  numeric::Rational total;
  for (const auto& v : c) {
    total += v;
  }
  return total;
}

bool reversal_symmetric_exact(std::span<const numeric::Rational> delta,
                              std::span<const std::size_t> order) {
  std::vector<std::size_t> rev(order.begin(), order.end());
  std::reverse(rev.begin(), rev.end());
  return homogeneous_total_exact(delta, order) ==
         homogeneous_total_exact(delta, rev);
}

HomogeneousBest best_homogeneous_order(std::span<const double> delta) {
  MALSCHED_EXPECTS_MSG(delta.size() <= 10,
                       "order enumeration is factorial; use <= 10 tasks");
  std::vector<std::size_t> order(delta.size());
  std::iota(order.begin(), order.end(), 0);
  HomogeneousBest best;
  best.total = std::numeric_limits<double>::infinity();
  do {
    const double total = homogeneous_total(delta, order);
    ++best.orders_tried;
    if (total < best.total) {
      best.total = total;
      best.order = order;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

bool five_task_condition(std::span<const double> delta,
                         std::span<const std::size_t> order) {
  MALSCHED_EXPECTS(order.size() == 5);
  const double di = delta[order[0]];
  const double dj = delta[order[1]];
  const double dl = delta[order[3]];
  const double dm = delta[order[4]];
  return (dl - dj) * (di - dm) <= 1e-12;
}

}  // namespace malsched::core
