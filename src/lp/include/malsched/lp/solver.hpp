#pragma once

/// \file solver.hpp
/// Public solver entry points: a double-precision dense two-phase simplex
/// (workhorse for the Monte-Carlo sweeps) and an exact rational simplex
/// (optimality certificates; stands in for the Sage verification the paper
/// mentions).  Both share one templated implementation.

#include <cstddef>
#include <vector>

#include "malsched/lp/model.hpp"
#include "malsched/numeric/rational.hpp"

namespace malsched::lp {

enum class SolveStatus { Optimal, Infeasible, Unbounded, IterationLimit };

/// Returns a short human-readable status name.
[[nodiscard]] const char* to_string(SolveStatus status) noexcept;

struct SimplexOptions {
  /// Pivot significance tolerance (ignored by the exact solver).
  double eps = 1e-9;
  /// Hard iteration cap; 0 = automatic (50 * (rows + cols)).
  std::size_t max_iterations = 0;
  /// Use Bland's rule from the start (guaranteed termination, slower).
  bool bland = false;
};

struct Solution {
  SolveStatus status = SolveStatus::IterationLimit;
  double objective = 0.0;
  std::vector<double> values;  ///< one per model variable
  std::size_t iterations = 0;

  [[nodiscard]] bool optimal() const noexcept {
    return status == SolveStatus::Optimal;
  }
};

struct ExactSolution {
  SolveStatus status = SolveStatus::IterationLimit;
  numeric::Rational objective;
  std::vector<numeric::Rational> values;
  std::size_t iterations = 0;

  [[nodiscard]] bool optimal() const noexcept {
    return status == SolveStatus::Optimal;
  }
};

/// Solves `model` in double precision.
[[nodiscard]] Solution solve(const Model& model, const SimplexOptions& options = {});

/// Solves `model` exactly over the rationals.  Model coefficients (doubles)
/// are converted exactly, so the answer is the exact optimum of the LP as
/// stated in binary floating point.
[[nodiscard]] ExactSolution solve_exact(const Model& model,
                                        const SimplexOptions& options = {});

}  // namespace malsched::lp
