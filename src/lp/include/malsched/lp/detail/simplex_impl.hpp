#pragma once

/// \file simplex_impl.hpp
/// Shared dense two-phase primal simplex, templated on the scalar type.
/// Instantiated for double (tolerance-based pivoting) and
/// numeric::Rational (exact pivoting).  Internal header — include
/// malsched/lp/solver.hpp instead.

#include <cstddef>
#include <limits>
#include <vector>

#include "malsched/lp/model.hpp"
#include "malsched/lp/solver.hpp"
#include "malsched/numeric/rational.hpp"
#include "malsched/support/contracts.hpp"

namespace malsched::lp::detail {

/// Scalar policy: significance tests for double use the configured epsilon;
/// for Rational they are exact.
template <typename S>
struct ScalarPolicy;

template <>
struct ScalarPolicy<double> {
  double eps;
  [[nodiscard]] static double from_double(double v) noexcept { return v; }
  [[nodiscard]] static double to_double(double v) noexcept { return v; }
  [[nodiscard]] bool is_zero(double v) const noexcept {
    return v <= eps && v >= -eps;
  }
  [[nodiscard]] bool is_pos(double v) const noexcept { return v > eps; }
  [[nodiscard]] bool is_neg(double v) const noexcept { return v < -eps; }
  /// Drops numerical dust after pivots to limit drift.
  [[nodiscard]] double snap(double v) const noexcept {
    return (v <= eps * 1e-3 && v >= -eps * 1e-3) ? 0.0 : v;
  }
};

template <>
struct ScalarPolicy<numeric::Rational> {
  double eps;  // unused; kept for interface symmetry
  [[nodiscard]] static numeric::Rational from_double(double v) {
    return numeric::Rational::from_double(v);
  }
  [[nodiscard]] static double to_double(const numeric::Rational& v) noexcept {
    return v.to_double();
  }
  [[nodiscard]] bool is_zero(const numeric::Rational& v) const noexcept {
    return v.is_zero();
  }
  [[nodiscard]] bool is_pos(const numeric::Rational& v) const noexcept {
    return v.signum() > 0;
  }
  [[nodiscard]] bool is_neg(const numeric::Rational& v) const noexcept {
    return v.signum() < 0;
  }
  [[nodiscard]] numeric::Rational snap(numeric::Rational v) const noexcept {
    return v;
  }
};

/// Dense tableau simplex.  All variables are non-negative; rows are
/// normalized to non-negative right-hand sides; phase 1 minimizes the sum of
/// artificials, phase 2 the real objective.  Entering-variable selection is
/// Dantzig with an automatic switch to Bland's rule (anti-cycling) after a
/// stall budget.
template <typename S>
class DenseSimplex {
 public:
  struct Result {
    SolveStatus status = SolveStatus::IterationLimit;
    S objective{};
    std::vector<S> values;
    std::size_t iterations = 0;
  };

  explicit DenseSimplex(const Model& model, const SimplexOptions& options)
      : policy_{options.eps}, options_(options) {
    build(model);
  }

  Result run() {
    Result result;
    if (!phase1(result)) {
      return result;
    }
    phase2(result);
    return result;
  }

 private:
  using RowVec = std::vector<S>;

  void build(const Model& model) {
    num_structural_ = model.num_variables();

    // Count auxiliary columns.
    std::size_t slacks = 0;
    std::size_t artificials = 0;
    for (const auto& row : model.rows()) {
      const bool rhs_neg = row.rhs < 0.0;
      Sense sense = row.sense;
      if (rhs_neg && sense != Sense::Equal) {
        sense = sense == Sense::LessEqual ? Sense::GreaterEqual : Sense::LessEqual;
      }
      if (sense == Sense::LessEqual) {
        ++slacks;
      } else if (sense == Sense::GreaterEqual) {
        ++slacks;  // surplus
        ++artificials;
      } else {
        ++artificials;
      }
    }

    num_slack_ = slacks;
    num_artificial_ = artificials;
    const std::size_t cols = num_structural_ + num_slack_ + num_artificial_;
    const std::size_t rows = model.rows().size();

    tableau_.assign(rows, RowVec(cols, S{}));
    rhs_.assign(rows, S{});
    basis_.assign(rows, 0);
    objective_.assign(cols, S{});
    for (std::size_t j = 0; j < num_structural_; ++j) {
      objective_[j] = ScalarPolicy<S>::from_double(model.objective()[j]);
    }

    std::size_t next_slack = num_structural_;
    std::size_t next_artificial = num_structural_ + num_slack_;
    for (std::size_t i = 0; i < rows; ++i) {
      const auto& row = model.rows()[i];
      const bool flip = row.rhs < 0.0;
      const double sign = flip ? -1.0 : 1.0;
      for (const Term& t : row.terms) {
        tableau_[i][t.var] = ScalarPolicy<S>::from_double(sign * t.coeff);
      }
      rhs_[i] = ScalarPolicy<S>::from_double(sign * row.rhs);

      Sense sense = row.sense;
      if (flip && sense != Sense::Equal) {
        sense = sense == Sense::LessEqual ? Sense::GreaterEqual : Sense::LessEqual;
      }
      if (sense == Sense::LessEqual) {
        tableau_[i][next_slack] = ScalarPolicy<S>::from_double(1.0);
        basis_[i] = next_slack;
        ++next_slack;
      } else if (sense == Sense::GreaterEqual) {
        tableau_[i][next_slack] = ScalarPolicy<S>::from_double(-1.0);
        ++next_slack;
        tableau_[i][next_artificial] = ScalarPolicy<S>::from_double(1.0);
        basis_[i] = next_artificial;
        ++next_artificial;
      } else {
        tableau_[i][next_artificial] = ScalarPolicy<S>::from_double(1.0);
        basis_[i] = next_artificial;
        ++next_artificial;
      }
    }
  }

  [[nodiscard]] std::size_t max_iterations() const noexcept {
    if (options_.max_iterations != 0) {
      return options_.max_iterations;
    }
    return 50 * (tableau_.size() + column_count()) + 200;
  }

  [[nodiscard]] std::size_t column_count() const noexcept {
    return num_structural_ + num_slack_ + num_artificial_;
  }

  /// Prices out `costs` against the current basis, producing the reduced
  /// cost row and (negated) objective offset.
  void price_out(const std::vector<S>& costs, std::vector<S>& reduced,
                 S& offset) const {
    reduced = costs;
    offset = S{};
    for (std::size_t i = 0; i < tableau_.size(); ++i) {
      const S& cb = costs[basis_[i]];
      if (policy_.is_zero(cb)) {
        continue;
      }
      const RowVec& row = tableau_[i];
      for (std::size_t j = 0; j < reduced.size(); ++j) {
        if (!policy_.is_zero(row[j])) {
          reduced[j] = policy_.snap(reduced[j] - cb * row[j]);
        }
      }
      offset = offset + cb * rhs_[i];
    }
  }

  /// One simplex loop over the given reduced-cost row.  `allowed_cols`
  /// bounds the entering candidates (phase 2 excludes artificials).
  /// Returns Optimal or Unbounded / IterationLimit.
  SolveStatus iterate(std::vector<S>& reduced, S& objective_value,
                      std::size_t allowed_cols, std::size_t& iterations) {
    const std::size_t iter_cap = max_iterations();
    const std::size_t bland_after = options_.bland ? 0 : iter_cap / 2;

    for (;;) {
      if (iterations >= iter_cap) {
        return SolveStatus::IterationLimit;
      }
      const bool use_bland = iterations >= bland_after;

      // Entering column: most negative reduced cost (Dantzig) or first
      // negative (Bland).
      std::size_t entering = allowed_cols;
      for (std::size_t j = 0; j < allowed_cols; ++j) {
        if (!policy_.is_neg(reduced[j])) {
          continue;
        }
        if (use_bland) {
          entering = j;
          break;
        }
        if (entering == allowed_cols || reduced[j] < reduced[entering]) {
          entering = j;
        }
      }
      if (entering == allowed_cols) {
        return SolveStatus::Optimal;
      }

      // Ratio test; ties break on smallest basis index (lexicographic-ish,
      // pairs with Bland for anti-cycling).
      std::size_t leaving = tableau_.size();
      for (std::size_t i = 0; i < tableau_.size(); ++i) {
        const S& pivot_coeff = tableau_[i][entering];
        if (!policy_.is_pos(pivot_coeff)) {
          continue;
        }
        if (leaving == tableau_.size()) {
          leaving = i;
          continue;
        }
        // Compare rhs_[i]/T[i][e] vs rhs_[l]/T[l][e] without division:
        // denominators are positive.
        const S lhs = rhs_[i] * tableau_[leaving][entering];
        const S rhs_cmp = rhs_[leaving] * pivot_coeff;
        if (lhs < rhs_cmp ||
            (!(rhs_cmp < lhs) && basis_[i] < basis_[leaving])) {
          leaving = i;
        }
      }
      if (leaving == tableau_.size()) {
        return SolveStatus::Unbounded;
      }

      pivot(leaving, entering, reduced, objective_value);
      ++iterations;
    }
  }

  void pivot(std::size_t row, std::size_t col, std::vector<S>& reduced,
             S& objective_value) {
    RowVec& pivot_row = tableau_[row];
    const S pivot_value = pivot_row[col];
    MALSCHED_ASSERT(policy_.is_pos(pivot_value));

    for (S& v : pivot_row) {
      v = policy_.snap(v / pivot_value);
    }
    rhs_[row] = policy_.snap(rhs_[row] / pivot_value);
    pivot_row[col] = ScalarPolicy<S>::from_double(1.0);

    for (std::size_t i = 0; i < tableau_.size(); ++i) {
      if (i == row) {
        continue;
      }
      const S factor = tableau_[i][col];
      if (policy_.is_zero(factor)) {
        tableau_[i][col] = S{};
        continue;
      }
      RowVec& target = tableau_[i];
      for (std::size_t j = 0; j < target.size(); ++j) {
        target[j] = policy_.snap(target[j] - factor * pivot_row[j]);
      }
      target[col] = S{};
      rhs_[i] = policy_.snap(rhs_[i] - factor * rhs_[row]);
    }

    const S cost_factor = reduced[col];
    if (!policy_.is_zero(cost_factor)) {
      for (std::size_t j = 0; j < reduced.size(); ++j) {
        reduced[j] = policy_.snap(reduced[j] - cost_factor * pivot_row[j]);
      }
      reduced[col] = S{};
      objective_value = objective_value + cost_factor * rhs_[row];
    }

    basis_[row] = col;
  }

  /// Phase 1.  Returns false (filling `result`) when infeasible or stalled.
  bool phase1(typename DenseSimplex::Result& result) {
    if (num_artificial_ == 0) {
      return true;  // all-slack basis is already feasible
    }
    std::vector<S> phase1_costs(column_count(), S{});
    for (std::size_t j = num_structural_ + num_slack_; j < column_count(); ++j) {
      phase1_costs[j] = ScalarPolicy<S>::from_double(1.0);
    }
    std::vector<S> reduced;
    S offset{};
    price_out(phase1_costs, reduced, offset);
    // Current phase-1 objective value is `offset` (sum of artificial rhs).
    S value = offset;
    // Minimizing: track as value - improvements; iterate() adds
    // cost_factor * rhs, which is negative progress.  We only need the final
    // recomputed value below, so pass a scratch accumulator.
    const SolveStatus status =
        iterate(reduced, value, column_count(), result.iterations);
    if (status == SolveStatus::IterationLimit) {
      result.status = status;
      return false;
    }
    MALSCHED_ASSERT(status == SolveStatus::Optimal);  // phase 1 is bounded

    // Recompute the phase-1 objective from the basis (robust against the
    // incremental accumulator drifting in double).
    S infeasibility{};
    for (std::size_t i = 0; i < tableau_.size(); ++i) {
      if (basis_[i] >= num_structural_ + num_slack_) {
        infeasibility = infeasibility + rhs_[i];
      }
    }
    if (policy_.is_pos(infeasibility)) {
      result.status = SolveStatus::Infeasible;
      return false;
    }

    // Drive degenerate artificials out of the basis where possible; redundant
    // rows (all-zero) keep their artificial pinned at zero, which is harmless
    // because phase 2 never lets artificial columns enter.
    for (std::size_t i = 0; i < tableau_.size(); ++i) {
      if (basis_[i] < num_structural_ + num_slack_) {
        continue;
      }
      for (std::size_t j = 0; j < num_structural_ + num_slack_; ++j) {
        if (!policy_.is_zero(tableau_[i][j])) {
          // The entering coefficient may be negative here, which is fine
          // because the row's rhs is zero.
          pivot_degenerate(i, j);
          break;
        }
      }
    }
    return true;
  }

  /// Pivot used to expel a zero-valued artificial; the pivot element may be
  /// negative (rhs is zero, so feasibility is preserved).
  void pivot_degenerate(std::size_t row, std::size_t col) {
    RowVec& pivot_row = tableau_[row];
    const S pivot_value = pivot_row[col];
    MALSCHED_ASSERT(!policy_.is_zero(pivot_value));
    for (S& v : pivot_row) {
      v = policy_.snap(v / pivot_value);
    }
    rhs_[row] = policy_.snap(rhs_[row] / pivot_value);
    pivot_row[col] = ScalarPolicy<S>::from_double(1.0);
    for (std::size_t i = 0; i < tableau_.size(); ++i) {
      if (i == row) {
        continue;
      }
      const S factor = tableau_[i][col];
      if (policy_.is_zero(factor)) {
        continue;
      }
      RowVec& target = tableau_[i];
      for (std::size_t j = 0; j < target.size(); ++j) {
        target[j] = policy_.snap(target[j] - factor * pivot_row[j]);
      }
      target[col] = S{};
      rhs_[i] = policy_.snap(rhs_[i] - factor * rhs_[row]);
    }
    basis_[row] = col;
  }

  void phase2(typename DenseSimplex::Result& result) {
    std::vector<S> reduced;
    S offset{};
    price_out(objective_, reduced, offset);
    S value{};
    const SolveStatus status = iterate(reduced, value, num_structural_ + num_slack_,
                                       result.iterations);
    result.status = status;
    if (status != SolveStatus::Optimal) {
      return;
    }
    result.values.assign(num_structural_, S{});
    for (std::size_t i = 0; i < tableau_.size(); ++i) {
      if (basis_[i] < num_structural_) {
        result.values[basis_[i]] = rhs_[i];
      }
    }
    S objective{};
    for (std::size_t j = 0; j < num_structural_; ++j) {
      objective = objective + objective_[j] * result.values[j];
    }
    result.objective = objective;
  }

  ScalarPolicy<S> policy_;
  SimplexOptions options_;

  std::size_t num_structural_ = 0;
  std::size_t num_slack_ = 0;
  std::size_t num_artificial_ = 0;

  std::vector<RowVec> tableau_;
  std::vector<S> rhs_;
  std::vector<S> objective_;
  std::vector<std::size_t> basis_;
};

}  // namespace malsched::lp::detail
