#pragma once

/// \file model.hpp
/// Linear program container.
///
/// The library needs exactly one LP family — the Corollary-1 "optimal
/// schedule for a fixed completion order" program — but the model type is a
/// general minimization LP over non-negative variables so the solver can be
/// tested independently:
///
///     minimize    c^T x
///     subject to  a_k^T x  {<=, >=, ==}  b_k     for each constraint k
///                 x >= 0
///
/// Variables are identified by dense indices returned from add_variable.

#include <cstddef>
#include <string>
#include <vector>

namespace malsched::lp {

/// Constraint sense.
enum class Sense { LessEqual, GreaterEqual, Equal };

/// One coefficient of a constraint row: coeff * x[var].
struct Term {
  std::size_t var;
  double coeff;
};

/// A general LP: minimize c^T x subject to rows, x >= 0.
class Model {
 public:
  /// Adds a non-negative variable, returns its index.
  std::size_t add_variable(std::string name = {});

  /// Sets the objective coefficient of `var` (default 0).
  void set_objective(std::size_t var, double coeff);

  /// Adds a constraint sum(terms) sense rhs; returns the row index.
  /// Duplicate variable entries in `terms` are summed.
  std::size_t add_constraint(std::vector<Term> terms, Sense sense, double rhs);

  [[nodiscard]] std::size_t num_variables() const noexcept {
    return names_.size();
  }
  [[nodiscard]] std::size_t num_constraints() const noexcept {
    return rows_.size();
  }

  struct Row {
    std::vector<Term> terms;
    Sense sense;
    double rhs;
  };

  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }
  [[nodiscard]] const std::vector<double>& objective() const noexcept {
    return objective_;
  }
  [[nodiscard]] const std::string& name(std::size_t var) const {
    return names_[var];
  }

 private:
  std::vector<std::string> names_;
  std::vector<double> objective_;
  std::vector<Row> rows_;
};

}  // namespace malsched::lp
