#include "malsched/lp/detail/simplex_impl.hpp"
#include "malsched/lp/solver.hpp"

namespace malsched::lp {

ExactSolution solve_exact(const Model& model, const SimplexOptions& options) {
  detail::DenseSimplex<numeric::Rational> simplex(model, options);
  auto raw = simplex.run();
  ExactSolution out;
  out.status = raw.status;
  out.objective = std::move(raw.objective);
  out.values = std::move(raw.values);
  out.iterations = raw.iterations;
  return out;
}

}  // namespace malsched::lp
