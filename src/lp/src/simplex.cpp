#include "malsched/lp/detail/simplex_impl.hpp"
#include "malsched/lp/solver.hpp"

namespace malsched::lp {

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::Optimal:
      return "optimal";
    case SolveStatus::Infeasible:
      return "infeasible";
    case SolveStatus::Unbounded:
      return "unbounded";
    case SolveStatus::IterationLimit:
      return "iteration-limit";
  }
  return "?";
}

Solution solve(const Model& model, const SimplexOptions& options) {
  detail::DenseSimplex<double> simplex(model, options);
  const auto raw = simplex.run();
  Solution out;
  out.status = raw.status;
  out.objective = raw.objective;
  out.values = raw.values;
  out.iterations = raw.iterations;
  return out;
}

}  // namespace malsched::lp
