#include "malsched/lp/model.hpp"

#include <algorithm>

#include "malsched/support/contracts.hpp"

namespace malsched::lp {

std::size_t Model::add_variable(std::string name) {
  if (name.empty()) {
    name = "x" + std::to_string(names_.size());
  }
  names_.push_back(std::move(name));
  objective_.push_back(0.0);
  return names_.size() - 1;
}

void Model::set_objective(std::size_t var, double coeff) {
  MALSCHED_EXPECTS(var < objective_.size());
  objective_[var] = coeff;
}

std::size_t Model::add_constraint(std::vector<Term> terms, Sense sense,
                                  double rhs) {
  // Merge duplicate variables so the tableau builder can assume uniqueness.
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::vector<Term> merged;
  merged.reserve(terms.size());
  for (const Term& t : terms) {
    MALSCHED_EXPECTS(t.var < names_.size());
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coeff += t.coeff;
    } else {
      merged.push_back(t);
    }
  }
  rows_.push_back(Row{std::move(merged), sense, rhs});
  return rows_.size() - 1;
}

}  // namespace malsched::lp
