#include "malsched/net/transport.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <utility>

namespace malsched::net {

namespace {

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) {
    *error = what;
  }
}

}  // namespace

// --- ForkTransport ---------------------------------------------------------

ForkTransport::ForkTransport(std::size_t count,
                             std::function<int(std::size_t, int)> child_main)
    : children_(count), child_main_(std::move(child_main)) {}

ForkTransport::~ForkTransport() {
  // Anything still tracked was never handed back through disconnect() /
  // terminate() — tear it down hard so the destructor cannot hang on a
  // wedged child.
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].fd >= 0 || children_[i].pid > 0) {
      terminate(i, children_[i].fd);
    }
  }
}

int ForkTransport::open(std::size_t index, std::string* error) {
  if (index >= children_.size()) {
    set_error(error, "fork transport has no peer " + std::to_string(index));
    return -1;
  }
  int sockets[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sockets) != 0) {
    set_error(error, "socketpair failed");
    return -1;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sockets[0]);
    ::close(sockets[1]);
    set_error(error, "fork failed");
    return -1;
  }
  if (pid == 0) {
    // Child: keep only our own socket end; inherited peer fds of the other
    // children would hold their connections open past the router's close.
    ::close(sockets[0]);
    for (const Child& other : children_) {
      if (other.fd >= 0) {
        ::close(other.fd);
      }
    }
    // _exit, not exit: the child shares the parent's stdio buffers and must
    // not flush them a second time.
    ::_exit(child_main_(index, sockets[1]));
  }
  ::close(sockets[1]);
  children_[index] = Child{pid, sockets[0]};
  return sockets[0];
}

void ForkTransport::disconnect(std::size_t index, int fd) {
  if (index >= children_.size()) {
    return;
  }
  if (fd >= 0) {
    ::close(fd);  // EOF: the child drains its admitted work and exits
  }
  Child& child = children_[index];
  if (child.pid > 0) {
    int status = 0;
    ::waitpid(child.pid, &status, 0);
  }
  child = Child{};
}

void ForkTransport::terminate(std::size_t index, int fd) {
  if (index >= children_.size()) {
    return;
  }
  if (fd >= 0) {
    ::close(fd);
  }
  Child& child = children_[index];
  if (child.pid > 0) {
    // The caller says the child is gone or unresponsive; make that true
    // (SIGKILL on an already-dead pid is a no-op) so the reap cannot hang.
    ::kill(child.pid, SIGKILL);
    int status = 0;
    ::waitpid(child.pid, &status, 0);
  }
  child = Child{};
}

pid_t ForkTransport::pid_of(std::size_t index) const {
  return index < children_.size() ? children_[index].pid : -1;
}

std::string ForkTransport::describe(std::size_t index) const {
  if (index >= children_.size()) {
    return "forked worker ?";
  }
  return "forked worker " + std::to_string(index) +
         (children_[index].pid > 0
              ? " (pid " + std::to_string(children_[index].pid) + ")"
              : "");
}

// --- TcpTransport ----------------------------------------------------------

TcpTransport::TcpTransport(std::vector<Endpoint> endpoints,
                           std::chrono::milliseconds connect_timeout)
    : endpoints_(std::move(endpoints)), connect_timeout_(connect_timeout) {}

int TcpTransport::open(std::size_t index, std::string* error) {
  if (index >= endpoints_.size()) {
    set_error(error, "tcp transport has no peer " + std::to_string(index));
    return -1;
  }
  return tcp_connect(endpoints_[index], connect_timeout_, error);
}

void TcpTransport::disconnect(std::size_t /*index*/, int fd) {
  if (fd >= 0) {
    ::close(fd);  // EOF still means drain; the remote process is not ours
  }
}

void TcpTransport::terminate(std::size_t /*index*/, int fd) {
  if (fd >= 0) {
    ::close(fd);
  }
}

std::string TcpTransport::describe(std::size_t index) const {
  return index < endpoints_.size() ? endpoints_[index].to_string()
                                   : "tcp worker ?";
}

}  // namespace malsched::net
