#include "malsched/net/shm.hpp"

#include <linux/futex.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace malsched::net {

namespace {

using Clock = std::chrono::steady_clock;

// Cross-process futex ops — deliberately NOT FUTEX_PRIVATE_FLAG: the words
// live in a MAP_SHARED mapping and the waiter and waker are different
// processes, which the private (per-mm) optimization does not support.
void futex_wait(std::atomic<std::uint32_t>* word, std::uint32_t expected,
                std::chrono::milliseconds timeout) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  ts.tv_nsec = static_cast<long>((timeout.count() % 1000) * 1000000);
  // EAGAIN (value changed), EINTR and ETIMEDOUT are all just "go re-check".
  (void)::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word),
                  FUTEX_WAIT, expected, &ts, nullptr, 0);
}

void futex_wake_all(std::atomic<std::uint32_t>* word) {
  (void)::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word),
                  FUTEX_WAKE, INT32_MAX, nullptr, nullptr, 0);
}

// Bounded spin before sleeping: the streaming case (peer actively moving)
// resolves here without any syscall.
constexpr int kSpinIterations = 512;
// Sleep slice: waits are chopped so the peer-liveness probe runs even when
// the wake that should end the sleep never comes (peer SIGKILLed).
constexpr std::chrono::milliseconds kSleepSlice{50};

std::chrono::milliseconds slice_until(Clock::time_point deadline) {
  // Compare before subtracting: Clock::time_point::min() is a valid
  // "already expired" sentinel, and min() - now() underflows to a huge
  // positive duration if subtracted first.
  const auto now = Clock::now();
  if (deadline <= now) {
    return std::chrono::milliseconds(0);
  }
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
  return left < kSleepSlice ? left : kSleepSlice;
}

void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace

// --- ShmRegion --------------------------------------------------------------

std::unique_ptr<ShmRegion> ShmRegion::create(std::size_t bytes) {
  const char* disabled = std::getenv(kShmDisableEnv);
  if (disabled != nullptr && *disabled != '\0' &&
      std::strcmp(disabled, "0") != 0) {
    return nullptr;  // operator/CI-forced failure: exercise the fallback
  }
  if (bytes == 0) {
    return nullptr;
  }
  void* data = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (data == MAP_FAILED) {
    return nullptr;
  }
  return std::unique_ptr<ShmRegion>(new ShmRegion(data, bytes));
}

ShmRegion::~ShmRegion() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
  }
}

// --- RingStatus -------------------------------------------------------------

const char* ring_status_name(RingStatus status) noexcept {
  switch (status) {
    case RingStatus::Ok:
      return "ok";
    case RingStatus::TooBig:
      return "too-big";
    case RingStatus::Timeout:
      return "timeout";
    case RingStatus::Closed:
      return "closed";
    case RingStatus::DeadPeer:
      return "dead-peer";
  }
  return "unknown";
}

// --- Doorbell ---------------------------------------------------------------

void doorbell_ring(Doorbell& bell) {
  bell.seq.fetch_add(1, std::memory_order_seq_cst);
  if (bell.waiting.load(std::memory_order_seq_cst) != 0) {
    futex_wake_all(&bell.seq);
  }
}

std::uint32_t doorbell_begin_wait(Doorbell& bell) {
  bell.waiting.fetch_add(1, std::memory_order_seq_cst);
  return bell.seq.load(std::memory_order_seq_cst);
}

void doorbell_wait(Doorbell& bell, std::uint32_t seen,
                   std::chrono::milliseconds timeout) {
  if (bell.seq.load(std::memory_order_seq_cst) != seen) {
    return;  // rung since begin_wait: the re-check missed it by a hair
  }
  futex_wait(&bell.seq, seen, timeout);
}

void doorbell_end_wait(Doorbell& bell) {
  bell.waiting.fetch_sub(1, std::memory_order_seq_cst);
}

// --- ShmRing ----------------------------------------------------------------

ShmRing::ShmRing(void* memory, std::size_t capacity, bool initialize)
    : header_(static_cast<RingHeader*>(memory)),
      data_(static_cast<unsigned char*>(memory) + sizeof(RingHeader)),
      capacity_(capacity) {
  if (initialize) {
    new (header_) RingHeader();
  }
}

std::size_t ShmRing::depth_bytes() const {
  const std::uint32_t tail = header_->tail.load(std::memory_order_acquire);
  const std::uint32_t head = header_->head.load(std::memory_order_acquire);
  return static_cast<std::uint32_t>(tail - head);
}

void ShmRing::close() {
  header_->closed.store(1, std::memory_order_seq_cst);
  // Both sides might be asleep on their respective words; wake everything.
  futex_wake_all(&header_->tail);
  futex_wake_all(&header_->head);
  if (doorbell_ != nullptr) {
    doorbell_ring(*doorbell_);
  }
}

bool ShmRing::closed() const {
  return header_->closed.load(std::memory_order_seq_cst) != 0;
}

void ShmRing::copy_in(std::uint32_t at, const void* bytes, std::size_t size) {
  const std::size_t index = at & (capacity_ - 1);
  const std::size_t first = std::min(size, capacity_ - index);
  std::memcpy(data_ + index, bytes, first);
  if (first < size) {  // wrap: the tail of the frame restarts at offset 0
    std::memcpy(data_, static_cast<const unsigned char*>(bytes) + first,
                size - first);
  }
}

void ShmRing::copy_out(std::uint32_t at, void* bytes, std::size_t size) const {
  const std::size_t index = at & (capacity_ - 1);
  const std::size_t first = std::min(size, capacity_ - index);
  std::memcpy(bytes, data_ + index, first);
  if (first < size) {
    std::memcpy(static_cast<unsigned char*>(bytes) + first, data_,
                size - first);
  }
}

RingStatus ShmRing::push(std::string_view payload,
                         Clock::time_point deadline,
                         const std::function<bool()>& peer_alive) {
  const std::size_t frame = 4 + payload.size();
  if (frame > capacity_) {
    // Whole-or-nothing: a frame that could never fit fails typed before a
    // single byte lands (a payload of exactly ring size is in here too —
    // its prefix pushes it over).
    return RingStatus::TooBig;
  }
  const std::uint32_t tail = header_->tail.load(std::memory_order_relaxed);
  int spins = 0;
  for (;;) {
    if (header_->closed.load(std::memory_order_seq_cst) != 0) {
      return RingStatus::Closed;
    }
    const std::uint32_t head = header_->head.load(std::memory_order_acquire);
    const std::size_t space =
        capacity_ - static_cast<std::uint32_t>(tail - head);
    if (space >= frame) {
      break;
    }
    if (spins++ < kSpinIterations) {
      cpu_relax();
      continue;
    }
    // Full-ring backpressure: park on `head` until the consumer frees
    // space (it wakes us) or the budget runs out.
    const auto slice = slice_until(deadline);
    if (slice <= std::chrono::milliseconds(0)) {
      return RingStatus::Timeout;
    }
    if (peer_alive && !peer_alive()) {
      return RingStatus::DeadPeer;
    }
    header_->producer_waiting.fetch_add(1, std::memory_order_seq_cst);
    // Re-check under the waiting flag so a consumer that freed space
    // between our check and the wait is forced to issue the wake.
    const std::uint32_t head_now =
        header_->head.load(std::memory_order_seq_cst);
    if (capacity_ - static_cast<std::uint32_t>(tail - head_now) < frame &&
        header_->closed.load(std::memory_order_seq_cst) == 0) {
      header_->counters.producer_sleeps.fetch_add(1,
                                                  std::memory_order_relaxed);
      futex_wait(&header_->head, head_now, slice);
    }
    header_->producer_waiting.fetch_sub(1, std::memory_order_seq_cst);
  }

  unsigned char prefix[4] = {
      static_cast<unsigned char>(payload.size() & 0xFF),
      static_cast<unsigned char>((payload.size() >> 8) & 0xFF),
      static_cast<unsigned char>((payload.size() >> 16) & 0xFF),
      static_cast<unsigned char>((payload.size() >> 24) & 0xFF)};
  copy_in(tail, prefix, sizeof prefix);
  copy_in(tail + 4, payload.data(), payload.size());
  // The publish: everything before this store is invisible to the consumer,
  // so a producer killed anywhere above leaves the stream merely shorter,
  // never torn.
  header_->tail.store(tail + static_cast<std::uint32_t>(frame),
                      std::memory_order_release);
  header_->counters.frames.fetch_add(1, std::memory_order_relaxed);
  header_->counters.bytes.fetch_add(payload.size(),
                                    std::memory_order_relaxed);
  if (header_->consumer_waiting.load(std::memory_order_seq_cst) != 0) {
    header_->counters.wakes.fetch_add(1, std::memory_order_relaxed);
    futex_wake_all(&header_->tail);
  }
  if (doorbell_ != nullptr) {
    doorbell_ring(*doorbell_);
  }
  return RingStatus::Ok;
}

RingStatus ShmRing::pop(std::string* payload, Clock::time_point deadline,
                        const std::function<bool()>& peer_alive) {
  const std::uint32_t head = header_->head.load(std::memory_order_relaxed);
  int spins = 0;
  for (;;) {
    const std::uint32_t tail = header_->tail.load(std::memory_order_acquire);
    const std::uint32_t avail = tail - head;
    if (avail >= 4) {
      // `tail` only ever advances by whole frames, so a visible prefix
      // means the whole frame is visible.
      unsigned char prefix[4];
      copy_out(head, prefix, sizeof prefix);
      const std::uint32_t length = static_cast<std::uint32_t>(prefix[0]) |
                                   (static_cast<std::uint32_t>(prefix[1]) << 8) |
                                   (static_cast<std::uint32_t>(prefix[2]) << 16) |
                                   (static_cast<std::uint32_t>(prefix[3]) << 24);
      payload->resize(length);
      copy_out(head + 4, payload->data(), length);
      header_->head.store(head + 4 + length, std::memory_order_release);
      if (header_->producer_waiting.load(std::memory_order_seq_cst) != 0) {
        header_->counters.wakes.fetch_add(1, std::memory_order_relaxed);
        futex_wake_all(&header_->head);
      }
      return RingStatus::Ok;
    }
    // Drain-before-close: only report Closed once nothing is left.
    if (header_->closed.load(std::memory_order_seq_cst) != 0) {
      return RingStatus::Closed;
    }
    if (spins++ < kSpinIterations) {
      cpu_relax();
      continue;
    }
    const auto slice = slice_until(deadline);
    if (slice <= std::chrono::milliseconds(0)) {
      return RingStatus::Timeout;
    }
    if (peer_alive && !peer_alive()) {
      // The torn-write case lands here: a producer killed mid-frame never
      // published, so its death reads as silence — typed, not garbled.
      return RingStatus::DeadPeer;
    }
    header_->consumer_waiting.fetch_add(1, std::memory_order_seq_cst);
    const std::uint32_t tail_now =
        header_->tail.load(std::memory_order_seq_cst);
    if (tail_now == tail &&
        header_->closed.load(std::memory_order_seq_cst) == 0) {
      header_->counters.consumer_sleeps.fetch_add(1,
                                                  std::memory_order_relaxed);
      futex_wait(&header_->tail, tail_now, slice);
    }
    header_->consumer_waiting.fetch_sub(1, std::memory_order_seq_cst);
  }
}

}  // namespace malsched::net
