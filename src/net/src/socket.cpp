#include "malsched/net/socket.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace malsched::net {

namespace {

using Clock = std::chrono::steady_clock;

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) {
    *error = what;
  }
}

std::string errno_text(int errno_value) {
  return std::strerror(errno_value);
}

void set_nodelay(int fd) {
  // Best effort: AF_UNIX sockets (tests reuse these helpers) reject it.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// getaddrinfo for one endpoint; caller frees with freeaddrinfo.
struct addrinfo* resolve(const Endpoint& endpoint, bool listening,
                         std::string* error) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof hints);
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = listening ? AI_PASSIVE : 0;
  struct addrinfo* result = nullptr;
  const std::string port = std::to_string(endpoint.port);
  const int rc =
      ::getaddrinfo(endpoint.host.c_str(), port.c_str(), &hints, &result);
  if (rc != 0) {
    set_error(error, "cannot resolve '" + endpoint.to_string() +
                         "': " + ::gai_strerror(rc));
    return nullptr;
  }
  return result;
}

}  // namespace

std::optional<Endpoint> parse_endpoint(const std::string& text) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= text.size()) {
    return std::nullopt;
  }
  Endpoint endpoint;
  endpoint.host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  char* end = nullptr;
  errno = 0;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (end != port_text.c_str() + port_text.size() || errno == ERANGE ||
      port > 65535) {
    return std::nullopt;
  }
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

std::optional<std::vector<Endpoint>> parse_endpoint_list(
    const std::string& text) {
  std::vector<Endpoint> endpoints;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    auto end = text.find(',', begin);
    if (end == std::string::npos) {
      end = text.size();
    }
    const auto endpoint = parse_endpoint(text.substr(begin, end - begin));
    if (!endpoint) {
      return std::nullopt;
    }
    endpoints.push_back(*endpoint);
    begin = end + 1;
  }
  if (endpoints.empty()) {
    return std::nullopt;
  }
  return endpoints;
}

int tcp_listen(const Endpoint& endpoint, std::string* error,
               std::uint16_t* bound_port) {
  struct addrinfo* addresses = resolve(endpoint, /*listening=*/true, error);
  if (addresses == nullptr) {
    return -1;
  }
  int fd = -1;
  int last_errno = 0;
  for (struct addrinfo* a = addresses; a != nullptr; a = a->ai_next) {
    fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    // SO_REUSEADDR: a restarted worker must rebind its advertised port
    // immediately, not after TIME_WAIT drains.
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, a->ai_addr, a->ai_addrlen) == 0 && ::listen(fd, 64) == 0) {
      break;
    }
    last_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(addresses);
  if (fd < 0) {
    set_error(error, "cannot listen on '" + endpoint.to_string() +
                         "': " + errno_text(last_errno));
    return -1;
  }
  if (bound_port != nullptr) {
    struct sockaddr_storage bound;
    socklen_t bound_len = sizeof bound;
    *bound_port = 0;
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                      &bound_len) == 0) {
      if (bound.ss_family == AF_INET) {
        *bound_port = ntohs(
            reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        *bound_port = ntohs(
            reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
      }
    }
  }
  return fd;
}

int tcp_accept(int listen_fd, std::chrono::milliseconds timeout,
               std::string* error) {
  for (;;) {
    struct pollfd pfd {
      listen_fd, POLLIN, 0
    };
    const int ready = ::poll(&pfd, 1,
                             timeout.count() < 0
                                 ? -1
                                 : static_cast<int>(timeout.count()));
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      set_error(error, std::string("accept poll failed: ") +
                           errno_text(errno));
      return -1;
    }
    if (ready == 0) {
      set_error(error, "accept timed out");
      return -1;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;  // the connector gave up between poll and accept
      }
      set_error(error, std::string("accept failed: ") + errno_text(errno));
      return -1;
    }
    set_nodelay(fd);
    return fd;
  }
}

int tcp_connect(const Endpoint& endpoint, std::chrono::milliseconds timeout,
                std::string* error) {
  const auto deadline = Clock::now() + timeout;
  std::string last_error =
      "cannot connect to '" + endpoint.to_string() + "'";
  // Refused connections retry within the budget: a worker binary that is
  // milliseconds away from listen() (fleet startup) looks exactly like a
  // dead host until it isn't.
  for (;;) {
    struct addrinfo* addresses =
        resolve(endpoint, /*listening=*/false, error);
    if (addresses == nullptr) {
      return -1;
    }
    bool refused = false;
    for (struct addrinfo* a = addresses; a != nullptr; a = a->ai_next) {
      const int fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
      if (fd < 0) {
        continue;
      }
      // Non-blocking connect + poll(POLLOUT): bounded by our deadline, not
      // the kernel's minutes-long SYN retransmit schedule.
      const int flags = ::fcntl(fd, F_GETFL, 0);
      (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      int rc = ::connect(fd, a->ai_addr, a->ai_addrlen);
      if (rc != 0 && errno == EINPROGRESS) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now());
        struct pollfd pfd {
          fd, POLLOUT, 0
        };
        const int ready = ::poll(
            &pfd, 1,
            left.count() <= 0 ? 0 : static_cast<int>(left.count()));
        if (ready > 0) {
          int so_error = 0;
          socklen_t len = sizeof so_error;
          (void)::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
          rc = so_error == 0 ? 0 : -1;
          errno = so_error;
        } else {
          rc = -1;
          errno = ETIMEDOUT;
        }
      }
      if (rc == 0) {
        (void)::fcntl(fd, F_SETFL, flags);  // back to blocking for frame I/O
        set_nodelay(fd);
        ::freeaddrinfo(addresses);
        return fd;
      }
      last_error = "cannot connect to '" + endpoint.to_string() +
                   "': " + errno_text(errno);
      refused = errno == ECONNREFUSED;
      ::close(fd);
    }
    ::freeaddrinfo(addresses);
    if (!refused || Clock::now() + std::chrono::milliseconds(50) >= deadline) {
      set_error(error, last_error);
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace malsched::net
