#include "malsched/net/frame.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstddef>

namespace malsched::net {

namespace {

void classify(FrameError* error, FrameError value) {
  if (error != nullptr) {
    *error = value;
  }
}

// Raw socket I/O that restarts on EINTR and reports a dead peer as false.
// MSG_NOSIGNAL everywhere: the router must observe worker death as an error
// return it can fail over from, not a process-killing SIGPIPE.
bool write_all(int fd, const void* data, std::size_t size,
               FrameError* error) {
  const char* cursor = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t sent = ::send(fd, cursor, size, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      classify(error, FrameError::DeadPeer);
      return false;
    }
    cursor += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

// `at_boundary` distinguishes a clean close (EOF before any prefix byte:
// the peer drained and left) from a truncation (EOF inside a frame).
bool read_all(int fd, void* data, std::size_t size, bool at_boundary,
              FrameError* error) {
  char* cursor = static_cast<char*>(data);
  bool first_byte = true;
  while (size > 0) {
    const ssize_t got = ::recv(fd, cursor, size, 0);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      classify(error, FrameError::DeadPeer);
      return false;
    }
    if (got == 0) {  // EOF: peer closed (worker exit or router gone)
      classify(error, at_boundary && first_byte ? FrameError::Eof
                                                : FrameError::Truncated);
      return false;
    }
    first_byte = false;
    cursor += got;
    size -= static_cast<std::size_t>(got);
  }
  return true;
}

std::uint32_t decode_length(const unsigned char prefix[4]) {
  return static_cast<std::uint32_t>(prefix[0]) |
         (static_cast<std::uint32_t>(prefix[1]) << 8) |
         (static_cast<std::uint32_t>(prefix[2]) << 16) |
         (static_cast<std::uint32_t>(prefix[3]) << 24);
}

}  // namespace

const char* frame_error_name(FrameError error) noexcept {
  switch (error) {
    case FrameError::None:
      return "none";
    case FrameError::Eof:
      return "eof";
    case FrameError::DeadPeer:
      return "dead-peer";
    case FrameError::Oversize:
      return "oversize";
    case FrameError::Truncated:
      return "truncated";
    case FrameError::Timeout:
      return "timeout";
  }
  return "unknown";
}

bool is_dead_peer_errno(int errno_value) noexcept {
  switch (errno_value) {
    case ECONNRESET:   // TCP RST: the peer process died or closed hard
    case EPIPE:        // write after the peer closed its read side
    case ECONNABORTED: // connection aborted before we got to it
    case ETIMEDOUT:    // TCP keepalive/retransmit gave up on a silent host
    case ENOTCONN:     // the kernel already tore the association down
    case ESHUTDOWN:    // I/O after shutdown(2)
    case EHOSTUNREACH: // routing collapsed under an established connection
    case ENETRESET:    // network dropped the connection on reset
      return true;
    default:
      return false;
  }
}

bool write_frame(int fd, const std::string& payload, FrameError* error) {
  classify(error, FrameError::None);
  if (payload.size() > kMaxFrameBytes) {
    classify(error, FrameError::Oversize);
    return false;
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  unsigned char prefix[4] = {
      static_cast<unsigned char>(length & 0xFF),
      static_cast<unsigned char>((length >> 8) & 0xFF),
      static_cast<unsigned char>((length >> 16) & 0xFF),
      static_cast<unsigned char>((length >> 24) & 0xFF)};
  return write_all(fd, prefix, sizeof prefix, error) &&
         write_all(fd, payload.data(), payload.size(), error);
}

bool read_frame(int fd, std::string* payload, FrameError* error) {
  classify(error, FrameError::None);
  unsigned char prefix[4];
  if (!read_all(fd, prefix, sizeof prefix, /*at_boundary=*/true, error)) {
    return false;
  }
  const std::uint32_t length = decode_length(prefix);
  if (length > kMaxFrameBytes) {
    classify(error, FrameError::Oversize);
    return false;  // corrupted prefix: fail the connection, don't allocate
  }
  payload->resize(length);
  return length == 0 ||
         read_all(fd, payload->data(), length, /*at_boundary=*/false, error);
}

bool read_frame_deadline(int fd, std::string* payload,
                         std::chrono::steady_clock::time_point deadline,
                         FrameError* error) {
  classify(error, FrameError::None);

  // Poll-then-recv per chunk: the recv can only block if the peer raced a
  // byte in and out between poll and recv, which a stream socket cannot do,
  // so the loop's wait time is bounded by the deadline.
  const auto read_some = [&](void* data, std::size_t size,
                             bool at_boundary) {
    char* cursor = static_cast<char*>(data);
    bool first_byte = at_boundary;
    while (size > 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        classify(error, FrameError::Timeout);
        return false;
      }
      struct pollfd pfd {
        fd, POLLIN, 0
      };
      const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (ready < 0) {
        if (errno == EINTR) {
          continue;
        }
        classify(error, FrameError::DeadPeer);
        return false;
      }
      if (ready == 0) {
        classify(error, FrameError::Timeout);
        return false;
      }
      // POLLHUP/POLLERR still allow recv to drain buffered bytes and then
      // report the EOF/error itself, which classifies precisely below.
      const ssize_t got = ::recv(fd, cursor, size, 0);
      if (got < 0) {
        if (errno == EINTR) {
          continue;
        }
        classify(error, FrameError::DeadPeer);
        return false;
      }
      if (got == 0) {
        classify(error, first_byte ? FrameError::Eof : FrameError::Truncated);
        return false;
      }
      first_byte = false;
      cursor += got;
      size -= static_cast<std::size_t>(got);
    }
    return true;
  };

  unsigned char prefix[4];
  if (!read_some(prefix, sizeof prefix, /*at_boundary=*/true)) {
    return false;
  }
  const std::uint32_t length = decode_length(prefix);
  if (length > kMaxFrameBytes) {
    classify(error, FrameError::Oversize);
    return false;
  }
  payload->resize(length);
  return length == 0 ||
         read_some(payload->data(), length, /*at_boundary=*/false);
}

}  // namespace malsched::net
