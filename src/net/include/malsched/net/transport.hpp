#pragma once

/// \file transport.hpp
/// The Transport seam of the shard data path: how the router obtains (and
/// tears down) a connected stream fd per peer, with everything above —
/// frames, handshake, wire dialect, failover — identical across
/// implementations.
///
///   * ForkTransport — the original single-host topology: each open() forks
///     a child over an AF_UNIX socketpair and runs a caller-supplied
///     child-main on the peer end.  Teardown owns the process: graceful
///     close (EOF = drain) reaps the child after it exits on its own; hard
///     close SIGKILLs first.
///   * TcpTransport — the multi-host topology: each open() connects to a
///     `host:port` endpoint (socket.hpp semantics: non-blocking connect
///     with timeout, refused-retry for the startup race, TCP_NODELAY).
///     The worker process belongs to whoever launched `malsched_worker`
///     there; teardown is just closing our end.
///
/// The contract deliberately returns raw fds and leaves the versioned
/// `hello` handshake to the caller: the handshake is protocol
/// (shard/wire.hpp), not transport, and keeping it out of here means a
/// transport cannot skip it.

#include <sys/types.h>

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "malsched/net/socket.hpp"

namespace malsched::net {

/// How a router reaches its fixed-size set of peers.  Not thread-safe, like
/// the router that owns it.  Indices are stable across reopen (restart).
class Transport {
 public:
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Number of peers this transport addresses.
  [[nodiscard]] virtual std::size_t peer_count() const = 0;

  /// Opens a connected stream fd to peer `index` (forking it or dialing
  /// it).  Returns -1 with *error set (when non-null) on failure.  Any
  /// previously opened fd for this index must have been closed via
  /// disconnect()/terminate() first.
  [[nodiscard]] virtual int open(std::size_t index, std::string* error) = 0;

  /// Graceful teardown of peer `index`: closes `fd` (EOF is the drain
  /// signal in the wire dialect) and, when this transport owns the peer
  /// process, waits for it to exit on its own.
  virtual void disconnect(std::size_t index, int fd) = 0;

  /// Hard teardown: closes `fd` and, when this transport owns the peer
  /// process, SIGKILLs and reaps it.  For peers already observed dead and
  /// for the operator's shoot-the-wedged-worker button.
  virtual void terminate(std::size_t index, int fd) = 0;

  /// Pid of the process behind peer `index`, when this transport owns it;
  /// -1 otherwise (remote peers, never-opened or torn-down slots).
  [[nodiscard]] virtual pid_t pid_of(std::size_t /*index*/) const {
    return -1;
  }

  /// Human-readable peer address ("forked pid 1234", "10.0.0.7:9000") for
  /// diagnostics and error text.
  [[nodiscard]] virtual std::string describe(std::size_t index) const = 0;

 protected:
  Transport() = default;
};

/// Forked children over AF_UNIX socketpairs — the single-host topology.
class ForkTransport final : public Transport {
 public:
  /// `child_main(index, fd)` runs in the forked child on the peer end of
  /// the socketpair and its return value becomes the child's exit status
  /// (via _exit, so the parent's stdio buffers are never flushed twice).
  /// The child receives its own peer index so it can locate per-peer
  /// resources set up before the fork — the shm data-plane channels live
  /// on exactly this.
  /// IMPORTANT: fork()-without-exec — construct and open() before the
  /// calling process creates any threads.
  ForkTransport(std::size_t count,
                std::function<int(std::size_t, int)> child_main);
  ~ForkTransport() override;

  [[nodiscard]] std::size_t peer_count() const override {
    return children_.size();
  }
  [[nodiscard]] int open(std::size_t index, std::string* error) override;
  void disconnect(std::size_t index, int fd) override;
  void terminate(std::size_t index, int fd) override;
  [[nodiscard]] pid_t pid_of(std::size_t index) const override;
  [[nodiscard]] std::string describe(std::size_t index) const override;

 private:
  struct Child {
    pid_t pid = -1;
    int fd = -1;  ///< parent-side end, tracked so later forks can close it
  };
  std::vector<Child> children_;
  std::function<int(std::size_t, int)> child_main_;
};

/// Dialed `host:port` workers — the multi-host topology.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(std::vector<Endpoint> endpoints,
                        std::chrono::milliseconds connect_timeout =
                            std::chrono::milliseconds(5000));

  [[nodiscard]] std::size_t peer_count() const override {
    return endpoints_.size();
  }
  [[nodiscard]] int open(std::size_t index, std::string* error) override;
  void disconnect(std::size_t index, int fd) override;
  void terminate(std::size_t index, int fd) override;
  [[nodiscard]] std::string describe(std::size_t index) const override;

 private:
  std::vector<Endpoint> endpoints_;
  std::chrono::milliseconds connect_timeout_;
};

}  // namespace malsched::net
