#pragma once

/// \file socket.hpp
/// TCP plumbing for the multi-host fleet: endpoint parsing, listening
/// sockets and non-blocking connects with a timeout.
///
/// Everything here returns plain file descriptors on purpose — the frame
/// layer (frame.hpp), the wire dialect (shard/wire.hpp) and the worker loop
/// are all fd-based, so a TCP connection and a forked socketpair end are
/// interchangeable from the first byte on.  Socket options applied:
///
///   * `SO_REUSEADDR` on listeners, so a restarted worker rebinds its port
///     without waiting out TIME_WAIT (the restart-and-rebalance flow).
///   * `TCP_NODELAY` on every connection, both ends.  The protocol is
///     strictly request/response with small frames; Nagle would add up to
///     40 ms of artificial latency per round-trip for nothing.
///   * Connects are non-blocking with a poll deadline: a black-holed host
///     fails typed after `timeout` instead of hanging the router for the
///     kernel's minutes-long default.  Within the budget, connection-
///     refused is retried briefly — a worker that is still calling listen()
///     (the CI startup race) is indistinguishable from a dead one except by
///     waiting.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace malsched::net {

/// A "host:port" pair.  Host is an IPv4 dotted quad or a DNS name.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const {
    return host + ":" + std::to_string(port);
  }
};

/// Parses "host:port".  nullopt when the host is empty, the port is not a
/// number, or the port is out of range.  Port 0 is allowed for listeners
/// (the kernel assigns an ephemeral port, reported by tcp_listen).
[[nodiscard]] std::optional<Endpoint> parse_endpoint(const std::string& text);

/// Splits a comma-separated endpoint list ("h1:p1,h2:p2").  nullopt when
/// any element fails to parse or the list is empty.
[[nodiscard]] std::optional<std::vector<Endpoint>> parse_endpoint_list(
    const std::string& text);

/// Binds and listens on `endpoint` (SO_REUSEADDR set).  Returns the
/// listening fd, or -1 with *error set.  When endpoint.port is 0, the
/// kernel-assigned port is written back to *bound_port (also filled for
/// fixed ports, for uniformity).
[[nodiscard]] int tcp_listen(const Endpoint& endpoint, std::string* error,
                             std::uint16_t* bound_port = nullptr);

/// Accepts one connection from a tcp_listen fd, blocking up to `timeout`
/// (negative = forever).  Returns the connected fd with TCP_NODELAY set, or
/// -1 (timeout, closed listener, or accept failure) with *error set.
[[nodiscard]] int tcp_accept(int listen_fd, std::chrono::milliseconds timeout,
                             std::string* error);

/// Connects to `endpoint` with a non-blocking connect bounded by `timeout`,
/// retrying connection-refused within the budget (worker startup race).
/// Returns the connected fd with TCP_NODELAY set, or -1 with *error set.
[[nodiscard]] int tcp_connect(const Endpoint& endpoint,
                              std::chrono::milliseconds timeout,
                              std::string* error);

}  // namespace malsched::net
