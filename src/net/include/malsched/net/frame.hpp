#pragma once

/// \file frame.hpp
/// The transport-level framing of the malsched fleet: u32-little-endian
/// length-prefixed payloads over any stream-socket fd, plus the single
/// dead-peer classifier every layer above shares.
///
///     ┌────────────────────┬──────────────────────────┐
///     │ length: u32 LE     │ payload: `length` bytes  │
///     └────────────────────┴──────────────────────────┘
///
/// This file is transport, not protocol: it moves opaque byte payloads and
/// says *typed* things about why a move failed.  What the payloads mean —
/// the `solve`/`result`/`hello` message dialect — lives one layer up in
/// `malsched/shard/wire.hpp`, which re-exports these functions so the two
/// files stay one API.
///
/// Failure model.  Both the forked-socketpair path and the TCP path must
/// take the *same* fail-over branch when a peer goes away, but the kernel
/// reports death differently per transport: a socketpair peer vanishes as
/// clean EOF/POLLHUP, while a TCP peer may vanish as ECONNRESET (RST),
/// EPIPE, ETIMEDOUT or a half-open connection that only a timeout catches.
/// `is_dead_peer_errno` is the one shared classifier that folds all of
/// those into "the peer is dead"; `FrameError` carries the classification
/// out of read_frame/write_frame so callers can distinguish a dead peer
/// from a protocol violation (oversized frame) without re-deriving errno
/// semantics — asymmetric death detection between the two transports was a
/// real router bug class this closes.
///
/// The frame reader enforces a maximum payload size so a corrupted (or
/// hostile) length prefix fails the connection instead of a 4 GiB
/// allocation, and it never over-reads: exactly 4 + length bytes are
/// consumed per frame, so a torn frame dribbled byte-at-a-time reassembles
/// and a truncated one fails typed.

#include <chrono>
#include <cstdint>
#include <string>

namespace malsched::net {

/// Largest accepted frame payload.  Instances dominate frame size at ~60
/// bytes per task; 256 MiB covers ~10^6-task instances with an order of
/// magnitude to spare.
inline constexpr std::uint32_t kMaxFrameBytes = 256u << 20;

/// Why a frame operation failed.  `None` only when the call succeeded.
enum class FrameError {
  None,
  /// Clean EOF on a frame boundary: the peer closed deliberately (drain).
  Eof,
  /// The peer is gone: ECONNRESET/EPIPE/EOF-mid-frame and friends, as
  /// classified by is_dead_peer_errno.  Fail over.
  DeadPeer,
  /// The length prefix exceeds kMaxFrameBytes: hostile or corrupted peer.
  /// Fail the connection; never allocate.
  Oversize,
  /// The stream ended inside a frame (prefix or payload cut short).
  Truncated,
  /// read_frame_deadline ran out of budget with the frame incomplete.
  Timeout,
};

/// Human-readable name of a FrameError ("dead-peer", ...), for diagnostics.
[[nodiscard]] const char* frame_error_name(FrameError error) noexcept;

/// The shared dead-peer classifier: true when `errno_value` means the peer
/// of a stream socket is gone and the caller should take its fail-over
/// branch.  Used by both frame directions and by the router's poll loop so
/// socketpair EOF/POLLHUP and TCP ECONNRESET/EPIPE land in one branch.
[[nodiscard]] bool is_dead_peer_errno(int errno_value) noexcept;

/// Blocking frame I/O on a stream-socket fd (MSG_NOSIGNAL — a dead peer
/// surfaces as an error return, never SIGPIPE).  Both return false on
/// failure and classify it into *error when non-null.
[[nodiscard]] bool write_frame(int fd, const std::string& payload,
                               FrameError* error = nullptr);
[[nodiscard]] bool read_frame(int fd, std::string* payload,
                              FrameError* error = nullptr);

/// read_frame with a wall-clock budget: polls before every chunk so a
/// silent, wedged or hostile peer (e.g. a garbage greeting whose bytes
/// happen to promise a frame that never arrives) cannot hang the caller.
/// Used for handshakes and any other exchange with an untrusted peer.
[[nodiscard]] bool read_frame_deadline(
    int fd, std::string* payload,
    std::chrono::steady_clock::time_point deadline,
    FrameError* error = nullptr);

}  // namespace malsched::net
