#pragma once

/// \file shm.hpp
/// Process-shared memory primitives of the local-shard data plane: an
/// anonymous MAP_SHARED region that survives fork, an SPSC byte ring
/// carrying length-prefixed frames through it, and a futex doorbell a
/// single consumer can multiplex many rings over.
///
/// The idiom is wineserver's esync/fsync: producer and consumer share a
/// page and signal each other with FUTEX_WAIT / FUTEX_WAKE on words inside
/// it, so the hot path is two atomic stores and a memcpy — no kernel
/// round-trip per frame — and the idle path sleeps instead of spinning.
///
/// Ring layout (one direction; a channel uses two):
///
///     ┌────────────┬──────────────────────────────────────────┐
///     │ RingHeader │ data[capacity]  (capacity is a power of 2)│
///     └────────────┴──────────────────────────────────────────┘
///
/// `head` (bytes consumed) and `tail` (bytes published) are free-running
/// u32 counters; positions are taken modulo capacity, so the full capacity
/// is usable and wraparound is a masked index, not a modulo chain.  Frames
/// are a u32-LE length followed by the payload, byte-wrapped across the
/// ring edge.
///
/// Publication is atomic by construction: the producer copies the whole
/// frame into the data area first and only then advances `tail` with a
/// release store.  A producer killed mid-memcpy (SIGKILL mid-frame) never
/// advances `tail`, so the consumer cannot observe a torn frame — it
/// observes *silence*, and `pop`'s peer-liveness probe turns silence from a
/// dead peer into a typed DeadPeer instead of a hang.
///
/// Sleep/wake: each side spins a bounded number of iterations (the
/// low-latency case: the peer is actively moving) and then FUTEX_WAITs on
/// the word the peer will change — the consumer on `tail`, the producer on
/// `head`.  Wakes are issued only when the `*_waiting` count says someone
/// is actually asleep, so a streaming producer/consumer pair issues zero
/// futex syscalls.
///
/// All counters the operator sees (`--stats` ring depth, sleeps, wakes)
/// live in the shared header, so either process can read them.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace malsched::net {

/// Environment knob that makes ShmRegion::create fail as if mmap did —
/// the operator's (and CI's) way to force the shared-memory data plane
/// down its socketpair fallback path end to end.
inline constexpr const char* kShmDisableEnv = "MALSCHED_SHM_DISABLE";

/// An anonymous MAP_SHARED mapping.  Created *before* fork, the same
/// physical pages are visible to parent and child — the substrate every
/// type below lives in.  Unmapped on destruction (each process's mapping
/// independently; the pages live until the last one drops).
class ShmRegion {
 public:
  /// nullptr when mmap fails or MALSCHED_SHM_DISABLE is set (non-empty,
  /// not "0") in the environment — callers must treat both as "no shared
  /// memory here, fall back".
  [[nodiscard]] static std::unique_ptr<ShmRegion> create(std::size_t bytes);
  ~ShmRegion();

  ShmRegion(const ShmRegion&) = delete;
  ShmRegion& operator=(const ShmRegion&) = delete;

  [[nodiscard]] void* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  ShmRegion(void* data, std::size_t size) : data_(data), size_(size) {}
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Why a ring operation did not return a frame.  `Ok` only on success.
enum class RingStatus {
  Ok,
  /// push: the frame (4-byte prefix + payload) exceeds the ring capacity
  /// outright and could never fit.  Nothing was written — a frame is
  /// published whole or not at all.
  TooBig,
  /// The deadline passed with the ring still full (push) / empty (pop).
  Timeout,
  /// close() was called and (for pop) every published frame has been
  /// drained.  The clean end-of-stream, like FrameError::Eof.
  Closed,
  /// The peer-liveness probe failed while waiting: the other process died.
  /// For pop this is exactly the torn-write case — a producer killed
  /// mid-frame published nothing, so the evidence of its death is silence
  /// plus a dead pid, never a partial frame.
  DeadPeer,
};

/// Human-readable name ("too-big", "dead-peer", ...), for diagnostics.
[[nodiscard]] const char* ring_status_name(RingStatus status) noexcept;

/// Shared counters of one ring, readable by both processes.
struct RingCounters {
  std::atomic<std::uint64_t> frames{0};           ///< frames published
  std::atomic<std::uint64_t> bytes{0};            ///< payload bytes published
  std::atomic<std::uint64_t> producer_sleeps{0};  ///< futex waits (ring full)
  std::atomic<std::uint64_t> consumer_sleeps{0};  ///< futex waits (ring empty)
  std::atomic<std::uint64_t> wakes{0};            ///< FUTEX_WAKEs issued
};

/// The shared header at the front of a ring's memory.  Every field is a
/// lock-free atomic: two processes race on these by design.
struct RingHeader {
  std::atomic<std::uint32_t> head{0};  ///< bytes consumed (free-running)
  std::atomic<std::uint32_t> tail{0};  ///< bytes published (free-running)
  std::atomic<std::uint32_t> closed{0};
  std::atomic<std::uint32_t> consumer_waiting{0};
  std::atomic<std::uint32_t> producer_waiting{0};
  RingCounters counters;
};
static_assert(sizeof(std::atomic<std::uint32_t>) == 4,
              "futex words must be plain 32-bit cells");

/// Aggregate doorbell: many producers ring it after publishing, one
/// consumer multiplexes on it (the router, over every worker's response
/// ring) — FUTEX_WAITing a single word instead of polling N rings.  Lives
/// in its own shared region created before the first fork.
struct Doorbell {
  std::atomic<std::uint32_t> seq{0};
  std::atomic<std::uint32_t> waiting{0};
};

/// Bumps the doorbell and wakes the consumer iff it is asleep.
void doorbell_ring(Doorbell& bell);
/// Announces intent to sleep and returns the sequence to sleep against.
/// Protocol: begin_wait, then re-check all rings (a ring between the check
/// and the wait changes `seq`, so the wait returns immediately), then
/// doorbell_wait, then end_wait.
[[nodiscard]] std::uint32_t doorbell_begin_wait(Doorbell& bell);
void doorbell_wait(Doorbell& bell, std::uint32_t seen,
                   std::chrono::milliseconds timeout);
void doorbell_end_wait(Doorbell& bell);

/// Single-producer single-consumer frame ring over caller-provided shared
/// memory.  The object itself is a cheap per-process *view* (two pointers);
/// all state lives in the shared memory, so parent and child each attach
/// their own view to the same bytes.  One producer thread and one consumer
/// thread at a time (callers serialize their own side; the two sides never
/// lock against each other).
class ShmRing {
 public:
  /// Bytes of shared memory a ring with `capacity` data bytes occupies.
  [[nodiscard]] static constexpr std::size_t footprint(std::size_t capacity) {
    return sizeof(RingHeader) + capacity;
  }

  ShmRing() = default;
  /// Attaches to `memory` (at least footprint(capacity) bytes, suitably
  /// aligned).  `capacity` must be a power of two.  Exactly one side passes
  /// `initialize` (the creator, before fork).
  ShmRing(void* memory, std::size_t capacity, bool initialize);

  [[nodiscard]] bool valid() const { return header_ != nullptr; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Bytes currently published and unconsumed (prefixes included).
  [[nodiscard]] std::size_t depth_bytes() const;
  [[nodiscard]] const RingCounters& counters() const {
    return header_->counters;
  }

  /// Optional doorbell rung after every successful push (the router's
  /// multiplexed wait); nullptr for rings nobody multiplexes over.
  void set_doorbell(Doorbell* bell) { doorbell_ = bell; }

  /// Publishes one frame whole-or-not-at-all.  Blocks (bounded spin, then
  /// futex sleep in slices) while the ring lacks space, until `deadline`.
  /// `peer_alive` (when set) is probed between sleep slices; returning
  /// false fails the push typed DeadPeer.  A deadline already in the past
  /// makes this a try_push: Timeout without sleeping.
  [[nodiscard]] RingStatus push(
      std::string_view payload,
      std::chrono::steady_clock::time_point deadline,
      const std::function<bool()>& peer_alive = {});

  /// Consumes one frame.  Same blocking/deadline/liveness contract as
  /// push.  After close(), every already-published frame is still drained
  /// (Ok) before Closed is reported — close is a drain marker, not a drop.
  [[nodiscard]] RingStatus pop(std::string* payload,
                               std::chrono::steady_clock::time_point deadline,
                               const std::function<bool()>& peer_alive = {});

  /// Marks the ring closed and wakes both sides.  Either side may call it;
  /// it is how EOF propagates through shared memory.
  void close();
  [[nodiscard]] bool closed() const;

 private:
  void copy_in(std::uint32_t at, const void* bytes, std::size_t size);
  void copy_out(std::uint32_t at, void* bytes, std::size_t size) const;

  RingHeader* header_ = nullptr;
  unsigned char* data_ = nullptr;
  std::size_t capacity_ = 0;
  Doorbell* doorbell_ = nullptr;
};

}  // namespace malsched::net
