#pragma once

/// \file rational.hpp
/// Exact rational arithmetic (BigInt numerator/denominator, always reduced,
/// denominator > 0).  Powers the exact simplex and the symbolic-style
/// verification of Conjecture 13 (the paper used Sage for the latter).

#include <string>

#include "malsched/numeric/bigint.hpp"

namespace malsched::numeric {

class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}

  /// From integers (implicit: Rational is a drop-in number type).
  Rational(long long value) : num_(value), den_(1) {}  // NOLINT
  Rational(int value) : num_(value), den_(1) {}        // NOLINT
  Rational(long long num, long long den);
  Rational(BigInt num, BigInt den);

  /// Exact conversion of a finite double (every finite double is rational).
  static Rational from_double(double value);

  /// Parses "p", "p/q" or a plain decimal like "0.125"; aborts on bad input.
  static Rational parse(const std::string& text);

  [[nodiscard]] const BigInt& num() const noexcept { return num_; }
  [[nodiscard]] const BigInt& den() const noexcept { return den_; }

  [[nodiscard]] bool is_zero() const noexcept { return num_.is_zero(); }
  [[nodiscard]] int signum() const noexcept { return num_.signum(); }

  [[nodiscard]] Rational abs() const;
  [[nodiscard]] Rational reciprocal() const;

  [[nodiscard]] double to_double() const noexcept;
  [[nodiscard]] std::string to_string() const;

  friend Rational operator+(const Rational& a, const Rational& b);
  friend Rational operator-(const Rational& a, const Rational& b);
  friend Rational operator*(const Rational& a, const Rational& b);
  friend Rational operator/(const Rational& a, const Rational& b);
  Rational operator-() const;
  Rational& operator+=(const Rational& other) { return *this = *this + other; }
  Rational& operator-=(const Rational& other) { return *this = *this - other; }
  Rational& operator*=(const Rational& other) { return *this = *this * other; }
  Rational& operator/=(const Rational& other) { return *this = *this / other; }

  friend bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) noexcept {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b) {
    return compare(a, b) < 0;
  }
  friend bool operator>(const Rational& a, const Rational& b) {
    return compare(a, b) > 0;
  }
  friend bool operator<=(const Rational& a, const Rational& b) {
    return compare(a, b) <= 0;
  }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return compare(a, b) >= 0;
  }

  /// Three-way comparison: negative / zero / positive.
  [[nodiscard]] static int compare(const Rational& a, const Rational& b);

 private:
  void normalize();

  BigInt num_;
  BigInt den_;  ///< Always positive.
};

}  // namespace malsched::numeric
