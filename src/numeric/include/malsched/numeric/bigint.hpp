#pragma once

/// \file bigint.hpp
/// Arbitrary-precision signed integers.
///
/// This is the foundation of the exact arithmetic layer: the paper verifies
/// Conjecture 13 symbolically (with Sage); we verify it with exact rational
/// arithmetic built on this type, and we run an exact simplex over rationals
/// to certify LP optima.  Representation is sign + little-endian base-2^32
/// magnitude; division is Knuth's Algorithm D.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace malsched::numeric {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From built-in integers (implicit: BigInt is a drop-in integer type).
  BigInt(long long value);                 // NOLINT(google-explicit-constructor)
  BigInt(int value) : BigInt(static_cast<long long>(value)) {}  // NOLINT
  static BigInt from_u64(std::uint64_t value);

  /// Parses an optionally signed decimal string; aborts on malformed input.
  static BigInt from_decimal(std::string_view text);

  /// -1, 0 or +1.
  [[nodiscard]] int signum() const noexcept { return sign_; }
  [[nodiscard]] bool is_zero() const noexcept { return sign_ == 0; }
  [[nodiscard]] bool is_negative() const noexcept { return sign_ < 0; }
  [[nodiscard]] bool is_one() const noexcept {
    return sign_ == 1 && mag_.size() == 1 && mag_[0] == 1;
  }

  [[nodiscard]] BigInt abs() const;
  [[nodiscard]] BigInt negated() const;

  /// Number of significant bits of |*this| (0 for zero).
  [[nodiscard]] std::size_t bit_length() const noexcept;

  /// Truncated-toward-zero division and remainder (C++ semantics):
  /// quotient*divisor + remainder == *this, |remainder| < |divisor|,
  /// remainder has the sign of the dividend.
  struct DivMod;
  [[nodiscard]] DivMod divmod(const BigInt& divisor) const;

  /// Greatest common divisor (always non-negative).
  [[nodiscard]] static BigInt gcd(BigInt a, BigInt b);

  /// Decimal rendering.
  [[nodiscard]] std::string to_decimal() const;

  /// Nearest double (may overflow to +/-inf for huge values).
  [[nodiscard]] double to_double() const noexcept;

  /// Exact conversion when the value fits in int64; aborts otherwise.
  [[nodiscard]] long long to_int64() const;
  [[nodiscard]] bool fits_int64() const noexcept;

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);
  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }
  BigInt& operator/=(const BigInt& other) { return *this = *this / other; }
  BigInt operator-() const { return negated(); }

  friend bool operator==(const BigInt& a, const BigInt& b) noexcept {
    return a.sign_ == b.sign_ && a.mag_ == b.mag_;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) noexcept {
    return !(a == b);
  }
  friend bool operator<(const BigInt& a, const BigInt& b) noexcept {
    return compare(a, b) < 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) noexcept {
    return compare(a, b) > 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) noexcept {
    return compare(a, b) <= 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) noexcept {
    return compare(a, b) >= 0;
  }

  /// Three-way comparison: negative / zero / positive.
  [[nodiscard]] static int compare(const BigInt& a, const BigInt& b) noexcept;

 private:
  using Limb = std::uint32_t;
  using Mag = std::vector<Limb>;

  static void trim(Mag& mag) noexcept;
  [[nodiscard]] static int compare_mag(const Mag& a, const Mag& b) noexcept;
  [[nodiscard]] static Mag add_mag(const Mag& a, const Mag& b);
  /// Requires |a| >= |b|.
  [[nodiscard]] static Mag sub_mag(const Mag& a, const Mag& b);
  [[nodiscard]] static Mag mul_mag(const Mag& a, const Mag& b);
  static void divmod_mag(const Mag& u, const Mag& v, Mag& quotient,
                         Mag& remainder);

  BigInt(int sign, Mag mag) : sign_(sign), mag_(std::move(mag)) {
    trim(mag_);
    if (mag_.empty()) {
      sign_ = 0;
    }
  }

  int sign_ = 0;  ///< -1, 0, +1; zero iff mag_ empty.
  Mag mag_;       ///< little-endian base 2^32 magnitude, no leading zeros.
};

struct BigInt::DivMod {
  BigInt quotient;
  BigInt remainder;
};

}  // namespace malsched::numeric
