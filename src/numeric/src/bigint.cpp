#include "malsched/numeric/bigint.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "malsched/support/contracts.hpp"

namespace malsched::numeric {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
constexpr std::uint32_t kDecChunkDigits = 9;
constexpr std::uint32_t kDecChunk = 1000000000U;  // 10^9 < 2^32
}  // namespace

BigInt::BigInt(long long value) {
  if (value == 0) {
    return;
  }
  sign_ = value > 0 ? 1 : -1;
  // Careful with LLONG_MIN: negate in unsigned space.
  auto mag = value > 0 ? static_cast<std::uint64_t>(value)
                       : ~static_cast<std::uint64_t>(value) + 1;
  while (mag != 0) {
    mag_.push_back(static_cast<Limb>(mag & 0xffffffffULL));
    mag >>= 32;
  }
}

BigInt BigInt::from_u64(std::uint64_t value) {
  BigInt out;
  if (value == 0) {
    return out;
  }
  out.sign_ = 1;
  while (value != 0) {
    out.mag_.push_back(static_cast<Limb>(value & 0xffffffffULL));
    value >>= 32;
  }
  return out;
}

BigInt BigInt::from_decimal(std::string_view text) {
  MALSCHED_EXPECTS(!text.empty());
  int sign = 1;
  std::size_t pos = 0;
  if (text[0] == '+' || text[0] == '-') {
    sign = text[0] == '-' ? -1 : 1;
    pos = 1;
  }
  MALSCHED_EXPECTS_MSG(pos < text.size(), "decimal string has no digits");
  BigInt out;
  BigInt chunk_scale(static_cast<long long>(kDecChunk));
  // Consume digits in 9-digit chunks: out = out * 10^k + chunk.
  while (pos < text.size()) {
    const std::size_t take = std::min<std::size_t>(kDecChunkDigits,
                                                   text.size() - pos);
    std::uint32_t chunk = 0;
    std::uint32_t scale = 1;
    for (std::size_t i = 0; i < take; ++i) {
      const char ch = text[pos + i];
      MALSCHED_EXPECTS_MSG(ch >= '0' && ch <= '9', "non-digit in decimal string");
      chunk = chunk * 10 + static_cast<std::uint32_t>(ch - '0');
      scale *= 10;
    }
    out = out * BigInt(static_cast<long long>(scale)) +
          BigInt(static_cast<long long>(chunk));
    pos += take;
  }
  if (sign < 0 && !out.is_zero()) {
    out.sign_ = -1;
  }
  return out;
}

BigInt BigInt::abs() const {
  BigInt out = *this;
  if (out.sign_ < 0) {
    out.sign_ = 1;
  }
  return out;
}

BigInt BigInt::negated() const {
  BigInt out = *this;
  out.sign_ = -out.sign_;
  return out;
}

std::size_t BigInt::bit_length() const noexcept {
  if (mag_.empty()) {
    return 0;
  }
  const std::size_t top_bits =
      32 - static_cast<std::size_t>(std::countl_zero(mag_.back()));
  return (mag_.size() - 1) * 32 + top_bits;
}

void BigInt::trim(Mag& mag) noexcept {
  while (!mag.empty() && mag.back() == 0) {
    mag.pop_back();
  }
}

int BigInt::compare_mag(const Mag& a, const Mag& b) noexcept {
  if (a.size() != b.size()) {
    return a.size() < b.size() ? -1 : 1;
  }
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) {
      return a[i] < b[i] ? -1 : 1;
    }
  }
  return 0;
}

int BigInt::compare(const BigInt& a, const BigInt& b) noexcept {
  if (a.sign_ != b.sign_) {
    return a.sign_ < b.sign_ ? -1 : 1;
  }
  const int mag_cmp = compare_mag(a.mag_, b.mag_);
  return a.sign_ >= 0 ? mag_cmp : -mag_cmp;
}

BigInt::Mag BigInt::add_mag(const Mag& a, const Mag& b) {
  const Mag& big = a.size() >= b.size() ? a : b;
  const Mag& small = a.size() >= b.size() ? b : a;
  Mag out;
  out.reserve(big.size() + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < big.size(); ++i) {
    std::uint64_t sum = carry + big[i];
    if (i < small.size()) {
      sum += small[i];
    }
    out.push_back(static_cast<Limb>(sum & 0xffffffffULL));
    carry = sum >> 32;
  }
  if (carry != 0) {
    out.push_back(static_cast<Limb>(carry));
  }
  return out;
}

BigInt::Mag BigInt::sub_mag(const Mag& a, const Mag& b) {
  MALSCHED_ASSERT(compare_mag(a, b) >= 0);
  Mag out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow;
    if (i < b.size()) {
      diff -= static_cast<std::int64_t>(b[i]);
    }
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<Limb>(diff));
  }
  trim(out);
  return out;
}

BigInt::Mag BigInt::mul_mag(const Mag& a, const Mag& b) {
  if (a.empty() || b.empty()) {
    return {};
  }
  Mag out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      const std::uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<Limb>(cur & 0xffffffffULL);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      const std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<Limb>(cur & 0xffffffffULL);
      carry = cur >> 32;
      ++k;
    }
  }
  trim(out);
  return out;
}

// Knuth TAOCP vol. 2 Algorithm D (normalized schoolbook division), 32-bit
// limbs.  u / v with v.size() >= 1, producing quotient and remainder
// magnitudes.
void BigInt::divmod_mag(const Mag& u, const Mag& v, Mag& quotient,
                        Mag& remainder) {
  MALSCHED_EXPECTS_MSG(!v.empty(), "division by zero BigInt");
  if (compare_mag(u, v) < 0) {
    quotient.clear();
    remainder = u;
    trim(remainder);
    return;
  }
  const std::size_t n = v.size();
  if (n == 1) {
    const std::uint64_t d = v[0];
    quotient.assign(u.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = u.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | u[i];
      quotient[i] = static_cast<Limb>(cur / d);
      rem = cur % d;
    }
    trim(quotient);
    remainder.clear();
    if (rem != 0) {
      remainder.push_back(static_cast<Limb>(rem));
    }
    return;
  }

  const std::size_t m = u.size() - n;
  const unsigned shift = static_cast<unsigned>(std::countl_zero(v.back()));

  // Normalized copies: vn = v << shift (size n), un = u << shift (size m+n+1).
  Mag vn(n);
  for (std::size_t i = n; i-- > 0;) {
    const std::uint64_t hi = static_cast<std::uint64_t>(v[i]) << shift;
    const std::uint64_t lo =
        (shift != 0 && i > 0) ? (static_cast<std::uint64_t>(v[i - 1]) >> (32 - shift))
                              : 0;
    vn[i] = static_cast<Limb>((hi | lo) & 0xffffffffULL);
  }
  Mag un(u.size() + 1, 0);
  un[u.size()] =
      shift != 0 ? static_cast<Limb>(static_cast<std::uint64_t>(u.back()) >>
                                     (32 - shift))
                 : 0;
  for (std::size_t i = u.size(); i-- > 0;) {
    const std::uint64_t hi = static_cast<std::uint64_t>(u[i]) << shift;
    const std::uint64_t lo =
        (shift != 0 && i > 0) ? (static_cast<std::uint64_t>(u[i - 1]) >> (32 - shift))
                              : 0;
    un[i] = static_cast<Limb>((hi | lo) & 0xffffffffULL);
  }

  quotient.assign(m + 1, 0);
  for (std::size_t j = m + 1; j-- > 0;) {
    const std::uint64_t top =
        (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = top / vn[n - 1];
    std::uint64_t rhat = top % vn[n - 1];
    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) {
        break;
      }
    }

    // Multiply-and-subtract qhat * vn from un[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t product = qhat * vn[i] + carry;
      carry = product >> 32;
      const std::int64_t t = static_cast<std::int64_t>(un[i + j]) - borrow -
                             static_cast<std::int64_t>(product & 0xffffffffULL);
      un[i + j] = static_cast<Limb>(t & 0xffffffff);
      borrow = t < 0 ? 1 : 0;
    }
    const std::int64_t t = static_cast<std::int64_t>(un[j + n]) - borrow -
                           static_cast<std::int64_t>(carry);
    un[j + n] = static_cast<Limb>(t & 0xffffffff);
    quotient[j] = static_cast<Limb>(qhat);

    if (t < 0) {
      // qhat was one too large: add vn back.
      --quotient[j];
      std::uint64_t carry2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(un[i + j]) + vn[i] + carry2;
        un[i + j] = static_cast<Limb>(sum & 0xffffffffULL);
        carry2 = sum >> 32;
      }
      un[j + n] = static_cast<Limb>(un[j + n] + carry2);
    }
  }
  trim(quotient);

  // Denormalize the remainder: un[0 .. n-1] >> shift.
  remainder.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t lo = static_cast<std::uint64_t>(un[i]) >> shift;
    const std::uint64_t hi =
        (shift != 0 && i + 1 < un.size())
            ? (static_cast<std::uint64_t>(un[i + 1]) << (32 - shift))
            : 0;
    remainder[i] = static_cast<Limb>((lo | hi) & 0xffffffffULL);
  }
  trim(remainder);
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  if (a.is_zero()) {
    return b;
  }
  if (b.is_zero()) {
    return a;
  }
  if (a.sign_ == b.sign_) {
    return BigInt(a.sign_, BigInt::add_mag(a.mag_, b.mag_));
  }
  const int cmp = BigInt::compare_mag(a.mag_, b.mag_);
  if (cmp == 0) {
    return BigInt{};
  }
  if (cmp > 0) {
    return BigInt(a.sign_, BigInt::sub_mag(a.mag_, b.mag_));
  }
  return BigInt(b.sign_, BigInt::sub_mag(b.mag_, a.mag_));
}

BigInt operator-(const BigInt& a, const BigInt& b) { return a + b.negated(); }

BigInt operator*(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) {
    return BigInt{};
  }
  return BigInt(a.sign_ * b.sign_, BigInt::mul_mag(a.mag_, b.mag_));
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  return a.divmod(b).quotient;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  return a.divmod(b).remainder;
}

BigInt::DivMod BigInt::divmod(const BigInt& divisor) const {
  MALSCHED_EXPECTS_MSG(!divisor.is_zero(), "BigInt division by zero");
  Mag q;
  Mag r;
  divmod_mag(mag_, divisor.mag_, q, r);
  DivMod out;
  out.quotient = BigInt(sign_ * divisor.sign_, std::move(q));
  out.remainder = BigInt(sign_, std::move(r));
  return out;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a = a.abs();
  b = b.abs();
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

std::string BigInt::to_decimal() const {
  if (is_zero()) {
    return "0";
  }
  // Repeatedly divide the magnitude by 10^9 and collect chunks.
  Mag work = mag_;
  std::vector<std::uint32_t> chunks;
  while (!work.empty()) {
    std::uint64_t rem = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | work[i];
      work[i] = static_cast<Limb>(cur / kDecChunk);
      rem = cur % kDecChunk;
    }
    trim(work);
    chunks.push_back(static_cast<std::uint32_t>(rem));
  }
  std::string out;
  if (sign_ < 0) {
    out += '-';
  }
  out += std::to_string(chunks.back());
  for (std::size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out.append(kDecChunkDigits - part.size(), '0');
    out += part;
  }
  return out;
}

double BigInt::to_double() const noexcept {
  if (is_zero()) {
    return 0.0;
  }
  // Accumulate the top 64 bits and scale by the dropped exponent.
  double value = 0.0;
  const std::size_t limbs = mag_.size();
  const std::size_t take = std::min<std::size_t>(limbs, 3);
  for (std::size_t i = 0; i < take; ++i) {
    value = value * static_cast<double>(kBase) +
            static_cast<double>(mag_[limbs - 1 - i]);
  }
  const std::size_t dropped = limbs - take;
  value = std::ldexp(value, static_cast<int>(dropped * 32));
  return sign_ < 0 ? -value : value;
}

bool BigInt::fits_int64() const noexcept {
  if (bit_length() < 64) {
    return true;
  }
  // INT64_MIN has bit_length exactly 64.
  return bit_length() == 64 && sign_ < 0 && mag_[0] == 0 &&
         mag_[1] == 0x80000000U;
}

long long BigInt::to_int64() const {
  MALSCHED_EXPECTS_MSG(fits_int64(), "BigInt does not fit in int64");
  std::uint64_t value = 0;
  for (std::size_t i = mag_.size(); i-- > 0;) {
    value = (value << 32) | mag_[i];
  }
  if (sign_ < 0) {
    return static_cast<long long>(~value + 1);
  }
  return static_cast<long long>(value);
}

}  // namespace malsched::numeric
