#include "malsched/numeric/rational.hpp"

#include <cmath>
#include <cstdint>

#include "malsched/support/contracts.hpp"

namespace malsched::numeric {

Rational::Rational(long long num, long long den) : num_(num), den_(den) {
  normalize();
}

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  normalize();
}

void Rational::normalize() {
  MALSCHED_EXPECTS_MSG(!den_.is_zero(), "Rational with zero denominator");
  if (den_.is_negative()) {
    num_ = num_.negated();
    den_ = den_.negated();
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  const BigInt g = BigInt::gcd(num_, den_);
  if (!g.is_one()) {
    num_ = num_ / g;
    den_ = den_ / g;
  }
}

Rational Rational::from_double(double value) {
  MALSCHED_EXPECTS_MSG(std::isfinite(value), "cannot convert non-finite double");
  if (value == 0.0) {
    return Rational();
  }
  int exp = 0;
  // mantissa in [0.5, 1); scale it to an exact 53-bit integer.
  const double mantissa = std::frexp(value, &exp);
  const auto scaled = static_cast<long long>(std::ldexp(mantissa, 53));
  exp -= 53;
  BigInt num(scaled);
  BigInt den(1);
  BigInt two(2);
  for (int i = 0; i < exp; ++i) {
    num = num * two;
  }
  for (int i = 0; i < -exp; ++i) {
    den = den * two;
  }
  return Rational(std::move(num), std::move(den));
}

Rational Rational::parse(const std::string& text) {
  MALSCHED_EXPECTS(!text.empty());
  const auto slash = text.find('/');
  if (slash != std::string::npos) {
    return Rational(BigInt::from_decimal(text.substr(0, slash)),
                    BigInt::from_decimal(text.substr(slash + 1)));
  }
  const auto dot = text.find('.');
  if (dot == std::string::npos) {
    return Rational(BigInt::from_decimal(text), BigInt(1));
  }
  // Decimal literal: sign and integer part, then fractional digits.
  std::string digits = text.substr(0, dot) + text.substr(dot + 1);
  const std::size_t frac_digits = text.size() - dot - 1;
  BigInt den(1);
  const BigInt ten(10);
  for (std::size_t i = 0; i < frac_digits; ++i) {
    den = den * ten;
  }
  return Rational(BigInt::from_decimal(digits), std::move(den));
}

Rational Rational::abs() const {
  Rational out = *this;
  out.num_ = out.num_.abs();
  return out;
}

Rational Rational::reciprocal() const {
  MALSCHED_EXPECTS_MSG(!is_zero(), "reciprocal of zero");
  return Rational(den_, num_);
}

double Rational::to_double() const noexcept {
  // For astronomically large values this saturates to inf, which is the
  // right behaviour for reporting.
  return num_.to_double() / den_.to_double();
}

std::string Rational::to_string() const {
  if (den_.is_one()) {
    return num_.to_decimal();
  }
  return num_.to_decimal() + "/" + den_.to_decimal();
}

Rational operator+(const Rational& a, const Rational& b) {
  return Rational(a.num_ * b.den_ + b.num_ * a.den_, a.den_ * b.den_);
}

Rational operator-(const Rational& a, const Rational& b) {
  return Rational(a.num_ * b.den_ - b.num_ * a.den_, a.den_ * b.den_);
}

Rational operator*(const Rational& a, const Rational& b) {
  return Rational(a.num_ * b.num_, a.den_ * b.den_);
}

Rational operator/(const Rational& a, const Rational& b) {
  MALSCHED_EXPECTS_MSG(!b.is_zero(), "Rational division by zero");
  return Rational(a.num_ * b.den_, a.den_ * b.num_);
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = out.num_.negated();
  return out;
}

int Rational::compare(const Rational& a, const Rational& b) {
  // Denominators are positive, so cross-multiplication preserves order.
  return BigInt::compare(a.num_ * b.den_, b.num_ * a.den_);
}

}  // namespace malsched::numeric
