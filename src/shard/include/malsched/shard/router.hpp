#pragma once

/// \file router.hpp
/// Multi-process sharded serving: a ShardRouter partitions the canonical
/// key space across forked worker processes via the consistent-hash ring
/// (hash_ring.hpp) and speaks the batch-file grammar on the front.
///
/// Why processes: a single Scheduler already scales across threads, but its
/// result cache is one address space — N independent services would each
/// re-solve the same canonical instances.  Sharding routes every request on
/// the *same equivalence class* (`InstanceHandle::key()`) to the same
/// worker, so the fleet's aggregate cache is the union of disjoint shards:
/// hit rate scales with the ring instead of being duplicated per process,
/// and a worker crash costs one arc of the key space, not the service.
///
/// Topology and flow:
///
///     batch file ──▶ ShardRouter ──ring──▶ worker 0 (Scheduler + cache)
///                        │                 worker 1 (Scheduler + cache)
///                        └──── socketpair per worker, wire.hpp frames ───┘
///
/// `run` mirrors `service::run_service`: it primes each named instance on
/// its ring owners (all `replication` of them), streams `solve` frames to
/// the primary owner with a bounded in-flight window per worker, and
/// matches `result` frames back into request order.  Results are
/// bit-identical to single-process serving — instance bytes and result
/// doubles cross the wire as exact hexfloats, and each result depends only
/// on its own (solver, instance) pair.
///
/// Transports: workers are reached through a net::Transport.  By default
/// each is forked over a socketpair (single-host).  With
/// `RouterOptions::tcp_workers` set, each is a `malsched_worker --listen`
/// process dialed over TCP (multi-host) — same frames, same handshake, same
/// failover; only how the fd is obtained differs.  Every new connection
/// starts with the versioned `hello` handshake; a peer that fails it is
/// rejected typed (ProtocolMismatch) and never joins the ring.
///
/// Failure semantics: a worker death (crash, kill -9, connection reset —
/// one shared dead-peer classifier regardless of transport) removes it from
/// the ring, and its work moves to the next alive replica owner when
/// `replication > 1` (the instance is already primed there).  Queued work
/// simply fails over; *in-flight* work is safely **retried** on the replica
/// under the same idempotency token — the dead worker may or may not have
/// solved it, but tokens are solved at most once per worker and results are
/// deduplicated router-side, so each request is solved effectively once.
/// With no alive replica, in-flight work fails with a typed
/// `SolverFailure`.  `restart` re-opens the worker and replants its ring
/// points — by the minimal-movement property only its own arcs move back,
/// so the other workers' caches stay warm.
///
/// Spawning (fork transport) uses fork() without exec: call the constructor
/// before creating any in-process Scheduler (or other threads), exactly
/// like the example CLI does — the forked child runs `run_worker` and
/// `_exit`s, never touching the parent's stdio.  The router itself is
/// single-threaded and not thread-safe.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <sys/types.h>
#include <vector>

#include "malsched/net/shm.hpp"
#include "malsched/net/transport.hpp"
#include "malsched/service/service.hpp"
#include "malsched/service/solver_registry.hpp"
#include "malsched/shard/data_plane.hpp"
#include "malsched/shard/hash_ring.hpp"
#include "malsched/shard/journal.hpp"
#include "malsched/shard/worker.hpp"

namespace malsched::shard {

/// Which data plane forked workers get.  Auto and Shm both try shared
/// memory and fall back to the socketpair when setup fails (counted in
/// TransportStats::shm_fallbacks) — degrading gracefully beats refusing to
/// serve, even when the operator asked for shm explicitly.  Socketpair
/// never tries.  TCP workers always use their connection; this knob is
/// fork-transport only.
enum class DataPlaneMode { Auto, Shm, Socketpair };

struct RouterOptions {
  /// Worker processes to fork.  Each owns a disjoint arc of the canonical
  /// key space (and the cache shard for it).  Ignored when `tcp_workers`
  /// is set.
  std::size_t shards = 2;
  /// Multi-host fleet: dial these `malsched_worker --listen` endpoints over
  /// TCP instead of forking.  One shard per endpoint; `shards` is derived.
  std::vector<net::Endpoint> tcp_workers;
  /// TCP connect budget per worker (covers the worker-still-starting race:
  /// connection-refused retries within it).  Fork transport ignores it.
  std::chrono::milliseconds connect_timeout{5000};
  /// How long to wait for a peer's `hello` before rejecting it.
  std::chrono::milliseconds handshake_timeout{10000};
  /// Virtual nodes per worker on the hash ring (see hash_ring.hpp).
  std::size_t vnodes = 64;
  /// Distinct ring owners each instance is primed on.  1 = no failover;
  /// r > 1 lets queued work re-route and in-flight work retry (idempotency
  /// tokens) when their primary dies mid-run.
  std::size_t replication = 1;
  /// Scheduler/cache configuration of every worker process.  For TCP
  /// workers this is configured on the `malsched_worker` command line
  /// instead; this field only shapes the router-side window clamp.
  WorkerOptions worker;
  /// Max in-flight requests per worker (clamped to the worker's queue
  /// capacity so its reader thread never blocks on admission backpressure —
  /// the invariant that keeps the socket pair deadlock-free).
  std::size_t window = 64;
  /// Data plane of forked workers; see DataPlaneMode.
  DataPlaneMode data_plane = DataPlaneMode::Auto;
  /// Capacity of each shm ring (request and response, per worker), rounded
  /// down to a power of two, floor 4 KiB.  Frames bigger than a ring are
  /// diverted over the control fd, so this sizes the hot path, not a hard
  /// limit.
  std::size_t shm_ring_bytes = std::size_t{4} << 20;
  /// Hot standby to replicate to (standby.hpp): the router dials this
  /// endpoint, handshakes under the `standby` role, and streams journal
  /// records (journal.hpp) at every state change plus heartbeats.  A
  /// standby that dies mid-run is dropped silently — replication is
  /// best-effort for the primary, load-bearing only for the standby.
  std::optional<net::Endpoint> standby;
  /// Already-connected standby fd (tests); -1 = dial `standby` if set.
  /// The router owns and closes it.
  int standby_fd = -1;
  /// Journal heartbeat cadence while replicating.  The standby's
  /// heartbeat_timeout must comfortably exceed this.
  std::chrono::milliseconds heartbeat_interval{100};
};

/// Transport-layer counters of one router, for `--stats` and tests.
struct TransportStats {
  std::uint64_t handshakes = 0;          ///< hello exchanges accepted
  std::uint64_t handshake_failures = 0;  ///< peers rejected at hello
  std::uint64_t dead_peers = 0;          ///< workers observed dead
  std::uint64_t retries_replayed = 0;    ///< in-flight retries on replicas
  std::uint64_t duplicates_dropped = 0;  ///< results dropped by the dedup
  std::uint64_t shm_fallbacks = 0;       ///< workers degraded to socketpair
  std::uint64_t journal_records = 0;     ///< records replicated to the standby
  std::uint64_t heartbeats_sent = 0;     ///< journal heartbeats pulsed
};

struct RouterRunOptions {
  /// Rounds over the batch; results come from the last round, latencies
  /// accumulate (mirrors ServiceOptions::repeat).
  std::size_t repeat = 1;
  /// Takeover support (standby.hpp): requests with a result here are
  /// emitted verbatim and never reach a worker — completed work is not
  /// re-solved.  Empty, or sized to the batch.
  std::vector<std::optional<service::SolveResult>> pre_resolved;
  /// Takeover support: idempotency tokens to reuse per request on the
  /// final round (0 = mint fresh).  A surviving worker that already
  /// completed the token replays its memoised result instead of
  /// re-solving.  Empty, or sized to the batch.
  std::vector<std::uint64_t> preset_tokens;
  /// First token value minted for fresh work (0 = continue from the
  /// router's own counter).  Takeover sets this above every journaled
  /// token so fresh tokens cannot collide with replayed ones.
  std::uint64_t first_token = 0;
};

/// Fleet-wide cache view for `--stats`: the component totals plus the
/// worker counts a correct mean needs.  Dead workers report no stats, so
/// means divide by `alive`, never by `configured` — dividing by the
/// configured count silently understates per-worker load the moment one
/// worker dies.
struct FleetCacheSummary {
  service::CacheStats total;  ///< summed over alive workers only
  std::size_t alive = 0;      ///< workers that answered the stats probe
  std::size_t configured = 0; ///< fleet size the router was built with
};

class ShardRouter {
 public:
  /// Forks (or, with `tcp_workers`, dials) the worker fleet, performing the
  /// versioned handshake with each.  The registry must outlive the router;
  /// it is also the registry each *forked* worker serves with (TCP workers
  /// serve with whatever registry their process was started with).
  ShardRouter(const service::SolverRegistry& registry,
              RouterOptions options = {});
  /// Closes every worker socket (EOF = drain: admitted jobs finish) and
  /// reaps the children.
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Streams every request of the batch through the worker fleet.  The
  /// returned report has the shape run_service produces: results in request
  /// order, router-observed latencies (send-to-result, wire included), and
  /// cache stats aggregated across workers.
  [[nodiscard]] service::ServiceReport run(
      const service::BatchSpec& batch, const RouterRunOptions& options = {});

  [[nodiscard]] std::size_t shard_count() const { return workers_.size(); }
  [[nodiscard]] std::size_t alive_count() const;
  [[nodiscard]] bool alive(std::size_t worker) const;

  /// Liveness probe: ping/pong round-trip.  Answered by the worker's reader
  /// thread, so it succeeds even while every scheduler thread is pinned by
  /// a long solve.  Marks the worker dead (and rebalances the ring) on
  /// timeout or a dead socket.  Call between runs, not during one.
  [[nodiscard]] bool ping(
      std::size_t worker,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(2000));

  /// Graceful drain: the worker finishes and delivers everything submitted
  /// so far and acknowledges; it stays alive and keeps serving.  False on
  /// timeout or a dead worker.
  [[nodiscard]] bool drain(
      std::size_t worker,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(60000));

  /// Per-worker cache statistics (hits/misses/evictions/TTL `expired`/...),
  /// fetched over a stats frame round-trip.  This is the per-shard view the
  /// aggregate in `run`'s report sums away — operational tooling uses it to
  /// spot one shard aging out its arc (expired climbing) while the fleet
  /// total looks healthy.  nullopt for a dead worker, a failed send (which
  /// marks it dead) or a timeout.  Call between runs, not during one.
  [[nodiscard]] std::optional<service::CacheStats> worker_cache_stats(
      std::size_t worker,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));

  /// Sums worker_cache_stats over the fleet, counting only the workers
  /// that answered.  Means must use `summary.alive` as the divisor; see
  /// FleetCacheSummary.  Call between runs, not during one.
  [[nodiscard]] FleetCacheSummary fleet_cache_summary(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));

  /// True while the replication stream to the standby is up.  False when
  /// no standby was configured, its handshake failed, or it died mid-run
  /// (all tolerated; `standby_error` names the reason).
  [[nodiscard]] bool standby_attached() const { return standby_fd_ >= 0; }
  [[nodiscard]] const std::string& standby_error() const {
    return standby_error_;
  }

  /// Hard-kills the worker process (SIGKILL) and removes it from the ring.
  /// The operator's "shoot the wedged worker" button, and the fault the
  /// router tests inject.
  void kill(std::size_t worker);

  /// Respawns a (dead or alive) worker and replants its ring points; an
  /// alive worker is drained first (best effort).  Its cache restarts cold
  /// — only its own arcs of the key space re-warm, everyone else's entries
  /// are untouched (minimal movement).  False when the fork failed.
  [[nodiscard]] bool restart(std::size_t worker);

  /// Ring lookup for a canonical key (primary owner), exposed for tests and
  /// operational tooling.  Requires at least one alive worker.
  [[nodiscard]] std::uint32_t owner_of(std::uint64_t key) const {
    return ring_.owner(key);
  }
  [[nodiscard]] const HashRing& ring() const { return ring_; }

  /// Worker process id (-1 when dead or remote), for operational tooling
  /// and the fault-injection tests that SIGKILL a worker behind the
  /// router's back.  TCP workers are other hosts' processes: always -1.
  [[nodiscard]] pid_t pid_of(std::size_t worker) const {
    return worker < workers_.size() ? transport_->pid_of(worker) : -1;
  }

  /// Transport-layer counters: handshakes, dead peers, retries replayed.
  [[nodiscard]] const TransportStats& transport_stats() const {
    return transport_stats_;
  }

  /// Data-plane counters of one worker ("shm" ring depths/sleeps/wakes, or
  /// "socketpair" frame counts), for `--stats`.  nullopt for a dead worker.
  [[nodiscard]] std::optional<DataPlaneStats> data_plane_stats(
      std::size_t worker) const {
    if (worker >= workers_.size() || workers_[worker].plane == nullptr) {
      return std::nullopt;
    }
    return workers_[worker].plane->stats();
  }

 private:
  struct Worker {
    int fd = -1;
    bool alive = false;
    /// How data frames reach this worker; the control plane stays on fd.
    std::unique_ptr<DataPlane> plane;
  };

  bool spawn(std::size_t index);
  void mark_dead(std::size_t index);
  /// Connects + handshakes the replication stream (ctor helper).
  void attach_standby();
  /// Replicates one record to the standby; a write failure detaches the
  /// standby (best-effort) without touching the serving path.
  void journal(const JournalRecord& record);
  /// Emits a journal heartbeat when heartbeat_interval has elapsed.
  void maybe_heartbeat();
  /// Reads one frame with an absolute deadline spanning poll *and* the
  /// frame bytes, so a dribbling peer cannot stretch the budget; false on
  /// timeout/death.
  bool read_frame_from(std::size_t index, std::string* payload,
                       std::chrono::milliseconds timeout);

  const service::SolverRegistry& registry_;
  RouterOptions options_;
  HashRing ring_;
  /// Per-worker shm channels and the doorbell their response rings share,
  /// created before the transport so every fork inherits the mappings.
  /// A null channel slot means that worker fell back to the socketpair.
  std::unique_ptr<net::ShmRegion> doorbell_region_;
  net::Doorbell* doorbell_ = nullptr;
  std::vector<std::unique_ptr<ShmChannel>> channels_;
  std::unique_ptr<net::Transport> transport_;
  std::vector<Worker> workers_;
  /// Last handshake/connect failure per worker slot; empty = none.  Lets
  /// requests that end up ownerless because a peer was *rejected* (rather
  /// than dead) fail typed as ProtocolMismatch.
  std::vector<std::string> handshake_errors_;
  TransportStats transport_stats_;
  std::uint64_t next_wire_id_ = 0;
  std::uint64_t next_token_ = 0;
  /// Replication stream to the hot standby; -1 = none/detached.
  int standby_fd_ = -1;
  std::string standby_error_;
  std::uint64_t heartbeat_seq_ = 0;
  std::chrono::steady_clock::time_point last_heartbeat_{};
};

}  // namespace malsched::shard
