#pragma once

/// \file journal.hpp
/// The router-replication journal: the record stream a primary ShardRouter
/// feeds its hot standby, and the standby-side state it replays into.
///
/// The stream mirrors exactly the state a takeover needs — nothing more:
///
///   * ring membership     (`jmember`)   which worker slots are alive
///   * the primed set      (`jprime`)    instance name -> ring owners
///   * the in-flight table (`jflight`)   idempotency token -> request
///   * resolved results    (`jresolved`) final-round results, bit-exact
///   * liveness            (`jheartbeat`) the primary's pulse
///   * completion          (`jdone`)     the run finished; stand down
///
/// Records ride the net/ frame layer (length-prefixed, dead-peer
/// classified) over the replication connection, which opens with the
/// versioned `hello` handshake carrying the new `standby` role.  Payloads
/// are the wire dialect's text grammar — `jresolved` embeds a verbatim
/// `result` payload (wire.hpp), so results survive replication bit-exactly
/// for the same reason they survive the worker wire: hexfloats all the way.
///
/// Replay is a pure fold: StandbyState::apply consumes records in stream
/// order and any prefix of the stream yields a consistent state — the
/// property the takeover correctness argument rests on, and the one the
/// journal fuzz test hammers.  Decoding is fail-closed: truncated or
/// garbage payloads reject typed (nullopt + reason), never crash, never
/// partially apply.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "malsched/service/solver_registry.hpp"

namespace malsched::shard {

struct JournalRecord {
  enum class Type { Member, Prime, Flight, Resolved, Heartbeat, Done };

  Type type = Type::Heartbeat;
  std::uint32_t worker = 0;           ///< Member: worker slot
  bool alive = false;                 ///< Member: joined (true) or died
  std::string name;                   ///< Prime: instance name (one token)
  std::vector<std::uint32_t> owners;  ///< Prime: primed ring owners
  std::uint64_t token = 0;            ///< Flight/Resolved: idempotency token
  std::uint64_t request_index = 0;    ///< Flight/Resolved: batch request
  service::SolveResult result;        ///< Resolved: the bit-exact result
  std::uint64_t seq = 0;              ///< Heartbeat: monotone pulse counter

  [[nodiscard]] static JournalRecord member(std::uint32_t worker, bool alive);
  [[nodiscard]] static JournalRecord prime(std::string name,
                                           std::vector<std::uint32_t> owners);
  [[nodiscard]] static JournalRecord flight(std::uint64_t token,
                                            std::uint64_t request_index);
  [[nodiscard]] static JournalRecord resolved(std::uint64_t request_index,
                                              std::uint64_t token,
                                              service::SolveResult result);
  [[nodiscard]] static JournalRecord heartbeat(std::uint64_t seq);
  [[nodiscard]] static JournalRecord done();
};

/// Encodes one record as a frame payload (the caller frames it with
/// wire::write_frame).  Instance names are single tokens by the batch
/// grammar; encode does not re-validate.
[[nodiscard]] std::string encode_journal(const JournalRecord& record);

/// Decodes one frame payload.  nullopt on any malformed input — unknown
/// tag, missing or non-numeric fields, an embedded result that does not
/// parse — with *error (when non-null) naming the reason.  Never throws,
/// never returns a half-filled record.
[[nodiscard]] std::optional<JournalRecord> decode_journal(
    const std::string& payload, std::string* error = nullptr);

/// The standby's mirror of the primary, folded from the record stream.
/// Any prefix of a valid stream is a consistent state: takeover after N
/// records acts only on what those N records say.
struct StandbyState {
  /// worker slot -> alive, grown on demand (slots are dense and small).
  std::vector<char> members;
  /// instance name -> ring owners the primary primed it on.
  std::map<std::string, std::vector<std::uint32_t>> primed;
  /// idempotency token -> request index, for every request the primary put
  /// in flight whose result has not been journaled — exactly the set a
  /// takeover must replay under existing tokens.
  std::map<std::uint64_t, std::uint64_t> in_flight;
  /// request index -> bit-exact final result; a takeover emits these
  /// verbatim and never re-solves them.
  std::map<std::uint64_t, service::SolveResult> resolved;
  std::uint64_t heartbeats = 0;  ///< pulses seen (liveness telemetry)
  std::uint64_t records = 0;     ///< records applied in total
  std::uint64_t max_token = 0;   ///< highest token seen; fresh tokens go above
  bool done = false;             ///< primary declared the run complete

  /// Folds one record in.  Resolved retires its token from the in-flight
  /// table: the request completed, so a takeover must not replay it.
  void apply(const JournalRecord& record);

  [[nodiscard]] std::size_t alive_members() const {
    std::size_t count = 0;
    for (const char alive : members) {
      count += alive != 0 ? 1 : 0;
    }
    return count;
  }
};

}  // namespace malsched::shard
