#pragma once

/// \file worker.hpp
/// The worker side of sharded serving: one process, one Scheduler, one
/// cache shard.
///
/// A worker owns the arc of the canonical key space the router's hash ring
/// assigned it.  It speaks the wire protocol (wire.hpp) over a single
/// socket fd: the router primes it with `instance` definitions for the
/// names it owns, then streams `solve` requests; the worker submits each
/// one to its in-process service::Scheduler (so priority admission,
/// cancellation/deadline handling and the canonicalization cache all work
/// exactly as in single-process mode) and streams `result` frames back as
/// solves finish.
///
/// Threading: the reader (calling) thread parses frames and submits;
/// a single writer thread resolves tickets in submission order and writes
/// results.  `ping` and `stats` are answered by the reader thread directly,
/// so health checks succeed even while every Scheduler worker is pinned by
/// a long exact solve.  The router's per-worker in-flight window is at most
/// the Scheduler queue capacity, so submit() never blocks the reader on
/// backpressure and the socket never deadlocks.
///
/// Connections begin with the versioned `hello` handshake (wire.hpp): the
/// worker greets, validates the router's greeting under a deadline, and
/// exits with code 2 on a mismatched or silent peer — essential once the fd
/// may be a TCP connection from anywhere rather than a trusted socketpair.
///
/// Idempotent solves: `solve` frames carry an idempotency token, and the
/// worker guarantees each token is solved at most once — a duplicate of a
/// completed token replays the memoized result verbatim (latency included),
/// a duplicate of an in-flight token parks until the original finishes.
/// This is the worker half of the router's retry-on-replica failover.
///
/// Data planes: with a ShmChannel (created by the router before fork and
/// inherited through it), `solve`/`instance` frames arrive on the shared-
/// memory request ring in the binary dialect and results leave on the
/// response ring, while the fd carries only control traffic — ping/stats
/// answered by a dedicated control thread, oversize instances the router
/// diverted past the ring, `drain`, and EOF (which closes the rings).
/// Without a channel the fd carries everything, exactly the pre-seam
/// behavior.
///
/// Lifetime: the worker exits cleanly on `drain` + EOF or bare EOF (router
/// gone).  It never touches stdout/stderr — it is forked from the router's
/// process and shares its stdio buffers.

#include "malsched/service/service.hpp"
#include "malsched/service/solver_registry.hpp"

namespace malsched::shard {

class ShmChannel;

/// Per-worker Scheduler/cache configuration IS the batch-level
/// ServiceOptions — the worker serves through the same
/// `make_scheduler_options` mapping as run_service, so single-process and
/// sharded serving cannot drift apart option by option.  `repeat` is
/// ignored here: rounds are driven by the router.
using WorkerOptions = service::ServiceOptions;

/// Serves the wire protocol on `fd` until EOF; returns the process exit
/// code (0 on a clean drain, 1 on a protocol error, 2 on a failed
/// handshake).  Blocks the calling thread for the worker's whole life —
/// call it from a freshly forked child and pass the result to _exit(), or
/// from a `malsched_worker` accept loop with a freshly dialed fd.
[[nodiscard]] int run_worker(int fd, const service::SolverRegistry& registry,
                             const WorkerOptions& options,
                             ShmChannel* channel = nullptr);

}  // namespace malsched::shard
