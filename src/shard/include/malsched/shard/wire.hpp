#pragma once

/// \file wire.hpp
/// Length-prefixed wire protocol between the ShardRouter and its worker
/// processes.
///
/// Frame layout (everything on the wire is a frame):
///
///     ┌────────────────────┬──────────────────────────┐
///     │ length: u32 LE     │ payload: `length` bytes  │
///     └────────────────────┴──────────────────────────┘
///
/// Payloads are line-oriented text whose first token names the message type
/// — deliberately the same key=value grammar `write_results` emits, so the
/// human batch-output format and the wire format stay one dialect and
/// `parse_error_code` / `error_code_name` serve both.  Messages:
///
///   router → worker
///     instance <name>\n<P hexfloat> <n>\n<V δ w hexfloat per line>
///     solve <id> <priority-weight hex> <deadline-seconds hex | -> <solver> <name>
///     ping <seq>
///     stats
///     drain
///
///   worker → router
///     result <id> solver=<text> status=ok objective=<hex> makespan=<hex>
///            cache_hit=<0|1> latency=<hex>\n<completions, hexfloat per line>
///     result <id> solver=<text> status=error code=<error-code-name>
///            message="<escaped>" latency=<hex>
///     pong <seq>
///     stats hits=.. misses=.. evictions=.. expired=.. entries=.. weight=..
///           capacity=..
///     drained <results-delivered>
///
/// Numeric payload fields are hexadecimal floats (`%a` / strtod), so doubles
/// round-trip bit-exactly across the process boundary — the sharded-vs-
/// single bit-identical-output contract depends on it (12-digit decimal,
/// which the human result stream uses, does not round-trip).  `SolveError`
/// codes travel as their stable kebab-case names, so Cancelled /
/// DeadlineExceeded and friends mean the same thing on both sides of the
/// pipe.
///
/// The frame reader enforces a maximum payload size so a corrupted length
/// prefix fails the connection instead of a 4 GiB allocation.

#include <cstdint>
#include <optional>
#include <string>

#include "malsched/core/instance.hpp"
#include "malsched/service/cache.hpp"
#include "malsched/service/solver_registry.hpp"

namespace malsched::shard::wire {

/// Largest accepted frame payload.  Instances dominate frame size at ~60
/// bytes per task; 256 MiB covers ~10^6-task instances with an order of
/// magnitude to spare.
inline constexpr std::uint32_t kMaxFrameBytes = 256u << 20;

/// Blocking frame I/O on a socket fd (MSG_NOSIGNAL — a dead peer surfaces
/// as an error return, never SIGPIPE).  read_frame returns false on EOF or
/// error; write_frame returns false when the peer is gone.
[[nodiscard]] bool write_frame(int fd, const std::string& payload);
[[nodiscard]] bool read_frame(int fd, std::string* payload);

/// --- message encoding (pure string builders / parsers) ---

/// `instance` message: name plus the bit-exact hexfloat serialization.
[[nodiscard]] std::string encode_instance(const std::string& name,
                                          const core::Instance& instance);
struct InstanceMessage {
  std::string name;
  std::optional<core::Instance> instance;
};
[[nodiscard]] std::optional<InstanceMessage> decode_instance(
    const std::string& payload);

struct SolveMessage {
  std::uint64_t id = 0;
  double priority_weight = 1.0;
  /// Latency budget in seconds from worker-side admission; unset = none.
  std::optional<double> deadline_seconds;
  std::string solver;
  std::string instance_name;
};
[[nodiscard]] std::string encode_solve(const SolveMessage& message);
[[nodiscard]] std::optional<SolveMessage> decode_solve(
    const std::string& payload);

/// `result` message: the full SolveResult, bit-exact.
[[nodiscard]] std::string encode_result(std::uint64_t id,
                                        const service::SolveResult& result);
struct ResultMessage {
  std::uint64_t id = 0;
  service::SolveResult result;
};
[[nodiscard]] std::optional<ResultMessage> decode_result(
    const std::string& payload);

/// Aggregate-able cache statistics.
[[nodiscard]] std::string encode_stats(const service::CacheStats& stats);
[[nodiscard]] std::optional<service::CacheStats> decode_stats(
    const std::string& payload);

/// First whitespace-delimited token of a payload — the message type
/// ("instance", "solve", "result", "ping", "pong", "stats", "drain",
/// "drained").
[[nodiscard]] std::string message_type(const std::string& payload);

}  // namespace malsched::shard::wire
